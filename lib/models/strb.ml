(* Srikanth & Toueg's authenticated reliable broadcast (the "strb" /
   asynchronous-broadcast benchmark of the Konnov et al. survey,
   PAPERS.md): relay an init message once t+1 echoes prove a correct
   process sent it, accept once 2t+1 echoes prove t+1 correct processes
   relayed.  Monotone over-approximation as in ben_or.ml.

   Locations: V1 (received the init) / V0 -> SE (echoed) -> AC
   (accepted).  Shared: e echoes from correct processes; guards discount
   the f Byzantine contributions. *)

module A = Ta.Automaton
module C = Ta.Cond
module G = Ta.Guard
module S = Ta.Spec
module Pexpr = Ta.Pexpr

let rule = A.rule

let make_with_resilience ~name resilience =
  A.make ~name ~params:Params.names ~shared:[ "e" ]
    ~locations:[ "V1"; "V0"; "SE"; "AC" ] ~initial:[ "V1"; "V0" ] ~resilience
    ~population:Params.population
    ~rules:
      [
        rule "t1" ~source:"V1" ~target:"SE" ~update:[ ("e", 1) ];
        rule "t2" ~source:"V0" ~target:"SE" ~guard:(G.ge1 "e" Params.t1f)
          ~update:[ ("e", 1) ];
        rule "t3" ~source:"SE" ~target:"AC" ~guard:(G.ge1 "e" Params.t2f);
      ]
    ()

let automaton = make_with_resilience ~name:"strb" Params.resilience

(* Unforgeability: no init received, no acceptance — t+1 echoes cannot
   materialize from the f Byzantine processes alone. *)
let unforgeability =
  S.invariant ~name:"STRB-Unforg" ~ltl:"[](k[V1] = 0) => [](k[AC] = 0)"
    ~init:(C.empty "V1")
    ~bad:[ ("a process accepts", C.counter_ge "AC" 1) ]
    ()

(* Deliberately violated: acceptance is reachable when inits arrived. *)
let acceptance_reachable =
  S.invariant ~name:"STRB-NoAccept" ~ltl:"[](k[AC] = 0)  (violated)"
    ~bad:[ ("a process accepts", C.counter_ge "AC" 1) ]
    ()

let all_specs = [ unforgeability; acceptance_reachable ]

(* Seeded mutant: an unsatisfiable resilience condition (t >= f and
   f >= t+1 together) — the linter must reject it whole (TA005: every
   property would hold vacuously). *)
let mutant_unsat_resilience =
  make_with_resilience ~name:"strb_unsat_resilience"
    [
      Pexpr.of_terms [ ("n", 1); ("t", -3) ] (-1);
      Pexpr.of_terms [ ("t", 1); ("f", -1) ] 0;
      Pexpr.of_terms [ ("f", 1); ("t", -1) ] (-1);
    ]
