(* Phase King binary consensus (Berman, Garay & Perry), stated as a
   round-based extended TA: one phase template — vote, then keep your
   value or adopt the other on sufficient evidence — instantiated twice
   by [Rta.unroll] (a king phase pair).  This is the zoo's demonstration
   that round-based models plug into the pipeline without hand-written
   suffixes: the specs below are built from the certified name-mangling
   maps, never from literal "@1" strings.

   Monotone over-approximation (see ben_or.ml): only the lower-threshold
   evidence guards are kept — a process may adopt value w once t+1
   processes are known to have voted w (t1f with the Byzantine
   discount), and may always keep its value.  The relation contains the
   real protocol's, so safety properties carry over.

   Per-round locations: V0/V1 (hold value, entry) -> S0/S1 (voted).
   Per-round shared: v0/v1 vote counters from correct processes. *)

module A = Ta.Automaton
module C = Ta.Cond
module G = Ta.Guard
module S = Ta.Spec
module Rta = Ta.Rta
module Pexpr = Ta.Pexpr

let rule = Rta.rule

let round_phase =
  Rta.phase ~name:"king" ~locations:[ "V0"; "V1"; "S0"; "S1" ]
    ~entry:[ "V0"; "V1" ] ~shared:[ "v0"; "v1" ]
    ~rules:
      [
        rule "p1" ~source:"V0" ~target:(Rta.Here "S0") ~update:[ ("v0", 1) ];
        rule "p2" ~source:"V1" ~target:(Rta.Here "S1") ~update:[ ("v1", 1) ];
        (* Keep the value... *)
        rule "p3" ~source:"S0" ~target:(Rta.Next "V0");
        rule "p4" ~source:"S1" ~target:(Rta.Next "V1");
        (* ...or adopt the other on t+1 votes' evidence. *)
        rule "p5" ~source:"S0" ~target:(Rta.Next "V1")
          ~guard:(G.ge1 "v1" Params.t1f);
        rule "p6" ~source:"S1" ~target:(Rta.Next "V0")
          ~guard:(G.ge1 "v0" Params.t1f);
      ]
    ()

let rta =
  Rta.make ~name:"phase_king" ~params:Params.names
    ~resilience:Params.resilience ~population:Params.population
    ~phases:[ round_phase ] ()

let rounds = 2
let unrolled = Rta.unroll ~rounds rta
let automaton = unrolled.Rta.automaton

(* Persistence of unanimity: if no process holds 1 at the start, none
   holds, votes for, or casts a counted 1-vote in the last round —
   adopting 1 needs t+1 1-votes, which f <= t Byzantine processes
   cannot forge.  The last-round vote counter is part of the bad
   condition: unanimity persists in the messages, not just the control
   locations (and the unrolled counter must not dangle unread once the
   wrap-around adoption guards become guardless round_switch edges). *)
let persistence_for ~hold ~vote =
  let held_0 = Rta.loc unrolled ~round:0 ("V" ^ hold) in
  let last = rounds - 1 in
  let bad_locs =
    [ Rta.loc unrolled ~round:last ("V" ^ hold);
      Rta.loc unrolled ~round:last ("S" ^ hold) ]
  in
  let votes_last = Rta.shared_var unrolled ~round:last vote in
  S.invariant ~name:("PK-Persist" ^ hold)
    ~ltl:
      (Printf.sprintf "[](k[%s] = 0) => [](k[%s] = 0 /\\ k[%s] = 0 /\\ %s = 0)" held_0
         (List.nth bad_locs 0) (List.nth bad_locs 1) votes_last)
    ~init:(C.empty held_0)
    ~bad:
      [
        ("a process reaches value " ^ hold, C.some_nonempty bad_locs);
        ( "a " ^ hold ^ "-vote is counted in the last round",
          C.shared_ge [ (votes_last, 1) ] (Pexpr.const 1) );
      ]
    ()

let persistence = persistence_for ~hold:"1" ~vote:"v1"
let persistence0 = persistence_for ~hold:"0" ~vote:"v0"

(* Deliberately violated: without the unanimity premise a process can
   hold 1 in the last round — the witness walks a full round. *)
let one_survives =
  let last = rounds - 1 in
  let v1_last = Rta.loc unrolled ~round:last "V1" in
  S.invariant ~name:"PK-NoOne"
    ~ltl:(Printf.sprintf "[](k[%s] = 0)  (violated)" v1_last)
    ~bad:[ ("a process holds 1", C.counter_ge v1_last 1) ]
    ()

let all_specs = [ persistence; persistence0; one_survives ]

(* Seeded mutant: adoption without evidence — the adopt-1 rule fires on
   0 >= -f votes, i.e. always.  A single Byzantine whisper flips
   processes to 1 out of nowhere and the checker must refute PK-Persist
   with a witness. *)
let mutant_baseless_adopt =
  let phase_mut =
    Rta.phase ~name:"king" ~locations:[ "V0"; "V1"; "S0"; "S1" ]
      ~entry:[ "V0"; "V1" ] ~shared:[ "v0"; "v1" ]
      ~rules:
        [
          rule "p1" ~source:"V0" ~target:(Rta.Here "S0") ~update:[ ("v0", 1) ];
          rule "p2" ~source:"V1" ~target:(Rta.Here "S1") ~update:[ ("v1", 1) ];
          rule "p3" ~source:"S0" ~target:(Rta.Next "V0");
          rule "p4" ~source:"S1" ~target:(Rta.Next "V1");
          rule "p5" ~source:"S0" ~target:(Rta.Next "V1")
            ~guard:(G.ge1 "v1" (Pexpr.of_terms [ ("f", -1) ] 0));
          rule "p6" ~source:"S1" ~target:(Rta.Next "V0")
            ~guard:(G.ge1 "v0" Params.t1f);
        ]
      ()
  in
  let rta_mut =
    Rta.make ~name:"phase_king_baseless_adopt" ~params:Params.names
      ~resilience:Params.resilience ~population:Params.population
      ~phases:[ phase_mut ] ()
  in
  (Rta.unroll ~rounds rta_mut).Rta.automaton

(* PK-Persist restated for the mutant's (identically mangled) names. *)
let persistence_mutant = persistence
