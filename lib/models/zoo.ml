(* The model zoo: every threshold automaton bundled with the repo, with
   its properties, expected verdicts, justice assumptions and seeded
   mutants, in one table that the CLI (`holistic lint`, `holistic
   table2 --zoo`), the benchmarks, the examples and the test battery
   enumerate.  Registering a model here is what puts it under the
   permanent gates: test/test_zoo.ml asserts, for every entry, the lint
   outcome, 4-engine verdict equality and that each mutant is caught —
   so a zoo model without battery coverage cannot exist.

   This library sits below the checker, so an entry carries only data:
   the expected verdict per spec ([Holds]/[Violated]) and how each
   mutant must be rejected ([`Lint code] or [`Checker spec]).  Consumers
   with checker/fuzz access interpret them. *)

module A = Ta.Automaton
module S = Ta.Spec

type verdict = Holds | Violated

let verdict_to_string = function Holds -> "holds" | Violated -> "violated"

(* How a seeded mutant must be rejected by the pipeline: a lint
   diagnostic of the given code at Error severity, a counterexample
   witness refuting the given spec, or — when lint and checker are both
   blind because the automaton itself dropped the adversary — a
   fuzz-oracle counterexample: the checker proves [spec] Holds on the
   mutant while the simulated network at the given concrete parameters
   exhibits a real violating run (the holistic divergence the paper's
   multi-layer methodology exists to catch). *)
type rejection =
  | Lint of string
  | Checker of S.t
  | Fuzz of { spec : S.t; n : int; t : int; f : int; value : int; sched_seed : int }

type mutant = {
  mutant_key : string;
  mutant_desc : string;
  mutant_automaton : A.t;
  rejection : rejection;
}

type entry = {
  key : string;  (** CLI / registry name *)
  title : string;
  automaton : A.t;
  specs : (S.t * verdict) list;
  justice_assumption : Ta.Pexpr.t list;
      (** resilience under which the justice constraints were proven
          (Analysis TA015); [] when the model has none *)
  fuzzable : bool;
      (** a simnet executable model exists: consumers with fuzz access
          cross-validate verdicts against random executions *)
  mutants : mutant list;
}

let entries =
  [
    {
      key = "bracha";
      title = "Bracha reliable broadcast (echo/ready/accept)";
      automaton = Bracha.automaton;
      specs =
        [ (Bracha.unforgeability, Holds); (Bracha.acceptance_reachable, Violated) ];
      justice_assumption = [];
      fuzzable = false;
      mutants =
        [
          {
            mutant_key = "bracha-forged-echo";
            mutant_desc = "echo-on-quorum accepts a single forged echo";
            mutant_automaton = Bracha.mutant_forged_echo;
            rejection = Checker Bracha.unforgeability;
          };
        ];
    };
    {
      key = "phase-king";
      title = "Phase King consensus (round-based, Rta-unrolled)";
      automaton = Phase_king.automaton;
      specs =
        [
          (Phase_king.persistence, Holds);
          (Phase_king.persistence0, Holds);
          (Phase_king.one_survives, Violated);
        ];
      justice_assumption = [];
      fuzzable = false;
      mutants =
        [
          {
            mutant_key = "phase-king-baseless-adopt";
            mutant_desc = "value adopted without any vote evidence";
            mutant_automaton = Phase_king.mutant_baseless_adopt;
            rejection = Checker Phase_king.persistence_mutant;
          };
        ];
    };
    {
      key = "strb";
      title = "Srikanth-Toueg reliable broadcast (survey benchmark)";
      automaton = Strb.automaton;
      specs = [ (Strb.unforgeability, Holds); (Strb.acceptance_reachable, Violated) ];
      justice_assumption = [];
      fuzzable = false;
      mutants =
        [
          {
            mutant_key = "strb-unsat-resilience";
            mutant_desc = "contradictory resilience condition (t >= f and f >= t+1)";
            mutant_automaton = Strb.mutant_unsat_resilience;
            rejection = Lint "TA005";
          };
        ];
    };
    {
      key = "frb";
      title = "Folklore reliable broadcast, crash faults (survey benchmark)";
      automaton = Frb.automaton;
      specs = [ (Frb.unforgeability, Holds); (Frb.acceptance_reachable, Violated) ];
      justice_assumption = [];
      fuzzable = false;
      mutants =
        [
          {
            mutant_key = "frb-cycle";
            mutant_desc = "relay-back edge closes a location cycle";
            mutant_automaton = Frb.mutant_cycle;
            rejection = Lint "TA004";
          };
        ];
    };
    {
      key = "benor";
      title = "Ben-Or randomized consensus round";
      automaton = Ben_or.automaton;
      specs =
        [
          (Ben_or.agreement, Holds);
          (Ben_or.no_decision_from_nowhere, Holds);
          (Ben_or.unanimous_d_votes, Holds);
        ];
      justice_assumption = [];
      fuzzable = false;
      mutants = [];
    };
    {
      key = "dbft-rta";
      title = "Simplified DBFT superround (round-based, Rta-unrolled)";
      automaton = Dbft_rta.automaton;
      specs = [ (Dbft_rta.inv2_0, Holds); (Dbft_rta.good_0, Holds) ];
      justice_assumption = Params.resilience;
      fuzzable = true;
      (* The fuzz-divergence mutants ride on the fuzzable entry: their
         automata model the bv-broadcast substrate the simulated DBFT
         network executes, and only a consumer with fuzz access can
         reject them (checker Holds, simulation violates). *)
      mutants =
        [
          {
            mutant_key = "bv-missing-slack";
            mutant_desc =
              "every guard forgets the -f forgery discount under f <= 2t faults";
            mutant_automaton = Bv_ta.mutant_missing_slack;
            rejection =
              Fuzz
                {
                  spec = Bv_ta.just0_spec;
                  n = 4;
                  t = 1;
                  f = 2;
                  value = 0;
                  sched_seed = 1;
                };
          };
          {
            mutant_key = "bv-unforged-echo";
            mutant_desc =
              "echo-relay thresholds forget the -f forgery discount under f <= 2t faults";
            mutant_automaton = Bv_ta.mutant_unforged_echo;
            rejection =
              Fuzz
                {
                  spec = Bv_ta.just0_spec;
                  n = 4;
                  t = 1;
                  f = 2;
                  value = 0;
                  sched_seed = 1;
                };
          };
        ];
    };
  ]

let keys = List.map (fun e -> e.key) entries
let find key = List.find_opt (fun e -> e.key = key) entries

(* Every seeded mutant across the zoo, with its parent entry. *)
let all_mutants = List.concat_map (fun e -> List.map (fun m -> (e, m)) e.mutants) entries
