(* Bracha's asynchronous reliable broadcast (echo / ready / accept), the
   classic Byzantine-tolerant broadcast the bv-broadcast of the paper
   descends from.  Modelled in the monotone over-approximation style of
   ben_or.ml: only the lower-threshold halves of the protocol conditions
   are kept, so the modelled transition relation contains Bracha's and
   every safety property verified here holds for the real protocol.

   One broadcast instance:
   - a process that received the sender's value echoes it;
   - a process echoes once it sees an echo supermajority
     (2 * echoes > n + t, with the f Byzantine contributions discounted);
   - a process sends ready on an echo supermajority or on t+1 readies;
   - a process accepts on 2t+1 readies.

   Locations: V1 (got the sender's value) / V0 (did not) -> SE (echoed)
   -> SR (ready sent) -> AC (accepted).  Shared: e echoes, r readies
   from correct processes. *)

module A = Ta.Automaton
module G = Ta.Guard
module C = Ta.Cond
module S = Ta.Spec
module Pexpr = Ta.Pexpr

let locations = [ "V1"; "V0"; "SE"; "SR"; "AC" ]

(* 2e >= n + t + 1 - 2f : echo supermajority with Byzantine discount. *)
let echo_supermajority =
  G.ge [ ("e", 2) ] (Pexpr.of_terms [ ("n", 1); ("t", 1); ("f", -2) ] 1)

let rule = A.rule

let automaton =
  A.make ~name:"bracha_rb" ~params:Params.names ~shared:[ "e"; "r" ] ~locations
    ~initial:[ "V1"; "V0" ] ~resilience:Params.resilience
    ~population:Params.population
    ~rules:
      [
        rule "c1" ~source:"V1" ~target:"SE" ~update:[ ("e", 1) ];
        rule "c2" ~source:"V0" ~target:"SE" ~guard:echo_supermajority
          ~update:[ ("e", 1) ];
        rule "c3" ~source:"SE" ~target:"SR" ~guard:echo_supermajority
          ~update:[ ("r", 1) ];
        rule "c4" ~source:"SE" ~target:"SR" ~guard:(G.ge1 "r" Params.t1f)
          ~update:[ ("r", 1) ];
        rule "c5" ~source:"SR" ~target:"AC" ~guard:(G.ge1 "r" Params.t2f);
      ]
    ()

(* Unforgeability: if no correct process received the sender's value,
   no correct process accepts (Byzantine echoes/readies alone cannot
   cross any threshold). *)
let unforgeability =
  S.invariant ~name:"Bracha-Unforg" ~ltl:"[](k[V1] = 0) => [](k[AC] = 0)"
    ~init:(C.empty "V1")
    ~bad:[ ("a process accepts", C.counter_ge "AC" 1) ]
    ()

(* Sanity of the model (deliberately violated): acceptance is reachable
   when the sender's value did arrive — the checker must produce the
   echo -> ready -> accept witness. *)
let acceptance_reachable =
  S.invariant ~name:"Bracha-NoAccept" ~ltl:"[](k[AC] = 0)  (violated)"
    ~bad:[ ("a process accepts", C.counter_ge "AC" 1) ]
    ()

let all_specs = [ unforgeability; acceptance_reachable ]

(* Seeded mutant: a forged echo — the echo-on-quorum rule accepts a
   single (possibly Byzantine) echo instead of a supermajority.  One
   Byzantine echo then snowballs into acceptance from nothing, so the
   checker must refute Bracha-Unforg with a witness. *)
let mutant_forged_echo =
  {
    automaton with
    A.name = "bracha_rb_forged_echo";
    rules =
      List.map
        (fun (r : A.rule) ->
          if r.name = "c2" then
            { r with A.guard = G.ge1 "e" (Pexpr.of_terms [ ("f", -1) ] 1) }
          else r)
        automaton.A.rules;
  }
