(* The binary value broadcast threshold automaton (paper, Fig. 2) and its
   four properties (Section 3.2).

   Locations (Table 1): Vv = initial with value v; Bv = broadcast v,
   nothing delivered; B01 = broadcast both, nothing delivered; Cv =
   delivered v, broadcast only v; CBv = delivered v, broadcast both;
   C01 = delivered both.  Shared variables b0, b1 count the BV messages
   sent by correct processes. *)

module A = Ta.Automaton
module G = Ta.Guard
module C = Ta.Cond
module S = Ta.Spec

let locations = [ "V0"; "V1"; "B0"; "B1"; "B01"; "C0"; "C1"; "CB0"; "CB1"; "C01" ]

let rule = A.rule

let automaton =
  A.make ~name:"bv_broadcast" ~params:Params.names ~shared:[ "b0"; "b1" ]
    ~locations ~initial:[ "V0"; "V1" ] ~resilience:Params.resilience
    ~population:Params.population
    ~rules:
      [
        rule "r1" ~source:"V0" ~target:"B0" ~update:[ ("b0", 1) ];
        rule "r2" ~source:"V1" ~target:"B1" ~update:[ ("b1", 1) ];
        rule "r3" ~source:"B0" ~target:"C0" ~guard:(G.ge1 "b0" Params.t2f);
        rule "r4" ~source:"B0" ~target:"B01" ~guard:(G.ge1 "b1" Params.t1f)
          ~update:[ ("b1", 1) ];
        rule "r5" ~source:"B1" ~target:"B01" ~guard:(G.ge1 "b0" Params.t1f)
          ~update:[ ("b0", 1) ];
        rule "r6" ~source:"B1" ~target:"C1" ~guard:(G.ge1 "b1" Params.t2f);
        rule "r7" ~source:"C0" ~target:"CB0" ~guard:(G.ge1 "b1" Params.t1f)
          ~update:[ ("b1", 1) ];
        rule "r8" ~source:"B01" ~target:"CB0" ~guard:(G.ge1 "b0" Params.t2f);
        rule "r9" ~source:"CB0" ~target:"C01" ~guard:(G.ge1 "b1" Params.t2f);
        rule "r10" ~source:"C1" ~target:"CB1" ~guard:(G.ge1 "b0" Params.t1f)
          ~update:[ ("b0", 1) ];
        rule "r11" ~source:"B01" ~target:"CB1" ~guard:(G.ge1 "b1" Params.t2f);
        rule "r12" ~source:"CB1" ~target:"C01" ~guard:(G.ge1 "b0" Params.t2f);
      ]
    ~self_loops:7 ()

(* Locations of a process that has not (yet) delivered value v. *)
let locs_missing v =
  let other = [ "C" ^ v; "CB" ^ v ] in
  List.filter (fun l -> not (List.mem l (other @ [ "C01" ]))) locations

(* Locations where v has been delivered (v in contestants). *)
let locs_delivered v = [ "C" ^ v; "CB" ^ v; "C01" ]

(* BV-Justification: if no correct process bv-broadcasts v, no correct
   process delivers v. *)
let just v =
  S.invariant
    ~name:("BV-Just" ^ v)
    ~ltl:
      (Printf.sprintf "k[V%s] = 0 => [](k[C%s] = 0 /\\ k[CB%s] = 0 /\\ k[C01] = 0)" v v v)
    ~init:(C.empty ("V" ^ v))
    ~bad:[ ("some process delivered " ^ v, C.some_nonempty (locs_delivered v)) ]
    ()

(* BV-Obligation: if at least t+1 correct processes broadcast v, v is
   eventually delivered by every correct process. *)
let obl v =
  S.liveness
    ~name:("BV-Obl" ^ v)
    ~ltl:(Printf.sprintf "[](b%s >= t+1 => <>(all correct processes delivered %s))" v v)
    ~observations:[ (Printf.sprintf "b%s >= t+1" v, C.shared_ge [ ("b" ^ v, 1) ] Params.t1) ]
    ~target_violated:(C.some_nonempty (locs_missing v))
    ()

(* BV-Uniformity: if some correct process delivers v, every correct
   process eventually delivers v. *)
let unif v =
  S.liveness
    ~name:("BV-Unif" ^ v)
    ~ltl:
      (Printf.sprintf "<>(some process delivered %s) => <>(all processes delivered %s)" v v)
    ~observations:
      [ (Printf.sprintf "some process delivered %s" v, C.some_nonempty (locs_delivered v)) ]
    ~target_violated:(C.some_nonempty (locs_missing v))
    ()

(* BV-Termination: eventually every correct process delivers some value. *)
let term =
  S.liveness ~name:"BV-Term"
    ~ltl:"<>(k[V0] = 0 /\\ k[V1] = 0 /\\ k[B0] = 0 /\\ k[B1] = 0 /\\ k[B01] = 0)"
    ~target_violated:(C.some_nonempty [ "V0"; "V1"; "B0"; "B1"; "B01" ])
    ()

(* The properties in Table 2 order (the paper reports the v = 0 variants;
   the v = 1 variants are symmetric and also exported). *)
let table2_specs = [ just "0"; obl "0"; unif "0"; term ]

let all_specs = [ just "0"; just "1"; obl "0"; obl "1"; unif "0"; unif "1"; term ]

(* BV-Just0 by name, for consumers that pin one spec (Zoo, Crossval). *)
let just0_spec = just "0"

(* --- fuzz-divergence mutants --------------------------------------- *)

(* Seeded modelling bugs the checker cannot catch: the shared counters
   b0/b1 count messages from correct processes, so a sound model
   discounts the up-to-f forged ones a threshold may absorb (t+1-f,
   2t+1-f).  These mutants drop that discount on some or all guards
   while the environment lets f <= 2t processes actually misbehave.
   BV-Just0 then holds VACUOUSLY on the automaton: with no initial V0,
   b0 can only be bumped through guards demanding b0 >= t+1 > 0, so
   the checker proves every delivery of 0 unreachable — inside a model
   that silently dropped the adversary.  The simulated network has the
   adversary: f = t+1 flooders push the unproposed value past the real
   t+1 / 2t+1 implementation thresholds and violate bv-justification.
   Only the fuzz layer rejects these mutants (Zoo rejection [Fuzz]). *)
let make_slack_mutant ~name ~echo ~delivery =
  A.make ~name ~params:Params.names ~shared:[ "b0"; "b1" ] ~locations
    ~initial:[ "V0"; "V1" ] ~resilience:Params.weak_resilience
    ~population:Params.population
    ~rules:
      [
        rule "r1" ~source:"V0" ~target:"B0" ~update:[ ("b0", 1) ];
        rule "r2" ~source:"V1" ~target:"B1" ~update:[ ("b1", 1) ];
        rule "r3" ~source:"B0" ~target:"C0" ~guard:(G.ge1 "b0" delivery);
        rule "r4" ~source:"B0" ~target:"B01" ~guard:(G.ge1 "b1" echo)
          ~update:[ ("b1", 1) ];
        rule "r5" ~source:"B1" ~target:"B01" ~guard:(G.ge1 "b0" echo)
          ~update:[ ("b0", 1) ];
        rule "r6" ~source:"B1" ~target:"C1" ~guard:(G.ge1 "b1" delivery);
        rule "r7" ~source:"C0" ~target:"CB0" ~guard:(G.ge1 "b1" echo)
          ~update:[ ("b1", 1) ];
        rule "r8" ~source:"B01" ~target:"CB0" ~guard:(G.ge1 "b0" delivery);
        rule "r9" ~source:"CB0" ~target:"C01" ~guard:(G.ge1 "b1" delivery);
        rule "r10" ~source:"C1" ~target:"CB1" ~guard:(G.ge1 "b0" echo)
          ~update:[ ("b0", 1) ];
        rule "r11" ~source:"B01" ~target:"CB1" ~guard:(G.ge1 "b1" delivery);
        rule "r12" ~source:"CB1" ~target:"C01" ~guard:(G.ge1 "b0" delivery);
      ]
    ~self_loops:7 ()

(* Every threshold unforged: guards t+1 / 2t+1 with no -f slack. *)
let mutant_missing_slack =
  make_slack_mutant ~name:"bv_missing_slack" ~echo:Params.t1 ~delivery:Params.t2

(* Only the echo-relay thresholds unforged; delivery keeps the sound
   2t+1-f.  Still checker-invisible: the unforgeable t+1 echo guard is
   the one that keeps b0 pinned at 0. *)
let mutant_unforged_echo =
  make_slack_mutant ~name:"bv_unforged_echo" ~echo:Params.t1 ~delivery:Params.t2f
