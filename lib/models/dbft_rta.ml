(* The round-based (extended) formulation of the simplified DBFT
   threshold automaton.  Where [Simplified_ta] hand-unrolls the two
   halves of the superround with "" / "x" name suffixes, this module
   states the algorithm once per parity as an {!Ta.Rta} phase template
   and lets [Rta.unroll] perform the instantiation, certified by the
   mangling maps.

   [Rta.unroll ~suffix:Rta.legacy_suffix ~rounds:2] must reproduce
   [Simplified_ta.automaton] *bit-identically* — same location, shared,
   rule, justice and round-switch lists in the same order — which
   test/test_rta.ml pins.  The per-parity gadget semantics are
   documented in simplified_ta.ml. *)

module A = Ta.Automaton
module G = Ta.Guard
module C = Ta.Cond
module S = Ta.Spec
module Rta = Ta.Rta
module Pexpr = Ta.Pexpr

let round_locations = [ "V0"; "V1"; "M"; "M0"; "M1"; "M01"; "E0"; "E1" ]
let round_shared = [ "bvb0"; "bvb1"; "aux0"; "aux1" ]

let rule = Rta.rule

(* The bv-broadcast gadget plus decision layer of one parity.  [decide0],
   [decide1], [mixed] are the targets for aux-qualifier sets {0}, {1},
   {0,1}; the deciding one is the parity's pinned decision location. *)
let phase_rules ~decide0 ~decide1 ~mixed =
  [
    rule "s1" ~source:"V0" ~target:(Rta.Here "M") ~update:[ ("bvb0", 1) ];
    rule "s2" ~source:"V1" ~target:(Rta.Here "M") ~update:[ ("bvb1", 1) ];
    rule "s3" ~source:"M" ~target:(Rta.Here "M0")
      ~guard:(G.ge1 "bvb0" (Pexpr.const 1))
      ~update:[ ("aux0", 1) ] ~fairness:A.Unfair;
    rule "s4" ~source:"M" ~target:(Rta.Here "M1")
      ~guard:(G.ge1 "bvb1" (Pexpr.const 1))
      ~update:[ ("aux1", 1) ] ~fairness:A.Unfair;
    rule "s5" ~source:"M0" ~target:(Rta.Here decide0)
      ~guard:(G.ge1 "aux0" Params.ntf);
    rule "s6" ~source:"M0" ~target:(Rta.Here "M01")
      ~guard:(G.ge1 "bvb1" (Pexpr.const 1))
      ~fairness:A.Unfair;
    rule "s7" ~source:"M1" ~target:(Rta.Here "M01")
      ~guard:(G.ge1 "bvb0" (Pexpr.const 1))
      ~fairness:A.Unfair;
    rule "s8" ~source:"M1" ~target:(Rta.Here decide1)
      ~guard:(G.ge1 "aux1" Params.ntf);
    rule "s9" ~source:"M01" ~target:(Rta.Here decide0)
      ~guard:(G.ge1 "aux0" Params.ntf);
    rule "s10" ~source:"M01" ~target:(Rta.Here mixed)
      ~guard:(G.ge [ ("aux0", 1); ("aux1", 1) ] Params.ntf);
    rule "s11" ~source:"M01" ~target:(Rta.Here decide1)
      ~guard:(G.ge1 "aux1" Params.ntf);
  ]

(* Justice constraints of one parity (Appendix F), on template names. *)
let phase_justice =
  [
    { Rta.loc = "M"; unless = G.tt };
    { Rta.loc = "M0"; unless = G.ge1 "bvb1" Params.t1 };
    { Rta.loc = "M1"; unless = G.ge1 "bvb0" Params.t1 };
    { Rta.loc = "M0"; unless = G.ge1 "aux1" (Pexpr.const 1) };
    { Rta.loc = "M1"; unless = G.ge1 "aux0" (Pexpr.const 1) };
  ]

(* Odd parity: qualifiers {1} decide (D1 pinned); estimates feed the even
   half through the s12-s14 round-switch rules. *)
let odd_phase =
  Rta.phase ~name:"odd" ~locations:round_locations ~pinned:[ "D1" ]
    ~entry:[ "V0"; "V1" ] ~shared:round_shared
    ~rules:
      (phase_rules ~decide0:"E0" ~decide1:"D1" ~mixed:"E1"
      @ [
          rule "s12" ~source:"E0" ~target:(Rta.Next "V0");
          rule "s13" ~source:"E1" ~target:(Rta.Next "V1");
          rule "s14" ~source:"D1" ~target:(Rta.Next "V1");
        ])
    ~justice:phase_justice ~self_loops:6 ()

(* Even parity: qualifiers {0} decide (D0 pinned); the wrap-around edges
   become round_switch entries when the phase closes the unrolling. *)
let even_phase =
  Rta.phase ~name:"even" ~locations:round_locations ~pinned:[ "D0" ]
    ~entry:[ "V0"; "V1" ] ~shared:round_shared
    ~rules:
      (phase_rules ~decide0:"D0" ~decide1:"E1" ~mixed:"E0"
      @ [
          rule "s12" ~source:"D0" ~target:(Rta.Next "V0");
          rule "s13" ~source:"E0" ~target:(Rta.Next "V0");
          rule "s14" ~source:"E1" ~target:(Rta.Next "V1");
        ])
    ~justice:phase_justice ~self_loops:6 ()

let make_with_resilience ~name resilience =
  Rta.make ~name ~params:Params.names ~resilience ~population:Params.population
    ~phases:[ odd_phase; even_phase ] ()

let rta = make_with_resilience ~name:"simplified_consensus" Params.resilience

let rta_broken_resilience =
  make_with_resilience ~name:"simplified_consensus_broken" Params.broken_resilience

(* The superround: one odd + one even half, under the hand-written
   naming.  [unrolled.automaton] is bit-identical to
   [Simplified_ta.automaton]. *)
let unrolled = Rta.unroll ~suffix:Rta.legacy_suffix ~rounds:2 rta

let automaton = unrolled.Rta.automaton

let unrolled_broken_resilience =
  Rta.unroll ~suffix:Rta.legacy_suffix ~rounds:2 rta_broken_resilience

(* ------------------------------------------------------------------ *)
(* Round-generic specifications: built from template names and the
   unrolled name maps, not from hand-suffixed strings.  For the 2-round
   legacy unrolling these are structurally identical to
   [Simplified_ta.inv2_0] / [Simplified_ta.good_0] (pinned by tests). *)

(* Inv2_0: [](k[V0@first] = 0) => [](k[D0] = 0 /\ k[E0@last] = 0). *)
let inv2_0_of u =
  let last = u.Rta.rounds - 1 in
  let v0 = Rta.loc u ~round:0 "V0" in
  let d0 = Rta.loc u ~round:last "D0" in
  let e0 = Rta.loc u ~round:last "E0" in
  S.invariant ~name:"Inv2_0"
    ~ltl:(Printf.sprintf "[](k[%s] = 0) => [](k[%s] = 0 /\\ k[%s] = 0)" v0 d0 e0)
    ~init:(C.empty v0)
    ~bad:[ ("0 decided or kept", C.some_nonempty [ d0; e0 ]) ]
    ()

(* Good_0: a 0-good bv-broadcast first half forces progress. *)
let good_0_of u =
  let last = u.Rta.rounds - 1 in
  let m0 = Rta.loc u ~round:0 "M0" in
  let d0 = Rta.loc u ~round:last "D0" in
  let e0 = Rta.loc u ~round:last "E0" in
  S.invariant ~name:"Good_0"
    ~ltl:(Printf.sprintf "[](k[%s] = 0) => [](k[%s] = 0 /\\ k[%s] = 0)" m0 d0 e0)
    ~never_enter:[ m0 ]
    ~bad:[ ("0 decided or kept", C.some_nonempty [ d0; e0 ]) ]
    ()

let inv2_0 = inv2_0_of unrolled
let good_0 = good_0_of unrolled
