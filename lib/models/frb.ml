(* The folklore reliable broadcast for crash faults ("frb" in the
   Konnov et al. survey benchmarks, PAPERS.md): accept the payload on
   first receipt — directly from the broadcaster or relayed by any
   accepting process — and relay it on accepting.  Crash model: no
   Byzantine discount in the guard (a crashed process sends no forged
   messages).

   Locations: V1 (got the broadcast) / V0 -> AC (accepted, relayed).
   Shared: nsnt relayed copies from correct processes. *)

module A = Ta.Automaton
module C = Ta.Cond
module S = Ta.Spec
module G = Ta.Guard
module Pexpr = Ta.Pexpr

let rule = A.rule

let rules =
  [
    rule "f1" ~source:"V1" ~target:"AC" ~update:[ ("nsnt", 1) ];
    rule "f2" ~source:"V0" ~target:"AC" ~guard:(G.ge1 "nsnt" (Pexpr.const 1))
      ~update:[ ("nsnt", 1) ];
  ]

let automaton =
  A.make ~name:"frb" ~params:Params.names ~shared:[ "nsnt" ]
    ~locations:[ "V1"; "V0"; "AC" ] ~initial:[ "V1"; "V0" ]
    ~resilience:Params.resilience ~population:Params.population ~rules ()

(* Unforgeability: nobody accepts a payload that was never broadcast. *)
let unforgeability =
  S.invariant ~name:"FRB-Unforg" ~ltl:"[](k[V1] = 0) => [](k[AC] = 0)"
    ~init:(C.empty "V1")
    ~bad:[ ("a process accepts", C.counter_ge "AC" 1) ]
    ()

(* Deliberately violated: acceptance is reachable in one step. *)
let acceptance_reachable =
  S.invariant ~name:"FRB-NoAccept" ~ltl:"[](k[AC] = 0)  (violated)"
    ~bad:[ ("a process accepts", C.counter_ge "AC" 1) ]
    ()

let all_specs = [ unforgeability; acceptance_reachable ]

(* Seeded mutant: a relay-back edge AC -> V0 closes a cycle in the
   location graph — the linter must reject it (TA004: the schema
   enumeration requires a DAG). *)
let mutant_cycle =
  A.make ~name:"frb_cycle" ~params:Params.names ~shared:[ "nsnt" ]
    ~locations:[ "V1"; "V0"; "AC" ] ~initial:[ "V1"; "V0" ]
    ~resilience:Params.resilience ~population:Params.population
    ~rules:(rules @ [ rule "f3" ~source:"AC" ~target:"V0" ])
    ()
