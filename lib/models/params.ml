(* Shared parameter setup for all three threshold automata of the paper:
   n processes, at most t < n/3 Byzantine, f <= t actually faulty. *)

module Pexpr = Ta.Pexpr

let n = Pexpr.param "n"
let t = Pexpr.param "t"
let f = Pexpr.param "f"
let names = [ "n"; "t"; "f" ]

(* t + 1 - f : a message from t+1 distinct processes, discounting the f
   messages Byzantine processes may contribute (paper, Section 3.1). *)
let t1f = Pexpr.of_terms [ ("t", 1); ("f", -1) ] 1

(* 2t + 1 - f *)
let t2f = Pexpr.of_terms [ ("t", 2); ("f", -1) ] 1

(* n - t - f *)
let ntf = Pexpr.of_terms [ ("n", 1); ("t", -1); ("f", -1) ] 0

(* t + 1 (threshold on messages from correct processes only) *)
let t1 = Pexpr.of_terms [ ("t", 1) ] 1

(* 2t + 1 without the -f discount: a threshold a modeler writes when
   forgetting that f of the counted messages may be forged. *)
let t2 = Pexpr.of_terms [ ("t", 2) ] 1

(* Resilience condition n > 3t /\ t >= f >= 0, as e >= 0 constraints. *)
let resilience =
  [
    Pexpr.of_terms [ ("n", 1); ("t", -3) ] (-1);
    Pexpr.of_terms [ ("t", 1); ("f", -1) ] 0;
    Pexpr.of_terms [ ("f", 1) ] 0;
  ]

(* Over-optimistic environment n > 3t /\ 0 <= f <= 2t: up to twice as
   many processes may actually misbehave as the correct code assumes.
   Used by the fuzz-divergence mutants (see Bv_ta). *)
let weak_resilience =
  [
    Pexpr.of_terms [ ("n", 1); ("t", -3) ] (-1);
    Pexpr.of_terms [ ("t", 2); ("f", -1) ] 0;
    Pexpr.of_terms [ ("f", 1) ] 0;
  ]

(* Broken resilience n > 2t (tolerating too many Byzantine processes):
   used to regenerate the paper's counterexample to Inv1_0. *)
let broken_resilience =
  [
    Pexpr.of_terms [ ("n", 1); ("t", -2) ] (-1);
    Pexpr.of_terms [ ("t", 1); ("f", -1) ] 0;
    Pexpr.of_terms [ ("f", 1) ] 0;
  ]

(* Number of correct processes modelled by the automaton. *)
let population = Pexpr.of_terms [ ("n", 1); ("f", -1) ] 0
