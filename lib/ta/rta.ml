type target = Here of string | Next of string

type rule = {
  name : string;
  source : string;
  target : target;
  guard : Guard.t;
  update : (string * int) list;
  fairness : Automaton.fairness;
}

type justice = { loc : string; unless : Guard.t }

type phase = {
  phase_name : string;
  locations : string list;
  pinned : string list;
  entry : string list;
  shared : string list;
  rules : rule list;
  justice : justice list;
  self_loops : int;
}

type t = {
  name : string;
  params : string list;
  global_shared : string list;
  resilience : Pexpr.t list;
  population : Pexpr.t;
  phases : phase list;
}

let rule ?(guard = Guard.tt) ?(update = []) ?(fairness = Automaton.Fair) name ~source
    ~target =
  { name; source; target; guard; update; fairness }

let fail fmt = Printf.ksprintf invalid_arg fmt

let check_distinct what xs =
  let rec dup = function
    | a :: b :: _ when a = b -> Some a
    | _ :: rest -> dup rest
    | [] -> None
  in
  match dup (List.sort Stdlib.compare xs) with
  | Some d -> fail "Rta: duplicate %s %S" what d
  | None -> ()

(* Kahn's algorithm over the Here edges of one phase: every phase must be
   a DAG on its own so the unrolled automaton (rounds chained only by
   forward Next edges) is one too. *)
let phase_is_dag p =
  let locs = p.locations @ p.pinned in
  let indeg = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace indeg l 0) locs;
  let here_edges =
    List.filter_map
      (fun r -> match r.target with Here l -> Some (r.source, l) | Next _ -> None)
      p.rules
  in
  List.iter (fun (_, l) -> Hashtbl.replace indeg l (Hashtbl.find indeg l + 1)) here_edges;
  let queue = Queue.create () in
  List.iter (fun l -> if Hashtbl.find indeg l = 0 then Queue.add l queue) locs;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let l = Queue.pop queue in
    incr seen;
    List.iter
      (fun (src, tgt) ->
        if src = l then begin
          let d = Hashtbl.find indeg tgt - 1 in
          Hashtbl.replace indeg tgt d;
          if d = 0 then Queue.add tgt queue
        end)
      here_edges
  done;
  !seen = List.length locs

let phase ~name ~locations ?(pinned = []) ~entry ?(shared = []) ~rules ?(justice = [])
    ?(self_loops = 0) () =
  let p =
    { phase_name = name; locations; pinned; entry; shared; rules; justice; self_loops }
  in
  let all_locs = locations @ pinned in
  check_distinct ("location of phase " ^ name) all_locs;
  check_distinct ("shared variable of phase " ^ name) shared;
  check_distinct ("rule name of phase " ^ name) (List.map (fun (r : rule) -> r.name) rules);
  if entry = [] then fail "Rta: phase %s has no entry location" name;
  List.iter
    (fun e ->
      if not (List.mem e locations) then
        fail "Rta: phase %s entry %S is not a (round-local) location" name e)
    entry;
  List.iter
    (fun r ->
      if not (List.mem r.source all_locs) then
        fail "Rta: phase %s rule %s has unknown source %S" name r.name r.source;
      (match r.target with
      | Here l ->
        if not (List.mem l all_locs) then
          fail "Rta: phase %s rule %s has unknown target %S" name r.name l
      | Next _ -> ());
      List.iter
        (fun (_, c) ->
          if c < 0 then fail "Rta: phase %s rule %s has a negative update" name r.name)
        r.update)
    rules;
  List.iter
    (fun j ->
      if not (List.mem j.loc all_locs) then
        fail "Rta: phase %s justice constraint on unknown location %S" name j.loc)
    justice;
  if not (phase_is_dag p) then
    fail "Rta: phase %s has a cyclic Here-graph (monotone-DAG restriction)" name;
  p

let make ~name ~params ?(global_shared = []) ~resilience ~population ~phases () =
  if phases = [] then fail "Rta %s: no phases" name;
  check_distinct "parameter" params;
  check_distinct "global shared variable" global_shared;
  check_distinct "phase name" (List.map (fun p -> p.phase_name) phases);
  let known_param p = List.mem p params in
  let check_pexpr what (e : Pexpr.t) =
    List.iter
      (fun p ->
        if not (known_param p) then fail "Rta %s: unknown parameter %S in %s" name p what)
      (Pexpr.params e)
  in
  List.iter (check_pexpr "resilience") resilience;
  check_pexpr "population" population;
  let n = List.length phases in
  List.iteri
    (fun i p ->
      List.iter
        (fun x ->
          if List.mem x global_shared then
            fail "Rta %s: phase %s shadows global shared variable %S" name p.phase_name x)
        p.shared;
      let known_shared x = List.mem x p.shared || List.mem x global_shared in
      let check_guard what (g : Guard.t) =
        List.iter
          (fun (a : Guard.atom) ->
            List.iter
              (fun (x, c) ->
                if not (known_shared x) then
                  fail "Rta %s: phase %s: unknown shared variable %S in %s" name
                    p.phase_name x what;
                if c <= 0 then
                  fail "Rta %s: phase %s: non-positive guard coefficient in %s" name
                    p.phase_name what)
              a.Guard.shared;
            check_pexpr what a.Guard.bound)
          g
      in
      let next = List.nth phases ((i + 1) mod n) in
      List.iter
        (fun (r : rule) ->
          check_guard ("rule " ^ r.name) r.guard;
          List.iter
            (fun (x, _) ->
              if not (known_shared x) then
                fail "Rta %s: phase %s rule %s updates unknown variable %S" name
                  p.phase_name r.name x)
            r.update;
          match r.target with
          | Here _ -> ()
          | Next l ->
            if not (List.mem l next.entry) then
              fail
                "Rta %s: phase %s rule %s targets %S, not an entry location of the next \
                 phase %s"
                name p.phase_name r.name l next.phase_name)
        p.rules;
      List.iter (fun j -> check_guard "justice" j.unless) p.justice)
    phases;
  { name; params; global_shared; resilience; population; phases }

(* ------------------------------------------------------------------ *)
(* Unrolling.                                                          *)

type unrolled = {
  rta : t;
  rounds : int;
  suffix : int -> string;
  automaton : Automaton.t;
  location_origin : (string * (int * string)) list;
  shared_origin : (string * (int * string)) list;
  rule_origin : (string * (int * string)) list;
}

let default_suffix r = "@" ^ string_of_int r

let legacy_suffix = function
  | 0 -> ""
  | 1 -> "x"
  | r -> fail "Rta.legacy_suffix: the hand-written naming covers rounds 0-1, not %d" r

(* The mangling certificate: reconstruct every round from the origin maps
   and the flat automaton alone, and compare against the template.  This
   is deliberately independent of how [unroll] built the names — it only
   trusts the maps it is checking. *)
let validate (u : unrolled) : (unit, string) result =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let ( let* ) = Result.bind in
  let n = List.length u.rta.phases in
  let phase_of r = List.nth u.rta.phases (r mod n) in
  let a = u.automaton in
  let check_map what names map =
    if List.sort compare (List.map fst map) <> List.sort compare names then
      err "%s origin map does not cover the automaton's %ss exactly" what what
    else Ok ()
  in
  let* () = check_map "location" a.Automaton.locations u.location_origin in
  let* () = check_map "shared variable" a.Automaton.shared u.shared_origin in
  let* () =
    check_map "rule"
      (List.map (fun (r : Automaton.rule) -> r.name) a.Automaton.rules)
      u.rule_origin
  in
  let demangle_loc m =
    match List.assoc_opt m u.location_origin with
    | Some o -> Ok o
    | None -> err "unrolled location %S has no origin" m
  in
  let demangle_shared m =
    match List.assoc_opt m u.shared_origin with
    | Some o -> Ok o
    | None -> err "unrolled shared variable %S has no origin" m
  in
  let rec each f = function
    | [] -> Ok ()
    | x :: rest ->
      let* () = f x in
      each f rest
  in
  let demangle_guard ~round (g : Guard.t) : (Guard.t, string) result =
    let demangle_atom (at : Guard.atom) =
      let rec go acc = function
        | [] -> Ok { at with Guard.shared = List.rev acc }
        | (x, c) :: rest ->
          let* r, base = demangle_shared x in
          if r <> round && r <> -1 then
            err "guard variable %S of round %d leaks into round %d" x r round
          else go ((base, c) :: acc) rest
      in
      go [] at.Guard.shared
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | at :: rest ->
        let* at' = demangle_atom at in
        go (at' :: acc) rest
    in
    go [] g
  in
  (* Global shared variables must be present verbatim with origin -1. *)
  let* () =
    each
      (fun x ->
        match List.assoc_opt x u.shared_origin with
        | Some (-1, base) when base = x -> Ok ()
        | _ -> err "global shared variable %S lost its identity" x)
      u.rta.global_shared
  in
  (* Initial locations = round-0 entries. *)
  let* () =
    let rec go = function
      | [], [] -> Ok ()
      | m :: ms, e :: es ->
        let* r, base = demangle_loc m in
        if (r, base) <> (0, e) then err "initial location %S is not round-0 entry %S" m e
        else go (ms, es)
      | _ -> err "initial locations do not match the round-0 entry list"
    in
    go (a.Automaton.initial, (phase_of 0).entry)
  in
  (* Per-round re-projection. *)
  let* () =
    each
      (fun r ->
        let p = phase_of r in
        let bases =
          List.filter_map
            (fun m ->
              match List.assoc_opt m u.location_origin with
              | Some (r', base) when r' = r -> Some base
              | _ -> None)
            a.Automaton.locations
        in
        if bases <> p.locations @ p.pinned then
          err "round %d locations [%s] do not re-project onto phase %s" r
            (String.concat ";" bases) p.phase_name
        else
          let sbases =
            List.filter_map
              (fun m ->
                match List.assoc_opt m u.shared_origin with
                | Some (r', base) when r' = r -> Some base
                | _ -> None)
              a.Automaton.shared
          in
          if sbases <> p.shared then err "round %d shared variables do not re-project" r
          else
            let instances =
              List.filter
                (fun (ru : Automaton.rule) ->
                  match List.assoc_opt ru.name u.rule_origin with
                  | Some (r', _) -> r' = r
                  | None -> false)
                a.Automaton.rules
            in
            let expected =
              List.filter
                (fun (tr : rule) ->
                  match tr.target with Here _ -> true | Next _ -> r < u.rounds - 1)
                p.rules
            in
            if
              List.map
                (fun (ru : Automaton.rule) -> snd (List.assoc ru.name u.rule_origin))
                instances
              <> List.map (fun (tr : rule) -> tr.name) expected
            then err "round %d rules do not re-project onto phase %s" r p.phase_name
            else
              each
                (fun ((ru : Automaton.rule), (tr : rule)) ->
                  let* sr, sbase = demangle_loc ru.source in
                  if (sr, sbase) <> (r, tr.source) then
                    err "rule %s: source %S is not round-%d %S" ru.name ru.source r
                      tr.source
                  else
                    let* tround, tbase = demangle_loc ru.target in
                    let want =
                      match tr.target with Here l -> (r, l) | Next l -> (r + 1, l)
                    in
                    if (tround, tbase) <> want then
                      err "rule %s: target %S does not re-project" ru.name ru.target
                    else
                      let* g = demangle_guard ~round:r ru.guard in
                      if g <> tr.guard then
                        err "rule %s: guard does not re-project" ru.name
                      else
                        let rec upd acc = function
                          | [] -> Ok (List.rev acc)
                          | (x, c) :: rest ->
                            let* ur, ubase = demangle_shared x in
                            if ur <> r && ur <> -1 then
                              err "rule %s: update variable %S leaks rounds" ru.name x
                            else upd ((ubase, c) :: acc) rest
                        in
                        let* update = upd [] ru.update in
                        if update <> tr.update then
                          err "rule %s: update does not re-project" ru.name
                        else if ru.fairness <> tr.fairness then
                          err "rule %s: fairness flag changed" ru.name
                        else Ok ())
                (List.combine instances expected))
      (List.init u.rounds (fun r -> r))
  in
  (* Justice: the flat list is the per-round concatenation. *)
  let* () =
    let expected =
      List.concat
        (List.init u.rounds (fun r ->
             List.map (fun (j : justice) -> (r, j)) (phase_of r).justice))
    in
    if List.length expected <> List.length a.Automaton.justice then
      err "justice constraint count changed under unrolling"
    else
      each
        (fun ((r, (tj : justice)), (aj : Automaton.justice)) ->
          let* jr, jbase = demangle_loc aj.loc in
          if (jr, jbase) <> (r, tj.loc) then err "justice on %S does not re-project" aj.loc
          else
            let* g = demangle_guard ~round:r aj.unless in
            if g <> tj.unless then err "justice guard on %S does not re-project" aj.loc
            else Ok ())
        (List.combine expected a.Automaton.justice)
  in
  (* Round switch: exactly the last round's Next rules, wrapping to the
     cycle's next entry instance. *)
  let last = u.rounds - 1 in
  let wrap = (last + 1) mod n in
  let expected_switch =
    List.filter_map
      (fun (tr : rule) ->
        match tr.target with Next l -> Some (tr.source, l) | Here _ -> None)
      (phase_of last).rules
  in
  if List.length expected_switch <> List.length a.Automaton.round_switch then
    err "round-switch count does not match the last round's Next rules"
  else
    each
      (fun (((src, tgt) : string * string), ((asrc, atgt) : string * string)) ->
        let* sr, sbase = demangle_loc asrc in
        let* tr_, tbase = demangle_loc atgt in
        if (sr, sbase) <> (last, src) then err "round switch source %S mismatches" asrc
        else if (tr_, tbase) <> (wrap, tgt) then
          err "round switch target %S mismatches" atgt
        else Ok ())
      (List.combine expected_switch a.Automaton.round_switch)

let unroll ?(suffix = default_suffix) ~rounds rta =
  if rounds < 1 then fail "Rta.unroll %s: rounds must be >= 1" rta.name;
  let n = List.length rta.phases in
  let phase_of r = List.nth rta.phases (r mod n) in
  let sfx = Array.init rounds suffix in
  let mangle_loc r l = if List.mem l (phase_of r).pinned then l else l ^ sfx.(r) in
  let mangle_shared r x = if List.mem x rta.global_shared then x else x ^ sfx.(r) in
  let mangle_guard r (g : Guard.t) : Guard.t =
    List.map
      (fun (a : Guard.atom) ->
        { a with Guard.shared = List.map (fun (x, c) -> (mangle_shared r x, c)) a.shared })
      g
  in
  (* Collision-checked origin maps: [validate] re-checks them below, but a
     clash (pinned location recurring, non-injective suffix map) must fail
     here with the two offending rounds named, not as a puzzling duplicate
     inside Automaton.make. *)
  let origins = Hashtbl.create 64 in
  let record kind name origin =
    let key = (kind, name) in
    match Hashtbl.find_opt origins key with
    | Some (r, base) ->
      fail "Rta.unroll %s: %s %S of round %d collides with %S of round %d" rta.name kind
        name (fst origin) base r
    | None -> Hashtbl.replace origins key origin
  in
  let locs = ref [] and shared = ref [] and rules = ref [] in
  let loc_origin = ref [] and shared_origin = ref [] and rule_origin = ref [] in
  let round_switch = ref [] in
  let self_loops = ref 0 in
  let justice = ref [] in
  for r = 0 to rounds - 1 do
    let p = phase_of r in
    List.iter
      (fun l ->
        let m = mangle_loc r l in
        record "location" m (r, l);
        locs := m :: !locs;
        loc_origin := (m, (r, l)) :: !loc_origin)
      (p.locations @ p.pinned);
    List.iter
      (fun x ->
        let m = mangle_shared r x in
        record "shared variable" m (r, x);
        shared := m :: !shared;
        shared_origin := (m, (r, x)) :: !shared_origin)
      p.shared;
    List.iter
      (fun (ru : rule) ->
        let emit target =
          let name = ru.name ^ sfx.(r) in
          record "rule" name (r, ru.name);
          rule_origin := (name, (r, ru.name)) :: !rule_origin;
          rules :=
            {
              Automaton.name;
              source = mangle_loc r ru.source;
              target;
              guard = mangle_guard r ru.guard;
              update = List.map (fun (x, c) -> (mangle_shared r x, c)) ru.update;
              fairness = ru.fairness;
            }
            :: !rules
        in
        match ru.target with
        | Here l -> emit (mangle_loc r l)
        | Next l ->
          if r < rounds - 1 then emit (mangle_loc (r + 1) l)
          else begin
            (* The wrap-around: back to the earliest instance of the next
               phase in the cycle (round 0 when the round count is a
               multiple of the cycle length, as in the paper's models). *)
            let wrap = (r + 1) mod n in
            if wrap >= rounds then
              fail
                "Rta.unroll %s: the last round's phase %s wraps to phase %s, which %d \
                 round(s) never instantiate"
                rta.name p.phase_name (phase_of wrap).phase_name rounds;
            round_switch := (mangle_loc r ru.source, mangle_loc wrap l) :: !round_switch
          end)
      p.rules;
    List.iter
      (fun (j : justice) ->
        justice :=
          { Automaton.loc = mangle_loc r j.loc; unless = mangle_guard r j.unless }
          :: !justice)
      p.justice;
    self_loops := !self_loops + p.self_loops
  done;
  List.iter (fun x -> record "shared variable" x (-1, x)) rta.global_shared;
  let automaton =
    Automaton.make ~name:rta.name ~params:rta.params
      ~shared:(List.rev !shared @ rta.global_shared)
      ~locations:(List.rev !locs)
      ~initial:(List.map (mangle_loc 0) (phase_of 0).entry)
      ~resilience:rta.resilience ~population:rta.population ~rules:(List.rev !rules)
      ~justice:(List.rev !justice) ~round_switch:(List.rev !round_switch)
      ~self_loops:!self_loops ()
  in
  let u =
    {
      rta;
      rounds;
      suffix;
      automaton;
      location_origin = List.rev !loc_origin;
      shared_origin =
        List.rev !shared_origin @ List.map (fun x -> (x, (-1, x))) rta.global_shared;
      rule_origin = List.rev !rule_origin;
    }
  in
  (match validate u with
  | Ok () -> ()
  | Error msg -> fail "Rta.unroll %s: mangling certificate rejected: %s" rta.name msg);
  u

(* ------------------------------------------------------------------ *)
(* Name (de-)mangling helpers.                                         *)

let loc u ~round l =
  if round < 0 || round >= u.rounds then
    fail "Rta.loc %s: round %d out of range (0..%d)" u.rta.name round (u.rounds - 1);
  match List.find_opt (fun (_, (r, base)) -> r = round && base = l) u.location_origin with
  | Some (m, _) -> m
  | None -> fail "Rta.loc %s: no location %S in round %d" u.rta.name l round

let shared_var u ~round x =
  if List.mem x u.rta.global_shared then x
  else
    match
      List.find_opt (fun (_, (r, base)) -> r = round && base = x) u.shared_origin
    with
    | Some (m, _) -> m
    | None ->
      fail "Rta.shared_var %s: no shared variable %S in round %d" u.rta.name x round

let origin_of_location u name = List.assoc_opt name u.location_origin
let origin_of_shared u name = List.assoc_opt name u.shared_origin
let origin_of_rule u name = List.assoc_opt name u.rule_origin

let explain_name u name =
  match origin_of_location u name with
  | Some (r, base) -> Printf.sprintf "%s (round %d)" base r
  | None -> (
    match origin_of_shared u name with
    | Some (-1, base) -> Printf.sprintf "%s (global)" base
    | Some (r, base) -> Printf.sprintf "%s (round %d)" base r
    | None -> (
      match origin_of_rule u name with
      | Some (r, base) -> Printf.sprintf "%s (round %d)" base r
      | None -> name))
