(** Round-based extended threshold automata (RTA).

    The paper's multi-round models are hand-unrolled: one copy of the
    per-round process structure per round, with name suffixes ("" / "x")
    applied by hand and the wrap-around edges listed as
    {!Automaton.round_switch} entries.  Following Baumeister et al. 2024
    ("Parameterized Verification of Round-based Distributed Algorithms
    via Extended Threshold Automata"), this module makes the round
    structure a first-class object: an {!t} is a cyclic sequence of
    {e phase templates} — per-round locations, round-local shared
    variables, rules whose targets either stay in the round ({!Here}) or
    enter the next round ({!Next}) — and {!unroll} elaborates it into
    today's {!Automaton.t} for a given round count, with a certified
    name-mangling that maps every unrolled name back to its
    [(round, template name)] origin.

    Soundness of the elaboration (DESIGN.md, "Round unrolling"):
    - each phase's {!Here} graph is a DAG (validated by {!make}) and
      {!Next} edges only go from round [r] to round [r+1], so the
      unrolled location graph is a DAG of DAGs — the schema checker's
      structural precondition is preserved by construction;
    - round-local shared variables are instantiated per round and only
      rules of that round read or increment them, so guard monotonicity
      (positive coefficients, non-negative updates — enforced by the
      {!Guard} and {!Automaton} constructors, which {!unroll} goes
      through) carries over unchanged;
    - the last round's {!Next} rules become {!Automaton.round_switch}
      entries, which the one-round analyses ignore (the paper's
      Appendix A reduction), exactly as in the hand-written models. *)

(** Where a rule lands: in the current round, or at an entry location of
    the next round (the round switch). *)
type target = Here of string | Next of string

type rule = {
  name : string;  (** mangled with the round suffix on instantiation *)
  source : string;
  target : target;
  guard : Guard.t;  (** over round-local and global shared variables *)
  update : (string * int) list;
  fairness : Automaton.fairness;
}

type justice = { loc : string; unless : Guard.t }

(** One round template.  [locations] are instantiated once per round
    occurrence with the round's name suffix; [pinned] locations are
    instantiated verbatim (round-unique sinks such as the decision
    locations [D0]/[D1] of the dBFT superround — a decided process stays
    decided, so the location belongs to the round that decides, not to
    the recurring structure).  [entry] lists the locations populated at
    round start; {!Next} targets must name entry locations of the next
    phase in the cycle. *)
type phase = {
  phase_name : string;
  locations : string list;
  pinned : string list;
  entry : string list;
  shared : string list;  (** round-local shared variables *)
  rules : rule list;
  justice : justice list;
  self_loops : int;
}

type t = {
  name : string;
  params : string list;
  global_shared : string list;  (** shared by every round *)
  resilience : Pexpr.t list;
  population : Pexpr.t;
  phases : phase list;  (** round [r] instantiates [phases.(r mod length)] *)
}

val rule :
  ?guard:Guard.t ->
  ?update:(string * int) list ->
  ?fairness:Automaton.fairness ->
  string ->
  source:string ->
  target:target ->
  rule

(** [phase ~name ~locations ?pinned ~entry ?shared ~rules ?justice
    ?self_loops ()].
    @raise Invalid_argument on malformed input (unknown names, entry not
    a location, duplicate names). *)
val phase :
  name:string ->
  locations:string list ->
  ?pinned:string list ->
  entry:string list ->
  ?shared:string list ->
  rules:rule list ->
  ?justice:justice list ->
  ?self_loops:int ->
  unit ->
  phase

(** [make ...] assembles and validates a round-based automaton: phase
    name resolution, per-phase {!Here}-graph acyclicity, and {!Next}
    targets resolving to entry locations of the successor phase
    (cyclically).
    @raise Invalid_argument when validation fails. *)
val make :
  name:string ->
  params:string list ->
  ?global_shared:string list ->
  resilience:Pexpr.t list ->
  population:Pexpr.t ->
  phases:phase list ->
  unit ->
  t

(** {1 Unrolling} *)

(** The elaboration result: the flat automaton plus the name-mangling
    maps (unrolled name -> (round, template name)) that {!validate}
    certifies and the witness de-mangling helpers invert. *)
type unrolled = {
  rta : t;
  rounds : int;
  suffix : int -> string;
  automaton : Automaton.t;
  location_origin : (string * (int * string)) list;
  shared_origin : (string * (int * string)) list;
      (** global shared variables map to round [-1] *)
  rule_origin : (string * (int * string)) list;
}

(** [default_suffix r] is ["@r"] — collision-free for any round count. *)
val default_suffix : int -> string

(** [legacy_suffix r] is [""] for round 0 and ["x"] for round 1 — the
    hand-written naming of the paper's two-round models (rounds > 2
    collide and are rejected by {!unroll}). *)
val legacy_suffix : int -> string

(** [unroll ?suffix ~rounds rta] instantiates [rounds] consecutive
    phases.  {!Next} rules of rounds [0 .. rounds-2] become ordinary
    rules into the next round's entry instance; those of the last round
    become {!Automaton.round_switch} entries wrapping to the cycle's
    next entry in round 0.  The result goes through {!Automaton.make}
    (re-validating names, monotonicity and update signs) and then
    through {!validate} (re-projecting every round against its template
    — the mangling certificate).
    @raise Invalid_argument on mangled-name collisions (e.g. a pinned
    location recurring across phase occurrences, or a suffix map that is
    not injective on the used rounds) or validation failure. *)
val unroll : ?suffix:(int -> string) -> rounds:int -> t -> unrolled

(** [validate u] re-checks the mangling certificate from scratch:
    the origin maps are total over the automaton's names and injective,
    and re-projecting each round through them reproduces the template
    phase exactly (locations, entries, shared, rules with guards and
    updates rewritten back to template names, justice, and the round
    switch of the last round).  [unroll] already runs this; tests and
    consumers that transport an [unrolled] value can re-run it. *)
val validate : unrolled -> (unit, string) result

(** {1 Name (de-)mangling} *)

(** [loc u ~round l] is the unrolled name of template location [l] in
    [round].
    @raise Invalid_argument when [l] is not a location of that round's
    phase or [round] is out of range. *)
val loc : unrolled -> round:int -> string -> string

(** [shared_var u ~round x] — likewise for round-local shared variables;
    global variables are returned unchanged for any round. *)
val shared_var : unrolled -> round:int -> string -> string

(** [origin_of_location u name] is [(round, template name)];
    [origin_of_shared] reports round [-1] for global variables. *)
val origin_of_location : unrolled -> string -> (int * string) option

val origin_of_shared : unrolled -> string -> (int * string) option
val origin_of_rule : unrolled -> string -> (int * string) option

(** [explain_name u name] renders an unrolled name for display:
    ["M0x" -> "M0 (round 1)"]; names with no origin pass through. *)
val explain_name : unrolled -> string -> string
