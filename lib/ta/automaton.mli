(** Threshold automata (TA).

    A TA describes one process of a fault-tolerant distributed algorithm:
    locations are local states, rules are guarded transitions that may
    increment shared (message-counter) variables, and parameters
    ([n], [t], [f], ...) are constrained by a resilience condition.  The
    semantics is the standard counter system: a configuration counts the
    processes in each location plus the shared-variable values (see the
    paper, Section 2). *)

(** How a rule interacts with fairness assumptions. *)
type fairness =
  | Fair
      (** Reliable communication: if the guard holds forever and the
          source stays non-empty, the rule eventually fires.  In a fair
          limit configuration: guard false or source empty. *)
  | Unfair
      (** Never forced (used for the bv-broadcast gadget rules whose
          forcing conditions are the separate {!justice} entries). *)

type rule = {
  name : string;
  source : string;
  target : string;
  guard : Guard.t;
  update : (string * int) list;  (** non-negative shared increments *)
  fairness : fairness;
}

(** An extra justice constraint: in any fair limit configuration,
    location [loc] is empty or [unless] is false.  Used to import proven
    properties of a verified component (paper, Appendix F: BV-Obligation,
    BV-Uniformity, BV-Termination become justice constraints of the
    simplified consensus TA). *)
type justice = { loc : string; unless : Guard.t }

type t = {
  name : string;
  params : string list;
  shared : string list;
  locations : string list;
  initial : string list;
  resilience : Pexpr.t list;  (** conjunction of [e >= 0] over parameters *)
  population : Pexpr.t;  (** number of modelled (correct) processes, e.g. [n - f] *)
  rules : rule list;
  justice : justice list;
  round_switch : (string * string) list;
      (** multi-round TA only: end-of-round to start-of-next-round edges;
          ignored by the one-round analyses (Appendix A reduction) *)
  self_loops : int;  (** cosmetic self-loop count, for size reporting only *)
}

val rule :
  ?guard:Guard.t ->
  ?update:(string * int) list ->
  ?fairness:fairness ->
  string ->
  source:string ->
  target:string ->
  rule

(** [make ...] assembles and validates an automaton.
    @raise Invalid_argument on malformed input (unknown location or
    variable names, duplicate locations, negative updates). *)
val make :
  name:string ->
  params:string list ->
  shared:string list ->
  locations:string list ->
  initial:string list ->
  resilience:Pexpr.t list ->
  population:Pexpr.t ->
  rules:rule list ->
  ?justice:justice list ->
  ?round_switch:(string * string) list ->
  ?self_loops:int ->
  unit ->
  t

(** {1 Structure} *)

(** [unique_guard_atoms ta] lists the distinct guard atoms of all rules
    (the "unique guards" count of the paper's Table 2). *)
val unique_guard_atoms : t -> Guard.atom list

(** [is_dag ta] checks that the location graph (ignoring self-loops and
    round-switch edges) is acyclic — a precondition of the schema-based
    checker. *)
val is_dag : t -> bool

(** [topological_rule_order ta] returns the rules sorted so that every
    rule whose target feeds another rule's source comes first.
    @raise Invalid_argument if the automaton is not a DAG. *)
val topological_rule_order : t -> rule list

(** [rules_into ta loc] / [rules_from ta loc]. *)
val rules_into : t -> string -> rule list

val rules_from : t -> string -> rule list

(** [sinks ta] is the set of locations with no outgoing rule (ignoring
    self-loops and round switches). *)
val sinks : t -> string list

(** [absorbing_when_empty ta locs] checks that once all of [locs] are
    empty they stay empty: every rule with target in [locs] has its
    source in [locs]. *)
val absorbing_when_empty : t -> string list -> bool

(** Size statistics, matching the columns of the paper's Table 2. *)
type stats = { n_guards : int; n_locations : int; n_rules : int }

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** [find_rule ta name].
    @raise Invalid_argument naming the automaton and the missing rule
    when absent. *)
val find_rule : t -> string -> rule
