type fairness = Fair | Unfair

type rule = {
  name : string;
  source : string;
  target : string;
  guard : Guard.t;
  update : (string * int) list;
  fairness : fairness;
}

type justice = { loc : string; unless : Guard.t }

type t = {
  name : string;
  params : string list;
  shared : string list;
  locations : string list;
  initial : string list;
  resilience : Pexpr.t list;
  population : Pexpr.t;
  rules : rule list;
  justice : justice list;
  round_switch : (string * string) list;
  self_loops : int;
}

let rule ?(guard = Guard.tt) ?(update = []) ?(fairness = Fair) name ~source ~target =
  { name; source; target; guard; update; fairness }

let validate ta =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let check_distinct what xs =
    let sorted = List.sort Stdlib.compare xs in
    let rec dup = function
      | a :: b :: _ when a = b -> Some a
      | _ :: rest -> dup rest
      | [] -> None
    in
    match dup sorted with
    | Some d -> fail "Automaton %s: duplicate %s %S" ta.name what d
    | None -> ()
  in
  check_distinct "location" ta.locations;
  check_distinct "shared variable" ta.shared;
  check_distinct "parameter" ta.params;
  check_distinct "rule name" (List.map (fun (r : rule) -> r.name) ta.rules);
  let known_loc l = List.mem l ta.locations in
  let known_shared x = List.mem x ta.shared in
  let known_param p = List.mem p ta.params in
  List.iter
    (fun l -> if not (known_loc l) then fail "Automaton %s: unknown initial location %S" ta.name l)
    ta.initial;
  let check_pexpr what (e : Pexpr.t) =
    List.iter
      (fun p ->
        if not (known_param p) then
          fail "Automaton %s: unknown parameter %S in %s" ta.name p what)
      (Pexpr.params e)
  in
  List.iter (check_pexpr "resilience") ta.resilience;
  check_pexpr "population" ta.population;
  let check_guard what (g : Guard.t) =
    List.iter
      (fun (a : Guard.atom) ->
        List.iter
          (fun (x, c) ->
            if not (known_shared x) then
              fail "Automaton %s: unknown shared variable %S in %s" ta.name x what;
            if c <= 0 then
              fail "Automaton %s: non-positive guard coefficient in %s" ta.name what)
          a.shared;
        check_pexpr what a.bound)
      g
  in
  List.iter
    (fun r ->
      if not (known_loc r.source) then
        fail "Automaton %s: rule %s has unknown source %S" ta.name r.name r.source;
      if not (known_loc r.target) then
        fail "Automaton %s: rule %s has unknown target %S" ta.name r.name r.target;
      if r.source = r.target then
        fail "Automaton %s: rule %s is a self-loop; use the self_loops count instead"
          ta.name r.name;
      check_guard ("rule " ^ r.name) r.guard;
      List.iter
        (fun (x, c) ->
          if not (known_shared x) then
            fail "Automaton %s: rule %s updates unknown variable %S" ta.name r.name x;
          if c < 0 then
            fail "Automaton %s: rule %s has a negative update (monotonicity violated)"
              ta.name r.name)
        r.update)
    ta.rules;
  List.iter
    (fun j ->
      if not (known_loc j.loc) then
        fail "Automaton %s: justice constraint on unknown location %S" ta.name j.loc;
      check_guard "justice" j.unless)
    ta.justice;
  List.iter
    (fun (a, b) ->
      if not (known_loc a && known_loc b) then
        fail "Automaton %s: round switch on unknown location" ta.name)
    ta.round_switch;
  ta

let make ~name ~params ~shared ~locations ~initial ~resilience ~population ~rules
    ?(justice = []) ?(round_switch = []) ?(self_loops = 0) () =
  validate
    {
      name;
      params;
      shared;
      locations;
      initial;
      resilience;
      population;
      rules;
      justice;
      round_switch;
      self_loops;
    }

let unique_guard_atoms ta =
  List.concat_map (fun r -> r.guard) ta.rules
  |> List.sort_uniq Guard.atom_compare

let rules_into ta loc = List.filter (fun r -> r.target = loc) ta.rules
let rules_from ta loc = List.filter (fun r -> r.source = loc) ta.rules

let sinks ta =
  List.filter (fun l -> rules_from ta l = []) ta.locations

(* Kahn's algorithm on the location graph. *)
let topological_locations ta =
  let indegree = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace indegree l 0) ta.locations;
  List.iter
    (fun r -> Hashtbl.replace indegree r.target (Hashtbl.find indegree r.target + 1))
    ta.rules;
  let queue = Queue.create () in
  List.iter (fun l -> if Hashtbl.find indegree l = 0 then Queue.add l queue) ta.locations;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let l = Queue.pop queue in
    order := l :: !order;
    List.iter
      (fun r ->
        let d = Hashtbl.find indegree r.target - 1 in
        Hashtbl.replace indegree r.target d;
        if d = 0 then Queue.add r.target queue)
      (rules_from ta l)
  done;
  let order = List.rev !order in
  if List.length order = List.length ta.locations then Some order else None

let is_dag ta = topological_locations ta <> None

let topological_rule_order ta =
  match topological_locations ta with
  | None -> invalid_arg (Printf.sprintf "Automaton %s is not a DAG" ta.name)
  | Some locs ->
    let rank = Hashtbl.create 16 in
    List.iteri (fun i l -> Hashtbl.replace rank l i) locs;
    List.stable_sort
      (fun r1 r2 -> compare (Hashtbl.find rank r1.source) (Hashtbl.find rank r2.source))
      ta.rules

let absorbing_when_empty ta locs =
  List.for_all
    (fun r -> (not (List.mem r.target locs)) || List.mem r.source locs)
    ta.rules

type stats = { n_guards : int; n_locations : int; n_rules : int }

let stats ta =
  {
    n_guards = List.length (unique_guard_atoms ta);
    n_locations = List.length ta.locations;
    n_rules = List.length ta.rules + ta.self_loops;
  }

let pp_stats fmt s =
  Format.fprintf fmt "%d unique guards, %d locations, %d rules" s.n_guards
    s.n_locations s.n_rules

let find_rule ta name =
  match List.find_opt (fun (r : rule) -> r.name = name) ta.rules with
  | Some r -> r
  | None ->
    invalid_arg
      (Printf.sprintf "Automaton.find_rule: automaton %s has no rule %S" ta.name name)
