(** Delivery schedulers: the adversary's control over asynchrony.

    A scheduler picks the next pending message to deliver.  The [Random]
    and [Fifo] schedulers are fair (every pending message is eventually
    delivered); a [Custom] scheduler may implement adversarial delivery
    orders such as the non-termination schedule of the paper's
    Appendix B. *)

type 'msg t =
  | Fifo  (** deliver in send order: a synchronous-looking schedule *)
  | Random of Random.State.t
      (** uniformly random pending message: fair with probability 1 *)
  | Custom of ('msg Network.pending list -> 'msg Network.pending option)
      (** returns the delivery to perform, or [None] to fall back to the
          oldest pending message (keeps custom schedulers fair by
          default) *)

val random : seed:int -> 'msg t

(** [pick sched pending] chooses from a non-empty list.
    @raise Invalid_argument if [pending] is empty, or if a [Custom]
    scheduler returns a message that is not in [pending]. *)
val pick : 'msg t -> 'msg Network.pending list -> 'msg Network.pending
