type 'msg t =
  | Fifo
  | Random of Random.State.t
  | Custom of ('msg Network.pending list -> 'msg Network.pending option)

let random ~seed = Random (Random.State.make [| seed |])

let oldest pending =
  match pending with
  | [] -> invalid_arg "Scheduler.pick: no pending messages"
  | p :: rest ->
    List.fold_left
      (fun (best : _ Network.pending) (q : _ Network.pending) ->
        if q.seq < best.seq then q else best)
      p rest

let pick sched pending =
  match pending with
  | [] -> invalid_arg "Scheduler.pick: no pending messages"
  | _ -> (
    match sched with
    | Fifo -> oldest pending
    | Random st -> List.nth pending (Random.State.int st (List.length pending))
    | Custom f -> (
      match f pending with
      | None -> oldest pending
      | Some p ->
        (* A buggy custom scheduler returning a fabricated message would
           corrupt delivery accounting; insist the pick is pending. *)
        let matches (q : _ Network.pending) =
          q.seq = p.Network.seq && q.src = p.src && q.dest = p.dest
        in
        if List.exists matches pending then p
        else
          invalid_arg
            "Scheduler.pick: custom scheduler returned a message that is not pending"))
