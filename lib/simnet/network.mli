(** A discrete-event simulator of an asynchronous reliable fully
    connected point-to-point network (paper, Section 2): there is no
    bound on message delay, but every message sent to a correct process
    is eventually delivered.  At each step exactly one pending message is
    delivered; the {!Scheduler} chooses which, which models the
    adversary's control over asynchrony.

    Pending messages are indexed by their sequence number, so {!deliver},
    {!drop} and {!find} are O(1); {!pending} lists them in send (FIFO)
    order. *)

type 'msg t

(** A pending delivery. *)
type 'msg pending = { src : int; dest : int; msg : 'msg; seq : int }

(** [create ~n] builds a network for processes [0 .. n-1] with no pending
    messages. *)
val create : n:int -> 'msg t

val size : 'msg t -> int

(** [send net ~src ~dest msg] enqueues a message. *)
val send : 'msg t -> src:int -> dest:int -> 'msg -> unit

(** [broadcast net ~src msg] sends to every process, including [src]
    itself (the pseudocode's [broadcast] primitive). *)
val broadcast : 'msg t -> src:int -> 'msg -> unit

(** [pending net] lists the pending messages, oldest first. *)
val pending : 'msg t -> 'msg pending list

val pending_count : 'msg t -> int

(** [find net seq] is the pending message with sequence number [seq], if
    any (used by trace replay). *)
val find : 'msg t -> int -> 'msg pending option

(** [deliver net p] removes pending delivery [p] and returns it.
    @raise Invalid_argument if [p] is not pending. *)
val deliver : 'msg t -> 'msg pending -> 'msg pending

(** [drop net p] removes pending delivery [p] without delivering it — a
    message-loss fault.  Does not count towards {!delivered_count}.
    @raise Invalid_argument if [p] is not pending. *)
val drop : 'msg t -> 'msg pending -> 'msg pending

(** [delivered_count net] counts deliveries so far. *)
val delivered_count : 'msg t -> int

(** [dropped_count net] counts messages lost to {!drop}. *)
val dropped_count : 'msg t -> int
