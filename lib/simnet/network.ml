type 'msg pending = { src : int; dest : int; msg : 'msg; seq : int }

(* Pending messages are indexed by sequence number for O(1) lookup and
   removal; [order] remembers send order (oldest first) and may contain
   sequence numbers that were already delivered or dropped — those are
   skipped on traversal and compacted away once they outnumber the live
   entries. *)
type 'msg t = {
  n : int;
  by_seq : (int, 'msg pending) Hashtbl.t;
  mutable order : int Queue.t;
  mutable next_seq : int;
  mutable delivered : int;
  mutable dropped : int;
}

let create ~n =
  {
    n;
    by_seq = Hashtbl.create 64;
    order = Queue.create ();
    next_seq = 0;
    delivered = 0;
    dropped = 0;
  }

let size net = net.n

let send net ~src ~dest msg =
  if dest < 0 || dest >= net.n then invalid_arg "Network.send: bad destination";
  let p = { src; dest; msg; seq = net.next_seq } in
  Hashtbl.replace net.by_seq p.seq p;
  Queue.add p.seq net.order;
  net.next_seq <- net.next_seq + 1

let broadcast net ~src msg =
  for dest = 0 to net.n - 1 do
    send net ~src ~dest msg
  done

let compact net =
  if Queue.length net.order > 16 + (2 * Hashtbl.length net.by_seq) then begin
    let fresh = Queue.create () in
    Queue.iter
      (fun seq -> if Hashtbl.mem net.by_seq seq then Queue.add seq fresh)
      net.order;
    net.order <- fresh
  end

let pending net =
  compact net;
  Queue.fold
    (fun acc seq ->
      match Hashtbl.find_opt net.by_seq seq with Some p -> p :: acc | None -> acc)
    [] net.order
  |> List.rev

let pending_count net = Hashtbl.length net.by_seq

let find net seq = Hashtbl.find_opt net.by_seq seq

let remove net p err =
  match Hashtbl.find_opt net.by_seq p.seq with
  | None -> invalid_arg err
  | Some q ->
    Hashtbl.remove net.by_seq p.seq;
    q

let deliver net p =
  let q = remove net p "Network.deliver: not pending" in
  net.delivered <- net.delivered + 1;
  q

let drop net p =
  let q = remove net p "Network.drop: not pending" in
  net.dropped <- net.dropped + 1;
  q

let delivered_count net = net.delivered
let dropped_count net = net.dropped
