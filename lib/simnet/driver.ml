type source = {
  pending_count : unit -> int;
  deliver_random : Random.State.t -> unit;
}

let of_network net ~handle =
  {
    pending_count = (fun () -> Network.pending_count net);
    deliver_random =
      (fun rng ->
        let pending = Network.pending net in
        let p = List.nth pending (Random.State.int rng (List.length pending)) in
        let { Network.src; dest; msg; _ } = Network.deliver net p in
        handle ~src ~dest msg);
  }

(* With a single source the driver draws exactly one random number per
   step (uniform over that source's pending messages), matching the
   historical hand-rolled loops; with several sources it first draws a
   pending-count-weighted source, then a message within it, so the
   overall choice is uniform over all pending messages. *)
let step ~rng sources =
  match sources with
  | [ s ] -> if s.pending_count () = 0 then false else (s.deliver_random rng; true)
  | _ ->
    let total = List.fold_left (fun acc s -> acc + s.pending_count ()) 0 sources in
    if total = 0 then false
    else begin
      let pick = Random.State.int rng total in
      let rec go remaining = function
        | [] -> assert false
        | s :: rest ->
          let c = s.pending_count () in
          if remaining < c then s.deliver_random rng else go (remaining - c) rest
      in
      go pick sources;
      true
    end

let run ?(max_steps = 1_000_000) ?(stop = fun () -> false) ~rng sources =
  let steps = ref 0 in
  while (not (stop ())) && !steps < max_steps && step ~rng sources do
    incr steps
  done;
  !steps

let run_scheduled ?(max_steps = 1_000_000) ?(stop = fun () -> false) ~scheduler net
    ~handle =
  let steps = ref 0 in
  while Network.pending_count net > 0 && !steps < max_steps && not (stop ()) do
    let p = Scheduler.pick scheduler (Network.pending net) in
    let { Network.src; dest; msg; _ } = Network.deliver net p in
    incr steps;
    handle ~src ~dest msg
  done;
  !steps
