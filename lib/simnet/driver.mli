(** The shared seeded random-delivery loop used by every simulation: one
    deterministic scheduler for simulator-level tests, the vector
    consensus and the fuzzer, instead of per-call-site copies.

    A {!source} abstracts one network's pending pool (the vector
    consensus runs one reliable-broadcast network plus [n] binary
    networks under a single scheduler); {!run} delivers uniformly at
    random over the union of all pending messages until every source is
    drained, [stop] holds, or the step budget is exhausted. *)

type source = {
  pending_count : unit -> int;
  deliver_random : Random.State.t -> unit;
}

(** [of_network net ~handle] wraps a network: a random pending message is
    delivered and dispatched to [handle]. *)
val of_network :
  'msg Network.t -> handle:(src:int -> dest:int -> 'msg -> unit) -> source

(** [step ~rng sources] delivers one message chosen uniformly over all
    pending messages; [false] if every source is empty. *)
val step : rng:Random.State.t -> source list -> bool

(** [run ?max_steps ?stop ~rng sources] loops {!step}; returns the number
    of deliveries performed. *)
val run :
  ?max_steps:int -> ?stop:(unit -> bool) -> rng:Random.State.t -> source list -> int

(** [run_scheduled ?max_steps ?stop ~scheduler net ~handle] is the
    single-network variant driven by an explicit {!Scheduler} (used by
    the DBFT runner, where the scheduler is part of the configuration). *)
val run_scheduled :
  ?max_steps:int ->
  ?stop:(unit -> bool) ->
  scheduler:'msg Scheduler.t ->
  'msg Network.t ->
  handle:(src:int -> dest:int -> 'msg -> unit) ->
  int
