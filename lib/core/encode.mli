(** Encoding of one schema as a linear-arithmetic satisfiability query.

    The query is satisfiable iff some run of the counter system follows
    the schema and exhibits the spec's violation pattern (see
    {!Ta.Spec}).  Variables: the parameters, the initial counters of the
    initial locations, and one acceleration factor per (segment, enabled
    rule) slot. *)

type var_kind =
  | Param of string
  | Init_counter of string
  | Factor of int * string  (** segment index, rule name *)

type encoded = {
  vars : (int * var_kind) list;  (** SMT variable id -> meaning *)
  n_slots : int;  (** number of rule slots: the schema "length" *)
  atoms : Smt.Atom.t list;  (** the conjunctive part of the query *)
  branches : Smt.Atom.t list list list;
      (** factored justice case-splits: for each entry, at least one of
          the alternative cubes (conjunctions of atoms) must hold in
          addition to [atoms]; empty for safety specs and for liveness
          schemas whose final context decides every justice condition *)
}

val encode : Universe.t -> Ta.Spec.t -> Schema.t -> encoded

(** {1 Incremental encoding}

    The flat encoding is a left fold over the schema's events: the atoms
    and variable numbering produced for a prefix depend on the prefix
    alone.  A session exposes that structure to the incremental checker:
    push events along the enumeration DFS, pop to backtrack (O(1) — the
    underlying snapshots are immutable), finalize to complete the current
    prefix into a full query.  [encode] itself is implemented as
    [start] + [push_event]* + [finalize], so the two paths agree by
    construction. *)

type session

(** [start u spec] opens a session at the empty prefix.  {!base_atoms}
    are the prefix-independent constraints: resilience, non-negativity,
    initial configuration, and the spec's initial condition. *)
val start : Universe.t -> Ta.Spec.t -> session

val base_atoms : session -> Smt.Atom.t list

(** All atoms of the current prefix, base included, in flat-encoding
    order: the conjunction whose satisfiability bounds every extension
    of this prefix. *)
val prefix_atoms : session -> Smt.Atom.t list

(** [push_event s ev] extends the prefix with [ev] and returns the atom
    delta this event contributes: the preceding segment's slot atoms
    followed by the event's own constraint (guard truth for an unlock,
    the observed condition for an observe). *)
val push_event : session -> Schema.event -> Smt.Atom.t list

(** Undo the most recent {!push_event}.
    @raise Invalid_argument at the empty prefix. *)
val pop_event : session -> unit

(** Complete the current prefix into the full violation query — trailing
    segment, stability pinning, final-state observations, fairness and
    justice constraints, final condition.  The session is not modified:
    everything past the prefix is emitted on a copy, which is what makes
    prefix unsatisfiability monotone down the enumeration tree. *)
val finalize : session -> encoded

(** {1 Slot simulation}

    Per-schema slot counts without building any linear expressions, used
    to account schemas skipped by subtree pruning at the same cost the
    flat engine would have reported.  Mirrors the encoder's slot-skip
    rule exactly: a location's counter is the zero expression iff it is
    neither an unblocked initial location nor the target of an executed
    slot (counters only ever gain fresh factor terms, so non-zeroness is
    monotone along a prefix). *)

module Sim : sig
  type t

  (** The empty prefix, without opening a session (no SMT variables are
      allocated).  [push_event]-folding a schema from here reports the
      same slot count the flat encoder would. *)
  val start : Universe.t -> Ta.Spec.t -> t

  (** Snapshot the slot-relevant state (context, populated locations,
      slots so far) of the session's current prefix. *)
  val of_session : session -> t

  val push_event : t -> Schema.event -> t

  (** Slots of the schema ending at the current prefix: prefix slots
      plus the trailing segment's. *)
  val leaf_slots : t -> int
end
