(** Crash-safe checkpoint journal for resumable verification runs.

    Schema enumeration is deterministic by preorder position (the same
    property PR 1's partitioning and PR 3's pruning rely on), so a run's
    progress is fully described by the {e frontier}: the length of the
    contiguous prefix of preorder positions already discharged UNSAT.
    The journal persists that frontier together with the accumulated
    statistics covering exactly [0, frontier) and a fingerprint of the
    automaton/property pair, as canonical JSON (integer microsecond
    times, no floats — the encoding is byte-unique), written atomically
    via a temp file + rename.

    Resuming validates the fingerprint and fast-forwards the enumeration
    cursor past the frontier; because both runs execute identical event
    sequences, replayed positions accrue no statistics and the resumed
    totals are bit-identical to an uninterrupted run. *)

type delta = {
  d_checked : int;
  d_skipped : int;
  d_pruned : int;
  d_core_pruned : int;
  d_static : int;
  d_hits : int;
  d_slots : int;
  d_steps : int;
  d_encode_us : int;
  d_solve_us : int;
  d_cache_hits : int;
  d_cache_misses : int;
  d_cache_cross : int;
  d_wins_interval : int;
  d_wins_cooper : int;
  d_wins_simplex : int;
}
(** Per-span statistics increment, mirroring {!Checker.stats} fields
    (the [d_cache_*]/[d_wins_*] group mirrors {!Checker.stats.cache},
    maintained since journal version 4 so resumed runs report cumulative
    cache effectiveness). *)

val zero_delta : delta
val add_delta : delta -> delta -> delta

type t = {
  fingerprint : string;
  frontier : int;  (** preorder positions discharged, contiguous from 0 *)
  checked : int;
  skipped : int;
  pruned : int;
  core_pruned : int;
  static : int;  (** positions refuted statically by the invariant engine *)
  hits : int;
  slots : int;
  steps : int;
  encode_us : int;
  solve_us : int;
  elapsed_us : int;  (** wall-clock across all slices of the run *)
  cache_hits : int;  (** discharge-cache hits over [0, frontier) *)
  cache_misses : int;
  cache_cross : int;  (** of [cache_hits], entries from another property *)
  wins_interval : int;  (** portfolio decisions by interval propagation *)
  wins_cooper : int;  (** portfolio decisions by Cooper QE *)
  wins_simplex : int;  (** portfolio decisions by the simplex *)
  quarantined : (int * string) list;
}

(** Microsecond/second conversions used at the {!Checker.stats} boundary. *)

val us_of_s : float -> int
val s_of_us : int -> float

(** [fingerprint ta spec] is a stable digest of the rendered automaton
    and property; two runs may share a checkpoint iff it matches. *)
val fingerprint : Ta.Automaton.t -> Ta.Spec.t -> string

val fresh : fingerprint:string -> t

(** [apply j ~span d] advances the frontier by [span] positions and adds
    [d] to the totals. *)
val apply : t -> span:int -> delta -> t

val to_json : t -> Jsonc.t
val of_json : Jsonc.t -> t

(** [atomic_write ~path contents] writes [contents] atomically and
    durably: the sibling temp file is written and fsynced {e before}
    the rename, and the containing directory is fsynced after it, so a
    crash — or a power cut — at any point leaves either the previous
    contents or the new ones, never a torn or vanished file.  The
    checkpoint journal and the persistent discharge cache
    ({!Cachefile}) share this machinery. *)
val atomic_write : path:string -> string -> unit

(** Test-only crash injection for {!atomic_write}: when set, called
    with a stage name ("written" — data written, not yet synced;
    "synced" — temp file fsynced; "renamed" — rename done, directory
    not yet synced) so a crash can be simulated between any two stages.
    Never set outside tests. *)
val atomic_write_failpoint : (string -> unit) option ref

(** [save ~path j] writes [j] atomically via {!atomic_write}. *)
val save : path:string -> t -> unit

(** [load ~path] reads a checkpoint back; [Error] on a missing file,
    unreadable contents, or a non-well-formed document. *)
val load : path:string -> (t, string) result

(** [validate ~fingerprint j] refuses a checkpoint recorded for a
    different automaton/property pair. *)
val validate : fingerprint:string -> t -> (t, string) result

(** Mutex-protected frontier tracker for the multi-domain engines.
    Workers report completed preorder spans out of order; the tracker
    folds each span into the journal once it is contiguous with the
    frontier and persists the result every [every] consumed positions.
    A quarantined position is a permanent hole the frontier never
    crosses, so a resumed run re-attempts it. *)
module Tracker : sig
  type tracker

  (** [create ~base ?path ~every ~elapsed_us ()] starts from journal
      [base] (fresh or loaded).  When [path] is given, the journal is
      saved there on flush.  [elapsed_us] supplies the total wall-clock
      (including previous slices) recorded in each save. *)
  val create :
    base:t -> ?path:string -> every:int -> elapsed_us:(unit -> int) -> unit -> tracker

  (** [note tr ~start ~span d] records that positions
      [start, start+span) were discharged with statistics [d].  Safe to
      call from any domain; spans entirely below the frontier (replays
      after a resume) are ignored. *)
  val note : tracker -> start:int -> span:int -> delta -> unit

  (** [quarantine tr pos msg] pins a hole at [pos]. *)
  val quarantine : tracker -> int -> string -> unit

  (** Current journal (totals cover exactly [0, frontier)). *)
  val snapshot : tracker -> t

  (** Force a save of the current journal (run end, signal handler). *)
  val flush : tracker -> unit
end
