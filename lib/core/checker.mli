(** The parameterized model checker: verifies a temporal property of a
    threshold automaton for {e all} parameter valuations admitted by the
    resilience condition, by enumerating schemas ({!Schema}) and
    discharging one linear-integer-arithmetic query per schema
    ({!Encode}).

    Soundness/completeness requires the structural properties validated
    by {!precheck}: monotone guards (guaranteed by the {!Ta.Guard}
    constructors), DAG-shaped locations, and — for liveness — an
    absorbing violation target.  All three automata of the paper
    qualify.

    With [limits.jobs > 1] the schema queries are discharged on that
    many OCaml 5 worker domains ({!Pool}) while the enumeration runs as
    a producer.  The first satisfiable/unknown schema {e in enumeration
    order} still decides the result, so outcomes, witnesses and schema
    counts are bit-identical to the sequential engine ([jobs = 1]); only
    wall-clock time and the per-worker utilisation split differ.  (The
    one necessarily racy case: a [time_budget] abort may land on a
    different schema count — true of two sequential runs as well.)

    With [limits.incremental] (the default) the enumeration tree is
    walked once per property: each event pushes its constraint delta
    onto warm {!Encode.session}/{!Smt.Lia.session} stacks, and prefixes
    the session's zero-step layers ({!Smt.Lia.check_quick}: interval
    propagation, model cache) prove unsatisfiable prune their whole
    subtree — sound because finalizing a schema only appends atoms to
    its prefix (see DESIGN.md).  Surviving schemas are discharged on
    the same finalized query as the flat engine.  Outcomes, witnesses,
    schema counts and slot totals match the flat engines exactly, and
    because reachability checks never touch the simplex, the solver-step
    total is at most the flat engine's on {e every} property — the steps
    counted are exactly the flat solves of the schemas that were not
    pruned.  The two axes compose: [jobs > 1] with [incremental]
    partitions the tree into contiguous preorder blocks.  Pruning is a
    deterministic function of the prefix, so the parallel incremental
    engine solves the same schema set (same solver-step total); only the
    granularity counters (subtrees pruned, prefix hits) differ, one
    sequential prune possibly surfacing as several pruned jobs. *)

type limits = {
  max_schemas : int;  (** abort the enumeration beyond this many schemas *)
  time_budget : float option;  (** wall-clock seconds; [None] = unlimited *)
  lia_max_steps : int;  (** branch-and-bound budget per query *)
  jobs : int;  (** worker domains; [1] = the sequential reference engine *)
  incremental : bool;
      (** discharge schemas incrementally along the enumeration tree,
          sharing each common prefix's encoding and solver state and
          pruning whole subtrees whose prefix is already unsatisfiable
          (default).  Outcomes, witnesses and schema counts are
          bit-identical to the flat engine; only solver effort differs. *)
  static : bool;
      (** discharge schemas statically when the invariant engine
          ({!Analysis.Invariants}) carries a certified refutation of
          their query — the root refutation covering every schema of the
          spec, or a statically-false guard atom covering every schema
          that unlocks it (default).  Every refutation's certificate was
          validated by {!Smt.Certcheck} when built, and outcomes,
          witnesses and schema counts are bit-identical to a run without
          static discharge: only UNSAT work is elided, so the solver-step
          total can only shrink. *)
}

val default_limits : limits

(** Budget preset shared by the fuzzing cross-validators (lib/fuzz and
    test/test_crossval): the random automata are tiny, so a run that
    needs more than [crossval_limits.max_schemas] schemas is pathological
    and is skipped rather than solved to exhaustion.  One definition here
    keeps the fuzzers' budgets from drifting apart. *)
val crossval_limits : limits

type outcome =
  | Holds  (** every schema query is unsatisfiable: the property is verified for all parameters *)
  | Violated of Witness.t
  | Aborted of string  (** budget exhausted (the paper's ">24h" rows) *)
  | Partial of { quarantined : (int * string) list; reason : string }
      (** fail-soft verdict: some preorder positions were quarantined
          (their discharge crashed twice) and no deciding schema precedes
          the first hole, so neither [Holds] nor the first witness can be
          asserted.  [quarantined] lists the holes with their exception
          messages; every other schema was processed normally, and a
          checkpointed rerun re-attempts exactly the holes.  A run whose
          deciding schema {e precedes} every quarantined position still
          decides normally — the transcript up to the decision is
          complete. *)

(** Per-worker utilisation.  Unlike the totals in {!stats}, these count
    everything a worker actually executed — including schemas an earlier
    stop later made irrelevant — so they reflect machine usage, not the
    deterministic verification transcript. *)
type worker_stat = {
  worker_id : int;
  schemas : int;
  slots : int;
  solver_steps : int;  (** simplex calls (branch-and-bound nodes) *)
  busy_time : float;  (** wall-clock seconds encoding + solving *)
}

type stats = {
  schemas_checked : int;
      (** schemas discharged: solved directly, or covered by a pruned
          subtree — always the number of enumeration positions consumed,
          so it is identical across all four engines *)
  schemas_skipped : int;
      (** of those, schemas never solved individually because an
          unsatisfiable prefix pruned their subtree (0 for the flat
          engines) *)
  subtrees_pruned : int;  (** prefix-UNSAT subtree prunes (0 when flat) *)
  core_prunes : int;
      (** of those, sibling subtrees skipped without any reach-check
          because the last conflict's unsat core was confined to frames
          strictly below them — the core refutes every extension of the
          shallower prefix, siblings included (0 when flat) *)
  static_prunes : int;
      (** refutations applied by the invariant engine at zero solver
          steps: statically discharged schemas (flat engines) or
          statically pruned subtrees (incremental engines, a subset of
          [subtrees_pruned]); 0 with [limits.static = false] *)
  prefix_hits : int;
      (** incremental reachability checks answered definitively by the
          prefix state — the propagated interval store or the cached
          model — at zero solver steps (0 when flat) *)
  slots_total : int;  (** sum of schema lengths (rule slots) *)
  solver_steps : int;  (** total simplex calls over the counted schemas *)
  encode_time : float;  (** wall-clock seconds spent building queries *)
  solve_time : float;  (** wall-clock seconds spent in the solver *)
  time : float;  (** wall-clock seconds *)
  jobs : int;  (** worker domains used *)
  workers : worker_stat list;  (** one entry per worker (singleton when sequential) *)
  cache : Smt.Portfolio.counters;
      (** discharge-cache effectiveness (hits, misses, cross-property
          hits) and per-backend portfolio wins, over the counted
          transcript; all-zero when the run carries no [?portfolio].
          Cumulative across resumed slices (the journal carries the
          checkpointed prefix's totals since version 4). *)
}

type result = { spec : Ta.Spec.t; outcome : outcome; stats : stats }

(** [precheck ta spec] validates the structural preconditions, via the
    error-level passes of {!Analysis}.
    @raise Invalid_argument when they fail. *)
val precheck : Ta.Automaton.t -> Ta.Spec.t -> unit

(** [request_interrupt ()] asks every running verification to wind down
    cooperatively: engines notice at the next budget check and — through
    the stop predicate threaded into the solver — within one
    {!Smt.Simplex.stop_interval} quantum inside a discharge.  The run
    returns [Aborted] (resumable: its checkpoint is flushed first).
    Safe to call from a signal handler. *)
val request_interrupt : unit -> unit

(** [clear_interrupt ()] re-arms verification after an interrupt (tests,
    REPL loops). *)
val clear_interrupt : unit -> unit

(** [interrupt_requested ()] reports whether {!request_interrupt} has
    fired (and not been cleared) — drivers use it to pick an exit code
    and tell a signal-interrupted run from an ordinary budget abort. *)
val interrupt_requested : unit -> bool

(** [verify ?limits ?slice ta spec].  With [~slice:true] the automaton
    is first run through {!Analysis.slice} (keeping the locations the
    spec mentions), so the universe is built over the live rules only —
    outcome- and witness-preserving, with schema counts no larger than
    the unsliced run.

    Crash-safe resumption: with [~checkpoint:path] the run persists a
    {!Journal} checkpoint to [path] — atomically, every
    [checkpoint_every] (default 64) discharged positions and once at the
    end, whatever the outcome.  With [~resume:true] an existing
    checkpoint at [path] is loaded first: its fingerprint must match the
    automaton/property pair ([Invalid_argument] otherwise), the
    enumeration fast-forwards past the checkpointed frontier without
    re-solving, and the reported verdict, witness, schema count and
    solver-step totals are identical to an uninterrupted run (wall-clock
    times naturally differ; [time_budget] spans all slices of the run).
    A missing file with [~resume:true] is a cold start, not an error, so
    retry loops need no existence check.

    [?now] substitutes the budget clock (deadline and interrupt logic
    only — statistics keep real wall-clock), making timeout aborts
    deterministic in tests.  [?failpoint] is called with each preorder
    position just before its discharge; a raising failpoint exercises
    the retry/quarantine path ({!Partial}).

    [?certs] attaches a certificate emission sink ({!Certs}): the
    sequential engines re-prove every UNSAT verdict — discharged schema
    or pruned prefix — on the certifying LIA engine and append one JSONL
    line per verdict, replayable with [holistic check-cert].  The
    parallel engines ignore the sink (drivers force [jobs = 1] when
    emitting).

    [?portfolio] routes every leaf discharge through a shared
    {!Smt.Portfolio}: structurally repeated queries are answered from
    the cross-property discharge cache at zero solver steps, and misses
    race the refuting backends before the simplex.  Verdicts, witnesses
    and schema counts are pinned bit-identical to the uncached engine
    (see DESIGN.md); only solver effort — and with it [solver_steps] —
    changes.  Passing one portfolio across the properties of an
    automaton (and persisting its cache with {!Cachefile}) is what
    makes cross-property and warm-start reuse effective. *)
val verify :
  ?limits:limits ->
  ?slice:bool ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?now:(unit -> float) ->
  ?failpoint:(int -> unit) ->
  ?certs:Certs.sink ->
  ?portfolio:Smt.Portfolio.t ->
  Ta.Automaton.t ->
  Ta.Spec.t ->
  result

(** [verify_with_universe ?limits u spec] reuses a prebuilt universe
    (cheaper when checking several specs of one automaton).  Checkpoint
    and fault-injection parameters as in {!verify}. *)
val verify_with_universe :
  ?limits:limits ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?now:(unit -> float) ->
  ?failpoint:(int -> unit) ->
  ?certs:Certs.sink ->
  ?portfolio:Smt.Portfolio.t ->
  Universe.t ->
  Ta.Spec.t ->
  result

val pp_result : Format.formatter -> result -> unit

(** One line per worker: schemas, slots, solver steps, busy seconds. *)
val pp_worker_stats : Format.formatter -> result -> unit
