(** The parameterized model checker: verifies a temporal property of a
    threshold automaton for {e all} parameter valuations admitted by the
    resilience condition, by enumerating schemas ({!Schema}) and
    discharging one linear-integer-arithmetic query per schema
    ({!Encode}).

    Soundness/completeness requires the structural properties validated
    by {!precheck}: monotone guards (guaranteed by the {!Ta.Guard}
    constructors), DAG-shaped locations, and — for liveness — an
    absorbing violation target.  All three automata of the paper
    qualify.

    With [limits.jobs > 1] the schema queries are discharged on that
    many OCaml 5 worker domains ({!Pool}) while the enumeration runs as
    a producer.  The first satisfiable/unknown schema {e in enumeration
    order} still decides the result, so outcomes, witnesses and schema
    counts are bit-identical to the sequential engine ([jobs = 1]); only
    wall-clock time and the per-worker utilisation split differ.  (The
    one necessarily racy case: a [time_budget] abort may land on a
    different schema count — true of two sequential runs as well.)

    With [limits.incremental] (the default) the enumeration tree is
    walked once per property: each event pushes its constraint delta
    onto warm {!Encode.session}/{!Smt.Lia.session} stacks, and prefixes
    the session's zero-step layers ({!Smt.Lia.check_quick}: interval
    propagation, model cache) prove unsatisfiable prune their whole
    subtree — sound because finalizing a schema only appends atoms to
    its prefix (see DESIGN.md).  Surviving schemas are discharged on
    the same finalized query as the flat engine.  Outcomes, witnesses,
    schema counts and slot totals match the flat engines exactly, and
    because reachability checks never touch the simplex, the solver-step
    total is at most the flat engine's on {e every} property — the steps
    counted are exactly the flat solves of the schemas that were not
    pruned.  The two axes compose: [jobs > 1] with [incremental]
    partitions the tree into contiguous preorder blocks.  Pruning is a
    deterministic function of the prefix, so the parallel incremental
    engine solves the same schema set (same solver-step total); only the
    granularity counters (subtrees pruned, prefix hits) differ, one
    sequential prune possibly surfacing as several pruned jobs. *)

type limits = {
  max_schemas : int;  (** abort the enumeration beyond this many schemas *)
  time_budget : float option;  (** wall-clock seconds; [None] = unlimited *)
  lia_max_steps : int;  (** branch-and-bound budget per query *)
  jobs : int;  (** worker domains; [1] = the sequential reference engine *)
  incremental : bool;
      (** discharge schemas incrementally along the enumeration tree,
          sharing each common prefix's encoding and solver state and
          pruning whole subtrees whose prefix is already unsatisfiable
          (default).  Outcomes, witnesses and schema counts are
          bit-identical to the flat engine; only solver effort differs. *)
}

val default_limits : limits

type outcome =
  | Holds  (** every schema query is unsatisfiable: the property is verified for all parameters *)
  | Violated of Witness.t
  | Aborted of string  (** budget exhausted (the paper's ">24h" rows) *)

(** Per-worker utilisation.  Unlike the totals in {!stats}, these count
    everything a worker actually executed — including schemas an earlier
    stop later made irrelevant — so they reflect machine usage, not the
    deterministic verification transcript. *)
type worker_stat = {
  worker_id : int;
  schemas : int;
  slots : int;
  solver_steps : int;  (** simplex calls (branch-and-bound nodes) *)
  busy_time : float;  (** wall-clock seconds encoding + solving *)
}

type stats = {
  schemas_checked : int;
      (** schemas discharged: solved directly, or covered by a pruned
          subtree — always the number of enumeration positions consumed,
          so it is identical across all four engines *)
  schemas_skipped : int;
      (** of those, schemas never solved individually because an
          unsatisfiable prefix pruned their subtree (0 for the flat
          engines) *)
  subtrees_pruned : int;  (** prefix-UNSAT subtree prunes (0 when flat) *)
  prefix_hits : int;
      (** incremental reachability checks answered definitively by the
          prefix state — the propagated interval store or the cached
          model — at zero solver steps (0 when flat) *)
  slots_total : int;  (** sum of schema lengths (rule slots) *)
  solver_steps : int;  (** total simplex calls over the counted schemas *)
  encode_time : float;  (** wall-clock seconds spent building queries *)
  solve_time : float;  (** wall-clock seconds spent in the solver *)
  time : float;  (** wall-clock seconds *)
  jobs : int;  (** worker domains used *)
  workers : worker_stat list;  (** one entry per worker (singleton when sequential) *)
}

type result = { spec : Ta.Spec.t; outcome : outcome; stats : stats }

(** [precheck ta spec] validates the structural preconditions, via the
    error-level passes of {!Analysis}.
    @raise Invalid_argument when they fail. *)
val precheck : Ta.Automaton.t -> Ta.Spec.t -> unit

(** [verify ?limits ?slice ta spec].  With [~slice:true] the automaton
    is first run through {!Analysis.slice} (keeping the locations the
    spec mentions), so the universe is built over the live rules only —
    outcome- and witness-preserving, with schema counts no larger than
    the unsliced run. *)
val verify : ?limits:limits -> ?slice:bool -> Ta.Automaton.t -> Ta.Spec.t -> result

(** [verify_with_universe ?limits u spec] reuses a prebuilt universe
    (cheaper when checking several specs of one automaton). *)
val verify_with_universe : ?limits:limits -> Universe.t -> Ta.Spec.t -> result

val pp_result : Format.formatter -> result -> unit

(** One line per worker: schemas, slots, solver steps, busy seconds. *)
val pp_worker_stats : Format.formatter -> result -> unit
