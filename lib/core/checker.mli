(** The parameterized model checker: verifies a temporal property of a
    threshold automaton for {e all} parameter valuations admitted by the
    resilience condition, by enumerating schemas ({!Schema}) and
    discharging one linear-integer-arithmetic query per schema
    ({!Encode}).

    Soundness/completeness requires the structural properties validated
    by {!precheck}: monotone guards (guaranteed by the {!Ta.Guard}
    constructors), DAG-shaped locations, and — for liveness — an
    absorbing violation target.  All three automata of the paper
    qualify.

    With [limits.jobs > 1] the schema queries are discharged on that
    many OCaml 5 worker domains ({!Pool}) while the enumeration runs as
    a producer.  The first satisfiable/unknown schema {e in enumeration
    order} still decides the result, so outcomes, witnesses and schema
    counts are bit-identical to the sequential engine ([jobs = 1]); only
    wall-clock time and the per-worker utilisation split differ.  (The
    one necessarily racy case: a [time_budget] abort may land on a
    different schema count — true of two sequential runs as well.) *)

type limits = {
  max_schemas : int;  (** abort the enumeration beyond this many schemas *)
  time_budget : float option;  (** wall-clock seconds; [None] = unlimited *)
  lia_max_steps : int;  (** branch-and-bound budget per query *)
  jobs : int;  (** worker domains; [1] = the sequential reference engine *)
}

val default_limits : limits

type outcome =
  | Holds  (** every schema query is unsatisfiable: the property is verified for all parameters *)
  | Violated of Witness.t
  | Aborted of string  (** budget exhausted (the paper's ">24h" rows) *)

(** Per-worker utilisation.  Unlike the totals in {!stats}, these count
    everything a worker actually executed — including schemas an earlier
    stop later made irrelevant — so they reflect machine usage, not the
    deterministic verification transcript. *)
type worker_stat = {
  worker_id : int;
  schemas : int;
  slots : int;
  solver_steps : int;  (** simplex calls (branch-and-bound nodes) *)
  busy_time : float;  (** wall-clock seconds encoding + solving *)
}

type stats = {
  schemas_checked : int;
  slots_total : int;  (** sum of schema lengths (rule slots) *)
  solver_steps : int;  (** total simplex calls over the counted schemas *)
  time : float;  (** wall-clock seconds *)
  jobs : int;  (** worker domains used *)
  workers : worker_stat list;  (** one entry per worker (singleton when sequential) *)
}

type result = { spec : Ta.Spec.t; outcome : outcome; stats : stats }

(** [precheck ta spec] validates the structural preconditions, via the
    error-level passes of {!Analysis}.
    @raise Invalid_argument when they fail. *)
val precheck : Ta.Automaton.t -> Ta.Spec.t -> unit

(** [verify ?limits ?slice ta spec].  With [~slice:true] the automaton
    is first run through {!Analysis.slice} (keeping the locations the
    spec mentions), so the universe is built over the live rules only —
    outcome- and witness-preserving, with schema counts no larger than
    the unsliced run. *)
val verify : ?limits:limits -> ?slice:bool -> Ta.Automaton.t -> Ta.Spec.t -> result

(** [verify_with_universe ?limits u spec] reuses a prebuilt universe
    (cheaper when checking several specs of one automaton). *)
val verify_with_universe : ?limits:limits -> Universe.t -> Ta.Spec.t -> result

val pp_result : Format.formatter -> result -> unit

(** One line per worker: schemas, slots, solver steps, busy seconds. *)
val pp_worker_stats : Format.formatter -> result -> unit
