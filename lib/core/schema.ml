type event = Unlock of Universe.guard_id | Observe of int

type t = event list

exception Stop

(* Observation indices that need explicit cut-points; the other shapes
   are encoded on the final state (see Obs). *)
let cut_point_indices (spec : Ta.Spec.t) =
  List.concat
    (List.mapi
       (fun i (_, c) -> if Obs.classify c = Obs.Cut_point then [ i ] else [])
       spec.observations)

let full_mask (spec : Ta.Spec.t) =
  List.fold_left (fun acc i -> acc lor (1 lsl i)) 0 (cut_point_indices spec)

let walk u (spec : Ta.Spec.t) ?(ctx = 0) ?(obs_mask = 0) ~on_enter ~on_leave
    ~on_schema () =
  let cut_obs = cut_point_indices spec in
  let full = full_mask spec in
  (* Every node with a complete cut-point set is a schema: the run may
     end (safety) or stabilize (liveness) in any context. *)
  let rec go ctx obs_mask =
    if obs_mask = full && not (on_schema ()) then raise Stop;
    List.iter
      (fun i ->
        if obs_mask land (1 lsl i) = 0 then
          visit (Observe i) ctx (obs_mask lor (1 lsl i)))
      cut_obs;
    List.iter
      (fun g -> visit (Unlock g) (ctx lor (1 lsl g)) obs_mask)
      (Universe.unlock_candidates u ctx)
  and visit ev ctx obs_mask =
    match on_enter ev with
    | `Prune -> ()
    | `Descend ->
      (match go ctx obs_mask with
       | () -> on_leave ev
       | exception e ->
         on_leave ev;
         raise e)
  in
  match go ctx obs_mask with () -> true | exception Stop -> false

let enumerate u (spec : Ta.Spec.t) ~on_schema =
  let rev_events = ref [] in
  walk u spec
    ~on_enter:(fun ev ->
      rev_events := ev :: !rev_events;
      `Descend)
    ~on_leave:(fun _ -> rev_events := List.tl !rev_events)
    ~on_schema:(fun () -> on_schema (List.rev !rev_events))
    ()

let count u spec ~limit =
  let n = ref 0 in
  let complete =
    enumerate u spec ~on_schema:(fun _ ->
        incr n;
        !n < limit)
  in
  if complete then `Exactly !n else `More_than !n

let pp u (spec : Ta.Spec.t) fmt schema =
  let obs_name i = fst (List.nth spec.observations i) in
  Format.fprintf fmt "@[<hov 2>";
  if schema = [] then Format.fprintf fmt "(empty: initial context only)";
  List.iteri
    (fun i ev ->
      if i > 0 then Format.fprintf fmt " ;@ ";
      match ev with
      | Unlock g ->
        Format.fprintf fmt "unlock{%s}" (Ta.Guard.atom_to_string (Universe.atom u g))
      | Observe i -> Format.fprintf fmt "observe{%s}" (obs_name i))
    schema;
  Format.fprintf fmt "@]"
