module J = Jsonc
module Qc = Smt.Qcache

let file_version = 1

type load_report = { cache : Qc.t; loaded : int; dropped : int }

let load ~path =
  let cache = Qc.create () in
  if not (Sys.file_exists path) then { cache; loaded = 0; dropped = 0 }
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error _ -> { cache; loaded = 0; dropped = 0 }
    | contents -> (
      match J.of_string (String.trim contents) with
      | exception J.Parse_error _ -> { cache; loaded = 0; dropped = 1 }
      | doc -> (
        match
          let v = J.to_int (J.member "version" doc) in
          if v <> file_version then
            raise (J.Parse_error (Printf.sprintf "unsupported cache version %d" v));
          J.to_list (J.member "entries" doc)
        with
        | exception J.Parse_error _ -> { cache; loaded = 0; dropped = 1 }
        | entries ->
          let loaded = ref 0 and dropped = ref 0 in
          List.iter
            (fun ej ->
              (* Malformed and invalid entries alike are dropped
                 silently: a tampered cache degrades to misses, never to
                 a wrong verdict or a failed run. *)
              match Qc.entry_of_json ej with
              | exception (J.Parse_error _ | Invalid_argument _ | Failure _) ->
                incr dropped
              | key, entry -> (
                match Qc.validate key entry with
                | Ok () ->
                  Qc.add cache key entry;
                  incr loaded
                | Error _ -> incr dropped))
            entries;
          { cache; loaded = !loaded; dropped = !dropped }))

type save_report = { written : int; uncertified : int }

let save ~path ?max_steps cache =
  let written = ref 0 and uncertified = ref 0 in
  let entries =
    Qc.fold
      (fun key entry acc ->
        match Qc.certify ?max_steps entry with
        | Some entry ->
          incr written;
          (key, entry) :: acc
        | None ->
          incr uncertified;
          acc)
      cache []
  in
  (* Canonical order (by key) so saving the same cache twice is
     byte-identical regardless of shard iteration order. *)
  let entries = List.sort (fun (a, _) (b, _) -> String.compare a b) entries in
  let doc =
    J.Obj
      [
        ("version", J.Int file_version);
        ("entries", J.List (List.map (fun (k, e) -> Qc.entry_to_json k e) entries));
      ]
  in
  Journal.atomic_write ~path (J.to_string doc ^ "\n");
  { written = !written; uncertified = !uncertified }
