(** Schemas: the finite summaries of infinite families of runs that the
    checker enumerates (POPL'17).  A schema interleaves guard-unlock
    events with observation events; between two events lies a {e segment}
    in which the rules enabled by the current context fire, accelerated,
    in topological order. *)

type event =
  | Unlock of Universe.guard_id
  | Observe of int  (** index into the spec's observation list *)

type t = event list

(** [walk u spec ?ctx ?obs_mask ~on_enter ~on_leave ~on_schema ()] is
    the DFS underlying {!enumerate}, with the tree structure exposed:
    [on_enter ev] fires when the walk descends the edge labelled [ev]
    and may answer [`Prune] to skip the entire subtree (no [on_leave],
    no [on_schema] calls for it); [on_leave ev] fires when the walk
    backtracks over an edge it descended; [on_schema ()] fires at every
    emission point, in the same preorder as {!enumerate} (the events of
    the current prefix are exactly those entered and not yet left), and
    answers whether to continue.  Returns [true] when the walk ran to
    completion.  [ctx]/[obs_mask] (default the root) start the walk at
    an interior node — used to traverse one subtree, e.g. a pruned one
    in counting mode or a worker's partition of the tree. *)
val walk :
  Universe.t ->
  Ta.Spec.t ->
  ?ctx:int ->
  ?obs_mask:int ->
  on_enter:(event -> [ `Descend | `Prune ]) ->
  on_leave:(event -> unit) ->
  on_schema:(unit -> bool) ->
  unit ->
  bool

(** [enumerate u spec ~on_schema] drives a DFS over admissible schemas,
    calling [on_schema] for each.  [on_schema] returns [true] to continue
    the enumeration, [false] to abort it.  Returns [true] when the
    enumeration ran to completion.

    For safety specs, a schema is emitted when its last event completes
    the observation set; for liveness specs, every node with a complete
    observation set is emitted (the run may stabilize in any context). *)
val enumerate : Universe.t -> Ta.Spec.t -> on_schema:(t -> bool) -> bool

(** [count u spec ~limit] counts schemas, up to [limit]. *)
val count : Universe.t -> Ta.Spec.t -> limit:int -> [ `Exactly of int | `More_than of int ]

val pp : Universe.t -> Ta.Spec.t -> Format.formatter -> t -> unit
