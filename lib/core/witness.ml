module A = Ta.Automaton
module B = Numbers.Bigint

type step = {
  rule : string;
  factor : int;
  counters : (string * int) list;
  shared : (string * int) list;
}

type t = {
  spec_name : string;
  schema : string;
  params : (string * int) list;
  init_counters : (string * int) list;
  steps : step list;
}

let of_model u (spec : Ta.Spec.t) schema (encoded : Encode.encoded) model =
  let ta = Universe.automaton u in
  let value v =
    match List.assoc_opt v model with
    | Some b -> B.to_int_exn b
    | None -> 0
  in
  let params = ref [] in
  let init_counters = ref [] in
  let factors = ref [] in
  List.iter
    (fun (v, kind) ->
      match (kind : Encode.var_kind) with
      | Encode.Param p -> params := (p, value v) :: !params
      | Encode.Init_counter l -> init_counters := (l, value v) :: !init_counters
      | Encode.Factor (seg, rule) -> factors := (seg, rule, value v) :: !factors)
    encoded.vars;
  let params = List.rev !params in
  let init_counters = List.rev !init_counters in
  (* Replay, checking non-negativity as we go. *)
  let counters = Hashtbl.create 16 in
  let shared = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace counters l 0) ta.locations;
  List.iter (fun (l, v) -> Hashtbl.replace counters l v) init_counters;
  List.iter (fun x -> Hashtbl.replace shared x 0) ta.shared;
  let snapshot table keys = List.map (fun k -> (k, Hashtbl.find table k)) keys in
  let steps = ref [] in
  List.iter
    (fun (_, rule_name, factor) ->
      if factor > 0 then begin
        let r = A.find_rule ta rule_name in
        let src = Hashtbl.find counters r.source in
        if src < factor then
          failwith
            (Printf.sprintf "Witness.of_model: negative counter replaying %s" rule_name);
        Hashtbl.replace counters r.source (src - factor);
        Hashtbl.replace counters r.target (Hashtbl.find counters r.target + factor);
        List.iter
          (fun (x, c) -> Hashtbl.replace shared x (Hashtbl.find shared x + (c * factor)))
          r.update;
        steps :=
          {
            rule = rule_name;
            factor;
            counters = snapshot counters ta.locations;
            shared = snapshot shared ta.shared;
          }
          :: !steps
      end)
    (List.rev !factors);
  {
    spec_name = spec.name;
    schema = Format.asprintf "%a" (Schema.pp u spec) schema;
    params;
    init_counters;
    steps = List.rev !steps;
  }

let pp_binding fmt (name, v) = Format.fprintf fmt "%s=%d" name v

let pp_nonzero fmt bindings =
  let nz = List.filter (fun (_, v) -> v <> 0) bindings in
  if nz = [] then Format.pp_print_string fmt "(all zero)"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
      pp_binding fmt nz

let pp fmt w =
  Format.fprintf fmt "@[<v 2>counterexample to %s:@," w.spec_name;
  Format.fprintf fmt "parameters: %a@,"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") pp_binding)
    w.params;
  Format.fprintf fmt "schema: %s@," w.schema;
  Format.fprintf fmt "initial: %a@," pp_nonzero w.init_counters;
  List.iter
    (fun s ->
      Format.fprintf fmt "%s x%d -> locations: %a | shared: %a@," s.rule s.factor
        pp_nonzero s.counters pp_nonzero s.shared)
    w.steps;
  Format.fprintf fmt "@]"

(* Pure renaming of every name the witness mentions — used to map a
   witness over an [Ta.Rta]-unrolled automaton back to template
   [(round, name)] coordinates.  The rendered [schema] string is left
   as-is (it is presentation, not data). *)
let rename ?(rule = Fun.id) ?(location = Fun.id) ?(shared = Fun.id) w =
  let counters kvs = List.map (fun (l, v) -> (location l, v)) kvs in
  let shared_vals kvs = List.map (fun (x, v) -> (shared x, v)) kvs in
  {
    w with
    init_counters = counters w.init_counters;
    steps =
      List.map
        (fun s ->
          {
            s with
            rule = rule s.rule;
            counters = counters s.counters;
            shared = shared_vals s.shared;
          })
        w.steps;
  }
