(** A deterministic work pool over OCaml 5 domains.

    [run] drains an indexed stream of jobs produced by a single producer
    through [jobs] worker domains.  The producer fills a bounded queue
    (so enumeration never races far ahead of the solvers); workers pop
    jobs, apply [work], and record results tagged with the job index.

    Determinism contract: the pool tracks the {e lowest} index whose
    result satisfies [is_stop] — exactly the job at which a sequential
    left-to-right execution would have stopped.  Every job with a smaller
    index is guaranteed to be executed; jobs with larger indices may or
    may not run (their results are reported but must be ignored by
    callers that want sequential semantics).  Once a stop is known, the
    producer is cut off and workers skip now-irrelevant jobs, giving the
    early-exit behaviour of the sequential loop.

    [work] runs concurrently on several domains: it must not touch
    shared mutable state. *)

type 'r completion = {
  results : (int * int * 'r) list;
      (** [(index, worker, result)] for every job that actually ran, in no
          particular order.  For sequential semantics restrict to indices
          [<= first_stop]. *)
  completed : bool;
      (** the producer ran to the natural end of its stream (it was not
          cut off by an early stop) *)
  first_stop : int option;
      (** lowest job index whose result satisfies [is_stop], if any *)
  busy : float array;
      (** per-worker wall-clock seconds spent inside [work] *)
}

(** [run ~jobs ~produce ~work ~is_stop ()] spawns [jobs] worker domains,
    then runs [produce ~push] on the calling domain.  [produce] must call
    [push] once per job, in order, and stop as soon as [push] returns
    [false] (the pool found an earlier stop and further jobs are
    irrelevant); it returns whether its stream ended naturally.  [push]
    blocks while the queue is full ([capacity], default
    [max 32 (4 * jobs)]).

    @raise Invalid_argument when [jobs < 1]. *)
val run :
  jobs:int ->
  ?capacity:int ->
  produce:(push:('a -> bool) -> bool) ->
  work:(worker:int -> int -> 'a -> 'r) ->
  is_stop:('r -> bool) ->
  unit ->
  'r completion
