(** A deterministic work pool over OCaml 5 domains.

    [run] drains an indexed stream of jobs produced by a single producer
    through [jobs] worker domains.  The producer fills a bounded queue
    (so enumeration never races far ahead of the solvers); workers pop
    jobs, apply [work], and record results tagged with the job index.

    Determinism contract: the pool tracks the {e lowest} index whose
    result satisfies [is_stop] — exactly the job at which a sequential
    left-to-right execution would have stopped.  Every job with a smaller
    index is guaranteed to be executed; jobs with larger indices may or
    may not run (their results are reported but must be ignored by
    callers that want sequential semantics).  Once a stop is known, the
    producer is cut off and workers skip now-irrelevant jobs, giving the
    early-exit behaviour of the sequential loop.

    Fail-soft contract: a [work] exception no longer poisons the run.
    The crashed job is re-queued once at the back of the queue (a
    deterministic backoff: everything already queued runs first); a
    second failure quarantines the job's index into
    {!completion.quarantined} and the run continues.  Callers that need
    all-or-nothing semantics must inspect [quarantined].

    [work] runs concurrently on several domains: it must not touch
    shared mutable state. *)

type 'r completion = {
  results : (int * int * 'r) list;
      (** [(index, worker, result)] for every job that actually ran, in no
          particular order.  For sequential semantics restrict to indices
          [<= first_stop]. *)
  completed : bool;
      (** the producer ran to the natural end of its stream (it was not
          cut off by an early stop) *)
  first_stop : int option;
      (** lowest job index whose result satisfies [is_stop], if any *)
  busy : float array;
      (** per-worker wall-clock seconds spent inside [work] *)
  quarantined : (int * string) list;
      (** jobs whose [work] raised on both attempts, ascending by index,
          with the (deduplicated) exception messages *)
}

(** [run ~jobs ~produce ~work ~is_stop ()] spawns [jobs] worker domains,
    then runs [produce ~push] on the calling domain.  [produce] must call
    [push] once per job, in order, and stop as soon as [push] returns
    [false] (the pool found an earlier stop and further jobs are
    irrelevant); it returns whether its stream ended naturally.  [push]
    blocks while the queue is full ([capacity], default
    [max 32 (4 * jobs)]).

    [on_result], when given, is invoked as [on_result index result] by
    the worker domain right after each job completes (checkpoint hooks,
    progress meters).  It runs concurrently on several domains and
    outside the pool lock, so it must synchronize its own state; an
    exception it raises is swallowed (it must not affect the run).

    @raise Invalid_argument when [jobs < 1]. *)
val run :
  jobs:int ->
  ?capacity:int ->
  ?on_result:(int -> 'r -> unit) ->
  produce:(push:('a -> bool) -> bool) ->
  work:(worker:int -> int -> 'a -> 'r) ->
  is_stop:('r -> bool) ->
  unit ->
  'r completion
