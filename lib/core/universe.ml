module A = Ta.Automaton
module G = Ta.Guard
module Q = Numbers.Rational
module L = Smt.Linexpr

type guard_id = int

type t = {
  ta : A.t;
  atoms : G.atom array;
  use_implication_order : bool;
  use_producibility : bool;
  (* precede.(h).(g): h => g, so g must unlock no later than h. *)
  precede : bool array array;
  (* threshold is >= 1 under the resilience condition, hence the guard
     needs a producer rule to have fired. *)
  needs_producer : bool array;
  (* rules that increment a variable of the guard. *)
  producers : A.rule list array;
  topo_rules : A.rule list;
  (* canonical atom key -> guard id; see [atom_key] *)
  atom_index : ((string * int) list * (string * int) list * int, int) Hashtbl.t;
  rule_guard_ids : (string, int) Hashtbl.t;  (* rule name -> guard bitmask *)
  (* For each justice atom: guard ids it implies, guard ids implying it. *)
  justice_implies : (G.atom * int list * int list) list;
}

(* --- small LIA helper over the parameters and shared variables ------ *)

let var_env (ta : A.t) =
  let table = Hashtbl.create 16 in
  let next = ref 0 in
  let intern name =
    match Hashtbl.find_opt table name with
    | Some i -> i
    | None ->
      let i = !next in
      incr next;
      Hashtbl.replace table name i;
      i
  in
  List.iter (fun p -> ignore (intern ("p:" ^ p))) ta.params;
  List.iter (fun x -> ignore (intern ("s:" ^ x))) ta.shared;
  intern

let pexpr_linexpr intern (e : Ta.Pexpr.t) =
  L.of_int_terms (List.map (fun (p, c) -> (c, intern ("p:" ^ p))) e.coeffs) e.const

let guard_lhs intern (a : G.atom) =
  L.of_int_terms (List.map (fun (x, c) -> (c, intern ("s:" ^ x))) a.shared) 0

let base_atoms (ta : A.t) intern =
  let nonneg name = Smt.Atom.ge (L.var (intern name)) L.zero in
  List.map (fun e -> Smt.Atom.ge (pexpr_linexpr intern e) L.zero) ta.resilience
  @ List.map (fun p -> nonneg ("p:" ^ p)) ta.params
  @ List.map (fun x -> nonneg ("s:" ^ x)) ta.shared

let guard_true intern (a : G.atom) =
  Smt.Atom.ge (guard_lhs intern a) (pexpr_linexpr intern a.bound)

let guard_false intern (a : G.atom) =
  Smt.Atom.lt (guard_lhs intern a) (pexpr_linexpr intern a.bound)

let unsat atoms =
  match Smt.Lia.solve atoms with
  | Smt.Lia.Unsat -> true
  | Smt.Lia.Sat _ -> false
  | Smt.Lia.Unknown | Smt.Lia.Timeout -> false (* conservative: assume satisfiable *)

(* Structural key under which two atoms collide iff [G.atom_equal]: the
   shared side is sorted by construction, the bound's coefficient list is
   not ([Pexpr.compare] sorts on the fly), so sort it here. *)
let atom_key (a : G.atom) =
  (a.shared, List.sort Stdlib.compare a.bound.Ta.Pexpr.coeffs, a.bound.Ta.Pexpr.const)

(* Contexts are bitmasks over guard ids in a 63-bit OCaml int; id 62
   would shift into the sign bit. *)
let max_guard_atoms = 62

(* ------------------------------------------------------------------- *)

let build ?(use_implication_order = true) ?(use_producibility = true) (ta : A.t) =
  let atoms = Array.of_list (A.unique_guard_atoms ta) in
  let n = Array.length atoms in
  if n > max_guard_atoms then
    invalid_arg
      (Printf.sprintf
         "Universe.build: automaton %s has %d guard atoms, but contexts are bitmasks in a \
          63-bit integer supporting at most %d"
         ta.name n max_guard_atoms);
  let intern = var_env ta in
  let base = base_atoms ta intern in
  let precede =
    Array.init n (fun h ->
        Array.init n (fun g ->
            h <> g
            && unsat (guard_true intern atoms.(h) :: guard_false intern atoms.(g) :: base)))
  in
  let needs_producer =
    Array.init n (fun g ->
        (* Threshold can never be <= 0: the guard cannot hold while its
           variables are all zero. *)
        unsat
          (Smt.Atom.le (pexpr_linexpr intern atoms.(g).bound) L.zero :: base))
  in
  let producers =
    Array.init n (fun g ->
        let vars = List.map fst atoms.(g).shared in
        List.filter
          (fun (r : A.rule) -> List.exists (fun (x, c) -> c > 0 && List.mem x vars) r.update)
          ta.rules)
  in
  let atom_index = Hashtbl.create (2 * n) in
  Array.iteri (fun i a -> Hashtbl.replace atom_index (atom_key a) i) atoms;
  let guard_index a = Hashtbl.find atom_index (atom_key a) in
  let rule_guard_ids = Hashtbl.create 16 in
  List.iter
    (fun (r : A.rule) ->
      let mask =
        List.fold_left (fun acc a -> acc lor (1 lsl guard_index a)) 0 r.guard
      in
      Hashtbl.replace rule_guard_ids r.name mask)
    ta.rules;
  let justice_implies =
    List.concat_map (fun (j : A.justice) -> j.unless) ta.justice
    |> List.sort_uniq G.atom_compare
    |> List.map (fun a ->
           let implies_guards = ref [] and implied_by_guards = ref [] in
           for h = 0 to n - 1 do
             if unsat (guard_true intern a :: guard_false intern atoms.(h) :: base) then
               implies_guards := h :: !implies_guards;
             if unsat (guard_true intern atoms.(h) :: guard_false intern a :: base) then
               implied_by_guards := h :: !implied_by_guards
           done;
           (a, !implies_guards, !implied_by_guards))
  in
  {
    ta;
    atoms;
    use_implication_order;
    use_producibility;
    precede;
    needs_producer;
    producers;
    topo_rules = A.topological_rule_order ta;
    atom_index;
    rule_guard_ids;
    justice_implies;
  }

let automaton u = u.ta
let size u = Array.length u.atoms
let atom u g = u.atoms.(g)
let ids u = List.init (size u) Fun.id

let guard_ids u (g : G.t) =
  List.map
    (fun a ->
      match Hashtbl.find_opt u.atom_index (atom_key a) with
      | Some i -> i
      | None -> invalid_arg "Universe.guard_ids: atom not in universe")
    g

let must_precede u g h = u.precede.(h).(g)

let rule_mask u (r : A.rule) = Hashtbl.find u.rule_guard_ids r.name

let enabled_rules u ctx =
  List.filter (fun r -> rule_mask u r land lnot ctx = 0) u.topo_rules

(* Locations reachable from the initial ones via rules enabled in [ctx]. *)
let reachable_locs u ctx =
  let reach = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace reach l ()) u.ta.initial;
  let changed = ref true in
  let rules = enabled_rules u ctx in
  while !changed do
    changed := false;
    List.iter
      (fun (r : A.rule) ->
        if Hashtbl.mem reach r.source && not (Hashtbl.mem reach r.target) then begin
          Hashtbl.replace reach r.target ();
          changed := true
        end)
      rules
  done;
  reach

let justice_atom_status u ctx (a : G.atom) =
  match
    List.find_opt (fun (b, _, _) -> G.atom_equal a b) u.justice_implies
  with
  | None -> `Unknown
  | Some (_, implies_guards, implied_by_guards) ->
    if List.exists (fun h -> ctx land (1 lsl h) = 0) implies_guards then `False
    else if List.exists (fun h -> ctx land (1 lsl h) <> 0) implied_by_guards then `True
    else `Unknown

let unlock_candidates u ctx =
  let n = size u in
  let reach = lazy (reachable_locs u ctx) in
  List.filter
    (fun g ->
      ctx land (1 lsl g) = 0
      (* Implication order: every guard implied by g must already be
         unlocked. *)
      && ((not u.use_implication_order)
         ||
         let ok = ref true in
         for g' = 0 to n - 1 do
           if g' <> g && u.precede.(g).(g') && ctx land (1 lsl g') = 0 then ok := false
         done;
         !ok)
      (* Producibility. *)
      && ((not u.use_producibility) || (not u.needs_producer.(g))
         || List.exists
              (fun (r : A.rule) ->
                rule_mask u r land lnot ctx = 0
                && Hashtbl.mem (Lazy.force reach) r.source)
              u.producers.(g)))
    (List.init n Fun.id)
