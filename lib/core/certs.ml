(* Certificate emission for [--emit-certs]: every UNSAT verdict the
   sequential engines produce — a discharged schema or a pruned prefix —
   is re-proved on the certifying LIA engine and written as one JSONL
   line that [holistic check-cert] replays against the standalone
   {!Smt.Certcheck}.  The certifying solver keeps its own step counter,
   so emission never perturbs the step totals the benchmark gates pin. *)

module J = Jsonc

type sink = {
  oc : out_channel;
  max_steps : int;
  cert_steps : int ref;  (* certifying-engine steps, kept out of checker stats *)
  mutable emitted : int;
  mutable failed : int;
}

let create ?(max_steps = 1_000_000) oc =
  { oc; max_steps; cert_steps = ref 0; emitted = 0; failed = 0 }

let emitted s = s.emitted
let failed s = s.failed
let cert_steps s = !(s.cert_steps)

let atoms_json atoms = J.List (List.map Smt.Certificate.atom_to_json atoms)

let write sink fields =
  output_string sink.oc (J.to_string (J.Obj fields));
  output_char sink.oc '\n'

(* Re-prove [atoms /\ (one cube per branch entry)] on the certifying
   engine, mirroring [solve_schema]'s case analysis: a refutation of the
   plain conjunction refutes the query whatever the pending branches, so
   a [Split] node is only built when the conjunction is satisfiable. *)
let rec certify sink atoms branches =
  match
    Smt.Lia.solve_cert ~steps:sink.cert_steps ~max_steps:sink.max_steps atoms
  with
  | Smt.Lia.Cert_unsat cert -> Some cert
  | Smt.Lia.Cert_unknown | Smt.Lia.Cert_timeout -> None
  | Smt.Lia.Cert_sat _ -> (
    match branches with
    | [] -> None
    | cubes :: rest ->
      let sub = List.map (fun cube -> certify sink (atoms @ cube) rest) cubes in
      if List.for_all Option.is_some sub then
        Some (Smt.Certificate.Split { cubes; certs = List.filter_map Fun.id sub })
      else None)

let emit_schema sink ~position (e : Encode.encoded) =
  match certify sink e.Encode.atoms e.Encode.branches with
  | Some cert ->
    sink.emitted <- sink.emitted + 1;
    write sink
      [
        ("kind", J.Str "schema");
        ("position", J.Int position);
        ("atoms", atoms_json e.Encode.atoms);
        ( "branches",
          J.List
            (List.map
               (fun alts -> J.List (List.map atoms_json alts))
               e.Encode.branches) );
        ("cert", Smt.Certificate.to_json cert);
      ]
  | None -> sink.failed <- sink.failed + 1

let emit_prefix sink ~position ~span atoms =
  match certify sink atoms [] with
  | Some cert ->
    sink.emitted <- sink.emitted + 1;
    write sink
      [
        ("kind", J.Str "prefix");
        ("position", J.Int position);
        ("span", J.Int span);
        ("atoms", atoms_json atoms);
        ("cert", Smt.Certificate.to_json cert);
      ]
  | None -> sink.failed <- sink.failed + 1

(* A static prune's certificate was already proved and validated when
   the invariant engine built it (see {!Analysis.Invariants}), so the
   certifying solver is not consulted — the pre-built certificate is
   written as-is. *)
let emit_static sink ~position ~span atoms cert =
  sink.emitted <- sink.emitted + 1;
  write sink
    [
      ("kind", J.Str "static");
      ("position", J.Int position);
      ("span", J.Int span);
      ("atoms", atoms_json atoms);
      ("cert", Smt.Certificate.to_json cert);
    ]

let flush sink = Stdlib.flush sink.oc
