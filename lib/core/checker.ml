module A = Ta.Automaton

type limits = {
  max_schemas : int;
  time_budget : float option;
  lia_max_steps : int;
  jobs : int;
  incremental : bool;
}

let default_limits =
  {
    max_schemas = 100_000;
    time_budget = None;
    lia_max_steps = 200_000;
    jobs = 1;
    incremental = true;
  }

type outcome = Holds | Violated of Witness.t | Aborted of string

type worker_stat = {
  worker_id : int;
  schemas : int;
  slots : int;
  solver_steps : int;
  busy_time : float;
}

type stats = {
  schemas_checked : int;
  schemas_skipped : int;
  subtrees_pruned : int;
  prefix_hits : int;
  slots_total : int;
  solver_steps : int;
  encode_time : float;
  solve_time : float;
  time : float;
  jobs : int;
  workers : worker_stat list;
}

type result = { spec : Ta.Spec.t; outcome : outcome; stats : stats }

(* The structural preconditions, delegated to the static analyzer: DAG
   shape and name sanity (TA001-TA004), refutable safety specs (TA012),
   liveness shape and absorbing targets (TA013/TA014), spec name
   resolution (TA011).  Kept as a raising wrapper for backwards
   compatibility with callers that expect Invalid_argument. *)
let precheck ta (spec : Ta.Spec.t) =
  match Analysis.errors (Analysis.check_structure ta @ Analysis.check_spec ta spec) with
  | [] -> ()
  | d :: _ -> invalid_arg (Format.asprintf "Checker: %s: %a" ta.A.name Analysis.pp d)

(* Decide [atoms /\ (one cube per branch entry)] by depth-first case
   analysis over the factored justice branches; every path is a plain
   LIA conjunction. *)
let solve_schema ?steps ~limits (encoded : Encode.encoded) =
  let rec go atoms branches =
    match branches with
    | [] -> (
      match Smt.Lia.solve ?steps ~max_steps:limits.lia_max_steps atoms with
      | Smt.Lia.Sat m -> `Sat m
      | Smt.Lia.Unsat -> `Unsat
      | Smt.Lia.Unknown -> `Unknown)
    | alternatives :: rest ->
      let rec try_alts = function
        | [] -> `Unsat
        | cube :: others -> (
          match go (cube @ atoms) rest with
          | `Sat m -> `Sat m
          | `Unknown -> `Unknown
          | `Unsat -> try_alts others)
      in
      try_alts alternatives
  in
  (* The conjunctive part is usually already unsatisfiable; only then
     expand the justice case-split product. *)
  match go encoded.atoms [] with
  | `Unsat -> `Unsat
  | `Unknown -> `Unknown
  | `Sat m -> if encoded.branches = [] then `Sat m else go encoded.atoms encoded.branches

let budget_messages ~max_schemas_hit ~schemas ~budget =
  if max_schemas_hit then Printf.sprintf "schema budget exceeded (> %d schemas)" schemas
  else
    Printf.sprintf "time budget exceeded (> %.0f s, %d schemas checked)" budget schemas

let unknown_message = "solver returned unknown (branch-and-bound budget)"

(* ------------------------------------------------------------------- *)
(* Flat sequential engine: one self-contained query per schema.  The
   reference implementation everything else is pinned to — the parallel
   engine by test/test_parallel.ml, the incremental engines by
   test/test_incremental.ml. *)

let verify_flat_sequential ~limits u (spec : Ta.Spec.t) =
  let t0 = Unix.gettimeofday () in
  let schemas = ref 0 in
  let slots = ref 0 in
  let steps = ref 0 in
  let encode_t = ref 0.0 in
  let solve_t = ref 0.0 in
  let found = ref None in
  let aborted = ref None in
  let complete =
    Schema.enumerate u spec ~on_schema:(fun schema ->
        let elapsed = Unix.gettimeofday () -. t0 in
        if !schemas >= limits.max_schemas then begin
          aborted := Some (budget_messages ~max_schemas_hit:true ~schemas:!schemas ~budget:0.0);
          false
        end
        else
          match limits.time_budget with
          | Some budget when elapsed > budget ->
            aborted :=
              Some (budget_messages ~max_schemas_hit:false ~schemas:!schemas ~budget);
            false
          | _ -> (
            incr schemas;
            let t1 = Unix.gettimeofday () in
            let encoded = Encode.encode u spec schema in
            let t2 = Unix.gettimeofday () in
            encode_t := !encode_t +. (t2 -. t1);
            slots := !slots + encoded.n_slots;
            let verdict = solve_schema ~steps ~limits encoded in
            solve_t := !solve_t +. (Unix.gettimeofday () -. t2);
            match verdict with
            | `Unsat -> true
            | `Sat model ->
              found := Some (Witness.of_model u spec schema encoded model);
              false
            | `Unknown ->
              aborted := Some unknown_message;
              false))
  in
  let time = Unix.gettimeofday () -. t0 in
  let stats =
    {
      schemas_checked = !schemas;
      schemas_skipped = 0;
      subtrees_pruned = 0;
      prefix_hits = 0;
      slots_total = !slots;
      solver_steps = !steps;
      encode_time = !encode_t;
      solve_time = !solve_t;
      time;
      jobs = 1;
      workers =
        [
          {
            worker_id = 0;
            schemas = !schemas;
            slots = !slots;
            solver_steps = !steps;
            busy_time = !encode_t +. !solve_t;
          };
        ];
    }
  in
  let outcome =
    match (!found, !aborted, complete) with
    | Some w, _, _ -> Violated w
    | None, Some reason, _ -> Aborted reason
    | None, None, true -> Holds
    | None, None, false -> Aborted "enumeration stopped unexpectedly"
  in
  { spec; outcome; stats }

(* ------------------------------------------------------------------- *)
(* Flat parallel engine: the producer runs the enumeration (and the
   budget checks, so aborts stay deterministic) on the calling domain
   while [limits.jobs] worker domains encode and solve.  Each schema is
   an independent LIA query; the pool's first-stop-in-enumeration-order
   contract makes outcomes, witnesses and schema counts bit-identical to
   [verify_flat_sequential] (time-budget aborts excepted: wall-clock is
   inherently racy, sequentially too). *)

type job_outcome = J_unsat | J_sat of Witness.t | J_unknown

type job_result = {
  n_slots : int;
  job_steps : int;
  j_encode_t : float;
  j_solve_t : float;
  verdict : job_outcome;
}

let verify_flat_parallel ~limits u (spec : Ta.Spec.t) =
  let t0 = Unix.gettimeofday () in
  let emitted = ref 0 in
  let aborted = ref None in
  let produce ~push =
    Schema.enumerate u spec ~on_schema:(fun schema ->
        if !emitted >= limits.max_schemas then begin
          aborted :=
            Some (budget_messages ~max_schemas_hit:true ~schemas:!emitted ~budget:0.0);
          false
        end
        else
          match limits.time_budget with
          | Some budget when Unix.gettimeofday () -. t0 > budget ->
            aborted :=
              Some (budget_messages ~max_schemas_hit:false ~schemas:!emitted ~budget);
            false
          | _ ->
            if push schema then begin
              incr emitted;
              true
            end
            else false)
  in
  let work ~worker:_ _index schema =
    let steps = ref 0 in
    let t1 = Unix.gettimeofday () in
    let encoded = Encode.encode u spec schema in
    let t2 = Unix.gettimeofday () in
    let verdict =
      match solve_schema ~steps ~limits encoded with
      | `Unsat -> J_unsat
      | `Sat model -> J_sat (Witness.of_model u spec schema encoded model)
      | `Unknown -> J_unknown
    in
    {
      n_slots = encoded.n_slots;
      job_steps = !steps;
      j_encode_t = t2 -. t1;
      j_solve_t = Unix.gettimeofday () -. t2;
      verdict;
    }
  in
  let is_stop r = match r.verdict with J_unsat -> false | J_sat _ | J_unknown -> true in
  let c = Pool.run ~jobs:limits.jobs ~produce ~work ~is_stop () in
  (* Restrict to the jobs a sequential run would have executed: indices
     up to (and including) the first stop. *)
  let cut = match c.Pool.first_stop with Some i -> i | None -> max_int in
  let counted = List.filter (fun (i, _, _) -> i <= cut) c.Pool.results in
  let schemas_checked = match c.Pool.first_stop with Some i -> i + 1 | None -> !emitted in
  let slots_total = List.fold_left (fun acc (_, _, r) -> acc + r.n_slots) 0 counted in
  let solver_steps = List.fold_left (fun acc (_, _, r) -> acc + r.job_steps) 0 counted in
  let encode_time = List.fold_left (fun acc (_, _, r) -> acc +. r.j_encode_t) 0.0 counted in
  let solve_time = List.fold_left (fun acc (_, _, r) -> acc +. r.j_solve_t) 0.0 counted in
  let workers =
    List.init limits.jobs (fun wid ->
        (* Utilisation is reported over everything a worker actually ran,
           including work an earlier stop later made irrelevant. *)
        let mine =
          List.filter_map
            (fun (_, w, r) -> if w = wid then Some r else None)
            c.Pool.results
        in
        {
          worker_id = wid;
          schemas = List.length mine;
          slots = List.fold_left (fun acc r -> acc + r.n_slots) 0 mine;
          solver_steps = List.fold_left (fun acc r -> acc + r.job_steps) 0 mine;
          busy_time = c.Pool.busy.(wid);
        })
  in
  let outcome =
    match c.Pool.first_stop with
    | Some i -> (
      match List.find (fun (j, _, _) -> j = i) counted with
      | _, _, { verdict = J_sat w; _ } -> Violated w
      | _, _, { verdict = J_unknown; _ } -> Aborted unknown_message
      | _, _, { verdict = J_unsat; _ } -> assert false)
    | None -> (
      match (!aborted, c.Pool.completed) with
      | Some reason, _ -> Aborted reason
      | None, true -> Holds
      | None, false -> Aborted "enumeration stopped unexpectedly")
  in
  let stats =
    {
      schemas_checked;
      schemas_skipped = 0;
      subtrees_pruned = 0;
      prefix_hits = 0;
      slots_total;
      solver_steps;
      encode_time;
      solve_time;
      time = Unix.gettimeofday () -. t0;
      jobs = limits.jobs;
      workers;
    }
  in
  { spec; outcome; stats }

(* ------------------------------------------------------------------- *)
(* Incremental engine: walk the enumeration tree once, sharing the
   encoding and the solver state of every common prefix through
   {!Encode.session} and {!Smt.Lia.session}.  At each edge the event's
   atom delta is pushed and the prefix's reachability is (re)checked by
   {!Smt.Lia.check_quick} — interval propagation and the model cache
   only, never the simplex, so the check costs zero counted solver
   steps; an unsatisfiable prefix prunes the whole subtree, which is
   sound because [Encode.finalize] only ever appends to the prefix's
   atoms (see DESIGN.md).  Schemas that survive to their emission point
   are
   discharged with the same flat [solve_schema] on the same finalized
   query as the flat engine, so verdicts, witnesses and the deciding
   schema's enumeration index are bit-identical; pruned subtrees are
   walked in a counting-only mode so budgets trip at the same position
   and the skipped schemas' slot totals still add up. *)

(* Mutable per-run (sequential) or per-job (parallel) tally.  [position]
   is the global enumeration index — checked and skipped schemas both
   advance it, which is what keeps [max_schemas] aborts aligned with the
   flat engines. *)
type inc_tally = {
  mutable position : int;
  start : int;
  mutable checked : int;
  mutable skipped : int;
  mutable pruned : int;
  mutable slots : int;
  steps : int ref;
  hits : int ref;
  mutable encode_t : float;
  mutable solve_t : float;
  mutable found : Witness.t option;
  mutable abort_msg : string option;
}

let new_tally ~start =
  {
    position = start;
    start;
    checked = 0;
    skipped = 0;
    pruned = 0;
    slots = 0;
    steps = ref 0;
    hits = ref 0;
    encode_t = 0.0;
    solve_t = 0.0;
    found = None;
    abort_msg = None;
  }

let check_budget ~limits ~t0 c =
  if c.position >= limits.max_schemas then
    Some (budget_messages ~max_schemas_hit:true ~schemas:c.position ~budget:0.0)
  else
    match limits.time_budget with
    | Some budget when Unix.gettimeofday () -. t0 > budget ->
      Some (budget_messages ~max_schemas_hit:false ~schemas:c.position ~budget)
    | _ -> None

(* Account a pruned subtree without solving: advance the enumeration
   position, apply the budget checks at every skipped schema (so aborts
   land exactly where the flat engine's would), and accumulate the slots
   each skipped schema would have had, via the slot simulation. *)
let count_subtree ~limits ~t0 u spec sim0 c ~ctx ~obs_mask =
  let sims = ref [ sim0 ] in
  ignore
    (Schema.walk u spec ~ctx ~obs_mask
       ~on_enter:(fun ev ->
         sims := Encode.Sim.push_event (List.hd !sims) ev :: !sims;
         `Descend)
       ~on_leave:(fun _ -> sims := List.tl !sims)
       ~on_schema:(fun () ->
         match check_budget ~limits ~t0 c with
         | Some msg ->
           c.abort_msg <- Some msg;
           false
         | None ->
           c.position <- c.position + 1;
           c.skipped <- c.skipped + 1;
           c.slots <- c.slots + Encode.Sim.leaf_slots (List.hd !sims);
           true)
       ())

(* The incremental DFS over the subtree rooted at the sessions' current
   prefix (whose reachability the caller has already established). *)
let run_inc_subtree ~limits ~t0 u spec es lia c ~prefix_rev ~ctx0 ~obs0 =
  let rev_events = ref prefix_rev in
  let ctx_stack = ref [ ctx0 ] in
  let obs_stack = ref [ obs0 ] in
  let stop = ref false in
  ignore
    (Schema.walk u spec ~ctx:ctx0 ~obs_mask:obs0
       ~on_enter:(fun ev ->
         if !stop then `Prune
         else begin
           let ctx = List.hd !ctx_stack and obs = List.hd !obs_stack in
           let ctx', obs' =
             match ev with
             | Schema.Unlock g -> (ctx lor (1 lsl g), obs)
             | Schema.Observe i -> (ctx, obs lor (1 lsl i))
           in
           let t1 = Unix.gettimeofday () in
           let delta = Encode.push_event es ev in
           let t2 = Unix.gettimeofday () in
           c.encode_t <- c.encode_t +. (t2 -. t1);
           Smt.Lia.push lia;
           Smt.Lia.assert_atoms lia delta;
           (* Reachability is decided by [check_quick] only: the
              interval store and the model cache, never the simplex.
              Pruning therefore costs zero counted solver steps, which
              is what makes the incremental engine's step total at most
              the flat engine's on every property (the leaves it does
              check are the identical flat queries). *)
           let reach = Smt.Lia.check_quick ~hits:c.hits lia in
           c.solve_t <- c.solve_t +. (Unix.gettimeofday () -. t2);
           match reach with
           | Smt.Lia.Unsat ->
             c.pruned <- c.pruned + 1;
             let sim = Encode.Sim.of_session es in
             Smt.Lia.pop lia;
             Encode.pop_event es;
             count_subtree ~limits ~t0 u spec sim c ~ctx:ctx' ~obs_mask:obs';
             if c.abort_msg <> None then stop := true;
             `Prune
           | Smt.Lia.Sat _ | Smt.Lia.Unknown ->
             (* Unknown: cannot prune; descend and let the leaves decide. *)
             ctx_stack := ctx' :: !ctx_stack;
             obs_stack := obs' :: !obs_stack;
             rev_events := ev :: !rev_events;
             `Descend
         end)
       ~on_leave:(fun _ ->
         ctx_stack := List.tl !ctx_stack;
         obs_stack := List.tl !obs_stack;
         rev_events := List.tl !rev_events;
         Smt.Lia.pop lia;
         Encode.pop_event es)
       ~on_schema:(fun () ->
         if !stop then false
         else
           match check_budget ~limits ~t0 c with
           | Some msg ->
             c.abort_msg <- Some msg;
             stop := true;
             false
           | None -> (
             c.position <- c.position + 1;
             c.checked <- c.checked + 1;
             let t1 = Unix.gettimeofday () in
             let encoded = Encode.finalize es in
             let t2 = Unix.gettimeofday () in
             c.encode_t <- c.encode_t +. (t2 -. t1);
             c.slots <- c.slots + encoded.n_slots;
             (* Leaf queries are discharged flat, on the full finalized
                atom list: verdicts and witness models are those of the
                flat engine, byte for byte. *)
             let verdict = solve_schema ~steps:c.steps ~limits encoded in
             c.solve_t <- c.solve_t +. (Unix.gettimeofday () -. t2);
             match verdict with
             | `Unsat -> true
             | `Sat model ->
               c.found <-
                 Some (Witness.of_model u spec (List.rev !rev_events) encoded model);
               stop := true;
               false
             | `Unknown ->
               c.abort_msg <- Some unknown_message;
               stop := true;
               false))
       ())

(* Open both sessions at [prefix] and reach-check it once; on UNSAT the
   caller's whole subtree is accounted in counting mode, otherwise the
   incremental DFS runs below it. *)
let run_inc_job ~limits ~t0 u spec c ~prefix ~ctx ~obs_mask =
  let t1 = Unix.gettimeofday () in
  let es = Encode.start u spec in
  let lia = Smt.Lia.create () in
  Smt.Lia.assert_atoms lia (Encode.base_atoms es);
  List.iter
    (fun ev ->
      let delta = Encode.push_event es ev in
      Smt.Lia.push lia;
      Smt.Lia.assert_atoms lia delta)
    prefix;
  let t2 = Unix.gettimeofday () in
  c.encode_t <- c.encode_t +. (t2 -. t1);
  let reach = Smt.Lia.check_quick ~hits:c.hits lia in
  c.solve_t <- c.solve_t +. (Unix.gettimeofday () -. t2);
  match reach with
  | Smt.Lia.Unsat ->
    c.pruned <- c.pruned + 1;
    count_subtree ~limits ~t0 u spec (Encode.Sim.of_session es) c ~ctx ~obs_mask
  | Smt.Lia.Sat _ | Smt.Lia.Unknown ->
    run_inc_subtree ~limits ~t0 u spec es lia c ~prefix_rev:(List.rev prefix) ~ctx0:ctx
      ~obs0:obs_mask

let inc_outcome c ~complete =
  match (c.found, c.abort_msg) with
  | Some w, _ -> Violated w
  | None, Some reason -> Aborted reason
  | None, None -> if complete then Holds else Aborted "enumeration stopped unexpectedly"

let verify_incremental_sequential ~limits u (spec : Ta.Spec.t) =
  let t0 = Unix.gettimeofday () in
  let c = new_tally ~start:0 in
  run_inc_job ~limits ~t0 u spec c ~prefix:[] ~ctx:0 ~obs_mask:0;
  let time = Unix.gettimeofday () -. t0 in
  let stats =
    {
      schemas_checked = c.position;
      schemas_skipped = c.skipped;
      subtrees_pruned = c.pruned;
      prefix_hits = !(c.hits);
      slots_total = c.slots;
      solver_steps = !(c.steps);
      encode_time = c.encode_t;
      solve_time = c.solve_t;
      time;
      jobs = 1;
      workers =
        [
          {
            worker_id = 0;
            schemas = c.position;
            slots = c.slots;
            solver_steps = !(c.steps);
            busy_time = c.encode_t +. c.solve_t;
          };
        ];
    }
  in
  { spec; outcome = inc_outcome c ~complete:true; stats }

(* ------------------------------------------------------------------- *)
(* Parallel incremental engine: the enumeration tree is partitioned at a
   fixed depth — every node above the cut whose observation set is
   complete becomes a single-schema job, every subtree rooted at the cut
   becomes one incremental job — and jobs carry their subtree's starting
   enumeration position, so positions are globally consistent.  Jobs are
   contiguous blocks of the preorder, pushed in order, and each worker
   stops at the first deciding schema inside its block, so the pool's
   first-stop contract again yields the sequential outcome, witness and
   schema count.  Reachability pruning is a deterministic function of
   the prefix (interval propagation over the same assert sequence), so
   the set of schemas actually solved — and the solver-step total —
   matches the sequential incremental engine; only the granularity
   counters (subtrees pruned, prefix hits) differ, because one pruned
   subtree in the sequential engine may surface as several pruned jobs
   here. *)

let partition_depth = 2

type inc_job = {
  ij_prefix : Schema.event list;
  ij_ctx : int;
  ij_obs : int;
  ij_start : int;
  ij_subtree : bool;  (** false: the single schema at [ij_prefix] *)
}

type inc_job_result = {
  ir_schemas : int;  (** enumeration positions consumed (checked + skipped) *)
  ir_checked : int;
  ir_skipped : int;
  ir_pruned : int;
  ir_hits : int;
  ir_slots : int;
  ir_steps : int;
  ir_encode_t : float;
  ir_solve_t : float;
  ir_verdict : [ `Unsat_all | `Sat of Witness.t | `Unknown | `Budget of string ];
}

(* Schemas in the subtree at (ctx, obs_mask), counted up to [limit] —
   beyond the schema budget the exact total is irrelevant (the producer
   stops once the budget position is covered by a pushed job). *)
let count_schemas_upto u spec ~ctx ~obs_mask ~limit =
  let n = ref 0 in
  ignore
    (Schema.walk u spec ~ctx ~obs_mask
       ~on_enter:(fun _ -> `Descend)
       ~on_leave:(fun _ -> ())
       ~on_schema:(fun () ->
         incr n;
         !n < limit)
       ());
  !n

let verify_incremental_parallel ~limits u (spec : Ta.Spec.t) =
  let t0 = Unix.gettimeofday () in
  let produce ~push =
    let pos = ref 0 in
    let depth = ref 0 in
    let rev_prefix = ref [] in
    let ctx_stack = ref [ 0 ] in
    let obs_stack = ref [ 0 ] in
    let stop = ref false in
    (* Once a pushed job covers position [max_schemas], the deterministic
       budget abort is in flight: stop producing. *)
    let covered_budget () = !pos > limits.max_schemas in
    Schema.walk u spec
      ~on_enter:(fun ev ->
        if !stop then `Prune
        else begin
          let ctx = List.hd !ctx_stack and obs = List.hd !obs_stack in
          let ctx', obs' =
            match ev with
            | Schema.Unlock g -> (ctx lor (1 lsl g), obs)
            | Schema.Observe i -> (ctx, obs lor (1 lsl i))
          in
          if !depth + 1 >= partition_depth then begin
            let limit = max 1 (limits.max_schemas - !pos + 1) in
            let n = count_schemas_upto u spec ~ctx:ctx' ~obs_mask:obs' ~limit in
            (if n > 0 then
               let job =
                 {
                   ij_prefix = List.rev (ev :: !rev_prefix);
                   ij_ctx = ctx';
                   ij_obs = obs';
                   ij_start = !pos;
                   ij_subtree = true;
                 }
               in
               if push job then begin
                 pos := !pos + n;
                 if covered_budget () then stop := true
               end
               else stop := true);
            `Prune
          end
          else begin
            incr depth;
            ctx_stack := ctx' :: !ctx_stack;
            obs_stack := obs' :: !obs_stack;
            rev_prefix := ev :: !rev_prefix;
            `Descend
          end
        end)
      ~on_leave:(fun _ ->
        decr depth;
        ctx_stack := List.tl !ctx_stack;
        obs_stack := List.tl !obs_stack;
        rev_prefix := List.tl !rev_prefix)
      ~on_schema:(fun () ->
        if !stop then false
        else begin
          let job =
            {
              ij_prefix = List.rev !rev_prefix;
              ij_ctx = List.hd !ctx_stack;
              ij_obs = List.hd !obs_stack;
              ij_start = !pos;
              ij_subtree = false;
            }
          in
          if push job then begin
            incr pos;
            if covered_budget () then begin
              stop := true;
              false
            end
            else true
          end
          else begin
            stop := true;
            false
          end
        end)
      ()
  in
  let work ~worker:_ _index job =
    let c = new_tally ~start:job.ij_start in
    (match check_budget ~limits ~t0 c with
     | Some msg -> c.abort_msg <- Some msg
     | None ->
       if job.ij_subtree then
         run_inc_job ~limits ~t0 u spec c ~prefix:job.ij_prefix ~ctx:job.ij_ctx
           ~obs_mask:job.ij_obs
       else begin
         (* A lone schema above the partition cut.  Its prefix gets the
            same zero-step reachability check the sequential engine
            applies on the way down, so the set of schemas actually
            solved — and with it the solver-step total — is the same in
            both incremental engines. *)
         c.position <- c.position + 1;
         let t1 = Unix.gettimeofday () in
         let es = Encode.start u spec in
         let lia = Smt.Lia.create () in
         Smt.Lia.assert_atoms lia (Encode.base_atoms es);
         List.iter
           (fun ev ->
             let delta = Encode.push_event es ev in
             Smt.Lia.push lia;
             Smt.Lia.assert_atoms lia delta)
           job.ij_prefix;
         let t2 = Unix.gettimeofday () in
         c.encode_t <- t2 -. t1;
         match Smt.Lia.check_quick ~hits:c.hits lia with
         | Smt.Lia.Unsat ->
           c.skipped <- 1;
           c.slots <- Encode.Sim.leaf_slots (Encode.Sim.of_session es);
           c.solve_t <- Unix.gettimeofday () -. t2
         | Smt.Lia.Sat _ | Smt.Lia.Unknown -> (
           c.checked <- 1;
           let encoded = Encode.finalize es in
           let t3 = Unix.gettimeofday () in
           c.encode_t <- c.encode_t +. (t3 -. t2);
           c.slots <- encoded.n_slots;
           (match solve_schema ~steps:c.steps ~limits encoded with
            | `Unsat -> ()
            | `Sat model ->
              c.found <- Some (Witness.of_model u spec job.ij_prefix encoded model)
            | `Unknown -> c.abort_msg <- Some unknown_message);
           c.solve_t <- Unix.gettimeofday () -. t3)
       end);
    {
      ir_schemas = c.position - c.start;
      ir_checked = c.checked;
      ir_skipped = c.skipped;
      ir_pruned = c.pruned;
      ir_hits = !(c.hits);
      ir_slots = c.slots;
      ir_steps = !(c.steps);
      ir_encode_t = c.encode_t;
      ir_solve_t = c.solve_t;
      ir_verdict =
        (match (c.found, c.abort_msg) with
         | Some w, _ -> `Sat w
         | None, Some msg ->
           if msg = unknown_message then `Unknown else `Budget msg
         | None, None -> `Unsat_all);
    }
  in
  let is_stop r = r.ir_verdict <> `Unsat_all in
  let completion = Pool.run ~jobs:limits.jobs ~produce ~work ~is_stop () in
  let cut = match completion.Pool.first_stop with Some i -> i | None -> max_int in
  let counted = List.filter (fun (i, _, _) -> i <= cut) completion.Pool.results in
  let sum f = List.fold_left (fun acc (_, _, r) -> acc + f r) 0 counted in
  let sumf f = List.fold_left (fun acc (_, _, r) -> acc +. f r) 0.0 counted in
  let workers =
    List.init limits.jobs (fun wid ->
        let mine =
          List.filter_map
            (fun (_, w, r) -> if w = wid then Some r else None)
            completion.Pool.results
        in
        {
          worker_id = wid;
          schemas = List.fold_left (fun acc r -> acc + r.ir_schemas) 0 mine;
          slots = List.fold_left (fun acc r -> acc + r.ir_slots) 0 mine;
          solver_steps = List.fold_left (fun acc r -> acc + r.ir_steps) 0 mine;
          busy_time = completion.Pool.busy.(wid);
        })
  in
  let outcome =
    match completion.Pool.first_stop with
    | Some i -> (
      match List.find (fun (j, _, _) -> j = i) counted with
      | _, _, { ir_verdict = `Sat w; _ } -> Violated w
      | _, _, { ir_verdict = `Unknown; _ } -> Aborted unknown_message
      | _, _, { ir_verdict = `Budget msg; _ } -> Aborted msg
      | _, _, { ir_verdict = `Unsat_all; _ } -> assert false)
    | None ->
      if completion.Pool.completed then Holds
      else Aborted "enumeration stopped unexpectedly"
  in
  let stats =
    {
      schemas_checked = sum (fun r -> r.ir_schemas);
      schemas_skipped = sum (fun r -> r.ir_skipped);
      subtrees_pruned = sum (fun r -> r.ir_pruned);
      prefix_hits = sum (fun r -> r.ir_hits);
      slots_total = sum (fun r -> r.ir_slots);
      solver_steps = sum (fun r -> r.ir_steps);
      encode_time = sumf (fun r -> r.ir_encode_t);
      solve_time = sumf (fun r -> r.ir_solve_t);
      time = Unix.gettimeofday () -. t0;
      jobs = limits.jobs;
      workers;
    }
  in
  { spec; outcome; stats }

let verify_with_universe ?(limits = default_limits) u (spec : Ta.Spec.t) =
  let ta = Universe.automaton u in
  precheck ta spec;
  match (limits.incremental, limits.jobs <= 1) with
  | false, true -> verify_flat_sequential ~limits u spec
  | false, false -> verify_flat_parallel ~limits u spec
  | true, true -> verify_incremental_sequential ~limits u spec
  | true, false -> verify_incremental_parallel ~limits u spec

let verify ?limits ?(slice = false) ta spec =
  let ta =
    if slice then fst (Analysis.slice ~keep:(Analysis.spec_locations spec) ta) else ta
  in
  verify_with_universe ?limits (Universe.build ta) spec

let pp_result fmt r =
  let avg =
    if r.stats.schemas_checked = 0 then 0.0
    else float_of_int r.stats.slots_total /. float_of_int r.stats.schemas_checked
  in
  let pp_inc fmt () =
    if r.stats.subtrees_pruned > 0 || r.stats.schemas_skipped > 0 then
      Format.fprintf fmt ", %d skipped by %d pruned subtrees" r.stats.schemas_skipped
        r.stats.subtrees_pruned
  in
  match r.outcome with
  | Holds ->
    Format.fprintf fmt "%-12s holds   (%d schemas, avg length %.0f%a, %.2f s)"
      r.spec.name r.stats.schemas_checked avg pp_inc () r.stats.time
  | Violated w ->
    Format.fprintf fmt "%-12s VIOLATED (%d schemas%a, %.2f s)@,%a" r.spec.name
      r.stats.schemas_checked pp_inc () r.stats.time Witness.pp w
  | Aborted reason ->
    Format.fprintf fmt "%-12s aborted: %s (%d schemas%a, %.2f s)" r.spec.name reason
      r.stats.schemas_checked pp_inc () r.stats.time

let pp_worker_stats fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun w ->
      Format.fprintf fmt "worker %d: %d schemas, %d slots, %d solver steps, %.2f s busy@,"
        w.worker_id w.schemas w.slots w.solver_steps w.busy_time)
    r.stats.workers;
  Format.fprintf fmt "@]"
