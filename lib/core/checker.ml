module A = Ta.Automaton

type limits = {
  max_schemas : int;
  time_budget : float option;
  lia_max_steps : int;
  jobs : int;
}

let default_limits =
  { max_schemas = 100_000; time_budget = None; lia_max_steps = 200_000; jobs = 1 }

type outcome = Holds | Violated of Witness.t | Aborted of string

type worker_stat = {
  worker_id : int;
  schemas : int;
  slots : int;
  solver_steps : int;
  busy_time : float;
}

type stats = {
  schemas_checked : int;
  slots_total : int;
  solver_steps : int;
  time : float;
  jobs : int;
  workers : worker_stat list;
}

type result = { spec : Ta.Spec.t; outcome : outcome; stats : stats }

(* The structural preconditions, delegated to the static analyzer: DAG
   shape and name sanity (TA001-TA004), refutable safety specs (TA012),
   liveness shape and absorbing targets (TA013/TA014), spec name
   resolution (TA011).  Kept as a raising wrapper for backwards
   compatibility with callers that expect Invalid_argument. *)
let precheck ta (spec : Ta.Spec.t) =
  match Analysis.errors (Analysis.check_structure ta @ Analysis.check_spec ta spec) with
  | [] -> ()
  | d :: _ -> invalid_arg (Format.asprintf "Checker: %s: %a" ta.A.name Analysis.pp d)

(* Decide [atoms /\ (one cube per branch entry)] by depth-first case
   analysis over the factored justice branches; every path is a plain
   LIA conjunction. *)
let solve_schema ?steps ~limits (encoded : Encode.encoded) =
  let rec go atoms branches =
    match branches with
    | [] -> (
      match Smt.Lia.solve ?steps ~max_steps:limits.lia_max_steps atoms with
      | Smt.Lia.Sat m -> `Sat m
      | Smt.Lia.Unsat -> `Unsat
      | Smt.Lia.Unknown -> `Unknown)
    | alternatives :: rest ->
      let rec try_alts = function
        | [] -> `Unsat
        | cube :: others -> (
          match go (cube @ atoms) rest with
          | `Sat m -> `Sat m
          | `Unknown -> `Unknown
          | `Unsat -> try_alts others)
      in
      try_alts alternatives
  in
  (* The conjunctive part is usually already unsatisfiable; only then
     expand the justice case-split product. *)
  match go encoded.atoms [] with
  | `Unsat -> `Unsat
  | `Unknown -> `Unknown
  | `Sat m -> if encoded.branches = [] then `Sat m else go encoded.atoms encoded.branches

let budget_messages ~max_schemas_hit ~schemas ~budget =
  if max_schemas_hit then Printf.sprintf "schema budget exceeded (> %d schemas)" schemas
  else
    Printf.sprintf "time budget exceeded (> %.0f s, %d schemas checked)" budget schemas

let unknown_message = "solver returned unknown (branch-and-bound budget)"

(* ------------------------------------------------------------------- *)
(* Sequential engine: the reference implementation the parallel engine
   is pinned to (see test/test_parallel.ml). *)

let verify_sequential ~limits u (spec : Ta.Spec.t) =
  let t0 = Unix.gettimeofday () in
  let schemas = ref 0 in
  let slots = ref 0 in
  let steps = ref 0 in
  let busy = ref 0.0 in
  let found = ref None in
  let aborted = ref None in
  let complete =
    Schema.enumerate u spec ~on_schema:(fun schema ->
        let elapsed = Unix.gettimeofday () -. t0 in
        if !schemas >= limits.max_schemas then begin
          aborted := Some (budget_messages ~max_schemas_hit:true ~schemas:!schemas ~budget:0.0);
          false
        end
        else
          match limits.time_budget with
          | Some budget when elapsed > budget ->
            aborted :=
              Some (budget_messages ~max_schemas_hit:false ~schemas:!schemas ~budget);
            false
          | _ -> (
            incr schemas;
            let t1 = Unix.gettimeofday () in
            let encoded = Encode.encode u spec schema in
            slots := !slots + encoded.n_slots;
            let verdict = solve_schema ~steps ~limits encoded in
            busy := !busy +. (Unix.gettimeofday () -. t1);
            match verdict with
            | `Unsat -> true
            | `Sat model ->
              found := Some (Witness.of_model u spec schema encoded model);
              false
            | `Unknown ->
              aborted := Some unknown_message;
              false))
  in
  let time = Unix.gettimeofday () -. t0 in
  let stats =
    {
      schemas_checked = !schemas;
      slots_total = !slots;
      solver_steps = !steps;
      time;
      jobs = 1;
      workers =
        [
          {
            worker_id = 0;
            schemas = !schemas;
            slots = !slots;
            solver_steps = !steps;
            busy_time = !busy;
          };
        ];
    }
  in
  let outcome =
    match (!found, !aborted, complete) with
    | Some w, _, _ -> Violated w
    | None, Some reason, _ -> Aborted reason
    | None, None, true -> Holds
    | None, None, false -> Aborted "enumeration stopped unexpectedly"
  in
  { spec; outcome; stats }

(* ------------------------------------------------------------------- *)
(* Parallel engine: the producer runs the enumeration (and the budget
   checks, so aborts stay deterministic) on the calling domain while
   [limits.jobs] worker domains encode and solve.  Each schema is an
   independent LIA query; the pool's first-stop-in-enumeration-order
   contract makes outcomes, witnesses and schema counts bit-identical to
   [verify_sequential] (time-budget aborts excepted: wall-clock is
   inherently racy, sequentially too). *)

type job_outcome = J_unsat | J_sat of Witness.t | J_unknown

type job_result = { n_slots : int; job_steps : int; verdict : job_outcome }

let verify_parallel ~limits u (spec : Ta.Spec.t) =
  let t0 = Unix.gettimeofday () in
  let emitted = ref 0 in
  let aborted = ref None in
  let produce ~push =
    Schema.enumerate u spec ~on_schema:(fun schema ->
        if !emitted >= limits.max_schemas then begin
          aborted :=
            Some (budget_messages ~max_schemas_hit:true ~schemas:!emitted ~budget:0.0);
          false
        end
        else
          match limits.time_budget with
          | Some budget when Unix.gettimeofday () -. t0 > budget ->
            aborted :=
              Some (budget_messages ~max_schemas_hit:false ~schemas:!emitted ~budget);
            false
          | _ ->
            if push schema then begin
              incr emitted;
              true
            end
            else false)
  in
  let work ~worker:_ _index schema =
    let steps = ref 0 in
    let encoded = Encode.encode u spec schema in
    let verdict =
      match solve_schema ~steps ~limits encoded with
      | `Unsat -> J_unsat
      | `Sat model -> J_sat (Witness.of_model u spec schema encoded model)
      | `Unknown -> J_unknown
    in
    { n_slots = encoded.n_slots; job_steps = !steps; verdict }
  in
  let is_stop r = match r.verdict with J_unsat -> false | J_sat _ | J_unknown -> true in
  let c = Pool.run ~jobs:limits.jobs ~produce ~work ~is_stop () in
  (* Restrict to the jobs a sequential run would have executed: indices
     up to (and including) the first stop. *)
  let cut = match c.Pool.first_stop with Some i -> i | None -> max_int in
  let counted = List.filter (fun (i, _, _) -> i <= cut) c.Pool.results in
  let schemas_checked = match c.Pool.first_stop with Some i -> i + 1 | None -> !emitted in
  let slots_total = List.fold_left (fun acc (_, _, r) -> acc + r.n_slots) 0 counted in
  let solver_steps = List.fold_left (fun acc (_, _, r) -> acc + r.job_steps) 0 counted in
  let workers =
    List.init limits.jobs (fun wid ->
        (* Utilisation is reported over everything a worker actually ran,
           including work an earlier stop later made irrelevant. *)
        let mine =
          List.filter_map
            (fun (_, w, r) -> if w = wid then Some r else None)
            c.Pool.results
        in
        {
          worker_id = wid;
          schemas = List.length mine;
          slots = List.fold_left (fun acc r -> acc + r.n_slots) 0 mine;
          solver_steps = List.fold_left (fun acc r -> acc + r.job_steps) 0 mine;
          busy_time = c.Pool.busy.(wid);
        })
  in
  let outcome =
    match c.Pool.first_stop with
    | Some i -> (
      match List.find (fun (j, _, _) -> j = i) counted with
      | _, _, { verdict = J_sat w; _ } -> Violated w
      | _, _, { verdict = J_unknown; _ } -> Aborted unknown_message
      | _, _, { verdict = J_unsat; _ } -> assert false)
    | None -> (
      match (!aborted, c.Pool.completed) with
      | Some reason, _ -> Aborted reason
      | None, true -> Holds
      | None, false -> Aborted "enumeration stopped unexpectedly")
  in
  let stats =
    {
      schemas_checked;
      slots_total;
      solver_steps;
      time = Unix.gettimeofday () -. t0;
      jobs = limits.jobs;
      workers;
    }
  in
  { spec; outcome; stats }

let verify_with_universe ?(limits = default_limits) u (spec : Ta.Spec.t) =
  let ta = Universe.automaton u in
  precheck ta spec;
  if limits.jobs <= 1 then verify_sequential ~limits u spec
  else verify_parallel ~limits u spec

let verify ?limits ?(slice = false) ta spec =
  let ta =
    if slice then fst (Analysis.slice ~keep:(Analysis.spec_locations spec) ta) else ta
  in
  verify_with_universe ?limits (Universe.build ta) spec

let pp_result fmt r =
  let avg =
    if r.stats.schemas_checked = 0 then 0.0
    else float_of_int r.stats.slots_total /. float_of_int r.stats.schemas_checked
  in
  match r.outcome with
  | Holds ->
    Format.fprintf fmt "%-12s holds   (%d schemas, avg length %.0f, %.2f s)" r.spec.name
      r.stats.schemas_checked avg r.stats.time
  | Violated w ->
    Format.fprintf fmt "%-12s VIOLATED (%d schemas, %.2f s)@,%a" r.spec.name
      r.stats.schemas_checked r.stats.time Witness.pp w
  | Aborted reason ->
    Format.fprintf fmt "%-12s aborted: %s (%d schemas, %.2f s)" r.spec.name reason
      r.stats.schemas_checked r.stats.time

let pp_worker_stats fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun w ->
      Format.fprintf fmt "worker %d: %d schemas, %d slots, %d solver steps, %.2f s busy@,"
        w.worker_id w.schemas w.slots w.solver_steps w.busy_time)
    r.stats.workers;
  Format.fprintf fmt "@]"
