module A = Ta.Automaton

type limits = {
  max_schemas : int;
  time_budget : float option;
  lia_max_steps : int;
  jobs : int;
  incremental : bool;
  static : bool;
}

let default_limits =
  {
    max_schemas = 100_000;
    time_budget = None;
    lia_max_steps = 200_000;
    jobs = 1;
    incremental = true;
    static = true;
  }

(* Budget preset shared by the fuzzing cross-validators (lib/fuzz and
   test/test_crossval): the random automata are tiny, so any run that
   needs more schemas than this is pathological and is skipped rather
   than solved to exhaustion. *)
let crossval_limits = { default_limits with max_schemas = 20_000 }

type outcome =
  | Holds
  | Violated of Witness.t
  | Aborted of string
  | Partial of { quarantined : (int * string) list; reason : string }

type worker_stat = {
  worker_id : int;
  schemas : int;
  slots : int;
  solver_steps : int;
  busy_time : float;
}

type stats = {
  schemas_checked : int;
  schemas_skipped : int;
  subtrees_pruned : int;
  core_prunes : int;
  static_prunes : int;
  prefix_hits : int;
  slots_total : int;
  solver_steps : int;
  encode_time : float;
  solve_time : float;
  time : float;
  jobs : int;
  workers : worker_stat list;
  cache : Smt.Portfolio.counters;
      (* discharge-cache effectiveness; all-zero without ?portfolio *)
}

type result = { spec : Ta.Spec.t; outcome : outcome; stats : stats }

(* The structural preconditions, delegated to the static analyzer: DAG
   shape and name sanity (TA001-TA004), refutable safety specs (TA012),
   liveness shape and absorbing targets (TA013/TA014), spec name
   resolution (TA011).  Kept as a raising wrapper for backwards
   compatibility with callers that expect Invalid_argument. *)
let precheck ta (spec : Ta.Spec.t) =
  match Analysis.errors (Analysis.check_structure ta @ Analysis.check_spec ta spec) with
  | [] -> ()
  | d :: _ -> invalid_arg (Format.asprintf "Checker: %s: %a" ta.A.name Analysis.pp d)

(* ------------------------------------------------------------------- *)
(* Run context: cooperative interrupts, deadlines, checkpoint journal.  *)

(* Process-wide interrupt request (SIGINT/SIGTERM handlers, tests).  All
   engines poll it at every budget check and — through the [stop]
   closure threaded into the solver — every {!Smt.Simplex.stop_interval}
   pivots, so a run winds down, flushes its checkpoint and returns a
   resumable [Aborted] within one solver quantum. *)
let interrupted = Atomic.make false
let request_interrupt () = Atomic.set interrupted true
let clear_interrupt () = Atomic.set interrupted false
let interrupt_requested () = Atomic.get interrupted

(* Everything an engine needs beyond [limits], bundled once per run.
   [r_now] is the budget clock (a fake clock in tests makes deadline
   aborts deterministic); statistics timings always use the real clock.
   [r_deadline] is in [r_now]'s timeline and already accounts for the
   wall-clock spent by previous slices of a resumed run. *)
(* Certified static refutations of the invariant engine, indexed for
   O(1) lookup during enumeration: [s_guard.(g)] refutes every schema
   unlocking guard [g], [s_root] refutes every schema of the spec.  Each
   refutation's certificate was validated at build time (see
   {!Analysis.Invariants}); [None] entries have no certified refutation
   and are discharged by the solver as usual. *)
type static_info = {
  s_root : Analysis.Invariants.refutation option;
  s_guard : Analysis.Invariants.refutation option array;
}

type run = {
  r_limits : limits;
  r_base : Journal.t;  (* loaded checkpoint (or fresh): totals of [0, frontier) *)
  r_resume_from : int;  (* = r_base.frontier; positions below are fast-forwarded *)
  r_tracker : Journal.Tracker.tracker;
  r_now : unit -> float;
  r_deadline : float option;
  r_failpoint : (int -> unit) option;  (* fault injection for crash tests *)
  r_certs : Certs.sink option;  (* [--emit-certs]: sequential engines only *)
  r_static : static_info option;  (* [--static]: certified zero-step prunes *)
  r_portfolio : Smt.Portfolio.t option;  (* [--memo]/[--cache]: leaf discharge cache *)
  r_origin : string;  (* "<automaton>/<spec>", recorded in new cache entries *)
}

(* Per-engine portfolio handle plumbing: [None] everywhere when the run
   carries no portfolio, so the default path is byte-for-byte the
   uncached engine. *)
let pf_handle run = Option.map (Smt.Portfolio.handle ~origin:run.r_origin) run.r_portfolio
let pf_counters = function
  | None -> Smt.Portfolio.zero_counters
  | Some h -> Smt.Portfolio.counters h
let pf_flush = function None -> () | Some h -> Smt.Portfolio.flush h

let cache_delta (c : Smt.Portfolio.counters) =
  {
    Journal.zero_delta with
    d_cache_hits = c.hits;
    d_cache_misses = c.misses;
    d_cache_cross = c.cross;
    d_wins_interval = c.w_interval;
    d_wins_cooper = c.w_cooper;
    d_wins_simplex = c.w_simplex;
  }

(* The certified refutation covering every schema whose event list
   includes [events] as a prefix, if any: the root refutation, or the
   first statically-false guard unlocked along the way. *)
let static_refutation run events =
  match run.r_static with
  | None -> None
  | Some si -> (
    match si.s_root with
    | Some r -> Some r
    | None ->
      List.find_map
        (function
          | Schema.Unlock g -> si.s_guard.(g)
          | Schema.Observe _ -> None)
        events)

(* Lookup for a single event pushed on an already-clean prefix. *)
let static_refutation_event run (ev : Schema.event) =
  match (run.r_static, ev) with
  | Some si, Schema.Unlock g -> si.s_guard.(g)
  | _ -> None

let make_stop run () =
  Atomic.get interrupted
  || (match run.r_deadline with Some d -> run.r_now () >= d | None -> false)

let check_deadline run =
  if Atomic.get interrupted then Some `Interrupted
  else
    match run.r_deadline with
    | Some d when run.r_now () >= d -> Some `Deadline
    | _ -> None

(* Decide [atoms /\ (one cube per branch entry)] by depth-first case
   analysis over the factored justice branches; every path is a plain
   LIA conjunction.  [stop] is the deadline/interrupt predicate: when it
   fires inside the solver the query answers [`Timeout] — typed apart
   from [`Unknown], which means the branch-and-bound budget ran dry on a
   hard query and gets one escalating retry (4x the budget); a timeout
   is never retried, the deadline has already passed. *)
let solve_schema ?steps ?portfolio ~limits ?stop (encoded : Encode.encoded) =
  (* Leaf conjunctions already refuted in an earlier attempt, keyed by
     the path of alternative indices through the branch product.  UNSAT
     is budget-independent, so the escalating retry can skip straight to
     the alternative whose budget actually ran dry instead of re-proving
     every refuted cube at 4x the cost. *)
  let refuted = Hashtbl.create 8 in
  let justice = encoded.Encode.branches <> [] in
  let leaf_solve ~max_steps atoms =
    match portfolio with
    | Some h -> Smt.Portfolio.solve ?steps ~max_steps ?stop ~justice h atoms
    | None -> Smt.Lia.solve ?steps ~max_steps ?stop atoms
  in
  let attempt ~max_steps =
    let rec go path atoms branches =
      match branches with
      | [] ->
        if Hashtbl.mem refuted path then `Unsat
        else (
          match leaf_solve ~max_steps atoms with
          | Smt.Lia.Sat m -> `Sat m
          | Smt.Lia.Unsat ->
            Hashtbl.replace refuted path ();
            `Unsat
          | Smt.Lia.Unknown -> `Unknown
          | Smt.Lia.Timeout -> `Timeout)
      | alternatives :: rest ->
        let rec try_alts i = function
          | [] -> `Unsat
          | cube :: others -> (
            match go (i :: path) (cube @ atoms) rest with
            | `Sat m -> `Sat m
            | (`Unknown | `Timeout) as r -> r
            | `Unsat -> try_alts (i + 1) others)
        in
        try_alts 0 alternatives
    in
    (* The conjunctive part is usually already unsatisfiable; only then
       expand the justice case-split product.  Path [-1] keeps the
       pre-pass apart from the branch leaves (whose paths are built from
       nonnegative alternative indices). *)
    match go [ -1 ] encoded.atoms [] with
    | (`Unsat | `Unknown | `Timeout) as r -> r
    | `Sat m ->
      if encoded.branches = [] then `Sat m else go [] encoded.atoms encoded.branches
  in
  match attempt ~max_steps:limits.lia_max_steps with
  | `Unknown -> attempt ~max_steps:(4 * limits.lia_max_steps)
  | r -> r

let budget_messages ~max_schemas_hit ~schemas ~budget =
  if max_schemas_hit then Printf.sprintf "schema budget exceeded (> %d schemas)" schemas
  else
    Printf.sprintf "time budget exceeded (> %.0f s, %d schemas checked)" budget schemas

let unknown_message = "solver returned unknown (branch-and-bound budget)"

let timeout_message = "time budget exceeded inside schema discharge (solver deadline)"

let interrupt_message = "interrupted; partial run saved, rerun with --resume to continue"

let deadline_message run ~position =
  match check_deadline run with
  | Some `Interrupted -> Some interrupt_message
  | Some `Deadline ->
    Some
      (budget_messages ~max_schemas_hit:false ~schemas:position
         ~budget:(Option.value run.r_limits.time_budget ~default:0.0))
  | None -> None

(* The diagnostic for the should-not-happen case where the enumeration
   callback chain stops without a recorded cause. *)
let stopped_unexpectedly ~position ~worker =
  Printf.sprintf "enumeration stopped unexpectedly (last completed preorder position %d%s)"
    position
    (match worker with None -> "" | Some w -> Printf.sprintf ", worker %d" w)

(* Totals of the checkpointed prefix [0, frontier), added to the stats
   of the current slice so a resumed run reports the same cumulative
   schema/step counts as an uninterrupted one. *)
let stats_plus_base (base : Journal.t) s =
  {
    s with
    schemas_checked = s.schemas_checked + base.Journal.checked + base.Journal.skipped;
    schemas_skipped = s.schemas_skipped + base.Journal.skipped;
    subtrees_pruned = s.subtrees_pruned + base.Journal.pruned;
    core_prunes = s.core_prunes + base.Journal.core_pruned;
    static_prunes = s.static_prunes + base.Journal.static;
    prefix_hits = s.prefix_hits + base.Journal.hits;
    slots_total = s.slots_total + base.Journal.slots;
    solver_steps = s.solver_steps + base.Journal.steps;
    encode_time = s.encode_time +. Journal.s_of_us base.Journal.encode_us;
    solve_time = s.solve_time +. Journal.s_of_us base.Journal.solve_us;
    time = s.time +. Journal.s_of_us base.Journal.elapsed_us;
    cache =
      Smt.Portfolio.add_counters s.cache
        {
          Smt.Portfolio.hits = base.Journal.cache_hits;
          misses = base.Journal.cache_misses;
          cross = base.Journal.cache_cross;
          w_interval = base.Journal.wins_interval;
          w_cooper = base.Journal.wins_cooper;
          w_simplex = base.Journal.wins_simplex;
        };
  }

(* Fail-soft decision rule.  A run that quarantined positions can still
   decide normally when the deciding schema precedes every hole (the
   transcript up to the decision is complete); otherwise the verdict is
   [Partial]: the holes may hide the true first deciding schema. *)
let partialize ~quarantined ~decided_at outcome =
  match quarantined with
  | [] -> outcome
  | (q0, _) :: _ -> (
    match decided_at with
    | Some p when p < q0 -> outcome
    | _ ->
      let reason =
        match outcome with
        | Holds -> "every non-quarantined schema is unsatisfiable"
        | Violated _ ->
          Printf.sprintf
            "violation witness found at position %d, after quarantined position %d (an \
             earlier violation is possible)"
            (Option.value decided_at ~default:(-1))
            q0
        | Aborted reason -> reason
        | Partial { reason; _ } -> reason
      in
      Partial { quarantined; reason })

(* ------------------------------------------------------------------- *)
(* Flat sequential engine: one self-contained query per schema.  The
   reference implementation everything else is pinned to — the parallel
   engine by test/test_parallel.ml, the incremental engines by
   test/test_incremental.ml. *)

let verify_flat_sequential ~run u (spec : Ta.Spec.t) =
  let limits = run.r_limits in
  let t0 = Unix.gettimeofday () in
  let stop = make_stop run in
  let ph = pf_handle run in
  let pos = ref 0 in  (* global preorder position; < r_resume_from is fast-forwarded *)
  let schemas = ref 0 in
  let slots = ref 0 in
  let steps = ref 0 in
  let statics = ref 0 in
  let encode_t = ref 0.0 in
  let solve_t = ref 0.0 in
  let found = ref None in
  let decided_at = ref None in
  let aborted = ref None in
  (* Zero-step static discharge: the invariant engine's certificate
     refutes the schema's query outright, so neither the encoder nor the
     solver runs.  Only the slot simulation does, so the reported slot
     totals stay those of the full encoding. *)
  let discharge_static schema refutation =
    let sim = List.fold_left Encode.Sim.push_event (Encode.Sim.start u spec) schema in
    let n_slots = Encode.Sim.leaf_slots sim in
    incr schemas;
    incr statics;
    slots := !slots + n_slots;
    (match run.r_certs with
    | Some sink ->
      Certs.emit_static sink ~position:!pos ~span:1
        refutation.Analysis.Invariants.atoms refutation.Analysis.Invariants.cert
    | None -> ());
    Journal.Tracker.note run.r_tracker ~start:!pos ~span:1
      { Journal.zero_delta with d_checked = 1; d_slots = n_slots; d_static = 1 };
    incr pos;
    true
  in
  (* Discharge one schema; raises propagate to the retry/quarantine
     wrapper below.  [r_failpoint] injects faults for the crash tests. *)
  let discharge schema =
    (match run.r_failpoint with Some f -> f !pos | None -> ());
    let steps0 = !steps in
    let pc0 = pf_counters ph in
    let t1 = Unix.gettimeofday () in
    let encoded = Encode.encode u spec schema in
    let t2 = Unix.gettimeofday () in
    let verdict = solve_schema ~steps ?portfolio:ph ~limits ~stop encoded in
    let t3 = Unix.gettimeofday () in
    let dcache = Smt.Portfolio.sub_counters (pf_counters ph) pc0 in
    (encoded, verdict, t2 -. t1, t3 -. t2, !steps - steps0, dcache)
  in
  let handle schema (encoded, verdict, et, st, dsteps, dcache) =
    incr schemas;
    slots := !slots + encoded.Encode.n_slots;
    encode_t := !encode_t +. et;
    solve_t := !solve_t +. st;
    match verdict with
    | `Unsat ->
      (match run.r_certs with
      | Some sink -> Certs.emit_schema sink ~position:!pos encoded
      | None -> ());
      Journal.Tracker.note run.r_tracker ~start:!pos ~span:1
        (Journal.add_delta (cache_delta dcache)
           {
             Journal.zero_delta with
             d_checked = 1;
             d_slots = encoded.Encode.n_slots;
             d_steps = dsteps;
             d_encode_us = Journal.us_of_s et;
             d_solve_us = Journal.us_of_s st;
           });
      incr pos;
      true
    | `Sat model ->
      found := Some (Witness.of_model u spec schema encoded model);
      decided_at := Some !pos;
      incr pos;
      false
    | `Unknown ->
      aborted := Some unknown_message;
      decided_at := Some !pos;
      incr pos;
      false
    | `Timeout ->
      aborted := Some timeout_message;
      decided_at := Some !pos;
      incr pos;
      false
  in
  let complete =
    Schema.enumerate u spec ~on_schema:(fun schema ->
        if !pos < run.r_resume_from then begin
          (* Discharged UNSAT by a previous slice: fast-forward. *)
          incr pos;
          true
        end
        else if !pos >= limits.max_schemas then begin
          aborted := Some (budget_messages ~max_schemas_hit:true ~schemas:!pos ~budget:0.0);
          false
        end
        else
          match deadline_message run ~position:!pos with
          | Some msg ->
            aborted := Some msg;
            false
          | None -> (
            match static_refutation run schema with
            | Some refutation -> discharge_static schema refutation
            | None -> (
            match discharge schema with
            | r -> handle schema r
            | exception e -> (
              (* Fail soft: one retry, then quarantine the position and
                 keep verifying the rest of the enumeration. *)
              match discharge schema with
              | r -> handle schema r
              | exception e2 ->
                let m1 = Printexc.to_string e and m2 = Printexc.to_string e2 in
                let msg =
                  if String.equal m1 m2 then m2
                  else Printf.sprintf "%s (first attempt: %s)" m2 m1
                in
                Journal.Tracker.quarantine run.r_tracker !pos msg;
                incr pos;
                true))))
  in
  let time = Unix.gettimeofday () -. t0 in
  pf_flush ph;
  let stats =
    stats_plus_base run.r_base
      {
        schemas_checked = max 0 (!pos - run.r_resume_from);
        schemas_skipped = 0;
        subtrees_pruned = 0;
        core_prunes = 0;
        static_prunes = !statics;
        prefix_hits = 0;
        slots_total = !slots;
        solver_steps = !steps;
        encode_time = !encode_t;
        solve_time = !solve_t;
        time;
        jobs = 1;
        workers =
          [
            {
              worker_id = 0;
              schemas = !schemas;
              slots = !slots;
              solver_steps = !steps;
              busy_time = !encode_t +. !solve_t;
            };
          ];
        cache = pf_counters ph;
      }
  in
  let outcome =
    match (!found, !aborted, complete) with
    | Some w, _, _ -> Violated w
    | None, Some reason, _ -> Aborted reason
    | None, None, true -> Holds
    | None, None, false ->
      Aborted (stopped_unexpectedly ~position:(!pos - 1) ~worker:None)
  in
  let quarantined = (Journal.Tracker.snapshot run.r_tracker).Journal.quarantined in
  { spec; outcome = partialize ~quarantined ~decided_at:!decided_at outcome; stats }

(* ------------------------------------------------------------------- *)
(* Flat parallel engine: the producer runs the enumeration (and the
   budget checks, so aborts stay deterministic) on the calling domain
   while [limits.jobs] worker domains encode and solve.  Each schema is
   an independent LIA query; the pool's first-stop-in-enumeration-order
   contract makes outcomes, witnesses and schema counts bit-identical to
   [verify_flat_sequential] (time-budget aborts excepted: wall-clock is
   inherently racy, sequentially too). *)

type job_outcome = J_unsat | J_sat of Witness.t | J_unknown | J_timeout

type job_result = {
  n_slots : int;
  job_steps : int;
  j_encode_t : float;
  j_solve_t : float;
  j_static : bool;  (* discharged by the invariant engine, zero steps *)
  j_cache : Smt.Portfolio.counters;  (* this job's cache/portfolio activity *)
  verdict : job_outcome;
}

let verify_flat_parallel ~run u (spec : Ta.Spec.t) =
  let limits = run.r_limits in
  let t0 = Unix.gettimeofday () in
  let stop = make_stop run in
  (* One portfolio handle per worker domain: local read memo + buffered
     writes, so the shared cache's shard mutexes are off the hot path. *)
  let phs = Array.init limits.jobs (fun _ -> pf_handle run) in
  let resume_from = run.r_resume_from in
  (* Pool job index [i] is preorder position [resume_from + i]: the
     producer fast-forwards the checkpointed prefix without pushing. *)
  let emitted = ref 0 in
  let aborted = ref None in
  let produce ~push =
    Schema.enumerate u spec ~on_schema:(fun schema ->
        if !emitted < resume_from then begin
          incr emitted;
          true
        end
        else if !emitted >= limits.max_schemas then begin
          aborted :=
            Some (budget_messages ~max_schemas_hit:true ~schemas:!emitted ~budget:0.0);
          false
        end
        else
          match deadline_message run ~position:!emitted with
          | Some msg ->
            aborted := Some msg;
            false
          | None ->
            if push schema then begin
              incr emitted;
              true
            end
            else false)
  in
  let work ~worker index schema =
    (match run.r_failpoint with Some f -> f (resume_from + index) | None -> ());
    match static_refutation run schema with
    | Some _ ->
      (* Statically refuted: the verdict is a certified UNSAT, so only
         the slot simulation runs (same accounting as the sequential
         flat engine). *)
      let t1 = Unix.gettimeofday () in
      let sim =
        List.fold_left Encode.Sim.push_event (Encode.Sim.start u spec) schema
      in
      {
        n_slots = Encode.Sim.leaf_slots sim;
        job_steps = 0;
        j_encode_t = Unix.gettimeofday () -. t1;
        j_solve_t = 0.0;
        j_static = true;
        j_cache = Smt.Portfolio.zero_counters;
        verdict = J_unsat;
      }
    | None ->
      let ph = phs.(worker) in
      let pc0 = pf_counters ph in
      let steps = ref 0 in
      let t1 = Unix.gettimeofday () in
      let encoded = Encode.encode u spec schema in
      let t2 = Unix.gettimeofday () in
      let verdict =
        match solve_schema ~steps ?portfolio:ph ~limits ~stop encoded with
        | `Unsat -> J_unsat
        | `Sat model -> J_sat (Witness.of_model u spec schema encoded model)
        | `Unknown -> J_unknown
        | `Timeout -> J_timeout
      in
      {
        n_slots = encoded.n_slots;
        job_steps = !steps;
        j_encode_t = t2 -. t1;
        j_solve_t = Unix.gettimeofday () -. t2;
        j_static = false;
        j_cache = Smt.Portfolio.sub_counters (pf_counters ph) pc0;
        verdict;
      }
  in
  let is_stop r =
    match r.verdict with J_unsat -> false | J_sat _ | J_unknown | J_timeout -> true
  in
  (* Checkpoint hook: every UNSAT discharge advances the frontier (the
     tracker folds out-of-order spans once contiguous). *)
  let on_result i r =
    if r.verdict = J_unsat then
      Journal.Tracker.note run.r_tracker ~start:(resume_from + i) ~span:1
        (Journal.add_delta (cache_delta r.j_cache)
           {
             Journal.zero_delta with
             d_checked = 1;
             d_static = (if r.j_static then 1 else 0);
             d_slots = r.n_slots;
             d_steps = r.job_steps;
             d_encode_us = Journal.us_of_s r.j_encode_t;
             d_solve_us = Journal.us_of_s r.j_solve_t;
           })
  in
  let c = Pool.run ~jobs:limits.jobs ~on_result ~produce ~work ~is_stop () in
  Array.iter pf_flush phs;
  (* Restrict to the jobs a sequential run would have executed: indices
     up to (and including) the first stop. *)
  let cut = match c.Pool.first_stop with Some i -> i | None -> max_int in
  let counted = List.filter (fun (i, _, _) -> i <= cut) c.Pool.results in
  let schemas_checked =
    match c.Pool.first_stop with
    | Some i -> i + 1
    | None -> max 0 (!emitted - resume_from)
  in
  let slots_total = List.fold_left (fun acc (_, _, r) -> acc + r.n_slots) 0 counted in
  let solver_steps = List.fold_left (fun acc (_, _, r) -> acc + r.job_steps) 0 counted in
  let static_prunes =
    List.fold_left (fun acc (_, _, r) -> acc + if r.j_static then 1 else 0) 0 counted
  in
  let encode_time = List.fold_left (fun acc (_, _, r) -> acc +. r.j_encode_t) 0.0 counted in
  let solve_time = List.fold_left (fun acc (_, _, r) -> acc +. r.j_solve_t) 0.0 counted in
  let workers =
    List.init limits.jobs (fun wid ->
        (* Utilisation is reported over everything a worker actually ran,
           including work an earlier stop later made irrelevant. *)
        let mine =
          List.filter_map
            (fun (_, w, r) -> if w = wid then Some r else None)
            c.Pool.results
        in
        {
          worker_id = wid;
          schemas = List.length mine;
          slots = List.fold_left (fun acc r -> acc + r.n_slots) 0 mine;
          solver_steps = List.fold_left (fun acc r -> acc + r.job_steps) 0 mine;
          busy_time = c.Pool.busy.(wid);
        })
  in
  (* Positions the pool quarantined (the job raised twice): record them
     as permanent frontier holes so a resumed run re-attempts them. *)
  List.iter
    (fun (i, msg) -> Journal.Tracker.quarantine run.r_tracker (resume_from + i) msg)
    c.Pool.quarantined;
  let quarantined = (Journal.Tracker.snapshot run.r_tracker).Journal.quarantined in
  let last_completed () =
    List.fold_left
      (fun acc (i, w, _) ->
        match acc with Some (j, _) when j >= i -> acc | _ -> Some (i, w))
      None c.Pool.results
  in
  let decided_at = ref None in
  let outcome =
    match c.Pool.first_stop with
    | Some i -> (
      decided_at := Some (resume_from + i);
      match List.find (fun (j, _, _) -> j = i) counted with
      | _, _, { verdict = J_sat w; _ } -> Violated w
      | _, _, { verdict = J_unknown; _ } -> Aborted unknown_message
      | _, _, { verdict = J_timeout; _ } -> Aborted timeout_message
      | _, _, { verdict = J_unsat; _ } -> assert false)
    | None -> (
      match (!aborted, c.Pool.completed) with
      | Some reason, _ -> Aborted reason
      | None, true -> Holds
      | None, false ->
        let position, worker =
          match last_completed () with
          | Some (i, w) -> (resume_from + i, Some w)
          | None -> (resume_from - 1, None)
        in
        Aborted (stopped_unexpectedly ~position ~worker))
  in
  let stats =
    stats_plus_base run.r_base
      {
        schemas_checked;
        schemas_skipped = 0;
        subtrees_pruned = 0;
        core_prunes = 0;
        static_prunes;
        prefix_hits = 0;
        slots_total;
        solver_steps;
        encode_time;
        solve_time;
        time = Unix.gettimeofday () -. t0;
        jobs = limits.jobs;
        workers;
        cache =
          List.fold_left
            (fun acc (_, _, r) -> Smt.Portfolio.add_counters acc r.j_cache)
            Smt.Portfolio.zero_counters counted;
      }
  in
  { spec; outcome = partialize ~quarantined ~decided_at:!decided_at outcome; stats }

(* ------------------------------------------------------------------- *)
(* Incremental engine: walk the enumeration tree once, sharing the
   encoding and the solver state of every common prefix through
   {!Encode.session} and {!Smt.Lia.session}.  At each edge the event's
   atom delta is pushed and the prefix's reachability is (re)checked by
   {!Smt.Lia.check_quick} — interval propagation and the model cache
   only, never the simplex, so the check costs zero counted solver
   steps; an unsatisfiable prefix prunes the whole subtree, which is
   sound because [Encode.finalize] only ever appends to the prefix's
   atoms (see DESIGN.md).  Schemas that survive to their emission point
   are
   discharged with the same flat [solve_schema] on the same finalized
   query as the flat engine, so verdicts, witnesses and the deciding
   schema's enumeration index are bit-identical; pruned subtrees are
   walked in a counting-only mode so budgets trip at the same position
   and the skipped schemas' slot totals still add up. *)

(* Mutable per-run (sequential) or per-job (parallel) tally.  [position]
   is the global enumeration index — checked and skipped schemas both
   advance it, which is what keeps [max_schemas] aborts aligned with the
   flat engines. *)
type inc_tally = {
  mutable position : int;
  start : int;
  resume_from : int;
      (* positions below this were discharged by a previous slice: fast-
         forwarded without solving, with no statistics accrual (the base
         journal already carries their totals) *)
  mutable checked : int;
  mutable skipped : int;
  mutable pruned : int;
  mutable core_pruned : int;
      (* subset of [pruned]: sibling subtrees refuted by an unsat core
         confined to shallower frames, skipped without any reach-check *)
  mutable static : int;
      (* subset of [pruned]: subtrees refuted by the invariant engine's
         certificates, skipped without touching the sessions at all *)
  mutable slots : int;
  steps : int ref;
  hits : int ref;
  mutable encode_t : float;
  mutable solve_t : float;
  mutable pending : Journal.delta;
      (* statistics accrued since the last consumed position (prefix
         reach-checks, prunes); attached to the next position's journal
         note so per-position attribution is exact across slices *)
  mutable found : Witness.t option;
  mutable decided_at : int option;
  mutable abort_msg : string option;
  portfolio : Smt.Portfolio.handle option;
      (* leaf discharge cache handle; [None] reproduces the uncached
         engine exactly *)
}

let new_tally ?portfolio ~start ~resume_from () =
  {
    position = start;
    start;
    resume_from;
    checked = 0;
    skipped = 0;
    pruned = 0;
    core_pruned = 0;
    static = 0;
    slots = 0;
    steps = ref 0;
    hits = ref 0;
    encode_t = 0.0;
    solve_t = 0.0;
    pending = Journal.zero_delta;
    found = None;
    decided_at = None;
    abort_msg = None;
    portfolio;
  }

(* Whether the current position's statistics belong to this slice. *)
let accruing c = c.position >= c.resume_from

(* Fold [delta] (plus anything pending) into the journal as the note
   for the position just consumed. *)
let note_position ~run c delta =
  let d = Journal.add_delta c.pending delta in
  c.pending <- Journal.zero_delta;
  Journal.Tracker.note run.r_tracker ~start:(c.position - 1) ~span:1 d

let check_budget ~run c =
  if c.position >= run.r_limits.max_schemas then
    Some (budget_messages ~max_schemas_hit:true ~schemas:c.position ~budget:0.0)
  else deadline_message run ~position:c.position

(* Account a pruned subtree without solving: advance the enumeration
   position, apply the budget checks at every skipped schema (so aborts
   land exactly where the flat engine's would), and accumulate the slots
   each skipped schema would have had, via the slot simulation. *)
let count_subtree ~run u spec sim0 c ~ctx ~obs_mask =
  let sims = ref [ sim0 ] in
  ignore
    (Schema.walk u spec ~ctx ~obs_mask
       ~on_enter:(fun ev ->
         sims := Encode.Sim.push_event (List.hd !sims) ev :: !sims;
         `Descend)
       ~on_leave:(fun _ -> sims := List.tl !sims)
       ~on_schema:(fun () ->
         if not (accruing c) then begin
           c.position <- c.position + 1;
           true
         end
         else
           match check_budget ~run c with
           | Some msg ->
             c.abort_msg <- Some msg;
             false
           | None ->
             let slots = Encode.Sim.leaf_slots (List.hd !sims) in
             c.position <- c.position + 1;
             c.skipped <- c.skipped + 1;
             c.slots <- c.slots + slots;
             note_position ~run c
               { Journal.zero_delta with d_skipped = 1; d_slots = slots };
             true)
       ())

(* The incremental DFS over the subtree rooted at the sessions' current
   prefix (whose reachability the caller has already established). *)
let run_inc_subtree ~run u spec es lia c ~prefix_rev ~ctx0 ~obs0 =
  let limits = run.r_limits in
  let solver_stop = make_stop run in
  let rev_events = ref prefix_rev in
  let ctx_stack = ref [ ctx0 ] in
  let obs_stack = ref [ obs0 ] in
  let stop = ref false in
  (* [Some f]: the last reach-check's unsat core was confined to frames
     [<= f] of the assertion stack, so the conjunction was already
     infeasible at depth [f] and every node entered while the stack is
     at depth [>= f] roots a refuted subtree.  While set, siblings are
     skipped without even a reach-check (strictly stronger than the
     prefix-UNSAT cut, which must still push and check each sibling);
     cleared once the walk pops below frame [f]. *)
  let prune_until = ref None in
  ignore
    (Schema.walk u spec ~ctx:ctx0 ~obs_mask:obs0
       ~on_enter:(fun ev ->
         if !stop then `Prune
         else
           (* The prefix traversal between schemas also respects the
              deadline (and interrupt requests): a deep descent can no
              longer overshoot the time budget unchecked. *)
           match deadline_message run ~position:c.position with
           | Some msg when accruing c ->
             c.abort_msg <- Some msg;
             stop := true;
             `Prune
           | _ when !prune_until <> None -> begin
             (* Core-guided sibling prune: the active core already
                refutes every subtree at this depth, so the sessions are
                not touched at all — no push, no reach-check, no prefix
                hit.  Only the slot simulation runs, to account the
                skipped schemas exactly as the flat engine would. *)
             let ctx = List.hd !ctx_stack and obs = List.hd !obs_stack in
             let ctx', obs' =
               match ev with
               | Schema.Unlock g -> (ctx lor (1 lsl g), obs)
               | Schema.Observe i -> (ctx, obs lor (1 lsl i))
             in
             if accruing c then begin
               c.pruned <- c.pruned + 1;
               c.core_pruned <- c.core_pruned + 1;
               c.pending <-
                 Journal.add_delta c.pending
                   { Journal.zero_delta with d_pruned = 1; d_core_pruned = 1 }
             end;
             let sim = Encode.Sim.push_event (Encode.Sim.of_session es) ev in
             (* The parent prefix (which the core refutes) bounds every
                schema of the skipped subtree; certify it, not the
                never-asserted sibling extension. *)
             let atoms =
               if run.r_certs = None then [] else Encode.prefix_atoms es
             in
             let p0 = c.position in
             count_subtree ~run u spec sim c ~ctx:ctx' ~obs_mask:obs';
             (match run.r_certs with
             | Some sink when c.position > p0 ->
               Certs.emit_prefix sink ~position:p0 ~span:(c.position - p0) atoms
             | _ -> ());
             if c.abort_msg <> None then stop := true;
             `Prune
           end
           | _ when static_refutation_event run ev <> None -> begin
             (* Static prune: the invariant engine's certificate refutes
                every schema unlocking this guard, so the subtree is
                skipped without touching the sessions — no push, no
                reach-check.  The certificate was validated when built,
                and [--emit-certs] replays it through the standalone
                checker like any other prune. *)
             let refutation = Option.get (static_refutation_event run ev) in
             let ctx = List.hd !ctx_stack and obs = List.hd !obs_stack in
             let ctx', obs' =
               match ev with
               | Schema.Unlock g -> (ctx lor (1 lsl g), obs)
               | Schema.Observe i -> (ctx, obs lor (1 lsl i))
             in
             if accruing c then begin
               c.pruned <- c.pruned + 1;
               c.static <- c.static + 1;
               c.pending <-
                 Journal.add_delta c.pending
                   { Journal.zero_delta with d_pruned = 1; d_static = 1 }
             end;
             let sim = Encode.Sim.push_event (Encode.Sim.of_session es) ev in
             let p0 = c.position in
             count_subtree ~run u spec sim c ~ctx:ctx' ~obs_mask:obs';
             (match run.r_certs with
             | Some sink when c.position > p0 ->
               Certs.emit_static sink ~position:p0 ~span:(c.position - p0)
                 refutation.Analysis.Invariants.atoms
                 refutation.Analysis.Invariants.cert
             | _ -> ());
             if c.abort_msg <> None then stop := true;
             `Prune
           end
           | _ -> begin
             let ctx = List.hd !ctx_stack and obs = List.hd !obs_stack in
             let ctx', obs' =
               match ev with
               | Schema.Unlock g -> (ctx lor (1 lsl g), obs)
               | Schema.Observe i -> (ctx, obs lor (1 lsl i))
             in
             let t1 = Unix.gettimeofday () in
             let delta = Encode.push_event es ev in
             let t2 = Unix.gettimeofday () in
             Smt.Lia.push lia;
             Smt.Lia.assert_atoms lia delta;
             (* Reachability is decided by [check_quick] only: the
                interval store and the model cache, never the simplex.
                Pruning therefore costs zero counted solver steps, which
                is what makes the incremental engine's step total at most
                the flat engine's on every property (the leaves it does
                check are the identical flat queries). *)
             let h0 = !(c.hits) in
             let reach = Smt.Lia.check_quick ~hits:c.hits lia in
             let t3 = Unix.gettimeofday () in
             (* Statistics of replayed positions live in the base
                journal: accrue only past the resume point, with the
                increments attributed (via [pending]) to the position
                the uninterrupted run charges them to. *)
             if accruing c then begin
               c.encode_t <- c.encode_t +. (t2 -. t1);
               c.solve_t <- c.solve_t +. (t3 -. t2);
               c.pending <-
                 Journal.add_delta c.pending
                   {
                     Journal.zero_delta with
                     d_hits = !(c.hits) - h0;
                     d_encode_us = Journal.us_of_s (t2 -. t1);
                     d_solve_us = Journal.us_of_s (t3 -. t2);
                   }
             end
             else c.hits := h0;
             match reach with
             | Smt.Lia.Unsat ->
               if accruing c then begin
                 c.pruned <- c.pruned + 1;
                 c.pending <-
                   Journal.add_delta c.pending
                     { Journal.zero_delta with d_pruned = 1 }
               end;
               (* When the unsat core never touches the frame just
                  pushed, the conflict lives in a shallower prefix: arm
                  the sibling prune so the remaining subtrees at every
                  depth above the core's are skipped outright. *)
               (match Smt.Lia.unsat_depth lia with
               | Some f when f < Smt.Lia.depth lia -> prune_until := Some f
               | _ -> ());
               let sim = Encode.Sim.of_session es in
               let atoms =
                 if run.r_certs = None then [] else Encode.prefix_atoms es
               in
               Smt.Lia.pop lia;
               Encode.pop_event es;
               let p0 = c.position in
               count_subtree ~run u spec sim c ~ctx:ctx' ~obs_mask:obs';
               (match run.r_certs with
               | Some sink when c.position > p0 ->
                 Certs.emit_prefix sink ~position:p0 ~span:(c.position - p0) atoms
               | _ -> ());
               if c.abort_msg <> None then stop := true;
               `Prune
             | Smt.Lia.Sat _ | Smt.Lia.Unknown | Smt.Lia.Timeout ->
               (* Unknown: cannot prune; descend and let the leaves decide. *)
               ctx_stack := ctx' :: !ctx_stack;
               obs_stack := obs' :: !obs_stack;
               rev_events := ev :: !rev_events;
               `Descend
           end)
       ~on_leave:(fun _ ->
         ctx_stack := List.tl !ctx_stack;
         obs_stack := List.tl !obs_stack;
         rev_events := List.tl !rev_events;
         Smt.Lia.pop lia;
         Encode.pop_event es;
         (* Below the core's frame the refutation no longer applies:
            the node's siblings must be reach-checked normally again. *)
         match !prune_until with
         | Some f when Smt.Lia.depth lia < f -> prune_until := None
         | _ -> ())
       ~on_schema:(fun () ->
         if !stop then false
         else if not (accruing c) then begin
           (* Discharged UNSAT by a previous slice: fast-forward past
              the leaf without finalizing or solving. *)
           c.position <- c.position + 1;
           true
         end
         else
           match check_budget ~run c with
           | Some msg ->
             c.abort_msg <- Some msg;
             stop := true;
             false
           | None -> (
             let discharge () =
               (match run.r_failpoint with Some f -> f c.position | None -> ());
               let steps0 = !(c.steps) in
               let pc0 = pf_counters c.portfolio in
               let t1 = Unix.gettimeofday () in
               let encoded = Encode.finalize es in
               let t2 = Unix.gettimeofday () in
               (* Leaf queries are discharged flat, on the full finalized
                  atom list: verdicts and witness models are those of the
                  flat engine, byte for byte. *)
               let verdict =
                 solve_schema ~steps:c.steps ?portfolio:c.portfolio ~limits
                   ~stop:solver_stop encoded
               in
               let t3 = Unix.gettimeofday () in
               let dcache =
                 Smt.Portfolio.sub_counters (pf_counters c.portfolio) pc0
               in
               (encoded, verdict, t2 -. t1, t3 -. t2, !(c.steps) - steps0, dcache)
             in
             let handle (encoded, verdict, et, st, dsteps, dcache) =
               c.position <- c.position + 1;
               c.checked <- c.checked + 1;
               c.encode_t <- c.encode_t +. et;
               c.solve_t <- c.solve_t +. st;
               c.slots <- c.slots + encoded.Encode.n_slots;
               match verdict with
               | `Unsat ->
                 (match run.r_certs with
                 | Some sink ->
                   Certs.emit_schema sink ~position:(c.position - 1) encoded
                 | None -> ());
                 note_position ~run c
                   (Journal.add_delta (cache_delta dcache)
                      {
                        Journal.zero_delta with
                        d_checked = 1;
                        d_slots = encoded.Encode.n_slots;
                        d_steps = dsteps;
                        d_encode_us = Journal.us_of_s et;
                        d_solve_us = Journal.us_of_s st;
                      });
                 true
               | `Sat model ->
                 c.found <-
                   Some (Witness.of_model u spec (List.rev !rev_events) encoded model);
                 c.decided_at <- Some (c.position - 1);
                 stop := true;
                 false
               | `Unknown ->
                 c.abort_msg <- Some unknown_message;
                 c.decided_at <- Some (c.position - 1);
                 stop := true;
                 false
               | `Timeout ->
                 c.abort_msg <- Some timeout_message;
                 c.decided_at <- Some (c.position - 1);
                 stop := true;
                 false
             in
             match discharge () with
             | r -> handle r
             | exception e -> (
               (* Fail soft: one retry, then quarantine and continue. *)
               match discharge () with
               | r -> handle r
               | exception e2 ->
                 let m1 = Printexc.to_string e and m2 = Printexc.to_string e2 in
                 let msg =
                   if String.equal m1 m2 then m2
                   else Printf.sprintf "%s (first attempt: %s)" m2 m1
                 in
                 Journal.Tracker.quarantine run.r_tracker c.position msg;
                 c.position <- c.position + 1;
                 true)))
       ())

(* Open both sessions at [prefix] and reach-check it once; on UNSAT the
   caller's whole subtree is accounted in counting mode, otherwise the
   incremental DFS runs below it. *)
let run_inc_job ~run u spec c ~prefix ~ctx ~obs_mask =
  match static_refutation run prefix with
  | Some refutation ->
    (* The root refutation (or a statically-false guard already unlocked
       in the job's prefix) covers the whole subtree: skip it without
       opening the encoder or solver sessions at all. *)
    if accruing c then begin
      c.pruned <- c.pruned + 1;
      c.static <- c.static + 1;
      c.pending <-
        Journal.add_delta c.pending
          { Journal.zero_delta with d_pruned = 1; d_static = 1 }
    end;
    let sim = List.fold_left Encode.Sim.push_event (Encode.Sim.start u spec) prefix in
    let p0 = c.position in
    count_subtree ~run u spec sim c ~ctx ~obs_mask;
    (match run.r_certs with
    | Some sink when c.position > p0 ->
      Certs.emit_static sink ~position:p0 ~span:(c.position - p0)
        refutation.Analysis.Invariants.atoms refutation.Analysis.Invariants.cert
    | _ -> ())
  | None ->
  let t1 = Unix.gettimeofday () in
  let es = Encode.start u spec in
  let lia = Smt.Lia.create () in
  Smt.Lia.assert_atoms lia (Encode.base_atoms es);
  List.iter
    (fun ev ->
      let delta = Encode.push_event es ev in
      Smt.Lia.push lia;
      Smt.Lia.assert_atoms lia delta)
    prefix;
  let t2 = Unix.gettimeofday () in
  let h0 = !(c.hits) in
  let reach = Smt.Lia.check_quick ~hits:c.hits lia in
  let t3 = Unix.gettimeofday () in
  if accruing c then begin
    c.encode_t <- c.encode_t +. (t2 -. t1);
    c.solve_t <- c.solve_t +. (t3 -. t2);
    c.pending <-
      Journal.add_delta c.pending
        {
          Journal.zero_delta with
          d_hits = !(c.hits) - h0;
          d_encode_us = Journal.us_of_s (t2 -. t1);
          d_solve_us = Journal.us_of_s (t3 -. t2);
        }
  end
  else c.hits := h0;
  match reach with
  | Smt.Lia.Unsat ->
    if accruing c then begin
      c.pruned <- c.pruned + 1;
      c.pending <-
        Journal.add_delta c.pending { Journal.zero_delta with d_pruned = 1 }
    end;
    let atoms = if run.r_certs = None then [] else Encode.prefix_atoms es in
    let p0 = c.position in
    count_subtree ~run u spec (Encode.Sim.of_session es) c ~ctx ~obs_mask;
    (match run.r_certs with
    | Some sink when c.position > p0 ->
      Certs.emit_prefix sink ~position:p0 ~span:(c.position - p0) atoms
    | _ -> ())
  | Smt.Lia.Sat _ | Smt.Lia.Unknown | Smt.Lia.Timeout ->
    run_inc_subtree ~run u spec es lia c ~prefix_rev:(List.rev prefix) ~ctx0:ctx
      ~obs0:obs_mask

let inc_outcome c ~complete ~worker =
  match (c.found, c.abort_msg) with
  | Some w, _ -> Violated w
  | None, Some reason -> Aborted reason
  | None, None ->
    if complete then Holds
    else Aborted (stopped_unexpectedly ~position:(c.position - 1) ~worker)

let verify_incremental_sequential ~run u (spec : Ta.Spec.t) =
  let t0 = Unix.gettimeofday () in
  let c = new_tally ?portfolio:(pf_handle run) ~start:0 ~resume_from:run.r_resume_from () in
  run_inc_job ~run u spec c ~prefix:[] ~ctx:0 ~obs_mask:0;
  let time = Unix.gettimeofday () -. t0 in
  pf_flush c.portfolio;
  let consumed = max 0 (c.position - run.r_resume_from) in
  let stats =
    stats_plus_base run.r_base
      {
        schemas_checked = consumed;
        schemas_skipped = c.skipped;
        subtrees_pruned = c.pruned;
        core_prunes = c.core_pruned;
        static_prunes = c.static;
        prefix_hits = !(c.hits);
        slots_total = c.slots;
        solver_steps = !(c.steps);
        encode_time = c.encode_t;
        solve_time = c.solve_t;
        time;
        jobs = 1;
        workers =
          [
            {
              worker_id = 0;
              schemas = consumed;
              slots = c.slots;
              solver_steps = !(c.steps);
              busy_time = c.encode_t +. c.solve_t;
            };
          ];
        cache = pf_counters c.portfolio;
      }
  in
  let quarantined = (Journal.Tracker.snapshot run.r_tracker).Journal.quarantined in
  let outcome =
    partialize ~quarantined ~decided_at:c.decided_at
      (inc_outcome c ~complete:true ~worker:None)
  in
  { spec; outcome; stats }

(* ------------------------------------------------------------------- *)
(* Parallel incremental engine: the enumeration tree is partitioned at a
   fixed depth — every node above the cut whose observation set is
   complete becomes a single-schema job, every subtree rooted at the cut
   becomes one incremental job — and jobs carry their subtree's starting
   enumeration position, so positions are globally consistent.  Jobs are
   contiguous blocks of the preorder, pushed in order, and each worker
   stops at the first deciding schema inside its block, so the pool's
   first-stop contract again yields the sequential outcome, witness and
   schema count.  Reachability pruning is a deterministic function of
   the prefix (interval propagation over the same assert sequence), so
   the set of schemas actually solved — and the solver-step total —
   matches the sequential incremental engine; only the granularity
   counters (subtrees pruned, prefix hits) differ, because one pruned
   subtree in the sequential engine may surface as several pruned jobs
   here. *)

let partition_depth = 2

type inc_job = {
  ij_prefix : Schema.event list;
  ij_ctx : int;
  ij_obs : int;
  ij_start : int;
  ij_subtree : bool;  (** false: the single schema at [ij_prefix] *)
}

type inc_job_result = {
  ir_schemas : int;  (** enumeration positions consumed (checked + skipped) *)
  ir_checked : int;
  ir_skipped : int;
  ir_pruned : int;
  ir_core_pruned : int;
  ir_static : int;
  ir_hits : int;
  ir_slots : int;
  ir_steps : int;
  ir_encode_t : float;
  ir_solve_t : float;
  ir_cache : Smt.Portfolio.counters;  (** this job's cache/portfolio activity *)
  ir_decided_at : int option;  (** absolute position of the deciding schema *)
  ir_verdict :
    [ `Unsat_all | `Sat of Witness.t | `Unknown | `Timeout | `Budget of string ];
}

(* Schemas in the subtree at (ctx, obs_mask), counted up to [limit] —
   beyond the schema budget the exact total is irrelevant (the producer
   stops once the budget position is covered by a pushed job). *)
let count_schemas_upto u spec ~ctx ~obs_mask ~limit =
  let n = ref 0 in
  ignore
    (Schema.walk u spec ~ctx ~obs_mask
       ~on_enter:(fun _ -> `Descend)
       ~on_leave:(fun _ -> ())
       ~on_schema:(fun () ->
         incr n;
         !n < limit)
       ());
  !n

let verify_incremental_parallel ~run u (spec : Ta.Spec.t) =
  let limits = run.r_limits in
  let t0 = Unix.gettimeofday () in
  let phs = Array.init limits.jobs (fun _ -> pf_handle run) in
  let resume_from = run.r_resume_from in
  (* Preorder start position of each pushed job, in push (= pool index)
     order; only read after the pool joins. *)
  let rev_starts = ref [] in
  let produce ~push =
    let pos = ref 0 in
    let depth = ref 0 in
    let rev_prefix = ref [] in
    let ctx_stack = ref [ 0 ] in
    let obs_stack = ref [ 0 ] in
    let stop = ref false in
    (* Once a pushed job covers position [max_schemas], the deterministic
       budget abort is in flight: stop producing. *)
    let covered_budget () = !pos > limits.max_schemas in
    let push_recorded job =
      let accepted = push job in
      if accepted then rev_starts := job.ij_start :: !rev_starts;
      accepted
    in
    Schema.walk u spec
      ~on_enter:(fun ev ->
        if !stop then `Prune
        else begin
          let ctx = List.hd !ctx_stack and obs = List.hd !obs_stack in
          let ctx', obs' =
            match ev with
            | Schema.Unlock g -> (ctx lor (1 lsl g), obs)
            | Schema.Observe i -> (ctx, obs lor (1 lsl i))
          in
          if !depth + 1 >= partition_depth then begin
            (* The count must also cover the resume fast-forward: a
               subtree entirely below the frontier is skipped, not
               pushed. *)
            let limit =
              max 1 (max (limits.max_schemas - !pos + 1) (resume_from - !pos + 1))
            in
            let n = count_schemas_upto u spec ~ctx:ctx' ~obs_mask:obs' ~limit in
            (if n > 0 then
               if !pos + n <= resume_from then
                 (* Every schema in this subtree was already discharged
                    by a previous slice. *)
                 pos := !pos + n
               else
                 let job =
                   {
                     ij_prefix = List.rev (ev :: !rev_prefix);
                     ij_ctx = ctx';
                     ij_obs = obs';
                     ij_start = !pos;
                     ij_subtree = true;
                   }
                 in
                 if push_recorded job then begin
                   pos := !pos + n;
                   if covered_budget () then stop := true
                 end
                 else stop := true);
            `Prune
          end
          else begin
            incr depth;
            ctx_stack := ctx' :: !ctx_stack;
            obs_stack := obs' :: !obs_stack;
            rev_prefix := ev :: !rev_prefix;
            `Descend
          end
        end)
      ~on_leave:(fun _ ->
        decr depth;
        ctx_stack := List.tl !ctx_stack;
        obs_stack := List.tl !obs_stack;
        rev_prefix := List.tl !rev_prefix)
      ~on_schema:(fun () ->
        if !stop then false
        else if !pos < resume_from then begin
          incr pos;
          true
        end
        else begin
          let job =
            {
              ij_prefix = List.rev !rev_prefix;
              ij_ctx = List.hd !ctx_stack;
              ij_obs = List.hd !obs_stack;
              ij_start = !pos;
              ij_subtree = false;
            }
          in
          if push_recorded job then begin
            incr pos;
            if covered_budget () then begin
              stop := true;
              false
            end
            else true
          end
          else begin
            stop := true;
            false
          end
        end)
      ()
  in
  let solver_stop = make_stop run in
  let work ~worker _index job =
    let ph = phs.(worker) in
    let pc0 = pf_counters ph in
    let c = new_tally ?portfolio:ph ~start:job.ij_start ~resume_from () in
    (match check_budget ~run c with
     | Some msg -> c.abort_msg <- Some msg
     | None ->
       if job.ij_subtree then
         run_inc_job ~run u spec c ~prefix:job.ij_prefix ~ctx:job.ij_ctx
           ~obs_mask:job.ij_obs
       else begin
         (* A lone schema above the partition cut.  Its prefix gets the
            same zero-step reachability check the sequential engine
            applies on the way down, so the set of schemas actually
            solved — and with it the solver-step total — is the same in
            both incremental engines. *)
         (match run.r_failpoint with Some f -> f c.position | None -> ());
         c.position <- c.position + 1;
         match static_refutation run job.ij_prefix with
         | Some _ ->
           (* Statically refuted: the sequential engine skips this
              position inside a statically pruned subtree. *)
           let t1 = Unix.gettimeofday () in
           let sim =
             List.fold_left Encode.Sim.push_event (Encode.Sim.start u spec)
               job.ij_prefix
           in
           c.skipped <- 1;
           c.static <- 1;
           c.slots <- Encode.Sim.leaf_slots sim;
           c.encode_t <- Unix.gettimeofday () -. t1;
           Journal.Tracker.note run.r_tracker ~start:(c.position - 1) ~span:1
             {
               Journal.zero_delta with
               d_skipped = 1;
               d_static = 1;
               d_slots = c.slots;
               d_encode_us = Journal.us_of_s c.encode_t;
             }
         | None ->
         let t1 = Unix.gettimeofday () in
         let es = Encode.start u spec in
         let lia = Smt.Lia.create () in
         Smt.Lia.assert_atoms lia (Encode.base_atoms es);
         List.iter
           (fun ev ->
             let delta = Encode.push_event es ev in
             Smt.Lia.push lia;
             Smt.Lia.assert_atoms lia delta)
           job.ij_prefix;
         let t2 = Unix.gettimeofday () in
         c.encode_t <- t2 -. t1;
         match Smt.Lia.check_quick ~hits:c.hits lia with
         | Smt.Lia.Unsat ->
           c.skipped <- 1;
           c.slots <- Encode.Sim.leaf_slots (Encode.Sim.of_session es);
           c.solve_t <- Unix.gettimeofday () -. t2;
           Journal.Tracker.note run.r_tracker ~start:(c.position - 1) ~span:1
             {
               Journal.zero_delta with
               d_skipped = 1;
               d_slots = c.slots;
               d_encode_us = Journal.us_of_s c.encode_t;
               d_solve_us = Journal.us_of_s c.solve_t;
             }
         | Smt.Lia.Sat _ | Smt.Lia.Unknown | Smt.Lia.Timeout -> (
           c.checked <- 1;
           let encoded = Encode.finalize es in
           let t3 = Unix.gettimeofday () in
           c.encode_t <- c.encode_t +. (t3 -. t2);
           c.slots <- encoded.n_slots;
           (match
              solve_schema ~steps:c.steps ?portfolio:c.portfolio ~limits
                ~stop:solver_stop encoded
            with
            | `Unsat ->
              (* A lone-schema job runs exactly one leaf query, so the
                 handle's counter motion since job start is this
                 position's cache activity. *)
              Journal.Tracker.note run.r_tracker ~start:(c.position - 1) ~span:1
                (Journal.add_delta
                   (cache_delta
                      (Smt.Portfolio.sub_counters (pf_counters c.portfolio) pc0))
                   {
                     Journal.zero_delta with
                     d_checked = 1;
                     d_slots = c.slots;
                     d_steps = !(c.steps);
                     d_encode_us = Journal.us_of_s c.encode_t;
                     d_solve_us = Journal.us_of_s c.solve_t;
                   })
            | `Sat model ->
              c.found <- Some (Witness.of_model u spec job.ij_prefix encoded model);
              c.decided_at <- Some (c.position - 1)
            | `Unknown ->
              c.abort_msg <- Some unknown_message;
              c.decided_at <- Some (c.position - 1)
            | `Timeout ->
              c.abort_msg <- Some timeout_message;
              c.decided_at <- Some (c.position - 1));
           c.solve_t <- Unix.gettimeofday () -. t3)
       end);
    {
      ir_schemas = max 0 (c.position - max c.start c.resume_from);
      ir_checked = c.checked;
      ir_skipped = c.skipped;
      ir_pruned = c.pruned;
      ir_core_pruned = c.core_pruned;
      ir_static = c.static;
      ir_hits = !(c.hits);
      ir_slots = c.slots;
      ir_steps = !(c.steps);
      ir_encode_t = c.encode_t;
      ir_solve_t = c.solve_t;
      ir_cache = Smt.Portfolio.sub_counters (pf_counters ph) pc0;
      ir_decided_at = c.decided_at;
      ir_verdict =
        (match (c.found, c.abort_msg) with
         | Some w, _ -> `Sat w
         | None, Some msg ->
           if msg = unknown_message then `Unknown
           else if msg = timeout_message then `Timeout
           else `Budget msg
         | None, None -> `Unsat_all);
    }
  in
  let is_stop r = r.ir_verdict <> `Unsat_all in
  let completion = Pool.run ~jobs:limits.jobs ~produce ~work ~is_stop () in
  Array.iter pf_flush phs;
  let cut = match completion.Pool.first_stop with Some i -> i | None -> max_int in
  let counted = List.filter (fun (i, _, _) -> i <= cut) completion.Pool.results in
  let sum f = List.fold_left (fun acc (_, _, r) -> acc + f r) 0 counted in
  let sumf f = List.fold_left (fun acc (_, _, r) -> acc +. f r) 0.0 counted in
  let workers =
    List.init limits.jobs (fun wid ->
        let mine =
          List.filter_map
            (fun (_, w, r) -> if w = wid then Some r else None)
            completion.Pool.results
        in
        {
          worker_id = wid;
          schemas = List.fold_left (fun acc r -> acc + r.ir_schemas) 0 mine;
          slots = List.fold_left (fun acc r -> acc + r.ir_slots) 0 mine;
          solver_steps = List.fold_left (fun acc r -> acc + r.ir_steps) 0 mine;
          busy_time = completion.Pool.busy.(wid);
        })
  in
  (* Jobs the pool quarantined (raised twice) map back to their subtree
     start position: the frontier hole covers the whole job, so a
     resumed run re-attempts it from its first schema. *)
  let starts = Array.of_list (List.rev !rev_starts) in
  List.iter
    (fun (i, msg) -> Journal.Tracker.quarantine run.r_tracker starts.(i) msg)
    completion.Pool.quarantined;
  (* Crashes inside a subtree job are retried/quarantined inline by
     run_inc_subtree (they never reach the pool), so the complete hole
     set — inline and pool-level — lives in the tracker. *)
  let quarantined = (Journal.Tracker.snapshot run.r_tracker).Journal.quarantined in
  let decided_at = ref None in
  let outcome =
    match completion.Pool.first_stop with
    | Some i -> (
      match List.find (fun (j, _, _) -> j = i) counted with
      | _, _, ({ ir_verdict = `Sat w; _ } as r) ->
        decided_at := r.ir_decided_at;
        Violated w
      | _, _, ({ ir_verdict = `Unknown; _ } as r) ->
        decided_at := r.ir_decided_at;
        Aborted unknown_message
      | _, _, ({ ir_verdict = `Timeout; _ } as r) ->
        decided_at := r.ir_decided_at;
        Aborted timeout_message
      | _, _, { ir_verdict = `Budget msg; _ } -> Aborted msg
      | _, _, { ir_verdict = `Unsat_all; _ } -> assert false)
    | None ->
      if completion.Pool.completed then Holds
      else
        let position, worker =
          List.fold_left
            (fun (p, w) (i, wid, r) ->
              let last = starts.(i) + r.ir_schemas - 1 in
              if last > p then (last, Some wid) else (p, w))
            (run.r_resume_from - 1, None)
            completion.Pool.results
        in
        Aborted (stopped_unexpectedly ~position ~worker)
  in
  let stats =
    stats_plus_base run.r_base
      {
        schemas_checked = sum (fun r -> r.ir_schemas);
        schemas_skipped = sum (fun r -> r.ir_skipped);
        subtrees_pruned = sum (fun r -> r.ir_pruned);
        core_prunes = sum (fun r -> r.ir_core_pruned);
        static_prunes = sum (fun r -> r.ir_static);
        prefix_hits = sum (fun r -> r.ir_hits);
        slots_total = sum (fun r -> r.ir_slots);
        solver_steps = sum (fun r -> r.ir_steps);
        encode_time = sumf (fun r -> r.ir_encode_t);
        solve_time = sumf (fun r -> r.ir_solve_t);
        time = Unix.gettimeofday () -. t0;
        jobs = limits.jobs;
        workers;
        cache =
          List.fold_left
            (fun acc (_, _, r) -> Smt.Portfolio.add_counters acc r.ir_cache)
            Smt.Portfolio.zero_counters counted;
      }
  in
  { spec; outcome = partialize ~quarantined ~decided_at:!decided_at outcome; stats }

let verify_with_universe ?(limits = default_limits) ?checkpoint ?(checkpoint_every = 64)
    ?(resume = false) ?now ?failpoint ?certs ?portfolio u (spec : Ta.Spec.t) =
  let ta = Universe.automaton u in
  precheck ta spec;
  let fp = Journal.fingerprint ta spec in
  let base =
    match checkpoint with
    | Some path when resume && Sys.file_exists path -> (
      match Journal.load ~path with
      | Error msg -> invalid_arg ("Checker.verify: " ^ msg)
      | Ok j -> (
        match Journal.validate ~fingerprint:fp j with
        | Error msg -> invalid_arg ("Checker.verify: " ^ msg)
        (* Quarantined holes are re-attempted, not inherited: they sit at
           or past the frontier by construction. *)
        | Ok j -> { j with Journal.quarantined = [] }))
    | _ -> Journal.fresh ~fingerprint:fp
  in
  let wall0 = Unix.gettimeofday () in
  let elapsed_us () =
    base.Journal.elapsed_us + Journal.us_of_s (Unix.gettimeofday () -. wall0)
  in
  let tracker =
    Journal.Tracker.create ~base ?path:checkpoint ~every:checkpoint_every ~elapsed_us ()
  in
  let now = match now with Some f -> f | None -> Unix.gettimeofday in
  (* Build the invariant engine's certified refutations once per run.
     Every refutation was re-validated by the standalone certificate
     checker at build time, so a prune applied here rests on the same
     trust base as a replayed [--emit-certs] record. *)
  let static_info =
    if not limits.static then None
    else begin
      let inv = Analysis.Invariants.build ~spec ta in
      let ids = Universe.ids u in
      let n = List.fold_left max (-1) ids + 1 in
      let s_guard = Array.make n None in
      List.iter
        (fun g ->
          s_guard.(g) <- Analysis.Invariants.guard_refutation inv (Universe.atom u g))
        ids;
      let s_root = Analysis.Invariants.root_refutation inv in
      if s_root = None && Array.for_all Option.is_none s_guard then None
      else Some { s_root; s_guard }
    end
  in
  (* The deadline accounts for wall-clock already spent by previous
     slices, so [time_budget] bounds the run's total time, not each
     slice's. *)
  let deadline =
    Option.map
      (fun b -> now () +. b -. Journal.s_of_us base.Journal.elapsed_us)
      limits.time_budget
  in
  let run =
    {
      r_limits = limits;
      r_base = base;
      r_resume_from = base.Journal.frontier;
      r_tracker = tracker;
      r_now = now;
      r_deadline = deadline;
      r_failpoint = failpoint;
      r_certs = certs;
      r_static = static_info;
      r_portfolio = portfolio;
      r_origin = ta.A.name ^ "/" ^ spec.Ta.Spec.name;
    }
  in
  let result =
    match (limits.incremental, limits.jobs <= 1) with
    | false, true -> verify_flat_sequential ~run u spec
    | false, false -> verify_flat_parallel ~run u spec
    | true, true -> verify_incremental_sequential ~run u spec
    | true, false -> verify_incremental_parallel ~run u spec
  in
  (* Always leave the last-good journal on disk: budget aborts, signal
     interrupts and decided runs all flush their final frontier. *)
  Journal.Tracker.flush tracker;
  Option.iter Certs.flush certs;
  result

let verify ?limits ?(slice = false) ?checkpoint ?checkpoint_every ?resume ?now
    ?failpoint ?certs ?portfolio ta spec =
  let ta =
    if slice then fst (Analysis.slice ~keep:(Analysis.spec_locations spec) ta) else ta
  in
  verify_with_universe ?limits ?checkpoint ?checkpoint_every ?resume ?now ?failpoint
    ?certs ?portfolio (Universe.build ta) spec

let pp_result fmt r =
  let avg =
    if r.stats.schemas_checked = 0 then 0.0
    else float_of_int r.stats.slots_total /. float_of_int r.stats.schemas_checked
  in
  let pp_inc fmt () =
    if r.stats.subtrees_pruned > 0 || r.stats.schemas_skipped > 0 then
      Format.fprintf fmt ", %d skipped by %d pruned subtrees%t" r.stats.schemas_skipped
        r.stats.subtrees_pruned (fun fmt ->
          if r.stats.core_prunes > 0 then
            Format.fprintf fmt " (%d core-guided)" r.stats.core_prunes);
    if r.stats.static_prunes > 0 then
      Format.fprintf fmt ", %d static" r.stats.static_prunes;
    (* Cache effectiveness: only printed when a portfolio ran, so the
       default output is byte-identical to the uncached engine's. *)
    let cc = r.stats.cache in
    if cc.Smt.Portfolio.hits + cc.Smt.Portfolio.misses > 0 then begin
      Format.fprintf fmt ", cache %d/%d hits" cc.Smt.Portfolio.hits
        (cc.Smt.Portfolio.hits + cc.Smt.Portfolio.misses);
      if cc.Smt.Portfolio.cross > 0 then
        Format.fprintf fmt " (%d cross-property)" cc.Smt.Portfolio.cross;
      if cc.Smt.Portfolio.w_interval + cc.Smt.Portfolio.w_cooper > 0 then
        Format.fprintf fmt ", portfolio wins %d interval/%d cooper/%d simplex"
          cc.Smt.Portfolio.w_interval cc.Smt.Portfolio.w_cooper
          cc.Smt.Portfolio.w_simplex
    end
  in
  match r.outcome with
  | Holds ->
    Format.fprintf fmt "%-12s holds   (%d schemas, avg length %.0f%a, %.2f s)"
      r.spec.name r.stats.schemas_checked avg pp_inc () r.stats.time
  | Violated w ->
    Format.fprintf fmt "%-12s VIOLATED (%d schemas%a, %.2f s)@,%a" r.spec.name
      r.stats.schemas_checked pp_inc () r.stats.time Witness.pp w
  | Aborted reason ->
    Format.fprintf fmt "%-12s aborted: %s (%d schemas%a, %.2f s)" r.spec.name reason
      r.stats.schemas_checked pp_inc () r.stats.time
  | Partial { quarantined; reason } ->
    Format.fprintf fmt
      "%-12s PARTIAL: %s (%d quarantined position%s: %s; %d schemas%a, %.2f s)"
      r.spec.name reason (List.length quarantined)
      (if List.length quarantined = 1 then "" else "s")
      (String.concat ", "
         (List.map (fun (p, _) -> string_of_int p) quarantined))
      r.stats.schemas_checked pp_inc () r.stats.time

let pp_worker_stats fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun w ->
      Format.fprintf fmt "worker %d: %d schemas, %d slots, %d solver steps, %.2f s busy@,"
        w.worker_id w.schemas w.slots w.solver_steps w.busy_time)
    r.stats.workers;
  Format.fprintf fmt "@]"
