module A = Ta.Automaton
module G = Ta.Guard
module Q = Numbers.Rational
module L = Smt.Linexpr

type var_kind =
  | Param of string
  | Init_counter of string
  | Factor of int * string

type encoded = {
  vars : (int * var_kind) list;
  n_slots : int;
  atoms : Smt.Atom.t list;
  branches : Smt.Atom.t list list list;
      (* Factored justice case-splits: for each entry, at least one of the
         alternative cubes (conjunctions of atoms) must hold in addition
         to [atoms].  Empty for safety specs and for liveness schemas
         whose final context decides every justice condition. *)
}

let get assoc name =
  match List.assoc_opt name assoc with
  | Some e -> e
  | None -> invalid_arg ("Encode: unknown name " ^ name)

let set assoc name e = (name, e) :: List.remove_assoc name assoc

(* ------------------------------------------------------------------ *)
(* Incremental encoding.

   The flat [encode] below is a left fold over the schema's events: the
   atoms (and SMT variable numbering) produced for a schema prefix are
   a function of the prefix alone, so two schemas sharing a prefix share
   an identical atom-list prefix.  The session exposes exactly that
   structure: [push_event] extends the current prefix and returns the
   atom delta; [pop_event] backtracks in O(1) (snapshots are immutable);
   [finalize] completes the current prefix into the full query — the
   trailing segment, stability pinning, observation and justice
   constraints are emitted on a copy, never into the prefix, which is
   what makes prefix unsatisfiability monotone down the enumeration
   tree (see DESIGN.md).  [encode u spec schema] is definitionally
   [start; push every event; finalize], so the incremental and flat
   paths cannot drift apart. *)

type snapshot = {
  next_var : int;
  vars_rev : (int * var_kind) list;
  n_slots : int;
  seg : int;
  ctx : int;
  counters : (string * L.t) list;
  shared : (string * L.t) list;
  entered : (string * L.t) list;
      (* kappa0 plus total inflow: "was this location ever populated" *)
}

type env = {
  u : Universe.t;
  ta : A.t;
  spec : Ta.Spec.t;
  param_vars : (string * int) list;
  observations : Ta.Cond.t array;
}

type session = {
  env : env;
  base : Smt.Atom.t list;
  mutable stack : (snapshot * Smt.Atom.t list) list;
      (* top first; each level carries the atom delta it contributed *)
}

let fresh snap kind =
  ( { snap with
      next_var = snap.next_var + 1;
      vars_rev = (snap.next_var, kind) :: snap.vars_rev },
    snap.next_var )

let blocked env l = List.mem l env.spec.never_enter
let rule_allowed env (r : A.rule) = not (blocked env r.target)

let pexpr env (e : Ta.Pexpr.t) =
  L.of_int_terms
    (List.map (fun (p, c) -> (c, List.assoc p env.param_vars)) e.coeffs)
    e.const

(* State condition -> atoms, over a snapshot's counters and shared. *)
let cond_atoms env snap (c : Ta.Cond.t) =
  List.map
    (fun (a : Ta.Cond.atom) ->
      let expr =
        List.fold_left
          (fun acc (term, coef) ->
            let e =
              match term with
              | Ta.Cond.Counter l -> get snap.counters l
              | Ta.Cond.Shared x -> get snap.shared x
              | Ta.Cond.Param p -> L.var (List.assoc p env.param_vars)
            in
            L.add acc (L.scale (Q.of_int coef) e))
          (L.of_int a.const) a.terms
      in
      match a.rel with
      | Ta.Cond.Ge -> Smt.Atom.ge expr L.zero
      | Ta.Cond.Le -> Smt.Atom.le expr L.zero
      | Ta.Cond.Eq -> Smt.Atom.eq expr L.zero)
    c

let guard_lhs snap (a : G.atom) =
  List.fold_left
    (fun acc (x, c) -> L.add acc (L.scale (Q.of_int c) (get snap.shared x)))
    L.zero a.shared

let guard_true_atom env snap (a : G.atom) =
  Smt.Atom.ge (guard_lhs snap a) (pexpr env a.bound)

let guard_false_atom env snap (a : G.atom) =
  Smt.Atom.lt (guard_lhs snap a) (pexpr env a.bound)

(* Fire the rules enabled by [snap.ctx] once each, accelerated, in
   topological order.  Returns the extended snapshot and the segment's
   atoms in reverse order.  A rule whose source counter is the zero
   expression cannot move anyone: skip the slot (keeps the queries small
   in early segments, where most locations are provably empty). *)
let run_segment env snap =
  List.fold_left
    (fun (snap, rev_atoms) (r : A.rule) ->
      if rule_allowed env r && not (L.equal (get snap.counters r.source) L.zero)
      then begin
        let snap, dv = fresh snap (Factor (snap.seg, r.name)) in
        let d = L.var dv in
        let src = L.sub (get snap.counters r.source) d in
        let counters = set snap.counters r.source src in
        let counters = set counters r.target (L.add (get counters r.target) d) in
        let entered =
          set snap.entered r.target (L.add (get snap.entered r.target) d)
        in
        let shared =
          List.fold_left
            (fun sh (x, c) -> set sh x (L.add (get sh x) (L.scale (Q.of_int c) d)))
            snap.shared r.update
        in
        ( { snap with counters; shared; entered; n_slots = snap.n_slots + 1 },
          Smt.Atom.ge src L.zero :: Smt.Atom.ge d L.zero :: rev_atoms )
      end
      else (snap, rev_atoms))
    (snap, [])
    (Universe.enabled_rules env.u snap.ctx)

let start u (spec : Ta.Spec.t) =
  let ta = Universe.automaton u in
  let rev_base = ref [] in
  let assert_atom a = rev_base := a :: !rev_base in
  let snap =
    ref
      {
        next_var = 0;
        vars_rev = [];
        n_slots = 0;
        seg = 0;
        ctx = 0;
        counters = [];
        shared = List.map (fun x -> (x, L.zero)) ta.shared;
        entered = [];
      }
  in
  let fresh_mut kind =
    let s, v = fresh !snap kind in
    snap := s;
    v
  in
  let param_vars = List.map (fun p -> (p, fresh_mut (Param p))) ta.params in
  let env = { u; ta; spec; param_vars; observations = Array.of_list (List.map snd spec.observations) } in
  (* Resilience and non-negative parameters. *)
  List.iter (fun e -> assert_atom (Smt.Atom.ge (pexpr env e) L.zero)) ta.resilience;
  List.iter (fun (_, v) -> assert_atom (Smt.Atom.ge (L.var v) L.zero)) param_vars;
  (* Initial configuration. *)
  let init_counters =
    List.map
      (fun l ->
        if List.mem l ta.initial && not (blocked env l) then begin
          let v = fresh_mut (Init_counter l) in
          assert_atom (Smt.Atom.ge (L.var v) L.zero);
          (l, L.var v)
        end
        else (l, L.zero))
      ta.locations
  in
  snap := { !snap with counters = init_counters; entered = init_counters };
  let population =
    List.fold_left (fun acc l -> L.add acc (get init_counters l)) L.zero ta.initial
  in
  assert_atom (Smt.Atom.eq population (pexpr env ta.population));
  List.iter assert_atom (cond_atoms env !snap spec.init);
  let base = List.rev !rev_base in
  { env; base; stack = [ (!snap, base) ] }

let base_atoms s = s.base

let top s =
  match s.stack with
  | (snap, _) :: _ -> snap
  | [] -> assert false

let push_event s (ev : Schema.event) =
  let env = s.env in
  let snap, rev_seg = run_segment env (top s) in
  let snap = { snap with seg = snap.seg + 1 } in
  let snap, rev_atoms =
    match ev with
    | Schema.Unlock g ->
      let snap = { snap with ctx = snap.ctx lor (1 lsl g) } in
      (snap, guard_true_atom env snap (Universe.atom env.u g) :: rev_seg)
    | Schema.Observe i ->
      (snap, List.rev_append (cond_atoms env snap env.observations.(i)) rev_seg)
  in
  let delta = List.rev rev_atoms in
  s.stack <- (snap, delta) :: s.stack;
  delta

let pop_event s =
  match s.stack with
  | _ :: (_ :: _ as rest) -> s.stack <- rest
  | _ -> invalid_arg "Encode.pop_event: no event to pop"

let prefix_atoms s =
  List.concat (List.rev_map snd s.stack)

(* Complete the current prefix into the full violation query: trailing
   segment, stability pinning, cut-point-free observations, fairness and
   justice constraints, and the final condition — all emitted on a copy
   of the top snapshot, leaving the session untouched. *)
let finalize s =
  let env = s.env in
  let spec = env.spec in
  let ta = env.ta in
  (* Trailing segment: rules of the final context fire before the final
     state is inspected. *)
  let snap, rev_trailing = run_segment env (top s) in
  let rev_atoms = ref rev_trailing in
  let assert_atom a = rev_atoms := a :: !rev_atoms in
  let branches = ref [] in
  let ctx = snap.ctx in
  (* For a fair fixpoint, the still-locked guards must be false in the
     final configuration (a run in which one of them turns true is
     covered by the schema that unlocks it).  No pinning between events:
     two guards may become true at the same instant, so asserting
     "still-locked guards are false" at interior boundaries would
     exclude real runs (incompleteness). *)
  let pin () =
    List.iter
      (fun g ->
        if ctx land (1 lsl g) = 0 then
          assert_atom (guard_false_atom env snap (Universe.atom env.u g)))
      (Universe.ids env.u)
  in
  if spec.require_stable then pin ();
  (* Cut-point-free observations, on the complete run / final state. *)
  Array.iter
    (fun obs ->
      match Obs.classify obs with
      | Obs.Cut_point -> () (* handled by an Observe event *)
      | Obs.Monotone_end -> List.iter assert_atom (cond_atoms env snap obs)
      | Obs.Ever_entered ->
        List.iter
          (fun (a : Ta.Cond.atom) ->
            let expr =
              List.fold_left
                (fun acc (term, coef) ->
                  match term with
                  | Ta.Cond.Counter l ->
                    L.add acc (L.scale (Q.of_int coef) (get snap.entered l))
                  | Ta.Cond.Shared _ | Ta.Cond.Param _ -> assert false)
                (L.of_int a.const) a.terms
            in
            assert_atom (Smt.Atom.ge expr L.zero))
          obs)
    env.observations;
  if spec.require_stable then begin
    List.iter
      (fun (r : A.rule) ->
        let enabled =
          List.for_all
            (fun g -> ctx land (1 lsl g) <> 0)
            (Universe.guard_ids env.u r.guard)
        in
        if r.fairness = A.Fair && enabled && rule_allowed env r then
          assert_atom (Smt.Atom.eq (get snap.counters r.source) L.zero))
      ta.rules;
    (* Justice constraints: kappa[loc] = 0 or the unless-condition fails.
       The final context decides most unless-atoms (a locked guard it
       implies pins it false — clause satisfied; an unlocked guard that
       implies it pins it true — the disjunct vanishes).  Clauses that
       remain undecided are factored per location into a binary
       case-split handled by the checker. *)
    let undecided = Hashtbl.create 8 in
    List.iter
      (fun (j : A.justice) ->
        let statuses =
          List.map (fun a -> (a, Universe.justice_atom_status env.u ctx a)) j.unless
        in
        if not (List.exists (fun (_, s) -> s = `False) statuses) then begin
          match List.filter (fun (_, s) -> s = `Unknown) statuses with
          | [] -> assert_atom (Smt.Atom.eq (get snap.counters j.loc) L.zero)
          | unknown ->
            let prev =
              match Hashtbl.find_opt undecided j.loc with Some l -> l | None -> []
            in
            Hashtbl.replace undecided j.loc (List.map fst unknown :: prev)
        end)
      ta.justice;
    Hashtbl.iter
      (fun loc clauses ->
        (* (k=0 \/ D1) /\ ... /\ (k=0 \/ Dm)  <=>  k=0 \/ (D1 /\ ... /\ Dm),
           with each Di a disjunction of negated unless-atoms; expand the
           conjunction of disjunctions into alternative cubes. *)
        let cubes =
          List.fold_left
            (fun acc clause ->
              List.concat_map
                (fun cube ->
                  List.map (fun a -> guard_false_atom env snap a :: cube) clause)
                acc)
            [ [] ] clauses
        in
        let empty_cube = [ Smt.Atom.eq (get snap.counters loc) L.zero ] in
        branches := (empty_cube :: cubes) :: !branches)
      undecided
  end;
  List.iter assert_atom (cond_atoms env snap spec.final_cond);
  {
    vars = List.rev snap.vars_rev;
    n_slots = snap.n_slots;
    atoms = prefix_atoms s @ List.rev !rev_atoms;
    branches = !branches;
  }

let encode u spec (schema : Schema.t) =
  let s = start u spec in
  List.iter (fun ev -> ignore (push_event s ev)) schema;
  finalize s

(* ------------------------------------------------------------------ *)
(* Slot simulation: the per-schema slot count (= the n_slots the flat
   encoder would report) without building any linear expression.  This
   mirrors run_segment's skip rule exactly: a location's counter is the
   zero expression iff it is neither an unblocked initial location nor
   the target of an executed slot — acceleration factors are fresh
   variables, so a counter expression can never collapse back to the
   literal zero.  Used to account pruned subtrees at flat-engine parity
   cost (see Checker). *)

module Sim = struct
  type t = { env : env; ctx : int; seg_nonzero : string list; slots : int }

  (* The empty prefix, without opening a session: only the unblocked
     initial locations are populated, matching [start]'s counters. *)
  let start u (spec : Ta.Spec.t) =
    let ta = Universe.automaton u in
    let env =
      { u; ta; spec; param_vars = [];
        observations = Array.of_list (List.map snd spec.observations) }
    in
    let seg_nonzero =
      List.filter (fun l -> List.mem l ta.initial && not (blocked env l)) ta.locations
    in
    { env; ctx = 0; seg_nonzero; slots = 0 }

  let of_session s =
    let snap = top s in
    {
      env = s.env;
      ctx = snap.ctx;
      seg_nonzero =
        List.filter_map
          (fun (l, e) -> if L.equal e L.zero then None else Some l)
          snap.counters;
      slots = snap.n_slots;
    }

  let run_segment sim =
    List.fold_left
      (fun (nonzero, slots) (r : A.rule) ->
        if rule_allowed sim.env r && List.mem r.source nonzero then
          ((if List.mem r.target nonzero then nonzero else r.target :: nonzero),
           slots + 1)
        else (nonzero, slots))
      (sim.seg_nonzero, sim.slots)
      (Universe.enabled_rules sim.env.u sim.ctx)

  let push_event sim (ev : Schema.event) =
    let nonzero, slots = run_segment sim in
    let sim = { sim with seg_nonzero = nonzero; slots } in
    match ev with
    | Schema.Unlock g -> { sim with ctx = sim.ctx lor (1 lsl g) }
    | Schema.Observe _ -> sim

  let leaf_slots sim = snd (run_segment sim)
end
