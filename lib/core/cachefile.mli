(** Persistent discharge cache: load/save a {!Smt.Qcache} as one
    canonical-JSON document, written atomically through
    {!Journal.atomic_write} (same crash-safety contract as the
    checkpoint journal — a crash mid-save leaves the previous cache
    intact, never a torn file).

    Trust model: a cache file is {e advisory}, never load-bearing.
    Every entry is re-validated on load ({!Smt.Qcache.validate}: the
    fingerprint is recomputed, UNSAT certificates are replayed by the
    standalone checker, SAT models are re-evaluated); entries that fail
    — tampered, truncated, stale, or produced by a different atom
    encoding — are silently dropped, degrading to cache misses.  On
    save, in-memory UNSAT entries that carry no certificate yet are
    certified first ({!Smt.Qcache.certify}); entries the certifying
    engine cannot re-prove within budget are dropped rather than written
    uncertified.  A wrong verdict therefore cannot enter a run through
    the file: only correctly-certified work can be reused. *)

type load_report = {
  cache : Smt.Qcache.t;
  loaded : int;  (** entries accepted *)
  dropped : int;  (** entries rejected by validation (or malformed) *)
}

(** [load ~path] reads a cache file.  A missing file is an empty cache
    (cold start); an unreadable or non-JSON file is an empty cache with
    every entry counted dropped. *)
val load : path:string -> load_report

type save_report = {
  written : int;
  uncertified : int;  (** UNSAT entries dropped (certification failed) *)
}

(** [save ~path ?max_steps cache] certifies and writes every valid
    entry.  [max_steps] bounds the certifying engine per entry (default
    50000). *)
val save : path:string -> ?max_steps:int -> Smt.Qcache.t -> save_report
