(** The guard universe of a threshold automaton: the deduplicated guard
    atoms of all rules, together with the two relations that drive schema
    enumeration (paper, Section 6 / POPL'17):

    - the {e implication order}: [g] precedes [h] when, under the
      resilience condition (and non-negative shared variables), [h] true
      implies [g] true — so [h] can never unlock strictly before [g];
    - {e producibility}: a guard with a necessarily-positive threshold can
      only unlock after some rule that increments one of its variables has
      become firable. *)

type guard_id = int

type t

(** [build ta] computes the universe; runs one small LIA query per pair
    of guards.  The two pruning relations can be disabled individually
    for ablation studies (both remain sound to disable: they only shrink
    the enumeration).
    @raise Invalid_argument when the automaton has more than 62 unique
    guard atoms: enumeration contexts are bitmasks in a 63-bit OCaml
    integer, and one more atom would silently overflow into the sign
    bit. *)
val build :
  ?use_implication_order:bool -> ?use_producibility:bool -> Ta.Automaton.t -> t

val automaton : t -> Ta.Automaton.t
val size : t -> int
val atom : t -> guard_id -> Ta.Guard.atom

(** [ids u] is [0 .. size-1]. *)
val ids : t -> guard_id list

(** [guard_ids u g] maps a rule guard (conjunction) to universe ids. *)
val guard_ids : t -> Ta.Guard.t -> guard_id list

(** [must_precede u g h] is true when [h => g] (so [g] unlocks no later
    than [h]). *)
val must_precede : t -> guard_id -> guard_id -> bool

(** [enabled_rules u ctx] lists the rules whose guard atoms are all in
    the context [ctx] (a bitmask over guard ids), in topological order. *)
val enabled_rules : t -> int -> Ta.Automaton.rule list

(** [unlock_candidates u ctx] lists the guards outside [ctx] that respect
    the implication order and producibility under [ctx]. *)
val unlock_candidates : t -> int -> guard_id list

(** [justice_atom_status u ctx a] decides a justice condition atom [a]
    (which need not belong to the universe) in the final context [ctx],
    using the pinning of locked guards and the truth of unlocked ones:
    [`True] when some unlocked guard implies [a], [`False] when [a]
    implies some still-locked guard, [`Unknown] otherwise. *)
val justice_atom_status :
  t -> int -> Ta.Guard.atom -> [ `True | `False | `Unknown ]
