(** Certificate emission sink for [--emit-certs].

    A sink re-proves each UNSAT verdict of the sequential engines on the
    certifying LIA engine ({!Smt.Lia.solve_cert}) and appends one
    canonical-JSON line per verdict to its channel:

    - [{"kind":"schema","position":p,"atoms":[...],"branches":[...],
       "cert":{...}}] — a schema discharged UNSAT at enumeration
      position [p]; the certificate refutes the full finalized query.
    - [{"kind":"prefix","position":p,"span":n,"atoms":[...],
       "cert":{...}}] — a pruned prefix covering the [n] enumeration
      positions starting at [p]; the certificate refutes the prefix
      conjunction, which every schema in the span extends.
    - [{"kind":"static","position":p,"span":n,"atoms":[...],
       "cert":{...}}] — a static prune by the invariant engine covering
      [n] positions starting at [p]; the certificate (a
      {!Smt.Certificate.Static} wrapper) refutes the parameter-only
      conjunction recorded in [atoms], which the refuted queries all
      entail.

    [holistic check-cert] replays these lines with the standalone
    {!Smt.Certcheck}.  The certifying engine's steps accrue in the
    sink's own counter, never in the checker's statistics, so emission
    cannot perturb the solver-step totals the benchmarks gate on. *)

type sink

val create : ?max_steps:int -> out_channel -> sink

(** Certify and write a schema discharged UNSAT.  A query the certifying
    engine cannot refute within the step budget counts as failed. *)
val emit_schema : sink -> position:int -> Encode.encoded -> unit

(** Certify and write a pruned prefix: [atoms] is the prefix conjunction
    (base included), [span] the number of enumeration positions the
    prune covered. *)
val emit_prefix : sink -> position:int -> span:int -> Smt.Atom.t list -> unit

(** Write a static prune: [atoms] is the refuted parameter-only
    conjunction, [cert] its pre-validated certificate (built and checked
    by the invariant engine — the certifying solver is not consulted). *)
val emit_static :
  sink -> position:int -> span:int -> Smt.Atom.t list -> Smt.Certificate.t -> unit

val emitted : sink -> int
val failed : sink -> int

(** Steps spent by the certifying engine across all emissions. *)
val cert_steps : sink -> int

val flush : sink -> unit
