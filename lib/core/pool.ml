type 'r completion = {
  results : (int * int * 'r) list;
  completed : bool;
  first_stop : int option;
  busy : float array;
  quarantined : (int * string) list;
}

(* All coordination state lives behind one mutex; [not_empty] wakes
   workers waiting for jobs, [not_full] wakes the producer waiting for
   queue space (or for the early-stop signal). *)
type 'a state = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  queue : (int * 'a) Queue.t;
  capacity : int;
  mutable next_index : int;  (* index the producer will assign next *)
  mutable closed : bool;  (* the producer is done pushing *)
  mutable stop_at : int;  (* lowest stopping index so far; max_int = none *)
  failed : (int, string) Hashtbl.t;  (* index -> first attempt's error *)
  mutable quarantined : (int * string) list;  (* twice-failed jobs *)
}

let run (type a r) ~jobs ?capacity ?on_result ~(produce : push:(a -> bool) -> bool)
    ~(work : worker:int -> int -> a -> r) ~(is_stop : r -> bool) () : r completion =
  if jobs < 1 then invalid_arg "Pool.run: jobs must be >= 1";
  let capacity =
    match capacity with Some c -> max 1 c | None -> max 32 (4 * jobs)
  in
  let st =
    {
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      queue = Queue.create ();
      capacity;
      next_index = 0;
      closed = false;
      stop_at = max_int;
      failed = Hashtbl.create 8;
      quarantined = [];
    }
  in
  (* Each slot is written by exactly one worker and read after the join:
     no locking needed. *)
  let results = Array.make jobs [] in
  let busy = Array.make jobs 0.0 in
  let worker wid =
    let rec loop () =
      Mutex.lock st.mutex;
      while Queue.is_empty st.queue && not st.closed do
        Condition.wait st.not_empty st.mutex
      done;
      if Queue.is_empty st.queue then Mutex.unlock st.mutex (* closed: exit *)
      else begin
        let i, item = Queue.pop st.queue in
        Condition.signal st.not_full;
        (* A job beyond an already-known stop can never influence the
           outcome (the final stop index only decreases): skip it. *)
        let relevant = i <= st.stop_at in
        Mutex.unlock st.mutex;
        if relevant then begin
          let t0 = Unix.gettimeofday () in
          match work ~worker:wid i item with
          | r ->
            busy.(wid) <- busy.(wid) +. (Unix.gettimeofday () -. t0);
            results.(wid) <- (i, wid, r) :: results.(wid);
            (match on_result with
             | Some f -> ( try f i r with _ -> ())
             | None -> ());
            if is_stop r then begin
              Mutex.lock st.mutex;
              if i < st.stop_at then begin
                st.stop_at <- i;
                (* The producer may be blocked on a full queue. *)
                Condition.broadcast st.not_full
              end;
              Mutex.unlock st.mutex
            end
          | exception e ->
            (* Fail soft.  First failure of this job: re-queue it at the
               back — everything already queued runs first, a crude but
               deterministic backoff — in case the crash was transient
               (OOM pressure, a flaky heuristic).  Second failure:
               quarantine the position and keep going; the caller
               decides what a hole in the result stream means.  The
               re-queueing worker itself loops back, so a job re-queued
               after [closed] can never be stranded even if every other
               worker has already exited on the empty queue. *)
            busy.(wid) <- busy.(wid) +. (Unix.gettimeofday () -. t0);
            let msg = Printexc.to_string e in
            Mutex.lock st.mutex;
            (match Hashtbl.find_opt st.failed i with
             | None ->
               Hashtbl.replace st.failed i msg;
               Queue.push (i, item) st.queue;
               Condition.signal st.not_empty
             | Some first ->
               let msg =
                 if String.equal first msg then msg
                 else Printf.sprintf "%s (first attempt: %s)" msg first
               in
               st.quarantined <- (i, msg) :: st.quarantined);
            Mutex.unlock st.mutex
        end;
        loop ()
      end
    in
    loop ()
  in
  let workers = Array.init jobs (fun wid -> Domain.spawn (fun () -> worker wid)) in
  let push item =
    Mutex.lock st.mutex;
    while Queue.length st.queue >= st.capacity && st.stop_at >= st.next_index do
      Condition.wait st.not_full st.mutex
    done;
    (* Every index after a stop is irrelevant: cut the producer off. *)
    let accepted = st.stop_at >= st.next_index in
    if accepted then begin
      Queue.push (st.next_index, item) st.queue;
      st.next_index <- st.next_index + 1;
      Condition.signal st.not_empty
    end;
    Mutex.unlock st.mutex;
    accepted
  in
  let completed =
    match produce ~push with
    | completed -> completed
    | exception e ->
      (* Unblock and join the workers before re-raising, or the domains
         leak and the process hangs on exit. *)
      Mutex.lock st.mutex;
      st.closed <- true;
      Condition.broadcast st.not_empty;
      Mutex.unlock st.mutex;
      Array.iter Domain.join workers;
      raise e
  in
  Mutex.lock st.mutex;
  st.closed <- true;
  Condition.broadcast st.not_empty;
  Mutex.unlock st.mutex;
  Array.iter Domain.join workers;
  let all = Array.fold_left (fun acc l -> List.rev_append l acc) [] results in
  let first_stop =
    List.fold_left
      (fun acc (i, _, r) ->
        if is_stop r then Some (match acc with Some j -> min i j | None -> i) else acc)
      None all
  in
  let quarantined =
    List.sort (fun (i, _) (j, _) -> compare i j) st.quarantined
  in
  { results = all; completed; first_stop; busy; quarantined }
