(** Counterexample reconstruction: turns a satisfying assignment of a
    schema query back into concrete parameters and an (accelerated) run
    of the counter system. *)

type step = {
  rule : string;
  factor : int;
  counters : (string * int) list;  (** configuration after the step *)
  shared : (string * int) list;
}

type t = {
  spec_name : string;
  schema : string;  (** rendered schema *)
  params : (string * int) list;
  init_counters : (string * int) list;
  steps : step list;  (** only steps with a positive factor *)
}

(** [of_model u spec schema encoded model] replays the model.  Also
    re-validates internally that counters stay non-negative.
    @raise Failure if the model does not replay (a checker bug). *)
val of_model :
  Universe.t ->
  Ta.Spec.t ->
  Schema.t ->
  Encode.encoded ->
  (int * Numbers.Bigint.t) list ->
  t

val pp : Format.formatter -> t -> unit

(** [rename ?rule ?location ?shared w] maps every rule name, location
    (counter key) and shared-variable name through the given functions
    (identity by default); the rendered [schema] string is untouched.
    Used to de-mangle witnesses over {!Ta.Rta}-unrolled automata back to
    [(round, template name)] form — e.g. with
    [Ta.Rta.explain_name]-style renamers — and, composed with the
    inverse mangling, to round-trip them (pinned by test/test_rta.ml). *)
val rename :
  ?rule:(string -> string) ->
  ?location:(string -> string) ->
  ?shared:(string -> string) ->
  t ->
  t
