module J = Jsonc

let version = 4

type delta = {
  d_checked : int;
  d_skipped : int;
  d_pruned : int;
  d_core_pruned : int;
  d_static : int;
  d_hits : int;
  d_slots : int;
  d_steps : int;
  d_encode_us : int;
  d_solve_us : int;
  d_cache_hits : int;
  d_cache_misses : int;
  d_cache_cross : int;
  d_wins_interval : int;
  d_wins_cooper : int;
  d_wins_simplex : int;
}

let zero_delta =
  { d_checked = 0; d_skipped = 0; d_pruned = 0; d_core_pruned = 0; d_static = 0;
    d_hits = 0; d_slots = 0; d_steps = 0; d_encode_us = 0; d_solve_us = 0;
    d_cache_hits = 0; d_cache_misses = 0; d_cache_cross = 0;
    d_wins_interval = 0; d_wins_cooper = 0; d_wins_simplex = 0 }

let add_delta a b =
  {
    d_checked = a.d_checked + b.d_checked;
    d_skipped = a.d_skipped + b.d_skipped;
    d_pruned = a.d_pruned + b.d_pruned;
    d_core_pruned = a.d_core_pruned + b.d_core_pruned;
    d_static = a.d_static + b.d_static;
    d_hits = a.d_hits + b.d_hits;
    d_slots = a.d_slots + b.d_slots;
    d_steps = a.d_steps + b.d_steps;
    d_encode_us = a.d_encode_us + b.d_encode_us;
    d_solve_us = a.d_solve_us + b.d_solve_us;
    d_cache_hits = a.d_cache_hits + b.d_cache_hits;
    d_cache_misses = a.d_cache_misses + b.d_cache_misses;
    d_cache_cross = a.d_cache_cross + b.d_cache_cross;
    d_wins_interval = a.d_wins_interval + b.d_wins_interval;
    d_wins_cooper = a.d_wins_cooper + b.d_wins_cooper;
    d_wins_simplex = a.d_wins_simplex + b.d_wins_simplex;
  }

type t = {
  fingerprint : string;
  frontier : int;
  checked : int;
  skipped : int;
  pruned : int;
  core_pruned : int;
  static : int;
  hits : int;
  slots : int;
  steps : int;
  encode_us : int;
  solve_us : int;
  elapsed_us : int;
  cache_hits : int;
  cache_misses : int;
  cache_cross : int;
  wins_interval : int;
  wins_cooper : int;
  wins_simplex : int;
  quarantined : (int * string) list;
}

let us_of_s s = int_of_float (s *. 1e6)
let s_of_us us = float_of_int us /. 1e6

let fingerprint ta spec =
  Digest.to_hex
    (Digest.string (Ta.Bymc.render ta ^ "\n" ^ Format.asprintf "%a" Ta.Spec.pp spec))

let fresh ~fingerprint =
  {
    fingerprint;
    frontier = 0;
    checked = 0;
    skipped = 0;
    pruned = 0;
    core_pruned = 0;
    static = 0;
    hits = 0;
    slots = 0;
    steps = 0;
    encode_us = 0;
    solve_us = 0;
    elapsed_us = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_cross = 0;
    wins_interval = 0;
    wins_cooper = 0;
    wins_simplex = 0;
    quarantined = [];
  }

let apply j ~span delta =
  {
    j with
    frontier = j.frontier + span;
    checked = j.checked + delta.d_checked;
    skipped = j.skipped + delta.d_skipped;
    pruned = j.pruned + delta.d_pruned;
    core_pruned = j.core_pruned + delta.d_core_pruned;
    static = j.static + delta.d_static;
    hits = j.hits + delta.d_hits;
    slots = j.slots + delta.d_slots;
    steps = j.steps + delta.d_steps;
    encode_us = j.encode_us + delta.d_encode_us;
    solve_us = j.solve_us + delta.d_solve_us;
    cache_hits = j.cache_hits + delta.d_cache_hits;
    cache_misses = j.cache_misses + delta.d_cache_misses;
    cache_cross = j.cache_cross + delta.d_cache_cross;
    wins_interval = j.wins_interval + delta.d_wins_interval;
    wins_cooper = j.wins_cooper + delta.d_wins_cooper;
    wins_simplex = j.wins_simplex + delta.d_wins_simplex;
  }

(* ------------------------------------------------------------------- *)
(* Canonical-JSON codec.  All times are integer microseconds: the codec
   has no float form, and integers make the encoding canonical (the CI
   gate `cmp <(jq -c .) file` depends on a unique rendering). *)

let to_json (j : t) =
  J.Obj
    [
      ("version", J.Int version);
      ("fingerprint", J.Str j.fingerprint);
      ("frontier", J.Int j.frontier);
      ("checked", J.Int j.checked);
      ("skipped", J.Int j.skipped);
      ("pruned", J.Int j.pruned);
      ("core_pruned", J.Int j.core_pruned);
      ("static", J.Int j.static);
      ("hits", J.Int j.hits);
      ("slots", J.Int j.slots);
      ("steps", J.Int j.steps);
      ("encode_us", J.Int j.encode_us);
      ("solve_us", J.Int j.solve_us);
      ("elapsed_us", J.Int j.elapsed_us);
      ("cache_hits", J.Int j.cache_hits);
      ("cache_misses", J.Int j.cache_misses);
      ("cache_cross", J.Int j.cache_cross);
      ("wins_interval", J.Int j.wins_interval);
      ("wins_cooper", J.Int j.wins_cooper);
      ("wins_simplex", J.Int j.wins_simplex);
      ("quarantined",
       J.List
         (List.map (fun (pos, msg) -> J.List [ J.Int pos; J.Str msg ]) j.quarantined));
    ]

let of_json json =
  let m name = J.member name json in
  let v = J.to_int (m "version") in
  if v <> version then
    raise (J.Parse_error (Printf.sprintf "unsupported checkpoint version %d" v));
  {
    fingerprint = J.to_str (m "fingerprint");
    frontier = J.to_int (m "frontier");
    checked = J.to_int (m "checked");
    skipped = J.to_int (m "skipped");
    pruned = J.to_int (m "pruned");
    core_pruned = J.to_int (m "core_pruned");
    static = J.to_int (m "static");
    hits = J.to_int (m "hits");
    slots = J.to_int (m "slots");
    steps = J.to_int (m "steps");
    encode_us = J.to_int (m "encode_us");
    solve_us = J.to_int (m "solve_us");
    elapsed_us = J.to_int (m "elapsed_us");
    cache_hits = J.to_int (m "cache_hits");
    cache_misses = J.to_int (m "cache_misses");
    cache_cross = J.to_int (m "cache_cross");
    wins_interval = J.to_int (m "wins_interval");
    wins_cooper = J.to_int (m "wins_cooper");
    wins_simplex = J.to_int (m "wins_simplex");
    quarantined =
      List.map
        (fun entry ->
          match J.to_list entry with
          | [ pos; msg ] -> (J.to_int pos, J.to_str msg)
          | _ -> raise (J.Parse_error "malformed quarantine entry"))
        (J.to_list (m "quarantined"));
  }

(* Atomic write: the whole document goes to a sibling temp file, then a
   rename over the target.  A crash mid-write leaves either the previous
   contents or a stray .tmp, never a torn file.  Shared with the
   persistent discharge cache ({!Cachefile}), which has the same
   crash-safety contract as the checkpoint journal. *)
(* Test-only crash injection: called with the stage name ("written",
   "synced", "renamed") as the write progresses, so a test can kill the
   process between any two stages and assert the previous contents
   survived intact. *)
let atomic_write_failpoint : (string -> unit) option ref = ref None

let fp stage = match !atomic_write_failpoint with Some f -> f stage | None -> ()

let atomic_write ~path contents =
  let tmp = path ^ ".tmp" in
  (* Durability, not just atomicity: fsync the temp file before the
     rename (a rename can be durable before the data it points at) and
     fsync the containing directory after it (the directory entry is
     what makes the new file name itself survive a power cut). *)
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Bytes.unsafe_of_string contents in
      let rec write off =
        if off < Bytes.length b then
          write (off + Unix.write fd b off (Bytes.length b - off))
      in
      write 0;
      fp "written";
      Unix.fsync fd);
  fp "synced";
  Sys.rename tmp path;
  fp "renamed";
  let dir = Filename.dirname path in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()  (* e.g. a platform without O_RDONLY dirs *)
  | dfd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ())

let save ~path j = atomic_write ~path (J.to_string (to_json j) ^ "\n")

let load ~path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "no checkpoint at %s" path)
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> Error msg
    | contents -> (
      match of_json (J.of_string (String.trim contents)) with
      | j -> Ok j
      | exception J.Parse_error msg ->
        Error (Printf.sprintf "corrupt checkpoint %s: %s" path msg))

let validate ~fingerprint:fp j =
  if String.equal j.fingerprint fp then Ok j
  else
    Error
      (Printf.sprintf
         "checkpoint fingerprint mismatch (checkpoint %s, current model %s): refusing \
          to resume against a different automaton/property"
         j.fingerprint fp)

(* ------------------------------------------------------------------- *)
(* Mutex-protected frontier tracker.  Workers report completed preorder
   spans out of order; the tracker folds them into the journal as soon
   as they are contiguous with the frontier, and persists the last
   all-good journal every [every] consumed positions.  A quarantined
   position is a permanent hole: the frontier never advances past it,
   so a resumed run re-attempts it (and everything after it) while the
   stats of all folded positions are never double-counted. *)

module Tracker = struct
  type tracker = {
    mutex : Mutex.t;
    mutable journal : t;  (* last all-good state: totals cover [0, frontier) *)
    mutable pending : (int * (int * delta)) list;  (* start -> (span, delta) *)
    mutable holes : (int * string) list;  (* quarantined positions *)
    mutable since_flush : int;
    path : string option;
    every : int;
    elapsed_us : unit -> int;
  }

  let create ~base ?path ~every ~elapsed_us () =
    {
      mutex = Mutex.create ();
      journal = base;
      pending = [];
      holes = [];
      since_flush = 0;
      path;
      every = max 1 every;
      elapsed_us;
    }

  let flush_locked tr =
    match tr.path with
    | None -> ()
    | Some path ->
      tr.since_flush <- 0;
      save ~path { tr.journal with elapsed_us = tr.elapsed_us () }

  (* Fold every pending span now contiguous with the frontier. *)
  let advance_locked tr =
    let rec go () =
      if not (List.mem_assoc tr.journal.frontier tr.holes) then
        match List.assoc_opt tr.journal.frontier tr.pending with
        | None -> ()
        | Some (span, delta) ->
          tr.pending <- List.remove_assoc tr.journal.frontier tr.pending;
          tr.journal <- apply tr.journal ~span delta;
          tr.since_flush <- tr.since_flush + span;
          go ()
    in
    go ();
    if tr.since_flush >= tr.every then flush_locked tr

  let note tr ~start ~span delta =
    Mutex.lock tr.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock tr.mutex)
      (fun () ->
        if start >= tr.journal.frontier then begin
          (* Replace, don't accumulate: a retried worker job re-reports
             the spans its first attempt already noted; they are
             deterministic replays, and counting both would advance the
             frontier past positions never discharged. *)
          tr.pending <- (start, (span, delta)) :: List.remove_assoc start tr.pending;
          advance_locked tr
        end)

  let quarantine tr pos msg =
    Mutex.lock tr.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock tr.mutex)
      (fun () ->
        if not (List.mem_assoc pos tr.holes) then begin
          tr.holes <- (pos, msg) :: tr.holes;
          tr.journal <-
            { tr.journal with
              quarantined =
                List.sort compare ((pos, msg) :: tr.journal.quarantined) }
        end)

  let snapshot tr =
    Mutex.lock tr.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock tr.mutex)
      (fun () -> { tr.journal with elapsed_us = tr.elapsed_us () })

  let flush tr =
    Mutex.lock tr.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock tr.mutex) (fun () -> flush_locked tr)
end
