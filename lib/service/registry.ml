let resolve = function
  | "bv" | "bv-broadcast" -> Ok (Models.Bv_ta.automaton, Models.Bv_ta.all_specs)
  | "naive" -> Ok (Models.Naive_ta.automaton, Models.Naive_ta.table2_specs)
  | "simplified" -> Ok (Models.Simplified_ta.automaton, Models.Simplified_ta.all_specs)
  | "benor" | "ben-or" -> Ok (Models.Ben_or.automaton, Models.Ben_or.all_specs)
  | key -> (
    match Models.Zoo.find key with
    | Some e -> Ok (e.Models.Zoo.automaton, List.map fst e.Models.Zoo.specs)
    | None ->
      Error
        (Printf.sprintf "unknown model %S (expected bv|naive|simplified|benor or a zoo key: %s)"
           key (String.concat "|" Models.Zoo.keys)))

let find_specs key spec_name =
  match resolve key with
  | Error _ as e -> e
  | Ok (ta, specs) -> (
    match spec_name with
    | None -> Ok (ta, specs)
    | Some n -> (
      match List.find_opt (fun (s : Ta.Spec.t) -> s.name = n) specs with
      | Some s -> Ok (ta, [ s ])
      | None ->
        Error
          (Printf.sprintf "unknown property %S for model %s; available: %s" n key
             (String.concat ", " (List.map (fun (s : Ta.Spec.t) -> s.name) specs)))))

let keys = [ "bv"; "naive"; "simplified"; "benor" ] @ Models.Zoo.keys
