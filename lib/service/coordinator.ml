module J = Jsonc

type config = {
  state_dir : string;
  nworkers : int;
  slice_size : int;
  retry_budget : int;
  hb_timeout : float;
  default_cap : int;
  worker : Worker.config;
}

let socket_path dir = Filename.concat dir "daemon.sock"
let manifest_path dir = Filename.concat dir "jobs.json"
let job_ckpt dir id = Filename.concat dir (Printf.sprintf "job-%d.ckpt.json" id)

let slice_ckpt dir id start =
  Filename.concat dir (Printf.sprintf "job-%d.slice-%d.ckpt.json" id start)

(* ------------------------------------------------------------------- *)
(* Job state. *)

type decided = {
  d_pos : int;
  d_okind : string;  (* "violated" | "aborted" *)
  d_witness : string option;
  d_reason : string option;
  d_schemas : int;
}

type slice_state = Queued of float (* not before *) | Running of int | Sdone

type slice = {
  sl_start : int;
  sl_stop : int;
  mutable sl_state : slice_state;
  mutable sl_retries : int;
  mutable sl_progress : int;  (* durable frontier high-water mark *)
}

type job = {
  j_id : int;
  j_model : string;
  j_spec : string;
  j_cap : int;
  j_tracker : Holistic.Journal.Tracker.tracker option;  (* None: broken model *)
  mutable j_slices : slice list;  (* ascending by start *)
  mutable j_issued : int;  (* next position not yet cut into a slice *)
  mutable j_end : int option;  (* min over completed slices' end hints *)
  mutable j_decided : decided option;  (* earliest deciding position *)
  mutable j_holes : (int * string) list;  (* ascending *)
  mutable j_covered : (int * int) list;  (* merged, ascending intervals *)
  mutable j_outcome : Protocol.outcome option;
  mutable j_schemas : int;
  mutable j_waiters : Unix.file_descr list;
}

(* Merged-interval bookkeeping: which absolute positions are accounted
   for (noted spans plus quarantined holes).  The frontier the verdict
   rules use is the covered prefix starting at 0. *)
let add_interval ivs a b =
  if b <= a then ivs
  else
    let rec go = function
      | [] -> [ (a, b) ]
      | (x, y) :: rest when b < x -> (a, b) :: (x, y) :: rest
      | (x, y) :: rest when y < a -> (x, y) :: go rest
      | (x, y) :: rest ->
        (* overlap/adjacency: absorb and keep merging *)
        let rec absorb a b = function
          | (x, y) :: rest when x <= b -> absorb a (max b y) rest
          | rest -> (a, b) :: rest
        in
        absorb (min a x) (max b y) rest
    in
    go ivs

let covered_prefix job =
  match job.j_covered with (0, e) :: _ -> e | _ -> 0

let delta_of_journal (j : Holistic.Journal.t) : Holistic.Journal.delta =
  {
    d_checked = j.checked;
    d_skipped = j.skipped;
    d_pruned = j.pruned;
    d_core_pruned = j.core_pruned;
    d_static = j.static;
    d_hits = j.hits;
    d_slots = j.slots;
    d_steps = j.steps;
    d_encode_us = j.encode_us;
    d_solve_us = j.solve_us;
    d_cache_hits = j.cache_hits;
    d_cache_misses = j.cache_misses;
    d_cache_cross = j.cache_cross;
    d_wins_interval = j.wins_interval;
    d_wins_cooper = j.wins_cooper;
    d_wins_simplex = j.wins_simplex;
  }

(* ------------------------------------------------------------------- *)
(* Worker slots. *)

type wslot = {
  w_idx : int;
  mutable w_pid : int;
  mutable w_fd : Unix.file_descr;
  mutable w_reader : Lineio.reader;
  mutable w_task : (int * int * int) option;  (* job id, start, stop *)
  mutable w_pos : int;
  mutable w_advance : float;  (* last time w_pos changed *)
  mutable w_alive : bool;
}

type client = {
  c_fd : Unix.file_descr;
  c_reader : Lineio.reader;
  mutable c_open : bool;
}

type state = {
  cfg : config;
  listen_fd : Unix.file_descr;
  workers : wslot option array;
  mutable clients : client list;
  jobs : (int, job) Hashtbl.t;
  mutable order : int list;  (* job ids, submission order *)
  mutable next_id : int;
  mutable rr : int;  (* round-robin cursor over jobs for assignment *)
  mutable draining : bool;
  t0 : float;
}

let terminate = ref false

(* ------------------------------------------------------------------- *)
(* Manifest: terminal results survive restarts; unfinished jobs are
   re-created and resumed from their job checkpoint journal. *)

let manifest_json st =
  let jobs =
    List.rev_map
      (fun id ->
        let j = Hashtbl.find st.jobs id in
        J.Obj
          [
            ("id", J.Int j.j_id);
            ("model", J.Str j.j_model);
            ("spec", J.Str j.j_spec);
            ("cap", J.Int j.j_cap);
            ( "outcome",
              match j.j_outcome with
              | None -> J.Null
              | Some o -> Protocol.outcome_to_json o );
            ("schemas", J.Int j.j_schemas);
          ])
      st.order
  in
  J.Obj
    [ ("version", J.Int 1); ("next_id", J.Int st.next_id); ("jobs", J.List jobs) ]

let save_manifest st =
  Holistic.Journal.atomic_write ~path:(manifest_path st.cfg.state_dir)
    (J.to_string (manifest_json st))

(* ------------------------------------------------------------------- *)
(* Job lifecycle. *)

let make_tracker st ~id ~fingerprint ~resume =
  let path = job_ckpt st.cfg.state_dir id in
  let base =
    if resume && Sys.file_exists path then
      match Holistic.Journal.load ~path with
      | Ok j when j.Holistic.Journal.fingerprint = fingerprint ->
        (* Quarantined holes are re-attempted on restart, exactly like
           the in-process resume path. *)
        { j with Holistic.Journal.quarantined = [] }
      | _ -> Holistic.Journal.fresh ~fingerprint
    else Holistic.Journal.fresh ~fingerprint
  in
  let elapsed_us () =
    base.Holistic.Journal.elapsed_us
    + Holistic.Journal.us_of_s (Unix.gettimeofday () -. st.t0)
  in
  let tr =
    Holistic.Journal.Tracker.create ~base ~path ~every:1 ~elapsed_us ()
  in
  (tr, base.Holistic.Journal.frontier)

let create_job st ~id ~model ~spec_name ~cap ~resume =
  match Registry.find_specs model (Some spec_name) with
  | Error e ->
    {
      j_id = id;
      j_model = model;
      j_spec = spec_name;
      j_cap = cap;
      j_tracker = None;
      j_slices = [];
      j_issued = 0;
      j_end = None;
      j_decided = None;
      j_holes = [];
      j_covered = [];
      j_outcome = Some (Protocol.Failed e);
      j_schemas = 0;
      j_waiters = [];
    }
  | Ok (ta, specs) ->
    let spec = List.hd specs in
    let fingerprint = Holistic.Journal.fingerprint ta spec in
    let tracker, frontier = make_tracker st ~id ~fingerprint ~resume in
    {
      j_id = id;
      j_model = model;
      j_spec = spec_name;
      j_cap = cap;
      j_tracker = Some tracker;
      j_slices = [];
      j_issued = frontier;
      j_end = None;
      j_decided = None;
      j_holes = [];
      j_covered = add_interval [] 0 frontier;
      j_outcome = None;
      j_schemas = 0;
      j_waiters = [];
    }

let job_row j =
  let outcome = Option.value j.j_outcome ~default:(Protocol.Failed "incomplete") in
  Protocol.row ~model:j.j_model ~spec:j.j_spec ~outcome ~schemas:j.j_schemas

let notify_waiters j =
  let reply =
    J.Obj
      [
        ("t", J.Str "job");
        ("ok", J.Bool true);
        ("id", J.Int j.j_id);
        ("row", job_row j);
      ]
  in
  List.iter
    (fun fd -> try Lineio.send fd reply with Unix.Unix_error _ -> ())
    (List.rev j.j_waiters);
  j.j_waiters <- []

let cleanup_slices st j =
  List.iter
    (fun sl ->
      (match sl.sl_state with Queued _ -> sl.sl_state <- Sdone | _ -> ());
      let p = slice_ckpt st.cfg.state_dir j.j_id sl.sl_start in
      if Sys.file_exists p then try Sys.remove p with Sys_error _ -> ())
    j.j_slices

let finish st j outcome schemas =
  if j.j_outcome = None then begin
    j.j_outcome <- Some outcome;
    j.j_schemas <- schemas;
    Option.iter Holistic.Journal.Tracker.flush j.j_tracker;
    cleanup_slices st j;
    notify_waiters j;
    save_manifest st
  end

let budget_reason cap = Printf.sprintf "schema budget exceeded (> %d schemas)" cap

(* Verdict composition, mirroring the in-process [Checker.partialize]
   fail-soft rule: a decision preceding every hole decides normally;
   otherwise the holes may hide the true first deciding schema and the
   job degrades to [Partial]. *)
let try_finalize st j =
  if j.j_outcome = None then begin
    let cp = covered_prefix j in
    let holes = j.j_holes in
    let q0 = match holes with (p, _) :: _ -> Some p | [] -> None in
    let checked_below p =
      p - List.length (List.filter (fun (h, _) -> h < p) holes)
    in
    match j.j_decided with
    | Some d when cp >= d.d_pos ->
      let normal =
        match d.d_okind with
        | "violated" -> Protocol.Violated (Option.value d.d_witness ~default:"")
        | _ -> Protocol.Aborted (Option.value d.d_reason ~default:"aborted")
      in
      (match q0 with
      | Some h when d.d_pos >= h ->
        let reason =
          match d.d_okind with
          | "violated" ->
            Printf.sprintf
              "violation witness found at position %d, after quarantined position \
               %d (an earlier violation is possible)"
              d.d_pos h
          | _ -> Option.value d.d_reason ~default:"aborted"
        in
        finish st j (Protocol.Partial (holes, reason)) (checked_below d.d_pos)
      | _ -> finish st j normal d.d_schemas)
    | _ -> (
      match j.j_end with
      | Some e when cp >= e -> (
        match holes with
        | [] -> finish st j Protocol.Holds e
        | _ ->
          finish st j
            (Protocol.Partial (holes, "every non-quarantined schema is unsatisfiable"))
            (checked_below e))
      | _ ->
        if j.j_end = None && cp >= j.j_cap then
          match holes with
          | [] -> finish st j (Protocol.Aborted (budget_reason j.j_cap)) j.j_cap
          | _ ->
            finish st j
              (Protocol.Partial (holes, budget_reason j.j_cap))
              (checked_below j.j_cap))
  end

(* ------------------------------------------------------------------- *)
(* Slice issuance and result folding. *)

let outstanding j =
  List.length
    (List.filter (fun sl -> sl.sl_state <> Sdone) j.j_slices)

let effective_cap j =
  let c = j.j_cap in
  let c = match j.j_end with Some e -> min c e | None -> c in
  match j.j_decided with Some d -> min c (d.d_pos + 1) | None -> c

let ensure_issued st j =
  if j.j_outcome = None then begin
    let window = st.cfg.nworkers + 2 in
    let cap = effective_cap j in
    while outstanding j < window && j.j_issued < cap do
      let stop = min (j.j_issued + st.cfg.slice_size) cap in
      j.j_slices <-
        j.j_slices
        @ [
            {
              sl_start = j.j_issued;
              sl_stop = stop;
              sl_state = Queued 0.0;
              sl_retries = 0;
              sl_progress = j.j_issued;
            };
          ];
      j.j_issued <- stop
    done
  end

let note_span j ~start ~frontier delta =
  if frontier > start then begin
    Option.iter
      (fun tr -> Holistic.Journal.Tracker.note tr ~start ~span:(frontier - start) delta)
      j.j_tracker;
    j.j_covered <- add_interval j.j_covered start frontier
  end

let quarantine_hole st j pos msg =
  if not (List.mem_assoc pos j.j_holes) then begin
    j.j_holes <- List.sort compare ((pos, msg) :: j.j_holes);
    Option.iter (fun tr -> Holistic.Journal.Tracker.quarantine tr pos msg) j.j_tracker;
    j.j_covered <- add_interval j.j_covered pos (pos + 1)
  end;
  ignore st

let record_decided j (d : decided) =
  match j.j_decided with
  | Some prev when prev.d_pos <= d.d_pos -> ()
  | _ -> j.j_decided <- Some d

let find_slice j start stop =
  List.find_opt (fun sl -> sl.sl_start = start && sl.sl_stop = stop) j.j_slices

let handle_done st msg =
  let id = J.to_int (J.member "job" msg) in
  let start = J.to_int (J.member "start" msg) in
  let stop = J.to_int (J.member "stop" msg) in
  match Hashtbl.find_opt st.jobs id with
  | None -> ()
  | Some j -> (
    match find_slice j start stop with
    | None -> ()
    | Some sl ->
      sl.sl_state <- Sdone;
      (let p = slice_ckpt st.cfg.state_dir id start in
       if Sys.file_exists p then try Sys.remove p with Sys_error _ -> ());
      if j.j_outcome = None then begin
        let journal () =
          Holistic.Journal.of_json (J.member "journal" msg)
        in
        (match J.to_str (J.member "status" msg) with
        | "more" ->
          let sj = journal () in
          let frontier = J.to_int (J.member "frontier" msg) in
          note_span j ~start ~frontier (delta_of_journal sj)
        | "complete" ->
          let sj = journal () in
          let frontier = J.to_int (J.member "frontier" msg) in
          note_span j ~start ~frontier (delta_of_journal sj);
          j.j_end <-
            Some
              (match j.j_end with
              | Some e -> min e frontier
              | None -> frontier)
        | "decided" ->
          let sj = journal () in
          let frontier = J.to_int (J.member "frontier" msg) in
          note_span j ~start ~frontier (delta_of_journal sj);
          record_decided j
            {
              d_pos = J.to_int (J.member "pos" msg);
              d_okind = J.to_str (J.member "okind" msg);
              d_witness = Option.map J.to_str (J.member_opt "witness" msg);
              d_reason = Option.map J.to_str (J.member_opt "reason" msg);
              d_schemas = J.to_int (J.member "schemas" msg);
            }
        | "partial" ->
          (* The checker quarantined positions in-process (a raising
             discharge crashed twice); adopt its holes verbatim. *)
          let sj = journal () in
          let frontier = J.to_int (J.member "frontier" msg) in
          List.iter
            (fun (pos, m) -> quarantine_hole st j pos m)
            sj.Holistic.Journal.quarantined;
          note_span j ~start ~frontier (delta_of_journal sj);
          (* Positions past the first hole up to [stop] were walked by
             the slice's own tracker but never folded; account them so
             the covered prefix can pass the hole. *)
          j.j_covered <- add_interval j.j_covered start stop
        | "error" ->
          finish st j (Protocol.Failed (J.to_str (J.member "error" msg))) 0
        | _ -> ());
        try_finalize st j
      end)

(* A worker died (or was SIGKILLed) while running [job, start, stop).
   Durable progress resets the retry budget; an exhausted budget
   quarantines one hole at the last durable frontier and re-queues the
   remainder of the slice. *)
let handle_lost_slice st (id, start, stop) =
  match Hashtbl.find_opt st.jobs id with
  | None -> ()
  | Some j -> (
    match find_slice j start stop with
    | None -> ()
    | Some sl ->
      if j.j_outcome <> None then sl.sl_state <- Sdone
      else begin
        let path = slice_ckpt st.cfg.state_dir id start in
        let frontier, delta =
          match Holistic.Journal.load ~path with
          | Ok sj -> (sj.Holistic.Journal.frontier, delta_of_journal sj)
          | Error _ -> (start, Holistic.Journal.zero_delta)
        in
        if frontier > sl.sl_progress then begin
          sl.sl_progress <- frontier;
          sl.sl_retries <- 0
        end
        else sl.sl_retries <- sl.sl_retries + 1;
        if sl.sl_retries > st.cfg.retry_budget then begin
          let pos = sl.sl_progress in
          sl.sl_state <- Sdone;
          note_span j ~start ~frontier:pos delta;
          quarantine_hole st j pos
            (Printf.sprintf
               "worker crashed repeatedly at position %d (retry budget of %d \
                exhausted)"
               pos st.cfg.retry_budget);
          (if Sys.file_exists path then try Sys.remove path with Sys_error _ -> ());
          if pos + 1 < stop then
            j.j_slices <-
              j.j_slices
              @ [
                  {
                    sl_start = pos + 1;
                    sl_stop = stop;
                    sl_state = Queued 0.0;
                    sl_retries = 0;
                    sl_progress = pos + 1;
                  };
                ];
          try_finalize st j
        end
        else
          (* Churn that makes durable progress is re-queued immediately;
             only attempts that burned a retry pay exponential backoff. *)
          let backoff =
            if sl.sl_retries = 0 then 0.0
            else 0.25 *. (2.0 ** float_of_int (sl.sl_retries - 1))
          in
          sl.sl_state <- Queued (Unix.gettimeofday () +. backoff)
      end)

(* ------------------------------------------------------------------- *)
(* Worker supervision. *)

let spawn_worker st idx =
  flush stdout;
  flush stderr;
  let parent_fd, child_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  match Unix.fork () with
  | 0 ->
    (* Child: drop every coordinator fd, then become a worker. *)
    (try Unix.close parent_fd with Unix.Unix_error _ -> ());
    (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
    List.iter
      (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
      st.clients;
    Array.iter
      (function
        | Some w when w.w_alive -> (
          try Unix.close w.w_fd with Unix.Unix_error _ -> ())
        | _ -> ())
      st.workers;
    Worker.main st.cfg.worker child_fd
  | pid ->
    Unix.close child_fd;
    Unix.set_nonblock parent_fd;
    let slot =
      {
        w_idx = idx;
        w_pid = pid;
        w_fd = parent_fd;
        w_reader = Lineio.reader parent_fd;
        w_task = None;
        w_pos = -1;
        w_advance = Unix.gettimeofday ();
        w_alive = true;
      }
    in
    st.workers.(idx) <- Some slot;
    slot

let reap st =
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | 0, _ -> ()
    | pid, _ ->
      Array.iter
        (function
          | Some w when w.w_alive && w.w_pid = pid ->
            w.w_alive <- false;
            (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
            Option.iter (handle_lost_slice st) w.w_task;
            w.w_task <- None
          | _ -> ())
        st.workers;
      go ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let check_stalls st =
  let now = Unix.gettimeofday () in
  Array.iter
    (function
      | Some w when w.w_alive && w.w_task <> None ->
        if now -. w.w_advance > st.cfg.hb_timeout then begin
          (* Hung discharge: SIGKILL; the reaper re-queues the slice. *)
          try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ()
        end
      | _ -> ())
    st.workers

let respawn st =
  if not st.draining then
    Array.iteri
      (fun i slot ->
        match slot with
        | Some w when w.w_alive -> ()
        | _ -> ignore (spawn_worker st i))
      st.workers

(* Pull the next runnable slice for an idle worker, round-robin over
   jobs so one long job doesn't starve the rest of the queue. *)
let next_slice st =
  let ids = Array.of_list (List.rev st.order) in
  let n = Array.length ids in
  let now = Unix.gettimeofday () in
  let rec go k =
    if k >= n then None
    else
      let j = Hashtbl.find st.jobs ids.((st.rr + k) mod n) in
      if j.j_outcome <> None then go (k + 1)
      else
        let candidates =
          List.filter
            (fun sl -> match sl.sl_state with Queued t -> t <= now | _ -> false)
            j.j_slices
        in
        match
          List.sort (fun a b -> compare a.sl_start b.sl_start) candidates
        with
        | sl :: _ ->
          st.rr <- (st.rr + k + 1) mod n;
          Some (j, sl)
        | [] -> go (k + 1)
  in
  if n = 0 then None else go 0

let assign st =
  Array.iter
    (function
      | Some w when w.w_alive && w.w_task = None -> (
        match next_slice st with
        | None -> ()
        | Some (j, sl) ->
          let ckpt = slice_ckpt st.cfg.state_dir j.j_id sl.sl_start in
          let msg =
            J.Obj
              [
                ("t", J.Str "slice");
                ("job", J.Int j.j_id);
                ("model", J.Str j.j_model);
                ("spec", J.Str j.j_spec);
                ("start", J.Int sl.sl_start);
                ("stop", J.Int sl.sl_stop);
                ("ckpt", J.Str ckpt);
              ]
          in
          (try
             Lineio.send w.w_fd msg;
             sl.sl_state <- Running w.w_idx;
             w.w_task <- Some (j.j_id, sl.sl_start, sl.sl_stop);
             w.w_pos <- -1;
             w.w_advance <- Unix.gettimeofday ()
           with Unix.Unix_error _ ->
             (* Worker socket is gone; the reaper will requeue. *)
             ()))
      | _ -> ())
    st.workers

let handle_worker_line st w line =
  match J.of_string line with
  | exception J.Parse_error _ -> ()
  | msg -> (
    match J.to_str (J.member "t" msg) with
    | "hb" ->
      let pos = J.to_int (J.member "pos" msg) in
      if pos <> w.w_pos then begin
        w.w_pos <- pos;
        w.w_advance <- Unix.gettimeofday ()
      end
    | "done" ->
      w.w_task <- None;
      w.w_pos <- -1;
      w.w_advance <- Unix.gettimeofday ();
      handle_done st msg
    | _ -> ())

(* ------------------------------------------------------------------- *)
(* Client protocol. *)

let job_status_json st j =
  let frontier =
    match j.j_tracker with
    | Some tr -> (Holistic.Journal.Tracker.snapshot tr).Holistic.Journal.frontier
    | None -> 0
  in
  ignore st;
  J.Obj
    [
      ("id", J.Int j.j_id);
      ("model", J.Str j.j_model);
      ("spec", J.Str j.j_spec);
      ("done", J.Bool (j.j_outcome <> None));
      ("frontier", J.Int frontier);
      ("row", if j.j_outcome <> None then job_row j else J.Null);
    ]

let status_json st =
  let jobs = List.rev_map (fun id -> job_status_json st (Hashtbl.find st.jobs id)) st.order in
  let workers =
    Array.to_list st.workers
    |> List.filter_map (function
         | Some w when w.w_alive ->
           Some
             (J.Obj
                [
                  ("pid", J.Int w.w_pid);
                  ( "task",
                    match w.w_task with
                    | None -> J.Null
                    | Some (id, start, stop) ->
                      J.Obj
                        [
                          ("job", J.Int id);
                          ("start", J.Int start);
                          ("stop", J.Int stop);
                        ] );
                ])
         | _ -> None)
  in
  J.Obj
    [ ("ok", J.Bool true); ("jobs", J.List jobs); ("workers", J.List workers) ]

let submit st msg =
  let model = J.to_str (J.member "model" msg) in
  let spec_name = Option.map J.to_str (J.member_opt "spec" msg) in
  let cap =
    match J.member_opt "max_schemas" msg with
    | Some v -> J.to_int v
    | None -> st.cfg.default_cap
  in
  match Registry.find_specs model spec_name with
  | Error e -> J.Obj [ ("ok", J.Bool false); ("error", J.Str e) ]
  | Ok (_, specs) ->
    let ids =
      List.map
        (fun (s : Ta.Spec.t) ->
          let id = st.next_id in
          st.next_id <- id + 1;
          let j =
            create_job st ~id ~model ~spec_name:s.Ta.Spec.name ~cap ~resume:false
          in
          Hashtbl.replace st.jobs id j;
          st.order <- id :: st.order;
          id)
        specs
    in
    save_manifest st;
    J.Obj [ ("ok", J.Bool true); ("ids", J.List (List.map (fun i -> J.Int i) ids)) ]

let handle_client_line st c line =
  match J.of_string line with
  | exception J.Parse_error e ->
    (try Lineio.send c.c_fd (J.Obj [ ("ok", J.Bool false); ("error", J.Str e) ])
     with Unix.Unix_error _ -> ())
  | msg -> (
    let reply j = try Lineio.send c.c_fd j with Unix.Unix_error _ -> () in
    let with_job k =
      match Hashtbl.find_opt st.jobs (J.to_int (J.member "id" msg)) with
      | None -> reply (J.Obj [ ("ok", J.Bool false); ("error", J.Str "unknown job id") ])
      | Some j -> k j
    in
    match J.to_str (J.member "t" msg) with
    | "ping" ->
      reply
        (J.Obj
           [ ("ok", J.Bool true); ("t", J.Str "pong"); ("pid", J.Int (Unix.getpid ())) ])
    | "submit" -> reply (submit st msg)
    | "status" -> (
      match J.member_opt "id" msg with
      | None -> reply (status_json st)
      | Some _ ->
        with_job (fun j ->
            reply (J.Obj [ ("ok", J.Bool true); ("job", job_status_json st j) ])))
    | "wait" ->
      with_job (fun j ->
          if j.j_outcome <> None then
            reply
              (J.Obj
                 [
                   ("t", J.Str "job");
                   ("ok", J.Bool true);
                   ("id", J.Int j.j_id);
                   ("row", job_row j);
                 ])
          else j.j_waiters <- c.c_fd :: j.j_waiters)
    | "cancel" ->
      with_job (fun j ->
          if j.j_outcome = None then finish st j Protocol.Cancelled 0;
          reply (J.Obj [ ("ok", J.Bool true) ]))
    | "shutdown" ->
      reply (J.Obj [ ("ok", J.Bool true) ]);
      terminate := true
    | other ->
      reply
        (J.Obj
           [ ("ok", J.Bool false); ("error", J.Str ("unknown request " ^ other)) ]))

(* ------------------------------------------------------------------- *)
(* Startup, drain, main loop. *)

let restore st =
  let path = manifest_path st.cfg.state_dir in
  if Sys.file_exists path then
    match
      (try Ok (J.of_string (In_channel.with_open_bin path In_channel.input_all))
       with e -> Error (Printexc.to_string e))
    with
    | Error _ -> ()
    | Ok m ->
      st.next_id <- (try J.to_int (J.member "next_id" m) with J.Parse_error _ -> 0);
      List.iter
        (fun jm ->
          let id = J.to_int (J.member "id" jm) in
          let model = J.to_str (J.member "model" jm) in
          let spec_name = J.to_str (J.member "spec" jm) in
          let cap = J.to_int (J.member "cap" jm) in
          let j =
            match J.member "outcome" jm with
            | J.Null ->
              (* Unfinished: resume from the job checkpoint's frontier. *)
              create_job st ~id ~model ~spec_name ~cap ~resume:true
            | o ->
              {
                (create_job st ~id ~model ~spec_name ~cap ~resume:true) with
                j_outcome = Some (Protocol.outcome_of_json o);
                j_schemas = J.to_int (J.member "schemas" jm);
              }
          in
          Hashtbl.replace st.jobs id j;
          st.order <- id :: st.order)
        (J.to_list (J.member "jobs" m));
      (* Stale slice journals from the previous incarnation are dead:
         issuance restarts from each job's frontier. *)
      let contains_slice f =
        let n = String.length f in
        let needle = ".slice-" in
        let k = String.length needle in
        let rec go i = i + k <= n && (String.sub f i k = needle || go (i + 1)) in
        go 0
      in
      Array.iter
        (fun f ->
          if
            String.length f > 4
            && String.sub f 0 4 = "job-"
            && Filename.check_suffix f ".ckpt.json"
            && contains_slice f
          then try Sys.remove (Filename.concat st.cfg.state_dir f) with Sys_error _ -> ())
        (Sys.readdir st.cfg.state_dir)

let drain st =
  st.draining <- true;
  Array.iter
    (function
      | Some w when w.w_alive -> (
        try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ())
      | _ -> ())
    st.workers;
  Array.iter
    (function
      | Some w when w.w_alive -> (
        (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ());
        w.w_alive <- false;
        try Unix.close w.w_fd with Unix.Unix_error _ -> ())
      | _ -> ())
    st.workers;
  Hashtbl.iter
    (fun _ j -> Option.iter Holistic.Journal.Tracker.flush j.j_tracker)
    st.jobs;
  save_manifest st;
  List.iter
    (fun c -> if c.c_open then try Unix.close c.c_fd with Unix.Unix_error _ -> ())
    st.clients;
  (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
  try Sys.remove (socket_path st.cfg.state_dir) with Sys_error _ -> ()

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let serve cfg =
  terminate := false;
  mkdir_p cfg.state_dir;
  let spath = socket_path cfg.state_dir in
  (try Sys.remove spath with Sys_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX spath);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> terminate := true));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> terminate := true));
  let st =
    {
      cfg;
      listen_fd;
      workers = Array.make (max 1 cfg.nworkers) None;
      clients = [];
      jobs = Hashtbl.create 64;
      order = [];
      next_id = 0;
      rr = 0;
      draining = false;
      t0 = Unix.gettimeofday ();
    }
  in
  restore st;
  respawn st;
  let tick () =
    reap st;
    check_stalls st;
    respawn st;
    List.iter
      (fun id ->
        let j = Hashtbl.find st.jobs id in
        ensure_issued st j;
        try_finalize st j)
      (List.rev st.order);
    assign st;
    let worker_fds =
      Array.to_list st.workers
      |> List.filter_map (function Some w when w.w_alive -> Some w.w_fd | _ -> None)
    in
    let client_fds = List.filter_map (fun c -> if c.c_open then Some c.c_fd else None) st.clients in
    let readable =
      match Unix.select ((st.listen_fd :: client_fds) @ worker_fds) [] [] 0.05 with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> []
    in
    List.iter
      (fun fd ->
        if fd = st.listen_fd then begin
          match Unix.accept st.listen_fd with
          | cfd, _ ->
            Unix.set_nonblock cfd;
            st.clients <-
              { c_fd = cfd; c_reader = Lineio.reader cfd; c_open = true } :: st.clients
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
        end
        else
          match
            Array.to_list st.workers
            |> List.find_opt (function
                 | Some w -> w.w_alive && w.w_fd = fd
                 | None -> false)
          with
          | Some (Some w) -> (
            match Lineio.poll w.w_reader with
            | `Eof -> ()  (* the reaper handles death *)
            | `Lines lines -> List.iter (handle_worker_line st w) lines)
          | _ -> (
            match List.find_opt (fun c -> c.c_open && c.c_fd = fd) st.clients with
            | None -> ()
            | Some c -> (
              match Lineio.poll c.c_reader with
              | `Eof ->
                c.c_open <- false;
                (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
                Hashtbl.iter
                  (fun _ j ->
                    j.j_waiters <- List.filter (fun fd' -> fd' <> c.c_fd) j.j_waiters)
                  st.jobs
              | `Lines lines -> List.iter (handle_client_line st c) lines)))
      readable;
    st.clients <- List.filter (fun c -> c.c_open) st.clients
  in
  let rec loop () =
    if !terminate then drain st
    else begin
      tick ();
      loop ()
    end
  in
  loop ()
