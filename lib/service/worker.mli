(** Worker process of the verification daemon.

    A worker is a forked child of the coordinator connected by a
    socketpair.  It executes one contiguous slice [start, stop) of a
    job's schema preorder at a time, as a checkpointed sequential
    {!Holistic.Checker} run: a synthetic {!Holistic.Journal} with
    [frontier = start] is seeded into a slice-local checkpoint file and
    the checker resumes from it with [max_schemas = stop], so the slice
    runs exactly the positions it owns, re-using the stock crash-safe
    resume machinery — a SIGKILLed worker loses at most
    [ckpt_every - 1] positions of its in-flight slice.

    A heartbeat domain reports the last preorder position touched every
    [hb_interval] seconds; the coordinator SIGKILLs a worker whose
    position stops advancing (a hung solver query), so a stuck slice is
    re-queued like a crashed one.

    Deterministic fault injection ({!failpoint_of_string}) covers every
    failure path in CI:
    - [worker-crash:N] — SIGKILL itself before every [N]th discharge of
      this process (churn: respawned workers crash again);
    - [worker-crash-at:POS] — SIGKILL itself before discharging absolute
      position [POS] (a poison pill: every retry dies at the same place,
      so the slice exhausts its budget and is quarantined);
    - [worker-raise-at:POS] — raise inside the discharge at [POS]
      (exercises the checker's own in-process retry/quarantine);
    - [worker-hang-at:POS] — sleep forever at [POS] (exercises the
      heartbeat deadline). *)

type failpoint

(** [Error] on an unknown grammar. *)
val failpoint_of_string : string -> (failpoint, string) result

val failpoint_to_string : failpoint -> string

type config = {
  cache_path : string option;
      (** shared discharge cache: loaded at spawn, merged back (under a
          lock file, load-union-save) after every slice that added
          entries *)
  ckpt_every : int;  (** slice checkpoint cadence, in positions *)
  hb_interval : float;
  failpoints : failpoint list;
}

(** [main config fd] — the child's entry point after the fork; never
    returns (exits when the coordinator closes the pipe or sends
    [quit]). *)
val main : config -> Unix.file_descr -> 'a
