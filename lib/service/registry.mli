(** Model registry of the verification daemon: resolves the wire-level
    model key of a job to a threshold automaton and its properties.
    The key space is the CLI's: [bv], [naive], [simplified], [benor],
    or any {!Models.Zoo} key. *)

(** [resolve key] is [Ok (automaton, specs)] or [Error message]. *)
val resolve : string -> (Ta.Automaton.t * Ta.Spec.t list, string) result

(** [find_spec key spec_name] resolves one property ([Error] names the
    available ones); [None] spec name means all properties of the
    model. *)
val find_specs :
  string -> string option -> (Ta.Automaton.t * Ta.Spec.t list, string) result

val keys : string list
