(** Wire protocol of the verification daemon.

    Two channels speak it, both as line-delimited canonical JSON
    ({!Lineio}):

    - {b client <-> coordinator} over the Unix-domain socket:
      [submit] / [status] / [wait] / [cancel] / [shutdown] / [ping]
      requests, each answered by one JSON object.  [wait] replies are
      deferred until the job reaches a terminal state and are tagged
      with the job [id], so a client may pipeline several waits on one
      connection and match replies by id.

    - {b coordinator <-> worker} over a per-worker socketpair: slice
      task assignments downstream; heartbeats and slice results
      upstream.

    This module carries the vocabulary shared by the three parties:
    the job outcome codec and the result row every consumer diffs
    (daemon rows vs. the sequential checker's rows must be
    byte-identical, which is the daemon's core soundness gate). *)

type outcome =
  | Holds
  | Violated of string  (** rendered {!Holistic.Witness} *)
  | Aborted of string
  | Partial of (int * string) list * string
      (** quarantined positions (fail-soft: the retry budget for those
          slices is truly exhausted) and a summary reason *)
  | Cancelled
  | Failed of string  (** daemon-side error (bad model key, IO, ...) *)

val outcome_name : outcome -> string

(** Result row for one job: the comparable fields only — model, spec,
    outcome, schema count, witness, reason, quarantined holes — in a
    fixed key order, so [sort | diff] against the sequential checker's
    rows is byte-exact. *)
val row :
  model:string -> spec:string -> outcome:outcome -> schemas:int -> Jsonc.t

(** [row_of_result ~model r] renders a sequential {!Holistic.Checker}
    result as the same row (the [--local] side of the diff). *)
val row_of_result : model:string -> Holistic.Checker.result -> Jsonc.t

(** Outcome codec used inside status/wait replies and the job
    manifest. *)
val outcome_to_json : outcome -> Jsonc.t

val outcome_of_json : Jsonc.t -> outcome
