(** Line-delimited JSON framing over file descriptors: the wire format
    of the verification daemon (client socket and worker pipes alike).
    One {!Jsonc} document per [\n]-terminated line, no other framing. *)

type reader

val reader : Unix.file_descr -> reader
val fd : reader -> Unix.file_descr

(** [poll r] reads whatever is available on the descriptor and returns
    the complete lines received (possibly none: a partial line stays
    buffered).  [`Eof] once the peer closed (any unterminated trailing
    bytes are discarded: a torn final line means the writer died
    mid-message, and every daemon message is only acted upon whole). *)
val poll : reader -> [ `Lines of string list | `Eof ]

(** [send fd json] writes one JSON line.  Raises [Unix.Unix_error]
    (e.g. [EPIPE] — callers treat the peer as gone). *)
val send : Unix.file_descr -> Jsonc.t -> unit

(** [send_locked mutex fd json] serializes concurrent writers (worker
    main loop vs. its heartbeat domain) so lines never interleave. *)
val send_locked : Mutex.t -> Unix.file_descr -> Jsonc.t -> unit
