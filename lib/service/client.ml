module J = Jsonc

type t = {
  fd : Unix.file_descr;
  reader : Lineio.reader;
  mutable pending : J.t list;  (* received but not yet consumed, FIFO *)
}

let connect ?(retries = 50) ?(delay = 0.1) ~state_dir () =
  let path = Coordinator.socket_path state_dir in
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; reader = Lineio.reader fd; pending = [] }
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT | EAGAIN), _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if n <= 0 then
        Error (Printf.sprintf "no daemon listening at %s" path)
      else begin
        Unix.sleepf delay;
        go (n - 1)
      end
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))
  in
  go retries

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Blocking read of the next line (the fd is blocking, so [poll] only
   returns empty on EINTR). *)
let rec next_msg t =
  match t.pending with
  | m :: rest ->
    t.pending <- rest;
    Ok m
  | [] -> (
    match Lineio.poll t.reader with
    | `Eof -> Error "daemon closed the connection"
    | `Lines lines -> (
      match
        List.filter_map
          (fun l -> match J.of_string l with m -> Some m | exception J.Parse_error _ -> None)
          lines
      with
      | [] -> next_msg t
      | ms ->
        t.pending <- ms;
        next_msg t))

let request t msg =
  match Lineio.send t.fd msg with
  | () -> next_msg t
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "send failed: %s" (Unix.error_message e))

let check_ok = function
  | Error _ as e -> e
  | Ok reply -> (
    match J.member_opt "ok" reply with
    | Some (J.Bool true) -> Ok reply
    | _ -> (
      match J.member_opt "error" reply with
      | Some (J.Str e) -> Error e
      | _ -> Error ("daemon error: " ^ J.to_string reply)))

let submit t ~model ?spec ?max_schemas () =
  let msg =
    J.Obj
      ([ ("t", J.Str "submit"); ("model", J.Str model) ]
      @ (match spec with Some s -> [ ("spec", J.Str s) ] | None -> [])
      @
      match max_schemas with
      | Some n -> [ ("max_schemas", J.Int n) ]
      | None -> [])
  in
  match check_ok (request t msg) with
  | Error _ as e -> e
  | Ok reply -> Ok (List.map J.to_int (J.to_list (J.member "ids" reply)))

let wait_jobs t ids =
  let send_all () =
    List.iter
      (fun id -> Lineio.send t.fd (J.Obj [ ("t", J.Str "wait"); ("id", J.Int id) ]))
      ids
  in
  match send_all () with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "send failed: %s" (Unix.error_message e))
  | () ->
    let rec collect acc n =
      if n = 0 then Ok (List.rev acc)
      else
        match next_msg t with
        | Error _ as e -> e
        | Ok m -> (
          match J.member_opt "t" m with
          | Some (J.Str "job") ->
            collect ((J.to_int (J.member "id" m), J.member "row" m) :: acc) (n - 1)
          | _ -> collect acc n (* unrelated reply; skip *))
    in
    collect [] (List.length ids)

let shutdown t =
  match check_ok (request t (J.Obj [ ("t", J.Str "shutdown") ])) with
  | Error _ as e -> e
  | Ok _ -> Ok ()
