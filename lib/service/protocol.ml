module J = Jsonc

type outcome =
  | Holds
  | Violated of string
  | Aborted of string
  | Partial of (int * string) list * string
  | Cancelled
  | Failed of string

let outcome_name = function
  | Holds -> "holds"
  | Violated _ -> "violated"
  | Aborted _ -> "aborted"
  | Partial _ -> "partial"
  | Cancelled -> "cancelled"
  | Failed _ -> "failed"

let quarantined_json q =
  J.List (List.map (fun (pos, msg) -> J.List [ J.Int pos; J.Str msg ]) q)

let quarantined_of_json j =
  List.map
    (fun entry ->
      match J.to_list entry with
      | [ pos; msg ] -> (J.to_int pos, J.to_str msg)
      | _ -> raise (J.Parse_error "malformed quarantine entry"))
    (J.to_list j)

let outcome_to_json o =
  let base = [ ("kind", J.Str (outcome_name o)) ] in
  J.Obj
    (base
    @
    match o with
    | Holds | Cancelled -> []
    | Violated w -> [ ("witness", J.Str w) ]
    | Aborted reason | Failed reason -> [ ("reason", J.Str reason) ]
    | Partial (q, reason) ->
      [ ("quarantined", quarantined_json q); ("reason", J.Str reason) ])

let outcome_of_json j =
  match J.to_str (J.member "kind" j) with
  | "holds" -> Holds
  | "cancelled" -> Cancelled
  | "violated" -> Violated (J.to_str (J.member "witness" j))
  | "aborted" -> Aborted (J.to_str (J.member "reason" j))
  | "failed" -> Failed (J.to_str (J.member "reason" j))
  | "partial" ->
    Partial
      ( quarantined_of_json (J.member "quarantined" j),
        J.to_str (J.member "reason" j) )
  | k -> raise (J.Parse_error ("unknown outcome kind " ^ k))

(* The comparable row.  Key order is fixed so that two renderings of the
   same logical row are byte-identical — the CI daemon job diffs sorted
   row sets between the daemon and the sequential checker. *)
let row ~model ~spec ~outcome ~schemas =
  J.Obj
    [
      ("model", J.Str model);
      ("spec", J.Str spec);
      ("outcome", J.Str (outcome_name outcome));
      ("schemas", J.Int schemas);
      ( "witness",
        match outcome with Violated w -> J.Str w | _ -> J.Null );
      ( "reason",
        match outcome with
        | Aborted r | Failed r | Partial (_, r) -> J.Str r
        | _ -> J.Null );
      ( "quarantined",
        match outcome with Partial (q, _) -> quarantined_json q | _ -> J.Null );
    ]

let row_of_result ~model (r : Holistic.Checker.result) =
  let outcome =
    match r.Holistic.Checker.outcome with
    | Holistic.Checker.Holds -> Holds
    | Holistic.Checker.Violated w ->
      Violated (Format.asprintf "%a" Holistic.Witness.pp w)
    | Holistic.Checker.Aborted reason -> Aborted reason
    | Holistic.Checker.Partial { quarantined; reason } ->
      Partial (quarantined, reason)
  in
  row ~model ~spec:r.Holistic.Checker.spec.Ta.Spec.name ~outcome
    ~schemas:r.Holistic.Checker.stats.schemas_checked
