(** Blocking client for the verification daemon's Unix-domain socket.

    One connection may pipeline requests: [submit]/[status]/[cancel]/
    [shutdown]/[ping] are answered in order, while [wait] replies are
    deferred until the job finishes and arrive tagged with the job id
    ([t = "job"]), in completion order — {!wait_jobs} collects them. *)

type t

val connect :
  ?retries:int -> ?delay:float -> state_dir:string -> unit -> (t, string) result
(** Retries while the daemon is still binding its socket ([retries] x
    [delay] seconds, default 50 x 0.1). *)

val close : t -> unit

val request : t -> Jsonc.t -> (Jsonc.t, string) result
(** Send one request, read its (immediate) reply. *)

val submit :
  t ->
  model:string ->
  ?spec:string ->
  ?max_schemas:int ->
  unit ->
  (int list, string) result
(** Job ids, one per property. *)

val wait_jobs : t -> int list -> ((int * Jsonc.t) list, string) result
(** Send [wait] for every id, then collect the deferred replies; returns
    [(id, row)] in completion order. *)

val shutdown : t -> (unit, string) result
