module J = Jsonc

type failpoint =
  | Crash_every of int
  | Crash_at of int
  | Raise_at of int
  | Hang_at of int

let failpoint_of_string s =
  let num tag rest k =
    match int_of_string_opt rest with
    | Some n when n >= 0 -> Ok (k n)
    | _ -> Error (Printf.sprintf "%s expects a non-negative integer, got %S" tag rest)
  in
  match String.index_opt s ':' with
  | Some i -> (
    let tag = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match tag with
    | "worker-crash" -> num tag rest (fun n -> Crash_every (max 1 n))
    | "worker-crash-at" -> num tag rest (fun n -> Crash_at n)
    | "worker-raise-at" -> num tag rest (fun n -> Raise_at n)
    | "worker-hang-at" -> num tag rest (fun n -> Hang_at n)
    | _ ->
      Error
        (Printf.sprintf
           "unknown failpoint %S (expected worker-crash:N, worker-crash-at:POS, \
            worker-raise-at:POS or worker-hang-at:POS)"
           s))
  | None -> Error (Printf.sprintf "malformed failpoint %S (expected TAG:N)" s)

let failpoint_to_string = function
  | Crash_every n -> Printf.sprintf "worker-crash:%d" n
  | Crash_at p -> Printf.sprintf "worker-crash-at:%d" p
  | Raise_at p -> Printf.sprintf "worker-raise-at:%d" p
  | Hang_at p -> Printf.sprintf "worker-hang-at:%d" p

type config = {
  cache_path : string option;
  ckpt_every : int;
  hb_interval : float;
  failpoints : failpoint list;
}

(* ------------------------------------------------------------------- *)
(* Shared discharge cache.  Each worker keeps one in-memory Qcache for
   its lifetime; with --cache it is seeded from the file at spawn and
   the union is written back -- load, fold the disk entries in (first
   write wins), save -- under a sibling lock file, so concurrent
   workers merging after their slices never lose each other's
   entries. *)

let with_lockfile path f =
  let lock = Unix.openfile (path ^ ".lock") [ O_CREAT; O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close lock)
    (fun () ->
      Unix.lockf lock F_LOCK 0;
      Fun.protect
        ~finally:(fun () -> try Unix.lockf lock F_ULOCK 0 with Unix.Unix_error _ -> ())
        f)

let merge_cache ~path cache =
  with_lockfile path (fun () ->
      let disk = (Holistic.Cachefile.load ~path).Holistic.Cachefile.cache in
      Smt.Qcache.fold (fun k e () -> Smt.Qcache.add cache k e) disk ();
      ignore (Holistic.Cachefile.save ~path cache))

(* ------------------------------------------------------------------- *)
(* Fault injection. *)

let crash_counter = ref 0

let kill_self () = Unix.kill (Unix.getpid ()) Sys.sigkill

let make_failpoint config (position : int Atomic.t) pos =
  Atomic.set position pos;
  List.iter
    (function
      | Crash_every n ->
        incr crash_counter;
        if !crash_counter mod n = 0 then kill_self ()
      | Crash_at p -> if pos = p then kill_self ()
      | Raise_at p ->
        if pos = p then failwith (Printf.sprintf "injected failure at position %d" p)
      | Hang_at p -> if pos = p then Unix.sleepf 3600.0)
    config.failpoints

(* ------------------------------------------------------------------- *)
(* Slice execution.  A slice [start, stop) runs as a stock checkpointed
   resume: seed a synthetic journal with [frontier = start] (zero
   totals, so the slice journal's totals are exactly the slice's
   statistics delta), resume from it with [max_schemas = stop].  The
   outcome classifies as:
   - budget abort        -> "more": every position of the slice is
                            UNSAT, the enumeration continues beyond;
   - Holds               -> "complete": the enumeration ended; the final
                            frontier is the end hint (= start when the
                            end lies at or before the slice);
   - Violated / other
     abort               -> "decided" at the absolute position
                            [frontier]; [schemas] mirrors the
                            sequential engine exactly
                            (slice-local count + start);
   - Partial             -> "partial": positions quarantined in-process
                            (a raising discharge crashed twice).

   The subtree pruning of the incremental engine can overshoot [stop]
   by a prune span; the reported frontier of a "more" slice is capped
   at [stop] so the coordinator's coverage spans stay aligned with its
   slice grid (the next slice re-walks the overshot tail at prune
   speed, which costs no solver work). *)

let is_budget_abort msg =
  String.length msg >= 22 && String.sub msg 0 22 = "schema budget exceeded"

let run_slice ~universes ~portfolio ~config ~position msg =
  let field name = J.member name msg in
  let job = J.to_int (field "job") in
  let model = J.to_str (field "model") in
  let spec_name = J.to_str (field "spec") in
  let start = J.to_int (field "start") in
  let stop = J.to_int (field "stop") in
  let ckpt = J.to_str (field "ckpt") in
  let base k extra =
    J.Obj
      ([
         ("t", J.Str "done");
         ("job", J.Int job);
         ("start", J.Int start);
         ("stop", J.Int stop);
         ("status", J.Str k);
       ]
      @ extra)
  in
  match Registry.find_specs model (Some spec_name) with
  | Error e | (exception Failure e) -> base "error" [ ("error", J.Str e) ]
  | Ok (_, ([] | _ :: _ :: _)) -> base "error" [ ("error", J.Str "ambiguous spec") ]
  | Ok (ta, [ spec ]) -> (
    let u =
      match Hashtbl.find_opt universes model with
      | Some u -> u
      | None ->
        let u = Holistic.Universe.build ta in
        Hashtbl.add universes model u;
        u
    in
    let fingerprint = Holistic.Journal.fingerprint ta spec in
    if not (Sys.file_exists ckpt) then
      Holistic.Journal.save ~path:ckpt
        { (Holistic.Journal.fresh ~fingerprint) with frontier = start };
    let limits =
      { Holistic.Checker.default_limits with jobs = 1; max_schemas = stop }
    in
    let r =
      Holistic.Checker.verify_with_universe ~limits ~checkpoint:ckpt
        ~checkpoint_every:config.ckpt_every ~resume:true
        ~failpoint:(make_failpoint config position) ?portfolio u spec
    in
    let slice_j =
      match Holistic.Journal.load ~path:ckpt with
      | Ok j -> j
      | Error _ -> { (Holistic.Journal.fresh ~fingerprint) with frontier = start }
    in
    let journal = ("journal", Holistic.Journal.to_json slice_j) in
    let schemas_abs = start + r.Holistic.Checker.stats.schemas_checked in
    match r.Holistic.Checker.outcome with
    | Holistic.Checker.Aborted reason when is_budget_abort reason ->
      base "more" [ ("frontier", J.Int (min slice_j.frontier stop)); journal ]
    | Holistic.Checker.Holds ->
      base "complete" [ ("frontier", J.Int slice_j.frontier); journal ]
    | Holistic.Checker.Violated w ->
      base "decided"
        [
          ("frontier", J.Int (min slice_j.frontier stop));
          ("pos", J.Int slice_j.frontier);
          ("okind", J.Str "violated");
          ("witness", J.Str (Format.asprintf "%a" Holistic.Witness.pp w));
          ("schemas", J.Int schemas_abs);
          journal;
        ]
    | Holistic.Checker.Aborted reason ->
      base "decided"
        [
          ("frontier", J.Int (min slice_j.frontier stop));
          ("pos", J.Int slice_j.frontier);
          ("okind", J.Str "aborted");
          ("reason", J.Str reason);
          ("schemas", J.Int schemas_abs);
          journal;
        ]
    | Holistic.Checker.Partial { quarantined = _; reason } ->
      (* The holes travel in the journal's [quarantined] field. *)
      base "partial"
        [
          ("frontier", J.Int (min slice_j.frontier stop));
          ("reason", J.Str reason);
          journal;
        ])

(* ------------------------------------------------------------------- *)

let main config fd =
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Holistic.Checker.clear_interrupt ();
  let wmutex = Mutex.create () in
  let send json =
    try Lineio.send_locked wmutex fd json with Unix.Unix_error _ -> exit 0
  in
  let position = Atomic.make (-1) in
  (* The heartbeat thread reports the last preorder position touched;
     the coordinator's deadline is on that position *advancing*, so a
     hung discharge (not merely a long slice) is what gets killed.  A
     systhread, not a domain: a second domain — even one asleep in
     [sleepf] — drags every minor collection of the solver loop into a
     cross-domain barrier, measured at ~1.4x on discharge-heavy slices,
     while a thread on the same domain preempts via the tick thread at
     no cost. *)
  let _hb : Thread.t =
    Thread.create
      (fun () ->
        let rec loop () =
          Thread.delay config.hb_interval;
          send (J.Obj [ ("t", J.Str "hb"); ("pos", J.Int (Atomic.get position)) ]);
          loop ()
        in
        loop ())
      ()
  in
  let universes = Hashtbl.create 4 in
  let cache =
    Option.map
      (fun path -> (Holistic.Cachefile.load ~path).Holistic.Cachefile.cache)
      config.cache_path
  in
  let portfolio = Option.map (fun c -> Smt.Portfolio.create c) cache in
  let merged = ref (match cache with Some c -> Smt.Qcache.length c | None -> 0) in
  let reader = Lineio.reader fd in
  let handle line =
    match J.of_string line with
    | exception J.Parse_error _ -> ()
    | msg -> (
      match J.to_str (J.member "t" msg) with
      | "quit" -> exit 0
      | "slice" ->
        let reply =
          try run_slice ~universes ~portfolio ~config ~position msg
          with e ->
            J.Obj
              [
                ("t", J.Str "done");
                ("job", J.member "job" msg);
                ("start", J.member "start" msg);
                ("stop", J.member "stop" msg);
                ("status", J.Str "error");
                ("error", J.Str (Printexc.to_string e));
              ]
        in
        (match (config.cache_path, cache) with
        | Some path, Some c when Smt.Qcache.length c > !merged ->
          (try
             merge_cache ~path c;
             merged := Smt.Qcache.length c
           with Unix.Unix_error _ | Sys_error _ -> ())
        | _ -> ());
        Atomic.set position (-1);
        send reply
      | _ -> ())
  in
  let rec loop () =
    match Lineio.poll reader with
    | `Eof -> exit 0
    | `Lines lines ->
      List.iter handle lines;
      loop ()
  in
  loop ()
