type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes received but not yet terminated by \n *)
  chunk : Bytes.t;
}

let reader fd = { fd; buf = Buffer.create 256; chunk = Bytes.create 65536 }
let fd r = r.fd

(* Split the buffer into complete lines, keeping the unterminated tail. *)
let drain_lines r =
  let s = Buffer.contents r.buf in
  Buffer.clear r.buf;
  let rec go acc from =
    match String.index_from_opt s from '\n' with
    | None ->
      if from < String.length s then
        Buffer.add_substring r.buf s from (String.length s - from);
      List.rev acc
    | Some nl ->
      let line = String.sub s from (nl - from) in
      go (if String.trim line = "" then acc else line :: acc) (nl + 1)
  in
  go [] 0

let poll r =
  match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
  | 0 -> `Eof
  | n ->
    Buffer.add_subbytes r.buf r.chunk 0 n;
    `Lines (drain_lines r)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> `Lines []
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> `Eof

let send fd json =
  let line = Jsonc.to_string json ^ "\n" in
  let b = Bytes.unsafe_of_string line in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        (* Non-blocking peer with a full buffer: wait for writability. *)
        ignore (Unix.select [] [ fd ] [] 1.0);
        go off
  in
  go 0

let send_locked mutex fd json =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) (fun () -> send fd json)
