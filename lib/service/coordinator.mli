(** Coordinator process of the verification daemon ([holistic serve]).

    The coordinator owns a state directory holding the Unix-domain
    socket ([daemon.sock]), a job manifest ([jobs.json]), one
    checkpoint journal per job ([job-<id>.ckpt.json], written through
    {!Holistic.Journal.Tracker} on every folded span) and one
    slice-local journal per in-flight slice
    ([job-<id>.slice-<start>.ckpt.json]).

    Each submitted (automaton, property) job's schema preorder is cut
    into contiguous slices of [slice_size] positions, kept in a shared
    queue that idle workers pull from — the work-stealing degenerate
    case where the coordinator is the only queue owner, so no slice is
    ever executed twice concurrently.  Supervision is fail-soft:

    - a worker that dies (crash, SIGKILL from outside, or the
      coordinator's own heartbeat deadline) has its in-flight slice
      re-queued with exponential backoff; the retry counter {e resets}
      whenever the attempt made durable progress (the slice journal's
      frontier advanced), so crash-churn converges while a
      deterministic poison pill exhausts the budget;
    - a slice whose retry budget is truly exhausted is quarantined as a
      single hole at its last durable frontier, the remainder of the
      slice is re-queued, and the job degrades to the fail-soft
      [Partial] verdict exactly as the in-process checker's
      [partialize] would;
    - SIGTERM drains gracefully: workers are reaped, every job's
      checkpoint and the manifest are flushed, and a restarted daemon
      resumes unfinished jobs from their frontiers to bit-identical
      verdicts.

    Verdict composition from slice reports is exact: a budget abort at
    the slice boundary means "every position of the slice is UNSAT"
    (the enumeration's budget check runs at every consumed position, so
    there is no overshoot); [Holds] carries the end of the enumeration;
    a decided slice carries the deciding position, rendered witness and
    the sequential engine's schema count. *)

type config = {
  state_dir : string;
  nworkers : int;
  slice_size : int;
  retry_budget : int;  (** per-slice crash budget before quarantine *)
  hb_timeout : float;
      (** seconds a busy worker's reported position may stall before it
          is SIGKILLed *)
  default_cap : int;  (** [max_schemas] for jobs that don't specify one *)
  worker : Worker.config;
}

val socket_path : string -> string
(** [socket_path state_dir] — where clients connect. *)

val serve : config -> unit
(** Runs the accept/supervise loop until [shutdown] or SIGTERM; returns
    after a graceful drain. *)
