(* Abstract interpretation over the threshold-automaton control
   structure.

   Two fixpoints, both over-approximating every reachable configuration
   of the counter system:

   - an {b upper} fixpoint computing the abstractly-entered locations,
     the live rules, per-shared-variable production capacities, and the
     set of guard atoms that are statically false: an atom [sum c_i*x_i
     >= b] is false when the total capacity of the live rules that do
     {e not} themselves require the atom cannot reach [b] under the
     resilience condition.  Excluding self-requiring producers breaks
     the circular support of guard-and-update-same-variable rules: at
     the first moment such an atom would have to hold, only rules not
     guarded by it can have fired (see DESIGN.md).  Each discovered
     false atom kills its rules, which shrinks capacities, which can
     discover more false atoms — iterate to fixpoint (monotone, at most
     one iteration per unique atom).

   - a {b lower} widening/narrowing fixpoint propagating lower-bound
     states ({!Domain.lower}) along the rule graph: a rule transfers
     its source state met with its guard and shifted by its update;
     states join at merge points.  Per-(location,row) widening drops
     rows whose bound keeps changing, and a global sweep cap guards
     against non-termination (both surfaced so the linter can report
     TA024); one narrowing sweep reruns the transfer from the
     stabilized states, which is sound because the transfer is
     monotone and the stabilized map is a post-fixpoint.

   Two modes: [One_round] matches the checker's encoding (round-switch
   edges ignored, every rule fires at most [population] times along a
   DAG), used for static schema discharge; [Cross_round] closes
   reachability over the round-switch edges and treats any live
   producer as unbounded capacity, used by the linter and slicer where
   claims must hold for full multi-round semantics. *)

module A = Ta.Automaton
module G = Ta.Guard
module P = Ta.Pexpr
module D = Domain

type mode = One_round | Cross_round

type assumptions = {
  never_enter : string list;  (** locations the spec forbids entering *)
  empty_init : string list;  (** locations the spec's init pins to zero *)
  mode : mode;
}

let no_assumptions = { never_enter = []; empty_init = []; mode = Cross_round }

(* Locations whose counter the init condition forces to zero: atoms
   [sum c_i * kappa_i (<=|=) 0] with positive coefficients and only
   counter terms — over non-negative counters each named counter is 0. *)
let empty_init_locations (init : Ta.Cond.t) =
  List.concat_map
    (fun (a : Ta.Cond.atom) ->
      match a.rel with
      | Ta.Cond.Ge -> []
      | Ta.Cond.Eq | Ta.Cond.Le ->
        if a.const = 0 && a.terms <> []
           && List.for_all
                (fun (t, c) -> match t with Ta.Cond.Counter _ -> c > 0 | _ -> false)
                a.terms
        then
          List.filter_map
            (fun (t, _) -> match t with Ta.Cond.Counter l -> Some l | _ -> None)
            a.terms
        else [])
    init
  |> List.sort_uniq Stdlib.compare

let of_spec ?(mode = One_round) (spec : Ta.Spec.t) =
  { never_enter = spec.never_enter; empty_init = empty_init_locations spec.init; mode }

type t = {
  ta : A.t;
  oracle : D.oracle;
  assume : assumptions;
  entered : (string, unit) Hashtbl.t;
  live : (string, unit) Hashtbl.t;  (** by rule name *)
  false_atoms : (G.atom * P.t) list;
      (** refuted atom with the finite capacity of its left-hand side
          over live rules not guarded by the atom itself *)
  shared_cap : (string * D.capacity) list;  (** over all live rules *)
  lower : (string, D.lower) Hashtbl.t;  (** per entered location *)
  widened : (string * D.row) list;  (** rows dropped by widening *)
  sweeps : int;
  capped : bool;
}

let entered t l = Hashtbl.mem t.entered l
let rule_live t (r : A.rule) = Hashtbl.mem t.live r.name

let false_atom t (a : G.atom) =
  List.find_opt (fun (a', _) -> G.atom_equal a a') t.false_atoms |> Option.map snd

let shared_cap t x =
  match List.assoc_opt x t.shared_cap with Some c -> c | None -> D.cap_zero

(* Upper bound on kappa[l] and on "some process ever entered l": along
   a DAG each process passes through [l] at most once per round. *)
let entered_cap t l =
  if not (entered t l) then D.cap_zero
  else match t.assume.mode with One_round -> D.Fin t.ta.population | Cross_round -> D.Inf

let lower t l = match Hashtbl.find_opt t.lower l with Some s -> s | None -> D.top

(* --- upper fixpoint -------------------------------------------------- *)

let atom_mem a atoms = List.exists (G.atom_equal a) atoms

let build ?(assume = no_assumptions) (ta : A.t) =
  let oracle = D.oracle ~params:ta.params ~resilience:ta.resilience in
  let blocked l = List.mem l assume.never_enter in
  let entered = Hashtbl.create 16 in
  let live = Hashtbl.create 16 in
  let false_atoms = ref [] in
  let guard_false (g : G.t) = List.exists (fun a -> atom_mem a (List.map fst !false_atoms)) g in
  let rule_ok (r : A.rule) =
    Hashtbl.mem entered r.source && not (blocked r.target) && not (guard_false r.guard)
  in
  let recompute_reach () =
    Hashtbl.reset entered;
    Hashtbl.reset live;
    List.iter
      (fun l ->
        if (not (blocked l)) && not (List.mem l assume.empty_init) then
          Hashtbl.replace entered l ())
      ta.initial;
    let changed = ref true in
    while !changed do
      changed := false;
      let enter l =
        if (not (blocked l)) && not (Hashtbl.mem entered l) then begin
          Hashtbl.replace entered l ();
          changed := true
        end
      in
      List.iter (fun (r : A.rule) -> if rule_ok r then enter r.target) ta.rules;
      if assume.mode = Cross_round then
        List.iter (fun (src, tgt) -> if Hashtbl.mem entered src then enter tgt) ta.round_switch
    done;
    List.iter (fun (r : A.rule) -> if rule_ok r then Hashtbl.replace live r.name ()) ta.rules
  in
  (* Capacity each live rule contributes per unit of update: in the
     one-round encoding a rule moves at most [population] processes
     along the DAG; across rounds there is no bound. *)
  let per_rule_cap =
    match assume.mode with One_round -> D.Fin ta.population | Cross_round -> D.Inf
  in
  let production ?excluding x =
    List.fold_left
      (fun acc (r : A.rule) ->
        let excluded =
          match excluding with Some a -> atom_mem a r.guard | None -> false
        in
        if Hashtbl.mem live r.name && not excluded then
          match List.assoc_opt x r.update with
          | Some c when c > 0 -> D.cap_add acc (D.cap_scale c per_rule_cap)
          | _ -> acc
        else acc)
      D.cap_zero ta.rules
  in
  let atom_refuted (a : G.atom) =
    let cap =
      List.fold_left
        (fun acc (x, c) -> D.cap_add acc (D.cap_scale c (production ~excluding:a x)))
        D.cap_zero a.G.shared
    in
    match cap with
    | D.Inf -> None
    | D.Fin e -> if D.valid_pos oracle (P.sub a.G.bound e) then Some e else None
  in
  recompute_reach ();
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun a ->
        if not (atom_mem a (List.map fst !false_atoms)) then
          match atom_refuted a with
          | Some cap ->
            false_atoms := (a, cap) :: !false_atoms;
            progress := true
          | None -> ())
      (A.unique_guard_atoms ta);
    if !progress then recompute_reach ()
  done;
  let shared_cap = List.map (fun x -> (x, production x)) ta.shared in
  (* --- lower fixpoint ------------------------------------------------ *)
  let lower : (string, D.lower) Hashtbl.t = Hashtbl.create 16 in
  let change_count : (string * (string * int) list, int) Hashtbl.t = Hashtbl.create 16 in
  let widened = ref [] in
  let widen_limit = 3 in
  let meet_guard st (g : G.t) = List.fold_left (D.meet oracle) st g in
  let transfer (r : A.rule) =
    match Hashtbl.find_opt lower r.source with
    | None -> None
    | Some st -> Some (D.shift (meet_guard st r.guard) r.update)
  in
  (* All inflows of [l] under the stabilizing map (None = bottom, no
     inflow yet). *)
  let inflow l =
    let merge acc st =
      match acc with None -> Some st | Some st' -> Some (D.join oracle st' st)
    in
    let acc =
      if Hashtbl.mem entered l && List.mem l ta.initial && not (blocked l)
         && not (List.mem l assume.empty_init)
      then Some D.top
      else None
    in
    let acc =
      List.fold_left
        (fun acc (r : A.rule) ->
          if Hashtbl.mem live r.name && r.target = l then
            match transfer r with None -> acc | Some st -> merge acc st
          else acc)
        acc ta.rules
    in
    if assume.mode = Cross_round then
      List.fold_left
        (fun acc (src, tgt) ->
          if tgt = l && Hashtbl.mem entered src then
            match Hashtbl.find_opt lower src with
            | Some st -> merge acc st
            | None -> acc
          else acc)
        acc ta.round_switch
    else acc
  in
  let max_sweeps = 3 * (List.length ta.locations + List.length ta.rules) + 8 in
  let sweeps = ref 0 in
  let capped = ref false in
  let stable = ref false in
  while (not !stable) && not !capped do
    incr sweeps;
    if !sweeps > max_sweeps then capped := true
    else begin
      stable := true;
      List.iter
        (fun l ->
          match inflow l with
          | None -> ()
          | Some incoming ->
            let next =
              match Hashtbl.find_opt lower l with
              | None -> incoming
              | Some old ->
                let joined = D.join oracle old incoming in
                if D.equal joined old then old
                else
                  (* Widen rows whose bound keeps changing. *)
                  List.filter
                    (fun (r : D.row) ->
                      match D.find_row old r.coeffs with
                      | Some r0 when not (P.equal r0.lo r.lo) ->
                        let key = (l, r.coeffs) in
                        let n =
                          (match Hashtbl.find_opt change_count key with
                          | Some n -> n
                          | None -> 0)
                          + 1
                        in
                        Hashtbl.replace change_count key n;
                        if n >= widen_limit then begin
                          widened := (l, r) :: !widened;
                          false
                        end
                        else true
                      | _ -> true)
                    joined
            in
            let unchanged =
              match Hashtbl.find_opt lower l with
              | Some old -> D.equal old next
              | None -> false
            in
            if not unchanged then begin
              Hashtbl.replace lower l next;
              stable := false
            end)
        ta.locations
    end
  done;
  if !capped then
    (* Unsound to stop mid-ascent: discard the lower states entirely
       (top everywhere), keep only the flag for TA024. *)
    Hashtbl.reset lower
  else begin
    (* One narrowing sweep: rerun the transfer from the stabilized map
       simultaneously; monotonicity keeps the result a post-fixpoint,
       and rows dropped by widening may be recovered. *)
    let narrowed =
      List.filter_map (fun l -> Option.map (fun st -> (l, st)) (inflow l)) ta.locations
    in
    Hashtbl.reset lower;
    List.iter (fun (l, st) -> Hashtbl.replace lower l st) narrowed
  end;
  {
    ta;
    oracle;
    assume;
    entered;
    live;
    false_atoms = !false_atoms;
    shared_cap;
    lower;
    widened = !widened;
    sweeps = !sweeps;
    capped = !capped;
  }
