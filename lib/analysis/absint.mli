(** Abstract-interpretation invariant engine over the threshold-automaton
    control structure.

    Runs two over-approximating fixpoints (see DESIGN.md, abstraction
    soundness):

    - an upper fixpoint computing abstractly-entered locations, live
      rules, per-shared-variable production capacities, and the guard
      atoms that are {b statically false} — their threshold exceeds the
      total capacity of the live rules that do not themselves require
      the atom (the exclusion breaks circular self-support);
    - a lower widening/narrowing fixpoint synthesizing per-location
      {!Domain.lower} invariants ("whenever this location is populated,
      [sum c_i*x_i >= e(params)] holds").

    [One_round] mode matches the checker's single-round encoding and
    feeds the static schema discharge; [Cross_round] closes over
    round-switch edges with unbounded capacities and backs the linter
    and slicer. *)

module A := Ta.Automaton
module G := Ta.Guard
module P := Ta.Pexpr

type mode = One_round | Cross_round

type assumptions = {
  never_enter : string list;
  empty_init : string list;
  mode : mode;
}

(** No spec assumptions, [Cross_round]. *)
val no_assumptions : assumptions

(** Locations whose counter an initial condition pins to zero
    ([sum c_i*kappa_i (<=|=) 0] atoms with positive coefficients). *)
val empty_init_locations : Ta.Cond.t -> string list

(** Assumptions a spec justifies: its [never_enter] list and the
    initial emptiness its [init] asserts ([One_round] by default —
    the checker's encoding). *)
val of_spec : ?mode:mode -> Ta.Spec.t -> assumptions

type t = {
  ta : A.t;
  oracle : Domain.oracle;
  assume : assumptions;
  entered : (string, unit) Hashtbl.t;
  live : (string, unit) Hashtbl.t;
  false_atoms : (G.atom * P.t) list;
  shared_cap : (string * Domain.capacity) list;
  lower : (string, Domain.lower) Hashtbl.t;
  widened : (string * Domain.row) list;
  sweeps : int;
  capped : bool;
}

val build : ?assume:assumptions -> A.t -> t

(** Some process can be at (or ever reach) the location. *)
val entered : t -> string -> bool

val rule_live : t -> A.rule -> bool

(** [Some cap] when the atom is statically false: its left-hand side is
    bounded by the parameter expression [cap] (over live rules not
    guarded by the atom), which is provably below the threshold. *)
val false_atom : t -> G.atom -> P.t option

(** Total production capacity of the live rules for a shared variable. *)
val shared_cap : t -> string -> Domain.capacity

(** Upper bound on [kappa\[l\]] and on "ever entered [l]": the
    population in [One_round] mode (DAG: each process passes through a
    location at most once), unbounded in [Cross_round], zero when not
    entered. *)
val entered_cap : t -> string -> Domain.capacity

(** Synthesized lower-bound invariant at a location (top when none). *)
val lower : t -> string -> Domain.lower
