(* Abstract domains for the invariant engine (Absint).

   Two cooperating pieces:

   - a parameter-arithmetic oracle deciding entailments between
     parameter expressions under the resilience condition (backed by
     Smt.Lia on the parameter variables only, memoized — these queries
     are tiny and reused heavily across the fixpoint);

   - the numeric lattices: upper-bound "capacities" for shared
     variables (a parameter expression, or unbounded) and a
     lower-bound state combining the interval domain (single-variable
     rows) with difference-bound rows over several shared variables,
     each bounded below by a parameter expression.

   Everything here is over-approximating with respect to the concrete
   counter systems: a capacity is an upper bound valid in every
   reachable configuration, a lower-bound row is a constraint that
   holds whenever the location it is attached to is populated. *)

module P = Ta.Pexpr
module G = Ta.Guard
module L = Smt.Linexpr

(* --- the parameter oracle ------------------------------------------- *)

module AtomTbl = Hashtbl.Make (struct
  type t = Smt.Atom.t

  let equal = Smt.Atom.equal
  let hash = Smt.Atom.hash
end)

type sat3 = Sat | Unsat | Unknown

type oracle = {
  param_vars : (string * int) list;
  base : Smt.Atom.t list;  (** resilience >= 0 and params >= 0 *)
  cache : sat3 AtomTbl.t;
  mutable queries : int;
}

let lin o (e : P.t) =
  L.of_int_terms (List.map (fun (p, c) -> (c, List.assoc p o.param_vars)) e.P.coeffs) e.P.const

let oracle ~params ~resilience =
  let param_vars = List.mapi (fun i p -> (p, i)) params in
  let o = { param_vars; base = []; cache = AtomTbl.create 64; queries = 0 } in
  let base =
    List.map (fun e -> Smt.Atom.ge (lin o e) L.zero) resilience
    @ List.map (fun (_, v) -> Smt.Atom.ge (L.var v) L.zero) param_vars
  in
  { o with base }

(* Is [base /\ atom] satisfiable?  Solver Unknown/Timeout degrade to
   [Unknown], which every consumer treats in the direction that proves
   less (no refutation, no diagnostic). *)
let solve3 o atom =
  match AtomTbl.find_opt o.cache atom with
  | Some r -> r
  | None ->
    o.queries <- o.queries + 1;
    let r =
      match Smt.Lia.solve ~max_steps:4_000 (atom :: o.base) with
      | Smt.Lia.Sat _ -> Sat
      | Smt.Lia.Unsat -> Unsat
      | Smt.Lia.Unknown | Smt.Lia.Timeout -> Unknown
    in
    AtomTbl.replace o.cache atom r;
    r

(* [e >= 0] holds for every parameter valuation admitted by the
   resilience condition. *)
let valid_nonneg o (e : P.t) = solve3 o (Smt.Atom.le (lin o e) (L.of_int (-1))) = Unsat

(* [e >= 1] for every admitted valuation. *)
let valid_pos o (e : P.t) = solve3 o (Smt.Atom.le (lin o e) L.zero) = Unsat

(* Some admitted valuation has [e <= 0] (definite witness only). *)
let sat_nonpos o (e : P.t) = solve3 o (Smt.Atom.le (lin o e) L.zero) = Sat

(* [a >= b] for every admitted valuation. *)
let entails_ge o a b = valid_nonneg o (P.sub a b)

let queries o = o.queries
let base_atoms o = o.base
let linexpr = lin

(* --- capacities: upper bounds on shared variables -------------------- *)

type capacity = Fin of P.t | Inf

let cap_zero = Fin (P.const 0)

let cap_add a b =
  match (a, b) with Fin x, Fin y -> Fin (P.add x y) | _ -> Inf

let cap_scale k c =
  if k = 0 then cap_zero else match c with Fin e -> Fin (P.scale k e) | Inf -> Inf

let cap_to_string = function Fin e -> P.to_string e | Inf -> "inf"

(* --- lower-bound state ---------------------------------------------- *)

(* [sum coeffs >= lo]: a singleton [coeffs] is an interval bound, a
   multi-variable [coeffs] a difference-bound row.  [coeffs] are kept
   sorted (guard atoms arrive sorted from Guard.ge) so the row key is
   canonical. *)
type row = { coeffs : (string * int) list; lo : P.t }

(* Conjunction of rows; [[]] is top (no information). *)
type lower = row list

let top : lower = []

let row_to_string r =
  String.concat " + "
    (List.map (fun (x, c) -> if c = 1 then x else Printf.sprintf "%d*%s" c x) r.coeffs)
  ^ " >= " ^ P.to_string r.lo

(* Strengthen with a guard atom known to hold: keep the entailment-max
   of the old and new bound for the row key (both hold, so either is
   sound; prefer the provably larger one, keep the old on
   incomparability). *)
let meet o st (a : G.atom) =
  let key = a.G.shared in
  match List.find_opt (fun r -> r.coeffs = key) st with
  | None -> { coeffs = key; lo = a.G.bound } :: st
  | Some r ->
    if (not (P.equal a.G.bound r.lo)) && entails_ge o a.G.bound r.lo then
      { coeffs = key; lo = a.G.bound } :: List.filter (fun r' -> r'.coeffs <> key) st
    else st

(* Push the state across a rule's update: shared variables only grow,
   so [sum >= lo] becomes [sum >= lo + sum coeffs*update]. *)
let shift st (update : (string * int) list) =
  if update = [] then st
  else
    List.map
      (fun r ->
        let d =
          List.fold_left
            (fun acc (x, c) ->
              acc + (c * match List.assoc_opt x update with Some u -> u | None -> 0))
            0 r.coeffs
        in
        if d = 0 then r else { r with lo = P.add r.lo (P.const d) })
      st

(* Join at a control-flow merge: keep only rows present on both sides,
   with the entailment-min of the two bounds (drop incomparable rows —
   sound, since dropping only loses precision). *)
let join o s1 s2 =
  List.filter_map
    (fun r1 ->
      match List.find_opt (fun r2 -> r2.coeffs = r1.coeffs) s2 with
      | None -> None
      | Some r2 ->
        if P.equal r1.lo r2.lo || entails_ge o r2.lo r1.lo then Some r1
        else if entails_ge o r1.lo r2.lo then Some r2
        else None)
    s1

let equal s1 s2 =
  List.length s1 = List.length s2
  && List.for_all
       (fun r1 -> List.exists (fun r2 -> r1.coeffs = r2.coeffs && P.equal r1.lo r2.lo) s2)
       s1

let find_row st key = List.find_opt (fun r -> r.coeffs = key) st
