(** Abstract domains for the invariant engine ({!Absint}).

    A parameter-arithmetic oracle (memoized LIA queries over the
    automaton's parameters under the resilience condition), plus the
    two numeric lattices the fixpoint runs over:

    - {b capacities}: per-shared-variable upper bounds, either a
      parameter expression or unbounded;
    - {b lower-bound states}: conjunctions of rows
      [sum c_i * x_i >= e(params)] — singleton rows form the interval
      domain, multi-variable rows the difference-bound domain.

    The concretization of a lower-bound state at location [l] is the
    set of configurations where every row holds whenever [l] is
    populated; of a capacity, the configurations where the shared
    variable is at most the bound.  Both directions over-approximate
    the reachable configurations (see DESIGN.md, abstraction
    soundness). *)

module P := Ta.Pexpr
module G := Ta.Guard

(** {1 Parameter oracle} *)

type oracle

(** [oracle ~params ~resilience] decides parameter-expression
    entailments under [resilience >= 0 /\ params >= 0].  Queries are
    memoized; solver Unknown/Timeout always degrade toward "cannot
    prove". *)
val oracle : params:string list -> resilience:P.t list -> oracle

(** [e >= 0] for every admitted parameter valuation. *)
val valid_nonneg : oracle -> P.t -> bool

(** [e >= 1] for every admitted parameter valuation. *)
val valid_pos : oracle -> P.t -> bool

(** Some admitted valuation has [e <= 0] (definite SAT witness only —
    Unknown does not count). *)
val sat_nonpos : oracle -> P.t -> bool

(** [entails_ge o a b]: [a >= b] for every admitted valuation. *)
val entails_ge : oracle -> P.t -> P.t -> bool

(** Number of solver queries issued (cache misses). *)
val queries : oracle -> int

(** The base conjunction ([resilience >= 0] and [params >= 0]) over the
    oracle's parameter variables — the hypotheses of every certified
    refutation built on top of the oracle. *)
val base_atoms : oracle -> Smt.Atom.t list

(** A parameter expression over the oracle's variable numbering. *)
val linexpr : oracle -> P.t -> Smt.Linexpr.t

(** {1 Capacities} *)

type capacity = Fin of P.t | Inf

val cap_zero : capacity
val cap_add : capacity -> capacity -> capacity

(** [cap_scale k c] with [k >= 0]; [cap_scale 0 _ = cap_zero]. *)
val cap_scale : int -> capacity -> capacity

val cap_to_string : capacity -> string

(** {1 Lower-bound states} *)

type row = { coeffs : (string * int) list; lo : P.t }

(** Conjunction of rows; [[]] is top. *)
type lower = row list

val top : lower
val row_to_string : row -> string

(** Strengthen with a guard atom known to hold (entailment-max per
    row key, old bound kept on incomparability). *)
val meet : oracle -> lower -> G.atom -> lower

(** Push across a rule update: monotone shared variables shift every
    row's bound up by the update's contribution. *)
val shift : lower -> (string * int) list -> lower

(** Join at a merge: rows present on both sides, entailment-min bound;
    incomparable rows are dropped (sound). *)
val join : oracle -> lower -> lower -> lower

val equal : lower -> lower -> bool
val find_row : lower -> (string * int) list -> row option
