(** Static soundness analysis and slicing for threshold automata.

    The schema method (POPL'17) is sound and complete only under
    structural assumptions: monotone lower-threshold guards,
    non-negative shared updates, DAG-shaped locations, a satisfiable
    resilience condition, and — for liveness — absorbing violation
    targets.  This module checks those assumptions holistically over a
    {!Ta.Automaton.t} and its {!Ta.Spec.t}s and reports structured
    diagnostics with stable codes, instead of ad-hoc [invalid_arg]
    strings scattered across constructors and the checker.

    Diagnostic codes (see DESIGN.md for the full table):
    - [TA001] (error) unknown or duplicate name reference
    - [TA002] (error) non-monotone guard (non-positive coefficient)
    - [TA003] (error) negative shared update
    - [TA004] (error) location graph is not a DAG
    - [TA005] (error) resilience condition unsatisfiable
    - [TA006] (error) population may be negative under the resilience
    - [TA007] (warning) location unreachable from the initial ones
    - [TA008] (warning) dead rule (unreachable source, guard
      unsatisfiable under the resilience condition, or a guard atom with
      a necessarily positive threshold and no live producer)
    - [TA009] (warning) shared variable never read by a guard, a
      justice constraint or a spec
    - [TA010] (warning/error) guard-atom count near/over the 62-atom
      context-bitmask limit
    - [TA011] (error) spec references an unknown name
    - [TA012] (error) safety spec with no observations
    - [TA013] (error) liveness spec with [never_enter] premises
    - [TA014] (error) liveness target set not absorbing
    - [TA015] (error) imported justice constraints assume a resilience
      condition the automaton's does not entail
    - [TA016] (info) slicing summary

    Linter v2 — the abstract-interpretation passes, backed by the
    {!Absint} invariant fixpoint (intervals and difference bounds over
    shared variables, bounded by parameter expressions):
    - [TA017] (warning) syntactically-live rule killed by a statically
      false guard atom (threshold exceeds the capacity of the live
      rules under the resilience condition)
    - [TA018] (warning) syntactically-live rule whose source is never
      populated once statically false guards are removed
    - [TA019] (info) guard atom implied by another atom of the same
      conjunctive guard (dominated, hence redundant)
    - [TA020] (warning) syntactically-reachable location that the
      abstract semantics proves unreachable
    - [TA021] (info) parameterized guard threshold that can be
      non-positive under the resilience condition (the guard is then
      initially true)
    - [TA022] (warning) shared variable read by guards but never
      incremented by any live rule (constantly zero)
    - [TA023] (info) justice constraint on a location never populated
      under the abstract semantics
    - [TA024] (warning) invariant fixpoint lost precision (widening
      dropped rows, or the sweep cap was hit)

    The same analysis powers {!slice}, which removes provably dead rules
    and unreachable locations before universe construction: fewer live
    guard atoms means exponentially fewer contexts and schemas.  The
    sub-modules are re-exported: {!Domain} (oracle and lattices),
    {!Absint} (the fixpoint engine), {!Invariants} (certified static
    refutations for the checker's static-discharge pass). *)

module Domain = Domain
module Absint = Absint
module Invariants = Invariants

type severity = Info | Warning | Error

type subject =
  | Automaton
  | Location of string
  | Rule of string
  | Shared_var of string
  | Spec of string
  | Justice of string  (** the location the justice constraint is on *)

type diagnostic = {
  code : string;  (** stable, e.g. ["TA008"] *)
  severity : severity;
  subject : subject;
  message : string;
  hint : string option;  (** suggested fix *)
}

val severity_to_string : severity -> string
val subject_to_string : subject -> string

(** [max_severity diags] is [None] on an empty list. *)
val max_severity : diagnostic list -> severity option

val errors : diagnostic list -> diagnostic list
val pp : Format.formatter -> diagnostic -> unit

(** [to_json ~ta_name diags] renders one JSON object
    [{"automaton", "errors", "warnings", "diagnostics": [...]}]. *)
val to_json : ta_name:string -> diagnostic list -> string

(** {1 Passes} *)

(** [check_structure ta] — the cheap, solver-free passes: name
    resolution and duplicates (TA001), guard monotonicity (TA002),
    update non-negativity (TA003), DAG shape (TA004, skipped when names
    are broken), and the guard-atom budget (TA010).  Safe on raw
    automaton records that never went through {!Ta.Automaton.make}. *)
val check_structure : Ta.Automaton.t -> diagnostic list

(** [check_spec ta spec] — spec-level sanity: name resolution (TA011),
    refutability (TA012), liveness shape (TA013) and absorbing targets
    (TA014). *)
val check_spec : Ta.Automaton.t -> Ta.Spec.t -> diagnostic list

(** [run ?assume ?specs ta] — every pass.  When the structural name
    checks fail the semantic (solver-backed) passes are skipped; when
    the resilience condition is unsatisfiable (TA005) the passes that
    reason modulo it are skipped.

    [assume] states the resilience condition under which the automaton's
    justice constraints were proven (e.g. the simplified consensus TA
    imports bv-broadcast properties established for [n > 3t]); TA015
    fires when the automaton's own resilience condition does not entail
    it.  Ignored for automata without justice constraints. *)
val run :
  ?assume:Ta.Pexpr.t list ->
  ?specs:Ta.Spec.t list ->
  Ta.Automaton.t ->
  diagnostic list

(** {1 Slicing} *)

(** Locations a spec's conditions and premises mention — pass them as
    [keep] so slicing never drops a location the encoder must resolve. *)
val spec_locations : Ta.Spec.t -> string list

(** [slice ?keep ta] drops rules that provably can never fire and
    locations the analysis proves unreachable, together with the guard
    atoms only they referenced.  Reachability is semantic: syntactic
    reachability (TA007/TA008) intersected with the {!Absint} invariant
    fixpoint, so rules killed by statically false guards (TA017),
    rules with starved sources (TA018) and locations only reachable
    through them (TA020) are removed too.  Removed rules can never fire
    in any run, so every run of [ta] is a run of the slice and vice
    versa: {!Holistic.Checker} outcomes and witnesses are preserved.
    Locations in [keep] are retained even when unreachable (their
    counters stay constantly zero).  Returns the sliced automaton and
    the removal diagnostics (TA007/TA008/TA017/TA018/TA020 plus a TA016
    summary); returns [ta] unchanged when nothing is removable or when
    the resilience condition is unsatisfiable (TA005).

    The input must be well-formed (as per {!Ta.Automaton.make}). *)
val slice : ?keep:string list -> Ta.Automaton.t -> Ta.Automaton.t * diagnostic list

(** [slice_rta ?keep ~rounds rta] — template-level slicing of a
    round-based TA: a template location or rule is dropped only when
    {e every} round instance of it is dead in the [rounds]-round
    unrolling (computed by unrolling with {!Ta.Rta.default_suffix} and
    running {!slice} on the flat automaton, then projecting the
    survivors back through the certified origin maps).  Entry locations
    are never sliced (they anchor the round structure), so the result is
    always a well-formed {!Ta.Rta.t} for the same round count.  [keep]
    lists template location names to protect, in every round.  Returns
    the sliced template and the flat slice's diagnostics (which mention
    unrolled names). *)
val slice_rta :
  ?keep:string list -> rounds:int -> Ta.Rta.t -> Ta.Rta.t * diagnostic list
