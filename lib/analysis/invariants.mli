(** Certified static refutations for the checker's static-discharge
    pass.

    Built once per (automaton, spec) from a [One_round] {!Absint}
    fixpoint.  Every refutation carries the parameter-only conjunction
    it refutes and a {!Smt.Certificate.Static} certificate, proved by
    {!Smt.Lia.solve_cert} and validated by {!Smt.Certcheck} at build
    time — refutations that fail either step are silently dropped, so
    no prune ever rests on an unverified claim. *)

module A := Ta.Automaton
module G := Ta.Guard

type refutation = {
  descr : string;
  atoms : Smt.Atom.t list;
      (** the refuted conjunction: resilience, parameter
          non-negativity, and the static claim *)
  cert : Smt.Certificate.t;  (** [Static _], pre-validated *)
}

type t = {
  absint : Absint.t;
  guard_refs : (G.atom * refutation) list;
  root : refutation option;
}

(** [build ?spec ta] runs the fixpoint under the spec's assumptions
    ([never_enter], init-pinned-empty locations) and certifies the
    statically-false guard atoms plus, when possible, a root
    refutation of an observation/final-condition atom (which refutes
    the spec's entire enumeration). *)
val build : ?spec:Ta.Spec.t -> A.t -> t

(** The certified refutation of a statically-false guard atom: any
    schema unlocking this atom has an UNSAT query. *)
val guard_refutation : t -> G.atom -> refutation option

(** A certified refutation covering every schema of the spec. *)
val root_refutation : t -> refutation option

(** The synthesized lower-bound invariant at a location. *)
val location_invariant : t -> string -> Domain.lower

(** Whether any refutation is available. *)
val any : t -> bool
