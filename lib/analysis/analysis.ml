module Domain = Domain
module Absint = Absint
module Invariants = Invariants
module A = Ta.Automaton
module G = Ta.Guard
module P = Ta.Pexpr
module B = Numbers.Bigint
module L = Smt.Linexpr

type severity = Info | Warning | Error

type subject =
  | Automaton
  | Location of string
  | Rule of string
  | Shared_var of string
  | Spec of string
  | Justice of string

type diagnostic = {
  code : string;
  severity : severity;
  subject : subject;
  message : string;
  hint : string option;
}

let diag ?hint code severity subject message = { code; severity; subject; message; hint }

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let subject_to_string = function
  | Automaton -> "automaton"
  | Location l -> "location " ^ l
  | Rule r -> "rule " ^ r
  | Shared_var x -> "shared " ^ x
  | Spec s -> "spec " ^ s
  | Justice l -> "justice on " ^ l

(* [Info < Warning < Error] by constructor order. *)
let max_severity = function
  | [] -> None
  | diags -> Some (List.fold_left (fun acc d -> max acc d.severity) Info diags)

let errors = List.filter (fun d -> d.severity = Error)

let pp fmt d =
  Format.fprintf fmt "%s %s (%s): %s" d.code (severity_to_string d.severity)
    (subject_to_string d.subject) d.message;
  match d.hint with
  | Some h -> Format.fprintf fmt " [fix: %s]" h
  | None -> ()

(* --- JSON ----------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let subject_json = function
  | Automaton -> ("automaton", None)
  | Location l -> ("location", Some l)
  | Rule r -> ("rule", Some r)
  | Shared_var x -> ("shared", Some x)
  | Spec s -> ("spec", Some s)
  | Justice l -> ("justice", Some l)

let diagnostic_json d =
  let kind, name = subject_json d.subject in
  let fields =
    [
      Printf.sprintf "\"code\":\"%s\"" d.code;
      Printf.sprintf "\"severity\":\"%s\"" (severity_to_string d.severity);
      Printf.sprintf "\"subject\":\"%s\"" kind;
    ]
    @ (match name with
      | Some n -> [ Printf.sprintf "\"name\":\"%s\"" (json_escape n) ]
      | None -> [])
    @ [ Printf.sprintf "\"message\":\"%s\"" (json_escape d.message) ]
    @
    match d.hint with
    | Some h -> [ Printf.sprintf "\"hint\":\"%s\"" (json_escape h) ]
    | None -> []
  in
  "{" ^ String.concat "," fields ^ "}"

(* Stable (code, subject, location, message) order, independent of the
   order the passes ran in — CI jq gates index into this list. *)
let compare_diagnostics d1 d2 =
  let k1, n1 = subject_json d1.subject and k2, n2 = subject_json d2.subject in
  Stdlib.compare (d1.code, k1, n1, d1.message) (d2.code, k2, n2, d2.message)

let sort_diagnostics = List.stable_sort compare_diagnostics

let to_json ~ta_name diags =
  let diags = sort_diagnostics diags in
  let count s = List.length (List.filter (fun d -> d.severity = s) diags) in
  Printf.sprintf "{\"automaton\":\"%s\",\"errors\":%d,\"warnings\":%d,\"diagnostics\":[%s]}"
    (json_escape ta_name) (count Error) (count Warning)
    (String.concat "," (List.map diagnostic_json diags))

(* --- LIA environment (mirrors Universe's encoding) ------------------ *)

type env = {
  intern : string -> int;
  name_of : int -> string option;
}

let var_env (ta : A.t) =
  let table = Hashtbl.create 16 in
  let names = Hashtbl.create 16 in
  let next = ref 0 in
  let intern name =
    match Hashtbl.find_opt table name with
    | Some i -> i
    | None ->
      let i = !next in
      incr next;
      Hashtbl.replace table name i;
      Hashtbl.replace names i name;
      i
  in
  List.iter (fun p -> ignore (intern ("p:" ^ p))) ta.params;
  List.iter (fun x -> ignore (intern ("s:" ^ x))) ta.shared;
  { intern; name_of = Hashtbl.find_opt names }

let pexpr_linexpr env (e : P.t) =
  L.of_int_terms (List.map (fun (p, c) -> (c, env.intern ("p:" ^ p))) e.coeffs) e.const

let guard_lhs env (a : G.atom) =
  L.of_int_terms (List.map (fun (x, c) -> (c, env.intern ("s:" ^ x))) a.shared) 0

let guard_true env (a : G.atom) =
  Smt.Atom.ge (guard_lhs env a) (pexpr_linexpr env a.bound)

(* Resilience plus non-negative parameters; [with_shared] adds the
   non-negativity of the shared variables (needed when guards appear). *)
let base_atoms ?(with_shared = false) env (ta : A.t) =
  let nonneg name = Smt.Atom.ge (L.var (env.intern name)) L.zero in
  List.map (fun e -> Smt.Atom.ge (pexpr_linexpr env e) L.zero) ta.resilience
  @ List.map (fun p -> nonneg ("p:" ^ p)) ta.params
  @ if with_shared then List.map (fun x -> nonneg ("s:" ^ x)) ta.shared else []

let definitely_unsat atoms =
  match Smt.Lia.solve atoms with
  | Smt.Lia.Unsat -> true
  | Smt.Lia.Sat _ | Smt.Lia.Unknown | Smt.Lia.Timeout -> false (* conservative *)

(* Render the parameter part of a model, e.g. "n=5, t=2, f=0". *)
let model_params env model =
  List.filter_map
    (fun (v, b) ->
      match env.name_of v with
      | Some name when String.length name > 2 && String.sub name 0 2 = "p:" ->
        Some (Printf.sprintf "%s=%s" (String.sub name 2 (String.length name - 2)) (B.to_string b))
      | _ -> None)
    model
  |> String.concat ", "

(* --- TA001/TA002/TA003: names, monotonicity, updates ---------------- *)

let check_names (ta : A.t) =
  let out = ref [] in
  let emit d = out := d :: !out in
  let dup what subject xs =
    let sorted = List.sort Stdlib.compare xs in
    let rec dups = function
      | a :: b :: rest when a = b -> a :: dups (List.filter (( <> ) a) rest)
      | _ :: rest -> dups rest
      | [] -> []
    in
    List.iter
      (fun d ->
        emit
          (diag "TA001" Error (subject d)
             (Printf.sprintf "duplicate %s %S" what d)
             ~hint:"rename one of the duplicates"))
      (dups sorted)
  in
  dup "location" (fun l -> Location l) ta.locations;
  dup "shared variable" (fun x -> Shared_var x) ta.shared;
  dup "parameter" (fun _ -> Automaton) ta.params;
  dup "rule name" (fun r -> Rule r) (List.map (fun (r : A.rule) -> r.name) ta.rules);
  let known_loc l = List.mem l ta.locations in
  let known_shared x = List.mem x ta.shared in
  let known_param p = List.mem p ta.params in
  List.iter
    (fun l ->
      if not (known_loc l) then
        emit
          (diag "TA001" Error (Location l)
             (Printf.sprintf "unknown initial location %S" l)
             ~hint:"add it to locations or fix the spelling"))
    ta.initial;
  let check_pexpr subject what (e : P.t) =
    List.iter
      (fun p ->
        if not (known_param p) then
          emit (diag "TA001" Error subject (Printf.sprintf "unknown parameter %S in %s" p what)))
      (P.params e)
  in
  List.iter (check_pexpr Automaton "the resilience condition") ta.resilience;
  check_pexpr Automaton "the population expression" ta.population;
  let check_guard subject what (g : G.t) =
    List.iter
      (fun (a : G.atom) ->
        List.iter
          (fun (x, c) ->
            if not (known_shared x) then
              emit
                (diag "TA001" Error subject
                   (Printf.sprintf "unknown shared variable %S in %s" x what));
            if c <= 0 then
              emit
                (diag "TA002" Error subject
                   (Printf.sprintf
                      "non-monotone guard in %s: coefficient %d for %s (threshold guards \
                       must be monotone lower bounds)"
                      what c x)
                   ~hint:"threshold automata only support positive guard coefficients"))
          a.shared;
        check_pexpr subject ("the guard of " ^ what) a.bound)
      g
  in
  List.iter
    (fun (r : A.rule) ->
      let subject = Rule r.name in
      if not (known_loc r.source) then
        emit (diag "TA001" Error subject (Printf.sprintf "unknown source location %S" r.source));
      if not (known_loc r.target) then
        emit (diag "TA001" Error subject (Printf.sprintf "unknown target location %S" r.target));
      check_guard subject ("rule " ^ r.name) r.guard;
      List.iter
        (fun (x, c) ->
          if not (known_shared x) then
            emit
              (diag "TA001" Error subject (Printf.sprintf "updates unknown shared variable %S" x));
          if c < 0 then
            emit
              (diag "TA003" Error subject
                 (Printf.sprintf "negative update %d to %s breaks monotonicity" c x)
                 ~hint:"shared variables are message counters and may only grow"))
        r.update)
    ta.rules;
  List.iter
    (fun (j : A.justice) ->
      if not (known_loc j.loc) then
        emit
          (diag "TA001" Error (Justice j.loc)
             (Printf.sprintf "justice constraint on unknown location %S" j.loc));
      check_guard (Justice j.loc) "a justice constraint" j.unless)
    ta.justice;
  List.iter
    (fun (a, b) ->
      List.iter
        (fun l ->
          if not (known_loc l) then
            emit
              (diag "TA001" Error (Location l)
                 (Printf.sprintf "round switch references unknown location %S" l)))
        [ a; b ])
    ta.round_switch;
  List.rev !out

(* --- TA004: DAG shape ----------------------------------------------- *)

let check_dag (ta : A.t) =
  if A.is_dag ta then []
  else
    (* Rerun Kahn's algorithm to name the locations stuck on a cycle. *)
    let indegree = Hashtbl.create 16 in
    List.iter (fun l -> Hashtbl.replace indegree l 0) ta.locations;
    List.iter
      (fun (r : A.rule) ->
        Hashtbl.replace indegree r.target (Hashtbl.find indegree r.target + 1))
      ta.rules;
    let queue = Queue.create () in
    List.iter (fun l -> if Hashtbl.find indegree l = 0 then Queue.add l queue) ta.locations;
    while not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      List.iter
        (fun (r : A.rule) ->
          let d = Hashtbl.find indegree r.target - 1 in
          Hashtbl.replace indegree r.target d;
          if d = 0 then Queue.add r.target queue)
        (A.rules_from ta l)
    done;
    let cyclic = List.filter (fun l -> Hashtbl.find indegree l > 0) ta.locations in
    [
      diag "TA004" Error Automaton
        (Printf.sprintf "the location graph is not a DAG; locations on a cycle: %s"
           (String.concat ", " cyclic))
        ~hint:
          "model repeated behaviour with the self_loops count or round_switch edges; the \
           schema method needs acyclic locations";
    ]

(* --- TA010: guard-atom budget --------------------------------------- *)

(* Contexts are bitmasks over guard ids in a 63-bit OCaml int (see
   Universe.max_guard_atoms); warn within [headroom] atoms of the limit. *)
let max_guard_atoms = 62
let atom_headroom = 10

let check_atom_budget (ta : A.t) =
  let n = List.length (A.unique_guard_atoms ta) in
  if n > max_guard_atoms then
    [
      diag "TA010" Error Automaton
        (Printf.sprintf "%d unique guard atoms exceed the %d-atom context-bitmask limit" n
           max_guard_atoms)
        ~hint:"merge guards or split the automaton; Universe.build will refuse this model";
    ]
  else if n > max_guard_atoms - atom_headroom then
    [
      diag "TA010" Warning Automaton
        (Printf.sprintf "%d unique guard atoms approach the %d-atom context-bitmask limit"
           n max_guard_atoms);
    ]
  else []

let check_structure (ta : A.t) =
  let names = check_names ta in
  let dag = if names = [] then check_dag ta else [] in
  names @ dag @ check_atom_budget ta

(* --- TA011..TA014: spec-level sanity -------------------------------- *)

let cond_locations (c : Ta.Cond.t) =
  List.concat_map
    (fun (a : Ta.Cond.atom) ->
      List.filter_map
        (fun (term, _) -> match term with Ta.Cond.Counter l -> Some l | _ -> None)
        a.terms)
    c

let spec_locations (s : Ta.Spec.t) =
  s.never_enter @ cond_locations s.init
  @ List.concat_map (fun (_, c) -> cond_locations c) s.observations
  @ cond_locations s.final_cond
  |> List.sort_uniq Stdlib.compare

(* Locations whose joint emptiness the liveness target asserts (same
   convention as the checker): positive-coefficient counter terms of the
   final condition. *)
let target_locations (spec : Ta.Spec.t) =
  List.concat_map
    (fun (a : Ta.Cond.atom) ->
      List.filter_map
        (fun (term, c) ->
          match term with Ta.Cond.Counter l when c > 0 -> Some l | _ -> None)
        a.terms)
    spec.final_cond
  |> List.sort_uniq Stdlib.compare

let check_spec (ta : A.t) (spec : Ta.Spec.t) =
  let out = ref [] in
  let emit d = out := d :: !out in
  let subject = Spec spec.name in
  let check_cond what (c : Ta.Cond.t) =
    List.iter
      (fun (a : Ta.Cond.atom) ->
        List.iter
          (fun (term, _) ->
            let bad kind name known =
              if not known then
                emit
                  (diag "TA011" Error subject
                     (Printf.sprintf "unknown %s %S in %s" kind name what)
                     ~hint:"fix the spelling or add it to the automaton")
            in
            match term with
            | Ta.Cond.Counter l -> bad "location" l (List.mem l ta.locations)
            | Ta.Cond.Shared x -> bad "shared variable" x (List.mem x ta.shared)
            | Ta.Cond.Param p -> bad "parameter" p (List.mem p ta.params))
          a.terms)
      c
  in
  check_cond "the initial condition" spec.init;
  List.iter (fun (label, c) -> check_cond (Printf.sprintf "observation %S" label) c) spec.observations;
  check_cond "the final condition" spec.final_cond;
  List.iter
    (fun l ->
      if not (List.mem l ta.locations) then
        emit
          (diag "TA011" Error subject
             (Printf.sprintf "never_enter references unknown location %S" l)))
    spec.never_enter;
  if spec.kind = `Safety && spec.observations = [] then
    emit
      (diag "TA012" Error subject "safety spec has no observations (nothing to refute)"
         ~hint:"add at least one bad observation");
  if spec.require_stable then begin
    if spec.never_enter <> [] then
      emit
        (diag "TA013" Error subject
           "liveness spec cannot use never_enter premises"
           ~hint:"encode the premise as an observation instead");
    let locs = target_locations spec in
    if List.for_all (fun l -> List.mem l ta.locations) locs
       && not (A.absorbing_when_empty ta locs)
    then
      emit
        (diag "TA014" Error subject
           (Printf.sprintf
              "the liveness target {%s} is not absorbing: some rule re-enters it, so \
               end-of-run evaluation would be unsound"
              (String.concat ", " locs))
           ~hint:"make the target locations sinks of the violation region")
  end;
  List.rev !out

(* --- TA009: unused shared variables --------------------------------- *)

let guard_vars (g : G.t) = List.concat_map (fun (a : G.atom) -> List.map fst a.shared) g

let cond_shared (c : Ta.Cond.t) =
  List.concat_map
    (fun (a : Ta.Cond.atom) ->
      List.filter_map
        (fun (term, _) -> match term with Ta.Cond.Shared x -> Some x | _ -> None)
        a.terms)
    c

let check_unused_shared (ta : A.t) specs =
  let read =
    List.concat_map (fun (r : A.rule) -> guard_vars r.guard) ta.rules
    @ List.concat_map (fun (j : A.justice) -> guard_vars j.unless) ta.justice
    @ List.concat_map
        (fun (s : Ta.Spec.t) ->
          cond_shared s.init
          @ List.concat_map (fun (_, c) -> cond_shared c) s.observations
          @ cond_shared s.final_cond)
        specs
  in
  let written =
    List.concat_map
      (fun (r : A.rule) -> List.filter_map (fun (x, c) -> if c > 0 then Some x else None) r.update)
      ta.rules
  in
  List.filter_map
    (fun x ->
      if List.mem x read then None
      else if List.mem x written then
        Some
          (diag "TA009" Warning (Shared_var x)
             "incremented but never read by any guard, justice constraint or spec"
             ~hint:"drop the variable or the updates to it")
      else
        Some
          (diag "TA009" Warning (Shared_var x) "never read or written"
             ~hint:"drop the variable"))
    ta.shared

(* --- TA005/TA006: resilience satisfiability and population ---------- *)

let resilience_unsat env (ta : A.t) =
  definitely_unsat (base_atoms env ta)

let ta005 (ta : A.t) =
  diag "TA005" Error Automaton
    (Printf.sprintf "the resilience condition %s admits no parameter valuation"
       (String.concat " /\\ "
          (List.map (fun e -> P.to_string e ^ " >= 0") ta.resilience)))
    ~hint:"the checker would vacuously report every property as holding"

let check_population env (ta : A.t) =
  match
    Smt.Lia.solve
      (Smt.Atom.le (pexpr_linexpr env ta.population) (L.of_int (-1)) :: base_atoms env ta)
  with
  | Smt.Lia.Sat model ->
    [
      diag "TA006" Error Automaton
        (Printf.sprintf "the population %s can be negative under the resilience condition \
                         (e.g. %s)"
           (P.to_string ta.population) (model_params env model))
        ~hint:"strengthen the resilience condition or fix the population expression";
    ]
  | Smt.Lia.Unsat | Smt.Lia.Unknown | Smt.Lia.Timeout -> []

(* --- TA015: imported justice assumptions ---------------------------- *)

let check_justice_assumptions env (ta : A.t) assume =
  if ta.justice = [] then []
  else
    List.filter_map
      (fun (e : P.t) ->
        match
          Smt.Lia.solve
            (Smt.Atom.le (pexpr_linexpr env e) (L.of_int (-1)) :: base_atoms env ta)
        with
        | Smt.Lia.Sat model ->
          Some
            (diag "TA015" Error Automaton
               (Printf.sprintf
                  "the justice constraints were imported under the assumption %s >= 0, \
                   which the resilience condition does not entail (e.g. %s)"
                  (P.to_string e) (model_params env model))
               ~hint:
                 "re-verify the imported component under this resilience condition, or \
                  strengthen it")
        | Smt.Lia.Unsat | Smt.Lia.Unknown | Smt.Lia.Timeout -> None)
      assume

(* --- dead rules and unreachable locations (TA007/TA008) ------------- *)

type dead_reason =
  | Unreachable_source
  | Unsat_guard
  | Unproducible of G.atom

type live_info = {
  live : A.rule list;  (** in original order *)
  reach : (string, unit) Hashtbl.t;
  dead : (A.rule * dead_reason) list;  (** in original order *)
  unreachable : string list;  (** in original order *)
}

(* Greatest fixpoint: start from all rules and repeatedly discard rules
   whose source is unreachable (via the remaining rules plus the
   round-switch edges, so multi-round semantics stays covered), whose
   guard is unsatisfiable under the resilience condition, or one of
   whose guard atoms has a necessarily positive threshold and no
   remaining producer rule that increments its variables without itself
   requiring the same atom.  Each discarded rule provably never fires:
   initially its guard's variables are zero and only producer rules can
   raise them, so by induction over run prefixes the guard never
   becomes true (or the source counter never becomes positive). *)
let live_analysis env (ta : A.t) =
  let base = base_atoms ~with_shared:true env ta in
  let guard_sat =
    let cache = Hashtbl.create 16 in
    fun (r : A.rule) ->
      match Hashtbl.find_opt cache r.name with
      | Some b -> b
      | None ->
        let b = not (definitely_unsat (List.map (guard_true env) r.guard @ base)) in
        Hashtbl.add cache r.name b;
        b
  in
  let needs_producer =
    let cache = Hashtbl.create 16 in
    fun (a : G.atom) ->
      let key = (a.shared, List.sort Stdlib.compare a.bound.P.coeffs, a.bound.P.const) in
      match Hashtbl.find_opt cache key with
      | Some b -> b
      | None ->
        let b = definitely_unsat (Smt.Atom.le (pexpr_linexpr env a.bound) L.zero :: base) in
        Hashtbl.add cache key b;
        b
  in
  let increments (r : A.rule) (a : G.atom) =
    List.exists (fun (x, c) -> c > 0 && List.mem_assoc x a.shared) r.update
  in
  let self_guarded (r : A.rule) (a : G.atom) = List.exists (G.atom_equal a) r.guard in
  let reachable live =
    let reach = Hashtbl.create 16 in
    List.iter (fun l -> Hashtbl.replace reach l ()) ta.initial;
    let changed = ref true in
    while !changed do
      changed := false;
      let visit src dst =
        if Hashtbl.mem reach src && not (Hashtbl.mem reach dst) then begin
          Hashtbl.replace reach dst ();
          changed := true
        end
      in
      List.iter (fun (r : A.rule) -> visit r.source r.target) live;
      List.iter (fun (a, b) -> visit a b) ta.round_switch
    done;
    reach
  in
  let producible live (a : G.atom) =
    (not (needs_producer a))
    || List.exists (fun r' -> increments r' a && not (self_guarded r' a)) live
  in
  let rec fixpoint live =
    let reach = reachable live in
    let live' =
      List.filter
        (fun (r : A.rule) ->
          Hashtbl.mem reach r.source && guard_sat r
          && List.for_all (producible live) r.guard)
        live
    in
    if List.length live' = List.length live then (live, reach) else fixpoint live'
  in
  let live, reach = fixpoint ta.rules in
  let live_names = List.map (fun (r : A.rule) -> r.name) live in
  let dead =
    List.filter_map
      (fun (r : A.rule) ->
        if List.mem r.name live_names then None
        else
          let reason =
            if not (Hashtbl.mem reach r.source) then Unreachable_source
            else if not (guard_sat r) then Unsat_guard
            else
              match List.find_opt (fun a -> not (producible live a)) r.guard with
              | Some a -> Unproducible a
              | None -> Unreachable_source (* unreachable via a dropped predecessor *)
          in
          Some (r, reason))
      ta.rules
  in
  let unreachable = List.filter (fun l -> not (Hashtbl.mem reach l)) ta.locations in
  { live; reach; dead; unreachable }

let dead_rule_diag ((r : A.rule), reason) =
  let message =
    match reason with
    | Unreachable_source ->
      Printf.sprintf "can never fire: source %s is unreachable from the initial locations"
        r.source
    | Unsat_guard ->
      Printf.sprintf "can never fire: guard %s is unsatisfiable under the resilience condition"
        (G.to_string r.guard)
    | Unproducible a ->
      Printf.sprintf
        "can never fire: guard atom %s has a necessarily positive threshold but no live \
         rule increments %s"
        (G.atom_to_string a)
        (String.concat ", " (List.map fst a.shared))
  in
  diag "TA008" Warning (Rule r.name) message ~hint:"drop the rule, or fix its guard or source"

let unreachable_diag l =
  diag "TA007" Warning (Location l) "unreachable from the initial locations"
    ~hint:"drop the location or add a rule reaching it"

(* --- linter v2: abstract-interpretation passes (TA017..TA024) -------- *)

(* Without round-switch edges the one-round encoding is the full
   semantics, so the fixpoint may use finite (population-scaled)
   capacities; with rounds, capacities of produced variables are
   unbounded and only the zero/nonzero distinction remains. *)
let lint_mode (ta : A.t) =
  if ta.round_switch = [] then Absint.One_round else Absint.Cross_round

let lint_absint (ta : A.t) =
  Absint.build ~assume:{ Absint.no_assumptions with mode = lint_mode ta } ta

(* TA017 when a statically-false guard atom kills the rule, TA018 when
   the fixpoint starves its source instead.  Only for rules the
   syntactic analysis (TA008) considers live. *)
let absint_dead_rule_diag ab (r : A.rule) =
  match
    List.find_map (fun a -> Option.map (fun c -> (a, c)) (Absint.false_atom ab a)) r.guard
  with
  | Some (a, cap) ->
    diag "TA017" Warning (Rule r.name)
      (Printf.sprintf
         "can never fire: guard atom %s is statically false — its left-hand side is \
          bounded by %s, below the threshold under the resilience condition"
         (G.atom_to_string a) (P.to_string cap))
      ~hint:"the threshold exceeds the capacity of the live rules; drop the rule or fix it"
  | None ->
    diag "TA018" Warning (Rule r.name)
      "can never fire under the abstract fixpoint: its source is never populated once \
       statically false guards are removed"
      ~hint:"drop the rule; the invariant engine proves it dead beyond syntactic \
             reachability"

let absint_unreachable_diag l =
  diag "TA020" Warning (Location l)
    "unreachable under the abstract semantics (though syntactically reachable): every \
     path to it needs a statically false guard"
    ~hint:"drop the location or fix the guards on its incoming paths"

let check_absint (ta : A.t) (info : live_info) ab =
  let oracle = ab.Absint.oracle in
  let out = ref [] in
  let emit d = out := d :: !out in
  List.iter
    (fun (r : A.rule) ->
      if not (Absint.rule_live ab r) then emit (absint_dead_rule_diag ab r))
    info.live;
  List.iter
    (fun l ->
      if Hashtbl.mem info.reach l && not (Absint.entered ab l) then
        emit (absint_unreachable_diag l))
    ta.locations;
  (* TA019: within one conjunctive guard, an atom implied by another is
     redundant: coefficients dominate pointwise and the implying bound
     entails the implied one. *)
  let implies (a : G.atom) (b : G.atom) =
    List.for_all
      (fun (x, ca) ->
        match List.assoc_opt x b.G.shared with Some cb -> cb >= ca | None -> false)
      a.G.shared
    && Domain.entails_ge oracle a.G.bound b.G.bound
  in
  List.iter
    (fun (r : A.rule) ->
      let rec pairs = function
        | [] -> []
        | a :: rest -> List.map (fun b -> (a, b)) rest @ pairs rest
      in
      List.iter
        (fun (a, b) ->
          if implies a b then
            emit
              (diag "TA019" Info (Rule r.name)
                 (Printf.sprintf "guard atom %s is implied by %s and is redundant"
                    (G.atom_to_string b) (G.atom_to_string a)))
          else if implies b a then
            emit
              (diag "TA019" Info (Rule r.name)
                 (Printf.sprintf "guard atom %s is implied by %s and is redundant"
                    (G.atom_to_string a) (G.atom_to_string b))))
        (pairs r.guard))
    info.live;
  (* TA021: a parameterized threshold that can be non-positive makes
     the atom initially (hence trivially) true for those valuations. *)
  List.iter
    (fun (a : G.atom) ->
      if a.G.bound.P.coeffs <> [] && Domain.sat_nonpos oracle a.G.bound then
        emit
          (diag "TA021" Info Automaton
             (Printf.sprintf
                "threshold %s of guard atom %s can be non-positive under the resilience \
                 condition; the guard is then true from the initial state on"
                (P.to_string a.G.bound) (G.atom_to_string a))))
    (A.unique_guard_atoms ta);
  (* TA022: a variable some guard reads but no live rule ever
     increments is constantly zero. *)
  let read_vars =
    List.sort_uniq Stdlib.compare
      (List.concat_map (fun (r : A.rule) -> guard_vars r.guard) ta.rules)
  in
  List.iter
    (fun x ->
      if List.mem x read_vars then
        match Absint.shared_cap ab x with
        | Domain.Fin e when P.equal e (P.const 0) ->
          emit
            (diag "TA022" Warning (Shared_var x)
               "read by guards but never incremented by any live rule: it is constantly \
                zero"
               ~hint:"every guard reading it at a positive threshold is statically false")
        | _ -> ())
    ta.shared;
  List.iter
    (fun (j : A.justice) ->
      if not (Absint.entered ab j.loc) then
        emit
          (diag "TA023" Info (Justice j.loc)
             "justice constraint on a location that is never populated under the \
              abstract semantics"))
    ta.justice;
  if ab.Absint.capped then
    emit
      (diag "TA024" Warning Automaton
         (Printf.sprintf
            "the invariant fixpoint hit its sweep cap after %d sweeps; lower-bound \
             invariants were discarded (the refutation passes are unaffected)"
            ab.Absint.sweeps))
  else if ab.Absint.widened <> [] then
    emit
      (diag "TA024" Warning Automaton
         (Printf.sprintf
            "widening dropped %d unstable invariant row(s) (e.g. %s at %s)"
            (List.length ab.Absint.widened)
            (Domain.row_to_string (snd (List.hd ab.Absint.widened)))
            (fst (List.hd ab.Absint.widened))));
  List.rev !out

(* --- the full analysis ---------------------------------------------- *)

let run ?(assume = []) ?(specs = []) (ta : A.t) =
  let structural = check_structure ta in
  let names_broken =
    List.exists (fun d -> d.code = "TA001" || d.code = "TA002" || d.code = "TA003") structural
  in
  if names_broken then structural
  else
    let env = var_env ta in
    let semantic =
      if resilience_unsat env ta then [ ta005 ta ]
      else
        let info = live_analysis env ta in
        check_population env ta
        @ List.map unreachable_diag info.unreachable
        @ List.map dead_rule_diag info.dead
        @ check_absint ta info (lint_absint ta)
        @ check_justice_assumptions env ta assume
    in
    structural @ semantic @ check_unused_shared ta specs
    @ List.concat_map (check_spec ta) specs

(* --- slicing --------------------------------------------------------- *)

let slice ?(keep = []) (ta : A.t) =
  let env = var_env ta in
  if resilience_unsat env ta then (ta, [ ta005 ta ])
  else
    let info = live_analysis env ta in
    let ab = lint_absint ta in
    (* Semantic reachability: syntactic reachability intersected with the
       invariant fixpoint.  A live rule under the fixpoint has both
       endpoints abstractly entered, so the kept rule set is closed over
       the kept locations. *)
    let keep_loc l =
      (Hashtbl.mem info.reach l && Absint.entered ab l) || List.mem l keep
    in
    let dropped_locs = List.filter (fun l -> not (keep_loc l)) ta.locations in
    let live, absint_dead =
      List.partition (fun (r : A.rule) -> Absint.rule_live ab r) info.live
    in
    if info.dead = [] && absint_dead = [] && dropped_locs = [] then (ta, [])
    else begin
      let live_names = List.map (fun (r : A.rule) -> r.name) live in
      let sliced =
        {
          ta with
          locations = List.filter keep_loc ta.locations;
          initial = List.filter keep_loc ta.initial;
          rules = List.filter (fun (r : A.rule) -> List.mem r.name live_names) ta.rules;
          justice = List.filter (fun (j : A.justice) -> keep_loc j.loc) ta.justice;
          round_switch =
            List.filter (fun (a, b) -> keep_loc a && keep_loc b) ta.round_switch;
        }
      in
      let atoms_before = List.length (A.unique_guard_atoms ta) in
      let atoms_after = List.length (A.unique_guard_atoms sliced) in
      let summary =
        diag "TA016" Info Automaton
          (Printf.sprintf
             "sliced: %d dead rules and %d unreachable locations removed; unique guard \
              atoms %d -> %d"
             (List.length info.dead + List.length absint_dead)
             (List.length dropped_locs) atoms_before atoms_after)
      in
      let syntactic_drop, absint_drop =
        List.partition (fun l -> not (Hashtbl.mem info.reach l)) dropped_locs
      in
      ( sliced,
        List.map unreachable_diag syntactic_drop
        @ List.map absint_unreachable_diag absint_drop
        @ List.map dead_rule_diag info.dead
        @ List.map (absint_dead_rule_diag ab) absint_dead
        @ [ summary ] )
    end

(* --- template-level slicing of round-based TAs ----------------------- *)

module Rta = Ta.Rta

let slice_rta ?(keep = []) ~rounds (rta : Rta.t) =
  let u = Rta.unroll ~rounds rta in
  let n_phases = List.length rta.Rta.phases in
  (* Protect [keep] template locations in every round they occur in. *)
  let keep_flat =
    List.concat_map
      (fun (m, (r, base)) -> if r >= 0 && List.mem base keep then [ m ] else [])
      u.Rta.location_origin
  in
  let sliced, diags = slice ~keep:keep_flat u.Rta.automaton in
  if sliced == u.Rta.automaton then (rta, diags)
  else begin
    (* A template element survives iff any of its round instances did. *)
    let kept = Hashtbl.create 64 in
    List.iter
      (fun m ->
        match Rta.origin_of_location u m with
        | Some (r, base) when r >= 0 -> Hashtbl.replace kept (r mod n_phases, `Loc base) ()
        | _ -> ())
      sliced.A.locations;
    List.iter
      (fun (ru : A.rule) ->
        match Rta.origin_of_rule u ru.name with
        | Some (r, base) -> Hashtbl.replace kept (r mod n_phases, `Rule base) ()
        | None -> ())
      sliced.A.rules;
    let phases =
      List.mapi
        (fun i (p : Rta.phase) ->
          let keep_loc l =
            Hashtbl.mem kept (i, `Loc l) || List.mem l p.Rta.entry || List.mem l keep
          in
          let keep_rule (ru : Rta.rule) =
            Hashtbl.mem kept (i, `Rule ru.Rta.name)
            (* The last round's Next rules have no flat-rule instance of
               their own (they live in round_switch), so keep them
               whenever their endpoints survive. *)
            || (match ru.Rta.target with
               | Rta.Next _ -> keep_loc ru.Rta.source
               | Rta.Here _ -> false)
          in
          Rta.phase ~name:p.Rta.phase_name
            ~locations:(List.filter keep_loc p.Rta.locations)
            ~pinned:(List.filter keep_loc p.Rta.pinned)
            ~entry:p.Rta.entry ~shared:p.Rta.shared
            ~rules:(List.filter keep_rule p.Rta.rules)
            ~justice:(List.filter (fun (j : Rta.justice) -> keep_loc j.Rta.loc) p.Rta.justice)
            ~self_loops:p.Rta.self_loops ())
        rta.Rta.phases
    in
    ( Rta.make ~name:rta.Rta.name ~params:rta.Rta.params
        ~global_shared:rta.Rta.global_shared ~resilience:rta.Rta.resilience
        ~population:rta.Rta.population ~phases (),
      diags )
  end
