(* Certified static refutations for the checker.

   Built once per (automaton, spec) from a One_round Absint fixpoint,
   this module turns the engine's structural facts into refutations the
   checker can apply with zero solver steps — each carrying a Farkas
   certificate (wrapped in Certificate.Static) over the parameters
   only, proved by the certifying solver and pre-validated by the
   standalone checker at build time.  A refutation that cannot be
   certified is dropped: no prune ever rests on an unverified claim.

   Two kinds:

   - {b guard refutations}: a statically-false guard atom.  Any schema
     whose event list unlocks the atom asserts guard-truth at a point
     where the atom's left-hand side is still within the capacity of
     the live rules not guarded by the atom, so the schema's query is
     UNSAT (DESIGN.md gives the first-false-unlock argument).  The
     certificate refutes [resilience /\ params >= 0 /\ cap - bound >= 0].

   - a {b root refutation}: an observation (or final-condition) atom
     whose upper bound under the capacities is provably negative.
     Every emitted schema of the spec asserts every observation and
     the final condition, so a single such atom refutes the entire
     enumeration.  The certificate refutes
     [resilience /\ params >= 0 /\ ub >= 0]. *)

module A = Ta.Automaton
module G = Ta.Guard
module P = Ta.Pexpr
module D = Domain
module C = Smt.Certificate
module L = Smt.Linexpr

type refutation = {
  descr : string;
  atoms : Smt.Atom.t list;  (** the refuted parameter-only conjunction *)
  cert : C.t;  (** [C.Static _], pre-validated by {!Smt.Certcheck} *)
}

type t = {
  absint : Absint.t;
  guard_refs : (G.atom * refutation) list;
  root : refutation option;
}

(* Prove the claim atom inconsistent with the oracle's base conjunction
   and certify it; [None] when the certifying solver or the standalone
   checker does not confirm (the engine then simply does not prune). *)
let certify oracle descr claim =
  let atoms = D.base_atoms oracle @ [ claim ] in
  match Smt.Lia.solve_cert ~max_steps:200_000 atoms with
  | Smt.Lia.Cert_unsat cert -> (
    let cert = C.Static cert in
    match Smt.Certcheck.validate atoms cert with
    | Ok () -> Some { descr; atoms; cert }
    | Error _ -> None)
  | Smt.Lia.Cert_sat _ | Smt.Lia.Cert_unknown | Smt.Lia.Cert_timeout -> None

(* Upper bound of a condition atom's value [sum terms + const] under
   the fixpoint's capacities: positive counter terms are bounded by the
   entered capacity, positive shared terms by the production capacity,
   negative non-parameter terms by zero (all quantities are
   non-negative), parameter terms are exact. *)
let cond_atom_ub ab (a : Ta.Cond.atom) =
  List.fold_left
    (fun acc (term, c) ->
      let contrib =
        match term with
        | Ta.Cond.Param p -> D.Fin (P.of_terms [ (p, c) ] 0)
        | Ta.Cond.Counter l ->
          if c > 0 then D.cap_scale c (Absint.entered_cap ab l) else D.cap_zero
        | Ta.Cond.Shared x ->
          if c > 0 then D.cap_scale c (Absint.shared_cap ab x) else D.cap_zero
      in
      D.cap_add acc contrib)
    (D.Fin (P.const a.const)) a.terms

(* An observation atom [sum + const >= 0] (or [= 0]) is root-refutable
   when its upper bound is provably at most -1. *)
let root_refutable ab (a : Ta.Cond.atom) =
  match a.rel with
  | Ta.Cond.Le -> None
  | Ta.Cond.Ge | Ta.Cond.Eq -> (
    match cond_atom_ub ab a with
    | D.Inf -> None
    | D.Fin u -> if D.valid_pos ab.Absint.oracle (P.neg u) then Some u else None)

let cond_atom_to_string (a : Ta.Cond.atom) =
  let term_to_string (t, c) =
    let name =
      match t with
      | Ta.Cond.Counter l -> "k[" ^ l ^ "]"
      | Ta.Cond.Shared x -> x
      | Ta.Cond.Param p -> p
    in
    if c = 1 then name else Printf.sprintf "%d*%s" c name
  in
  Printf.sprintf "%s %s 0"
    (String.concat " + " (List.map term_to_string a.terms)
    ^ if a.const = 0 then "" else Printf.sprintf " + %d" a.const)
    (match a.rel with Ta.Cond.Ge -> ">=" | Ta.Cond.Le -> "<=" | Ta.Cond.Eq -> "=")

let build ?spec (ta : A.t) =
  let assume =
    match spec with
    | Some s -> Absint.of_spec s
    | None -> { Absint.no_assumptions with mode = Absint.One_round }
  in
  let ab = Absint.build ~assume ta in
  let oracle = ab.Absint.oracle in
  let guard_refs =
    List.filter_map
      (fun (a, cap) ->
        let descr =
          Printf.sprintf
            "guard atom %s is statically false: its left-hand side is bounded by %s"
            (G.atom_to_string a) (P.to_string cap)
        in
        (* UNSAT(base /\ cap - bound >= 0) certifies bound > cap. *)
        let claim = Smt.Atom.ge (D.linexpr oracle (P.sub cap a.G.bound)) L.zero in
        Option.map (fun r -> (a, r)) (certify oracle descr claim))
      ab.Absint.false_atoms
  in
  let root =
    match spec with
    | None -> None
    | Some (s : Ta.Spec.t) ->
      let conds =
        List.map (fun (label, c) -> ("observation " ^ label, c)) s.observations
        @ if s.final_cond = [] then [] else [ ("the final condition", s.final_cond) ]
      in
      List.find_map
        (fun (what, cond) ->
          List.find_map
            (fun (a : Ta.Cond.atom) ->
              match root_refutable ab a with
              | None -> None
              | Some u ->
                let descr =
                  Printf.sprintf
                    "%s is statically false: %s is bounded above by %s, which is negative"
                    what (cond_atom_to_string a) (P.to_string u)
                in
                (* UNSAT(base /\ ub >= 0) certifies ub < 0. *)
                let claim = Smt.Atom.ge (D.linexpr oracle u) L.zero in
                certify oracle descr claim)
            cond)
        conds
  in
  { absint = ab; guard_refs; root }

let guard_refutation t (a : G.atom) =
  List.find_opt (fun (a', _) -> G.atom_equal a a') t.guard_refs |> Option.map snd

let root_refutation t = t.root
let location_invariant t l = Absint.lower t.absint l

let any t = t.root <> None || t.guard_refs <> []
