module Net = Simnet.Network
module ISet = Set.Make (Int)

type t = {
  id : int;
  input : int;
  t_bound : int;
  net : Message.t Net.t;
  senders : ISet.t array;
  echoed : bool array;
  mutable started : bool;
  mutable delivered : Vset.t;
}

let create ~id ~t ~input net =
  if input <> 0 && input <> 1 then invalid_arg "Bv.create: binary input expected";
  {
    id;
    input;
    t_bound = t;
    net;
    senders = [| ISet.empty; ISet.empty |];
    echoed = [| false; false |];
    started = false;
    delivered = Vset.empty;
  }

let start ep =
  if not ep.started then begin
    ep.started <- true;
    ep.echoed.(ep.input) <- true;
    Net.broadcast ep.net ~src:ep.id (Message.Bv { round = 0; value = ep.input })
  end

let handle ep ~src msg =
  match msg with
  | Message.Aux _ -> ()
  | Message.Bv { value; _ } ->
    if value = 0 || value = 1 then begin
      ep.senders.(value) <- ISet.add src ep.senders.(value);
      (* Fig. 1, lines 4-5: echo a value received from t+1 distinct
         processes. *)
      if (not ep.echoed.(value)) && ISet.cardinal ep.senders.(value) >= ep.t_bound + 1
      then begin
        ep.echoed.(value) <- true;
        Net.broadcast ep.net ~src:ep.id (Message.Bv { round = 0; value })
      end;
      (* Fig. 1, lines 6-7: deliver at 2t+1 distinct senders. *)
      if ISet.cardinal ep.senders.(value) >= (2 * ep.t_bound) + 1 then
        ep.delivered <- Vset.add value ep.delivered
    end

let delivered ep = ep.delivered
let id ep = ep.id
