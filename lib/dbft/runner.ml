module Net = Simnet.Network

type config = {
  n : int;
  t : int;
  inputs : int list;
  byzantine : (int * Byzantine.strategy) list;
  scheduler : Message.t Simnet.Scheduler.t;
  max_round : int;
  max_steps : int;
}

type report = {
  decisions : (int * int * int) list;
  rounds_reached : (int * int) list;
  steps : int;
  all_decided : bool;
  agreement : bool;
  validity : bool;
}

let config ~n ~t ~inputs ?(byzantine = []) ?(scheduler = Simnet.Scheduler.random ~seed:1)
    ?(max_round = 30) ?(max_steps = 200_000) () =
  { n; t; inputs; byzantine; scheduler; max_round; max_steps }

type participant = Correct of Process.t | Byz of Byzantine.t

let run cfg =
  let byz_ids = List.map fst cfg.byzantine in
  if List.length (List.sort_uniq compare byz_ids) <> List.length byz_ids then
    invalid_arg "Runner.run: duplicate byzantine ids";
  List.iter
    (fun i -> if i < 0 || i >= cfg.n then invalid_arg "Runner.run: byzantine id out of range")
    byz_ids;
  let correct_ids =
    List.filter (fun i -> not (List.mem i byz_ids)) (List.init cfg.n Fun.id)
  in
  if List.length cfg.inputs <> List.length correct_ids then
    invalid_arg "Runner.run: need exactly one input per correct process";
  let net = Net.create ~n:cfg.n in
  let correct_inputs = List.combine correct_ids cfg.inputs in
  let participants =
    List.map
      (fun i ->
        match List.assoc_opt i cfg.byzantine with
        | Some strategy -> Byz (Byzantine.create ~id:i ~n:cfg.n strategy net)
        | None ->
          let input = List.assoc i correct_inputs in
          let p = Process.create ~id:i ~n:cfg.n ~t:cfg.t ~input net in
          Process.set_max_round p cfg.max_round;
          Correct p)
      (List.init cfg.n Fun.id)
  in
  let correct =
    List.filter_map (function Correct p -> Some p | Byz _ -> None) participants
  in
  List.iter Process.start correct;
  let participants = Array.of_list participants in
  let all_decided () = List.for_all (fun p -> Process.decision p <> None) correct in
  let steps =
    Simnet.Driver.run_scheduled ~max_steps:cfg.max_steps ~stop:all_decided
      ~scheduler:cfg.scheduler net ~handle:(fun ~src ~dest msg ->
        match participants.(dest) with
        | Correct proc -> Process.handle proc ~src msg
        | Byz b -> Byzantine.handle b ~src msg)
  in
  let decisions =
    List.filter_map
      (fun p ->
        match Process.decision p with
        | Some (v, r) -> Some (Process.id p, v, r)
        | None -> None)
      correct
  in
  let decided_values = List.sort_uniq compare (List.map (fun (_, v, _) -> v) decisions) in
  {
    decisions;
    rounds_reached = List.map (fun p -> (Process.id p, Process.round p)) correct;
    steps;
    all_decided = all_decided ();
    agreement = List.length decided_values <= 1;
    validity = List.for_all (fun v -> List.mem v cfg.inputs) decided_values;
  }

let pp_report fmt r =
  Format.fprintf fmt "@[<v 2>run: %d deliveries@," r.steps;
  List.iter
    (fun (p, v, rd) -> Format.fprintf fmt "p%d decided %d in round %d@," p v rd)
    r.decisions;
  Format.fprintf fmt "all decided: %b; agreement: %b; validity: %b@]" r.all_decided
    r.agreement r.validity
