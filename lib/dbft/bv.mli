(** A standalone binary-value broadcast endpoint (paper, Fig. 1): no
    consensus on top, a single instance (the [round] tag of incoming BV
    messages is ignored, AUX messages are ignored).

    Unlike the bv-broadcast embedded in {!Process}, the endpoint never
    leaves its instance, so the four BV properties of Section 3.2 can be
    checked at network quiescence without communication-closedness
    discarding late messages.  This is the executable the fuzzer's BV
    oracles run against, cross-validated with the [bv_broadcast]
    threshold automaton. *)

type t

(** [create ~id ~t ~input net] makes an endpoint with input value [input]
    (in [{0, 1}]).  Nothing is sent until {!start}. *)
val create : id:int -> t:int -> input:int -> Message.t Simnet.Network.t -> t

(** [start ep] bv-broadcasts the input value (idempotent). *)
val start : t -> unit

(** [handle ep ~src msg] processes one delivery: records the sender, echoes
    at [t+1] distinct senders, delivers at [2t+1]. *)
val handle : t -> src:int -> Message.t -> unit

(** [delivered ep] is the set of bv-delivered (contestant) values. *)
val delivered : t -> Vset.t

val id : t -> int
