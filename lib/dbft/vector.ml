module Net = Simnet.Network
module Rb = Reliable_broadcast

type config = {
  n : int;
  t : int;
  proposals : (int * string) list;
  byzantine : int list;
  seed : int;
  max_steps : int;
}

let config ~n ~t ~proposals ?(byzantine = []) ?(seed = 1) ?(max_steps = 500_000) () =
  { n; t; proposals; byzantine; seed; max_steps }

type report = {
  superblocks : (int * (int * string) list) list;
  steps : int;
  all_decided : bool;
  agreement : bool;
  integrity : bool;
}

(* Per-correct-process vector-consensus state. *)
type vstate = {
  id : int;
  rb : Rb.t;
  proposals_seen : string option array;
  binary : Process.t option array;
  buffers : (int * Message.t) list array;  (* reverse order *)
  mutable delivered_count : int;
  mutable zero_phase : bool;  (* voting 0 in all unjoined instances *)
}

let run cfg =
  List.iter
    (fun b -> if b < 0 || b >= cfg.n then invalid_arg "Vector.run: byzantine id out of range")
    cfg.byzantine;
  let correct_ids =
    List.filter (fun i -> not (List.mem i cfg.byzantine)) (List.init cfg.n Fun.id)
  in
  List.iter
    (fun i ->
      if not (List.mem_assoc i cfg.proposals) then
        invalid_arg (Printf.sprintf "Vector.run: missing proposal for correct process %d" i))
    correct_ids;
  let rb_net : Rb.msg Net.t = Net.create ~n:cfg.n in
  let bin_nets = Array.init cfg.n (fun _ -> (Net.create ~n:cfg.n : Message.t Net.t)) in
  let rng = Random.State.make [| cfg.seed |] in
  (* Byzantine participants: equivocate proposals at the broadcast layer
     and run the equivocating strategy inside every binary instance. *)
  let byz_binary =
    List.map
      (fun b ->
        (b, Array.init cfg.n (fun j -> Byzantine.create ~id:b ~n:cfg.n Byzantine.Equivocate bin_nets.(j))))
      cfg.byzantine
  in
  let byz_rb_triggered = Hashtbl.create 4 in
  let byz_rb_act b =
    if not (Hashtbl.mem byz_rb_triggered b) then begin
      Hashtbl.replace byz_rb_triggered b ();
      for dest = 0 to cfg.n - 1 do
        let value = if 2 * dest < cfg.n then "equivocation-A" else "equivocation-B" in
        Net.send rb_net ~src:b ~dest (Rb.Init { origin = b; value })
      done
    end
  in
  (* Correct participants. *)
  let states = Hashtbl.create 8 in
  let start_instance st j input =
    if st.binary.(j) = None then begin
      let p = Process.create ~id:st.id ~n:cfg.n ~t:cfg.t ~input bin_nets.(j) in
      Process.set_max_round p 60;
      st.binary.(j) <- Some p;
      Process.start p;
      List.iter (fun (src, msg) -> Process.handle p ~src msg) (List.rev st.buffers.(j));
      st.buffers.(j) <- []
    end
  in
  let enter_zero_phase st =
    if (not st.zero_phase) && st.delivered_count >= cfg.n - cfg.t then begin
      st.zero_phase <- true;
      for j = 0 to cfg.n - 1 do
        start_instance st j 0
      done
    end
  in
  List.iter
    (fun i ->
      let rec st =
        lazy
          {
            id = i;
            rb =
              Rb.create ~id:i ~n:cfg.n ~t:cfg.t rb_net ~on_deliver:(fun ~origin ~value ->
                  let st = Lazy.force st in
                  if st.proposals_seen.(origin) = None then begin
                    st.proposals_seen.(origin) <- Some value;
                    st.delivered_count <- st.delivered_count + 1;
                    start_instance st origin 1;
                    enter_zero_phase st
                  end);
            proposals_seen = Array.make cfg.n None;
            binary = Array.make cfg.n None;
            buffers = Array.make cfg.n [];
            delivered_count = 0;
            zero_phase = false;
          }
      in
      Hashtbl.replace states i (Lazy.force st))
    correct_ids;
  (* Everyone broadcasts its proposal. *)
  List.iter
    (fun i ->
      let st = Hashtbl.find states i in
      Rb.broadcast st.rb (List.assoc i cfg.proposals))
    correct_ids;
  (* A process is done when every instance decided and every 1-decision
     has a delivered proposal. *)
  let superblock st =
    let rec go j acc =
      if j = cfg.n then Some (List.rev acc)
      else
        match st.binary.(j) with
        | None -> None
        | Some p -> (
          match Process.decision p with
          | None -> None
          | Some (0, _) -> go (j + 1) acc
          | Some (1, _) -> (
            match st.proposals_seen.(j) with
            | Some v -> go (j + 1) ((j, v) :: acc)
            | None -> None)
          | Some _ -> None)
    in
    go 0 []
  in
  let all_done () =
    List.for_all (fun i -> superblock (Hashtbl.find states i) <> None) correct_ids
  in
  (* Unified scheduler over the n+1 networks: the shared driver delivers
     uniformly over all pending messages. *)
  let sources =
    Simnet.Driver.of_network rb_net ~handle:(fun ~src ~dest msg ->
        match Hashtbl.find_opt states dest with
        | Some st -> Rb.handle st.rb ~src msg
        | None -> byz_rb_act dest)
    :: List.init cfg.n (fun j ->
           Simnet.Driver.of_network bin_nets.(j) ~handle:(fun ~src ~dest msg ->
               match Hashtbl.find_opt states dest with
               | Some st -> (
                 match st.binary.(j) with
                 | Some proc -> Process.handle proc ~src msg
                 | None -> st.buffers.(j) <- (src, msg) :: st.buffers.(j))
               | None -> Byzantine.handle (List.assoc dest byz_binary).(j) ~src msg))
  in
  let steps = Simnet.Driver.run ~max_steps:cfg.max_steps ~stop:all_done ~rng sources in
  let superblocks =
    List.map
      (fun i ->
        let st = Hashtbl.find states i in
        (i, match superblock st with Some sb -> sb | None -> []))
      correct_ids
  in
  let decided = all_done () in
  let blocks = List.map snd superblocks in
  let agreement =
    match blocks with [] -> true | b :: rest -> List.for_all (( = ) b) rest
  in
  let integrity =
    List.for_all
      (fun (_, sb) ->
        List.for_all
          (fun (j, v) ->
            match List.assoc_opt j cfg.proposals with
            | Some actual when List.mem j correct_ids -> v = actual
            | _ -> true)
          sb)
      superblocks
  in
  { superblocks; steps; all_decided = decided; agreement; integrity }

let pp_report fmt r =
  Format.fprintf fmt "@[<v 2>vector consensus: %d deliveries@," r.steps;
  List.iter
    (fun (i, sb) ->
      Format.fprintf fmt "p%d superblock: {%s}@," i
        (String.concat "; "
           (List.map (fun (j, v) -> Printf.sprintf "%d:%s" j v) sb)))
    r.superblocks;
  Format.fprintf fmt "all decided: %b; agreement: %b; integrity: %b@]" r.all_decided
    r.agreement r.integrity
