(** Quantifier elimination for Presburger arithmetic (Cooper's
    algorithm).

    The paper's modelling step (Section 3.1) replaces the local receive
    counters of the pseudocode by global send counters: the guard
    "received v from at least t+1 distinct processes" becomes
    [exists rcvd. rcvd <= sent + f /\ rcvd >= t + 1], and eliminating the
    quantifier yields the threshold-automaton guard [sent >= t + 1 - f].
    This module implements the elimination (see {!examples} in the test
    suite and [examples/receive_elimination.ml]).

    Variables are named by strings; all variables range over [Z]. *)

(** Linear terms [sum c_i x_i + k] with arbitrary-precision coefficients. *)
module Term : sig
  type t

  val const : int -> t
  val var : string -> t
  val of_terms : (int * string) list -> int -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val scale : Numbers.Bigint.t -> t -> t
  val coeff : string -> t -> Numbers.Bigint.t
  val eval : (string -> Numbers.Bigint.t) -> t -> Numbers.Bigint.t
  val to_string : t -> string
end

type t =
  | Lt of Term.t  (** [term < 0] *)
  | Eq of Term.t  (** [term = 0] *)
  | Divides of Numbers.Bigint.t * Term.t  (** [d | term], [d > 0] *)
  | Not of t
  | And of t list
  | Or of t list
  | Exists of string * t
  | Forall of string * t

(** {1 Convenience constructors} *)

val lt : Term.t -> Term.t -> t
val le : Term.t -> Term.t -> t
val ge : Term.t -> Term.t -> t
val gt : Term.t -> Term.t -> t
val eq : Term.t -> Term.t -> t
val tt : t
val ff : t

(** [eliminate f] removes every quantifier; the result is equivalent to
    [f] over the integers and quantifier-free. *)
val eliminate : t -> t

(** [eval env f] evaluates a quantifier-free formula.
    @raise Invalid_argument on quantifiers. *)
val eval : (string -> Numbers.Bigint.t) -> t -> bool

(** [is_valid f] decides a closed formula (all variables quantified).
    @raise Invalid_argument if free variables remain after
    elimination. *)
val is_valid : t -> bool

(** [check_sat f] decides satisfiability of [f] over the integers: every
    free variable is closed existentially and the resulting sentence is
    decided by elimination.  This is the query-level entry point used by
    the solver portfolio ({!Smt.Portfolio}) to refute whole conjunctions
    by Cooper QE; a [false] answer is an UNSAT verdict whose certificate
    the portfolio obtains separately from the certifying simplex engine
    when persisting it. *)
val check_sat : t -> bool

(** [check_sat_bounded ~budget f] is [Some (check_sat f)] unless some
    intermediate formula of the elimination would exceed [budget] atoms
    — Cooper's expansion is superexponential in the worst case — in
    which case it gives up with [None] instead of stalling.  This is
    what lets the solver portfolio race Cooper QE safely: a blowup
    concedes the race to the simplex rather than hanging it. *)
val check_sat_bounded : budget:int -> t -> bool option

val free_vars : t -> string list
val to_string : t -> string
