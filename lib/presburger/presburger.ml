module B = Numbers.Bigint
module SMap = Map.Make (String)

module Term = struct
  type t = { coeffs : B.t SMap.t; const : B.t }

  let normalize coeffs = SMap.filter (fun _ c -> not (B.is_zero c)) coeffs

  let const k = { coeffs = SMap.empty; const = B.of_int k }
  let var x = { coeffs = SMap.singleton x B.one; const = B.zero }

  let of_terms terms k =
    let coeffs =
      List.fold_left
        (fun acc (c, x) ->
          SMap.update x
            (function None -> Some (B.of_int c) | Some c0 -> Some (B.add c0 (B.of_int c)))
            acc)
        SMap.empty terms
    in
    { coeffs = normalize coeffs; const = B.of_int k }

  let add a b =
    {
      coeffs =
        normalize
          (SMap.union (fun _ c1 c2 -> Some (B.add c1 c2)) a.coeffs b.coeffs);
      const = B.add a.const b.const;
    }

  let scale k a =
    if B.is_zero k then { coeffs = SMap.empty; const = B.zero }
    else { coeffs = SMap.map (B.mul k) a.coeffs; const = B.mul k a.const }

  let neg = scale B.minus_one
  let sub a b = add a (neg b)

  let coeff x a = match SMap.find_opt x a.coeffs with Some c -> c | None -> B.zero

  let eval env a =
    SMap.fold (fun x c acc -> B.add acc (B.mul c (env x))) a.coeffs a.const

  (* [subst x s a] replaces x by term s. *)
  let subst x s a =
    let c = coeff x a in
    if B.is_zero c then a
    else add { a with coeffs = SMap.remove x a.coeffs } (scale c s)

  let vars a = SMap.fold (fun x _ acc -> x :: acc) a.coeffs []

  let to_string a =
    let buf = Buffer.create 32 in
    let first = ref true in
    let part sgn body =
      if !first then begin
        if sgn < 0 then Buffer.add_char buf '-';
        first := false
      end
      else Buffer.add_string buf (if sgn < 0 then " - " else " + ");
      Buffer.add_string buf body
    in
    SMap.iter
      (fun x c ->
        let a = B.abs c in
        part (B.sign c) (if B.equal a B.one then x else B.to_string a ^ "*" ^ x))
      a.coeffs;
    if (not (B.is_zero a.const)) || !first then
      part (B.sign a.const) (B.to_string (B.abs a.const));
    Buffer.contents buf
end

type t =
  | Lt of Term.t
  | Eq of Term.t
  | Divides of B.t * Term.t
  | Not of t
  | And of t list
  | Or of t list
  | Exists of string * t
  | Forall of string * t

let tt = And []
let ff = Or []

let lt a b = Lt (Term.sub a b)

(* Over Z, a <= b iff a - b - 1 < 0. *)
let le a b = Lt (Term.sub (Term.sub a b) (Term.const 1))
let ge a b = le b a
let gt a b = lt b a
let eq a b = Eq (Term.sub a b)

let rec free_vars = function
  | Lt t | Eq t | Divides (_, t) -> Term.vars t
  | Not f -> free_vars f
  | And fs | Or fs -> List.concat_map free_vars fs
  | Exists (x, f) | Forall (x, f) -> List.filter (( <> ) x) (free_vars f)

let free_vars f = List.sort_uniq compare (free_vars f)

let rec eval env = function
  | Lt t -> B.sign (Term.eval env t) < 0
  | Eq t -> B.is_zero (Term.eval env t)
  | Divides (d, t) -> B.is_zero (B.rem (Term.eval env t) d)
  | Not f -> not (eval env f)
  | And fs -> List.for_all (eval env) fs
  | Or fs -> List.exists (eval env) fs
  | Exists _ | Forall _ -> invalid_arg "Presburger.eval: quantifier"

(* --------------------------------------------------------------- *)
(* Simplification: constant folding and flattening.                  *)

let is_const_term (t : Term.t) = Term.vars t = []

let rec simplify = function
  | Lt t as f -> if is_const_term t then if B.sign (Term.eval (fun _ -> B.zero) t) < 0 then tt else ff else f
  | Eq t as f -> if is_const_term t then if B.is_zero (Term.eval (fun _ -> B.zero) t) then tt else ff else f
  | Divides (d, t) as f ->
    if B.equal (B.abs d) B.one then tt
    else if is_const_term t then
      if B.is_zero (B.rem (Term.eval (fun _ -> B.zero) t) d) then tt else ff
    else f
  | Not f -> (
    match simplify f with
    | And [] -> ff
    | Or [] -> tt
    | Not g -> g
    | g -> Not g)
  | And fs ->
    let fs = List.map simplify fs in
    if List.exists (( = ) ff) fs then ff
    else begin
      let fs = List.concat_map (function And gs -> gs | g -> [ g ]) fs in
      let fs = List.filter (( <> ) tt) fs in
      match fs with [ f ] -> f | fs -> And fs
    end
  | Or fs ->
    let fs = List.map simplify fs in
    if List.exists (( = ) tt) fs then tt
    else begin
      let fs = List.concat_map (function Or gs -> gs | g -> [ g ]) fs in
      let fs = List.filter (( <> ) ff) fs in
      match fs with [ f ] -> f | fs -> Or fs
    end
  | Exists (x, f) -> Exists (x, simplify f)
  | Forall (x, f) -> Forall (x, simplify f)

(* --------------------------------------------------------------- *)
(* NNF over quantifier-free formulas; negated divisibilities stay as
   [Not (Divides ...)] leaves, which Cooper's construction tolerates. *)

let rec nnf = function
  | (Lt _ | Eq _ | Divides _) as a -> a
  | And fs -> And (List.map nnf fs)
  | Or fs -> Or (List.map nnf fs)
  | Not f -> nnf_neg f
  | Exists _ | Forall _ -> invalid_arg "Presburger.nnf: quantifier"

and nnf_neg = function
  | Lt t -> Lt (Term.sub (Term.neg t) (Term.const 1)) (* not (t<0) <=> -t-1 < 0 *)
  | Eq t -> Or [ Lt t; Lt (Term.neg t) ]
  | Divides _ as a -> Not a
  | Not f -> nnf f
  | And fs -> Or (List.map nnf_neg fs)
  | Or fs -> And (List.map nnf_neg fs)
  | Exists _ | Forall _ -> invalid_arg "Presburger.nnf: quantifier"

(* Rewrite equalities that mention x into conjunctions of strict
   inequalities so only Lt and (Not)Divides atoms mention x. *)
let rec split_eq x = function
  | Eq t when not (B.is_zero (Term.coeff x t)) ->
    And [ Lt (Term.sub t (Term.const 1)); Lt (Term.sub (Term.neg t) (Term.const 1)) ]
  | (Lt _ | Eq _ | Divides _ | Not _) as a -> a
  | And fs -> And (List.map (split_eq x) fs)
  | Or fs -> Or (List.map (split_eq x) fs)
  | Exists _ | Forall _ -> assert false

(* Map over atoms that mention x. *)
let rec map_atoms fn = function
  | (Lt _ | Eq _ | Divides _ | Not (Divides _)) as a -> fn a
  | Not _ as a -> a
  | And fs -> And (List.map (map_atoms fn) fs)
  | Or fs -> Or (List.map (map_atoms fn) fs)
  | Exists _ | Forall _ -> assert false

let rec fold_atoms fn acc = function
  | (Lt _ | Eq _ | Divides _ | Not (Divides _)) as a -> fn acc a
  | Not _ -> acc
  | And fs | Or fs -> List.fold_left (fold_atoms fn) acc fs
  | Exists _ | Forall _ -> assert false

let atom_term = function
  | Lt t | Eq t | Divides (_, t) | Not (Divides (_, t)) -> t
  | _ -> invalid_arg "atom_term"

(* Cooper's elimination is superexponential in the worst case: one step
   replaces the formula by delta * (1 + #lower_bounds) substituted
   copies, and steps compound across quantifiers.  Bounded callers
   ([check_sat_bounded], the solver portfolio's race) concede instead of
   stalling: [Blowup] aborts the elimination when an intermediate
   formula would exceed the caller's atom budget. *)
exception Blowup

let size f = fold_atoms (fun n _ -> n + 1) 0 f

(* Cooper's elimination of one existential over a quantifier-free NNF
   formula.  [budget] bounds the atom count of the expansion built
   below; the default never trips it. *)
let eliminate_exists ?(budget = max_int) x f =
  let f = split_eq x (nnf f) in
  let coeffs =
    fold_atoms
      (fun acc a ->
        let c = Term.coeff x (atom_term a) in
        if B.is_zero c then acc else B.abs c :: acc)
      [] f
  in
  if coeffs = [] then f
  else begin
    let lambda = List.fold_left B.lcm B.one coeffs in
    (* Normalize x's coefficient to +-lambda, then read lambda*x as a
       fresh unit variable (we reuse the name x). *)
    let normalized =
      map_atoms
        (fun a ->
          let t = atom_term a in
          let c = Term.coeff x t in
          if B.is_zero c then a
          else begin
            let m = B.div lambda (B.abs c) in
            let scaled = Term.scale m t in
            (* Replace the coefficient lambda (or -lambda) of x by +-1. *)
            let sign = B.of_int (B.sign c) in
            let unit_t =
              Term.add
                (Term.subst x (Term.const 0) scaled)
                (Term.scale sign (Term.var x))
            in
            match a with
            | Lt _ -> Lt unit_t
            | Divides (d, _) -> Divides (B.mul m d, unit_t)
            | Not (Divides (d, _)) -> Not (Divides (B.mul m d, unit_t))
            | Eq _ -> Eq unit_t
            | _ -> assert false
          end)
        f
    in
    let f = And [ normalized; Divides (lambda, Term.var x) ] in
    let delta =
      fold_atoms
        (fun acc a ->
          match a with
          | Divides (d, t) | Not (Divides (d, t)) ->
            if B.is_zero (Term.coeff x t) then acc else B.lcm acc d
          | _ -> acc)
        B.one f
    in
    (* Lower-bound terms b with atom  -x + b < 0  (i.e. x > b). *)
    let lower_bounds =
      fold_atoms
        (fun acc a ->
          match a with
          | Lt t when B.equal (Term.coeff x t) B.minus_one ->
            Term.subst x (Term.const 0) t :: acc
          | _ -> acc)
        [] f
    in
    let subst_x s =
      map_atoms
        (fun a ->
          let t = atom_term a in
          let t' = Term.subst x s t in
          match a with
          | Lt _ -> Lt t'
          | Eq _ -> Eq t'
          | Divides (d, _) -> Divides (d, t')
          | Not (Divides (d, _)) -> Not (Divides (d, t'))
          | _ -> assert false)
        f
    in
    (* phi_-inf: x arbitrarily small — upper-bound atoms become true,
       lower-bound atoms false. *)
    let minus_inf =
      map_atoms
        (fun a ->
          match a with
          | Lt t when B.equal (Term.coeff x t) B.one -> tt
          | Lt t when B.equal (Term.coeff x t) B.minus_one -> ff
          | a -> a)
        f
    in
    let subst_minus_inf j =
      (* In phi_-inf only divisibility atoms mention x. *)
      map_atoms
        (fun a ->
          match a with
          | Divides (d, t) -> Divides (d, Term.subst x (Term.const j) t)
          | Not (Divides (d, t)) -> Not (Divides (d, Term.subst x (Term.const j) t))
          | a -> a)
        minus_inf
    in
    let delta_int =
      match B.to_int delta with
      | Some n -> n
      | None -> if budget < max_int then raise Blowup else B.to_int_exn delta
    in
    (* The disjunction below holds delta * (1 + #lower_bounds) copies of
       [f]; refuse to build it (and check the simplified result, since
       blowup compounds across eliminated variables) past the budget. *)
    let copies = delta_int * (1 + List.length lower_bounds) in
    if copies > 0 && size f > budget / copies then raise Blowup;
    let js = List.init delta_int (fun j -> j + 1) in
    let part1 = List.map (fun j -> subst_minus_inf j) js in
    let part2 =
      List.concat_map
        (fun j ->
          List.map (fun b -> subst_x (Term.add b (Term.const j))) lower_bounds)
        js
    in
    let r = simplify (Or (part1 @ part2)) in
    if budget < max_int && size r > budget then raise Blowup;
    r
  end

let rec eliminate_bounded ~budget = function
  | (Lt _ | Eq _ | Divides _) as a -> a
  | Not f -> simplify (Not (eliminate_bounded ~budget f))
  | And fs -> simplify (And (List.map (eliminate_bounded ~budget) fs))
  | Or fs -> simplify (Or (List.map (eliminate_bounded ~budget) fs))
  | Exists (x, f) ->
    simplify (eliminate_exists ~budget x (eliminate_bounded ~budget f))
  | Forall (x, f) ->
    simplify
      (Not (eliminate_exists ~budget x (simplify (Not (eliminate_bounded ~budget f)))))

let eliminate f = eliminate_bounded ~budget:max_int f

let is_valid f =
  let qf = eliminate f in
  match free_vars qf with
  | [] -> eval (fun _ -> B.zero) qf
  | vs ->
    invalid_arg
      ("Presburger.is_valid: free variables remain: " ^ String.concat ", " vs)

let check_sat f =
  (* Close every free variable existentially; the closure is sentence,
     so [is_valid] decides it outright.  This is the query-level entry
     point the solver portfolio calls on a plain conjunction of atoms:
     satisfiability over [Z] of the formula as given. *)
  let closed = List.fold_left (fun acc x -> Exists (x, acc)) f (free_vars f) in
  is_valid closed

let check_sat_bounded ~budget f =
  let closed = List.fold_left (fun acc x -> Exists (x, acc)) f (free_vars f) in
  match eliminate_bounded ~budget closed with
  | exception Blowup -> None
  | qf -> (
    match free_vars qf with
    | [] -> Some (eval (fun _ -> B.zero) qf)
    | _ -> None)

let rec to_string = function
  | Lt t -> Term.to_string t ^ " < 0"
  | Eq t -> Term.to_string t ^ " = 0"
  | Divides (d, t) -> B.to_string d ^ " | " ^ Term.to_string t
  | Not f -> "!(" ^ to_string f ^ ")"
  | And [] -> "true"
  | And fs -> "(" ^ String.concat " /\\ " (List.map to_string fs) ^ ")"
  | Or [] -> "false"
  | Or fs -> "(" ^ String.concat " \\/ " (List.map to_string fs) ^ ")"
  | Exists (x, f) -> "exists " ^ x ^ ". " ^ to_string f
  | Forall (x, f) -> "forall " ^ x ^ ". " ^ to_string f
