module Q = Numbers.Rational
module B = Numbers.Bigint
module IntMap = Map.Make (Int)

(* [hash] caches the structural hash: -1 = not yet computed.  Every
   construction goes through [mk] so a stale cache can never be copied
   into a fresh expression (no [{ e with _ }] updates below).  The cache
   makes the hash O(1) after first use, which the incremental engine's
   assertion-dedup tables rely on. *)
type t = { coeffs : Q.t IntMap.t; const : Q.t; mutable hash : int }

let mk coeffs const = { coeffs; const; hash = -1 }

let zero = mk IntMap.empty Q.zero
let const k = mk IntMap.empty k
let of_int n = const (Q.of_int n)

let term c x =
  if Q.is_zero c then zero else mk (IntMap.singleton x c) Q.zero

let var x = term Q.one x

let add_term c x e =
  let update = function
    | None -> if Q.is_zero c then None else Some c
    | Some c0 ->
      let c' = Q.add c0 c in
      if Q.is_zero c' then None else Some c'
  in
  mk (IntMap.update x update e.coeffs) e.const

let add_const k e = mk e.coeffs (Q.add e.const k)

let of_terms terms k =
  List.fold_left (fun e (c, x) -> add_term c x e) (const k) terms

let of_int_terms terms k =
  of_terms (List.map (fun (c, x) -> (Q.of_int c, x)) terms) (Q.of_int k)

let add a b =
  let coeffs =
    IntMap.union
      (fun _ c1 c2 ->
        let c = Q.add c1 c2 in
        if Q.is_zero c then None else Some c)
      a.coeffs b.coeffs
  in
  mk coeffs (Q.add a.const b.const)

let scale q e =
  if Q.is_zero q then zero
  else mk (IntMap.map (Q.mul q) e.coeffs) (Q.mul q e.const)

let neg e = scale Q.minus_one e
let sub a b = add a (neg b)

let coeff x e = match IntMap.find_opt x e.coeffs with Some c -> c | None -> Q.zero
let constant e = e.const
let terms e = IntMap.fold (fun x c acc -> (c, x) :: acc) e.coeffs [] |> List.rev
let vars e = IntMap.fold (fun x _ acc -> x :: acc) e.coeffs [] |> List.rev
let is_const e = IntMap.is_empty e.coeffs

let eval assign e =
  IntMap.fold (fun x c acc -> Q.add acc (Q.mul c (assign x))) e.coeffs e.const

let eval_delta assign e =
  IntMap.fold
    (fun x c acc -> Delta.add acc (Delta.scale c (assign x)))
    e.coeffs
    (Delta.of_rational e.const)

let scale_to_integers e =
  let denominators =
    IntMap.fold (fun _ c acc -> Q.den c :: acc) e.coeffs [ Q.den e.const ]
  in
  let l = List.fold_left B.lcm B.one denominators in
  scale (Q.of_bigint l) e

let compare a b =
  if a == b then 0
  else begin
    let c = Q.compare a.const b.const in
    if c <> 0 then c else IntMap.compare Q.compare a.coeffs b.coeffs
  end

let equal a b = a == b || compare a b = 0

let hash_q q = (B.hash (Q.num q) * 31) + B.hash (Q.den q)

let hash e =
  if e.hash >= 0 then e.hash
  else begin
    let h =
      IntMap.fold
        (fun x c acc -> (acc * 131) + (x * 31) + hash_q c)
        e.coeffs (hash_q e.const)
      land max_int
    in
    e.hash <- h;
    h
  end

let to_string ?(names = fun i -> "x" ^ string_of_int i) e =
  let buf = Buffer.create 32 in
  let first = ref true in
  let add_part sgn body =
    if !first then begin
      if sgn < 0 then Buffer.add_char buf '-';
      first := false
    end
    else Buffer.add_string buf (if sgn < 0 then " - " else " + ");
    Buffer.add_string buf body
  in
  IntMap.iter
    (fun x c ->
      let a = Q.abs c in
      let body =
        if Q.equal a Q.one then names x else Q.to_string a ^ "*" ^ names x
      in
      add_part (Q.sign c) body)
    e.coeffs;
  if not (Q.is_zero e.const) || !first then
    add_part (Q.sign e.const) (Q.to_string (Q.abs e.const));
  Buffer.contents buf

let pp ?names fmt e = Format.pp_print_string fmt (to_string ?names e)

let map_vars f e =
  mk
    (IntMap.fold (fun x c acc -> IntMap.add (f x) c acc) e.coeffs IntMap.empty)
    e.const

let subst x by e =
  match IntMap.find_opt x e.coeffs with
  | None -> e
  | Some c -> add (mk (IntMap.remove x e.coeffs) e.const) (scale c by)
