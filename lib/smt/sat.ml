type literal = int
type clause = literal list

type result = Sat of (int -> bool) | Unsat

(* ------------------------------------------------------------------ *)
(* Conflict-driven clause learning.  Clauses live in a growable store of
   int arrays whose first two slots are the watched literals; conflicts
   are analyzed to the first unique implication point, the learned
   clause drives a backjump, and variable activities (bumped on conflict
   participation, decayed geometrically) drive branching.  No restarts:
   the boolean abstractions here are modest and determinism matters more
   than raw speed.  Unassigned variables default to false, matching the
   documented model completion. *)

module Cdcl = struct
  type t = {
    nvars : int;
    mutable db : int array array;
    mutable ndb : int;
    first_learned : int ref;  (* db index where learned clauses begin *)
    watches : int list array;  (* literal code -> watching clause indices *)
    assign : int array;  (* var -> 0 unassigned / +1 true / -1 false *)
    level : int array;
    reason : int array;  (* var -> implying clause index, or -1 *)
    trail : int array;
    mutable ntrail : int;
    mutable qhead : int;
    lim : int array;  (* decision level -> trail mark *)
    mutable nlevels : int;
    activity : float array;
    mutable var_inc : float;
    seen : bool array;
  }

  exception Conflict of int
  exception Unsat_root

  let lit_code l = if l > 0 then 2 * l else (2 * -l) + 1

  let create nvars =
    {
      nvars;
      db = Array.make 16 [||];
      ndb = 0;
      first_learned = ref 0;
      watches = Array.make ((2 * nvars) + 2) [];
      assign = Array.make (nvars + 1) 0;
      level = Array.make (nvars + 1) 0;
      reason = Array.make (nvars + 1) (-1);
      trail = Array.make (nvars + 1) 0;
      ntrail = 0;
      qhead = 0;
      lim = Array.make (nvars + 2) 0;
      nlevels = 0;
      activity = Array.make (nvars + 1) 0.0;
      var_inc = 1.0;
      seen = Array.make (nvars + 1) false;
    }

  (* 0 unknown, 1 true, -1 false under the current partial assignment. *)
  let value st l =
    let v = st.assign.(abs l) in
    if v = 0 then 0 else if (l > 0) = (v > 0) then 1 else -1

  let enqueue st lit reason =
    let v = abs lit in
    st.assign.(v) <- (if lit > 0 then 1 else -1);
    st.level.(v) <- st.nlevels;
    st.reason.(v) <- reason;
    st.trail.(st.ntrail) <- lit;
    st.ntrail <- st.ntrail + 1

  let add_clause_arr st c =
    if st.ndb = Array.length st.db then begin
      let db' = Array.make ((2 * st.ndb) + 1) [||] in
      Array.blit st.db 0 db' 0 st.ndb;
      st.db <- db'
    end;
    let ci = st.ndb in
    st.db.(ci) <- c;
    st.ndb <- st.ndb + 1;
    if Array.length c >= 2 then begin
      st.watches.(lit_code c.(0)) <- ci :: st.watches.(lit_code c.(0));
      st.watches.(lit_code c.(1)) <- ci :: st.watches.(lit_code c.(1))
    end;
    ci

  let propagate st =
    while st.qhead < st.ntrail do
      let p = st.trail.(st.qhead) in
      st.qhead <- st.qhead + 1;
      let fcode = lit_code (-p) in
      let ws = st.watches.(fcode) in
      st.watches.(fcode) <- [];
      let rec go = function
        | [] -> ()
        | ci :: rest ->
          let c = st.db.(ci) in
          (* Normalize so the falsified watch sits at slot 1. *)
          if c.(0) = -p then begin
            c.(0) <- c.(1);
            c.(1) <- -p
          end;
          if value st c.(0) = 1 then begin
            st.watches.(fcode) <- ci :: st.watches.(fcode);
            go rest
          end
          else begin
            let n = Array.length c in
            let rec find k =
              if k >= n then -1 else if value st c.(k) >= 0 then k else find (k + 1)
            in
            let k = find 2 in
            if k >= 0 then begin
              c.(1) <- c.(k);
              c.(k) <- -p;
              st.watches.(lit_code c.(1)) <- ci :: st.watches.(lit_code c.(1));
              go rest
            end
            else begin
              (* No replacement watch: clause is unit or conflicting. *)
              st.watches.(fcode) <- ci :: st.watches.(fcode);
              if value st c.(0) = -1 then begin
                List.iter
                  (fun cj -> st.watches.(fcode) <- cj :: st.watches.(fcode))
                  rest;
                raise (Conflict ci)
              end
              else begin
                enqueue st c.(0) ci;
                go rest
              end
            end
          end
      in
      go ws
    done

  let bump st v =
    st.activity.(v) <- st.activity.(v) +. st.var_inc;
    if st.activity.(v) > 1e100 then begin
      for i = 1 to st.nvars do
        st.activity.(i) <- st.activity.(i) *. 1e-100
      done;
      st.var_inc <- st.var_inc *. 1e-100
    end

  (* First-UIP conflict analysis.  Returns the learned clause with the
     asserting literal at its head, and the backjump level. *)
  let analyze st confl =
    let learned = ref [] in
    let counter = ref 0 in
    let ci = ref confl in
    let first = ref true in
    let idx = ref (st.ntrail - 1) in
    let btlevel = ref 0 in
    let uip = ref 0 in
    let continue = ref true in
    while !continue do
      let c = st.db.(!ci) in
      (* In a reason clause, slot 0 holds the implied literal. *)
      let start = if !first then 0 else 1 in
      first := false;
      for k = start to Array.length c - 1 do
        let q = c.(k) in
        let v = abs q in
        if (not st.seen.(v)) && st.level.(v) > 0 then begin
          st.seen.(v) <- true;
          bump st v;
          if st.level.(v) >= st.nlevels then incr counter
          else begin
            learned := q :: !learned;
            if st.level.(v) > !btlevel then btlevel := st.level.(v)
          end
        end
      done;
      let rec next () =
        let l = st.trail.(!idx) in
        decr idx;
        if st.seen.(abs l) then l else next ()
      in
      let l = next () in
      st.seen.(abs l) <- false;
      decr counter;
      if !counter = 0 then begin
        uip := l;
        continue := false
      end
      else ci := st.reason.(abs l)
    done;
    List.iter (fun q -> st.seen.(abs q) <- false) !learned;
    (-(!uip) :: !learned, !btlevel)

  let new_level st =
    st.lim.(st.nlevels) <- st.ntrail;
    st.nlevels <- st.nlevels + 1

  let cancel_until st lvl =
    if st.nlevels > lvl then begin
      let mark = st.lim.(lvl) in
      for i = st.ntrail - 1 downto mark do
        let v = abs st.trail.(i) in
        st.assign.(v) <- 0;
        st.reason.(v) <- -1
      done;
      st.ntrail <- mark;
      st.qhead <- mark;
      st.nlevels <- lvl
    end

  let install_learned st lits =
    let c = Array.of_list lits in
    if Array.length c >= 2 then begin
      (* Watch invariant: slot 1 must hold a highest-level literal among
         the tail, so the clause wakes up exactly when it becomes unit
         again. *)
      let best = ref 1 in
      for k = 2 to Array.length c - 1 do
        if st.level.(abs c.(k)) > st.level.(abs c.(!best)) then best := k
      done;
      let tmp = c.(1) in
      c.(1) <- c.(!best);
      c.(!best) <- tmp
    end;
    let ci = add_clause_arr st c in
    enqueue st c.(0) ci

  let pick st =
    let best = ref 0 in
    for v = 1 to st.nvars do
      if st.assign.(v) = 0 && (!best = 0 || st.activity.(v) > st.activity.(!best))
      then best := v
    done;
    !best

  let search st =
    try
      (try propagate st with Conflict _ -> raise Unsat_root);
      let rec resolve () =
        match propagate st with
        | () -> ()
        | exception Conflict ci ->
          if st.nlevels = 0 then raise Unsat_root;
          let lits, bt = analyze st ci in
          st.var_inc <- st.var_inc *. 1.052;
          cancel_until st bt;
          install_learned st lits;
          resolve ()
      in
      let rec loop () =
        match pick st with
        | 0 -> `Sat
        | v ->
          new_level st;
          enqueue st (-v) (-1);
          resolve ();
          loop ()
      in
      loop ()
    with Unsat_root -> `Unsat

  (* Clause ingestion: drop tautologies, deduplicate literals, enqueue
     units at the root level.  Returns false when the store is already
     root-inconsistent. *)
  let ingest st lits =
    let lits = List.sort_uniq compare lits in
    let tautology = List.exists (fun l -> List.mem (-l) lits) lits in
    if tautology then true
    else
      match lits with
      | [] -> false
      | [ l ] -> (
        match value st l with
        | 1 -> true
        | -1 -> false
        | _ ->
          enqueue st l (-1);
          true)
      | lits ->
        ignore (add_clause_arr st (Array.of_list lits));
        true

  let max_var clauses =
    List.fold_left
      (List.fold_left (fun m l -> max m (abs l)))
      0 clauses

  (* Build a solver over [clauses]; [None] when root-inconsistent. *)
  let of_clauses clauses =
    let st = create (max_var clauses) in
    if List.for_all (ingest st) clauses then begin
      st.first_learned := st.ndb;
      Some st
    end
    else None

  let model st =
    let a = Array.copy st.assign in
    fun v -> v >= 1 && v < Array.length a && a.(v) = 1

  (* Clauses learned during [search], for carry-over across runs. *)
  let learned st =
    let acc = ref [] in
    for ci = st.ndb - 1 downto !(st.first_learned) do
      acc := Array.to_list st.db.(ci) :: !acc
    done;
    !acc
end

let solve clauses =
  match Cdcl.of_clauses clauses with
  | None -> Unsat
  | Some st -> (
    match Cdcl.search st with
    | `Unsat -> Unsat
    | `Sat -> Sat (Cdcl.model st))

(* ------------------------------------------------------------------ *)
(* Incremental interface for CDCL(T).                                   *)

module Inc = struct
  type t = {
    mutable clauses : clause list;  (* newest first *)
    mutable carried : clause list;  (* learned clauses kept across runs *)
  }

  let create () = { clauses = []; carried = [] }

  let add_clause t c = t.clauses <- c :: t.clauses

  (* Keep short learned clauses across runs: they are consequences of
     the clause store, so re-adding them is sound, and the short ones
     carry most of the pruning power without growing the store
     quadratically over a long lemma loop. *)
  let keep_len = 8
  let keep_count = 256

  let solve t =
    match Cdcl.of_clauses (List.rev_append t.clauses t.carried) with
    | None -> Unsat
    | Some st -> (
      let r = Cdcl.search st in
      let fresh =
        List.filter (fun c -> List.length c <= keep_len) (Cdcl.learned st)
      in
      t.carried <-
        (let combined = fresh @ t.carried in
         List.filteri (fun i _ -> i < keep_count) combined);
      match r with
      | `Unsat -> Unsat
      | `Sat -> Sat (Cdcl.model st))
end

(* ------------------------------------------------------------------ *)
(* Model enumeration keeps the simple recursive DPLL: it needs every
   model, not a fast first one, and the clause sets it sees (lint-level
   queries) are tiny. *)

module IntMap = Map.Make (Int)

let assign_lit lit clauses =
  let rec go acc = function
    | [] -> Some acc
    | clause :: rest ->
      if List.mem lit clause then go acc rest
      else begin
        let clause' = List.filter (fun l -> l <> -lit) clause in
        if clause' = [] then None else go (clause' :: acc) rest
      end
  in
  go [] clauses

let rec unit_propagate assignment clauses =
  match List.find_opt (function [ _ ] -> true | _ -> false) clauses with
  | Some [ lit ] -> (
    let assignment = IntMap.add (abs lit) (lit > 0) assignment in
    match assign_lit lit clauses with
    | None -> None
    | Some clauses -> unit_propagate assignment clauses)
  | _ -> Some (assignment, clauses)

let rec dpll assignment clauses on_model =
  match unit_propagate assignment clauses with
  | None -> ()
  | Some (assignment, clauses) -> (
    match clauses with
    | [] -> on_model assignment
    | (lit :: _) :: _ ->
      let v = abs lit in
      let try_branch value =
        let l = if value then v else -v in
        match assign_lit l clauses with
        | None -> ()
        | Some clauses' -> dpll (IntMap.add v value assignment) clauses' on_model
      in
      try_branch true;
      try_branch false
    | [] :: _ -> assert false)

let solve_all ?limit clauses =
  if List.exists (( = ) []) clauses then []
  else begin
    let models = ref [] in
    let count = ref 0 in
    let all_vars =
      List.concat_map (List.map abs) clauses |> List.sort_uniq compare
    in
    (try
       dpll IntMap.empty clauses (fun m ->
           (* Expanding unassigned variables into all completions would
              be exponential; report only assigned-true variables,
              treating unassigned as false (a valid completion). *)
           let trues =
             List.filter
               (fun v ->
                 match IntMap.find_opt v m with Some b -> b | None -> false)
               all_vars
           in
           models := trues :: !models;
           incr count;
           match limit with Some l when !count >= l -> raise Exit | _ -> ())
     with Exit -> ());
    List.rev !models
  end
