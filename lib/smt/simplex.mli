(** Decision procedure for conjunctions of linear rational arithmetic
    atoms (QF_LRA), in the style of Dutertre and de Moura's general
    simplex.  Strict inequalities are handled exactly with
    delta-rationals ({!Delta}). *)

module Q := Numbers.Rational

type result =
  | Sat of (int * Q.t) list
      (** A satisfying rational assignment for every variable occurring in
          the input (with a concrete small positive value substituted for
          delta). *)
  | Unsat
  | Unknown
      (** Delta concretization exhausted its halving budget — a typed
          give-up instead of an exception, so one pathological query
          cannot crash a multi-worker run (callers treat it like
          {!Lia.Unknown}). *)

(** Raised by {!solve}, {!solve_delta} and {!Session.check} when the
    caller's [stop] predicate returns true mid-search.  Never raised
    when [stop] is omitted.  An interrupted session tableau stays valid
    (pivoting only rewrites the equality system), so checking again
    later is sound. *)
exception Timeout

(** Pivots between two looks at [stop] — the solver's fuel quantum.
    Once a deadline has passed, overshoot is bounded by the cost of
    this many pivots. *)
val stop_interval : int

(** [solve ?stop atoms] decides the conjunction of [atoms] over the
    rationals.  [stop] is polled every {!stop_interval} pivots.
    @raise Timeout when [stop] returns true. *)
val solve : ?stop:(unit -> bool) -> Atom.t list -> result

(** [solve_delta ?stop atoms] is like {!solve} but exposes the
    delta-rational assignment directly.
    @raise Timeout when [stop] returns true. *)
val solve_delta : ?stop:(unit -> bool) -> Atom.t list -> (int * Delta.t) list option

(** Incremental assertion-stack interface.  The tableau and all derived
    slack rows are kept warm across [pop]s: popping a frame only unwinds
    the bound changes recorded in its trail, so re-asserting constraints
    over previously seen linear forms reuses the existing rows and the
    current (dual-feasible) basis instead of rebuilding the problem.
    Used by {!Lia}'s assertion stack, which the incremental schema
    checker drives along its enumeration DFS. *)
module Session : sig
  type t

  val create : unit -> t

  (** [push s] opens a new assertion frame. *)
  val push : t -> unit

  (** [pop s] retracts every bound asserted since the matching {!push}
      (tableau rows and variables stay, unconstrained).
      @raise Invalid_argument on an empty stack. *)
  val pop : t -> unit

  (** {!push} under its CDCL(T) name. *)
  val push_level : t -> unit

  (** [pop_levels s n] pops [n] frames.
      @raise Invalid_argument if fewer than [n] frames are open. *)
  val pop_levels : t -> int -> unit

  (** Number of open assertion frames. *)
  val level : t -> int

  (** [assert_atom ?tag s a] adds [a] to the current frame.  Asserting at
      depth 0 (before any [push]) is permanent.  A trivially false atom,
      or a bound crossing an earlier one, marks the current frame
      infeasible — subsequent checks return [`Unsat _] until the frame is
      popped.

      [tag] names the atom in conflict explanations.  The multiplier
      reported for a tag is the Farkas coefficient of [a]'s expression
      itself (not of the internal bound), so [sum_i lambda_i * expr_i]
      over an explanation cancels all variables and leaves a positive
      constant.  An untagged atom involved in a conflict degrades that
      conflict's explanation to [None]. *)
  val assert_atom : ?tag:int -> t -> Atom.t -> unit

  (** [check ?stop s] decides the asserted conjunction over the
      rationals.  [`Unsat expl] reports which asserted atoms form the
      infeasible set: [expl] is a Farkas combination [(tag, lambda)] over
      the tags passed to {!assert_atom} ([None] when an untagged atom
      participates).  [stop] is polled every {!stop_interval} pivots.
      @raise Timeout when [stop] returns true; the tableau stays valid
      and the session can be checked again. *)
  val check :
    ?stop:(unit -> bool) -> t -> [ `Sat | `Unsat of (int * Q.t) list option ]

  (** Whether the current frame is already known infeasible (from an
      assert-time bound crossing or a previous [`Unsat] check). *)
  val is_infeasible : t -> bool

  (** The Farkas explanation of the current infeasibility, if the session
      is infeasible and every participating atom was tagged. *)
  val infeasible_expl : t -> (int * Q.t) list option

  (** [value s x] is the delta-rational value of external variable [x]
      after a [`Sat] check (zero for unseen variables). *)
  val value : t -> int -> Delta.t

  (** [vars s] lists the external variables asserted so far, ascending. *)
  val vars : t -> int list
end
