(** Decision procedure for conjunctions of linear rational arithmetic
    atoms (QF_LRA), in the style of Dutertre and de Moura's general
    simplex.  Strict inequalities are handled exactly with
    delta-rationals ({!Delta}). *)

module Q := Numbers.Rational

type result =
  | Sat of (int * Q.t) list
      (** A satisfying rational assignment for every variable occurring in
          the input (with a concrete small positive value substituted for
          delta). *)
  | Unsat
  | Unknown
      (** Delta concretization exhausted its halving budget — a typed
          give-up instead of an exception, so one pathological query
          cannot crash a multi-worker run (callers treat it like
          {!Lia.Unknown}). *)

(** [solve atoms] decides the conjunction of [atoms] over the rationals. *)
val solve : Atom.t list -> result

(** [solve_delta atoms] is like {!solve} but exposes the delta-rational
    assignment directly. *)
val solve_delta : Atom.t list -> (int * Delta.t) list option
