module Q = Numbers.Rational
module B = Numbers.Bigint
module C = Certificate

let ( let* ) = Result.bind

let fail fmt = Format.kasprintf (fun msg -> Error msg) fmt

(* ------------------------------------------------------------------ *)
(* Independent re-implementations of the integer inference steps the
   solver may take on an input atom.  Deliberately not shared with
   {!Lia}: the checker must not trust the code it audits. *)

(* Scale an expression by the lcm of its denominators: a positive
   factor, so relations are preserved. *)
let integerize expr =
  let denoms =
    Q.den (Linexpr.constant expr)
    :: List.map (fun (c, _) -> Q.den c) (Linexpr.terms expr)
  in
  let l = List.fold_left B.lcm B.one denoms in
  if B.equal l B.one then expr else Linexpr.scale (Q.of_bigint l) expr

(* [e < 0] over integer coefficients is [e + 1 <= 0]. *)
let normalize (a : Atom.t) : Atom.t =
  let expr = integerize a.expr in
  match a.rel with
  | Atom.Lt -> { Atom.expr = Linexpr.add_const Q.one expr; rel = Atom.Le }
  | Atom.Le | Atom.Eq -> { a with expr }

let coeff_gcd expr =
  List.fold_left (fun acc (c, _) -> B.gcd acc (Q.to_bigint c)) B.zero
    (Linexpr.terms expr)

(* GCD tightening of a normalized atom: for [a.x + k <= 0] with
   g = gcd(a), integer solutions also satisfy [a/g.x + ceil(k/g) <= 0];
   an equality requires g | k.  Returns [None] when an equality has a
   divisibility conflict (the inference {!Certificate.Div_conflict}
   claims). *)
let tighten (a : Atom.t) : Atom.t option =
  match Linexpr.terms a.expr with
  | [] -> Some a
  | coeffs ->
    let g = coeff_gcd a.expr in
    if B.equal g B.one then Some a
    else begin
      let k = Q.to_bigint (Linexpr.constant a.expr) in
      match a.rel with
      | Atom.Eq ->
        if B.is_zero (B.rem k g) then
          Some { a with expr = Linexpr.scale (Q.make B.one g) a.expr }
        else None
      | Atom.Le ->
        let terms = List.map (fun (c, v) -> (Q.make (Q.to_bigint c) g, v)) coeffs in
        Some { a with expr = Linexpr.of_terms terms (Q.of_bigint (B.cdiv k g)) }
      | Atom.Lt -> Some a (* normalized atoms are never strict *)
    end

(* The integer-equivalent forms of an input atom a premise may cite:
   the input itself, its normalization, and the tightened
   normalization. *)
let derivations (a : Atom.t) =
  let n = normalize a in
  match tighten n with Some t -> [ a; n; t ] | None -> [ a; n ]

(* ------------------------------------------------------------------ *)

let cut_atom ~var ~pivot ~side =
  match side with
  | `Low ->
    (* x - pivot <= 0 *)
    { Atom.expr = Linexpr.add_term Q.one var (Linexpr.const (Q.neg (Q.of_bigint pivot)));
      rel = Atom.Le }
  | `High ->
    (* pivot + 1 - x <= 0 *)
    { Atom.expr =
        Linexpr.add_term Q.minus_one var
          (Linexpr.const (Q.of_bigint (B.succ pivot)));
      rel = Atom.Le }

let check_premise inputs cuts (p : C.premise) =
  let* () =
    match (p.atom.Atom.rel, Q.sign p.coeff) with
    | (Atom.Le | Atom.Lt), s when s < 0 ->
      fail "negative Farkas multiplier %s on inequality premise %s"
        (Q.to_string p.coeff) (Atom.to_string p.atom)
    | _ -> Ok ()
  in
  match p.reason with
  | C.Input i ->
    if i < 0 || i >= Array.length inputs then fail "premise cites input %d out of range" i
    else if List.exists (Atom.equal p.atom) (derivations inputs.(i)) then Ok ()
    else
      fail "premise %s is not a recognized derivation of input %d (%s)"
        (Atom.to_string p.atom) i
        (Atom.to_string inputs.(i))
  | C.Cut d ->
    if d < 0 || d >= Array.length cuts then
      fail "premise cites cut %d but only %d branch ancestors exist" d
        (Array.length cuts)
    else if Atom.equal p.atom cuts.(d) then Ok ()
    else
      fail "premise %s does not match the cut %s introduced at branch depth %d"
        (Atom.to_string p.atom) (Atom.to_string cuts.(d)) d

let check_farkas inputs cuts premises =
  if premises = [] then fail "empty Farkas combination"
  else begin
    let rec all = function
      | [] -> Ok ()
      | p :: rest ->
        let* () = check_premise inputs cuts p in
        all rest
    in
    let* () = all premises in
    let sum =
      List.fold_left
        (fun acc (p : C.premise) ->
          Linexpr.add acc (Linexpr.scale p.coeff p.atom.Atom.expr))
        Linexpr.zero premises
    in
    if not (Linexpr.is_const sum) then
      fail "Farkas combination does not cancel the variables: %s"
        (Linexpr.to_string sum)
    else begin
      let k = Linexpr.constant sum in
      let strict =
        List.exists
          (fun (p : C.premise) -> p.atom.Atom.rel = Atom.Lt && Q.sign p.coeff > 0)
          premises
      in
      if Q.sign k > 0 || (Q.is_zero k && strict) then Ok ()
      else
        fail "Farkas combination sums to %s %s 0: no contradiction" (Q.to_string k)
          (if strict then "<" else "<=")
    end
  end

let check_div inputs index atom =
  if index < 0 || index >= Array.length inputs then
    fail "div-conflict cites input %d out of range" index
  else begin
    let n = normalize inputs.(index) in
    if not (Atom.equal atom n) then
      fail "div-conflict atom %s is not the normalization of input %d (%s)"
        (Atom.to_string atom) index
        (Atom.to_string n)
    else if n.Atom.rel <> Atom.Eq then
      fail "div-conflict on non-equality input %d" index
    else begin
      let g = coeff_gcd n.Atom.expr in
      let k = Q.to_bigint (Linexpr.constant n.Atom.expr) in
      if B.is_zero g then fail "div-conflict on constant input %d" index
      else if B.is_zero (B.rem k g) then
        fail "no divisibility conflict in input %d: %s divides %s" index
          (B.to_string g) (B.to_string k)
      else Ok ()
    end
  end

let atoms_match claimed expected =
  List.length claimed = List.length expected
  && List.for_all2 Atom.equal claimed expected

let validate_query ~atoms ~branches cert =
  (* [inputs] is the extended atom array (base atoms, then the cube
     atoms of every Split case entered, in order); [cuts] the cut atoms
     of the enclosing Branch nodes by depth. *)
  let rec go inputs cuts branches cert =
    match cert with
    | C.Static c -> go inputs cuts branches c
    | C.Farkas ps -> check_farkas inputs cuts ps
    | C.Div_conflict { index; atom } -> check_div inputs index atom
    | C.Branch { var; pivot; low; high } ->
      let with_cut side c =
        go inputs (Array.append cuts [| cut_atom ~var ~pivot ~side |]) branches c
      in
      let* () = with_cut `Low low in
      with_cut `High high
    | C.Split { cubes; certs } -> (
      if Array.length cuts > 0 then
        fail "Split below a Branch node is not a valid refutation shape"
      else
        match branches with
        | [] -> fail "Split with no pending branch entry"
        | entry :: rest ->
          if not
               (List.length cubes = List.length entry
                && List.for_all2 atoms_match cubes entry)
          then fail "Split cubes do not match the query's branch entry"
          else if List.length certs <> List.length cubes then
            fail "Split has %d certificates for %d cubes" (List.length certs)
              (List.length cubes)
          else begin
            let rec cases cubes certs =
              match (cubes, certs) with
              | [], [] -> Ok ()
              | cube :: cubes, cert :: certs ->
                let* () =
                  go (Array.append inputs (Array.of_list cube)) cuts rest cert
                in
                cases cubes certs
              | _ -> assert false
            in
            cases cubes certs
          end)
  in
  go (Array.of_list atoms) [||] branches cert

let validate atoms cert = validate_query ~atoms ~branches:[] cert
