module B = Numbers.Bigint
module Q = Numbers.Rational
module P = Presburger

exception Disagreement of string

type counters = {
  hits : int;
  misses : int;
  cross : int;
  w_interval : int;
  w_cooper : int;
  w_simplex : int;
}

let zero_counters =
  { hits = 0; misses = 0; cross = 0; w_interval = 0; w_cooper = 0; w_simplex = 0 }

let add_counters a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    cross = a.cross + b.cross;
    w_interval = a.w_interval + b.w_interval;
    w_cooper = a.w_cooper + b.w_cooper;
    w_simplex = a.w_simplex + b.w_simplex;
  }

let sub_counters a b =
  {
    hits = a.hits - b.hits;
    misses = a.misses - b.misses;
    cross = a.cross - b.cross;
    w_interval = a.w_interval - b.w_interval;
    w_cooper = a.w_cooper - b.w_cooper;
    w_simplex = a.w_simplex - b.w_simplex;
  }

(* ------------------------------------------------------------------- *)
(* Learned win table.  A query's shape is (atom-count bucket, variable-
   arity bucket, justice flag); buckets are logarithmic so e.g. 33- and
   40-atom queries share routing state.  Per shape we count which
   backend decided, and Cooper — the only backend whose attempt can be
   expensive — is raced only while it is winning for the shape or the
   shape is still unexplored. *)

type shape = { s_atoms : int; s_vars : int; s_justice : bool }

let bucket n =
  let rec go b n = if n = 0 then b else go (b + 1) (n lsr 1) in
  go 0 n

type shape_stats = {
  mutable tried : int;
  mutable cooper_wins : int;
  mutable other_wins : int;  (* interval + simplex decisions *)
}

type t = {
  qcache : Qcache.t;
  check : bool;
  wins_mutex : Mutex.t;
  wins : (shape, shape_stats) Hashtbl.t;
}

let create ?(check = false) qcache =
  { qcache; check; wins_mutex = Mutex.create (); wins = Hashtbl.create 32 }

let cache t = t.qcache

let with_wins t f =
  Mutex.lock t.wins_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.wins_mutex) (fun () -> f ())

let shape_of ~justice atoms =
  let vars = List.sort_uniq compare (List.concat_map Atom.vars atoms) in
  { s_atoms = bucket (List.length atoms); s_vars = bucket (List.length vars);
    s_justice = justice }

(* Explore Cooper for the first few queries of a shape, then only while
   it keeps deciding at least as often as the other backends. *)
let try_cooper_for t shape =
  with_wins t (fun () ->
      match Hashtbl.find_opt t.wins shape with
      | None -> true
      | Some s -> s.tried < 4 || s.cooper_wins >= s.other_wins)

let record_win t shape ~cooper =
  with_wins t (fun () ->
      let s =
        match Hashtbl.find_opt t.wins shape with
        | Some s -> s
        | None ->
          let s = { tried = 0; cooper_wins = 0; other_wins = 0 } in
          Hashtbl.add t.wins shape s;
          s
      in
      s.tried <- s.tried + 1;
      if cooper then s.cooper_wins <- s.cooper_wins + 1
      else s.other_wins <- s.other_wins + 1)

(* ------------------------------------------------------------------- *)

type handle = {
  pf : t;
  local : Qcache.Local.handle;
  origin : string;
  mutable c : counters;
}

let handle ~origin pf =
  { pf; local = Qcache.Local.create pf.qcache; origin; c = zero_counters }

let counters h = h.c

let flush h = Qcache.Local.flush h.local

(* ------------------------------------------------------------------- *)
(* Backends. *)

(* Interval propagation: a fresh session's assert-time layers only.
   Decides UNSAT at zero counted simplex steps; a fresh session has no
   cached model, so it never claims SAT. *)
let interval_refutes atoms =
  let s = Lia.create () in
  Lia.assert_atoms s atoms;
  match Lia.check_quick s with Lia.Unsat -> true | _ -> false

(* Cooper QE over the canonical conjunction.  Only small queries are
   eligible: elimination is superexponential in the variable count, and
   the conversion needs native-int coefficients. *)
let cooper_max_vars = 6
let cooper_max_atoms = 24

let cooper_formula catoms =
  let term_of expr =
    let ok = ref true in
    let int_of q =
      match B.to_int (Q.to_bigint q) with
      | Some n -> n
      | None ->
        ok := false;
        0
    in
    let terms =
      List.map
        (fun (c, x) -> (int_of c, Printf.sprintf "x%d" x))
        (Linexpr.terms expr)
    in
    let t = P.Term.of_terms terms (int_of (Linexpr.constant expr)) in
    if !ok then Some t else None
  in
  let zero = P.Term.const 0 in
  let atom_of (a : Atom.t) =
    Option.map
      (fun t ->
        match a.Atom.rel with
        | Atom.Le -> P.le t zero
        | Atom.Lt -> P.lt t zero
        | Atom.Eq -> P.eq t zero)
      (term_of a.Atom.expr)
  in
  let rec all acc = function
    | [] -> Some (P.And (List.rev acc))
    | a :: rest -> (
      match atom_of a with None -> None | Some f -> all (f :: acc) rest)
  in
  all [] catoms

let cooper_eligible catoms =
  List.length catoms <= cooper_max_atoms
  && List.length (List.sort_uniq compare (List.concat_map Atom.vars catoms))
     <= cooper_max_vars

(* Atom budget for the elimination: past this, Cooper concedes the race
   to the simplex (its expansion is superexponential in the worst
   case — unbounded it can eat the whole machine on one bad query). *)
let cooper_budget = 5_000

(* [Some false]: refuted; [Some true]: satisfiable (no model — fall
   through to the simplex); [None]: not eligible / conversion failed /
   elimination blew the budget. *)
let cooper_decides catoms =
  if not (cooper_eligible catoms) then None
  else
    match cooper_formula catoms with
    | None -> None
    | Some f -> (
      try P.check_sat_bounded ~budget:cooper_budget f
      with Invalid_argument _ -> None)

(* ------------------------------------------------------------------- *)

(* Canonical-vs-canonical comparisons (the cache hit guard) use the
   cheap comparator; the SAT literal-identity check compares raw query
   atoms, which are not canonical, so it keeps the general one. *)
let catoms_equal = List.equal Atom.equal_canonical
let atoms_equal = List.equal Atom.equal

(* Cross-check a refuter's UNSAT on the simplex (uncounted steps: the
   check is diagnostic work, not verification effort). *)
let crosscheck ~max_steps ?stop ~backend atoms =
  match Lia.solve ~max_steps ?stop atoms with
  | Lia.Sat _ ->
    raise
      (Disagreement
         (Printf.sprintf "%s refuted a conjunction the simplex satisfies" backend))
  | Lia.Unsat | Lia.Unknown | Lia.Timeout -> ()

let solve ?steps ?(max_steps = 20_000) ?stop ~justice h atoms =
  let key, catoms = Qcache.fingerprint atoms in
  let hit verdict_result ~cross =
    h.c <-
      { h.c with hits = h.c.hits + 1; cross = (h.c.cross + if cross then 1 else 0) };
    verdict_result
  in
  let cached =
    match Qcache.Local.find h.local key with
    | Some e when catoms_equal e.Qcache.catoms catoms -> (
      let cross = not (String.equal e.Qcache.origin h.origin) in
      match e.Qcache.verdict with
      | Qcache.Unsat_cert _ -> Some (hit Lia.Unsat ~cross)
      | Qcache.Sat_model { atoms = la; model } ->
        (* Serve a SAT hit only for the literally identical query (same
           atoms, same order): the stored model is then byte-identical
           to what the simplex would recompute, so the witness is too.
           The model is still revalidated — a stale entry degrades to a
           miss. *)
        if atoms_equal la atoms && Lia.check_model atoms model then
          Some (hit (Lia.Sat model) ~cross)
        else None)
    | _ -> None
  in
  match cached with
  | Some r -> r
  | None ->
    h.c <- { h.c with misses = h.c.misses + 1 };
    let shape = shape_of ~justice atoms in
    let remember verdict =
      Qcache.Local.add h.local key
        { Qcache.catoms; verdict; origin = h.origin }
    in
    if interval_refutes atoms then begin
      if h.pf.check then crosscheck ~max_steps ?stop ~backend:"interval" atoms;
      h.c <- { h.c with w_interval = h.c.w_interval + 1 };
      record_win h.pf shape ~cooper:false;
      remember (Qcache.Unsat_cert None);
      Lia.Unsat
    end
    else begin
      let cooper =
        if try_cooper_for h.pf shape then cooper_decides catoms else None
      in
      match cooper with
      | Some false ->
        if h.pf.check then crosscheck ~max_steps ?stop ~backend:"Cooper QE" atoms;
        h.c <- { h.c with w_cooper = h.c.w_cooper + 1 };
        record_win h.pf shape ~cooper:true;
        remember (Qcache.Unsat_cert None);
        Lia.Unsat
      | Some true | None -> (
        (* The simplex is the only model-producing backend: its call here
           is the same call the uncached engine makes, so SAT verdicts
           (and witnesses) are byte-identical. *)
        match Lia.solve ?steps ~max_steps ?stop atoms with
        | Lia.Sat model as r ->
          h.c <- { h.c with w_simplex = h.c.w_simplex + 1 };
          record_win h.pf shape ~cooper:false;
          remember (Qcache.Sat_model { atoms; model });
          r
        | Lia.Unsat as r ->
          (* Cooper claimed SAT but the reference engine refutes: a
             backend bug either way — surface it even without [check]. *)
          if cooper = Some true then
            raise
              (Disagreement
                 "Cooper QE satisfied a conjunction the simplex refutes");
          h.c <- { h.c with w_simplex = h.c.w_simplex + 1 };
          record_win h.pf shape ~cooper:false;
          remember (Qcache.Unsat_cert None);
          r
        | (Lia.Unknown | Lia.Timeout) as r -> r)
    end
