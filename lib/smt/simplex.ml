module Q = Numbers.Rational
module IntMap = Map.Make (Int)

type result = Sat of (int * Q.t) list | Unsat | Unknown

exception Conflict

(* Internal solver state over densely numbered variables [0, nvars).
   Rows map a basic variable to its expression over nonbasic variables. *)
type state = {
  nvars : int;
  rows : (int, Q.t IntMap.t) Hashtbl.t;
  beta : Delta.t array;
  lower : Delta.t option array;
  upper : Delta.t option array;
  basic : bool array;
}

let below_lower st x =
  match st.lower.(x) with None -> false | Some l -> Delta.compare st.beta.(x) l < 0

let above_upper st x =
  match st.upper.(x) with None -> false | Some u -> Delta.compare st.beta.(x) u > 0

(* Shift a nonbasic variable to value [v], propagating to basic rows. *)
let update st x v =
  let dv = Delta.sub v st.beta.(x) in
  Hashtbl.iter
    (fun b row ->
      match IntMap.find_opt x row with
      | None -> ()
      | Some a -> st.beta.(b) <- Delta.add st.beta.(b) (Delta.scale a dv))
    st.rows;
  st.beta.(x) <- v

let assert_upper st x c =
  let tighter = match st.upper.(x) with None -> true | Some u -> Delta.compare c u < 0 in
  if tighter then begin
    (match st.lower.(x) with
     | Some l when Delta.compare c l < 0 -> raise Conflict
     | _ -> ());
    st.upper.(x) <- Some c;
    if (not st.basic.(x)) && Delta.compare st.beta.(x) c > 0 then update st x c
  end

let assert_lower st x c =
  let tighter = match st.lower.(x) with None -> true | Some l -> Delta.compare c l > 0 in
  if tighter then begin
    (match st.upper.(x) with
     | Some u when Delta.compare c u > 0 -> raise Conflict
     | _ -> ());
    st.lower.(x) <- Some c;
    if (not st.basic.(x)) && Delta.compare st.beta.(x) c < 0 then update st x c
  end

(* Pivot basic [xi] with nonbasic [xj] and set beta(xi) to [v]. *)
let pivot_and_update st xi xj v =
  let row_i = Hashtbl.find st.rows xi in
  let aij = IntMap.find xj row_i in
  let theta = Delta.scale (Q.inv aij) (Delta.sub v st.beta.(xi)) in
  st.beta.(xi) <- v;
  st.beta.(xj) <- Delta.add st.beta.(xj) theta;
  Hashtbl.iter
    (fun xk row ->
      if xk <> xi then
        match IntMap.find_opt xj row with
        | None -> ()
        | Some akj -> st.beta.(xk) <- Delta.add st.beta.(xk) (Delta.scale akj theta))
    st.rows;
  (* Derive the new row for xj:  xj = xi/aij - sum_{k<>j} (aik/aij) xk. *)
  Hashtbl.remove st.rows xi;
  let inv = Q.inv aij in
  let row_j =
    IntMap.fold
      (fun k aik acc ->
        if k = xj then acc else IntMap.add k (Q.neg (Q.mul aik inv)) acc)
      row_i
      (IntMap.singleton xi inv)
  in
  (* Substitute xj in every remaining row. *)
  let subst_row row =
    match IntMap.find_opt xj row with
    | None -> row
    | Some c ->
      let row = IntMap.remove xj row in
      IntMap.fold
        (fun k cj acc ->
          let add = Q.mul c cj in
          match IntMap.find_opt k acc with
          | None -> if Q.is_zero add then acc else IntMap.add k add acc
          | Some c0 ->
            let c' = Q.add c0 add in
            if Q.is_zero c' then IntMap.remove k acc else IntMap.add k c' acc)
        row_j row
  in
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) st.rows [] in
  List.iter (fun k -> Hashtbl.replace st.rows k (subst_row (Hashtbl.find st.rows k))) keys;
  Hashtbl.replace st.rows xj row_j;
  st.basic.(xi) <- false;
  st.basic.(xj) <- true

(* Main check loop with Bland's rule (smallest indices) for termination. *)
let check st =
  let rec loop () =
    let violating = ref None in
    for x = st.nvars - 1 downto 0 do
      if st.basic.(x) && (below_lower st x || above_upper st x) then violating := Some x
    done;
    match !violating with
    | None -> ()
    | Some xi ->
      let row = Hashtbl.find st.rows xi in
      if below_lower st xi then begin
        (* Increase xi. *)
        let xj = ref None in
        IntMap.iter
          (fun k a ->
            if !xj = None then
              let ok =
                if Q.sign a > 0 then
                  match st.upper.(k) with
                  | None -> true
                  | Some u -> Delta.compare st.beta.(k) u < 0
                else
                  match st.lower.(k) with
                  | None -> true
                  | Some l -> Delta.compare st.beta.(k) l > 0
              in
              if ok then xj := Some k)
          row;
        match !xj with
        | None -> raise Conflict
        | Some xj ->
          pivot_and_update st xi xj (Option.get st.lower.(xi));
          loop ()
      end
      else begin
        (* Decrease xi. *)
        let xj = ref None in
        IntMap.iter
          (fun k a ->
            if !xj = None then
              let ok =
                if Q.sign a < 0 then
                  match st.upper.(k) with
                  | None -> true
                  | Some u -> Delta.compare st.beta.(k) u < 0
                else
                  match st.lower.(k) with
                  | None -> true
                  | Some l -> Delta.compare st.beta.(k) l > 0
              in
              if ok then xj := Some k)
          row;
        match !xj with
        | None -> raise Conflict
        | Some xj ->
          pivot_and_update st xi xj (Option.get st.upper.(xi));
          loop ()
      end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Problem setup: dense renumbering, slack variables, bounds.           *)

let solve_internal atoms =
  (* Constant atoms are decided immediately. *)
  let atoms =
    List.filter_map
      (fun a ->
        match Atom.trivial a with
        | Some true -> None
        | Some false -> raise Conflict
        | None -> Some a)
      atoms
  in
  let original_vars =
    List.concat_map Atom.vars atoms |> List.sort_uniq compare
  in
  let dense = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace dense v i) original_vars;
  let norig = List.length original_vars in
  (* One slack variable per distinct linear part. *)
  let slack_of = Hashtbl.create 16 in
  let slack_rows = ref [] in
  let nslack = ref 0 in
  let constraints =
    List.map
      (fun (a : Atom.t) ->
        let linear =
          Linexpr.terms a.expr
          |> List.map (fun (c, v) -> (c, Hashtbl.find dense v))
        in
        let bound = Q.neg (Linexpr.constant a.expr) in
        match linear with
        | [ (c, v) ] ->
          (* Single-variable atom: bound the variable directly — no slack
             row needed.  A negative coefficient flips the bound side. *)
          (`Direct (v, Q.sign c > 0), a.rel, Q.div bound c)
        | _ ->
          let key = linear in
          let slack =
            match Hashtbl.find_opt slack_of key with
            | Some s -> s
            | None ->
              let s = norig + !nslack in
              incr nslack;
              Hashtbl.replace slack_of key s;
              slack_rows := (s, linear) :: !slack_rows;
              s
          in
          (`Slack slack, a.rel, bound))
      (List.filter (fun (a : Atom.t) -> not (Linexpr.is_const a.expr)) atoms)
  in
  let nvars = norig + !nslack in
  let st =
    {
      nvars;
      rows = Hashtbl.create 16;
      beta = Array.make nvars Delta.zero;
      lower = Array.make nvars None;
      upper = Array.make nvars None;
      basic = Array.make nvars false;
    }
  in
  List.iter
    (fun (s, linear) ->
      let row =
        List.fold_left (fun acc (c, v) -> IntMap.add v c acc) IntMap.empty linear
      in
      Hashtbl.replace st.rows s row;
      st.basic.(s) <- true)
    !slack_rows;
  List.iter
    (fun (target, rel, bound) ->
      let v, upper_side =
        match target with `Slack s -> (s, true) | `Direct (v, pos) -> (v, pos)
      in
      match ((rel : Atom.rel), upper_side) with
      | Le, true -> assert_upper st v (Delta.of_rational bound)
      | Lt, true -> assert_upper st v (Delta.make bound Q.minus_one)
      | Le, false -> assert_lower st v (Delta.of_rational bound)
      | Lt, false -> assert_lower st v (Delta.make bound Q.one)
      | Eq, _ ->
        assert_upper st v (Delta.of_rational bound);
        assert_lower st v (Delta.of_rational bound))
    constraints;
  check st;
  (original_vars, st)

let solve_delta atoms =
  match solve_internal atoms with
  | exception Conflict -> None
  | original_vars, st ->
    Some
      (List.map
         (fun v ->
           let rec dense_of i = function
             | [] -> assert false
             | w :: _ when w = v -> i
             | _ :: rest -> dense_of (i + 1) rest
           in
           (v, st.beta.(dense_of 0 original_vars)))
         original_vars)

let solve atoms =
  match solve_delta atoms with
  | None -> Unsat
  | Some deltas ->
    (* Concretize delta: start at 1 and halve until every atom holds. *)
    let rec concretize d tries =
      if tries = 0 then Unknown
      else begin
        let assign v =
          match List.assoc_opt v deltas with
          | Some { Delta.r; d = k } -> Q.add r (Q.mul k d)
          | None -> Q.zero
        in
        if List.for_all (Atom.holds assign) atoms then
          Sat (List.map (fun (v, _) -> (v, assign v)) deltas)
        else concretize (Q.div d (Q.of_int 2)) (tries - 1)
      end
    in
    concretize Q.one 4096
