module Q = Numbers.Rational
module IntMap = Map.Make (Int)

type result = Sat of (int * Q.t) list | Unsat | Unknown

exception Conflict
exception Timeout

(* How many pivots may elapse between two looks at the caller's [stop]
   predicate: the solver's fuel quantum.  Once a discharge is past its
   deadline, overshoot is bounded by the cost of this many pivots. *)
let stop_interval = 64

(* Internal solver state over densely numbered variables [0, nvars).
   Rows map a basic variable to its expression over nonbasic variables. *)
type state = {
  nvars : int;
  rows : (int, Q.t IntMap.t) Hashtbl.t;
  beta : Delta.t array;
  lower : Delta.t option array;
  upper : Delta.t option array;
  basic : bool array;
}

let below_lower st x =
  match st.lower.(x) with None -> false | Some l -> Delta.compare st.beta.(x) l < 0

let above_upper st x =
  match st.upper.(x) with None -> false | Some u -> Delta.compare st.beta.(x) u > 0

(* Shift a nonbasic variable to value [v], propagating to basic rows. *)
let update st x v =
  let dv = Delta.sub v st.beta.(x) in
  Hashtbl.iter
    (fun b row ->
      match IntMap.find_opt x row with
      | None -> ()
      | Some a -> st.beta.(b) <- Delta.add st.beta.(b) (Delta.scale a dv))
    st.rows;
  st.beta.(x) <- v

let assert_upper st x c =
  let tighter = match st.upper.(x) with None -> true | Some u -> Delta.compare c u < 0 in
  if tighter then begin
    (match st.lower.(x) with
     | Some l when Delta.compare c l < 0 -> raise Conflict
     | _ -> ());
    st.upper.(x) <- Some c;
    if (not st.basic.(x)) && Delta.compare st.beta.(x) c > 0 then update st x c
  end

let assert_lower st x c =
  let tighter = match st.lower.(x) with None -> true | Some l -> Delta.compare c l > 0 in
  if tighter then begin
    (match st.upper.(x) with
     | Some u when Delta.compare c u > 0 -> raise Conflict
     | _ -> ());
    st.lower.(x) <- Some c;
    if (not st.basic.(x)) && Delta.compare st.beta.(x) c < 0 then update st x c
  end

(* Pivot basic [xi] with nonbasic [xj] and set beta(xi) to [v]. *)
let pivot_and_update st xi xj v =
  let row_i = Hashtbl.find st.rows xi in
  let aij = IntMap.find xj row_i in
  let theta = Delta.scale (Q.inv aij) (Delta.sub v st.beta.(xi)) in
  st.beta.(xi) <- v;
  st.beta.(xj) <- Delta.add st.beta.(xj) theta;
  Hashtbl.iter
    (fun xk row ->
      if xk <> xi then
        match IntMap.find_opt xj row with
        | None -> ()
        | Some akj -> st.beta.(xk) <- Delta.add st.beta.(xk) (Delta.scale akj theta))
    st.rows;
  (* Derive the new row for xj:  xj = xi/aij - sum_{k<>j} (aik/aij) xk. *)
  Hashtbl.remove st.rows xi;
  let inv = Q.inv aij in
  let row_j =
    IntMap.fold
      (fun k aik acc ->
        if k = xj then acc else IntMap.add k (Q.neg (Q.mul aik inv)) acc)
      row_i
      (IntMap.singleton xi inv)
  in
  (* Substitute xj in every remaining row. *)
  let subst_row row =
    match IntMap.find_opt xj row with
    | None -> row
    | Some c ->
      let row = IntMap.remove xj row in
      IntMap.fold
        (fun k cj acc ->
          let add = Q.mul c cj in
          match IntMap.find_opt k acc with
          | None -> if Q.is_zero add then acc else IntMap.add k add acc
          | Some c0 ->
            let c' = Q.add c0 add in
            if Q.is_zero c' then IntMap.remove k acc else IntMap.add k c' acc)
        row_j row
  in
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) st.rows [] in
  List.iter (fun k -> Hashtbl.replace st.rows k (subst_row (Hashtbl.find st.rows k))) keys;
  Hashtbl.replace st.rows xj row_j;
  st.basic.(xi) <- false;
  st.basic.(xj) <- true

(* Main check loop with Bland's rule (smallest indices) for termination.
   An aborted loop ([stop] raised {!Timeout} mid-search) leaves a valid
   equivalent tableau behind — pivoting only rewrites the equality
   system — so the state can be re-checked later without repair. *)
let check_core ?stop st =
  let pivots = ref 0 in
  let see_stop () =
    match stop with
    | None -> ()
    | Some f ->
      if !pivots mod stop_interval = 0 && f () then raise Timeout;
      incr pivots
  in
  let rec loop () =
    see_stop ();
    let violating = ref None in
    for x = st.nvars - 1 downto 0 do
      if st.basic.(x) && (below_lower st x || above_upper st x) then violating := Some x
    done;
    match !violating with
    | None -> `Ok
    | Some xi ->
      let row = Hashtbl.find st.rows xi in
      if below_lower st xi then begin
        (* Increase xi. *)
        let xj = ref None in
        IntMap.iter
          (fun k a ->
            if !xj = None then
              let ok =
                if Q.sign a > 0 then
                  match st.upper.(k) with
                  | None -> true
                  | Some u -> Delta.compare st.beta.(k) u < 0
                else
                  match st.lower.(k) with
                  | None -> true
                  | Some l -> Delta.compare st.beta.(k) l > 0
              in
              if ok then xj := Some k)
          row;
        match !xj with
        | None -> `Conflict (xi, `Below)
        | Some xj ->
          pivot_and_update st xi xj (Option.get st.lower.(xi));
          loop ()
      end
      else begin
        (* Decrease xi. *)
        let xj = ref None in
        IntMap.iter
          (fun k a ->
            if !xj = None then
              let ok =
                if Q.sign a < 0 then
                  match st.upper.(k) with
                  | None -> true
                  | Some u -> Delta.compare st.beta.(k) u < 0
                else
                  match st.lower.(k) with
                  | None -> true
                  | Some l -> Delta.compare st.beta.(k) l > 0
              in
              if ok then xj := Some k)
          row;
        match !xj with
        | None -> `Conflict (xi, `Above)
        | Some xj ->
          pivot_and_update st xi xj (Option.get st.upper.(xi));
          loop ()
      end
  in
  loop ()

let check ?stop st =
  match check_core ?stop st with `Ok -> () | `Conflict _ -> raise Conflict

(* ------------------------------------------------------------------ *)
(* Problem setup: dense renumbering, slack variables, bounds.           *)

let solve_internal ?stop atoms =
  (* Constant atoms are decided immediately. *)
  let atoms =
    List.filter_map
      (fun a ->
        match Atom.trivial a with
        | Some true -> None
        | Some false -> raise Conflict
        | None -> Some a)
      atoms
  in
  let original_vars =
    List.concat_map Atom.vars atoms |> List.sort_uniq compare
  in
  let dense = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace dense v i) original_vars;
  let norig = List.length original_vars in
  (* One slack variable per distinct linear part. *)
  let slack_of = Hashtbl.create 16 in
  let slack_rows = ref [] in
  let nslack = ref 0 in
  let constraints =
    List.map
      (fun (a : Atom.t) ->
        let linear =
          Linexpr.terms a.expr
          |> List.map (fun (c, v) -> (c, Hashtbl.find dense v))
        in
        let bound = Q.neg (Linexpr.constant a.expr) in
        match linear with
        | [ (c, v) ] ->
          (* Single-variable atom: bound the variable directly — no slack
             row needed.  A negative coefficient flips the bound side. *)
          (`Direct (v, Q.sign c > 0), a.rel, Q.div bound c)
        | _ ->
          let key = linear in
          let slack =
            match Hashtbl.find_opt slack_of key with
            | Some s -> s
            | None ->
              let s = norig + !nslack in
              incr nslack;
              Hashtbl.replace slack_of key s;
              slack_rows := (s, linear) :: !slack_rows;
              s
          in
          (`Slack slack, a.rel, bound))
      (List.filter (fun (a : Atom.t) -> not (Linexpr.is_const a.expr)) atoms)
  in
  let nvars = norig + !nslack in
  let st =
    {
      nvars;
      rows = Hashtbl.create 16;
      beta = Array.make nvars Delta.zero;
      lower = Array.make nvars None;
      upper = Array.make nvars None;
      basic = Array.make nvars false;
    }
  in
  List.iter
    (fun (s, linear) ->
      let row =
        List.fold_left (fun acc (c, v) -> IntMap.add v c acc) IntMap.empty linear
      in
      Hashtbl.replace st.rows s row;
      st.basic.(s) <- true)
    !slack_rows;
  List.iter
    (fun (target, rel, bound) ->
      let v, upper_side =
        match target with `Slack s -> (s, true) | `Direct (v, pos) -> (v, pos)
      in
      match ((rel : Atom.rel), upper_side) with
      | Le, true -> assert_upper st v (Delta.of_rational bound)
      | Lt, true -> assert_upper st v (Delta.make bound Q.minus_one)
      | Le, false -> assert_lower st v (Delta.of_rational bound)
      | Lt, false -> assert_lower st v (Delta.make bound Q.one)
      | Eq, _ ->
        assert_upper st v (Delta.of_rational bound);
        assert_lower st v (Delta.of_rational bound))
    constraints;
  check ?stop st;
  (original_vars, st)

let solve_delta ?stop atoms =
  match solve_internal ?stop atoms with
  | exception Conflict -> None
  | original_vars, st ->
    Some
      (List.map
         (fun v ->
           let rec dense_of i = function
             | [] -> assert false
             | w :: _ when w = v -> i
             | _ :: rest -> dense_of (i + 1) rest
           in
           (v, st.beta.(dense_of 0 original_vars)))
         original_vars)

(* ------------------------------------------------------------------ *)
(* Incremental assertion-stack interface.

   The tableau (the [rows] equality system) is permanent: pivoting only
   rewrites it into an equivalent system, and a slack variable's defining
   row constrains nothing once the slack's bounds are retracted — so
   [pop] never touches rows, it only unwinds bound changes from the
   frame's trail.  Variables and slack rows allocated inside a popped
   frame stay behind, unbounded and therefore vacuous, ready to be
   reused when a sibling branch asserts the same linear form (the
   prefix-sharing the incremental checker lives on).

   Within a frame, bounds only ever tighten, so popping (loosening)
   keeps every nonbasic variable inside its restored bounds; basic
   variables may drift out, which the next [check] repairs — exactly the
   Dutertre–de Moura backtracking discipline. *)

module Session = struct
  (* Provenance of a live bound: the caller's tag for the asserting atom
     and the multiplier [m] such that input_expr = m * bound_expr, where
     bound_expr is [x - c <= 0] for an upper bound and [c - x <= 0] for a
     lower bound.  [None] means the bound was asserted untagged, so any
     conflict touching it has no explanation. *)
  type src = (int * Q.t) option

  type frame = {
    mutable trail : (int * [ `Lower | `Upper ] * Delta.t option * src) list;
    saved_infeasible : bool;
    saved_conflict : (int * Q.t) list option;
  }

  type session = {
    mutable n : int;  (** dense variables allocated (externals + slacks) *)
    mutable beta : Delta.t array;
    mutable lower : Delta.t option array;
    mutable upper : Delta.t option array;
    mutable lo_src : src array;
    mutable hi_src : src array;
    mutable basic : bool array;
    rows : (int, Q.t IntMap.t) Hashtbl.t;
    dense : (int, int) Hashtbl.t;  (** external variable -> dense id *)
    mutable ext : int list;  (** external variables, reverse arrival order *)
    slack_of : ((Q.t * int) list, int) Hashtbl.t;
    mutable frames : frame list;
    mutable infeasible : bool;
    mutable conflict : (int * Q.t) list option;
        (** meaningful only while [infeasible] *)
  }

  type t = session

  let create () =
    {
      n = 0;
      beta = Array.make 64 Delta.zero;
      lower = Array.make 64 None;
      upper = Array.make 64 None;
      lo_src = Array.make 64 None;
      hi_src = Array.make 64 None;
      basic = Array.make 64 false;
      rows = Hashtbl.create 64;
      dense = Hashtbl.create 64;
      ext = [];
      slack_of = Hashtbl.create 64;
      frames = [];
      infeasible = false;
      conflict = None;
    }

  let view s =
    { nvars = s.n; rows = s.rows; beta = s.beta; lower = s.lower; upper = s.upper;
      basic = s.basic }

  let grow s =
    let cap = Array.length s.beta in
    if s.n >= cap then begin
      let cap' = 2 * cap in
      let extend mk a = Array.init cap' (fun i -> if i < cap then a.(i) else mk) in
      s.beta <- extend Delta.zero s.beta;
      s.lower <- extend None s.lower;
      s.upper <- extend None s.upper;
      s.lo_src <- extend None s.lo_src;
      s.hi_src <- extend None s.hi_src;
      s.basic <- extend false s.basic
    end

  let alloc s =
    grow s;
    let v = s.n in
    s.n <- s.n + 1;
    s.beta.(v) <- Delta.zero;
    s.lower.(v) <- None;
    s.upper.(v) <- None;
    s.lo_src.(v) <- None;
    s.hi_src.(v) <- None;
    s.basic.(v) <- false;
    v

  let dense_of s x =
    match Hashtbl.find_opt s.dense x with
    | Some v -> v
    | None ->
      let v = alloc s in
      Hashtbl.replace s.dense x v;
      s.ext <- x :: s.ext;
      v

  let push s =
    s.frames <-
      { trail = []; saved_infeasible = s.infeasible; saved_conflict = s.conflict }
      :: s.frames

  let pop s =
    match s.frames with
    | [] -> invalid_arg "Simplex.Session.pop: empty assertion stack"
    | frame :: rest ->
      List.iter
        (fun (x, side, prev, prev_src) ->
          match side with
          | `Lower ->
            s.lower.(x) <- prev;
            s.lo_src.(x) <- prev_src
          | `Upper ->
            s.upper.(x) <- prev;
            s.hi_src.(x) <- prev_src)
        frame.trail;
      s.infeasible <- frame.saved_infeasible;
      s.conflict <- frame.saved_conflict;
      s.frames <- rest

  let record s x side prev prev_src =
    match s.frames with
    | [] -> ()  (* base level: permanent *)
    | frame :: _ -> frame.trail <- (x, side, prev, prev_src) :: frame.trail

  (* Combine bound-level contributions [(src, mu)] with mu > 0 into a
     Farkas explanation over input tags: lambda(tag) += mu / m.  Any
     untagged bound poisons the whole explanation. *)
  let combine contribs =
    let rec go acc = function
      | [] ->
        Some
          (IntMap.bindings acc
          |> List.filter (fun (_, l) -> not (Q.is_zero l)))
      | (None, _) :: _ -> None
      | (Some (tag, m), mu) :: rest ->
        let lam = Q.div mu m in
        let acc =
          IntMap.update tag
            (function None -> Some lam | Some l -> Some (Q.add l lam))
            acc
        in
        go acc rest
    in
    go IntMap.empty contribs

  let set_conflict s expl =
    s.infeasible <- true;
    s.conflict <- expl

  let session_assert_upper s x c src =
    let tighter =
      match s.upper.(x) with None -> true | Some u -> Delta.compare c u < 0
    in
    if tighter then begin
      match s.lower.(x) with
      | Some l when Delta.compare c l < 0 ->
        set_conflict s (combine [ (src, Q.one); (s.lo_src.(x), Q.one) ])
      | _ ->
        record s x `Upper s.upper.(x) s.hi_src.(x);
        s.upper.(x) <- Some c;
        s.hi_src.(x) <- src;
        if (not s.basic.(x)) && Delta.compare s.beta.(x) c > 0 then update (view s) x c
    end

  let session_assert_lower s x c src =
    let tighter =
      match s.lower.(x) with None -> true | Some l -> Delta.compare c l > 0
    in
    if tighter then begin
      match s.upper.(x) with
      | Some u when Delta.compare c u > 0 ->
        set_conflict s (combine [ (src, Q.one); (s.hi_src.(x), Q.one) ])
      | _ ->
        record s x `Lower s.lower.(x) s.lo_src.(x);
        s.lower.(x) <- Some c;
        s.lo_src.(x) <- src;
        if (not s.basic.(x)) && Delta.compare s.beta.(x) c < 0 then update (view s) x c
    end

  (* Farkas explanation of a simplex conflict: basic [xi] stuck outside
     its bound with no usable pivot column means every row variable sits
     at its blocking bound.  Combining the violated bound of [xi]
     (coefficient 1) with each row variable's blocking bound (coefficient
     |a_k|) cancels all variables and leaves a positive constant. *)
  let explain_conflict s xi dir =
    let row = Hashtbl.find s.rows xi in
    let own =
      match dir with
      | `Below -> (s.lo_src.(xi), Q.one)
      | `Above -> (s.hi_src.(xi), Q.one)
    in
    let contribs =
      IntMap.fold
        (fun k a acc ->
          let entry =
            match dir with
            | `Below ->
              if Q.sign a > 0 then (s.hi_src.(k), a) else (s.lo_src.(k), Q.neg a)
            | `Above ->
              if Q.sign a > 0 then (s.lo_src.(k), a) else (s.hi_src.(k), Q.neg a)
          in
          entry :: acc)
        row [ own ]
    in
    combine contribs

  (* A new slack row must be expressed over nonbasic variables (the
     tableau invariant), so substitute the current definition of any
     basic variable it mentions, and give the slack the beta value the
     row dictates. *)
  let install_slack s linear =
    let slack = alloc s in
    let row =
      List.fold_left
        (fun acc (c, v) ->
          let contrib =
            if s.basic.(v) then IntMap.map (Q.mul c) (Hashtbl.find s.rows v)
            else IntMap.singleton v c
          in
          IntMap.union
            (fun _ c1 c2 ->
              let c' = Q.add c1 c2 in
              if Q.is_zero c' then None else Some c')
            acc contrib)
        IntMap.empty linear
    in
    s.beta.(slack) <-
      IntMap.fold
        (fun v c acc -> Delta.add acc (Delta.scale c s.beta.(v)))
        row Delta.zero;
    Hashtbl.replace s.rows slack row;
    s.basic.(slack) <- true;
    Hashtbl.replace s.slack_of linear slack;
    slack

  let assert_atom ?tag s (a : Atom.t) =
    if not s.infeasible then begin
      match Atom.trivial a with
      | Some true -> ()
      | Some false ->
        (* Constant falsehood: the atom is its own (one-premise)
           explanation. *)
        set_conflict s (Option.map (fun t -> [ (t, Q.one) ]) tag)
      | None ->
        let linear =
          Linexpr.terms a.expr |> List.map (fun (c, v) -> (c, dense_of s v))
        in
        let bound = Q.neg (Linexpr.constant a.expr) in
        let target, upper_side, bound, mult_u, mult_l =
          match linear with
          | [ (c, v) ] -> (v, Q.sign c > 0, Q.div bound c, c, Q.neg c)
          | _ ->
            let slack =
              match Hashtbl.find_opt s.slack_of linear with
              | Some slack -> slack
              | None -> install_slack s linear
            in
            (slack, true, bound, Q.one, Q.minus_one)
        in
        let src m = Option.map (fun t -> (t, m)) tag in
        match (a.rel, upper_side) with
        | Atom.Le, true ->
          session_assert_upper s target (Delta.of_rational bound) (src mult_u)
        | Atom.Lt, true ->
          session_assert_upper s target (Delta.make bound Q.minus_one) (src mult_u)
        | Atom.Le, false ->
          session_assert_lower s target (Delta.of_rational bound) (src mult_l)
        | Atom.Lt, false ->
          session_assert_lower s target (Delta.make bound Q.one) (src mult_l)
        | Atom.Eq, _ ->
          session_assert_upper s target (Delta.of_rational bound) (src mult_u);
          if not s.infeasible then
            session_assert_lower s target (Delta.of_rational bound) (src mult_l)
    end

  let is_infeasible s = s.infeasible

  let infeasible_expl s = if s.infeasible then s.conflict else None

  let check ?stop s =
    if s.infeasible then `Unsat s.conflict
    else
      match check_core ?stop (view s) with
      | `Ok -> `Sat
      | `Conflict (xi, dir) ->
        let expl = explain_conflict s xi dir in
        set_conflict s expl;
        `Unsat expl

  let value s x =
    match Hashtbl.find_opt s.dense x with
    | Some v -> s.beta.(v)
    | None -> Delta.zero

  let vars s = List.sort compare s.ext

  let push_level = push

  let pop_levels s n =
    if n < 0 then invalid_arg "Simplex.Session.pop_levels: negative count";
    for _ = 1 to n do
      pop s
    done

  let level s = List.length s.frames
end

let solve ?stop atoms =
  match solve_delta ?stop atoms with
  | None -> Unsat
  | Some deltas ->
    (* Concretize delta: start at 1 and halve until every atom holds. *)
    let rec concretize d tries =
      if tries = 0 then Unknown
      else begin
        let assign v =
          match List.assoc_opt v deltas with
          | Some { Delta.r; d = k } -> Q.add r (Q.mul k d)
          | None -> Q.zero
        in
        if List.for_all (Atom.holds assign) atoms then
          Sat (List.map (fun (v, _) -> (v, assign v)) deltas)
        else concretize (Q.div d (Q.of_int 2)) (tries - 1)
      end
    in
    concretize Q.one 4096
