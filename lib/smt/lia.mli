(** Decision procedure for conjunctions of linear integer arithmetic
    atoms (QF_LIA): simplex relaxation plus branch-and-bound.

    Every variable is interpreted over the integers.  Strict inequalities
    are first normalized away ([e < 0] with integral coefficients becomes
    [e + 1 <= 0]), so the relaxation never needs infinitesimals. *)

module B := Numbers.Bigint

type result =
  | Sat of (int * B.t) list  (** integral model for every input variable *)
  | Unsat
  | Unknown  (** branch-and-bound budget exhausted *)

(** [solve ?steps ?max_steps atoms] decides the conjunction of [atoms]
    over the integers.  [max_steps] bounds the number of simplex calls
    (default 20000); when [steps] is given, the number of simplex calls
    actually performed is added to it (a cheap effort counter for
    utilisation reporting). *)
val solve : ?steps:int ref -> ?max_steps:int -> Atom.t list -> result

(** [check_model atoms model] re-evaluates all atoms under an integral
    model; used for internal sanity checking and by tests. *)
val check_model : Atom.t list -> (int * B.t) list -> bool
