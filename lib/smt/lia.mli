(** Decision procedure for conjunctions of linear integer arithmetic
    atoms (QF_LIA): simplex relaxation plus branch-and-bound.

    Every variable is interpreted over the integers.  Strict inequalities
    are first normalized away ([e < 0] with integral coefficients becomes
    [e + 1 <= 0]), so the relaxation never needs infinitesimals. *)

module B := Numbers.Bigint

type result =
  | Sat of (int * B.t) list  (** integral model for every input variable *)
  | Unsat
  | Unknown  (** branch-and-bound budget exhausted *)
  | Timeout
      (** the caller's [stop] predicate fired mid-search (deadline
          passed) — distinct from {!Unknown} so a wall-clock trip is
          never mistaken for a fuel trip.  Never returned when [stop]
          is omitted. *)

(** [solve ?steps ?max_steps ?stop atoms] decides the conjunction of
    [atoms] over the integers.  [max_steps] bounds the number of simplex
    calls (default 20000); when [steps] is given, the number of simplex
    calls actually performed is added to it (a cheap effort counter for
    utilisation reporting).  [stop] is polled at every branch-and-bound
    node and every {!Simplex.stop_interval} pivots inside the
    relaxation; when it returns true the search stops with {!Timeout},
    so overshoot past a deadline is bounded by one pivot quantum. *)
val solve : ?steps:int ref -> ?max_steps:int -> ?stop:(unit -> bool) -> Atom.t list -> result

(** [check_model atoms model] re-evaluates all atoms under an integral
    model; used for internal sanity checking and by tests. *)
val check_model : Atom.t list -> (int * B.t) list -> bool

(** {1 Incremental assertion stack}

    A session keeps a warm {!Simplex.Session} tableau across pops, so a
    DFS that pushes constraint deltas on the way down and pops on the
    way back (the incremental schema checker) never rebuilds the shared
    prefix.  Atoms are normalized and GCD-tightened when asserted —
    divisibility conflicts and trivially false atoms make the frame
    infeasible at zero solver cost — and deduplicated up to
    {!Atom.canonical}.

    Assertion also feeds a sound interval-propagation layer: integer
    bounds are derived per variable from the asserted conjunction
    (bounded fixpoint, trail-restored on pop), and an empty interval
    marks the frame infeasible without any simplex work.  This is what
    lets {!check_quick} refute unreachable enumeration prefixes for
    free. *)

type session

val create : unit -> session

(** [push s] opens an assertion frame; [pop s] retracts the atoms
    asserted since the matching push.  Atoms asserted before any push
    are permanent.
    @raise Invalid_argument when popping an empty stack. *)
val push : session -> unit

val pop : session -> unit

(** Current assertion-stack depth: the number of open frames. *)
val depth : session -> int

val assert_atoms : session -> Atom.t list -> unit

(** [check ?steps ?hits ?max_steps ?stop s] decides the asserted
    conjunction over the integers.  The last satisfying model is cached:
    when it still satisfies the atoms asserted since — the common case
    along an enumeration DFS — the check is answered without touching
    the simplex, and [hits] (when given) is incremented.  Otherwise runs
    branch-and-bound over the warm tableau; [steps] counts simplex
    checks exactly like {!solve} counts simplex calls.  [stop] behaves
    as in {!solve}; a {!Timeout} leaves the session stack balanced and
    the tableau valid, so the same session can be checked again (e.g.
    with a later deadline). *)
val check :
  ?steps:int ref -> ?hits:int ref -> ?max_steps:int -> ?stop:(unit -> bool) ->
  session -> result

(** [check_quick ?hits s] answers from the incremental prefix state
    alone — the propagated interval store and the cached model — and
    never invokes the simplex, so it costs zero solver steps by
    construction.  [Unsat] and [Sat _] are definitive (and bump [hits]);
    [Unknown] only means the cheap layers cannot decide, and the caller
    should descend or fall back to {!check}. *)
val check_quick : ?hits:int ref -> session -> result

(** {1 Unsat cores}

    When a session is infeasible, an unsat core over the asserted atoms
    may be available: a set of log indices (assert-order positions of
    live atoms) whose conjunction is already unsatisfiable.  [None]
    means provenance was lost (an untracked participant, or a core that
    outgrew the internal cap) — never that the session is feasible. *)

(** The current unsat core, if the session is infeasible and provenance
    survived. *)
val unsat_core : session -> int list option

(** [unsat_depth s] maps {!unsat_core} to the deepest assertion-stack
    frame it touches: when it returns [Some f] with [f] smaller than the
    current depth, the conjunction was already infeasible at depth [f],
    so every extension of that prefix — in particular every sibling of
    the frames above [f] — is unsatisfiable too.  This is what the
    checker's core-guided subtree pruning keys on. *)
val unsat_depth : session -> int option

(** {1 Certifying engine}

    [solve_cert] decides a conjunction like {!solve}, but every [Unsat]
    answer carries a {!Certificate.t} that the standalone {!Certcheck}
    replays with exact arithmetic.  It runs on a fresh tagged session
    (no equality elimination, no interval propagation), so its step
    count is comparable to, not shared with, the plain engines. *)

type cert_result =
  | Cert_sat of (int * B.t) list
  | Cert_unsat of Certificate.t
  | Cert_unknown
  | Cert_timeout

val solve_cert :
  ?steps:int ref ->
  ?max_steps:int ->
  ?stop:(unit -> bool) ->
  Atom.t list ->
  cert_result
