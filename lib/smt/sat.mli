(** A small CDCL SAT solver over clause lists: two watched literals,
    first-UIP clause learning with backjumping, and activity-driven
    branching (no restarts — determinism over raw speed).

    Literals are non-zero integers; [-v] is the negation of variable [v]
    (DIMACS convention).  Intended for the modest boolean abstractions
    produced by {!Solver}. *)

type literal = int
type clause = literal list

type result =
  | Sat of (int -> bool)  (** total assignment (unconstrained vars: false) *)
  | Unsat

(** [solve clauses] decides satisfiability of the conjunction of
    [clauses].  The empty clause is unsatisfiable; an empty clause list
    is satisfiable. *)
val solve : clause list -> result

(** [solve_all ?limit clauses] enumerates up to [limit] (default
    unlimited) satisfying assignments, as lists of true variables.
    Runs on a plain recursive DPLL — enumeration needs every model, not
    a fast first one. *)
val solve_all : ?limit:int -> clause list -> int list list

(** Incremental clause store for the CDCL(T) loop: theory lemmas
    accumulate across calls, and short boolean conflict clauses learned
    in one [solve] are carried into the next (they are consequences of
    the store, so re-adding them is sound). *)
module Inc : sig
  type t

  val create : unit -> t
  val add_clause : t -> clause -> unit
  val solve : t -> result
end
