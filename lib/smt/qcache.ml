module B = Numbers.Bigint
module J = Jsonc

(* Canonical fingerprint: canonicalize every atom (integer coefficients,
   GCD divided out, canonical equality sign — Atom.canonical), sort by
   the canonical total order and deduplicate, then digest the printed
   forms.  Atom.to_string over canonical atoms is deterministic (default
   "x<i>" names, coefficients in ascending variable order), so the key
   is a pure function of the canonical atom multiset. *)
let fingerprint atoms =
  let catoms =
    List.sort_uniq Atom.compare_canonical (List.map Atom.canonical atoms)
  in
  let key =
    Digest.to_hex (Digest.string (String.concat "\n" (List.map Atom.to_string catoms)))
  in
  (key, catoms)

type verdict =
  | Sat_model of { atoms : Atom.t list; model : (int * B.t) list }
  | Unsat_cert of Certificate.t option

type entry = { catoms : Atom.t list; verdict : verdict; origin : string }

(* ------------------------------------------------------------------- *)
(* Sharded shared table.  One mutex per shard keeps cross-domain
   contention low; entries are immutable once inserted, so a reader
   holding a returned entry never races a writer. *)

let shards = 16

type shard = { mutex : Mutex.t; tbl : (string, entry) Hashtbl.t }

type t = shard array

let create () =
  Array.init shards (fun _ -> { mutex = Mutex.create (); tbl = Hashtbl.create 64 })

let shard_of (t : t) key = t.(Hashtbl.hash key land (shards - 1))

let with_shard s f =
  Mutex.lock s.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) (fun () -> f s.tbl)

let length t =
  Array.fold_left (fun acc s -> acc + with_shard s Hashtbl.length) 0 t

let find t key = with_shard (shard_of t key) (fun tbl -> Hashtbl.find_opt tbl key)

let add t key entry =
  with_shard (shard_of t key) (fun tbl ->
      if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key entry)

let fold f t init =
  Array.fold_left
    (fun acc s -> with_shard s (fun tbl -> Hashtbl.fold f tbl acc))
    init t

(* ------------------------------------------------------------------- *)
(* Per-domain handle: a local memo of everything this domain has read or
   written, plus a write buffer flushed to the shared table every
   [flush_every] insertions.  Local reads take no lock at all. *)

module Local = struct
  let flush_every = 32

  type handle = {
    shared : t;
    local : (string, entry) Hashtbl.t;
    mutable buffer : (string * entry) list;
    mutable buffered : int;
  }

  let create shared =
    { shared; local = Hashtbl.create 256; buffer = []; buffered = 0 }

  let flush h =
    List.iter (fun (k, e) -> add h.shared k e) (List.rev h.buffer);
    h.buffer <- [];
    h.buffered <- 0

  let find h key =
    match Hashtbl.find_opt h.local key with
    | Some _ as r -> r
    | None -> (
      match find h.shared key with
      | Some e as r ->
        Hashtbl.replace h.local key e;
        r
      | None -> None)

  let add h key entry =
    if not (Hashtbl.mem h.local key) then begin
      Hashtbl.replace h.local key entry;
      h.buffer <- (key, entry) :: h.buffer;
      h.buffered <- h.buffered + 1;
      if h.buffered >= flush_every then flush h
    end
end

(* ------------------------------------------------------------------- *)
(* Validation: every persisted entry must be self-evidencing, so a
   tampered or stale cache degrades to misses, never to wrong verdicts.
   The checks deliberately recompute the fingerprint instead of trusting
   the recorded key. *)

(* Entries store canonical atom lists, so the cheap comparator applies. *)
let atoms_equal = List.equal Atom.equal_canonical

let validate key entry =
  let k', catoms' = fingerprint entry.catoms in
  if not (String.equal k' key) then Error "fingerprint mismatch"
  else if not (atoms_equal catoms' entry.catoms) then
    Error "atom list is not in canonical sorted form"
  else
    match entry.verdict with
    | Unsat_cert None -> Error "UNSAT entry carries no certificate"
    | Unsat_cert (Some cert) -> (
      match Certcheck.validate entry.catoms cert with
      | Ok () -> Ok ()
      | Error msg -> Error ("certificate rejected: " ^ msg))
    | Sat_model { atoms; model } ->
      let k'', _ = fingerprint atoms in
      if not (String.equal k'' key) then
        Error "SAT entry's literal atoms do not match the key"
      else if not (Lia.check_model atoms model) then
        Error "model does not satisfy the atoms"
      else Ok ()

let certify ?(max_steps = 50_000) entry =
  match entry.verdict with
  | Sat_model _ | Unsat_cert (Some _) -> Some entry
  | Unsat_cert None -> (
    match Lia.solve_cert ~max_steps entry.catoms with
    | Lia.Cert_unsat cert -> (
      (* Pre-validate like the invariant engine does: a certificate the
         standalone checker rejects is dropped here, not at load time. *)
      match Certcheck.validate entry.catoms cert with
      | Ok () -> Some { entry with verdict = Unsat_cert (Some cert) }
      | Error _ -> None)
    | Lia.Cert_sat _ | Lia.Cert_unknown | Lia.Cert_timeout -> None)

(* ------------------------------------------------------------------- *)
(* Canonical-JSON codec.  Atoms and certificates reuse the Certificate
   codec; bigints are decimal strings, so the encoding is exact. *)

let model_to_json model =
  J.List
    (List.map (fun (x, v) -> J.List [ J.Int x; J.Str (B.to_string v) ]) model)

let model_of_json j =
  List.map
    (fun pair ->
      match J.to_list pair with
      | [ x; v ] -> (J.to_int x, B.of_string (J.to_str v))
      | _ -> raise (J.Parse_error "malformed model binding"))
    (J.to_list j)

let entry_to_json key entry =
  let base =
    [
      ("key", J.Str key);
      ("origin", J.Str entry.origin);
      ("atoms", J.List (List.map Certificate.atom_to_json entry.catoms));
    ]
  in
  match entry.verdict with
  | Unsat_cert cert ->
    J.Obj
      (base
      @ [
          ("verdict", J.Str "unsat");
          ("cert", match cert with Some c -> Certificate.to_json c | None -> J.Null);
        ])
  | Sat_model { atoms; model } ->
    J.Obj
      (base
      @ [
          ("verdict", J.Str "sat");
          ("qatoms", J.List (List.map Certificate.atom_to_json atoms));
          ("model", model_to_json model);
        ])

let entry_of_json j =
  let key = J.to_str (J.member "key" j) in
  let origin = J.to_str (J.member "origin" j) in
  let catoms = List.map Certificate.atom_of_json (J.to_list (J.member "atoms" j)) in
  let verdict =
    match J.to_str (J.member "verdict" j) with
    | "unsat" ->
      Unsat_cert
        (match J.member "cert" j with
         | J.Null -> None
         | cert -> Some (Certificate.of_json cert))
    | "sat" ->
      Sat_model
        {
          atoms = List.map Certificate.atom_of_json (J.to_list (J.member "qatoms" j));
          model = model_of_json (J.member "model" j);
        }
    | v -> raise (J.Parse_error ("unknown cache verdict " ^ v))
  in
  (key, { catoms; verdict; origin })
