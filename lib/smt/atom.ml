module Q = Numbers.Rational
module B = Numbers.Bigint

type rel = Le | Lt | Eq

type t = { expr : Linexpr.t; rel : rel }

let le a b = { expr = Linexpr.sub a b; rel = Le }
let lt a b = { expr = Linexpr.sub a b; rel = Lt }
let ge a b = le b a
let gt a b = lt b a
let eq a b = { expr = Linexpr.sub a b; rel = Eq }

let negate a =
  match a.rel with
  | Le -> { expr = Linexpr.neg a.expr; rel = Lt } (* not (e <= 0)  <=>  -e < 0 *)
  | Lt -> { expr = Linexpr.neg a.expr; rel = Le }
  | Eq -> invalid_arg "Atom.negate: cannot negate an equality into one atom"

let holds assign a =
  let v = Linexpr.eval assign a.expr in
  match a.rel with
  | Le -> Q.sign v <= 0
  | Lt -> Q.sign v < 0
  | Eq -> Q.is_zero v

let holds_delta assign a =
  let v = Linexpr.eval_delta assign a.expr in
  match a.rel with
  | Le -> Delta.compare v Delta.zero <= 0
  | Lt -> Delta.compare v Delta.zero < 0
  | Eq -> Delta.equal v Delta.zero

let trivial a =
  if Linexpr.is_const a.expr then begin
    let v = Linexpr.constant a.expr in
    Some
      (match a.rel with
       | Le -> Q.sign v <= 0
       | Lt -> Q.sign v < 0
       | Eq -> Q.is_zero v)
  end
  else None

let vars a = Linexpr.vars a.expr

(* Canonical form for comparison and hashing: scale to integer
   coefficients (a positive factor, so the relation is unchanged), then
   divide out the GCD of all coefficients and the constant — [2x+2 <= 0]
   and [x+1 <= 0] are the same constraint over the rationals and must
   compare equal.  Equalities additionally get a canonical sign (the
   lowest-variable coefficient positive), since [e = 0] and [-e = 0]
   coincide. *)
let canonical a =
  let expr = Linexpr.scale_to_integers a.expr in
  let g =
    List.fold_left
      (fun acc (c, _) -> B.gcd acc (Q.to_bigint c))
      (B.abs (Q.to_bigint (Linexpr.constant expr)))
      (Linexpr.terms expr)
  in
  let expr =
    if B.is_zero g || B.equal g B.one then expr
    else Linexpr.scale (Q.make B.one g) expr
  in
  let expr =
    if a.rel <> Eq then expr
    else begin
      let leading =
        match Linexpr.terms expr with
        | (c, _) :: _ -> Q.sign c
        | [] -> Q.sign (Linexpr.constant expr)
      in
      if leading < 0 then Linexpr.neg expr else expr
    end
  in
  { a with expr }

let compare a b =
  if a == b then 0
  else begin
    let c = Stdlib.compare a.rel b.rel in
    if c <> 0 then c
    else Linexpr.compare (canonical a).expr (canonical b).expr
  end

let equal a b = a == b || compare a b = 0

let compare_canonical a b =
  if a == b then 0
  else begin
    let c = Stdlib.compare a.rel b.rel in
    if c <> 0 then c else Linexpr.compare a.expr b.expr
  end

let equal_canonical a b = a == b || compare_canonical a b = 0

let hash a =
  let tag = match a.rel with Le -> 0 | Lt -> 1 | Eq -> 2 in
  (Linexpr.hash (canonical a).expr * 3) + tag land max_int

let to_string ?names a =
  let rel = match a.rel with Le -> "<=" | Lt -> "<" | Eq -> "=" in
  Printf.sprintf "%s %s 0" (Linexpr.to_string ?names a.expr) rel

let pp ?names fmt a = Format.pp_print_string fmt (to_string ?names a)
