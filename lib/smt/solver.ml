module B = Numbers.Bigint

type result = Sat of (int * B.t) list | Unsat | Unknown

(* Rewrite equalities into conjunctions of inequalities so that every
   remaining atom has an atomic negation. *)
let rec split_eq (f : Formula.t) : Formula.t =
  match f with
  | True | False -> f
  | Atom a -> (
    match a.rel with
    | Atom.Eq ->
      Formula.conj
        [
          Formula.atom { a with rel = Atom.Le };
          Formula.atom { Atom.expr = Linexpr.neg a.expr; rel = Atom.Le };
        ]
    | Atom.Le | Atom.Lt -> Formula.atom a)
  | Not g -> Formula.not_ (split_eq g)
  | And gs -> Formula.conj (List.map split_eq gs)
  | Or gs -> Formula.disj (List.map split_eq gs)

(* Tseitin-style CNF over a table mapping boolean variables to atoms.
   Returns (clauses, root literal, atom table). *)
let abstract f =
  let atom_ids = Hashtbl.create 16 in
  let atoms_rev = Hashtbl.create 16 in
  let next = ref 0 in
  let fresh () = incr next; !next in
  let atom_var a =
    match Hashtbl.find_opt atom_ids a with
    | Some v -> v
    | None ->
      let v = fresh () in
      Hashtbl.replace atom_ids a v;
      Hashtbl.replace atoms_rev v a;
      v
  in
  let clauses = ref [] in
  let emit c = clauses := c :: !clauses in
  let rec go (f : Formula.t) : int =
    match f with
    | True ->
      let v = fresh () in
      emit [ v ];
      v
    | False ->
      let v = fresh () in
      emit [ -v ];
      v
    | Atom a -> atom_var a
    | Not g ->
      let vg = go g in
      let v = fresh () in
      emit [ -v; -vg ];
      emit [ v; vg ];
      v
    | And gs ->
      let vs = List.map go gs in
      let v = fresh () in
      List.iter (fun vi -> emit [ -v; vi ]) vs;
      emit (v :: List.map (fun vi -> -vi) vs);
      v
    | Or gs ->
      let vs = List.map go gs in
      let v = fresh () in
      List.iter (fun vi -> emit [ v; -vi ]) vs;
      emit (-v :: vs);
      v
  in
  let root = go f in
  (List.rev !clauses, root, atoms_rev)

(* CDCL(T): the boolean core enumerates assignments over the atom
   abstraction, the certifying LIA engine refutes infeasible ones, and
   the certificate's unsat core becomes a theory lemma — a clause over
   just the atoms that actually conflict, so one refutation rules out
   every boolean assignment sharing that kernel (instead of blocking
   one full assignment per iteration). *)
let solve ?max_steps f =
  let f = split_eq f in
  match f with
  | Formula.True -> Sat []
  | Formula.False -> Unsat
  | _ ->
    let clauses, root, atoms_rev = abstract f in
    let inc = Sat.Inc.create () in
    Sat.Inc.add_clause inc [ root ];
    List.iter (Sat.Inc.add_clause inc) clauses;
    let atom_vars =
      Hashtbl.fold (fun v _ acc -> v :: acc) atoms_rev [] |> List.sort compare
    in
    let rec loop budget =
      if budget <= 0 then Unknown
      else
        match Sat.Inc.solve inc with
        | Sat.Unsat -> Unsat
        | Sat.Sat assign -> (
          (* The literal at index i of [lits] asserts the atom at index
             i of [theory]; certificate cores index into [theory]. *)
          let theory, lits =
            List.fold_left
              (fun (atoms, lits) v ->
                let a = Hashtbl.find atoms_rev v in
                if assign v then (a :: atoms, v :: lits)
                else (Atom.negate a :: atoms, -v :: lits))
              ([], []) atom_vars
          in
          let theory = Array.of_list (List.rev theory) in
          let lits = Array.of_list (List.rev lits) in
          match Lia.solve_cert ?max_steps (Array.to_list theory) with
          | Lia.Cert_sat model -> Sat model
          | Lia.Cert_unknown | Lia.Cert_timeout -> Unknown
          | Lia.Cert_unsat cert ->
            let core = Certificate.core cert in
            let lemma = List.map (fun i -> -lits.(i)) core in
            Sat.Inc.add_clause inc lemma;
            loop (budget - 1))
    in
    loop 4096
