(** Linear expressions [sum c_i * x_i + k] over integer-indexed variables
    with rational coefficients.

    Expressions are normalized: no zero coefficients are stored. *)

module Q := Numbers.Rational

type t

val zero : t
val const : Q.t -> t
val of_int : int -> t

(** [var x] is the expression [1 * x]. *)
val var : int -> t

(** [term c x] is [c * x]. *)
val term : Q.t -> int -> t

(** [of_terms terms k] builds [sum c_i*x_i + k]; repeated variables are
    summed. *)
val of_terms : (Q.t * int) list -> Q.t -> t

(** [of_int_terms terms k] is [of_terms] with native-int coefficients. *)
val of_int_terms : (int * int) list -> int -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Q.t -> t -> t
val add_term : Q.t -> int -> t -> t
val add_const : Q.t -> t -> t

(** [coeff x e] is the coefficient of [x] (zero when absent). *)
val coeff : int -> t -> Q.t

val constant : t -> Q.t

(** [terms e] lists the (coefficient, variable) pairs, variables
    ascending. *)
val terms : t -> (Q.t * int) list

val vars : t -> int list
val is_const : t -> bool

(** [eval assign e] evaluates [e]; [assign] must be defined on every
    variable of [e]. *)
val eval : (int -> Q.t) -> t -> Q.t

(** [eval_delta assign e] evaluates over delta-rationals. *)
val eval_delta : (int -> Delta.t) -> t -> Delta.t

(** [scale_to_integers e] multiplies [e] by the least positive rational
    making every coefficient and the constant integral, and returns the
    resulting expression. *)
val scale_to_integers : t -> t

(** [equal] and [compare] take a physical-equality fast path before the
    structural comparison. *)
val equal : t -> t -> bool

val compare : t -> t -> int

(** [hash e] is a structural hash, cached in the expression after the
    first call (so repeated hashing — e.g. in the incremental engine's
    assertion-dedup tables — is O(1)).  Compatible with {!equal}. *)
val hash : t -> int

(** [pp ?names fmt e] prints [e]; [names] renders variable indices
    (default ["x<i>"]). *)
val pp : ?names:(int -> string) -> Format.formatter -> t -> unit

val to_string : ?names:(int -> string) -> t -> string

(** [map_vars f e] renames variables; [f] must be injective on the
    variables of [e]. *)
val map_vars : (int -> int) -> t -> t

(** [subst x by e] replaces variable [x] with expression [by] in [e]. *)
val subst : int -> t -> t -> t
