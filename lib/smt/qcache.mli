(** Cross-property, cross-run discharge cache for QF_LIA conjunctions.

    Every leaf query the checker discharges is a plain conjunction of
    atoms; structurally identical conjunctions recur across the
    properties of one automaton (shared prefixes encode to the same
    constraints), across [--jobs] worker domains, and across runs.  This
    module memoizes their verdicts under a {e canonical fingerprint}:
    atoms are normalized to {!Atom.canonical} form (integer coefficients
    divided by their GCD, canonical equality sign), sorted and
    deduplicated, so the key is invariant under atom construction order
    and under GCD-equivalent linexpr forms — [2x+2 <= 0 /\ y <= 0] and
    [y <= 0 /\ x+1 <= 0] share one entry.

    Soundness is never delegated to the hash: a lookup returns the entry
    only when its recorded canonical atom list is equal (as a list of
    canonical atoms) to the query's, so an MD5 collision degrades to a
    miss, not a wrong verdict.  SAT entries carry the literal query and
    its model so hits can be revalidated by {!Lia.check_model} at zero
    solver cost; UNSAT entries carry an optional {!Certificate.t} (made
    mandatory when persisted) replayable by the standalone
    {!Certcheck}.

    The shared table is sharded, each shard behind its own mutex, and
    worker domains go through {!Local} handles with write buffers so the
    hot path takes no lock on repeated hits. *)

module B := Numbers.Bigint

(** [fingerprint atoms] is the canonical cache key of the conjunction
    plus the canonical, sorted, deduplicated atom list the key digests.
    Two conjunctions get equal keys iff they have equal canonical atom
    sets (up to MD5 collision, which the entry's stored [catoms] guard
    against). *)
val fingerprint : Atom.t list -> string * Atom.t list

type verdict =
  | Sat_model of { atoms : Atom.t list; model : (int * B.t) list }
      (** the literal (pre-canonicalization) query and the model the
          solver produced for it.  The literal atoms are kept so a hit
          can require literal-list equality: the deciding SAT query of a
          warm rerun then reuses the byte-identical model — and with it
          the byte-identical witness — the cold run produced. *)
  | Unsat_cert of Certificate.t option
      (** [None] only for entries born in this process (the producing
          solver run is its own evidence); persisted entries are
          certified first and entries loaded from disk always carry a
          validated certificate. *)

type entry = {
  catoms : Atom.t list;  (** canonical sorted atoms — the key's preimage *)
  verdict : verdict;
  origin : string;  (** property that first discharged the query *)
}

type t

val create : unit -> t

(** Number of entries over all shards. *)
val length : t -> int

val find : t -> string -> entry option

(** First write wins: racing domains inserting the same key keep the
    existing entry (the verdicts agree — both revalidate on hit). *)
val add : t -> string -> entry -> unit

val fold : (string -> entry -> 'a -> 'a) -> t -> 'a -> 'a

(** Per-domain view: reads memoize shared entries locally, writes are
    buffered and flushed to the shared table every few insertions (and
    on {!Local.flush}), so workers do not serialize on the shard
    mutexes per query. *)
module Local : sig
  type handle

  val create : t -> handle
  val find : handle -> string -> entry option
  val add : handle -> string -> entry -> unit
  val flush : handle -> unit
end

(** {1 Validation and certification (persistence support)} *)

(** [validate key entry] checks the entry is self-evidencing: the key is
    the fingerprint of [catoms]; a SAT entry's literal atoms fingerprint
    to the same key and its model satisfies them; an UNSAT entry carries
    a certificate accepted by {!Certcheck.validate} against [catoms].
    Certificate-less UNSAT entries are rejected — callers certify them
    with {!certify} before persisting. *)
val validate : string -> entry -> (unit, string) result

(** [certify ?max_steps entry] ensures an UNSAT entry carries a
    certificate, re-proving [catoms] on the certifying engine when it
    does not ([None] when the budget runs dry or the engine disagrees —
    the caller drops the entry from the persisted set).  SAT and
    already-certified entries are returned unchanged. *)
val certify : ?max_steps:int -> entry -> entry option

(** {1 Canonical-JSON codec}

    Atom and certificate encodings are shared with {!Certificate}, so a
    persisted cache is replayable by the same tooling as [--emit-certs]
    files. *)

val entry_to_json : string -> entry -> Jsonc.t

(** @raise Jsonc.Parse_error on shape mismatch. *)
val entry_of_json : Jsonc.t -> string * entry
