module Q = Numbers.Rational
module B = Numbers.Bigint
module J = Jsonc

type reason = Input of int | Cut of int

type premise = { coeff : Q.t; atom : Atom.t; reason : reason }

type t =
  | Farkas of premise list
  | Div_conflict of { index : int; atom : Atom.t }
  | Branch of { var : int; pivot : B.t; low : t; high : t }
  | Split of { cubes : Atom.t list list; certs : t list }
  | Static of t

let rec size = function
  | Farkas _ | Div_conflict _ -> 1
  | Branch { low; high; _ } -> size low + size high
  | Split { certs; _ } -> List.fold_left (fun acc c -> acc + size c) 0 certs
  | Static c -> size c

let core cert =
  let rec go acc = function
    | Farkas ps ->
      List.fold_left
        (fun acc p -> match p.reason with Input i -> i :: acc | Cut _ -> acc)
        acc ps
    | Div_conflict { index; _ } -> index :: acc
    | Branch { low; high; _ } -> go (go acc low) high
    | Split { certs; _ } -> List.fold_left go acc certs
    | Static c -> go acc c
  in
  List.sort_uniq compare (go [] cert)

let pp_reason fmt = function
  | Input i -> Format.fprintf fmt "input %d" i
  | Cut d -> Format.fprintf fmt "cut %d" d

let pp_atom fmt a = Atom.pp fmt a

let rec pp fmt = function
  | Farkas ps ->
    Format.fprintf fmt "@[<v 2>farkas";
    List.iter
      (fun p ->
        Format.fprintf fmt "@,%s * (%a)  [%a]" (Q.to_string p.coeff) pp_atom p.atom
          pp_reason p.reason)
      ps;
    Format.fprintf fmt "@]"
  | Div_conflict { index; atom } ->
    Format.fprintf fmt "div-conflict input %d: %a" index pp_atom atom
  | Branch { var; pivot; low; high } ->
    Format.fprintf fmt "@[<v 2>branch x%d on %s@,low: %a@,high: %a@]" var
      (B.to_string pivot) pp low pp high
  | Split { cubes; certs } ->
    Format.fprintf fmt "@[<v 2>split (%d cases)" (List.length cubes);
    List.iter (fun c -> Format.fprintf fmt "@,case: %a" pp c) certs;
    Format.fprintf fmt "@]"
  | Static c -> Format.fprintf fmt "@[<v 2>static@,%a@]" pp c

(* ------------------------------------------------------------------ *)
(* JSON codec.  Rationals render as "num/den", big integers as decimal
   strings; both parse back exactly. *)

let q_to_json q = J.Str (B.to_string (Q.num q) ^ "/" ^ B.to_string (Q.den q))

let q_of_json j =
  let s = J.to_str j in
  match String.index_opt s '/' with
  | None -> Q.of_bigint (B.of_string s)
  | Some i ->
    Q.make
      (B.of_string (String.sub s 0 i))
      (B.of_string (String.sub s (i + 1) (String.length s - i - 1)))

let b_to_json b = J.Str (B.to_string b)
let b_of_json j = B.of_string (J.to_str j)

let rel_to_string = function Atom.Le -> "le" | Atom.Lt -> "lt" | Atom.Eq -> "eq"

let rel_of_string = function
  | "le" -> Atom.Le
  | "lt" -> Atom.Lt
  | "eq" -> Atom.Eq
  | s -> raise (J.Parse_error ("unknown relation " ^ s))

let atom_to_json (a : Atom.t) =
  J.Obj
    [
      ("rel", J.Str (rel_to_string a.rel));
      ("terms",
       J.List
         (List.map
            (fun (c, v) -> J.List [ q_to_json c; J.Int v ])
            (Linexpr.terms a.expr)));
      ("k", q_to_json (Linexpr.constant a.expr));
    ]

let atom_of_json j =
  let rel = rel_of_string (J.to_str (J.member "rel" j)) in
  let terms =
    List.map
      (fun t ->
        match J.to_list t with
        | [ c; v ] -> (q_of_json c, J.to_int v)
        | _ -> raise (J.Parse_error "malformed term"))
      (J.to_list (J.member "terms" j))
  in
  { Atom.expr = Linexpr.of_terms terms (q_of_json (J.member "k" j)); rel }

let reason_to_json = function
  | Input i -> J.List [ J.Str "input"; J.Int i ]
  | Cut d -> J.List [ J.Str "cut"; J.Int d ]

let reason_of_json j =
  match J.to_list j with
  | [ J.Str "input"; i ] -> Input (J.to_int i)
  | [ J.Str "cut"; d ] -> Cut (J.to_int d)
  | _ -> raise (J.Parse_error "malformed premise reason")

let rec to_json = function
  | Farkas ps ->
    J.Obj
      [
        ("farkas",
         J.List
           (List.map
              (fun p ->
                J.Obj
                  [
                    ("c", q_to_json p.coeff);
                    ("atom", atom_to_json p.atom);
                    ("reason", reason_to_json p.reason);
                  ])
              ps));
      ]
  | Div_conflict { index; atom } ->
    J.Obj [ ("div", J.Obj [ ("index", J.Int index); ("atom", atom_to_json atom) ]) ]
  | Branch { var; pivot; low; high } ->
    J.Obj
      [
        ("branch",
         J.Obj
           [
             ("var", J.Int var);
             ("pivot", b_to_json pivot);
             ("low", to_json low);
             ("high", to_json high);
           ]);
      ]
  | Split { cubes; certs } ->
    J.Obj
      [
        ("split",
         J.Obj
           [
             ("cubes",
              J.List
                (List.map (fun cube -> J.List (List.map atom_to_json cube)) cubes));
             ("certs", J.List (List.map to_json certs));
           ]);
      ]
  | Static c -> J.Obj [ ("static", to_json c) ]

let rec of_json j =
  match J.member_opt "farkas" j with
  | Some ps ->
    Farkas
      (List.map
         (fun p ->
           {
             coeff = q_of_json (J.member "c" p);
             atom = atom_of_json (J.member "atom" p);
             reason = reason_of_json (J.member "reason" p);
           })
         (J.to_list ps))
  | None -> (
    match J.member_opt "div" j with
    | Some d ->
      Div_conflict
        {
          index = J.to_int (J.member "index" d);
          atom = atom_of_json (J.member "atom" d);
        }
    | None -> (
      match J.member_opt "branch" j with
      | Some b ->
        Branch
          {
            var = J.to_int (J.member "var" b);
            pivot = b_of_json (J.member "pivot" b);
            low = of_json (J.member "low" b);
            high = of_json (J.member "high" b);
          }
      | None -> (
        match J.member_opt "split" j with
        | Some s ->
          Split
            {
              cubes =
                List.map
                  (fun cube -> List.map atom_of_json (J.to_list cube))
                  (J.to_list (J.member "cubes" s));
              certs = List.map of_json (J.to_list (J.member "certs" s));
            }
        | None -> (
          match J.member_opt "static" j with
          | Some c -> Static (of_json c)
          | None -> raise (J.Parse_error "unknown certificate node")))))
