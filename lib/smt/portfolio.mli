(** Racing backend portfolio over the discharge cache.

    Every leaf query first consults the {!Qcache} (a hit is revalidated
    and answered at zero solver steps); a miss is routed to one of three
    backends, ordered by a learned per-query-shape win table:

    - {e interval propagation} — a fresh {!Lia} session's assert-time
      layers ({!Lia.check_quick}); decides only UNSAT, at zero counted
      simplex steps;
    - {e Cooper QE} — {!Presburger.check_sat} over the canonical
      conjunction; only consulted on small queries (bounded variable
      arity and atom count — elimination is superexponential) and only
      decisive on UNSAT;
    - {e CDCL(T)-simplex} — {!Lia.solve}, the reference engine; the only
      backend that produces models, so every [Sat] verdict (and with it
      every witness) is byte-identical to the uncached engine's.

    The shape key is (atom-count bucket, variable-arity bucket, justice
    flag); each shape remembers which backend decided its queries, and
    Cooper is only raced while it is winning (or still unexplored) for
    that shape.

    Soundness: the refuting backends decide only UNSAT — verdicts the
    simplex would also reach — and cache hits are revalidated (models
    re-evaluated, certificates replayed at load time), so outcomes,
    witnesses and schema counts are pinned bit-identical to the uncached
    engine; only solver effort changes.  With [check] enabled, every
    refuter verdict is re-proved on the simplex and a mismatch raises
    {!Disagreement} (the checker's fail-soft quarantine contains it to
    one position). *)

module B := Numbers.Bigint

(** Raised when two backends decide the same query differently — a
    solver bug by construction, never a cache/tampering effect (those
    degrade to misses). *)
exception Disagreement of string

type counters = {
  hits : int;  (** cache hits (zero-step answers) *)
  misses : int;  (** queries routed to a backend *)
  cross : int;  (** of [hits], entries first discharged by a different property *)
  w_interval : int;  (** misses decided by interval propagation *)
  w_cooper : int;  (** misses decided by Cooper QE *)
  w_simplex : int;  (** misses decided by the simplex *)
}

val zero_counters : counters
val add_counters : counters -> counters -> counters
val sub_counters : counters -> counters -> counters

type t

(** [create ?check cache] builds a portfolio over [cache].  [check]
    (default false) re-proves every interval/Cooper refutation on the
    simplex and raises {!Disagreement} on mismatch. *)
val create : ?check:bool -> Qcache.t -> t

val cache : t -> Qcache.t

(** Per-domain handle; [origin] names the property being discharged and
    is recorded in new cache entries (cross-property hits are classified
    against it). *)
type handle

val handle : origin:string -> t -> handle

(** Counters accumulated by this handle since creation. *)
val counters : handle -> counters

(** Flush the handle's buffered cache writes to the shared table. *)
val flush : handle -> unit

(** [solve ?steps ?max_steps ?stop ~justice h atoms] decides the
    conjunction like {!Lia.solve}, through the cache and the portfolio.
    [steps] counts simplex calls only — hits and refuter decisions cost
    zero, which is exactly the effort the cache elides.  [justice] marks
    queries extended with justice-branch cubes (part of the shape
    key). *)
val solve :
  ?steps:int ref ->
  ?max_steps:int ->
  ?stop:(unit -> bool) ->
  justice:bool ->
  handle ->
  Atom.t list ->
  Lia.result
