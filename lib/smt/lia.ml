module B = Numbers.Bigint
module Q = Numbers.Rational

type result = Sat of (int * B.t) list | Unsat | Unknown

exception Budget
exception Infeasible

(* Normalize to integer coefficients and non-strict relations. *)
let normalize (a : Atom.t) : Atom.t =
  let expr = Linexpr.scale_to_integers a.expr in
  match a.rel with
  | Atom.Lt -> { Atom.expr = Linexpr.add_const Q.one expr; rel = Atom.Le }
  | Atom.Le | Atom.Eq -> { a with expr }

(* GCD-based tightening of an integral atom.  For [a . x + k <= 0] with
   g = gcd of the variable coefficients, the atom is equivalent over the
   integers to [a/g . x + ceil(k/g) <= 0]; for equalities, g must divide
   k or the atom is infeasible.
   @raise Infeasible when an equality has a divisibility conflict. *)
let tighten (a : Atom.t) : Atom.t =
  let coeffs = Linexpr.terms a.expr in
  if coeffs = [] then a
  else begin
    let g =
      List.fold_left (fun acc (c, _) -> B.gcd acc (Q.to_bigint c)) B.zero coeffs
    in
    if B.equal g B.one then a
    else begin
      let k = Q.to_bigint (Linexpr.constant a.expr) in
      match a.rel with
      | Atom.Eq ->
        if not (B.is_zero (B.rem k g)) then raise Infeasible;
        { a with expr = Linexpr.scale (Q.make B.one g) a.expr }
      | Atom.Le ->
        let terms = List.map (fun (c, v) -> (Q.make (Q.to_bigint c) g, v)) coeffs in
        { a with expr = Linexpr.of_terms terms (Q.of_bigint (B.cdiv k g)) }
      | Atom.Lt -> assert false
    end
  end

(* Find an equality with a +-1 coefficient on some variable and return
   (x, e) such that the equality is equivalent to [x = e]. *)
let solvable_equality (a : Atom.t) =
  match a.rel with
  | Atom.Le | Atom.Lt -> None
  | Atom.Eq ->
    let rec pick = function
      | [] -> None
      | (c, x) :: rest ->
        if Q.equal (Q.abs c) Q.one then begin
          (* c*x + rest = 0  =>  x = -(rest)/c *)
          let rest_expr = Linexpr.add_term (Q.neg c) x a.expr in
          Some (x, Linexpr.scale (Q.neg (Q.inv c)) rest_expr)
        end
        else pick rest
    in
    pick (Linexpr.terms a.expr)

(* Preprocess a conjunction: tighten, then repeatedly eliminate solvable
   equalities by substitution.  Returns the reduced atoms and the list of
   bindings (in elimination order) for model reconstruction.
   @raise Infeasible on a trivially false atom. *)
let preprocess atoms =
  let simplify atoms =
    List.filter_map
      (fun a ->
        let a = tighten a in
        match Atom.trivial a with
        | Some true -> None
        | Some false -> raise Infeasible
        | None -> Some a)
      atoms
  in
  let rec eliminate atoms bindings =
    let atoms = simplify atoms in
    match List.find_map solvable_equality atoms with
    | None -> (atoms, List.rev bindings)
    | Some (x, e) ->
      let atoms =
        List.map (fun (a : Atom.t) -> { a with expr = Linexpr.subst x e a.expr }) atoms
      in
      eliminate atoms ((x, e) :: bindings)
  in
  eliminate atoms []

let fractional q = not (Q.is_integer q)

let solve ?steps ?(max_steps = 20_000) atoms =
  let budget = ref max_steps in
  let finish result =
    (match steps with Some r -> r := !r + (max_steps - !budget) | None -> ());
    result
  in
  match
    let atoms = List.map normalize atoms in
    let all_vars = List.concat_map Atom.vars atoms |> List.sort_uniq compare in
    let reduced, bindings = preprocess atoms in
    let rec branch atoms depth =
      if !budget <= 0 || depth > 600 then raise Budget;
      decr budget;
      match Simplex.solve atoms with
      | Simplex.Unsat -> None
      | Simplex.Unknown -> raise Budget
      | Simplex.Sat model -> (
        match List.find_opt (fun (_, q) -> fractional q) model with
        | None -> Some model
        | Some (v, q) ->
          let f = Q.floor q in
          let low =
            { Atom.expr = Linexpr.sub (Linexpr.var v) (Linexpr.const (Q.of_bigint f));
              rel = Atom.Le }
          in
          let high =
            { Atom.expr =
                Linexpr.sub (Linexpr.const (Q.of_bigint (B.succ f))) (Linexpr.var v);
              rel = Atom.Le }
          in
          (match branch (low :: atoms) (depth + 1) with
           | Some m -> Some m
           | None -> branch (high :: atoms) (depth + 1)))
    in
    match branch reduced 0 with
    | None -> Unsat
    | Some model ->
      (* Reconstruct eliminated variables in reverse elimination order,
         then fill any variable that vanished entirely with zero. *)
      let value = Hashtbl.create 16 in
      List.iter (fun (v, q) -> Hashtbl.replace value v q) model;
      let lookup v = match Hashtbl.find_opt value v with Some q -> q | None -> Q.zero in
      List.iter
        (fun (x, e) -> Hashtbl.replace value x (Linexpr.eval lookup e))
        (List.rev bindings);
      Sat (List.map (fun v -> (v, Q.to_bigint (lookup v))) all_vars)
  with
  | result -> finish result
  | exception Infeasible -> finish Unsat
  | exception Budget -> finish Unknown

let check_model atoms model =
  let assign v =
    match List.assoc_opt v model with
    | Some b -> Q.of_bigint b
    | None -> Q.zero
  in
  List.for_all (Atom.holds assign) atoms
