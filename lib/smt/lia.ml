module B = Numbers.Bigint
module Q = Numbers.Rational

type result = Sat of (int * B.t) list | Unsat | Unknown | Timeout

exception Budget
exception Infeasible

(* Normalize to integer coefficients and non-strict relations. *)
let normalize (a : Atom.t) : Atom.t =
  let expr = Linexpr.scale_to_integers a.expr in
  match a.rel with
  | Atom.Lt -> { Atom.expr = Linexpr.add_const Q.one expr; rel = Atom.Le }
  | Atom.Le | Atom.Eq -> { a with expr }

(* GCD-based tightening of an integral atom.  For [a . x + k <= 0] with
   g = gcd of the variable coefficients, the atom is equivalent over the
   integers to [a/g . x + ceil(k/g) <= 0]; for equalities, g must divide
   k or the atom is infeasible.
   @raise Infeasible when an equality has a divisibility conflict. *)
let tighten (a : Atom.t) : Atom.t =
  let coeffs = Linexpr.terms a.expr in
  if coeffs = [] then a
  else begin
    let g =
      List.fold_left (fun acc (c, _) -> B.gcd acc (Q.to_bigint c)) B.zero coeffs
    in
    if B.equal g B.one then a
    else begin
      let k = Q.to_bigint (Linexpr.constant a.expr) in
      match a.rel with
      | Atom.Eq ->
        if not (B.is_zero (B.rem k g)) then raise Infeasible;
        { a with expr = Linexpr.scale (Q.make B.one g) a.expr }
      | Atom.Le ->
        let terms = List.map (fun (c, v) -> (Q.make (Q.to_bigint c) g, v)) coeffs in
        { a with expr = Linexpr.of_terms terms (Q.of_bigint (B.cdiv k g)) }
      | Atom.Lt -> assert false
    end
  end

(* Find an equality with a +-1 coefficient on some variable and return
   (x, e) such that the equality is equivalent to [x = e]. *)
let solvable_equality (a : Atom.t) =
  match a.rel with
  | Atom.Le | Atom.Lt -> None
  | Atom.Eq ->
    let rec pick = function
      | [] -> None
      | (c, x) :: rest ->
        if Q.equal (Q.abs c) Q.one then begin
          (* c*x + rest = 0  =>  x = -(rest)/c *)
          let rest_expr = Linexpr.add_term (Q.neg c) x a.expr in
          Some (x, Linexpr.scale (Q.neg (Q.inv c)) rest_expr)
        end
        else pick rest
    in
    pick (Linexpr.terms a.expr)

(* Preprocess a conjunction: tighten, then repeatedly eliminate solvable
   equalities by substitution.  Returns the reduced atoms and the list of
   bindings (in elimination order) for model reconstruction.
   @raise Infeasible on a trivially false atom. *)
let preprocess atoms =
  let simplify atoms =
    List.filter_map
      (fun a ->
        let a = tighten a in
        match Atom.trivial a with
        | Some true -> None
        | Some false -> raise Infeasible
        | None -> Some a)
      atoms
  in
  let rec eliminate atoms bindings =
    let atoms = simplify atoms in
    match List.find_map solvable_equality atoms with
    | None -> (atoms, List.rev bindings)
    | Some (x, e) ->
      let atoms =
        List.map (fun (a : Atom.t) -> { a with expr = Linexpr.subst x e a.expr }) atoms
      in
      eliminate atoms ((x, e) :: bindings)
  in
  eliminate atoms []

let fractional q = not (Q.is_integer q)

let solve ?steps ?(max_steps = 20_000) ?stop atoms =
  let budget = ref max_steps in
  let finish result =
    (match steps with Some r -> r := !r + (max_steps - !budget) | None -> ());
    result
  in
  let stopped () = match stop with Some f -> f () | None -> false in
  match
    let atoms = List.map normalize atoms in
    let all_vars = List.concat_map Atom.vars atoms |> List.sort_uniq compare in
    let reduced, bindings = preprocess atoms in
    let rec branch atoms depth =
      (* Checking at every branch node (not only inside the simplex
         pivot loop) keeps the overshoot bound meaningful for tiny
         relaxations that finish in fewer than [Simplex.stop_interval]
         pivots. *)
      if stopped () then raise Simplex.Timeout;
      if !budget <= 0 || depth > 600 then raise Budget;
      decr budget;
      match Simplex.solve ?stop atoms with
      | Simplex.Unsat -> None
      | Simplex.Unknown -> raise Budget
      | Simplex.Sat model -> (
        match List.find_opt (fun (_, q) -> fractional q) model with
        | None -> Some model
        | Some (v, q) ->
          let f = Q.floor q in
          let low =
            { Atom.expr = Linexpr.sub (Linexpr.var v) (Linexpr.const (Q.of_bigint f));
              rel = Atom.Le }
          in
          let high =
            { Atom.expr =
                Linexpr.sub (Linexpr.const (Q.of_bigint (B.succ f))) (Linexpr.var v);
              rel = Atom.Le }
          in
          (match branch (low :: atoms) (depth + 1) with
           | Some m -> Some m
           | None -> branch (high :: atoms) (depth + 1)))
    in
    match branch reduced 0 with
    | None -> Unsat
    | Some model ->
      (* Reconstruct eliminated variables in reverse elimination order,
         then fill any variable that vanished entirely with zero. *)
      let value = Hashtbl.create 16 in
      List.iter (fun (v, q) -> Hashtbl.replace value v q) model;
      let lookup v = match Hashtbl.find_opt value v with Some q -> q | None -> Q.zero in
      List.iter
        (fun (x, e) -> Hashtbl.replace value x (Linexpr.eval lookup e))
        (List.rev bindings);
      Sat (List.map (fun v -> (v, Q.to_bigint (lookup v))) all_vars)
  with
  | result -> finish result
  | exception Infeasible -> finish Unsat
  | exception Budget -> finish Unknown
  | exception Simplex.Timeout -> finish Timeout

(* ------------------------------------------------------------------ *)
(* Incremental assertion stack: a thin integer layer over
   {!Simplex.Session}.  Atoms are normalized and GCD-tightened at assert
   time (catching divisibility conflicts and trivially false constants
   at zero solver cost), deduplicated up to {!Atom.canonical}, and pushed
   onto the warm simplex tableau.  [check] first replays the last
   satisfying integral model against the atoms asserted since it was
   found — on the enumeration DFS the parent's model usually still
   satisfies the child's extended prefix, so most reachability checks
   are a cache hit costing a handful of evaluations — and only then
   falls back to branch-and-bound over session push/pop. *)

module Canon = Hashtbl.Make (struct
  type t = Atom.t

  (* Keys are already canonical, so compare components directly and let
     Linexpr's cached hash do the work. *)
  let equal (a : Atom.t) (b : Atom.t) = a.rel = b.rel && Linexpr.equal a.expr b.expr
  let hash (a : Atom.t) = (Linexpr.hash a.expr * 3) + Hashtbl.hash a.rel
end)

(* Unsat cores are sets of log indices (the assert-order position of an
   atom).  [None] means "provenance lost" — an untracked participant or a
   core that outgrew the cap — and degrades gracefully to "assume the
   newest frame is involved".  The cap bounds the cost of the sorted-set
   unions on pathological propagation chains. *)
let core_cap = 64

let union_core a b =
  match (a, b) with
  | Some xs, Some ys ->
    let u = List.sort_uniq compare (List.rev_append xs ys) in
    if List.length u > core_cap then None else Some u
  | _ -> None

(* Tag namespace for branch-and-bound cuts asserted into the simplex
   session: disjoint from log indices, so conflict explanations can tell
   input atoms from cuts.  The cut for branch depth [d] is tagged
   [cut_base + d]. *)
let cut_base = max_int / 2

type frame = {
  saved_len : int;
  saved_infeasible : bool;
  saved_why : int list option;
  saved_trail : int;
  mutable added : Atom.t list;  (** canonical keys to retract from [seen] *)
}

type var_bounds = {
  mutable lo : B.t option;
  mutable hi : B.t option;
  mutable lo_core : int list option;  (** log indices the bound rests on *)
  mutable hi_core : int list option;
}

type session = {
  sx : Simplex.Session.t;
  seen : unit Canon.t;  (** live asserted atoms, canonical, for dedup *)
  mutable log : Atom.t list;  (** asserted atoms, newest first *)
  mutable len : int;
  mutable frames : frame list;
  mutable infeasible : bool;
  mutable why : int list option;
      (** when [infeasible]: an unsat core over log indices *)
  depths : (int, int) Hashtbl.t;
      (** log index -> assertion-stack depth at assert time *)
  mutable model : (int * B.t) list option;  (** last satisfying model *)
  mutable model_valid_upto : int;  (** log prefix the model is known to satisfy *)
  bounds : (int, var_bounds) Hashtbl.t;
      (** interval store maintained by assert-time propagation *)
  mutable trail :
    (int * B.t option * B.t option * int list option * int list option) list;
      (** bound updates to undo on pop: (var, old lo, old hi, old cores) *)
  mutable trail_len : int;
}

let create () =
  {
    sx = Simplex.Session.create ();
    seen = Canon.create 256;
    log = [];
    len = 0;
    frames = [];
    infeasible = false;
    why = None;
    depths = Hashtbl.create 256;
    model = None;
    model_valid_upto = 0;
    bounds = Hashtbl.create 64;
    trail = [];
    trail_len = 0;
  }

let push s =
  Simplex.Session.push s.sx;
  s.frames <-
    { saved_len = s.len;
      saved_infeasible = s.infeasible;
      saved_why = s.why;
      saved_trail = s.trail_len;
      added = [] }
    :: s.frames

let pop s =
  match s.frames with
  | [] -> invalid_arg "Lia.pop: empty assertion stack"
  | frame :: rest ->
    Simplex.Session.pop s.sx;
    List.iter (fun key -> Canon.remove s.seen key) frame.added;
    let drop = s.len - frame.saved_len in
    s.log <- List.filteri (fun i _ -> i >= drop) s.log;
    s.len <- frame.saved_len;
    s.model_valid_upto <- min s.model_valid_upto s.len;
    s.infeasible <- frame.saved_infeasible;
    s.why <- frame.saved_why;
    while s.trail_len > frame.saved_trail do
      match s.trail with
      | [] -> assert false
      | (v, lo, hi, lo_core, hi_core) :: rest ->
        let b = Hashtbl.find s.bounds v in
        b.lo <- lo;
        b.hi <- hi;
        b.lo_core <- lo_core;
        b.hi_core <- hi_core;
        s.trail <- rest;
        s.trail_len <- s.trail_len - 1
    done;
    s.frames <- rest

let depth s = List.length s.frames

(* Map an unsat core to the deepest assertion-stack frame it touches:
   atoms at depths beyond that frame are irrelevant to the conflict, so
   the conjunction was already infeasible there. *)
let core_depth s core =
  match core with
  | None -> None
  | Some tags ->
    Some
      (List.fold_left
         (fun acc t ->
           match Hashtbl.find_opt s.depths t with
           | Some d -> max acc d
           | None -> max acc max_int)
         0 tags)

let mark_infeasible s why =
  if not s.infeasible then begin
    s.infeasible <- true;
    s.why <- why
  end

let unsat_core s = if s.infeasible then s.why else None

let unsat_depth s = if s.infeasible then core_depth s s.why else None

(* ------------------------------------------------------------------ *)
(* Assert-time interval propagation.  A cheap, sound refutation layer
   over the asserted conjunction: per-variable integer intervals are
   tightened by bounds consequence — for [sum c_i x_i + k <= 0], each
   [c_j x_j] is at most [-k] minus a lower bound on the other terms, so
   [x_j <= fdiv rhs c_j] (or [>= cdiv] for negative [c_j]; the rounding
   is sound because all variables are integral).  An empty interval
   proves the conjunction unsatisfiable without touching the simplex,
   which is what lets {!check_quick} answer reachability queries at
   zero solver-step cost.  All updates go through the trail so {!pop}
   restores the store exactly. *)

let var_bounds_of s v =
  match Hashtbl.find_opt s.bounds v with
  | Some b -> b
  | None ->
    let b = { lo = None; hi = None; lo_core = None; hi_core = None } in
    Hashtbl.add s.bounds v b;
    b

let record s v (b : var_bounds) =
  s.trail <- (v, b.lo, b.hi, b.lo_core, b.hi_core) :: s.trail;
  s.trail_len <- s.trail_len + 1

let improve_lo s v x ~core =
  let b = var_bounds_of s v in
  match b.lo with
  | Some l when B.compare l x >= 0 -> false
  | _ ->
    record s v b;
    b.lo <- Some x;
    b.lo_core <- core;
    (match b.hi with
     | Some h when B.compare x h > 0 -> mark_infeasible s (union_core core b.hi_core)
     | _ -> ());
    true

let improve_hi s v x ~core =
  let b = var_bounds_of s v in
  match b.hi with
  | Some h when B.compare h x <= 0 -> false
  | _ ->
    record s v b;
    b.hi <- Some x;
    b.hi_core <- core;
    (match b.lo with
     | Some l when B.compare l x > 0 -> mark_infeasible s (union_core core b.lo_core)
     | _ -> ());
    true

(* Propagate one [expr <= 0] atom (integer coefficients); returns true
   if some interval was tightened.  [core] is the asserting atom's own
   core (its log index); derived bounds carry the union of it and the
   cores of every bound used to derive them. *)
let propagate_le s ~core expr =
  let terms = List.map (fun (c, v) -> (Q.to_bigint c, v)) (Linexpr.terms expr) in
  let k = Q.to_bigint (Linexpr.constant expr) in
  let improved = ref false in
  List.iter
    (fun (cj, xj) ->
      (* Lower-bound [sum_{i<>j} c_i x_i]; None when some needed bound
         is missing. *)
      let rest =
        List.fold_left
          (fun acc (ci, xi) ->
            match acc with
            | None -> None
            | Some (sum, used) ->
              if xi = xj then Some (sum, used)
              else
                let b = var_bounds_of s xi in
                let contrib =
                  if B.sign ci > 0 then
                    match b.lo with
                    | Some l -> Some (B.mul ci l, b.lo_core)
                    | None -> None
                  else
                    match b.hi with
                    | Some h -> Some (B.mul ci h, b.hi_core)
                    | None -> None
                in
                (match contrib with
                 | Some (c, cr) -> Some (B.add sum c, union_core used cr)
                 | None -> None))
          (Some (B.zero, core))
          terms
      in
      match rest with
      | None -> ()
      | Some (sum, used) ->
        let rhs = B.sub (B.neg k) sum in
        if B.sign cj > 0 then begin
          if improve_hi s xj (B.fdiv rhs cj) ~core:used then improved := true
        end
        else if improve_lo s xj (B.cdiv rhs cj) ~core:used then improved := true)
    terms;
  !improved

let propagate_atom s ~core (a : Atom.t) =
  match a.rel with
  | Atom.Le -> propagate_le s ~core a.expr
  | Atom.Eq ->
    let fwd = propagate_le s ~core a.expr in
    let bwd = propagate_le s ~core (Linexpr.neg a.expr) in
    fwd || bwd
  | Atom.Lt -> propagate_le s ~core (Linexpr.add_const Q.one a.expr)

(* Run propagation to a bounded fixpoint over the live conjunction.
   The round cap keeps slowly-converging chains from dominating assert
   cost; it only limits how much gets refuted for free, never
   soundness. *)
let max_propagation_rounds = 16

let propagate_fixpoint s =
  let rec loop rounds =
    if rounds > 0 && not s.infeasible then begin
      let improved =
        List.fold_left
          (fun (i, acc) a ->
            let tag = s.len - 1 - i in
            (i + 1, propagate_atom s ~core:(Some [ tag ]) a || acc))
          (0, false) s.log
        |> snd
      in
      if improved then loop (rounds - 1)
    end
  in
  loop max_propagation_rounds

(* Register a freshly logged atom with the dedup/frame bookkeeping and
   the provenance tables, returning its tag (log index). *)
let log_atom s key a =
  Canon.replace s.seen key ();
  (match s.frames with
   | [] -> ()  (* base level: permanent, never retracted *)
   | frame :: _ -> frame.added <- key :: frame.added);
  let tag = s.len in
  s.log <- a :: s.log;
  s.len <- s.len + 1;
  Hashtbl.replace s.depths tag (depth s);
  tag

let assert_atoms s atoms =
  let fresh = ref false in
  List.iter
    (fun a ->
      if not s.infeasible then begin
        let normalized = normalize a in
        match tighten normalized with
        | exception Infeasible ->
          (* The divisibility conflict is the atom alone: log it so the
             core can cite it. *)
          let tag = log_atom s (Atom.canonical normalized) normalized in
          mark_infeasible s (Some [ tag ])
        | a -> (
          match Atom.trivial a with
          | Some true -> ()
          | Some false ->
            let tag = log_atom s (Atom.canonical a) a in
            mark_infeasible s (Some [ tag ])
          | None ->
            let key = Atom.canonical a in
            if not (Canon.mem s.seen key) then begin
              let tag = log_atom s key a in
              Simplex.Session.assert_atom ~tag s.sx a;
              if Simplex.Session.is_infeasible s.sx then begin
                let why =
                  match Simplex.Session.infeasible_expl s.sx with
                  | None -> None
                  | Some expl -> Some (List.map fst expl)
                in
                mark_infeasible s why
              end
              else begin
                ignore (propagate_atom s ~core:(Some [ tag ]) a);
                fresh := true
              end
            end)
      end)
    atoms;
  if !fresh && not s.infeasible then propagate_fixpoint s

(* The delta-rational simplex assignment, concretized exactly as in
   {!Simplex.solve}: substitute a concrete positive value for delta,
   halving until every asserted atom (including the branch-and-bound
   cuts currently on the stack) holds. *)
let concretize s cuts vars =
  let deltas = List.map (fun v -> (v, Simplex.Session.value s.sx v)) vars in
  let atoms = List.rev_append cuts s.log in
  let rec go d tries =
    if tries = 0 then None
    else begin
      let assign v =
        match List.assoc_opt v deltas with
        | Some { Delta.r; d = k } -> Q.add r (Q.mul k d)
        | None -> Q.zero
      in
      if List.for_all (Atom.holds assign) atoms then
        Some (List.map (fun (v, _) -> (v, assign v)) deltas)
      else go (Q.div d (Q.of_int 2)) (tries - 1)
    end
  in
  go Q.one 4096

(* Model-cache fast path: does the last model satisfy the atoms
   asserted since it was found? *)
let cached_model s =
  match s.model with
  | None -> None
  | Some m ->
    let assign v =
      match List.assoc_opt v m with Some b -> Q.of_bigint b | None -> Q.zero
    in
    let fresh = s.len - s.model_valid_upto in
    let rec holds_fresh i = function
      | _ when i >= fresh -> true
      | [] -> true
      | a :: rest -> Atom.holds assign a && holds_fresh (i + 1) rest
    in
    if holds_fresh 0 s.log then Some m else None

(* Answer from the incremental prefix state alone — the propagated
   interval store and the model cache — at zero simplex cost.  Unknown
   means "the cheap layers cannot decide"; the caller either descends
   (reachability pruning) or falls back to {!check}. *)
let check_quick ?hits s =
  let bump () = match hits with Some r -> incr r | None -> () in
  if s.infeasible then begin
    bump ();
    Unsat
  end
  else
    match cached_model s with
    | Some m ->
      bump ();
      s.model_valid_upto <- s.len;
      Sat m
    | None -> Unknown

let check ?steps ?hits ?(max_steps = 20_000) ?stop s =
  let budget = ref max_steps in
  let finish result =
    (match steps with Some r -> r := !r + (max_steps - !budget) | None -> ());
    result
  in
  let stopped () = match stop with Some f -> f () | None -> false in
  if s.infeasible then finish Unsat
  else begin
    match cached_model s with
    | Some m ->
      (match hits with Some r -> incr r | None -> ());
      s.model_valid_upto <- s.len;
      finish (Sat m)
    | None -> (
      let vars = List.concat_map Atom.vars s.log |> List.sort_uniq compare in
      (* Union of input tags across every refuted leaf of the B&B tree:
         cuts are existentially discharged by the case split, so dropping
         them leaves a core over asserted atoms. *)
      let core_acc = ref (Some []) in
      let note_conflict expl =
        let leaf =
          match expl with
          | None -> None
          | Some e ->
            Some (List.filter_map (fun (t, _) -> if t < cut_base then Some t else None) e)
        in
        core_acc := union_core !core_acc leaf
      in
      let rec branch cuts depth =
        if stopped () then raise Simplex.Timeout;
        if !budget <= 0 || depth > 600 then raise Budget;
        decr budget;
        match Simplex.Session.check ?stop s.sx with
        | `Unsat expl ->
          note_conflict expl;
          None
        | `Sat -> (
          match concretize s cuts vars with
          | None -> raise Budget
          | Some model -> (
            match List.find_opt (fun (_, q) -> fractional q) model with
            | None -> Some model
            | Some (v, q) ->
              let f = Q.floor q in
              let cut rel_expr =
                { Atom.expr = rel_expr; rel = Atom.Le }
              in
              let low =
                cut (Linexpr.sub (Linexpr.var v) (Linexpr.const (Q.of_bigint f)))
              in
              let high =
                cut
                  (Linexpr.sub
                     (Linexpr.const (Q.of_bigint (B.succ f)))
                     (Linexpr.var v))
              in
              let try_cut c =
                Simplex.Session.push s.sx;
                Simplex.Session.assert_atom ~tag:(cut_base + depth) s.sx c;
                let r =
                  match branch (c :: cuts) (depth + 1) with
                  | r -> r
                  | exception e ->
                    Simplex.Session.pop s.sx;
                    raise e
                in
                Simplex.Session.pop s.sx;
                r
              in
              (match try_cut low with Some m -> Some m | None -> try_cut high)))
      in
      match branch [] 0 with
      | exception Budget -> finish Unknown
      | exception Simplex.Timeout -> finish Timeout
      | None ->
        mark_infeasible s !core_acc;
        finish Unsat
      | Some model ->
        let m = List.map (fun (v, q) -> (v, Q.to_bigint q)) model in
        s.model <- Some m;
        s.model_valid_upto <- s.len;
        finish (Sat m))
  end

let check_model atoms model =
  let assign v =
    match List.assoc_opt v model with
    | Some b -> Q.of_bigint b
    | None -> Q.zero
  in
  List.for_all (Atom.holds assign) atoms

(* ------------------------------------------------------------------ *)
(* Certifying engine: branch-and-bound over a fresh tagged session
   where every simplex conflict is turned into a Farkas leaf and every
   integer case split into a [Certificate.Branch] node.  Equality
   elimination and interval propagation are deliberately absent — each
   refutation must be expressible in the certificate grammar alone. *)

type cert_result =
  | Cert_sat of (int * B.t) list
  | Cert_unsat of Certificate.t
  | Cert_unknown
  | Cert_timeout

let rec cert_uses_cut d = function
  | Certificate.Farkas ps ->
    List.exists (fun (p : Certificate.premise) -> p.reason = Certificate.Cut d) ps
  | Certificate.Div_conflict _ -> false
  | Certificate.Branch { low; high; _ } -> cert_uses_cut d low || cert_uses_cut d high
  | Certificate.Split { certs; _ } -> List.exists (cert_uses_cut d) certs
  | Certificate.Static c -> cert_uses_cut d c

(* A backjump hoists a child certificate past the dropped cut at depth
   [d]: cut citations above [d] shift down one position to match the
   checker's Branch-relative numbering. *)
let rec remap_cuts d = function
  | Certificate.Farkas ps ->
    Certificate.Farkas
      (List.map
         (fun (p : Certificate.premise) ->
           match p.reason with
           | Certificate.Cut j when j > d -> { p with reason = Certificate.Cut (j - 1) }
           | _ -> p)
         ps)
  | Certificate.Div_conflict _ as c -> c
  | Certificate.Branch b ->
    Certificate.Branch { b with low = remap_cuts d b.low; high = remap_cuts d b.high }
  | Certificate.Split sp ->
    Certificate.Split { sp with certs = List.map (remap_cuts d) sp.certs }
  | Certificate.Static c -> Certificate.Static (remap_cuts d c)

let solve_cert ?steps ?(max_steps = 20_000) ?stop atoms =
  let budget = ref max_steps in
  let finish result =
    (match steps with Some r -> r := !r + (max_steps - !budget) | None -> ());
    result
  in
  let stopped () = match stop with Some f -> f () | None -> false in
  let inputs = Array.of_list atoms in
  let all_vars = List.concat_map Atom.vars atoms |> List.sort_uniq compare in
  let sx = Simplex.Session.create () in
  let asserted = Hashtbl.create 16 in
  (* [cuts] is the branch path, newest first; a conflict explanation maps
     back to premise atoms through [asserted] (inputs) and [cuts]. *)
  let farkas_of cuts expl =
    let ncuts = List.length cuts in
    Option.map
      (fun e ->
        Certificate.Farkas
          (List.map
             (fun (t, lam) ->
               if t >= cut_base then
                 let d = t - cut_base in
                 { Certificate.coeff = lam;
                   atom = List.nth cuts (ncuts - 1 - d);
                   reason = Certificate.Cut d }
               else
                 { Certificate.coeff = lam;
                   atom = Hashtbl.find asserted t;
                   reason = Certificate.Input t })
             e))
      expl
  in
  let concretize cuts =
    let deltas = List.map (fun v -> (v, Simplex.Session.value sx v)) all_vars in
    let live = Hashtbl.fold (fun _ a acc -> a :: acc) asserted cuts in
    let rec go d tries =
      if tries = 0 then None
      else begin
        let assign v =
          match List.assoc_opt v deltas with
          | Some { Delta.r; d = k } -> Q.add r (Q.mul k d)
          | None -> Q.zero
        in
        if List.for_all (Atom.holds assign) live then
          Some (List.map (fun (v, _) -> (v, assign v)) deltas)
        else go (Q.div d (Q.of_int 2)) (tries - 1)
      end
    in
    go Q.one 4096
  in
  match
    let conflict = ref None in
    Array.iteri
      (fun i a ->
        if !conflict = None then begin
          let a_n = normalize a in
          match Atom.trivial a_n with
          | Some true -> ()
          | Some false ->
            (* A trivially false equality can carry a constant of either
               sign; the multiplier must match it so the combination's
               constant comes out positive. *)
            let coeff =
              if Q.sign (Linexpr.constant a_n.Atom.expr) < 0 then Q.minus_one
              else Q.one
            in
            conflict :=
              Some
                (Certificate.Farkas
                   [ { Certificate.coeff; atom = a_n; reason = Certificate.Input i } ])
          | None -> (
            match tighten a_n with
            | exception Infeasible ->
              conflict := Some (Certificate.Div_conflict { index = i; atom = a_n })
            | a_t ->
              Hashtbl.replace asserted i a_t;
              Simplex.Session.assert_atom ~tag:i sx a_t;
              if Simplex.Session.is_infeasible sx then begin
                match farkas_of [] (Simplex.Session.infeasible_expl sx) with
                | Some c -> conflict := Some c
                | None -> raise Budget
              end)
        end)
      inputs;
    match !conflict with
    | Some c -> `Unsat c
    | None ->
      let rec branch cuts depth =
        if stopped () then raise Simplex.Timeout;
        if !budget <= 0 || depth > 600 then raise Budget;
        decr budget;
        match Simplex.Session.check ?stop sx with
        | `Unsat expl -> (
          match farkas_of cuts expl with Some c -> `Unsat c | None -> raise Budget)
        | `Sat -> (
          match concretize cuts with
          | None -> raise Budget
          | Some model -> (
            match List.find_opt (fun (_, q) -> fractional q) model with
            | None -> `Sat model
            | Some (v, q) -> (
              let f = Q.floor q in
              let low =
                { Atom.expr =
                    Linexpr.sub (Linexpr.var v) (Linexpr.const (Q.of_bigint f));
                  rel = Atom.Le }
              in
              let high =
                { Atom.expr =
                    Linexpr.sub
                      (Linexpr.const (Q.of_bigint (B.succ f)))
                      (Linexpr.var v);
                  rel = Atom.Le }
              in
              let explore c =
                Simplex.Session.push sx;
                Simplex.Session.assert_atom ~tag:(cut_base + depth) sx c;
                let r =
                  match branch (c :: cuts) (depth + 1) with
                  | r -> r
                  | exception e ->
                    Simplex.Session.pop sx;
                    raise e
                in
                Simplex.Session.pop sx;
                r
              in
              match explore low with
              | `Sat m -> `Sat m
              | `Unsat c_low -> (
                if not (cert_uses_cut depth c_low) then
                  (* Backjump: the low refutation never used the cut, so
                     it refutes the parent context outright. *)
                  `Unsat (remap_cuts depth c_low)
                else
                  match explore high with
                  | `Sat m -> `Sat m
                  | `Unsat c_high ->
                    if not (cert_uses_cut depth c_high) then
                      `Unsat (remap_cuts depth c_high)
                    else
                      `Unsat
                        (Certificate.Branch { var = v; pivot = f; low = c_low; high = c_high })))))
      in
      branch [] 0
  with
  | `Sat model -> finish (Cert_sat (List.map (fun (v, q) -> (v, Q.to_bigint q)) model))
  | `Unsat c -> finish (Cert_unsat c)
  | exception Budget -> finish Cert_unknown
  | exception Simplex.Timeout -> finish Cert_timeout
