(** Atomic linear constraints.  An atom constrains a linear expression
    against zero: [e <= 0], [e < 0], or [e = 0]. *)

module Q := Numbers.Rational

type rel = Le | Lt | Eq

type t = { expr : Linexpr.t; rel : rel }

(** {1 Smart constructors} — [a ⋈ b] normalized to [a - b ⋈ 0]. *)

val le : Linexpr.t -> Linexpr.t -> t
val lt : Linexpr.t -> Linexpr.t -> t
val ge : Linexpr.t -> Linexpr.t -> t
val gt : Linexpr.t -> Linexpr.t -> t
val eq : Linexpr.t -> Linexpr.t -> t

(** [negate a] is an atom equivalent to the negation of [a] for [Le] and
    [Lt]; for [Eq] it raises (negated equalities are disjunctions; use
    {!Formula.not_}).
    @raise Invalid_argument on [Eq]. *)
val negate : t -> t

(** [holds assign a] evaluates [a] under a rational assignment. *)
val holds : (int -> Q.t) -> t -> bool

(** [holds_delta assign a] evaluates [a] under a delta-rational
    assignment. *)
val holds_delta : (int -> Delta.t) -> t -> bool

(** [trivial a] is [Some b] when [a] has a constant expression. *)
val trivial : t -> bool option

val vars : t -> int list

(** [canonical a] rewrites [a] into its canonical representative:
    integral coefficients with GCD (including the constant) divided out,
    and — for equalities — a canonical sign.  [equal]/[compare]/[hash]
    identify atoms up to this normalization, so [2x+2 <= 0] and
    [x+1 <= 0] are one atom; callers that key tables on atoms should
    store the canonical form so {!Linexpr.hash}'s cache is shared. *)
val canonical : t -> t

(** Equality up to {!canonical}, with a physical-equality fast path. *)
val equal : t -> t -> bool

val compare : t -> t -> int

(** [compare_canonical]/[equal_canonical] agree with {!compare}/{!equal}
    on atoms that are already canonical representatives ({!canonical} is
    idempotent), but skip the per-comparison renormalization — which
    dominates sorting or comparing large canonical atom lists (the
    discharge-cache fingerprint path).  Undefined on non-canonical
    atoms. *)
val compare_canonical : t -> t -> int

val equal_canonical : t -> t -> bool

(** Hash compatible with {!equal} (computed on the canonical form). *)
val hash : t -> int
val pp : ?names:(int -> string) -> Format.formatter -> t -> unit
val to_string : ?names:(int -> string) -> t -> string
