(** Standalone certificate checker: replays a {!Certificate.t} against
    the input atoms it claims to refute, using exact rational arithmetic
    ({!Numbers}) and nothing from the solver — no {!Simplex}, {!Lia},
    {!Sat} or {!Solver} code is involved.  The integer-reasoning steps
    the solver is allowed to take (strict-to-non-strict normalization,
    GCD tightening, divisibility conflicts, branch cuts) are
    re-implemented here from their definitions, so a bug in the solver's
    versions cannot vouch for itself.

    Soundness of an accepted certificate (see DESIGN.md): every premise
    of a [Farkas] leaf is checked to be an integer consequence of the
    referenced input (or of a cut reconstructed from the enclosing
    [Branch] nodes), the Farkas multipliers have the right signs, the
    variables of the combination cancel exactly, and the resulting
    constant is a contradiction.  [Branch]/[Split] nodes cover their
    cases exhaustively by construction. *)

(** [validate_query ~atoms ~branches cert] checks that [cert] refutes
    the query "[atoms] all hold, and for each entry of [branches] at
    least one alternative cube holds" over the integers.  Returns
    [Error msg] with the first violation found. *)
val validate_query :
  atoms:Atom.t list ->
  branches:Atom.t list list list ->
  Certificate.t ->
  (unit, string) result

(** [validate atoms cert] is {!validate_query} with no branch entries:
    [cert] must refute the plain conjunction of [atoms]. *)
val validate : Atom.t list -> Certificate.t -> (unit, string) result
