(** Unsatisfiability certificates for QF_LIA conjunctions.

    A certificate is a self-contained refutation of a conjunction of
    input atoms (optionally extended with factored case-splits, the
    checker's justice branches): Farkas combinations refute rational
    infeasibility, divisibility conflicts refute integer infeasibility
    of a single equality, [Branch] nodes perform the branch-and-bound
    case split on a fractional variable, and [Split] nodes perform the
    case analysis over a disjunctive branch entry.

    The type is pure data — producing one is the solver's job
    ({!Lia.solve_cert}), replaying one is {!Certcheck}'s, and the two
    share nothing but this module and {!Atom}. *)

module Q := Numbers.Rational
module B := Numbers.Bigint

(** Where a Farkas premise comes from. *)
type reason =
  | Input of int  (** index into the (extended) input atom list *)
  | Cut of int
      (** the cut introduced by the [Branch] ancestor at depth [d]
          (root [Branch] = depth 0): [x - pivot <= 0] on the low side,
          [pivot + 1 - x <= 0] on the high side.  The checker
          reconstructs the cut atom itself from the [Branch] node. *)

type premise = {
  coeff : Q.t;
      (** Farkas multiplier; must be nonnegative for inequality
          premises, any sign for equalities *)
  atom : Atom.t;
      (** the premise as used in the combination — for [Input i], the
          normalized/tightened derivative of input [i] *)
  reason : reason;
}

type t =
  | Farkas of premise list
      (** [sum coeff_i * atom_i] is a contradiction: the variables
          cancel and the constant is positive (or zero with a strict
          premise carrying a positive multiplier) *)
  | Div_conflict of { index : int; atom : Atom.t }
      (** input [index] normalizes to equality [atom] whose variable
          coefficients' gcd does not divide its constant *)
  | Branch of { var : int; pivot : B.t; low : t; high : t }
      (** integer case split: [low] refutes the inputs plus
          [var <= pivot], [high] refutes the inputs plus
          [var >= pivot + 1] *)
  | Split of { cubes : Atom.t list list; certs : t list }
      (** disjunctive case analysis: [cubes] are the alternatives of
          the next pending branch entry, and [certs] (one per cube, in
          order) refute the inputs extended with that cube's atoms *)
  | Static of t
      (** a static prune: the wrapped certificate refutes the recorded
          query exactly as if it stood alone — the wrapper only records
          that the refutation was found by the abstract-interpretation
          invariant engine rather than by the solver, so replay tools
          can account for static discharges separately *)

(** Number of [Farkas]/[Div_conflict] leaves — a cheap size measure for
    reporting. *)
val size : t -> int

(** Input indices referenced anywhere in the certificate, sorted: the
    unsat core the certificate witnesses. *)
val core : t -> int list

val pp : Format.formatter -> t -> unit

(** {1 JSON codec}

    Canonical via {!Jsonc}; rationals and big integers are encoded as
    strings ("num/den" for rationals), so the representation is exact.
    Used by the certificate emission files ([--emit-certs]) and
    [holistic check-cert]. *)

val atom_to_json : Atom.t -> Jsonc.t

(** @raise Jsonc.Parse_error on shape mismatch. *)
val atom_of_json : Jsonc.t -> Atom.t

val to_json : t -> Jsonc.t

(** @raise Jsonc.Parse_error on shape mismatch. *)
val of_json : Jsonc.t -> t
