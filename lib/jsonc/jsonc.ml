type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        write buf (Str k);
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* A minimal recursive-descent parser for the subset we emit: null,
   booleans, (signed) integers, strings with the escapes above, arrays,
   objects.  Raises [Failure] on malformed input. *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then error "bad \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else error "non-ascii \\u escape unsupported"
         | _ -> error "bad escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
        advance ();
        digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start then error "expected number";
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some i -> i
    | None -> error "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> error "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some _ -> Int (parse_int ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing input";
  v

let of_string s = parse s

(* Typed accessors. *)

let member key = function
  | Obj fields -> (
    match List.assoc_opt key fields with
    | Some v -> v
    | None -> raise (Parse_error ("missing field " ^ key)))
  | _ -> raise (Parse_error ("not an object while looking up " ^ key))

let member_opt key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> i | _ -> raise (Parse_error "expected int")
let to_str = function Str s -> s | _ -> raise (Parse_error "expected string")
let to_list = function List xs -> xs | _ -> raise (Parse_error "expected array")
let to_bool = function Bool b -> b | _ -> raise (Parse_error "expected bool")
