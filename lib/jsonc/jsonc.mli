(** A minimal canonical JSON tree (fuzz reports, recorded traces,
    checkpoint journals): null, booleans, integers, strings, arrays,
    objects.  Output is canonical — no whitespace, fields in
    construction order — so two structurally equal documents are
    byte-identical. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string

(** @raise Parse_error on malformed input. *)
val of_string : string -> t

(** Typed accessors; all @raise Parse_error on shape mismatch. *)

val member : string -> t -> t
val member_opt : string -> t -> t option
val to_int : t -> int
val to_str : t -> string
val to_list : t -> t list
val to_bool : t -> bool
