type profile = Conforming | Broken | Mixed

let profile_of_string = function
  | "conforming" -> Some Conforming
  | "broken" -> Some Broken
  | "mixed" -> Some Mixed
  | _ -> None

let profile_to_string = function
  | Conforming -> "conforming"
  | Broken -> "broken"
  | Mixed -> "mixed"

type violation = {
  run : int;
  oracle : string;
  detail : string;
  original_events : int;
  shrunk_events : int;
  trace : Trace.trace;
}

type report = {
  seed : int;
  runs : int;
  profile : profile;
  oracle_counts : (string * (int * int * int)) list;
  violations : violation list;
  divergences : (int * Crossval.divergence) list;
  crossval_runs : int;
}

(* --- scenario generation ------------------------------------------- *)

let gen_adversary st =
  match Gen.int st 4 with
  | 0 -> Trace.Silent
  | 1 -> Trace.Equivocate
  | 2 -> Trace.Noise (Gen.int st 1_000_000)
  | _ -> Trace.Flood (Gen.int st 2)

let max_steps = 20_000

let gen_partition st ~n =
  if not (Gen.percent st 20) then None
  else begin
    let k = Gen.int_range st 1 (n - 1) in
    let side = Gen.subset st ~n ~k in
    let other = List.filter (fun i -> not (List.mem i side)) (List.init n Fun.id) in
    let from_step = Gen.int_range st 0 20 in
    let to_step = from_step + Gen.int_range st 5 40 in
    Some { Trace.from_step; to_step; groups = [ side; other ] }
  end

(* A resilient configuration: n > 3t, f <= t, arbitrary adversaries and
   fault injection.  Every oracle must hold (liveness ones whenever the
   schedule stays fair). *)
let conforming st =
  let kind = if Gen.percent st 60 then Trace.Bv_broadcast else Trace.Consensus in
  let n = Gen.int_range st 4 7 in
  let t = Gen.int_range st 1 ((n - 1) / 3) in
  let f = Gen.int st (t + 1) in
  let byz = List.map (fun i -> (i, gen_adversary st)) (Gen.subset st ~n ~k:f) in
  let inputs = List.init (n - f) (fun _ -> Gen.int st 2) in
  {
    Trace.kind;
    n;
    t;
    inputs;
    byzantine = byz;
    sched_seed = Gen.sub_seed st;
    drop_rate = (if Gen.percent st 30 then Gen.int_range st 1 10 else 0);
    dup_rate = (if Gen.percent st 30 then Gen.int_range st 1 10 else 0);
    max_delay = (if Gen.percent st 30 then Gen.int_range st 1 3 else 0);
    partition = gen_partition st ~n;
    max_round = 10;
    max_steps;
  }

(* A configuration that violates the paper's assumptions, in one of two
   ways: more actual faults than the declared bound (f > t, with
   value-forcing adversaries — breaks BV-Justification), or a declared
   bound at or above n/3 (breaks BV/consensus Termination: the correct
   processes alone cannot reach their own thresholds). *)
let broken st =
  if Gen.bool st then begin
    let n = Gen.int_range st 4 6 in
    let t = 1 in
    let f = t + 1 in
    let value = Gen.int st 2 in
    let adv = if Gen.bool st then Trace.Flood value else Trace.Equivocate in
    let byz = List.map (fun i -> (i, adv)) (Gen.subset st ~n ~k:f) in
    {
      Trace.kind = Trace.Bv_broadcast;
      n;
      t;
      inputs = List.init (n - f) (fun _ -> 1 - value);
      byzantine = byz;
      sched_seed = Gen.sub_seed st;
      drop_rate = 0;
      dup_rate = 0;
      max_delay = 0;
      partition = None;
      max_round = 0;
      max_steps;
    }
  end
  else begin
    let kind = if Gen.bool st then Trace.Bv_broadcast else Trace.Consensus in
    let n = Gen.int_range st 4 6 in
    let t = (n + 2) / 3 in
    (* 3t >= n *)
    let f = min t (n - 2) in
    let byz = List.map (fun i -> (i, Trace.Silent)) (Gen.subset st ~n ~k:f) in
    {
      Trace.kind;
      n;
      t;
      inputs = List.init (n - f) (fun _ -> Gen.int st 2);
      byzantine = byz;
      sched_seed = Gen.sub_seed st;
      drop_rate = 0;
      dup_rate = 0;
      max_delay = 0;
      partition = None;
      max_round = 6;
      max_steps;
    }
  end

let scenario_of_run ~profile st ~index:_ =
  match profile with
  | Conforming -> conforming st
  | Broken -> broken st
  | Mixed -> if Gen.percent st 20 then broken st else conforming st

(* --- the campaign -------------------------------------------------- *)

let all_oracle_names =
  Oracle.oracle_names Trace.Bv_broadcast @ Oracle.oracle_names Trace.Consensus

let campaign ?(max_shrinks = 25) ~seed ~runs ~profile () =
  let st = Gen.make_state ~seed in
  let cache = Crossval.create_cache () in
  let counts = Hashtbl.create 8 in
  let bump name v =
    let p, f, s =
      Option.value ~default:(0, 0, 0) (Hashtbl.find_opt counts name)
    in
    Hashtbl.replace counts name
      (match v with
       | Oracle.Pass -> (p + 1, f, s)
       | Oracle.Fail _ -> (p, f + 1, s)
       | Oracle.Skip _ -> (p, f, s + 1))
  in
  let violations = ref [] in
  let divergences = ref [] in
  let crossval_runs = ref 0 in
  let shrunk = ref 0 in
  for i = 0 to runs - 1 do
    let scenario = scenario_of_run ~profile st ~index:i in
    let outcome = Exec.run scenario in
    let verdicts = Oracle.check scenario outcome in
    List.iter (fun (name, v) -> bump name v) verdicts;
    if Crossval.applicable scenario then begin
      incr crossval_runs;
      List.iter
        (fun d -> divergences := (i, d) :: !divergences)
        (Crossval.divergences cache scenario verdicts)
    end;
    List.iter
      (fun (name, v) ->
        match v with
        | Oracle.Fail detail when !shrunk < max_shrinks ->
          incr shrunk;
          let tr = Shrink.shrink ~oracle:name outcome.trace in
          violations :=
            {
              run = i;
              oracle = name;
              detail;
              original_events = List.length outcome.trace.events;
              shrunk_events = List.length tr.Trace.events;
              trace = tr;
            }
            :: !violations
        | _ -> ())
      verdicts
  done;
  {
    seed;
    runs;
    profile;
    oracle_counts =
      List.map
        (fun name ->
          (name, Option.value ~default:(0, 0, 0) (Hashtbl.find_opt counts name)))
        all_oracle_names;
    violations = List.rev !violations;
    divergences = List.rev !divergences;
    crossval_runs = !crossval_runs;
  }

(* --- reporting ----------------------------------------------------- *)

let violation_to_json (v : violation) =
  Json.Obj
    [
      ("run", Json.Int v.run);
      ("oracle", Json.Str v.oracle);
      ("detail", Json.Str v.detail);
      ("original_events", Json.Int v.original_events);
      ("shrunk_events", Json.Int v.shrunk_events);
      ("trace", Trace.to_json v.trace);
    ]

let divergence_to_json (run, (d : Crossval.divergence)) =
  Json.Obj
    [
      ("run", Json.Int run);
      ("oracle", Json.Str d.oracle);
      ("spec", Json.Str d.spec);
      ("detail", Json.Str d.detail);
    ]

let report_to_json r =
  let total_failures =
    List.fold_left (fun acc (_, (_, f, _)) -> acc + f) 0 r.oracle_counts
  in
  Json.Obj
    [
      ("format", Json.Int Trace.format_version);
      ("seed", Json.Int r.seed);
      ("runs", Json.Int r.runs);
      ("profile", Json.Str (profile_to_string r.profile));
      ( "oracles",
        Json.Obj
          (List.map
             (fun (name, (p, f, s)) ->
               ( name,
                 Json.Obj
                   [
                     ("pass", Json.Int p); ("fail", Json.Int f); ("skip", Json.Int s);
                   ] ))
             r.oracle_counts) );
      ("total_failures", Json.Int total_failures);
      ("violations", Json.List (List.map violation_to_json r.violations));
      ("divergences", Json.List (List.map divergence_to_json r.divergences));
      ("crossval_runs", Json.Int r.crossval_runs);
    ]

let report_to_string r = Json.to_string (report_to_json r)
