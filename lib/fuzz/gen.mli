(** Seeded generation primitives for the fuzzer: thin deterministic
    wrappers around [Random.State] (no external property-testing
    dependency).  All draws are a pure function of the state, so a run is
    reproducible from its seed alone. *)

type st = Random.State.t

val make_state : seed:int -> st

(** [sub_seed st] derives an independent child seed (for per-run or
    per-adversary generators). *)
val sub_seed : st -> int

(** [int st bound] is uniform in [0 .. bound-1] ([0] if [bound <= 0]). *)
val int : st -> int -> int

(** [int_range st lo hi] is uniform in [lo .. hi] (inclusive). *)
val int_range : st -> int -> int -> int

val bool : st -> bool

(** [percent st p] is true with probability [p]%. *)
val percent : st -> int -> bool

val oneof : st -> 'a list -> 'a
val list : st -> int -> (st -> 'a) -> 'a list

(** [subset st ~n ~k] draws a uniform [k]-element subset of [0 .. n-1],
    sorted. *)
val subset : st -> n:int -> k:int -> int list

val shuffle : st -> 'a list -> 'a list
