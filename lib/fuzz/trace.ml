type adversary =
  | Silent
  | Equivocate
  | Noise of int
  | Flood of int

type kind = Bv_broadcast | Consensus

type partition = { from_step : int; to_step : int; groups : int list list }

type scenario = {
  kind : kind;
  n : int;
  t : int;
  inputs : int list;
  byzantine : (int * adversary) list;
  sched_seed : int;
  drop_rate : int;
  dup_rate : int;
  max_delay : int;
  partition : partition option;
  max_round : int;
  max_steps : int;
}

type event = Deliver of int | Drop of int | Duplicate of int

type trace = { scenario : scenario; events : event list }

let format_version = 1

(* ------------------------------------------------------------------ *)
(* Validation.                                                          *)

let validate s =
  let fail msg = invalid_arg ("Trace.validate: " ^ msg) in
  if s.n < 1 then fail "n must be positive";
  if s.t < 0 then fail "t must be non-negative";
  let byz_ids = List.map fst s.byzantine in
  if List.length (List.sort_uniq compare byz_ids) <> List.length byz_ids then
    fail "duplicate byzantine ids";
  List.iter (fun i -> if i < 0 || i >= s.n then fail "byzantine id out of range") byz_ids;
  if List.length s.inputs <> s.n - List.length byz_ids then
    fail "need exactly one input per correct process";
  List.iter (fun v -> if v <> 0 && v <> 1 then fail "inputs must be binary") s.inputs;
  if s.drop_rate < 0 || s.drop_rate > 100 then fail "drop_rate out of range";
  if s.dup_rate < 0 || s.dup_rate > 100 then fail "dup_rate out of range";
  if s.max_delay < 0 then fail "max_delay must be non-negative";
  if s.max_steps < 1 then fail "max_steps must be positive";
  match s.partition with
  | None -> ()
  | Some p ->
    if p.from_step < 0 || p.to_step < p.from_step then fail "bad partition interval";
    if p.to_step >= s.max_steps then fail "partition outlives the step budget";
    let members = List.concat p.groups in
    if List.length (List.sort_uniq compare members) <> List.length members then
      fail "partition groups overlap";
    List.iter (fun i -> if i < 0 || i >= s.n then fail "partition member out of range") members

let correct_ids s =
  let byz = List.map fst s.byzantine in
  List.filter (fun i -> not (List.mem i byz)) (List.init s.n Fun.id)

(* ------------------------------------------------------------------ *)
(* Adversary instantiation.                                             *)

let strategy_of_adversary ~n = function
  | Silent -> Dbft.Byzantine.Silent
  | Equivocate -> Dbft.Byzantine.Equivocate
  | Noise seed -> Dbft.Byzantine.Noise seed
  | Flood v ->
    (* Pushes one value at every destination on every round it observes:
       the adversary that realizes BV-Justification counterexamples once
       f > t. *)
    Dbft.Byzantine.Scripted
      (fun ~round ->
        List.concat_map
          (fun dest ->
            [
              (dest, Dbft.Message.Bv { round; value = v });
              (dest, Dbft.Message.Aux { round; values = Dbft.Vset.singleton v });
            ])
          (List.init n Fun.id))

let adversary_name = function
  | Silent -> "silent"
  | Equivocate -> "equivocate"
  | Noise _ -> "noise"
  | Flood _ -> "flood"

(* ------------------------------------------------------------------ *)
(* JSON encoding.                                                       *)

let adversary_to_json = function
  | Silent -> Json.List [ Json.Str "silent" ]
  | Equivocate -> Json.List [ Json.Str "equivocate" ]
  | Noise seed -> Json.List [ Json.Str "noise"; Json.Int seed ]
  | Flood v -> Json.List [ Json.Str "flood"; Json.Int v ]

let adversary_of_json j =
  match Json.to_list j with
  | [ Json.Str "silent" ] -> Silent
  | [ Json.Str "equivocate" ] -> Equivocate
  | [ Json.Str "noise"; Json.Int seed ] -> Noise seed
  | [ Json.Str "flood"; Json.Int v ] -> Flood v
  | _ -> raise (Json.Parse_error "bad adversary")

let kind_to_string = function Bv_broadcast -> "bv-broadcast" | Consensus -> "consensus"

let kind_of_string = function
  | "bv-broadcast" -> Bv_broadcast
  | "consensus" -> Consensus
  | k -> raise (Json.Parse_error ("bad kind " ^ k))

let scenario_to_json s =
  Json.Obj
    [
      ("kind", Json.Str (kind_to_string s.kind));
      ("n", Json.Int s.n);
      ("t", Json.Int s.t);
      ("inputs", Json.List (List.map (fun v -> Json.Int v) s.inputs));
      ( "byzantine",
        Json.List
          (List.map
             (fun (i, a) -> Json.List [ Json.Int i; adversary_to_json a ])
             s.byzantine) );
      ("sched_seed", Json.Int s.sched_seed);
      ("drop_rate", Json.Int s.drop_rate);
      ("dup_rate", Json.Int s.dup_rate);
      ("max_delay", Json.Int s.max_delay);
      ( "partition",
        match s.partition with
        | None -> Json.Null
        | Some p ->
          Json.Obj
            [
              ("from_step", Json.Int p.from_step);
              ("to_step", Json.Int p.to_step);
              ( "groups",
                Json.List
                  (List.map
                     (fun g -> Json.List (List.map (fun i -> Json.Int i) g))
                     p.groups) );
            ] );
      ("max_round", Json.Int s.max_round);
      ("max_steps", Json.Int s.max_steps);
    ]

let scenario_of_json j =
  let s =
    {
      kind = kind_of_string (Json.to_str (Json.member "kind" j));
      n = Json.to_int (Json.member "n" j);
      t = Json.to_int (Json.member "t" j);
      inputs = List.map Json.to_int (Json.to_list (Json.member "inputs" j));
      byzantine =
        List.map
          (fun b ->
            match Json.to_list b with
            | [ i; a ] -> (Json.to_int i, adversary_of_json a)
            | _ -> raise (Json.Parse_error "bad byzantine entry"))
          (Json.to_list (Json.member "byzantine" j));
      sched_seed = Json.to_int (Json.member "sched_seed" j);
      drop_rate = Json.to_int (Json.member "drop_rate" j);
      dup_rate = Json.to_int (Json.member "dup_rate" j);
      max_delay = Json.to_int (Json.member "max_delay" j);
      partition =
        (match Json.member "partition" j with
         | Json.Null -> None
         | p ->
           Some
             {
               from_step = Json.to_int (Json.member "from_step" p);
               to_step = Json.to_int (Json.member "to_step" p);
               groups =
                 List.map
                   (fun g -> List.map Json.to_int (Json.to_list g))
                   (Json.to_list (Json.member "groups" p));
             });
      max_round = Json.to_int (Json.member "max_round" j);
      max_steps = Json.to_int (Json.member "max_steps" j);
    }
  in
  validate s;
  s

let event_to_json = function
  | Deliver seq -> Json.List [ Json.Str "d"; Json.Int seq ]
  | Drop seq -> Json.List [ Json.Str "x"; Json.Int seq ]
  | Duplicate seq -> Json.List [ Json.Str "u"; Json.Int seq ]

let event_of_json j =
  match Json.to_list j with
  | [ Json.Str "d"; Json.Int seq ] -> Deliver seq
  | [ Json.Str "x"; Json.Int seq ] -> Drop seq
  | [ Json.Str "u"; Json.Int seq ] -> Duplicate seq
  | _ -> raise (Json.Parse_error "bad event")

let to_json tr =
  Json.Obj
    [
      ("version", Json.Int format_version);
      ("scenario", scenario_to_json tr.scenario);
      ("events", Json.List (List.map event_to_json tr.events));
    ]

let of_json j =
  let v = Json.to_int (Json.member "version" j) in
  if v <> format_version then
    raise (Json.Parse_error (Printf.sprintf "unsupported trace version %d" v));
  {
    scenario = scenario_of_json (Json.member "scenario" j);
    events = List.map event_of_json (Json.to_list (Json.member "events" j));
  }

let to_string tr = Json.to_string (to_json tr)
let of_string s = of_json (Json.of_string s)
