(** Recorded, replayable runs.

    A {!scenario} is the full static description of a run: topology,
    declared fault bound [t], inputs, Byzantine placement and strategies,
    the fault-injection policy (drop/duplicate rates, bounded delay,
    a healing partition) and the scheduler seed.  A {!trace} adds the
    dynamic schedule: the exact sequence of network actions performed,
    each identified by the message's sequence number.  Both serialize to
    JSON, so a failing run ships as a standalone reproducer that
    [holistic fuzz --replay] re-executes deterministically. *)

type adversary =
  | Silent  (** crashed process *)
  | Equivocate  (** a different value to each network half *)
  | Noise of int  (** seeded random messages *)
  | Flood of int
      (** pushes the given value (BV + AUX) to everyone on every round: a
          serializable stand-in for a scripted value-forcing adversary *)

type kind =
  | Bv_broadcast  (** standalone {!Dbft.Bv} endpoints, run to quiescence *)
  | Consensus  (** full DBFT {!Dbft.Process} runs *)

(** Messages crossing group boundaries are undeliverable while the step
    counter is within [from_step, to_step]; the partition then heals
    (bounded, so fairness is preserved).  Processes not listed in any
    group are unrestricted. *)
type partition = { from_step : int; to_step : int; groups : int list list }

type scenario = {
  kind : kind;
  n : int;
  t : int;  (** the fault bound the correct processes assume *)
  inputs : int list;  (** one per correct process, in id order *)
  byzantine : (int * adversary) list;
  sched_seed : int;
  drop_rate : int;  (** percent of scheduled actions that drop instead *)
  dup_rate : int;  (** percent that re-enqueue a duplicate instead *)
  max_delay : int;  (** max times a picked message may be deferred *)
  partition : partition option;
  max_round : int;  (** consensus only: stop starting rounds beyond it *)
  max_steps : int;
}

type event =
  | Deliver of int  (** deliver the pending message with this seq *)
  | Drop of int  (** remove it without delivering *)
  | Duplicate of int  (** re-enqueue a copy (the copy gets a fresh seq) *)

type trace = { scenario : scenario; events : event list }

val format_version : int

(** @raise Invalid_argument on an inconsistent scenario. *)
val validate : scenario -> unit

(** Correct process ids, ascending. *)
val correct_ids : scenario -> int list

(** Instantiate an adversary as an executable strategy. *)
val strategy_of_adversary : n:int -> adversary -> Dbft.Byzantine.strategy

val adversary_name : adversary -> string
val kind_to_string : kind -> string

val scenario_to_json : scenario -> Json.t

(** @raise Json.Parse_error / Invalid_argument on malformed input. *)
val scenario_of_json : Json.t -> scenario

val to_json : trace -> Json.t
val of_json : Json.t -> trace
val to_string : trace -> string
val of_string : string -> trace
