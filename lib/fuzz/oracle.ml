type verdict = Pass | Fail of string | Skip of string

let verdict_name = function Pass -> "pass" | Fail _ -> "fail" | Skip _ -> "skip"
let is_fail = function Fail _ -> true | Pass | Skip _ -> false

(* Liveness oracles are meaningful only on fair complete runs: nothing
   addressed to a correct process was dropped, the network quiesced, and
   the run was not cut short by the step budget.  (Drops and unbounded
   delay fall outside the paper's reliable-network model; the safety
   oracles still apply there.) *)
let fair (o : Exec.outcome) =
  if o.dropped_to_correct > 0 then
    Some (Printf.sprintf "%d drops to correct processes" o.dropped_to_correct)
  else if o.budget_exhausted then Some "step budget exhausted"
  else if not o.quiesced then Some "network not quiesced"
  else None

let liveness o check = match fair o with None -> check () | Some why -> Skip why

let values_str vs = String.concat "," (List.map string_of_int vs)

(* --- bv-broadcast properties (paper, Section 3.2) ------------------ *)

let bv_justification (s : Trace.scenario) (o : Exec.outcome) =
  let bad =
    List.concat_map
      (fun (p : Exec.proc_result) ->
        List.filter_map
          (fun v -> if List.mem v s.inputs then None else Some (p.pid, v))
          p.contestants)
      o.procs
  in
  match bad with
  | [] -> Pass
  | (pid, v) :: _ ->
    Fail
      (Printf.sprintf "p%d bv-delivered %d, which no correct process proposed" pid v)

let bv_obligation (s : Trace.scenario) (o : Exec.outcome) =
  liveness o (fun () ->
      let violations =
        List.filter_map
          (fun v ->
            let proposers = List.length (List.filter (( = ) v) s.inputs) in
            if proposers < s.t + 1 then None
            else
              match
                List.find_opt
                  (fun (p : Exec.proc_result) -> not (List.mem v p.contestants))
                  o.procs
              with
              | Some p -> Some (v, p.pid, proposers)
              | None -> None)
          [ 0; 1 ]
      in
      match violations with
      | [] -> Pass
      | (v, pid, proposers) :: _ ->
        Fail
          (Printf.sprintf
             "%d proposed by %d >= t+1 correct processes but p%d never bv-delivered it"
             v proposers pid))

let bv_uniformity (_s : Trace.scenario) (o : Exec.outcome) =
  liveness o (fun () ->
      let violations =
        List.filter_map
          (fun v ->
            let holders =
              List.filter (fun (p : Exec.proc_result) -> List.mem v p.contestants) o.procs
            in
            if holders = [] || List.length holders = List.length o.procs then None
            else
              let missing =
                List.find
                  (fun (p : Exec.proc_result) -> not (List.mem v p.contestants))
                  o.procs
              in
              Some (v, (List.hd holders).pid, missing.pid))
          [ 0; 1 ]
      in
      match violations with
      | [] -> Pass
      | (v, has, misses) :: _ ->
        Fail (Printf.sprintf "p%d bv-delivered %d but p%d did not" has v misses))

let bv_termination (_s : Trace.scenario) (o : Exec.outcome) =
  liveness o (fun () ->
      match List.find_opt (fun (p : Exec.proc_result) -> p.contestants = []) o.procs with
      | None -> Pass
      | Some p -> Fail (Printf.sprintf "p%d never bv-delivered any value" p.pid))

(* --- consensus properties (paper, Section 2) ----------------------- *)

let decisions (o : Exec.outcome) =
  List.filter_map
    (fun (p : Exec.proc_result) ->
      match p.decision with Some (v, r) -> Some (p.pid, v, r) | None -> None)
    o.procs

let agreement (_s : Trace.scenario) (o : Exec.outcome) =
  match decisions o with
  | [] -> Pass
  | (pid0, v0, _) :: rest -> (
    match List.find_opt (fun (_, v, _) -> v <> v0) rest with
    | None -> Pass
    | Some (pid1, v1, _) ->
      Fail (Printf.sprintf "p%d decided %d but p%d decided %d" pid0 v0 pid1 v1))

let validity (s : Trace.scenario) (o : Exec.outcome) =
  match
    List.find_opt (fun (_, v, _) -> not (List.mem v s.inputs)) (decisions o)
  with
  | None -> Pass
  | Some (pid, v, _) ->
    Fail
      (Printf.sprintf "p%d decided %d, the input of no correct process (inputs %s)" pid
         v (values_str s.inputs))

let termination (s : Trace.scenario) (o : Exec.outcome) =
  let undecided =
    List.filter (fun (p : Exec.proc_result) -> p.decision = None) o.procs
  in
  if undecided = [] then Pass
  else if
    (* DBFT termination is probability-1 over infinite fair schedules
       (Lemma 7 exhibits an unfair non-terminating one); a run cut off by
       the round cap is only a finite prefix, so no verdict. *)
    List.exists (fun (p : Exec.proc_result) -> p.round >= s.max_round) o.procs
  then Skip "round budget exhausted before decision"
  else
    liveness o (fun () ->
        let p = List.hd undecided in
        Fail
          (Printf.sprintf "p%d never decided (reached round %d, network quiesced)"
             p.pid p.round))

(* ------------------------------------------------------------------ *)

let oracles_for = function
  | Trace.Bv_broadcast ->
    [
      ("bv-justification", bv_justification);
      ("bv-obligation", bv_obligation);
      ("bv-uniformity", bv_uniformity);
      ("bv-termination", bv_termination);
    ]
  | Trace.Consensus ->
    [ ("agreement", agreement); ("validity", validity); ("termination", termination) ]

let oracle_names kind = List.map fst (oracles_for kind)

let check (s : Trace.scenario) (o : Exec.outcome) =
  List.map (fun (name, oracle) -> (name, oracle s o)) (oracles_for s.kind)
