type st = Random.State.t

let make_state ~seed = Random.State.make [| 0x5eed; seed |]
let sub_seed st = Random.State.int st 0x3FFFFFFF
let int st bound = if bound <= 0 then 0 else Random.State.int st bound
let int_range st lo hi = if hi <= lo then lo else lo + Random.State.int st (hi - lo + 1)
let bool st = Random.State.bool st
let percent st p = Random.State.int st 100 < p

let oneof st xs =
  match xs with
  | [] -> invalid_arg "Gen.oneof: empty list"
  | _ -> List.nth xs (Random.State.int st (List.length xs))

let list st len f = List.init len (fun _ -> f st)

(* A uniformly random [k]-element subset of [0 .. n-1], sorted
   (Fisher-Yates prefix). *)
let subset st ~n ~k =
  let a = Array.init n Fun.id in
  for i = 0 to min k (n - 1) - 1 do
    let j = i + Random.State.int st (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.sub a 0 k |> Array.to_list |> List.sort compare

let shuffle st xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
