(** The conformance-fuzzing campaign: generate scenarios from a seed, run
    them on the fault-injecting network, check every applicable oracle,
    cross-validate small runs against the explicit-state checker, and
    shrink any violating trace to a minimal standalone reproducer.

    Everything downstream of the seed is deterministic: the same
    [(seed, runs, profile)] triple produces a byte-identical
    {!report_to_string}. *)

type profile =
  | Conforming  (** resilient configurations ([n > 3t], [f <= t]) only *)
  | Broken
      (** seeded violations: [f > t] flooding/equivocating adversaries,
          or a declared fault bound [t >= n/3] *)
  | Mixed  (** mostly conforming with occasional broken configurations *)

val profile_of_string : string -> profile option
val profile_to_string : profile -> string

type violation = {
  run : int;  (** campaign run index *)
  oracle : string;
  detail : string;  (** the oracle's failure message on the original run *)
  original_events : int;
  shrunk_events : int;
  trace : Trace.trace;  (** shrunk reproducer; strict-replays to the same failure *)
}

type report = {
  seed : int;
  runs : int;
  profile : profile;
  oracle_counts : (string * (int * int * int)) list;
      (** per oracle, in fixed order: passes, fails, skips *)
  violations : violation list;
  divergences : (int * Crossval.divergence) list;  (** run index, divergence *)
  crossval_runs : int;  (** runs arbitrated by the explicit checker *)
}

(** [scenario_of_run ~profile st ~index] draws one scenario; exposed so
    tests can pin down the generator's distribution. *)
val scenario_of_run : profile:profile -> Gen.st -> index:int -> Trace.scenario

(** [campaign ~seed ~runs ~profile ()] executes the whole campaign.
    [max_shrinks] (default 25) caps how many failing traces are shrunk
    and embedded in the report; further failures are still counted. *)
val campaign :
  ?max_shrinks:int -> seed:int -> runs:int -> profile:profile -> unit -> report

val report_to_json : report -> Json.t

(** Canonical single-line JSON (the CLI's [--json] output). *)
val report_to_string : report -> string
