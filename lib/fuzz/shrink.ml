(* Greedy trace shrinking.  Every accepted candidate is validated by a
   strict replay, so the result is always a schedule that reproduces the
   violation from scratch — no tolerance is needed when the user replays
   the shipped reproducer. *)

let fails ~oracle (tr : Trace.trace) =
  match Exec.replay ~strict:true tr with
  | exception Exec.Replay_divergence _ -> false
  | o -> (
    match List.assoc_opt oracle (Oracle.check tr.scenario o) with
    | Some v -> Oracle.is_fail v
    | None -> false)

let prefix (tr : Trace.trace) k =
  { tr with Trace.events = List.filteri (fun i _ -> i < k) tr.events }

(* Safety violations are monotone in the schedule prefix (a decision or a
   bv-delivery is never retracted), so a binary search finds the shortest
   failing prefix; liveness violations need the full quiescent run and
   the search then returns the trace unchanged. *)
let truncate ~oracle tr =
  let n = List.length tr.Trace.events in
  if fails ~oracle (prefix tr 0) then prefix tr 0
  else begin
    let lo = ref 0 and hi = ref n in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if fails ~oracle (prefix tr mid) then hi := mid else lo := mid
    done;
    prefix tr !hi
  end

let remove_nth i xs = List.filteri (fun j _ -> j <> i) xs
let replace_nth i x xs = List.mapi (fun j y -> if j = i then x else y) xs

(* One greedy pass, last event first: try deleting each event, and for a
   delivery also try degrading it to a drop (useful on liveness
   violations, where deleting a delivery leaves the message pending and
   the network non-quiescent, but dropping a byzantine-bound message
   keeps the schedule fair and complete). *)
let removal_pass ~oracle tr =
  let current = ref tr in
  let i = ref (List.length tr.Trace.events - 1) in
  while !i >= 0 do
    let events = !current.Trace.events in
    if !i < List.length events then begin
      let candidates =
        { !current with Trace.events = remove_nth !i events }
        ::
        (match List.nth events !i with
         | Trace.Deliver seq ->
           [ { !current with Trace.events = replace_nth !i (Trace.Drop seq) events } ]
         | Trace.Drop _ | Trace.Duplicate _ -> [])
      in
      match List.find_opt (fails ~oracle) candidates with
      | Some better -> current := better
      | None -> ()
    end;
    decr i
  done;
  !current

(* Above this, a full greedy pass costs too many replays; truncation
   alone already bounds the reproducer. *)
let removal_budget = 800

let shrink ~oracle tr =
  if not (fails ~oracle tr) then tr
  else begin
    let tr = truncate ~oracle tr in
    let tr =
      if List.length tr.Trace.events <= removal_budget then removal_pass ~oracle tr
      else tr
    in
    tr
  end
