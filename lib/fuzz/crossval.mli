(** Cross-validation of simulation runs against the verification stack.

    Two directions:

    - {b simulation vs explicit-state checking}: for small conforming
      bv-broadcast scenarios, every oracle failure observed in simulation
      is compared against {!Explicit.check} on the bv threshold automaton
      at the same [(n, t, f)].  A simulated violation of a property the
      explicit checker proves to hold for those parameters is a
      {!divergence} — a bug in the simulator, the oracle, or the checker.

    - {b witness realization}: a safety witness produced by the
      parameterized checker on a {e mutant} automaton (bv-broadcast with
      the resilience weakened to admit [f <= 2t]) is turned into a
      concrete scripted scenario — [f] flooding adversaries against
      all-opposite correct inputs — and replayed on the simulated
      network, confirming that the abstract counterexample corresponds to
      an executable run violating the same property. *)

(** Memoizes explicit-checker verdicts per parameter valuation. *)
type cache

val create_cache : unit -> cache

type divergence = {
  oracle : string;  (** simulation oracle that failed *)
  spec : string;  (** automaton spec the explicit checker proved *)
  detail : string;
}

(** Automaton spec names backing a simulation oracle (empty for oracles
    with no automaton counterpart). *)
val specs_for_oracle : string -> string list

(** Scenarios the explicit checker can arbitrate: conforming bv-broadcast
    runs ([n > 3t], [f <= t]) with [n] small enough for state
    enumeration. *)
val applicable : Trace.scenario -> bool

(** [explicit_verdicts cache ~n ~t ~f] is [(spec_name, holds)] for every
    bv spec, memoized. *)
val explicit_verdicts : cache -> n:int -> t:int -> f:int -> (string * bool) list

(** [divergences cache scenario verdicts] compares a run's oracle
    verdicts against the explicit checker; [[]] when the scenario is not
    {!applicable}. *)
val divergences :
  cache -> Trace.scenario -> (string * Oracle.verdict) list -> divergence list

(** The mutant: bv-broadcast with resilience [n > 3t /\ 0 <= f <= 2t],
    so more processes may be faulty than the correct ones assume. *)
val broken_automaton : Ta.Automaton.t

(** [find_witness ()] asks the parameterized checker for a BV-Just0
    counterexample on {!broken_automaton}; [None] if the checker
    (unexpectedly) proves it or aborts. *)
val find_witness : unit -> Holistic.Witness.t option

(** [realize ~n ~t ~f ~value ~sched_seed] builds the flooding scenario
    for those parameters, runs it, and returns the recorded trace iff it
    violates bv-justification. *)
val realize :
  n:int -> t:int -> f:int -> value:int -> sched_seed:int -> Trace.trace option

(** [realize_witness w ~sched_seed] reads [(n, t, f)] off a checker
    witness and {!realize}s it. *)
val realize_witness : Holistic.Witness.t -> sched_seed:int -> Trace.trace option
