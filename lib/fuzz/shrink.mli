(** Greedy shrinking of failing traces: first a binary-search truncation
    to the shortest failing prefix (safety violations are monotone in the
    prefix), then one greedy pass deleting — or degrading to drops —
    individual events.  Every candidate is validated by strict replay, so
    the shrunk trace always reproduces the violation standalone. *)

(** [fails ~oracle tr] strictly replays [tr] and reports whether the
    named oracle fails on it ([false] on replay divergence). *)
val fails : oracle:string -> Trace.trace -> bool

(** [shrink ~oracle tr] returns a minimal-ish failing trace ([tr] itself
    if it does not fail in the first place). *)
val shrink : oracle:string -> Trace.trace -> Trace.trace
