module Pexpr = Ta.Pexpr

(* --- simulation vs explicit-state checking ------------------------- *)

type cache = (int * int * int, (string * bool) list) Hashtbl.t

let create_cache () : cache = Hashtbl.create 8

type divergence = { oracle : string; spec : string; detail : string }

let specs_for_oracle = function
  | "bv-justification" -> [ "BV-Just0"; "BV-Just1" ]
  | "bv-obligation" -> [ "BV-Obl0"; "BV-Obl1" ]
  | "bv-uniformity" -> [ "BV-Unif0"; "BV-Unif1" ]
  | "bv-termination" -> [ "BV-Term" ]
  | _ -> []

(* Explicit checking enumerates all interleavings, so keep n small; the
   run must also satisfy the automaton's resilience (n > 3t, f <= t) or
   the comparison is between different models. *)
let applicable (s : Trace.scenario) =
  s.kind = Trace.Bv_broadcast
  && s.n <= 5
  && s.n > (3 * s.t)
  && s.t >= 1
  && List.length s.byzantine <= s.t

let explicit_verdicts cache ~n ~t ~f =
  match Hashtbl.find_opt cache (n, t, f) with
  | Some v -> v
  | None ->
    let params = [ ("n", n); ("t", t); ("f", f) ] in
    let v =
      List.map
        (fun (spec : Ta.Spec.t) ->
          match Explicit.check Models.Bv_ta.automaton spec params with
          | Explicit.Holds -> (spec.name, true)
          | Explicit.Violated _ -> (spec.name, false))
        Models.Bv_ta.all_specs
    in
    Hashtbl.add cache (n, t, f) v;
    v

(* A simulated run is one schedule; the explicit checker quantifies over
   all of them.  So the only contradiction is: the simulation exhibits a
   violation while the checker proves the property for the same
   parameters.  (Oracle [Skip]s — unfair schedules — are not runs of the
   model and are ignored.) *)
let divergences cache (s : Trace.scenario) verdicts =
  if not (applicable s) then []
  else begin
    let ev =
      explicit_verdicts cache ~n:s.n ~t:s.t ~f:(List.length s.byzantine)
    in
    List.concat_map
      (fun (oracle, verdict) ->
        match verdict with
        | Oracle.Pass | Oracle.Skip _ -> []
        | Oracle.Fail why ->
          List.filter_map
            (fun spec ->
              match List.assoc_opt spec ev with
              | Some true ->
                Some
                  {
                    oracle;
                    spec;
                    detail =
                      Printf.sprintf
                        "simulation violates %s (%s) but %s holds at n=%d t=%d f=%d"
                        oracle why spec s.n s.t (List.length s.byzantine);
                  }
              | Some false | None -> None)
            (specs_for_oracle oracle))
      verdicts
  end

(* --- witness realization ------------------------------------------- *)

(* bv-broadcast with the fault-tolerance assumption broken: the correct
   processes still use thresholds derived from t, but up to 2t processes
   may actually be Byzantine.  BV-Justification fails here (f >= t+1
   flooders push an unproposed value past the t+1-f echo threshold). *)
let broken_automaton =
  {
    Models.Bv_ta.automaton with
    Ta.Automaton.name = "bv_broadcast_broken";
    resilience =
      [
        (* n - 3t - 1 >= 0 *)
        Pexpr.of_terms [ ("n", 1); ("t", -3) ] (-1);
        (* 2t - f >= 0 *)
        Pexpr.of_terms [ ("t", 2); ("f", -1) ] 0;
        (* f >= 0 *)
        Pexpr.of_terms [ ("f", 1) ] 0;
      ];
  }

let just0 =
  List.find (fun (s : Ta.Spec.t) -> s.name = "BV-Just0") Models.Bv_ta.all_specs

let find_witness () =
  let limits = Holistic.Checker.crossval_limits in
  match (Holistic.Checker.verify ~limits broken_automaton just0).outcome with
  | Holistic.Checker.Violated w -> Some w
  | Holistic.Checker.Holds | Holistic.Checker.Aborted _ | Holistic.Checker.Partial _ ->
    None

let realize ~n ~t ~f ~value ~sched_seed =
  if f < t + 1 || f >= n || n - f < 1 then None
  else begin
    let scenario =
      {
        Trace.kind = Trace.Bv_broadcast;
        n;
        t;
        inputs = List.init (n - f) (fun _ -> 1 - value);
        byzantine = List.init f (fun i -> (n - f + i, Trace.Flood value));
        sched_seed;
        drop_rate = 0;
        dup_rate = 0;
        max_delay = 0;
        partition = None;
        max_round = 0;
        max_steps = 20_000;
      }
    in
    let outcome = Exec.run scenario in
    match List.assoc_opt "bv-justification" (Oracle.check scenario outcome) with
    | Some (Oracle.Fail _) -> Some outcome.trace
    | _ -> None
  end

let realize_witness (w : Holistic.Witness.t) ~sched_seed =
  match
    ( List.assoc_opt "n" w.params,
      List.assoc_opt "t" w.params,
      List.assoc_opt "f" w.params )
  with
  | Some n, Some t, Some f -> realize ~n ~t ~f ~value:0 ~sched_seed
  | _ -> None
