(** The paper's proven properties as executable predicates over a run.

    Bv-broadcast runs are checked against BV-Justification,
    BV-Obligation, BV-Uniformity and BV-Termination (Section 3.2);
    consensus runs against Agreement, Validity and Termination
    (Section 2).  Safety oracles apply to every run; liveness oracles are
    [Skip]ped on runs that are not fair complete schedules of the
    reliable network (message loss to a correct process, exhausted step
    budget, or a non-quiescent network), where the paper's assumptions do
    not hold and a failure would be vacuous. *)

type verdict = Pass | Fail of string | Skip of string

val verdict_name : verdict -> string
val is_fail : verdict -> bool

(** [fair o] is [None] when the run is a fair complete schedule, or
    [Some reason] why liveness oracles are vacuous on it. *)
val fair : Exec.outcome -> string option

(** Oracle names for a run kind, in report order. *)
val oracle_names : Trace.kind -> string list

(** [check scenario outcome] evaluates every oracle applicable to the
    scenario's kind. *)
val check : Trace.scenario -> Exec.outcome -> (string * verdict) list
