(** The minimal JSON tree the fuzzer emits and parses (reports, recorded
    traces): null, booleans, integers, strings, arrays, objects.  Output
    is canonical — no whitespace, fields in construction order — so a
    report is byte-identical across runs with the same seed. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string

(** @raise Parse_error on malformed input. *)
val of_string : string -> t

(** Typed accessors; all @raise Parse_error on shape mismatch. *)

val member : string -> t -> t
val member_opt : string -> t -> t option
val to_int : t -> int
val to_str : t -> string
val to_list : t -> t list
val to_bool : t -> bool
