(** Deterministic execution of scenarios over the fault-injecting
    simulated network.

    {!run} drives a scenario with a seeded scheduler that interleaves
    deliveries with injected faults — message drops, duplications,
    bounded per-message delays, and a healing partition — and records
    every action performed as a replayable {!Trace.trace}.  {!replay}
    re-executes a recorded (possibly shrunk) schedule: because correct
    processes and the bundled adversaries are deterministic functions of
    the deliveries they observe, replaying the same event list reproduces
    the same run bit-for-bit. *)

(** Raised by strict {!replay} when an event references a message that is
    not pending — the trace does not correspond to a run of this
    scenario. *)
exception Replay_divergence of string

type proc_result = {
  pid : int;
  contestants : int list;  (** bv-delivered values (round 0 for consensus) *)
  decision : (int * int) option;  (** value, round (consensus only) *)
  round : int;
}

type outcome = {
  trace : Trace.trace;  (** the recorded (or replayed) schedule *)
  procs : proc_result list;  (** correct processes, ascending id *)
  steps : int;
  delivered : int;
  dropped_to_correct : int;
      (** messages to correct processes lost to drop faults; when
          non-zero the run is not a fair schedule of the paper's reliable
          network and liveness oracles are vacuous *)
  quiesced : bool;  (** no pending messages at the end *)
  budget_exhausted : bool;
}

(** [run scenario] executes until quiescence (bv-broadcast), all correct
    processes decided (consensus), or the step budget is exhausted.
    @raise Invalid_argument on an inconsistent scenario. *)
val run : Trace.scenario -> outcome

(** [replay ?strict tr] re-executes a recorded schedule.  With
    [strict = false], events whose message is not pending are skipped
    (used while shrinking candidate traces).
    @raise Replay_divergence in strict mode on a non-applicable event. *)
val replay : ?strict:bool -> Trace.trace -> outcome
