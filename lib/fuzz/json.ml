include Jsonc
