module Net = Simnet.Network

exception Replay_divergence of string

type proc_result = {
  pid : int;
  contestants : int list;
  decision : (int * int) option;
  round : int;
}

type outcome = {
  trace : Trace.trace;
  procs : proc_result list;
  steps : int;
  delivered : int;
  dropped_to_correct : int;
  quiesced : bool;
  budget_exhausted : bool;
}

type participant =
  | P_bv of Dbft.Bv.t
  | P_proc of Dbft.Process.t
  | P_byz of Dbft.Byzantine.t

type sim = {
  scenario : Trace.scenario;
  net : Dbft.Message.t Net.t;
  parts : participant array;
  correct : int list;
  mutable dropped_to_correct : int;
}

let build (s : Trace.scenario) =
  Trace.validate s;
  let net = Net.create ~n:s.n in
  let correct = Trace.correct_ids s in
  let inputs = List.combine correct s.inputs in
  let parts =
    Array.init s.n (fun i ->
        match List.assoc_opt i s.byzantine with
        | Some adv ->
          P_byz
            (Dbft.Byzantine.create ~id:i ~n:s.n
               (Trace.strategy_of_adversary ~n:s.n adv)
               net)
        | None -> (
          let input = List.assoc i inputs in
          match s.kind with
          | Trace.Bv_broadcast -> P_bv (Dbft.Bv.create ~id:i ~t:s.t ~input net)
          | Trace.Consensus ->
            let p = Dbft.Process.create ~id:i ~n:s.n ~t:s.t ~input net in
            Dbft.Process.set_max_round p s.max_round;
            P_proc p))
  in
  (* Start in ascending id order so initial sequence numbers are
     deterministic regardless of construction order. *)
  Array.iter
    (function P_bv ep -> Dbft.Bv.start ep | P_proc p -> Dbft.Process.start p | P_byz _ -> ())
    parts;
  { scenario = s; net; parts; correct; dropped_to_correct = 0 }

let is_correct sim i =
  match sim.parts.(i) with P_byz _ -> false | P_bv _ | P_proc _ -> true

let dispatch sim { Net.src; dest; msg; _ } =
  match sim.parts.(dest) with
  | P_bv ep -> Dbft.Bv.handle ep ~src msg
  | P_proc p -> Dbft.Process.handle p ~src msg
  | P_byz b -> Dbft.Byzantine.handle b ~src msg

let all_decided sim =
  Array.for_all
    (function P_proc p -> Dbft.Process.decision p <> None | P_bv _ | P_byz _ -> true)
    sim.parts

let stop_condition sim =
  match sim.scenario.kind with
  | Trace.Bv_broadcast -> false (* run to quiescence *)
  | Trace.Consensus -> all_decided sim

(* Partition lookup: -1 = unrestricted. *)
let group_table (s : Trace.scenario) =
  let tbl = Array.make s.n (-1) in
  (match s.partition with
   | None -> ()
   | Some { groups; _ } ->
     List.iteri (fun gi g -> List.iter (fun i -> tbl.(i) <- gi) g) groups);
  tbl

let blocked (s : Trace.scenario) groups step (p : _ Net.pending) =
  match s.partition with
  | Some { from_step; to_step; _ } when step >= from_step && step <= to_step ->
    let gs = groups.(p.src) and gd = groups.(p.dest) in
    gs >= 0 && gd >= 0 && gs <> gd
  | _ -> false

let drop_message sim p =
  ignore (Net.drop sim.net p);
  if is_correct sim p.Net.dest then
    sim.dropped_to_correct <- sim.dropped_to_correct + 1

let finish sim ~events ~steps ~budget_exhausted =
  let procs =
    List.map
      (fun i ->
        match sim.parts.(i) with
        | P_bv ep ->
          {
            pid = i;
            contestants = Dbft.Vset.to_list (Dbft.Bv.delivered ep);
            decision = None;
            round = 0;
          }
        | P_proc p ->
          {
            pid = i;
            contestants = Dbft.Vset.to_list (Dbft.Process.contestants p 0);
            decision = Dbft.Process.decision p;
            round = Dbft.Process.round p;
          }
        | P_byz _ -> assert false)
      sim.correct
  in
  {
    trace = { Trace.scenario = sim.scenario; events };
    procs;
    steps;
    delivered = Net.delivered_count sim.net;
    dropped_to_correct = sim.dropped_to_correct;
    quiesced = Net.pending_count sim.net = 0;
    budget_exhausted;
  }

(* ------------------------------------------------------------------ *)
(* Generation: drive the run with a seeded fault-injecting scheduler,
   recording every performed action.                                    *)

let run (s : Trace.scenario) =
  let sim = build s in
  let rng = Gen.make_state ~seed:s.sched_seed in
  let groups = group_table s in
  let defers = Hashtbl.create 64 in
  let events = ref [] in
  let record ev = events := ev :: !events in
  let steps = ref 0 in
  while
    (not (stop_condition sim)) && !steps < s.max_steps && Net.pending_count sim.net > 0
  do
    incr steps;
    let deliverable =
      List.filter (fun p -> not (blocked s groups !steps p)) (Net.pending sim.net)
    in
    match deliverable with
    | [] -> () (* the partition blocks everything; time passes until it heals *)
    | _ -> (
      let p = List.nth deliverable (Gen.int rng (List.length deliverable)) in
      let deferred = Option.value ~default:0 (Hashtbl.find_opt defers p.Net.seq) in
      if s.max_delay > 0 && deferred < s.max_delay && Gen.percent rng 30 then
        (* Bounded delay: put the pick off for this step.  Each message is
           deferrable at most [max_delay] times, so fairness survives. *)
        Hashtbl.replace defers p.Net.seq (deferred + 1)
      else if Gen.percent rng s.drop_rate then begin
        record (Trace.Drop p.Net.seq);
        drop_message sim p
      end
      else if Gen.percent rng s.dup_rate then begin
        record (Trace.Duplicate p.Net.seq);
        Net.send sim.net ~src:p.Net.src ~dest:p.Net.dest p.Net.msg
      end
      else begin
        record (Trace.Deliver p.Net.seq);
        dispatch sim (Net.deliver sim.net p)
      end)
  done;
  finish sim ~events:(List.rev !events) ~steps:!steps
    ~budget_exhausted:(!steps >= s.max_steps)

(* ------------------------------------------------------------------ *)
(* Replay: re-execute a recorded (possibly shrunk) schedule.            *)

let replay ?(strict = true) (tr : Trace.trace) =
  let sim = build tr.scenario in
  let steps = ref 0 in
  let miss what seq =
    if strict then
      raise
        (Replay_divergence
           (Printf.sprintf "event %d: no pending message with seq %d to %s" !steps seq
              what))
  in
  List.iter
    (fun ev ->
      incr steps;
      match ev with
      | Trace.Deliver seq -> (
        match Net.find sim.net seq with
        | Some p -> dispatch sim (Net.deliver sim.net p)
        | None -> miss "deliver" seq)
      | Trace.Drop seq -> (
        match Net.find sim.net seq with
        | Some p -> drop_message sim p
        | None -> miss "drop" seq)
      | Trace.Duplicate seq -> (
        match Net.find sim.net seq with
        | Some p -> Net.send sim.net ~src:p.Net.src ~dest:p.Net.dest p.Net.msg
        | None -> miss "duplicate" seq))
    tr.events;
  finish sim ~events:tr.events ~steps:!steps ~budget_exhausted:false
