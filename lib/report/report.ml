type row = {
  ta_name : string;
  size : string;
  property : string;
  schemas : string;
  avg_len : string;
  steps : string;
  skipped : string;
  time : string;
  verdict : string;
  paper : string;
}

let row_of_result ~ta_label ~size ~paper (r : Holistic.Checker.result) =
  let avg =
    if r.stats.schemas_checked = 0 then 0.0
    else float_of_int r.stats.slots_total /. float_of_int r.stats.schemas_checked
  in
  let verdict, schemas, time =
    match r.outcome with
    | Holistic.Checker.Holds ->
      ("holds", string_of_int r.stats.schemas_checked, Printf.sprintf "%.2fs" r.stats.time)
    | Holistic.Checker.Violated _ ->
      ("VIOLATED", string_of_int r.stats.schemas_checked, Printf.sprintf "%.2fs" r.stats.time)
    | Holistic.Checker.Aborted _ ->
      ( "aborted",
        Printf.sprintf ">%d" r.stats.schemas_checked,
        Printf.sprintf ">%.0fs" r.stats.time )
    | Holistic.Checker.Partial _ ->
      ( "partial",
        Printf.sprintf ">%d" r.stats.schemas_checked,
        Printf.sprintf "%.2fs" r.stats.time )
  in
  {
    ta_name = ta_label;
    size;
    property = r.spec.name;
    schemas;
    avg_len = Printf.sprintf "%.0f" avg;
    steps = string_of_int r.stats.solver_steps;
    skipped = string_of_int r.stats.schemas_skipped;
    time;
    verdict;
    paper;
  }

let size_string ta =
  let s = Ta.Automaton.stats ta in
  Printf.sprintf "%dg/%dloc/%drules" s.n_guards s.n_locations s.n_rules

let paper_times =
  [
    ("BV-Just0", "5.61s"); ("BV-Obl0", "6.87s"); ("BV-Unif0", "27.64s");
    ("BV-Term", "6.75s"); ("Inv1_0", "4.68s"); ("Inv2_0", "4.56s");
    ("SRound-Term", "4.13s"); ("Good_0", "4.55s"); ("Dec_0", "4.62s");
  ]

let paper_time ~naive spec_name =
  if naive then ">24h"
  else match List.assoc_opt spec_name paper_times with Some t -> t | None -> "-"

(* With [slice] the automaton is run through Analysis.slice first,
   keeping every location the row's specs mention; outcomes and
   witnesses are unchanged, only the universe may shrink. *)
let maybe_slice ~slice ~specs ta =
  if slice then
    Analysis.slice ~keep:(List.concat_map Analysis.spec_locations specs) ta |> fst
  else ta

let checkpoint_file ~dir ta_label (spec : Ta.Spec.t) =
  let sanitize s =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
      s
  in
  Filename.concat dir (sanitize ta_label ^ "__" ^ sanitize spec.name ^ ".ckpt.json")

(* One row: verify [spec], checkpointing under [checkpoint_dir] when
   given (one file per (TA, property), so a multi-row run interrupted
   anywhere resumes every row from its own frontier). *)
let checkpoint_for ~checkpoint_dir ~ta_key spec =
  match checkpoint_dir with
  | None -> None
  | Some dir -> Some (checkpoint_file ~dir ta_key spec)

let bv_rows ?(limits = Holistic.Checker.default_limits) ?(slice = false)
    ?checkpoint_dir ?(resume = false) ?(checkpoint_every = 64) ?portfolio () =
  let specs = Models.Bv_ta.table2_specs in
  let ta = maybe_slice ~slice ~specs Models.Bv_ta.automaton in
  let u = Holistic.Universe.build ta in
  List.map
    (fun spec ->
      let checkpoint = checkpoint_for ~checkpoint_dir ~ta_key:"bv" spec in
      let r =
        Holistic.Checker.verify_with_universe ~limits ?checkpoint ~checkpoint_every
          ~resume ?portfolio u spec
      in
      row_of_result ~ta_label:"bv-broadcast (Fig 2)" ~size:(size_string ta)
        ~paper:(paper_time ~naive:false spec.Ta.Spec.name) r)
    specs

let naive_rows ?(limits = Holistic.Checker.default_limits) ?(slice = false)
    ?checkpoint_dir ?(resume = false) ?(checkpoint_every = 64) ?portfolio ~budget () =
  let specs = Models.Naive_ta.table2_specs in
  let ta = maybe_slice ~slice ~specs Models.Naive_ta.automaton in
  let limits = { limits with Holistic.Checker.time_budget = Some budget } in
  List.map
    (fun spec ->
      let checkpoint = checkpoint_for ~checkpoint_dir ~ta_key:"naive" spec in
      let r =
        Holistic.Checker.verify ~limits ?checkpoint ~checkpoint_every ~resume ?portfolio
          ta spec
      in
      row_of_result ~ta_label:"naive consensus (Fig 3)" ~size:(size_string ta)
        ~paper:(paper_time ~naive:true spec.Ta.Spec.name) r)
    specs

let simplified_rows ?(limits = Holistic.Checker.default_limits) ?(slice = false)
    ?checkpoint_dir ?(resume = false) ?(checkpoint_every = 64) ?portfolio
    ?(specs = Models.Simplified_ta.table2_specs) () =
  let ta = maybe_slice ~slice ~specs Models.Simplified_ta.automaton in
  let u = Holistic.Universe.build ta in
  List.map
    (fun spec ->
      let checkpoint = checkpoint_for ~checkpoint_dir ~ta_key:"simplified" spec in
      let r =
        Holistic.Checker.verify_with_universe ~limits ?checkpoint ~checkpoint_every
          ~resume ?portfolio u spec
      in
      row_of_result ~ta_label:"simplified (Fig 4)" ~size:(size_string ta)
        ~paper:(paper_time ~naive:false spec.Ta.Spec.name) r)
    specs

(* One Table-2-style row per (zoo entry, property): same columns as the
   paper rows, with "-" in the paper-time column (the zoo models are not
   in Table 2).  The verdict column is what test/test_zoo.ml and the CI
   zoo job gate against the registry's expected verdicts. *)
let zoo_rows ?(limits = Holistic.Checker.default_limits) ?(slice = false)
    ?checkpoint_dir ?(resume = false) ?(checkpoint_every = 64) ?portfolio () =
  List.concat_map
    (fun (e : Models.Zoo.entry) ->
      let specs = List.map fst e.Models.Zoo.specs in
      let ta = maybe_slice ~slice ~specs e.Models.Zoo.automaton in
      let u = Holistic.Universe.build ta in
      List.map
        (fun spec ->
          let checkpoint =
            checkpoint_for ~checkpoint_dir ~ta_key:("zoo-" ^ e.Models.Zoo.key) spec
          in
          let r =
            Holistic.Checker.verify_with_universe ~limits ?checkpoint ~checkpoint_every
              ~resume ?portfolio u spec
          in
          row_of_result ~ta_label:("zoo: " ^ e.Models.Zoo.key) ~size:(size_string ta)
            ~paper:"-" r)
        specs)
    Models.Zoo.entries

let table2 ?limits ?slice ?checkpoint_dir ?resume ?checkpoint_every ?portfolio ~quick
    ~naive_budget () =
  bv_rows ?limits ?slice ?checkpoint_dir ?resume ?checkpoint_every ?portfolio ()
  @ naive_rows ?limits ?slice ?checkpoint_dir ?resume ?checkpoint_every ?portfolio
      ~budget:naive_budget ()
  @ simplified_rows ?limits ?slice ?checkpoint_dir ?resume ?checkpoint_every ?portfolio
      ?specs:(if quick then Some [ Models.Simplified_ta.inv2_0; Models.Simplified_ta.good_0 ] else None)
      ()

let columns =
  [ "TA"; "Size"; "Property"; "#schemas"; "Avg len"; "Steps"; "Skipped"; "Time";
    "Verdict"; "Paper time" ]

let cells r =
  [ r.ta_name; r.size; r.property; r.schemas; r.avg_len; r.steps; r.skipped; r.time;
    r.verdict; r.paper ]

let print_text oc rows =
  let fmt = format_of_string "%-24s %-22s %-13s %-9s %-8s %-9s %-8s %-8s %-9s %s\n" in
  (match columns with
   | [ a; b; c; d; e; f; g; h; i; j ] -> Printf.fprintf oc fmt a b c d e f g h i j
   | _ -> assert false);
  Printf.fprintf oc "%s\n" (String.make 126 '-');
  List.iter
    (fun r ->
      match cells r with
      | [ a; b; c; d; e; f; g; h; i; j ] -> Printf.fprintf oc fmt a b c d e f g h i j
      | _ -> assert false)
    rows

let to_markdown rows =
  let line cs = "| " ^ String.concat " | " cs ^ " |\n" in
  line columns
  ^ line (List.map (fun _ -> "---") columns)
  ^ String.concat "" (List.map (fun r -> line (cells r)) rows)

let to_csv rows =
  String.concat "\n" (List.map (String.concat ",") (columns :: List.map cells rows)) ^ "\n"
