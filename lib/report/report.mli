(** Generation of the paper's Table 2 (Section 6): one row per
    (threshold automaton, property) with size, schema count, average
    schema length, solver effort, wall-clock time and verdict, next to
    the paper's reported time.  Shared by the benchmark harness and the
    CLI. *)

type row = {
  ta_name : string;
  size : string;  (** "Ng/Lloc/Rrules" *)
  property : string;
  schemas : string;
  avg_len : string;
  steps : string;  (** total simplex steps *)
  skipped : string;  (** schemas covered by pruned subtrees (0 when flat) *)
  time : string;
  verdict : string;
  paper : string;  (** the paper's reported time for this row *)
}

(** [row_of_result ~ta_label ~size ~paper result]. *)
val row_of_result :
  ta_label:string -> size:string -> paper:string -> Holistic.Checker.result -> row

val size_string : Ta.Automaton.t -> string

(** [checkpoint_file ~dir ta_key spec] — the canonical checkpoint path
    for one (TA, property) row under checkpoint directory [dir]:
    ["<ta_key>__<spec-name>.ckpt.json"], both components sanitised to
    [[A-Za-z0-9_-]].  The CLI uses the same scheme so a
    [holistic table2 --checkpoint DIR] run and a per-property
    [holistic verify --checkpoint DIR] run share files. *)
val checkpoint_file : dir:string -> string -> Ta.Spec.t -> string

(** [limits] (default {!Holistic.Checker.default_limits}) carries every
    budget — worker domains, incremental vs flat discharge, schema and
    solver-step caps — in one value; every row's verdict/schema columns
    are identical for any [jobs]/[incremental] choice, only wall-clock
    and the solver-effort columns change.  [slice] (default false) runs
    the automaton through {!Analysis.slice} first (keeping the locations
    the row's specs mention): outcomes and witnesses are unchanged,
    schema counts can only shrink.

    [checkpoint_dir] enables crash-safe resumption: each row persists a
    {!Holistic.Journal} checkpoint to {!checkpoint_file} every
    [checkpoint_every] (default 64) positions, and [resume] (default
    false) fast-forwards each row past its checkpointed frontier — an
    interrupted table regenerates with every completed row's verdict,
    schema count and solver-step totals identical to an uninterrupted
    run (see {!Holistic.Checker.verify}).

    [portfolio] routes every row's leaf discharges through one shared
    {!Smt.Portfolio} (cross-property cache + racing backends); rows are
    bit-identical with or without it, only the Steps column shrinks. *)

(** [bv_rows ()] — the four bv-broadcast rows (fast). *)
val bv_rows :
  ?limits:Holistic.Checker.limits -> ?slice:bool -> ?checkpoint_dir:string ->
  ?resume:bool -> ?checkpoint_every:int -> ?portfolio:Smt.Portfolio.t ->
  unit -> row list

(** [naive_rows ~budget ()] — the three naive-consensus rows, each
    aborted after [budget] seconds (the paper's ">24h" analogue;
    [budget] overrides [limits.time_budget], and spans all resumed
    slices of a row). *)
val naive_rows :
  ?limits:Holistic.Checker.limits -> ?slice:bool -> ?checkpoint_dir:string ->
  ?resume:bool -> ?checkpoint_every:int -> ?portfolio:Smt.Portfolio.t ->
  budget:float -> unit -> row list

(** [simplified_rows ?specs ()] — the simplified-consensus rows
    (defaults to the five properties of Table 2; ~70 s total). *)
val simplified_rows :
  ?limits:Holistic.Checker.limits -> ?slice:bool -> ?checkpoint_dir:string ->
  ?resume:bool -> ?checkpoint_every:int -> ?portfolio:Smt.Portfolio.t ->
  ?specs:Ta.Spec.t list -> unit -> row list

(** [zoo_rows ()] — one Table-2-style row per (zoo entry, property),
    enumerating {!Models.Zoo.entries}; the paper-time column is ["-"]
    (the zoo models are not in Table 2).  The CI zoo job and
    [holistic table2 --zoo] append these to the paper rows. *)
val zoo_rows :
  ?limits:Holistic.Checker.limits -> ?slice:bool -> ?checkpoint_dir:string ->
  ?resume:bool -> ?checkpoint_every:int -> ?portfolio:Smt.Portfolio.t ->
  unit -> row list

(** [table2 ~quick ~naive_budget ()] — all rows. *)
val table2 :
  ?limits:Holistic.Checker.limits -> ?slice:bool -> ?checkpoint_dir:string ->
  ?resume:bool -> ?checkpoint_every:int -> ?portfolio:Smt.Portfolio.t ->
  quick:bool -> naive_budget:float -> unit -> row list

val print_text : out_channel -> row list -> unit
val to_markdown : row list -> string
val to_csv : row list -> string
