(** Generation of the paper's Table 2 (Section 6): one row per
    (threshold automaton, property) with size, schema count, average
    schema length, solver effort, wall-clock time and verdict, next to
    the paper's reported time.  Shared by the benchmark harness and the
    CLI. *)

type row = {
  ta_name : string;
  size : string;  (** "Ng/Lloc/Rrules" *)
  property : string;
  schemas : string;
  avg_len : string;
  steps : string;  (** total simplex steps *)
  skipped : string;  (** schemas covered by pruned subtrees (0 when flat) *)
  time : string;
  verdict : string;
  paper : string;  (** the paper's reported time for this row *)
}

(** [row_of_result ~ta_label ~size ~paper result]. *)
val row_of_result :
  ta_label:string -> size:string -> paper:string -> Holistic.Checker.result -> row

val size_string : Ta.Automaton.t -> string

(** [jobs] (default 1) is the number of worker domains discharging the
    schema queries; every row is identical for any value — only the
    wall-clock column changes (see {!Holistic.Checker}).  [slice]
    (default false) runs the automaton through {!Analysis.slice} first
    (keeping the locations the row's specs mention): outcomes and
    witnesses are unchanged, schema counts can only shrink.
    [incremental] (default true) selects the prefix-sharing engine;
    verdict/schema columns are identical either way, the Steps and
    Skipped columns show the pruning at work. *)

(** [bv_rows ()] — the four bv-broadcast rows (fast). *)
val bv_rows : ?jobs:int -> ?slice:bool -> ?incremental:bool -> unit -> row list

(** [naive_rows ~budget ()] — the three naive-consensus rows, each
    aborted after [budget] seconds (the paper's ">24h" analogue). *)
val naive_rows :
  ?jobs:int -> ?slice:bool -> ?incremental:bool -> budget:float -> unit -> row list

(** [simplified_rows ?specs ()] — the simplified-consensus rows
    (defaults to the five properties of Table 2; ~70 s total). *)
val simplified_rows :
  ?jobs:int -> ?slice:bool -> ?incremental:bool -> ?specs:Ta.Spec.t list -> unit -> row list

(** [table2 ~quick ~naive_budget ()] — all rows. *)
val table2 :
  ?jobs:int -> ?slice:bool -> ?incremental:bool -> quick:bool -> naive_budget:float ->
  unit -> row list

val print_text : out_channel -> row list -> unit
val to_markdown : row list -> string
val to_csv : row list -> string
