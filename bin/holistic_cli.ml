(* Command-line interface to the reproduction: inspect the threshold
   automata, verify properties (parameterized or explicit-state), export
   the automata as DOT (Figures 2-4), and run the executable DBFT
   consensus on the simulated network. *)

open Cmdliner

type model = Bv | Naive | Simplified | BenOr | ZooEntry of Models.Zoo.entry

let automaton_of ?(broken = false) = function
  | Bv -> Models.Bv_ta.automaton
  | Naive -> Models.Naive_ta.automaton
  | Simplified ->
    if broken then Models.Simplified_ta.automaton_broken_resilience
    else Models.Simplified_ta.automaton
  | BenOr -> Models.Ben_or.automaton
  | ZooEntry e -> e.Models.Zoo.automaton

let specs_of = function
  | Bv -> Models.Bv_ta.all_specs
  | Naive -> Models.Naive_ta.table2_specs
  | Simplified -> Models.Simplified_ta.all_specs
  | BenOr -> Models.Ben_or.all_specs
  | ZooEntry e -> List.map fst e.Models.Zoo.specs

let model_key = function
  | Bv -> "bv"
  | Naive -> "naive"
  | Simplified -> "simplified"
  | BenOr -> "benor"
  | ZooEntry e -> e.Models.Zoo.key

(* The name a model lints under.  Zoo entries are labelled by registry
   key ("zoo:dbft-rta") rather than automaton name: the dbft-rta entry
   unrolls to an automaton bit-identical to the simplified model
   (including its name), and the lint output must keep them apart. *)
let lint_name model (ta : Ta.Automaton.t) =
  match model with ZooEntry e -> "zoo:" ^ e.Models.Zoo.key | _ -> ta.name

let model_conv =
  let parse = function
    | "bv" | "bv-broadcast" -> Ok Bv
    | "naive" -> Ok Naive
    | "simplified" -> Ok Simplified
    | "benor" | "ben-or" -> Ok BenOr
    | s -> (
      match Models.Zoo.find s with
      | Some e -> Ok (ZooEntry e)
      | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown model %S (expected bv|naive|simplified|benor or a zoo key: %s)"
               s (String.concat "|" Models.Zoo.keys))))
  in
  let print fmt m = Format.pp_print_string fmt (model_key m) in
  Arg.conv (parse, print)

let model_arg =
  Arg.(required & pos 0 (some model_conv) None & info [] ~docv:"MODEL"
         ~doc:"Threshold automaton: bv, naive, simplified, benor, or a model-zoo key \
               (bracha, phase-king, strb, frb, dbft-rta).")

let spec_arg =
  Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"NAME"
         ~doc:"Property name (default: all properties of the model).")

let find_specs model spec_name =
  let all = specs_of model in
  match spec_name with
  | None -> all
  | Some n -> (
    match List.find_opt (fun (s : Ta.Spec.t) -> s.name = n) all with
    | Some s -> [ s ]
    | None ->
      failwith
        (Printf.sprintf "unknown property %S; available: %s" n
           (String.concat ", " (List.map (fun (s : Ta.Spec.t) -> s.name) all))))

(* Exit code 4 (see README "Exit codes"): an input file or path the
   command was explicitly pointed at is unreadable or not in the
   expected format.  One line to stderr, no backtrace. *)
let input_error fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("holistic: " ^ msg);
      exit 4)
    fmt

(* The resilience condition under which a model's justice constraints
   were proven: the simplified TA imports bv-broadcast properties
   established for n > 3t (Appendix F), so linting it under a weaker
   resilience condition must fail (Analysis TA015).  Models without
   justice constraints ignore this. *)
let justice_assumption_of = function
  | Simplified -> Models.Params.resilience
  | Bv | Naive | BenOr -> []
  | ZooEntry e -> e.Models.Zoo.justice_assumption

let lint_diagnostics ?broken model =
  let ta = automaton_of ?broken model in
  (ta, Analysis.run ~assume:(justice_assumption_of model) ~specs:(specs_of model) ta)

(* Exit code of `lint`, and the gate for verify/table2: refuse
   error-level models unless --force. *)
let severity_code = function
  | Some Analysis.Error -> 2
  | Some Analysis.Warning -> 1
  | Some Analysis.Info | None -> 0

let gate ~force ?broken model =
  let ta, diags = lint_diagnostics ?broken model in
  match Analysis.errors diags with
  | [] -> ()
  | errs when force ->
    List.iter (fun d -> Format.eprintf "%s: %a (ignored: --force)@." ta.Ta.Automaton.name Analysis.pp d) errs
  | errs ->
    List.iter (fun d -> Format.eprintf "%s: %a@." ta.Ta.Automaton.name Analysis.pp d) errs;
    Format.eprintf
      "%s: rejected by lint (%d error(s)); rerun with --force to verify anyway@."
      ta.Ta.Automaton.name (List.length errs);
    exit 2

(* --- info ---------------------------------------------------------- *)

let info_cmd =
  let run model =
    let ta = automaton_of model in
    Format.printf "automaton %s: %a@." ta.Ta.Automaton.name Ta.Automaton.pp_stats
      (Ta.Automaton.stats ta);
    Format.printf "parameters: %s; shared: %s@."
      (String.concat ", " ta.params)
      (String.concat ", " ta.shared);
    Format.printf "locations: %s@." (String.concat ", " ta.locations);
    Format.printf "properties:@.";
    List.iter (fun s -> Format.printf "  %a@." Ta.Spec.pp s) (specs_of model)
  in
  Cmd.v (Cmd.info "info" ~doc:"Show an automaton's structure and properties.")
    Term.(const run $ model_arg)

(* --- verify -------------------------------------------------------- *)

(* Shared by verify and table2: the incremental prefix-sharing engine is
   the default; --no-incremental selects the flat one-query-per-schema
   engines (outcomes are bit-identical, solver effort differs). *)
let incremental_arg =
  Arg.(value
       & vflag true
           [
             ( true,
               info [ "incremental" ]
                 ~doc:"Discharge schemas incrementally along the enumeration tree, \
                       pruning subtrees with unsatisfiable prefixes (default)." );
             ( false,
               info [ "no-incremental" ]
                 ~doc:"Solve one self-contained query per schema (the flat engine)." );
           ])

(* Shared by verify and table2: the abstract-interpretation static
   discharge.  Soundness contract: verdicts, witnesses and schema counts
   are bit-identical either way; --no-static exists to demonstrate (and
   test) exactly that, and to time the solver without the shortcut. *)
let static_arg =
  Arg.(value
       & vflag true
           [
             ( true,
               info [ "static" ]
                 ~doc:"Discharge schemas refuted by the invariant engine's certified \
                       static analysis without invoking the solver (default).  \
                       Verdicts, witnesses and schema counts are identical to \
                       $(b,--no-static); only solver effort differs." );
             ( false,
               info [ "no-static" ]
                 ~doc:"Disable the static discharge: every schema goes to the \
                       solver." );
           ])

(* Shared by verify and table2: crash-safe checkpointing.  --checkpoint
   names a directory (created if missing) holding one journal file per
   (TA, property) — see Report.checkpoint_file — so a multi-property run
   interrupted anywhere resumes every property from its own frontier. *)
let checkpoint_arg =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"DIR"
           ~doc:"Persist a resumable checkpoint per property under this directory \
                 (created if missing).")

let resume_arg =
  Arg.(value & flag
       & info [ "resume" ]
           ~doc:"Resume from the checkpoints under --checkpoint: completed schema \
                 ranges are not re-solved, and verdicts, schema counts and solver-step \
                 totals are identical to an uninterrupted run.  Missing checkpoint \
                 files are cold starts, so the flag is safe in retry loops.")

let checkpoint_every_arg =
  Arg.(value & opt int 64
       & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Checkpoint cadence, in discharged schema positions (default 64).")

let ensure_checkpoint_dir = function
  | None -> ()
  | Some dir ->
    if Sys.file_exists dir then begin
      if not (Sys.is_directory dir) then
        input_error "--checkpoint %s exists and is not a directory" dir
    end
    else (
      try Sys.mkdir dir 0o755
      with Sys_error e -> input_error "cannot create checkpoint directory: %s" e)

(* Shared by verify and table2: the cross-property discharge cache and
   the racing backend portfolio.  Opt-in (--memo / --cache /
   --portfolio-check): the default engine stays byte-identical to the
   uncached one, which the equivalence CI gates rely on. *)
let memo_arg =
  Arg.(value & flag
       & info [ "memo" ]
           ~doc:"Route leaf queries through the in-memory cross-property discharge \
                 cache and the racing backend portfolio.  Verdicts, witnesses and \
                 schema counts are bit-identical to a run without it; only solver \
                 effort changes.  Implied by $(b,--cache) and $(b,--portfolio-check).")

let cache_arg =
  Arg.(value & opt (some string) None
       & info [ "cache" ] ~docv:"FILE"
           ~doc:"Persist the discharge cache to this file (implies $(b,--memo)): \
                 entries are loaded before the run — each revalidated against its \
                 certificate, tampered or stale entries silently dropped — and the \
                 merged cache is written back atomically afterwards, every UNSAT \
                 entry certified by the certifying solver first.")

let portfolio_check_arg =
  Arg.(value & flag
       & info [ "portfolio-check" ]
           ~doc:"Cross-check the portfolio (implies $(b,--memo)): every interval or \
                 Cooper refutation is re-proved on the simplex, and a disagreement \
                 aborts the position (a solver bug by construction, never a cache \
                 effect).")

(* Load (or create) the shared cache and wrap it in a portfolio; cache
   traffic reports go to stderr so stdout stays parseable (CSV/JSON). *)
(* The library-level cache loader is deliberately advisory (a tampered
   entry degrades to a miss), but a --cache file that exists and is not
   even readable JSON is an operator error, not cache wear: fail fast
   with the documented exit code instead of silently running cold. *)
let check_cache_readable = function
  | None -> ()
  | Some path ->
    if Sys.file_exists path then (
      match
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | exception Sys_error e -> input_error "--cache %s is unreadable: %s" path e
      | contents -> (
        match Jsonc.of_string (String.trim contents) with
        | exception Jsonc.Parse_error e ->
          input_error "--cache %s is not a cache file (%s)" path e
        | _ -> ()))

let setup_portfolio ~memo ~cache ~check =
  if not (memo || check || cache <> None) then None
  else
    let qc =
      match cache with
      | None -> Smt.Qcache.create ()
      | Some path ->
        check_cache_readable (Some path);
        let rep = Holistic.Cachefile.load ~path in
        if rep.Holistic.Cachefile.loaded > 0 || rep.Holistic.Cachefile.dropped > 0 then
          Format.eprintf "cache: loaded %d entries from %s (%d dropped by validation)@."
            rep.Holistic.Cachefile.loaded path rep.Holistic.Cachefile.dropped;
        rep.Holistic.Cachefile.cache
    in
    Some (Smt.Portfolio.create ~check qc)

let save_portfolio ~cache portfolio =
  match (cache, portfolio) with
  | Some path, Some pf ->
    let rep = Holistic.Cachefile.save ~path (Smt.Portfolio.cache pf) in
    Format.eprintf "cache: wrote %d certified entries to %s%s@."
      rep.Holistic.Cachefile.written path
      (if rep.Holistic.Cachefile.uncertified > 0 then
         Printf.sprintf " (%d dropped: certification failed)"
           rep.Holistic.Cachefile.uncertified
       else "")
  | _ -> ()

(* SIGINT/SIGTERM wind verification down cooperatively: every engine
   notices at its next budget check (within one solver quantum even
   mid-discharge), flushes its checkpoint and returns its partial
   stats; the driver then exits 130 via [interrupt_exit]. *)
let install_interrupt_handlers () =
  let handle = Sys.Signal_handle (fun _ -> Holistic.Checker.request_interrupt ()) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle

(* A corrupt or foreign checkpoint surfaces as [Invalid_argument
   "Checker.verify: ..."] from the resume path; map it to the
   documented one-line input error (exit 4) instead of a backtrace. *)
let with_input_errors f =
  let prefixed msg p = String.length msg >= String.length p && String.sub msg 0 (String.length p) = p in
  try f ()
  with Invalid_argument msg when prefixed msg "Checker.verify:" ->
    input_error "%s (delete the file or rerun without --resume to start cold)" msg

let interrupt_exit () =
  if Holistic.Checker.interrupt_requested () then begin
    prerr_endline
      "holistic: interrupted — partial stats above; checkpoints (if any) are flushed; \
       rerun with --resume to continue";
    exit 130
  end

let verify_cmd =
  let broken =
    Arg.(value & flag & info [ "broken-resilience" ]
           ~doc:"Weaken the resilience condition to n > 2t (simplified model only) to \
                 regenerate the paper's counterexample.")
  in
  let max_schemas =
    Arg.(value & opt int 100_000 & info [ "max-schemas" ] ~docv:"N"
           ~doc:"Abort after this many schemas.")
  in
  let budget =
    Arg.(value & opt (some float) None & info [ "time-budget" ] ~docv:"SECONDS"
           ~doc:"Abort after this much wall-clock time per property.")
  in
  let jobs =
    Arg.(value & opt int (Domain.recommended_domain_count ())
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains discharging schema queries (1 = the sequential engine; \
                   results are bit-identical either way).")
  in
  let worker_stats =
    Arg.(value & flag & info [ "worker-stats" ]
           ~doc:"Print per-worker utilisation after each property.")
  in
  let slice =
    Arg.(value & flag & info [ "slice" ]
           ~doc:"Slice the automaton (drop dead rules and unreachable locations) before \
                 building the schema universe; outcomes and witnesses are unchanged.")
  in
  let force =
    Arg.(value & flag & info [ "force" ]
           ~doc:"Verify even when the static analyzer reports error-level diagnostics.")
  in
  let emit_certs =
    Arg.(value & opt (some string) None
         & info [ "emit-certs" ] ~docv:"FILE"
             ~doc:"Re-prove every UNSAT verdict on the certifying solver and append one \
                   JSON line per certificate to this file, replayable with \
                   $(b,holistic check-cert).  Forces the sequential engine (--jobs 1).")
  in
  let run model spec_name broken max_schemas budget jobs incremental static worker_stats
      slice force checkpoint resume checkpoint_every emit_certs memo cache
      portfolio_check =
    gate ~force ~broken model;
    install_interrupt_handlers ();
    ensure_checkpoint_dir checkpoint;
    let portfolio = setup_portfolio ~memo ~cache ~check:portfolio_check in
    let ta = automaton_of ~broken model in
    let specs = find_specs model spec_name in
    let ta =
      if slice then
        fst (Analysis.slice ~keep:(List.concat_map Analysis.spec_locations specs) ta)
      else ta
    in
    (* Certificate emission lives in the sequential engines only: the
       parallel pools would interleave lines from several domains. *)
    let jobs = if emit_certs = None then jobs else 1 in
    let limits =
      { Holistic.Checker.default_limits with max_schemas; time_budget = budget; jobs;
        incremental; static }
    in
    let cert_oc = Option.map open_out emit_certs in
    let certs = Option.map Holistic.Certs.create cert_oc in
    (* The broken-resilience variant is a different automaton, so it must
       not share checkpoint files with the sound one (the fingerprint
       check would reject them anyway — fail early with distinct names). *)
    let ta_key = if broken then model_key model ^ "-broken" else model_key model in
    let u = Holistic.Universe.build ta in
    List.iter
      (fun spec ->
        let checkpoint =
          Option.map (fun dir -> Report.checkpoint_file ~dir ta_key spec) checkpoint
        in
        let r =
          with_input_errors (fun () ->
              Holistic.Checker.verify_with_universe ~limits ?checkpoint
                ~checkpoint_every ~resume ?certs ?portfolio u spec)
        in
        Format.printf "%a@." Holistic.Checker.pp_result r;
        if worker_stats then Format.printf "%a@?" Holistic.Checker.pp_worker_stats r)
      specs;
    save_portfolio ~cache portfolio;
    (match (emit_certs, certs, cert_oc) with
    | Some path, Some sink, Some oc ->
      close_out oc;
      Format.printf "certificates: %d emitted, %d failed, %d certifying steps -> %s@."
        (Holistic.Certs.emitted sink) (Holistic.Certs.failed sink)
        (Holistic.Certs.cert_steps sink) path
    | _ -> ());
    interrupt_exit ();
    match certs with
    | Some sink when Holistic.Certs.failed sink > 0 -> exit 3
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify properties for all parameters n > 3t, t >= f >= 0 (the paper's \
             parameterized model checking).")
    Term.(const run $ model_arg $ spec_arg $ broken $ max_schemas $ budget $ jobs
          $ incremental_arg $ static_arg $ worker_stats $ slice $ force $ checkpoint_arg
          $ resume_arg $ checkpoint_every_arg $ emit_certs $ memo_arg $ cache_arg
          $ portfolio_check_arg)

(* --- explicit ------------------------------------------------------ *)

let explicit_cmd =
  let p name default doc = Arg.(value & opt int default & info [ name ] ~doc) in
  let run model spec_name n t f =
    let ta = automaton_of model in
    let params = [ ("n", n); ("t", t); ("f", f) ] in
    List.iter
      (fun spec ->
        let out = Explicit.check ta spec params in
        Format.printf "%-14s %a@." spec.Ta.Spec.name Explicit.pp_outcome out)
      (find_specs model spec_name)
  in
  Cmd.v
    (Cmd.info "explicit"
       ~doc:"Explicit-state checking for fixed parameters (the Apalache/TLC-style \
             baseline the paper contrasts with).")
    Term.(const run $ model_arg $ spec_arg $ p "n" 4 "processes" $ p "t" 1 "fault bound"
          $ p "f" 1 "actual faults")

(* --- dot ----------------------------------------------------------- *)

let dot_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file (default: stdout).")
  in
  let format =
    Arg.(value & opt string "dot" & info [ "format" ] ~docv:"FMT"
           ~doc:"Export format: dot (Graphviz) or bymc (ByMC skeleton).")
  in
  let run model output format =
    let ta = automaton_of model in
    let render =
      match format with
      | "dot" -> Ta.Dot.render
      | "bymc" -> Ta.Bymc.render
      | f -> failwith ("unknown format " ^ f)
    in
    match output with
    | None -> print_string (render ta)
    | Some path ->
      let oc = open_out path in
      output_string oc (render ta);
      close_out oc;
      Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Export an automaton as Graphviz DOT (regenerates Figures 2-4) or as a ByMC \
             skeleton.")
    Term.(const run $ model_arg $ output $ format)

(* --- simulate ------------------------------------------------------ *)

let simulate_cmd =
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"number of processes") in
  let t = Arg.(value & opt int 1 & info [ "t" ] ~doc:"fault bound") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"scheduler seed") in
  let inputs =
    Arg.(value & opt (list int) [ 0; 1; 0 ] & info [ "inputs" ] ~docv:"BITS"
           ~doc:"comma-separated inputs of the correct processes")
  in
  let byz =
    Arg.(value & opt (some string) (Some "equivocate")
         & info [ "byzantine" ] ~docv:"STRATEGY"
             ~doc:"byzantine strategy for the last process: none, silent, equivocate, noise")
  in
  let run n t seed inputs byz =
    let byzantine =
      match byz with
      | None | Some "none" -> []
      | Some "silent" -> [ (n - 1, Dbft.Byzantine.Silent) ]
      | Some "equivocate" -> [ (n - 1, Dbft.Byzantine.Equivocate) ]
      | Some "noise" -> [ (n - 1, Dbft.Byzantine.Noise seed) ]
      | Some s -> failwith ("unknown strategy " ^ s)
    in
    let report =
      Dbft.Runner.run
        (Dbft.Runner.config ~n ~t ~inputs ~byzantine
           ~scheduler:(Simnet.Scheduler.random ~seed) ())
    in
    Format.printf "%a@." Dbft.Runner.pp_report report
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the executable DBFT binary consensus on the simulated asynchronous \
             network.")
    Term.(const run $ n $ t $ seed $ inputs $ byz)

(* --- lemma7 -------------------------------------------------------- *)

let lemma7_cmd =
  let rounds = Arg.(value & opt int 10 & info [ "rounds" ] ~doc:"rounds to run") in
  let fair = Arg.(value & flag & info [ "fair" ] ~doc:"use a fair random scheduler instead") in
  let run rounds fair =
    let cfg = Dbft.Lemma7.config ~max_round:rounds in
    let cfg =
      if fair then { cfg with scheduler = Simnet.Scheduler.random ~seed:5 } else cfg
    in
    let report = Dbft.Runner.run cfg in
    Format.printf "%a@." Dbft.Runner.pp_report report;
    if (not fair) && report.Dbft.Runner.decisions = [] then
      Format.printf
        "no decision in %d rounds: the Lemma 7 adversary defeats the algorithm without \
         the fairness assumption@."
        rounds
  in
  Cmd.v
    (Cmd.info "lemma7"
       ~doc:"Run the paper's Appendix B non-termination adversary (Lemma 7).")
    Term.(const run $ rounds $ fair)


(* --- fuzz ----------------------------------------------------------- *)

let fuzz_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"campaign seed") in
  let runs = Arg.(value & opt int 100 & info [ "runs" ] ~doc:"number of generated runs") in
  let profile =
    Arg.(value & opt string "conforming"
         & info [ "profile" ] ~docv:"PROFILE"
             ~doc:"scenario profile: conforming, broken or mixed")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"emit the report as one JSON line") in
  let replay =
    Arg.(value & opt (some file) None
         & info [ "replay" ] ~docv:"TRACE"
             ~doc:"re-execute a recorded trace (JSON file) instead of fuzzing, and \
                   re-check every oracle on it")
  in
  let save =
    Arg.(value & opt (some string) None
         & info [ "save-failure" ] ~docv:"PATH"
             ~doc:"write the first shrunk failing trace to this file")
  in
  let print_verdicts verdicts =
    List.iter
      (fun (name, v) ->
        match v with
        | Fuzz.Oracle.Pass -> Printf.printf "%-16s pass\n" name
        | Fuzz.Oracle.Fail why -> Printf.printf "%-16s FAIL: %s\n" name why
        | Fuzz.Oracle.Skip why -> Printf.printf "%-16s skip (%s)\n" name why)
      verdicts
  in
  let run_replay path json =
    let contents =
      match
        let ic = open_in_bin path in
        Fun.protect ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | exception Sys_error e -> input_error "--replay %s is unreadable: %s" path e
      | c -> c
    in
    let tr =
      try Fuzz.Trace.of_string contents
      with e ->
        input_error "--replay %s is not a recorded trace (%s)" path
          (Printexc.to_string e)
    in
    let outcome = Fuzz.Exec.replay ~strict:true tr in
    let verdicts = Fuzz.Oracle.check tr.Fuzz.Trace.scenario outcome in
    if json then
      print_endline
        (Fuzz.Json.to_string
           (Fuzz.Json.Obj
              (List.map
                 (fun (name, v) -> (name, Fuzz.Json.Str (Fuzz.Oracle.verdict_name v)))
                 verdicts)))
    else print_verdicts verdicts;
    exit (if List.exists (fun (_, v) -> Fuzz.Oracle.is_fail v) verdicts then 1 else 0)
  in
  let run seed runs profile json replay save =
    match replay with
    | Some path -> run_replay path json
    | None ->
      let profile =
        match Fuzz.Campaign.profile_of_string profile with
        | Some p -> p
        | None -> failwith ("unknown profile " ^ profile)
      in
      let report = Fuzz.Campaign.campaign ~seed ~runs ~profile () in
      (match (save, report.Fuzz.Campaign.violations) with
       | Some path, v :: _ ->
         let oc = open_out_bin path in
         Fun.protect ~finally:(fun () -> close_out oc)
           (fun () -> output_string oc (Fuzz.Trace.to_string v.Fuzz.Campaign.trace))
       | _ -> ());
      if json then print_endline (Fuzz.Campaign.report_to_string report)
      else begin
        Printf.printf "fuzz: seed %d, %d %s runs\n" seed runs
          (Fuzz.Campaign.profile_to_string profile);
        List.iter
          (fun (name, (p, f, s)) ->
            if p + f + s > 0 then
              Printf.printf "  %-16s pass %-5d fail %-5d skip %d\n" name p f s)
          report.Fuzz.Campaign.oracle_counts;
        List.iter
          (fun (v : Fuzz.Campaign.violation) ->
            Printf.printf "  violation (run %d) %s: %s — shrunk %d -> %d events\n"
              v.Fuzz.Campaign.run v.Fuzz.Campaign.oracle v.Fuzz.Campaign.detail v.Fuzz.Campaign.original_events
              v.Fuzz.Campaign.shrunk_events)
          report.Fuzz.Campaign.violations;
        List.iter
          (fun (run, (d : Fuzz.Crossval.divergence)) ->
            Printf.printf "  DIVERGENCE (run %d): %s\n" run d.Fuzz.Crossval.detail)
          report.Fuzz.Campaign.divergences;
        Printf.printf "  %d runs cross-validated against the explicit checker\n"
          report.Fuzz.Campaign.crossval_runs
      end;
      let bad =
        List.exists (fun (_, (_, f, _)) -> f > 0) report.Fuzz.Campaign.oracle_counts
        || report.Fuzz.Campaign.divergences <> []
      in
      exit (if bad then 1 else 0)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Conformance-fuzz the executable DBFT/bv-broadcast implementation against \
             the paper's properties: seeded scenario generation with fault injection \
             (drops, duplication, bounded delay, healing partitions, Byzantine \
             placement), trace recording and shrinking, and cross-validation of small \
             runs against the explicit-state checker.  Exit code 1 when a violation or \
             a checker divergence is found.")
    Term.(const run $ seed $ runs $ profile $ json $ replay $ save)

(* --- check-cert ----------------------------------------------------- *)

let check_cert_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"JSONL certificate file produced by $(b,holistic verify --emit-certs).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON summary object.")
  in
  let run path json =
    let module J = Jsonc in
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         let l = input_line ic in
         if String.trim l <> "" then lines := l :: !lines
       done
     with End_of_file -> close_in ic);
    let lines = List.rev !lines in
    let t0 = Unix.gettimeofday () in
    let schemas = ref 0 and prefixes = ref 0 and statics = ref 0 in
    let span = ref 0 and failed = ref 0 in
    List.iteri
      (fun i line ->
        let fail msg =
          incr failed;
          Printf.eprintf "check-cert: line %d: %s\n" (i + 1) msg
        in
        match
          let j = J.of_string line in
          let kind = J.to_str (J.member "kind" j) in
          let atoms =
            List.map Smt.Certificate.atom_of_json (J.to_list (J.member "atoms" j))
          in
          let branches =
            if kind = "schema" then
              List.map
                (fun alts ->
                  List.map
                    (fun cube ->
                      List.map Smt.Certificate.atom_of_json (J.to_list cube))
                    (J.to_list alts))
                (J.to_list (J.member "branches" j))
            else []
          in
          let cert = Smt.Certificate.of_json (J.member "cert" j) in
          (kind, atoms, branches, cert, j)
        with
        | exception J.Parse_error msg -> fail ("malformed line: " ^ msg)
        | kind, atoms, branches, cert, j -> (
          (match kind with
          | "schema" ->
            incr schemas;
            incr span
          | "prefix" ->
            incr prefixes;
            span := !span + J.to_int (J.member "span" j)
          | "static" ->
            incr statics;
            span := !span + J.to_int (J.member "span" j)
          | k -> fail ("unknown certificate kind " ^ k));
          match Smt.Certcheck.validate_query ~atoms ~branches cert with
          | Ok () -> ()
          | Error msg -> fail ("rejected: " ^ msg)))
      lines;
    let time = Unix.gettimeofday () -. t0 in
    if json then
      print_endline
        (J.to_string
           (J.Obj
              [
                ("file", J.Str path);
                ("certificates", J.Int (List.length lines));
                ("schemas", J.Int !schemas);
                ("prefixes", J.Int !prefixes);
                ("statics", J.Int !statics);
                ("positions_covered", J.Int !span);
                ("failed", J.Int !failed);
                ("check_time_us", J.Int (int_of_float (time *. 1e6)));
              ]))
    else
      Printf.printf
        "check-cert: %d certificates (%d schemas, %d pruned prefixes, %d static prunes; \
         %d enumeration positions covered), %d rejected, %.3f s\n"
        (List.length lines) !schemas !prefixes !statics !span !failed time;
    exit (if !failed > 0 then 1 else 0)
  in
  Cmd.v
    (Cmd.info "check-cert"
       ~doc:"Replay a certificate file against the standalone checker (exact rational \
             arithmetic, no solver code): every line must refute its recorded query.  \
             Exit code 1 when any certificate is rejected or malformed.")
    Term.(const run $ file $ json)

(* --- table2 -------------------------------------------------------- *)

let table2_cmd =
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Skip the slowest rows.") in
  let budget =
    Arg.(value & opt float 60.0 & info [ "naive-budget" ] ~docv:"SECONDS"
           ~doc:"Time budget per naive-consensus row before aborting.")
  in
  let format =
    Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: text, markdown or csv.")
  in
  let jobs =
    Arg.(value & opt int (Domain.recommended_domain_count ())
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains discharging schema queries (the rows are identical for \
                   any N; only wall-clock changes).")
  in
  let slice =
    Arg.(value & flag & info [ "slice" ]
           ~doc:"Slice the automata before building the schema universes (rows are \
                 unchanged; universes may shrink).")
  in
  let force =
    Arg.(value & flag & info [ "force" ]
           ~doc:"Run even when the static analyzer reports error-level diagnostics.")
  in
  let zoo =
    Arg.(value & flag & info [ "zoo" ]
           ~doc:"Append one Table-2-style row per (model-zoo entry, property) after \
                 the paper rows (paper-time column is \"-\").")
  in
  let run quick budget format jobs incremental static slice force zoo checkpoint resume
      checkpoint_every memo cache portfolio_check =
    List.iter (gate ~force) [ Bv; Naive; Simplified ];
    if zoo then
      List.iter (fun e -> gate ~force (ZooEntry e)) Models.Zoo.entries;
    install_interrupt_handlers ();
    ensure_checkpoint_dir checkpoint;
    let portfolio = setup_portfolio ~memo ~cache ~check:portfolio_check in
    let limits = { Holistic.Checker.default_limits with jobs; incremental; static } in
    let rows =
      with_input_errors (fun () ->
          Report.table2 ~limits ~slice ?checkpoint_dir:checkpoint ~resume
            ~checkpoint_every ?portfolio ~quick ~naive_budget:budget ()
          @
          if zoo then
            Report.zoo_rows ~limits ~slice ?checkpoint_dir:checkpoint ~resume
              ~checkpoint_every ?portfolio ()
          else [])
    in
    (match format with
     | "text" -> Report.print_text stdout rows
     | "markdown" | "md" -> print_string (Report.to_markdown rows)
     | "csv" -> print_string (Report.to_csv rows)
     | f -> failwith ("unknown format " ^ f));
    save_portfolio ~cache portfolio;
    interrupt_exit ()
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Regenerate the paper's Table 2 (also see bench/main.exe).")
    Term.(const run $ quick $ budget $ format $ jobs $ incremental_arg $ static_arg
          $ slice $ force $ zoo $ checkpoint_arg $ resume_arg $ checkpoint_every_arg
          $ memo_arg $ cache_arg $ portfolio_check_arg)

(* --- serve / submit / daemon ---------------------------------------- *)

(* The verification daemon (lib/service): a coordinator process farms
   contiguous schema-preorder slices of each submitted job to forked,
   supervised worker processes.  Exit-code contract of the clients:
   5 when no daemon is listening at --state, 4 on a bad request
   (unknown model/property/job id). *)

let state_arg =
  Arg.(value & opt string ".holistic-daemon"
       & info [ "state" ] ~docv:"DIR"
           ~doc:"Daemon state directory: Unix-domain socket, job manifest and \
                 checkpoint journals (default: ./.holistic-daemon).")

let failpoint_conv =
  let parse s =
    match Service.Worker.failpoint_of_string s with
    | Ok f -> Ok f
    | Error e -> Error (`Msg e)
  in
  let print fmt f = Format.pp_print_string fmt (Service.Worker.failpoint_to_string f) in
  Arg.conv (parse, print)

let serve_cmd =
  let workers =
    Arg.(value & opt int (max 1 (Domain.recommended_domain_count () - 1))
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker processes (forked, supervised; killed workers are respawned \
                   and their in-flight slice is re-queued).")
  in
  let slice_size =
    Arg.(value & opt int 64 & info [ "slice-size" ] ~docv:"N"
           ~doc:"Positions per work slice.")
  in
  let worker_ckpt_every =
    Arg.(value & opt int 16 & info [ "worker-ckpt-every" ] ~docv:"N"
           ~doc:"Slice checkpoint cadence: a killed worker loses at most N-1 positions \
                 of its in-flight slice.")
  in
  let retry_budget =
    Arg.(value & opt int 3 & info [ "retry-budget" ] ~docv:"N"
           ~doc:"Crashes a slice may suffer without durable progress before its \
                 frontier position is quarantined (the job then degrades to the \
                 fail-soft partial verdict).")
  in
  let hb_timeout =
    Arg.(value & opt float 30.0 & info [ "heartbeat-timeout" ] ~docv:"SECONDS"
           ~doc:"SIGKILL a worker whose reported position stalls this long.")
  in
  let hb_interval =
    Arg.(value & opt float 0.5 & info [ "hb-interval" ] ~docv:"SECONDS"
           ~doc:"Worker heartbeat period.")
  in
  let failpoints =
    Arg.(value & opt_all failpoint_conv []
         & info [ "failpoint" ] ~docv:"SPEC"
             ~doc:"Deterministic fault injection in every worker (repeatable): \
                   worker-crash:N (SIGKILL itself before every Nth discharge), \
                   worker-crash-at:POS, worker-raise-at:POS, worker-hang-at:POS.")
  in
  let cache =
    Arg.(value & opt (some string) None
         & info [ "cache" ] ~docv:"FILE"
             ~doc:"Shared persistent discharge cache: each worker loads it at spawn \
                   and merges its new entries back under a lock file after every \
                   slice.")
  in
  let max_schemas =
    Arg.(value & opt int 100_000 & info [ "max-schemas" ] ~docv:"N"
           ~doc:"Default schema budget for jobs that do not specify one.")
  in
  let run state workers slice_size worker_ckpt_every retry_budget hb_timeout hb_interval
      failpoints cache max_schemas =
    check_cache_readable cache;
    let cfg =
      {
        Service.Coordinator.state_dir = state;
        nworkers = max 1 workers;
        slice_size = max 1 slice_size;
        retry_budget = max 0 retry_budget;
        hb_timeout;
        default_cap = max_schemas;
        worker =
          {
            Service.Worker.cache_path = cache;
            ckpt_every = max 1 worker_ckpt_every;
            hb_interval;
            failpoints;
          };
      }
    in
    Service.Coordinator.serve cfg
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the fault-tolerant verification daemon: accept jobs over a \
             Unix-domain socket, shard each job's schema preorder into slices and \
             farm them to supervised worker processes.  Crashed or hung workers are \
             SIGKILLed and respawned, their slices re-queued with exponential \
             backoff; SIGTERM drains gracefully and a restarted daemon resumes to \
             bit-identical verdicts.")
    Term.(const run $ state_arg $ workers $ slice_size $ worker_ckpt_every
          $ retry_budget $ hb_timeout $ hb_interval $ failpoints $ cache $ max_schemas)

let submit_cmd =
  let max_schemas =
    Arg.(value & opt int 100_000 & info [ "max-schemas" ] ~docv:"N"
           ~doc:"Abort the job after this many schemas.")
  in
  let wait =
    Arg.(value & flag & info [ "wait" ]
           ~doc:"Block until every submitted job finishes and print one result row \
                 (JSON line) per job, in completion order.")
  in
  let local =
    Arg.(value & flag & info [ "local" ]
           ~doc:"Bypass the daemon: run the sequential checker in-process and print \
                 the identical result rows (the reference side of the daemon's \
                 bit-identical soundness gate).")
  in
  let run model spec_name state max_schemas wait local =
    if local then
      let ta = automaton_of model in
      let u = Holistic.Universe.build ta in
      let limits = { Holistic.Checker.default_limits with max_schemas } in
      List.iter
        (fun spec ->
          let r = Holistic.Checker.verify_with_universe ~limits u spec in
          print_endline
            (Jsonc.to_string (Service.Protocol.row_of_result ~model:(model_key model) r)))
        (find_specs model spec_name)
    else
      match Service.Client.connect ~state_dir:state () with
      | Error e ->
        prerr_endline ("holistic submit: " ^ e);
        exit 5
      | Ok c -> (
        match
          Service.Client.submit c ~model:(model_key model) ?spec:spec_name ~max_schemas ()
        with
        | Error e ->
          prerr_endline ("holistic submit: " ^ e);
          Service.Client.close c;
          exit 4
        | Ok ids ->
          (if wait then
             match Service.Client.wait_jobs c ids with
             | Error e ->
               prerr_endline ("holistic submit: " ^ e);
               Service.Client.close c;
               exit 5
             | Ok rows ->
               List.iter (fun (_, row) -> print_endline (Jsonc.to_string row)) rows
           else List.iter (fun id -> Printf.printf "%d\n" id) ids);
          Service.Client.close c)
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a verification job (one per property) to a running daemon and \
             print the job ids — or, with --wait, the result rows.  With --local, \
             run the sequential checker in-process instead and print byte-identical \
             rows for the same jobs.")
    Term.(const run $ model_arg $ spec_arg $ state_arg $ max_schemas $ wait $ local)

let daemon_cmd =
  let action =
    Arg.(required & pos 0 (some (enum [ ("status", `Status); ("shutdown", `Shutdown);
                                        ("cancel", `Cancel); ("ping", `Ping) ])) None
         & info [] ~docv:"ACTION" ~doc:"status, shutdown, cancel or ping.")
  in
  let id =
    Arg.(value & pos 1 (some int) None & info [] ~docv:"ID" ~doc:"Job id (cancel).")
  in
  let run action id state =
    match Service.Client.connect ~retries:3 ~state_dir:state () with
    | Error e ->
      prerr_endline ("holistic daemon: " ^ e);
      exit 5
    | Ok c ->
      let module J = Jsonc in
      let finish r =
        Service.Client.close c;
        match r with
        | Ok j ->
          print_endline (J.to_string j)
        | Error e ->
          prerr_endline ("holistic daemon: " ^ e);
          exit 4
      in
      (match action with
      | `Ping -> finish (Service.Client.request c (J.Obj [ ("t", J.Str "ping") ]))
      | `Status -> finish (Service.Client.request c (J.Obj [ ("t", J.Str "status") ]))
      | `Shutdown ->
        finish
          (Result.map (fun () -> J.Obj [ ("ok", J.Bool true) ]) (Service.Client.shutdown c))
      | `Cancel -> (
        match id with
        | None ->
          prerr_endline "holistic daemon: cancel needs a job id";
          exit 4
        | Some id ->
          finish
            (Service.Client.request c (J.Obj [ ("t", J.Str "cancel"); ("id", J.Int id) ]))))
  in
  Cmd.v
    (Cmd.info "daemon"
       ~doc:"Control a running verification daemon: status (jobs, workers and their \
             pids as JSON), cancel ID, shutdown (graceful drain), ping.")
    Term.(const run $ action $ id $ state_arg)

(* --- lint ----------------------------------------------------------- *)

let lint_cmd =
  let model_opt =
    Arg.(value & pos 0 (some model_conv) None & info [] ~docv:"MODEL"
           ~doc:"Threshold automaton to lint: bv, naive, simplified, benor or a \
                 model-zoo key (default: all four paper models plus every zoo entry).")
  in
  let broken =
    Arg.(value & flag & info [ "broken-resilience" ]
           ~doc:"Lint the simplified model under the weakened resilience condition \
                 n > 2t (its imported justice constraints then fail TA015).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object per automaton.")
  in
  let run model_opt broken json =
    let zoo_models =
      (* The benor zoo entry is the legacy benor model; don't lint the
         same automaton twice. *)
      List.filter_map
        (fun (e : Models.Zoo.entry) ->
          if e.Models.Zoo.key = "benor" then None else Some (ZooEntry e))
        Models.Zoo.entries
    in
    let models =
      match model_opt with
      | Some m -> [ m ]
      | None -> [ Bv; Naive; Simplified; BenOr ] @ zoo_models
    in
    let code =
      List.fold_left
        (fun acc model ->
          let ta, diags = lint_diagnostics ~broken model in
          let name = lint_name model ta in
          if json then print_endline (Analysis.to_json ~ta_name:name diags)
          else begin
            let count s = List.length (List.filter (fun (d : Analysis.diagnostic) -> d.severity = s) diags) in
            Format.printf "%s: %d error(s), %d warning(s)%s@." name
              (count Analysis.Error) (count Analysis.Warning)
              (if diags = [] then " — clean" else "");
            List.iter (fun d -> Format.printf "  %a@." Analysis.pp d) diags
          end;
          max acc (severity_code (Analysis.max_severity diags)))
        0 models
    in
    exit code
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze an automaton and its properties: soundness preconditions \
             of the schema method, resilience satisfiability, dead rules, unreachable \
             locations, unused shared variables, plus the abstract-interpretation \
             passes (TA017-TA024): statically false guards, starved rules and \
             locations, dominated guard atoms, trivial thresholds, constant-zero \
             shared variables, and invariant-fixpoint precision loss.  Exit-code \
             contract: the maximum severity over all linted automata — 0 when every \
             diagnostic is info-level or there are none, 1 when any warning fired, \
             2 when any error fired.  With $(b,--json), diagnostics are listed in a \
             stable (code, subject, message) order, so outputs diff cleanly across \
             runs.")
    Term.(const run $ model_opt $ broken $ json)

let () =
  let doc = "Holistic verification of the Red Belly blockchain consensus (reproduction)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "holistic" ~doc)
                    [ info_cmd; lint_cmd; verify_cmd; check_cert_cmd; explicit_cmd;
                      dot_cmd; simulate_cmd; fuzz_cmd; lemma7_cmd; table2_cmd;
                      serve_cmd; submit_cmd; daemon_cmd ]))
