(* What the checker produces when a property FAILS: weaken the resilience
   condition from n > 3t to n > 2t (tolerating too many Byzantine
   processes) and ask for Agreement's invariant Inv1_0.  The checker
   finds concrete parameters and an accelerated run in which one group of
   correct processes decides 0 while another decides 1 — a double-spend
   scenario.  (The paper reports generating this counterexample in ~4 s.)

   Run with: dune exec examples/broken_resilience.exe *)

let () =
  Format.printf "verifying Inv1_0 on the simplified consensus with n > 2t only...@.@.";
  let t0 = Unix.gettimeofday () in
  let r =
    Holistic.Checker.verify Models.Simplified_ta.automaton_broken_resilience
      Models.Simplified_ta.inv1_0
  in
  match r.outcome with
  | Holistic.Checker.Violated w ->
    Format.printf "%a@." Holistic.Witness.pp w;
    Format.printf "found in %.2f s after %d schemas@."
      (Unix.gettimeofday () -. t0)
      r.stats.schemas_checked;
    (* Replay the same parameters in the explicit-state checker: the
       disagreement is real, not an artefact of acceleration. *)
    (match
       Explicit.check Models.Simplified_ta.automaton_broken_resilience
         Models.Simplified_ta.inv1_0 w.Holistic.Witness.params
     with
     | Explicit.Violated { trace; _ } ->
       Format.printf
         "explicit-state replay at the same parameters confirms it (%d steps)@."
         (List.length trace - 1)
     | Explicit.Holds -> Format.printf "UNEXPECTED: explicit replay disagrees@.")
  | Holistic.Checker.Holds -> Format.printf "UNEXPECTED: no counterexample found@."
  | Holistic.Checker.Aborted reason -> Format.printf "aborted: %s@." reason
  | Holistic.Checker.Partial { quarantined; reason } ->
    Format.printf "partial (%d quarantined positions): %s@." (List.length quarantined)
      reason
