(* The model zoo end-to-end: enumerate Models.Zoo, lint every entry,
   verify its properties against the registry's expected verdicts,
   print the Table-2-style report rows, and show both rejection paths
   for seeded mutants (a lint error, and a counterexample witness).

   Run with: dune exec examples/zoo_demo.exe
   (also wired into `dune runtest`: the demo exits non-zero on any
   lint error, verdict mismatch or uncaught mutant) *)

module Z = Models.Zoo
module S = Ta.Spec

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "  FAIL: %s\n" msg)
    fmt

(* The two Ben-Or rows that need real solver time (~40 s each) are
   covered by the bench sweep (bench/main.exe, BENCH_9.json) and the
   test battery; the demo skips them to stay interactive. *)
let skip_in_demo = [ "BenOr-Agree"; "BenOr-OneProp" ]

let () =
  Format.printf "== the model zoo (%d entries, %d seeded mutants) ==@."
    (List.length Z.entries) (List.length Z.all_mutants);
  List.iter
    (fun (e : Z.entry) ->
      Format.printf "  %-12s %s — %d properties, %d mutant(s)@." e.Z.key e.Z.title
        (List.length e.Z.specs) (List.length e.Z.mutants))
    Z.entries;

  Format.printf "@.== lint: every entry must be free of error-level diagnostics ==@.";
  List.iter
    (fun (e : Z.entry) ->
      let diags =
        Analysis.run ~assume:e.Z.justice_assumption ~specs:(List.map fst e.Z.specs)
          e.Z.automaton
      in
      (match Analysis.errors diags with
      | [] -> Format.printf "  %-12s clean (%d diagnostic(s))@." e.Z.key (List.length diags)
      | errs -> fail "%s: %d lint error(s)" e.Z.key (List.length errs));
      List.iter (fun d -> Format.printf "    %a@." Analysis.pp d) diags)
    Z.entries;

  Format.printf "@.== verify: registry's expected verdict per (entry, property) ==@.";
  let rows =
    List.concat_map
      (fun (e : Z.entry) ->
        let u = Holistic.Universe.build e.Z.automaton in
        List.filter_map
          (fun ((spec : S.t), expected) ->
            if List.mem spec.S.name skip_in_demo then begin
              Format.printf "  %-12s %-16s (skipped in the demo; see bench/main.exe)@."
                e.Z.key spec.S.name;
              None
            end
            else begin
              let r = Holistic.Checker.verify_with_universe u spec in
              (match (expected, r.Holistic.Checker.outcome) with
              | Z.Holds, Holistic.Checker.Holds -> ()
              | Z.Violated, Holistic.Checker.Violated _ -> ()
              | expected, _ ->
                fail "%s/%s: expected %s" e.Z.key spec.S.name
                  (Z.verdict_to_string expected));
              Some
                (Report.row_of_result ~ta_label:("zoo: " ^ e.Z.key)
                   ~size:(Report.size_string e.Z.automaton) ~paper:"-" r)
            end)
          e.Z.specs)
      Z.entries
  in
  print_newline ();
  Report.print_text stdout rows;

  Format.printf "@.== mutants: each one caught the way its registry entry declares ==@.";
  List.iter
    (fun ((e : Z.entry), (m : Z.mutant)) ->
      match m.Z.rejection with
      | Z.Lint code ->
        let diags = Analysis.run ~specs:(List.map fst e.Z.specs) m.Z.mutant_automaton in
        let hit =
          List.exists (fun (d : Analysis.diagnostic) -> d.Analysis.code = code)
            (Analysis.errors diags)
        in
        if hit then
          Format.printf "  %-26s rejected by lint (%s), as registered@." m.Z.mutant_key
            code
        else fail "%s: lint did not report %s" m.Z.mutant_key code
      | Z.Checker spec -> (
        let r = Holistic.Checker.verify m.Z.mutant_automaton spec in
        match r.Holistic.Checker.outcome with
        | Holistic.Checker.Violated w ->
          Format.printf "  %-26s refuted by a %d-step witness to %s@." m.Z.mutant_key
            (List.length w.Holistic.Witness.steps)
            spec.S.name
        | _ -> fail "%s: checker did not produce a counterexample" m.Z.mutant_key)
      | Z.Fuzz { spec; n; t; f; value; sched_seed } -> (
        (* Checker blind on the mutant, simulation not: the divergence
           pair that motivates holistic (multi-layer) verification. *)
        let r = Holistic.Checker.verify m.Z.mutant_automaton spec in
        match (r.Holistic.Checker.outcome, Fuzz.Crossval.realize ~n ~t ~f ~value ~sched_seed) with
        | Holistic.Checker.Holds, Some trace ->
          Format.printf
            "  %-26s checker-invisible (%s holds) but fuzz violates it in %d events@."
            m.Z.mutant_key spec.S.name
            (List.length trace.Fuzz.Trace.events)
        | Holistic.Checker.Holds, None ->
          fail "%s: fuzz oracle found no violation at n=%d t=%d f=%d" m.Z.mutant_key n
            t f
        | _, _ -> fail "%s: checker unexpectedly rejected the mutant" m.Z.mutant_key))
    Z.all_mutants;

  if !failures > 0 then begin
    Printf.printf "\nzoo demo: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "\nzoo demo: all gates green"
