(* The static analyzer in action: lint a hand-written automaton with
   several planted defects, then slice a model with dead rules and show
   the schema universe shrink.

   Run with: dune exec examples/lint_demo.exe *)

module A = Ta.Automaton
module G = Ta.Guard
module P = Ta.Pexpr

(* A small "echo broadcast" sketch with typical authoring mistakes:
   - location WAIT is unreachable (the rule meant to reach it targets
     DONE instead);
   - rule "panic" waits for echoes >= t+1 but nothing increments
     [panics], so it can never fire;
   - shared variable [spare] is incremented yet never read. *)
let sketch =
  A.make ~name:"echo_sketch" ~params:[ "n"; "t" ] ~shared:[ "echoes"; "panics"; "spare" ]
    ~locations:[ "INIT"; "SENT"; "WAIT"; "DONE"; "PANIC" ]
    ~initial:[ "INIT" ]
    ~resilience:[ P.of_terms [ ("n", 1); ("t", -3) ] (-1); P.of_terms [ ("t", 1) ] 0 ]
    ~population:(P.of_terms [ ("n", 1); ("t", -1) ] 0)
    ~rules:
      [
        A.rule "send" ~source:"INIT" ~target:"SENT" ~update:[ ("echoes", 1); ("spare", 1) ];
        A.rule "deliver" ~source:"SENT" ~target:"DONE"
          ~guard:(G.ge1 "echoes" (P.of_terms [ ("t", 1) ] 1));
        A.rule "panic" ~source:"SENT" ~target:"PANIC"
          ~guard:(G.ge1 "panics" (P.of_terms [ ("t", 1) ] 1));
      ]
    ()

let () =
  Format.printf "== lint of a hand-written automaton ==@.";
  let diags = Analysis.run sketch in
  List.iter (fun d -> Format.printf "  %a@." Analysis.pp d) diags;
  Format.printf "@.== slicing a model with injected dead rules ==@.";
  (* Plant a dead corner into the simplified consensus TA: an unreachable
     location whose outgoing rule carries a fresh (satisfiable, producible)
     guard atom.  Unsliced, that atom enlarges every context. *)
  let base = Models.Simplified_ta.automaton in
  let mutant =
    {
      base with
      locations = base.A.locations @ [ "ZZ" ];
      rules =
        base.A.rules
        @ [ A.rule "zz" ~source:"ZZ" ~target:"D1" ~guard:(G.ge1 "bvb0" (P.const 5)) ];
    }
  in
  let sliced, diags = Analysis.slice mutant in
  List.iter (fun d -> Format.printf "  %a@." Analysis.pp d) diags;
  let count ta =
    match
      Holistic.Schema.count (Holistic.Universe.build ta) Models.Simplified_ta.inv2_0
        ~limit:1_000_000
    with
    | `Exactly n -> string_of_int n
    | `More_than n -> Printf.sprintf ">%d" n
  in
  Format.printf "schemas for Inv2_0: unsliced %s, sliced %s (pristine %s)@."
    (count mutant) (count sliced) (count base)
