(** A discrete-event simulator of an asynchronous reliable fully
    connected point-to-point network (paper, Section 2): there is no
    bound on message delay, but every message sent to a correct process
    is eventually delivered.  At each step exactly one pending message is
    delivered; the {!Scheduler} chooses which, which models the
    adversary's control over asynchrony. *)

type 'msg t

(** A pending delivery. *)
type 'msg pending = { src : int; dest : int; msg : 'msg; seq : int }

(** [create ~n] builds a network for processes [0 .. n-1] with no pending
    messages. *)
val create : n:int -> 'msg t

val size : 'msg t -> int

(** [send net ~src ~dest msg] enqueues a message. *)
val send : 'msg t -> src:int -> dest:int -> 'msg -> unit

(** [broadcast net ~src msg] sends to every process, including [src]
    itself (the pseudocode's [broadcast] primitive). *)
val broadcast : 'msg t -> src:int -> 'msg -> unit

val pending : 'msg t -> 'msg pending list
val pending_count : 'msg t -> int

(** [deliver net p] removes pending delivery [p] and returns it.
    @raise Invalid_argument if [p] is not pending. *)
val deliver : 'msg t -> 'msg pending -> 'msg pending

(** [delivered_count net] counts deliveries so far. *)
val delivered_count : 'msg t -> int
