type 'msg t =
  | Fifo
  | Random of Random.State.t
  | Custom of ('msg Network.pending list -> 'msg Network.pending option)

let random ~seed = Random (Random.State.make [| seed |])

let oldest pending =
  match pending with
  | [] -> invalid_arg "Scheduler.pick: no pending messages"
  | p :: rest ->
    List.fold_left
      (fun (best : _ Network.pending) (q : _ Network.pending) ->
        if q.seq < best.seq then q else best)
      p rest

let pick sched pending =
  match pending with
  | [] -> invalid_arg "Scheduler.pick: no pending messages"
  | _ -> (
    match sched with
    | Fifo -> oldest pending
    | Random st -> List.nth pending (Random.State.int st (List.length pending))
    | Custom f -> ( match f pending with Some p -> p | None -> oldest pending))
