type 'msg pending = { src : int; dest : int; msg : 'msg; seq : int }

type 'msg t = {
  n : int;
  mutable queue : 'msg pending list;  (* newest first *)
  mutable next_seq : int;
  mutable delivered : int;
}

let create ~n = { n; queue = []; next_seq = 0; delivered = 0 }

let size net = net.n

let send net ~src ~dest msg =
  if dest < 0 || dest >= net.n then invalid_arg "Network.send: bad destination";
  net.queue <- { src; dest; msg; seq = net.next_seq } :: net.queue;
  net.next_seq <- net.next_seq + 1

let broadcast net ~src msg =
  for dest = 0 to net.n - 1 do
    send net ~src ~dest msg
  done

let pending net = List.rev net.queue

let pending_count net = List.length net.queue

let deliver net p =
  let found = List.exists (fun q -> q.seq = p.seq) net.queue in
  if not found then invalid_arg "Network.deliver: not pending";
  net.queue <- List.filter (fun q -> q.seq <> p.seq) net.queue;
  net.delivered <- net.delivered + 1;
  p

let delivered_count net = net.delivered
