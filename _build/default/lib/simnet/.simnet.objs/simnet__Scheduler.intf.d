lib/simnet/scheduler.mli: Network Random
