lib/simnet/network.mli:
