lib/simnet/scheduler.ml: List Network Random
