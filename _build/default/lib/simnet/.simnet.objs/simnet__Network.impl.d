lib/simnet/network.ml: List
