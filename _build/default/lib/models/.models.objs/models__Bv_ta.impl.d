lib/models/bv_ta.ml: List Params Printf Ta
