lib/models/params.ml: Ta
