lib/models/ben_or.ml: Params Ta
