lib/models/simplified_ta.ml: List Params Ta
