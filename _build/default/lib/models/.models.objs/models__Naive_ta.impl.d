lib/models/naive_ta.ml: List Params Ta
