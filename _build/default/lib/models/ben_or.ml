(* One round of Ben-Or's randomized binary consensus [8], the classic
   target of the threshold-automata verification line the paper builds on
   ([10]; Section 7).  Included to show the checker generalizes beyond
   the paper's three automata; it also exercises guards with coefficient
   2 (the (n+t)/2 supermajority) and conjunctive guards.

   Round structure:
   - phase 1: broadcast R(est); on n-t R-messages, send P(v, D) if more
     than (n+t)/2 of them carried v, else P(?);
   - phase 2: on n-t P-messages: decide v on t+1 D-votes for v; adopt v
     on at least one D-vote; otherwise flip a coin.

   Locations: Vv (input v) -> Wv (R sent) -> SPv / SPQ (P(v,D) / P(?)
   sent) -> Dv (decided v) | Ev (adopted v) | C (coin).

   Shared: s0, s1 count R-messages, p0, p1, pq count P-messages from
   correct processes; Byzantine contributions are discounted in the
   guards as usual (Section 3.1).

   Monotone over-approximation: our guards are lower thresholds only, so
   the conditions "no supermajority" (for P(?)) and "no D-vote" (for the
   coin) are dropped, and the priority of deciding over adopting is
   relaxed.  The modelled transition relation strictly contains
   Ben-Or's, hence any SAFETY property verified here holds for the real
   round.  (Precise Ben-Or automata need falling guards, which the
   schema checker here does not support; see [64].) *)

module A = Ta.Automaton
module G = Ta.Guard
module C = Ta.Cond
module S = Ta.Spec
module Pexpr = Ta.Pexpr

let locations = [ "V0"; "V1"; "W0"; "W1"; "SP0"; "SP1"; "SPQ"; "D0"; "D1"; "E0"; "E1"; "CN" ]

(* Phase-1 quorum: received n - t messages, f of them possibly Byzantine. *)
let r_quorum = G.ge [ ("s0", 1); ("s1", 1) ] Params.ntf

(* Supermajority for v: 2 * received_v > n + t, i.e. with f Byzantine
   contributions 2*s_v >= n + t + 1 - 2f. *)
let supermajority v =
  G.ge
    [ ("s" ^ v, 2) ]
    (Pexpr.of_terms [ ("n", 1); ("t", 1); ("f", -2) ] 1)

(* Phase-2 quorum. *)
let p_quorum = G.ge [ ("p0", 1); ("p1", 1); ("pq", 1) ] Params.ntf

(* t+1 D-votes for v / at least one D-vote for v. *)
let d_votes v = G.ge1 ("p" ^ v) Params.t1f
let some_d_vote v = G.ge1 ("p" ^ v) (Pexpr.of_terms [ ("f", -1) ] 1)

let rule = A.rule

let automaton =
  A.make ~name:"ben_or_round" ~params:Params.names
    ~shared:[ "s0"; "s1"; "p0"; "p1"; "pq" ] ~locations ~initial:[ "V0"; "V1" ]
    ~resilience:Params.resilience ~population:Params.population
    ~rules:
      [
        rule "b1" ~source:"V0" ~target:"W0" ~update:[ ("s0", 1) ];
        rule "b2" ~source:"V1" ~target:"W1" ~update:[ ("s1", 1) ];
        (* Phase 1 -> phase 2 sends; the supermajority guards include the
           quorum (they imply enough messages only together with it, so
           both are required). *)
        rule "b3" ~source:"W0" ~target:"SP0" ~guard:(r_quorum @ supermajority "0")
          ~update:[ ("p0", 1) ];
        rule "b4" ~source:"W0" ~target:"SP1" ~guard:(r_quorum @ supermajority "1")
          ~update:[ ("p1", 1) ];
        rule "b5" ~source:"W0" ~target:"SPQ" ~guard:r_quorum ~update:[ ("pq", 1) ];
        rule "b6" ~source:"W1" ~target:"SP0" ~guard:(r_quorum @ supermajority "0")
          ~update:[ ("p0", 1) ];
        rule "b7" ~source:"W1" ~target:"SP1" ~guard:(r_quorum @ supermajority "1")
          ~update:[ ("p1", 1) ];
        rule "b8" ~source:"W1" ~target:"SPQ" ~guard:r_quorum ~update:[ ("pq", 1) ];
        (* Phase 2 outcomes, from each sending location. *)
        rule "b9" ~source:"SP0" ~target:"D0" ~guard:(p_quorum @ d_votes "0");
        rule "b10" ~source:"SP0" ~target:"D1" ~guard:(p_quorum @ d_votes "1");
        rule "b11" ~source:"SP0" ~target:"E0" ~guard:(p_quorum @ some_d_vote "0");
        rule "b12" ~source:"SP0" ~target:"E1" ~guard:(p_quorum @ some_d_vote "1");
        rule "b13" ~source:"SP0" ~target:"CN" ~guard:p_quorum;
        rule "b14" ~source:"SP1" ~target:"D0" ~guard:(p_quorum @ d_votes "0");
        rule "b15" ~source:"SP1" ~target:"D1" ~guard:(p_quorum @ d_votes "1");
        rule "b16" ~source:"SP1" ~target:"E0" ~guard:(p_quorum @ some_d_vote "0");
        rule "b17" ~source:"SP1" ~target:"E1" ~guard:(p_quorum @ some_d_vote "1");
        rule "b18" ~source:"SP1" ~target:"CN" ~guard:p_quorum;
        rule "b19" ~source:"SPQ" ~target:"D0" ~guard:(p_quorum @ d_votes "0");
        rule "b20" ~source:"SPQ" ~target:"D1" ~guard:(p_quorum @ d_votes "1");
        rule "b21" ~source:"SPQ" ~target:"E0" ~guard:(p_quorum @ some_d_vote "0");
        rule "b22" ~source:"SPQ" ~target:"E1" ~guard:(p_quorum @ some_d_vote "1");
        rule "b23" ~source:"SPQ" ~target:"CN" ~guard:p_quorum;
      ]
    ()

(* No two correct processes decide differently in a round. *)
let agreement =
  S.invariant ~name:"BenOr-Agree" ~ltl:"<>(k[D0] != 0) => [](k[D1] = 0)"
    ~bad:
      [
        ("a process decides 0", C.counter_ge "D0" 1);
        ("a process decides 1", C.counter_ge "D1" 1);
      ]
    ()

(* A decided value cannot appear from nowhere: with no process proposing
   1, nobody decides 1 (even though a Byzantine D-vote may still flip an
   estimate — deciding needs t+1 votes). *)
let no_decision_from_nowhere =
  S.invariant ~name:"BenOr-Valid-D" ~ltl:"[](k[V1] = 0) => [](k[D1] = 0)"
    ~init:(C.empty "V1")
    ~bad:[ ("1 decided", C.counter_ge "D1" 1) ]
    ()

(* Deciding v requires a supermajority for v in phase 1: the two
   supermajorities are incompatible, so the P(v,D) senders are
   unanimous. *)
let unanimous_d_votes =
  S.invariant ~name:"BenOr-OneProp" ~ltl:"[](p0 = 0 \\/ p1 = 0)"
    ~bad:
      [
        ("P(0,D) sent", C.shared_ge [ ("p0", 1) ] (Pexpr.const 1));
        ("P(1,D) sent", C.shared_ge [ ("p1", 1) ] (Pexpr.const 1));
      ]
    ()

let all_specs = [ agreement; no_decision_from_nowhere; unanimous_d_votes ]
