(* The naive threshold automaton of the DBFT Byzantine consensus (paper,
   Fig. 3 and Table 3): the full bv-broadcast automaton of Fig. 2 is
   embedded twice (once per round of a superround), with the decision
   layer of Algorithm 1 on top.

   Aux variables a0/a1 count the auxiliary messages broadcast by correct
   processes upon their first bv-delivery (Algorithm 1, line 8): a
   process delivering v first broadcasts the singleton {v}.

   This automaton is what the paper could NOT verify: 14 unique guards
   make the schema space explode (Table 2 reports >24h / >100,000
   schemas).  We keep it for exactly that experiment. *)

module A = Ta.Automaton
module G = Ta.Guard
module C = Ta.Cond
module S = Ta.Spec

let bv_locs sfx =
  List.map (fun l -> l ^ sfx)
    [ "V0"; "V1"; "B0"; "B1"; "B01"; "C0"; "C1"; "CB0"; "CB1"; "C01" ]

let first_half = bv_locs "" @ [ "E0"; "E1"; "D1" ]
let second_half = bv_locs "x" @ [ "E0x"; "E1x"; "D0" ]
let locations = first_half @ second_half
let finals = [ "D0"; "E0x"; "E1x" ]
let interior = List.filter (fun l -> not (List.mem l finals)) locations

let rule = A.rule

(* One half of the automaton.  [decide0]/[decide1]/[mixed] are the
   decision-layer targets for qualifiers {0}, {1} and {0,1}. *)
let half_rules sfx ~decide0 ~decide1 ~mixed =
  let l name = name ^ sfx in
  let v name = name ^ sfx in
  let r name = "r" ^ name ^ sfx in
  [
    (* bv-broadcast part (Fig. 2), with aux increments on first delivery. *)
    rule (r "1") ~source:(l "V0") ~target:(l "B0") ~update:[ (v "b0", 1) ];
    rule (r "2") ~source:(l "V1") ~target:(l "B1") ~update:[ (v "b1", 1) ];
    rule (r "3") ~source:(l "B0") ~target:(l "C0")
      ~guard:(G.ge1 (v "b0") Params.t2f) ~update:[ (v "a0", 1) ];
    rule (r "4") ~source:(l "B0") ~target:(l "B01")
      ~guard:(G.ge1 (v "b1") Params.t1f) ~update:[ (v "b1", 1) ];
    rule (r "5") ~source:(l "B1") ~target:(l "B01")
      ~guard:(G.ge1 (v "b0") Params.t1f) ~update:[ (v "b0", 1) ];
    rule (r "6") ~source:(l "B1") ~target:(l "C1")
      ~guard:(G.ge1 (v "b1") Params.t2f) ~update:[ (v "a1", 1) ];
    rule (r "7") ~source:(l "C0") ~target:(l "CB0")
      ~guard:(G.ge1 (v "b1") Params.t1f) ~update:[ (v "b1", 1) ];
    rule (r "8") ~source:(l "B01") ~target:(l "CB0")
      ~guard:(G.ge1 (v "b0") Params.t2f) ~update:[ (v "a0", 1) ];
    rule (r "9") ~source:(l "CB0") ~target:(l "C01")
      ~guard:(G.ge1 (v "b1") Params.t2f);
    rule (r "10") ~source:(l "C1") ~target:(l "CB1")
      ~guard:(G.ge1 (v "b0") Params.t1f) ~update:[ (v "b0", 1) ];
    rule (r "11") ~source:(l "B01") ~target:(l "CB1")
      ~guard:(G.ge1 (v "b1") Params.t2f) ~update:[ (v "a1", 1) ];
    rule (r "12") ~source:(l "CB1") ~target:(l "C01")
      ~guard:(G.ge1 (v "b0") Params.t2f);
    (* Decision layer (Algorithm 1, lines 9-13). *)
    rule (r "13") ~source:(l "C0") ~target:decide0 ~guard:(G.ge1 (v "a0") Params.ntf);
    rule (r "14") ~source:(l "CB0") ~target:decide0 ~guard:(G.ge1 (v "a0") Params.ntf);
    rule (r "15") ~source:(l "C1") ~target:decide1 ~guard:(G.ge1 (v "a1") Params.ntf);
    rule (r "16") ~source:(l "CB1") ~target:decide1 ~guard:(G.ge1 (v "a1") Params.ntf);
    rule (r "17") ~source:(l "C01") ~target:decide0 ~guard:(G.ge1 (v "a0") Params.ntf);
    rule (r "18") ~source:(l "C01") ~target:mixed
      ~guard:(G.ge [ (v "a0", 1); (v "a1", 1) ] Params.ntf);
    rule (r "19") ~source:(l "C01") ~target:decide1 ~guard:(G.ge1 (v "a1") Params.ntf);
  ]

let shared =
  [ "b0"; "b1"; "a0"; "a1"; "b0x"; "b1x"; "a0x"; "a1x" ]

let automaton =
  A.make ~name:"naive_consensus" ~params:Params.names ~shared ~locations
    ~initial:[ "V0"; "V1" ] ~resilience:Params.resilience
    ~population:Params.population
    ~rules:
      (half_rules "" ~decide0:"E0" ~decide1:"D1" ~mixed:"E1"
      @ [
          rule "r20" ~source:"E0" ~target:"V0x";
          rule "r21" ~source:"E1" ~target:"V1x";
          rule "r22" ~source:"D1" ~target:"V1x";
        ]
      @ half_rules "x" ~decide0:"D0" ~decide1:"E1x" ~mixed:"E0x")
    ~round_switch:[ ("D0", "V0"); ("E0x", "V0"); ("E1x", "V1") ]
    ~self_loops:4 ()

(* The same three properties the paper attempted on the naive TA. *)
let inv1_0 =
  S.invariant ~name:"Inv1_0" ~ltl:"<>(k[D0] != 0) => [](k[D1] = 0 /\\ k[E1x] = 0)"
    ~bad:
      [
        ("a process decides 0", C.counter_ge "D0" 1);
        ("a process decides 1 or keeps estimate 1", C.some_nonempty [ "D1"; "E1x" ]);
      ]
    ()

let inv2_0 =
  S.invariant ~name:"Inv2_0" ~ltl:"[](k[V0] = 0) => [](k[D0] = 0 /\\ k[E0x] = 0)"
    ~init:(C.empty "V0")
    ~bad:[ ("0 decided or kept", C.some_nonempty [ "D0"; "E0x" ]) ]
    ()

let sround_term =
  S.liveness ~name:"SRound-Term" ~ltl:"<>(only D0, E0x, E1x are non-empty)"
    ~target_violated:(C.some_nonempty interior)
    ()

let table2_specs = [ inv1_0; inv2_0; sround_term ]
