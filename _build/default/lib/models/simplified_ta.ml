(* The simplified threshold automaton of the DBFT Byzantine consensus
   (paper, Fig. 4), obtained by replacing the inner bv-broadcast with a
   gadget that captures its verified properties.

   One round of this TA is a superround: round 2R-1 (odd, deciding 1)
   followed by round 2R (even, deciding 0).  First-half locations are
   unsuffixed, second-half locations carry an "x" suffix (following the
   ByMC specification of Appendix F).

   Gadget semantics per half:
   - Vv --(bvb_v++)--> M : the process invokes bv-broadcast with value v;
   - M --(bvb_v >= 1 |-> aux_v++)--> Mv : the process bv-delivers v first
     (possible only if some correct process broadcast v: this bakes
     BV-Justification into the structure) and broadcasts its aux message;
   - Mv --(bvb_w >= 1)--> M01 : the other value w is delivered later;
   - decision layer: aux thresholds n-t-f pick the qualifiers set:
     first half  {1}->D1 (decide), {0}->E0, {0,1}->E1;
     second half {0}->D0 (decide), {1}->E1x, {0,1}->E0x.

   The remaining bv-broadcast properties become justice constraints
   (Appendix F): BV-Termination empties M; BV-Obligation forces Mv to
   M01 once bvb_w >= t+1; BV-Uniformity forces Mv to M01 once aux_w >= 1. *)

module A = Ta.Automaton
module G = Ta.Guard
module C = Ta.Cond
module S = Ta.Spec
module Pexpr = Ta.Pexpr

let first_half = [ "V0"; "V1"; "M"; "M0"; "M1"; "M01"; "E0"; "E1"; "D1" ]
let second_half = [ "V0x"; "V1x"; "Mx"; "M0x"; "M1x"; "M01x"; "E0x"; "E1x"; "D0" ]
let locations = first_half @ second_half
let finals = [ "D0"; "E0x"; "E1x" ]
let interior = List.filter (fun l -> not (List.mem l finals)) locations

let rule = A.rule

(* Rules of one half; [sfx] is "" or "x"; [decide] and [est0] and [est1]
   are the targets for qualifiers {parity}, {1 - parity}, {0, 1}. *)
let half_rules sfx ~decide0 ~decide1 ~mixed =
  let l name = name ^ sfx in
  let v name = name ^ sfx in
  [
    rule ("s1" ^ sfx) ~source:(l "V0") ~target:(l "M") ~update:[ (v "bvb0", 1) ];
    rule ("s2" ^ sfx) ~source:(l "V1") ~target:(l "M") ~update:[ (v "bvb1", 1) ];
    rule ("s3" ^ sfx) ~source:(l "M") ~target:(l "M0")
      ~guard:(G.ge1 (v "bvb0") (Pexpr.const 1))
      ~update:[ (v "aux0", 1) ] ~fairness:A.Unfair;
    rule ("s4" ^ sfx) ~source:(l "M") ~target:(l "M1")
      ~guard:(G.ge1 (v "bvb1") (Pexpr.const 1))
      ~update:[ (v "aux1", 1) ] ~fairness:A.Unfair;
    rule ("s5" ^ sfx) ~source:(l "M0") ~target:decide0
      ~guard:(G.ge1 (v "aux0") Params.ntf);
    rule ("s6" ^ sfx) ~source:(l "M0") ~target:(l "M01")
      ~guard:(G.ge1 (v "bvb1") (Pexpr.const 1))
      ~fairness:A.Unfair;
    rule ("s7" ^ sfx) ~source:(l "M1") ~target:(l "M01")
      ~guard:(G.ge1 (v "bvb0") (Pexpr.const 1))
      ~fairness:A.Unfair;
    rule ("s8" ^ sfx) ~source:(l "M1") ~target:decide1
      ~guard:(G.ge1 (v "aux1") Params.ntf);
    rule ("s9" ^ sfx) ~source:(l "M01") ~target:decide0
      ~guard:(G.ge1 (v "aux0") Params.ntf);
    rule ("s10" ^ sfx) ~source:(l "M01") ~target:mixed
      ~guard:(G.ge [ (v "aux0", 1); (v "aux1", 1) ] Params.ntf);
    rule ("s11" ^ sfx) ~source:(l "M01") ~target:decide1
      ~guard:(G.ge1 (v "aux1") Params.ntf);
  ]

(* Justice constraints of one half (Appendix F). *)
let half_justice sfx =
  let l name = name ^ sfx in
  let v name = name ^ sfx in
  [
    (* BV-Termination: eventually every process delivers something. *)
    { A.loc = l "M"; unless = G.tt };
    (* BV-Obligation: t+1 correct broadcasts of w force delivery of w. *)
    { A.loc = l "M0"; unless = G.ge1 (v "bvb1") Params.t1 };
    { A.loc = l "M1"; unless = G.ge1 (v "bvb0") Params.t1 };
    (* BV-Uniformity: one delivery of w forces delivery of w everywhere. *)
    { A.loc = l "M0"; unless = G.ge1 (v "aux1") (Pexpr.const 1) };
    { A.loc = l "M1"; unless = G.ge1 (v "aux0") (Pexpr.const 1) };
  ]

let shared =
  [ "bvb0"; "bvb1"; "aux0"; "aux1"; "bvb0x"; "bvb1x"; "aux0x"; "aux1x" ]

let make_with_resilience ~name resilience =
  A.make ~name ~params:Params.names ~shared ~locations ~initial:[ "V0"; "V1" ]
    ~resilience ~population:Params.population
    ~rules:
      ((* First half: odd round, parity 1: qualifiers {1} decides. *)
       half_rules "" ~decide0:"E0" ~decide1:"D1" ~mixed:"E1"
      @ [
          (* Round switch inside the superround (solid rules s12-s14). *)
          rule "s12" ~source:"E0" ~target:"V0x";
          rule "s13" ~source:"E1" ~target:"V1x";
          rule "s14" ~source:"D1" ~target:"V1x";
        ]
      (* Second half: even round, parity 0: qualifiers {0} decides. *)
      @ half_rules "x" ~decide0:"D0" ~decide1:"E1x" ~mixed:"E0x")
    ~justice:(half_justice "" @ half_justice "x")
    ~round_switch:[ ("D0", "V0"); ("E0x", "V0"); ("E1x", "V1") ]
    ~self_loops:12 ()

let automaton = make_with_resilience ~name:"simplified_consensus" Params.resilience

(* Same automaton under the broken resilience condition n > 2t, used to
   regenerate the paper's counterexample to Inv1_0 (Section 6). *)
let automaton_broken_resilience =
  make_with_resilience ~name:"simplified_consensus_broken" Params.broken_resilience

(* ------------------------------------------------------------------ *)
(* Specifications (Section 5 and Appendix F).                           *)

(* Inv1_v: <>(k[Dv] <> 0) => [](k[D(1-v)] = 0 /\ k[E(1-v)x] = 0).
   Agreement follows from Inv1_0 /\ Inv1_1 (paper, Section 5.1). *)
let inv1_0 =
  S.invariant ~name:"Inv1_0" ~ltl:"<>(k[D0] != 0) => [](k[D1] = 0 /\\ k[E1x] = 0)"
    ~bad:
      [
        ("a process decides 0", C.counter_ge "D0" 1);
        ("a process decides 1 or keeps estimate 1", C.some_nonempty [ "D1"; "E1x" ]);
      ]
    ()

let inv1_1 =
  S.invariant ~name:"Inv1_1" ~ltl:"<>(k[D1] != 0) => [](k[D0] = 0 /\\ k[E0x] = 0)"
    ~bad:
      [
        ("a process decides 1", C.counter_ge "D1" 1);
        ("a process decides 0 or keeps estimate 0", C.some_nonempty [ "D0"; "E0x" ]);
      ]
    ()

(* Inv2_v: [](k[Vv] = 0) => [](k[Dv] = 0 /\ k[Evx] = 0).
   Validity follows from Inv2_0 /\ Inv2_1.  Vv is initial and has no
   incoming rule in the one-round automaton, so the premise is a
   constraint on the initial configuration. *)
let inv2_0 =
  S.invariant ~name:"Inv2_0" ~ltl:"[](k[V0] = 0) => [](k[D0] = 0 /\\ k[E0x] = 0)"
    ~init:(C.empty "V0")
    ~bad:[ ("0 decided or kept", C.some_nonempty [ "D0"; "E0x" ]) ]
    ()

let inv2_1 =
  S.invariant ~name:"Inv2_1" ~ltl:"[](k[V1] = 0) => [](k[D1] = 0 /\\ k[E1x] = 0)"
    ~init:(C.empty "V1")
    ~bad:[ ("1 decided or kept", C.some_nonempty [ "D1"; "E1x" ]) ]
    ()

(* Dec: if no process starts the superround with value v, every process
   decides 1-v in it. *)
let dec_0 =
  S.invariant ~name:"Dec_0" ~ltl:"[](k[V0] = 0) => [](k[E0] = 0 /\\ k[E1] = 0)"
    ~init:(C.empty "V0")
    ~bad:[ ("some process fails to decide 1", C.some_nonempty [ "E0"; "E1" ]) ]
    ()

let dec_1 =
  S.invariant ~name:"Dec_1" ~ltl:"[](k[V1] = 0) => [](k[E0x] = 0 /\\ k[E1x] = 0)"
    ~init:(C.empty "V1")
    ~bad:[ ("some process fails to decide 0", C.some_nonempty [ "E0x"; "E1x" ]) ]
    ()

(* Good: a (r mod 2)-good bv-broadcast round forces progress (Corollary 5
   feeds the premise; Theorem 6 combines Good with Dec). *)
let good_0 =
  S.invariant ~name:"Good_0" ~ltl:"[](k[M0] = 0) => [](k[D0] = 0 /\\ k[E0x] = 0)"
    ~never_enter:[ "M0" ]
    ~bad:[ ("0 decided or kept", C.some_nonempty [ "D0"; "E0x" ]) ]
    ()

let good_1 =
  S.invariant ~name:"Good_1" ~ltl:"[](k[M1x] = 0) => [](k[E1x] = 0)"
    ~never_enter:[ "M1x" ]
    ~bad:[ ("estimate 1 kept", C.some_nonempty [ "E1x" ]) ]
    ()

(* SRoundTerm: every superround eventually terminates — all processes end
   in D0, E0x or E1x (under the fairness premises, which the checker
   derives from rule fairness and the justice constraints). *)
let sround_term =
  S.liveness ~name:"SRound-Term"
    ~ltl:"<>(only D0, E0x, E1x are non-empty)"
    ~target_violated:(C.some_nonempty interior)
    ()

let table2_specs = [ inv1_0; inv2_0; sround_term; good_0; dec_0 ]

let all_specs =
  [ inv1_0; inv1_1; inv2_0; inv2_1; dec_0; dec_1; good_0; good_1; sround_term ]
