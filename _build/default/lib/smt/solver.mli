(** DPLL(T) solver for boolean combinations of linear integer atoms:
    a boolean abstraction handled by {!Sat} with theory checks delegated
    to {!Lia}.

    This is the general entry point; the model-checker's schema queries
    are pure conjunctions and call {!Lia} directly. *)

module B := Numbers.Bigint

type result =
  | Sat of (int * B.t) list
  | Unsat
  | Unknown

(** [solve ?max_steps f] decides [f] with all variables ranging over the
    integers. *)
val solve : ?max_steps:int -> Formula.t -> result
