module Q = Numbers.Rational

type t = { r : Q.t; d : Q.t }

let zero = { r = Q.zero; d = Q.zero }
let of_rational r = { r; d = Q.zero }
let make r d = { r; d }
let add a b = { r = Q.add a.r b.r; d = Q.add a.d b.d }
let sub a b = { r = Q.sub a.r b.r; d = Q.sub a.d b.d }
let neg a = { r = Q.neg a.r; d = Q.neg a.d }
let scale q a = { r = Q.mul q a.r; d = Q.mul q a.d }

let compare a b =
  let c = Q.compare a.r b.r in
  if c <> 0 then c else Q.compare a.d b.d

let equal a b = compare a b = 0
let is_rational a = Q.is_zero a.d

let to_string a =
  if Q.is_zero a.d then Q.to_string a.r
  else Printf.sprintf "%s + %s*delta" (Q.to_string a.r) (Q.to_string a.d)

let pp fmt a = Format.pp_print_string fmt (to_string a)
