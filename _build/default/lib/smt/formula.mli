(** Boolean combinations of linear atoms. *)

module Q := Numbers.Rational

type t =
  | True
  | False
  | Atom of Atom.t
  | Not of t
  | And of t list
  | Or of t list

(** {1 Smart constructors} — simplify trivial cases. *)

val tt : t
val ff : t
val atom : Atom.t -> t
val not_ : t -> t
val conj : t list -> t
val disj : t list -> t
val implies : t -> t -> t
val iff : t -> t -> t

val atoms : t -> Atom.t list
val vars : t -> int list

(** [eval assign f] evaluates under a rational assignment. *)
val eval : (int -> Q.t) -> t -> bool

(** [nnf f] pushes negations to atoms.  Negated equalities become
    disjunctions of strict inequalities. *)
val nnf : t -> t

(** [dnf f] converts to disjunctive normal form: a list of conjunctions
    of atoms (an empty outer list is [False]; an empty inner list is
    [True]).  Exponential in the worst case — intended for the small
    formulas produced by property compilation. *)
val dnf : t -> Atom.t list list

val pp : ?names:(int -> string) -> Format.formatter -> t -> unit
val to_string : ?names:(int -> string) -> t -> string
