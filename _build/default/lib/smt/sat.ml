type literal = int
type clause = literal list

type result = Sat of (int -> bool) | Unsat

module IntMap = Map.Make (Int)

exception Found of bool IntMap.t

(* Simplify clauses under a partial assignment extension [lit := true].
   Returns [None] when an empty clause appears. *)
let assign_lit lit clauses =
  let rec go acc = function
    | [] -> Some acc
    | clause :: rest ->
      if List.mem lit clause then go acc rest
      else begin
        let clause' = List.filter (fun l -> l <> -lit) clause in
        if clause' = [] then None else go (clause' :: acc) rest
      end
  in
  go [] clauses

let rec unit_propagate assignment clauses =
  match List.find_opt (function [ _ ] -> true | _ -> false) clauses with
  | Some [ lit ] -> (
    let assignment = IntMap.add (abs lit) (lit > 0) assignment in
    match assign_lit lit clauses with
    | None -> None
    | Some clauses -> unit_propagate assignment clauses)
  | _ -> Some (assignment, clauses)

let rec dpll assignment clauses on_model =
  match unit_propagate assignment clauses with
  | None -> ()
  | Some (assignment, clauses) -> (
    match clauses with
    | [] -> on_model assignment
    | (lit :: _) :: _ ->
      let v = abs lit in
      let try_branch value =
        let l = if value then v else -v in
        match assign_lit l clauses with
        | None -> ()
        | Some clauses' -> dpll (IntMap.add v value assignment) clauses' on_model
      in
      try_branch true;
      try_branch false
    | [] :: _ -> assert false)

let solve clauses =
  if List.exists (( = ) []) clauses then Unsat
  else
    match dpll IntMap.empty clauses (fun m -> raise (Found m)) with
    | () -> Unsat
    | exception Found m ->
      Sat (fun v -> match IntMap.find_opt v m with Some b -> b | None -> false)

let solve_all ?limit clauses =
  if List.exists (( = ) []) clauses then []
  else begin
    let models = ref [] in
    let count = ref 0 in
    let all_vars =
      List.concat_map (List.map abs) clauses |> List.sort_uniq compare
    in
    (try
       dpll IntMap.empty clauses (fun m ->
           (* Expand unassigned variables into all completions would be
              exponential; report only assigned-true variables, treating
              unassigned as false (a valid completion). *)
           let trues =
             List.filter
               (fun v -> match IntMap.find_opt v m with Some b -> b | None -> false)
               all_vars
           in
           models := trues :: !models;
           incr count;
           match limit with Some l when !count >= l -> raise Exit | _ -> ())
     with Exit -> ());
    List.rev !models
  end
