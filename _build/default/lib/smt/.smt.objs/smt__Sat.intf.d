lib/smt/sat.mli:
