lib/smt/solver.ml: Atom Formula Hashtbl Lia Linexpr List Numbers Sat
