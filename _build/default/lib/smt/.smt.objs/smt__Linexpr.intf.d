lib/smt/linexpr.mli: Delta Format Numbers
