lib/smt/simplex.ml: Array Atom Delta Hashtbl Int Linexpr List Map Numbers Option
