lib/smt/formula.mli: Atom Format Numbers
