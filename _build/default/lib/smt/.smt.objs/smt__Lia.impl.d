lib/smt/lia.ml: Atom Hashtbl Linexpr List Numbers Simplex
