lib/smt/delta.ml: Format Numbers Printf
