lib/smt/simplex.mli: Atom Delta Numbers
