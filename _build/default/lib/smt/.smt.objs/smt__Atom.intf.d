lib/smt/atom.mli: Delta Format Linexpr Numbers
