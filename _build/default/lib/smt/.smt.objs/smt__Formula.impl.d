lib/smt/formula.ml: Atom Format Linexpr List String
