lib/smt/solver.mli: Formula Numbers
