lib/smt/lia.mli: Atom Numbers
