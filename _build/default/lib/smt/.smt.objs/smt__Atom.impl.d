lib/smt/atom.ml: Delta Format Linexpr Numbers Printf Stdlib
