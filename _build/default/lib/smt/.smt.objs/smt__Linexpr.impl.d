lib/smt/linexpr.ml: Buffer Delta Format Int List Map Numbers
