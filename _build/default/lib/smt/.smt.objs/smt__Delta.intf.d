lib/smt/delta.mli: Format Numbers
