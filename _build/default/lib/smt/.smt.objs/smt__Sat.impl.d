lib/smt/sat.ml: Int List Map
