(** A small DPLL SAT solver over clause lists.

    Literals are non-zero integers; [-v] is the negation of variable [v]
    (DIMACS convention).  Intended for the modest boolean abstractions
    produced by {!Solver}; not a competitive CDCL engine. *)

type literal = int
type clause = literal list

type result =
  | Sat of (int -> bool)  (** total assignment (unconstrained vars: false) *)
  | Unsat

(** [solve clauses] decides satisfiability of the conjunction of
    [clauses].  The empty clause is unsatisfiable; an empty clause list
    is satisfiable. *)
val solve : clause list -> result

(** [solve_all ?limit clauses] enumerates up to [limit] (default
    unlimited) satisfying assignments, as lists of true variables. *)
val solve_all : ?limit:int -> clause list -> int list list
