module Q = Numbers.Rational

type rel = Le | Lt | Eq

type t = { expr : Linexpr.t; rel : rel }

let le a b = { expr = Linexpr.sub a b; rel = Le }
let lt a b = { expr = Linexpr.sub a b; rel = Lt }
let ge a b = le b a
let gt a b = lt b a
let eq a b = { expr = Linexpr.sub a b; rel = Eq }

let negate a =
  match a.rel with
  | Le -> { expr = Linexpr.neg a.expr; rel = Lt } (* not (e <= 0)  <=>  -e < 0 *)
  | Lt -> { expr = Linexpr.neg a.expr; rel = Le }
  | Eq -> invalid_arg "Atom.negate: cannot negate an equality into one atom"

let holds assign a =
  let v = Linexpr.eval assign a.expr in
  match a.rel with
  | Le -> Q.sign v <= 0
  | Lt -> Q.sign v < 0
  | Eq -> Q.is_zero v

let holds_delta assign a =
  let v = Linexpr.eval_delta assign a.expr in
  match a.rel with
  | Le -> Delta.compare v Delta.zero <= 0
  | Lt -> Delta.compare v Delta.zero < 0
  | Eq -> Delta.equal v Delta.zero

let trivial a =
  if Linexpr.is_const a.expr then begin
    let v = Linexpr.constant a.expr in
    Some
      (match a.rel with
       | Le -> Q.sign v <= 0
       | Lt -> Q.sign v < 0
       | Eq -> Q.is_zero v)
  end
  else None

let vars a = Linexpr.vars a.expr

let compare a b =
  let c = Stdlib.compare a.rel b.rel in
  if c <> 0 then c else Linexpr.compare a.expr b.expr

let equal a b = compare a b = 0

let to_string ?names a =
  let rel = match a.rel with Le -> "<=" | Lt -> "<" | Eq -> "=" in
  Printf.sprintf "%s %s 0" (Linexpr.to_string ?names a.expr) rel

let pp ?names fmt a = Format.pp_print_string fmt (to_string ?names a)
