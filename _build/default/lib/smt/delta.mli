(** Delta-rationals: values of the form [r + k*delta] where [delta] is a
    positive infinitesimal.  The simplex procedure uses them to represent
    strict bounds exactly (e.g. [x < c] becomes [x <= c - delta]). *)

type t = { r : Numbers.Rational.t; d : Numbers.Rational.t }

val zero : t

(** [of_rational r] is [r + 0*delta]. *)
val of_rational : Numbers.Rational.t -> t

(** [make r d] is [r + d*delta]. *)
val make : Numbers.Rational.t -> Numbers.Rational.t -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

(** [scale q x] multiplies both components by the rational [q]. *)
val scale : Numbers.Rational.t -> t -> t

(** Lexicographic comparison, sound for any sufficiently small positive
    delta. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val is_rational : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
