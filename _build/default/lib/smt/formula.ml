type t =
  | True
  | False
  | Atom of Atom.t
  | Not of t
  | And of t list
  | Or of t list

let tt = True
let ff = False

let atom a = match Atom.trivial a with Some true -> True | Some false -> False | None -> Atom a

let not_ = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let conj fs =
  let rec gather acc = function
    | [] -> Some (List.rev acc)
    | True :: rest -> gather acc rest
    | False :: _ -> None
    | And gs :: rest -> gather acc (gs @ rest)
    | f :: rest -> gather (f :: acc) rest
  in
  match gather [] fs with
  | None -> False
  | Some [] -> True
  | Some [ f ] -> f
  | Some fs -> And fs

let disj fs =
  let rec gather acc = function
    | [] -> Some (List.rev acc)
    | False :: rest -> gather acc rest
    | True :: _ -> None
    | Or gs :: rest -> gather acc (gs @ rest)
    | f :: rest -> gather (f :: acc) rest
  in
  match gather [] fs with
  | None -> True
  | Some [] -> False
  | Some [ f ] -> f
  | Some fs -> Or fs

let implies a b = disj [ not_ a; b ]
let iff a b = conj [ implies a b; implies b a ]

let rec atoms = function
  | True | False -> []
  | Atom a -> [ a ]
  | Not f -> atoms f
  | And fs | Or fs -> List.concat_map atoms fs

let vars f =
  atoms f |> List.concat_map Atom.vars |> List.sort_uniq compare

let rec eval assign = function
  | True -> true
  | False -> false
  | Atom a -> Atom.holds assign a
  | Not f -> not (eval assign f)
  | And fs -> List.for_all (eval assign) fs
  | Or fs -> List.exists (eval assign) fs

let negate_atom (a : Atom.t) =
  match a.rel with
  | Atom.Le | Atom.Lt -> atom (Atom.negate a)
  | Atom.Eq ->
    (* not (e = 0)  <=>  e < 0 \/ -e < 0 *)
    disj
      [
        atom { a with rel = Atom.Lt };
        atom { Atom.expr = Linexpr.neg a.expr; rel = Atom.Lt };
      ]

let rec nnf = function
  | True -> True
  | False -> False
  | Atom a -> atom a
  | And fs -> conj (List.map nnf fs)
  | Or fs -> disj (List.map nnf fs)
  | Not f -> nnf_neg f

and nnf_neg = function
  | True -> False
  | False -> True
  | Atom a -> negate_atom a
  | Not f -> nnf f
  | And fs -> disj (List.map nnf_neg fs)
  | Or fs -> conj (List.map nnf_neg fs)

let dnf f =
  (* Cross-product expansion over the NNF. *)
  let rec go = function
    | True -> [ [] ]
    | False -> []
    | Atom a -> [ [ a ] ]
    | Or fs -> List.concat_map go fs
    | And fs ->
      List.fold_left
        (fun acc g ->
          let cubes = go g in
          List.concat_map (fun c -> List.map (fun c' -> c @ c') cubes) acc)
        [ [] ] fs
    | Not _ -> assert false
  in
  go (nnf f)

let rec to_string ?names = function
  | True -> "true"
  | False -> "false"
  | Atom a -> Atom.to_string ?names a
  | Not f -> "!(" ^ to_string ?names f ^ ")"
  | And fs -> "(" ^ String.concat " /\\ " (List.map (to_string ?names) fs) ^ ")"
  | Or fs -> "(" ^ String.concat " \\/ " (List.map (to_string ?names) fs) ^ ")"

let pp ?names fmt f = Format.pp_print_string fmt (to_string ?names f)
