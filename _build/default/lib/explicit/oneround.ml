module A = Ta.Automaton

type params = (string * int) list

type config = { counters : (string * int) list; shared : (string * int) list }

type outcome =
  | Holds
  | Violated of { params : params; trace : (string option * config) list }

(* Internal dense state: location counters, shared values, observation
   mask. *)
type state = { k : int array; s : int array; mask : int }

let check_params (ta : A.t) (params : params) =
  let lookup p =
    match List.assoc_opt p params with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Explicit.check: missing parameter %S" p)
  in
  List.iter (fun p -> ignore (lookup p)) ta.params;
  List.iter
    (fun e ->
      if Ta.Pexpr.eval lookup e < 0 then
        invalid_arg
          (Printf.sprintf "Explicit.check: resilience violated: %s >= 0 fails for given parameters"
             (Ta.Pexpr.to_string e)))
    ta.resilience;
  lookup

(* Enumerate all ways to distribute [total] processes over [slots]
   positions. *)
let rec distributions total slots =
  if slots = 0 then if total = 0 then [ [] ] else []
  else
    List.concat_map
      (fun head -> List.map (fun tl -> head :: tl) (distributions (total - head) (slots - 1)))
      (List.init (total + 1) Fun.id)

let run (ta : A.t) (spec : Ta.Spec.t) (params : params) ~count_only =
  let param = check_params ta params in
  let locs = Array.of_list ta.locations in
  let nloc = Array.length locs in
  let loc_index = Hashtbl.create 16 in
  Array.iteri (fun i l -> Hashtbl.replace loc_index l i) locs;
  let shared = Array.of_list ta.shared in
  let nshared = Array.length shared in
  let shared_index = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.replace shared_index x i) shared;
  let population = Ta.Pexpr.eval param ta.population in
  let observations = Array.of_list (List.map snd spec.observations) in
  let nobs = Array.length observations in
  let full_mask = (1 lsl nobs) - 1 in
  let cond_holds st cond =
    Ta.Cond.holds
      ~counter:(fun l -> st.k.(Hashtbl.find loc_index l))
      ~shared:(fun x -> st.s.(Hashtbl.find shared_index x))
      ~params:param cond
  in
  let guard_holds st g =
    Ta.Guard.holds ~shared:(fun x -> st.s.(Hashtbl.find shared_index x)) ~params:param g
  in
  (* Greedily mark every observation that holds in the configuration. *)
  let extend_mask st =
    let mask = ref st.mask in
    for i = 0 to nobs - 1 do
      if !mask land (1 lsl i) = 0 && cond_holds st observations.(i) then
        mask := !mask lor (1 lsl i)
    done;
    { st with mask = !mask }
  in
  let blocked l = List.mem l spec.never_enter in
  let rules =
    List.filter (fun (r : A.rule) -> not (blocked r.target)) ta.rules
    |> Array.of_list
  in
  (* A configuration is a fair fixpoint when no Fair rule is enabled with
     a non-empty source and all justice constraints hold. *)
  let stable st =
    Array.for_all
      (fun (r : A.rule) ->
        r.fairness = A.Unfair
        || st.k.(Hashtbl.find loc_index r.source) = 0
        || not (guard_holds st r.guard))
      rules
    && List.for_all
         (fun (j : A.justice) ->
           st.k.(Hashtbl.find loc_index j.loc) = 0 || not (guard_holds st j.unless))
         ta.justice
  in
  let violating st =
    spec.observations = [] || st.mask = full_mask
  in
  let is_violation st =
    violating st && cond_holds st spec.final_cond
    && ((not spec.require_stable) || stable st)
  in
  (* Initial states: all admissible distributions over initial locations. *)
  let init_slots = List.filter (fun l -> not (blocked l)) ta.initial in
  let initials =
    distributions population (List.length init_slots)
    |> List.filter_map (fun dist ->
           let k = Array.make nloc 0 in
           List.iter2 (fun l v -> k.(Hashtbl.find loc_index l) <- v) init_slots dist;
           let st = { k; s = Array.make nshared 0; mask = 0 } in
           if cond_holds st spec.init then Some (extend_mask st) else None)
  in
  let key st = (Array.to_list st.k, Array.to_list st.s, st.mask) in
  let visited = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let pred = Hashtbl.create 4096 in
  List.iter
    (fun st ->
      let ky = key st in
      if not (Hashtbl.mem visited ky) then begin
        Hashtbl.replace visited ky ();
        Hashtbl.replace pred ky None;
        Queue.add st queue
      end)
    initials;
  let found = ref None in
  while (not (Queue.is_empty queue)) && (!found = None || count_only) do
    let st = Queue.pop queue in
    if is_violation st && !found = None then found := Some st
    else
      Array.iter
        (fun (r : A.rule) ->
          let src = Hashtbl.find loc_index r.source in
          if st.k.(src) > 0 && guard_holds st r.guard then begin
            let k = Array.copy st.k in
            let s = Array.copy st.s in
            k.(src) <- k.(src) - 1;
            let tgt = Hashtbl.find loc_index r.target in
            k.(tgt) <- k.(tgt) + 1;
            List.iter
              (fun (x, c) ->
                let i = Hashtbl.find shared_index x in
                s.(i) <- s.(i) + c)
              r.update;
            let st' = extend_mask { k; s; mask = st.mask } in
            let ky = key st' in
            if not (Hashtbl.mem visited ky) then begin
              Hashtbl.replace visited ky ();
              Hashtbl.replace pred ky (Some (r.name, key st));
              Queue.add st' queue
            end
          end)
        rules
  done;
  let config_of_key (ks, ss, _) =
    {
      counters = List.mapi (fun i v -> (locs.(i), v)) ks;
      shared = List.mapi (fun i v -> (shared.(i), v)) ss;
    }
  in
  let outcome =
    match !found with
    | None -> Holds
    | Some st ->
      let rec unroll ky acc =
        match Hashtbl.find pred ky with
        | None -> (None, config_of_key ky) :: acc
        | Some (rname, prev) -> unroll prev ((Some rname, config_of_key ky) :: acc)
      in
      Violated { params; trace = unroll (key st) [] }
  in
  (outcome, Hashtbl.length visited)

let check ta spec params = fst (run ta spec params ~count_only:false)

let trivial_spec : Ta.Spec.t =
  {
    name = "reachability";
    kind = `Safety;
    ltl = "true";
    init = Ta.Cond.tt;
    never_enter = [];
    observations = [ ("unreachable", Ta.Cond.sum_ge [] 1) ];
    final_cond = Ta.Cond.tt;
    require_stable = false;
  }

let reachable_count ta params = snd (run ta trivial_spec params ~count_only:true)

let pp_outcome fmt = function
  | Holds -> Format.pp_print_string fmt "holds"
  | Violated { params; trace } ->
    Format.fprintf fmt "violated with %s in %d steps"
      (String.concat ", " (List.map (fun (p, v) -> Printf.sprintf "%s=%d" p v) params))
      (List.length trace - 1)
