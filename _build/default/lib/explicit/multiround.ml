module A = Ta.Automaton

type params = (string * int) list

type outcome = Holds | Violated of { states : int }

(* State: counters and shared variables for each unrolled round, plus a
   mask of "watch" location sets that have ever been populated. *)
type state = { k : int array array; s : int array array; mask : int }

let explore (ta : A.t) ~rounds ~params ~init_filter ~watches ~is_bad =
  let param p =
    match List.assoc_opt p params with
    | Some v -> v
    | None -> invalid_arg ("Multiround: missing parameter " ^ p)
  in
  List.iter
    (fun e ->
      if Ta.Pexpr.eval param e < 0 then
        invalid_arg "Multiround: resilience condition violated")
    ta.resilience;
  let locs = Array.of_list ta.locations in
  let nloc = Array.length locs in
  let loc_index = Hashtbl.create 16 in
  Array.iteri (fun i l -> Hashtbl.replace loc_index l i) locs;
  let shared = Array.of_list ta.shared in
  let nshared = Array.length shared in
  let shared_index = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.replace shared_index x i) shared;
  let population = Ta.Pexpr.eval param ta.population in
  let watches = Array.of_list watches in
  let extend_mask st =
    let mask = ref st.mask in
    Array.iteri
      (fun i locset ->
        if !mask land (1 lsl i) = 0 then begin
          let hit =
            List.exists
              (fun l ->
                let li = Hashtbl.find loc_index l in
                Array.exists (fun kr -> kr.(li) > 0) st.k)
              locset
          in
          if hit then mask := !mask lor (1 lsl i)
        end)
      watches;
    { st with mask = !mask }
  in
  let guard_holds st r g =
    Ta.Guard.holds ~shared:(fun x -> st.s.(r).(Hashtbl.find shared_index x)) ~params:param g
  in
  (* Initial states: distributions over round-0 initial locations. *)
  let rec distributions total slots =
    if slots = 0 then if total = 0 then [ [] ] else []
    else
      List.concat_map
        (fun h -> List.map (fun tl -> h :: tl) (distributions (total - h) (slots - 1)))
        (List.init (total + 1) Fun.id)
  in
  let initials =
    distributions population (List.length ta.initial)
    |> List.filter_map (fun dist ->
           let k = Array.init rounds (fun _ -> Array.make nloc 0) in
           List.iter2
             (fun l v -> k.(0).(Hashtbl.find loc_index l) <- v)
             ta.initial dist;
           let st =
             { k; s = Array.init rounds (fun _ -> Array.make nshared 0); mask = 0 }
           in
           if init_filter st (fun r l -> st.k.(r).(Hashtbl.find loc_index l)) then
             Some (extend_mask st)
           else None)
  in
  let key st =
    (Array.to_list (Array.map Array.to_list st.k),
     Array.to_list (Array.map Array.to_list st.s),
     st.mask)
  in
  let visited = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let push st =
    let ky = key st in
    if not (Hashtbl.mem visited ky) then begin
      Hashtbl.replace visited ky ();
      Queue.add st queue
    end
  in
  List.iter push initials;
  let found = ref false in
  while (not (Queue.is_empty queue)) && not !found do
    let st = Queue.pop queue in
    if is_bad st then found := true
    else begin
      for r = 0 to rounds - 1 do
        (* Ordinary rules of round r. *)
        List.iter
          (fun (rule : A.rule) ->
            let src = Hashtbl.find loc_index rule.source in
            if st.k.(r).(src) > 0 && guard_holds st r rule.guard then begin
              let k = Array.map Array.copy st.k in
              let s = Array.map Array.copy st.s in
              k.(r).(src) <- k.(r).(src) - 1;
              let tgt = Hashtbl.find loc_index rule.target in
              k.(r).(tgt) <- k.(r).(tgt) + 1;
              List.iter
                (fun (x, c) ->
                  let i = Hashtbl.find shared_index x in
                  s.(r).(i) <- s.(r).(i) + c)
                rule.update;
              push (extend_mask { k; s; mask = st.mask })
            end)
          ta.rules;
        (* Round-switch rules into round r+1. *)
        if r + 1 < rounds then
          List.iter
            (fun (from_l, to_l) ->
              let src = Hashtbl.find loc_index from_l in
              if st.k.(r).(src) > 0 then begin
                let k = Array.map Array.copy st.k in
                k.(r).(src) <- k.(r).(src) - 1;
                let tgt = Hashtbl.find loc_index to_l in
                k.(r + 1).(tgt) <- k.(r + 1).(tgt) + 1;
                push (extend_mask { k; s = st.s; mask = st.mask })
              end)
            ta.round_switch
      done
    end
  done;
  (!found, Hashtbl.length visited)

let agreement ta ~decide0 ~decide1 ~rounds params =
  let found, states =
    explore ta ~rounds ~params
      ~init_filter:(fun _ _ -> true)
      ~watches:[ [ decide0 ]; [ decide1 ] ]
      ~is_bad:(fun st -> st.mask = 3)
  in
  if found then Violated { states } else Holds

let validity ta ~forbidden_initial ~decide ~rounds params =
  let found, states =
    explore ta ~rounds ~params
      ~init_filter:(fun _ count -> count 0 forbidden_initial = 0)
      ~watches:[ [ decide ] ]
      ~is_bad:(fun st -> st.mask = 1)
  in
  if found then Violated { states } else Holds

let reachable_states ta ~rounds params =
  let _, states =
    explore ta ~rounds ~params
      ~init_filter:(fun _ _ -> true)
      ~watches:[]
      ~is_bad:(fun _ -> false)
  in
  states
