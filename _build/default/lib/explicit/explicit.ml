(** Explicit-state model checking for fixed parameters: {!Oneround} for
    single-round counter systems (re-exported at the top level) and
    {!Multiround} for unrolled multi-round systems (Appendix A). *)

include Oneround
module Multiround = Multiround
