(** Explicit-state model checking of threshold-automaton counter systems
    for {e fixed} parameter values.

    This is the "fixed parameters" baseline the paper contrasts with
    (Apalache/TLC-style checking, Section 7), and the test oracle for the
    parameterized checker: for small [n], the two must agree.

    The counter system of a one-round TA with DAG-shaped locations and
    non-negative updates is finite and convergent (every rule strictly
    advances a process), so all maximal runs stabilize; the search is a
    plain BFS over configurations extended with an observation mask. *)

type params = (string * int) list

type config = {
  counters : (string * int) list;
  shared : (string * int) list;
}

type outcome =
  | Holds
  | Violated of { params : params; trace : (string option * config) list }
      (** The trace lists configurations from the initial one; each step
          is tagged with the rule that produced it ([None] for the
          initial configuration). *)

(** [check ta spec params] decides [spec] on [Sys(ta)] instantiated with
    [params].
    @raise Invalid_argument when [params] misses a parameter or violates
    the automaton's resilience condition. *)
val check : Ta.Automaton.t -> Ta.Spec.t -> params -> outcome

(** [reachable_count ta params] is the number of reachable configurations
    — a size diagnostic used in reports and tests. *)
val reachable_count : Ta.Automaton.t -> params -> int

val pp_outcome : Format.formatter -> outcome -> unit
