lib/explicit/multiround.ml: Array Fun Hashtbl List Queue Ta
