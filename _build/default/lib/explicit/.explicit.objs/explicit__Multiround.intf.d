lib/explicit/multiround.mli: Ta
