lib/explicit/oneround.ml: Array Format Fun Hashtbl List Printf Queue String Ta
