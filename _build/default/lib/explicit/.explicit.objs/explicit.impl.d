lib/explicit/explicit.ml: Multiround Oneround
