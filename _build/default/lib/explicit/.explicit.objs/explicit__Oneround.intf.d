lib/explicit/oneround.mli: Format Ta
