(** Explicit-state checking of {e multi-round} counter systems for fixed
    parameters: the round-switch rules connect the end-of-round locations
    to the start of the next round (dotted edges of Figs. 3 and 4).

    The paper checks one-round invariants (Inv1, Inv2) with the
    parameterized checker and derives the cross-round properties
    Agreement and Validity by the reduction of Appendix A / [10,
    Prop. 2].  This module validates that derivation independently for
    small parameters by exploring the unrolled multi-round system
    directly. *)

type params = (string * int) list

type outcome = Holds | Violated of { states : int }

(** [agreement ta ~decide0 ~decide1 ~rounds params] explores [rounds]
    unrolled copies of [ta] and reports whether some execution populates
    both decision locations (in any pair of rounds) — i.e. whether
    Agreement can be violated within the bound. *)
val agreement :
  Ta.Automaton.t -> decide0:string -> decide1:string -> rounds:int -> params -> outcome

(** [validity ta ~forbidden_initial ~decide ~rounds params] restricts
    initial states to those with no process in [forbidden_initial] and
    reports whether [decide] is ever populated — i.e. whether Validity
    can be violated within the bound. *)
val validity :
  Ta.Automaton.t ->
  forbidden_initial:string ->
  decide:string ->
  rounds:int ->
  params ->
  outcome

(** [reachable_states ta ~rounds params] — size diagnostic. *)
val reachable_states : Ta.Automaton.t -> rounds:int -> params -> int
