(** Threshold guards.

    A guard atom is a lower-threshold comparison
    [sum c_i * x_i >= bound(params)] with positive coefficients [c_i] over
    shared variables.  Because the framework only allows non-negative
    updates to shared variables, such guards are {e monotone}: once true
    along a run, they stay true.  This is the structural property the
    schema-based checker exploits (see DESIGN.md). *)

type atom = {
  shared : (string * int) list;  (** positive coefficients over shared variables *)
  bound : Pexpr.t;
}

(** A guard: a conjunction of atoms.  The empty list is [true]. *)
type t = atom list

val tt : t

(** [ge shared bound] builds a single-atom guard.
    @raise Invalid_argument when a coefficient is not positive. *)
val ge : (string * int) list -> Pexpr.t -> t

(** [ge1 x bound] is [ge [(x, 1)] bound]. *)
val ge1 : string -> Pexpr.t -> t

val atom_equal : atom -> atom -> bool
val atom_compare : atom -> atom -> int
val atom_to_string : atom -> string

(** [atom_holds ~shared ~params a] evaluates an atom under concrete
    values. *)
val atom_holds : shared:(string -> int) -> params:(string -> int) -> atom -> bool

val holds : shared:(string -> int) -> params:(string -> int) -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
