type term = Counter of string | Shared of string | Param of string

type rel = Ge | Le | Eq

type atom = { terms : (term * int) list; const : int; rel : rel }

type t = atom list

let tt = []

let empty l = [ { terms = [ (Counter l, 1) ]; const = 0; rel = Eq } ]
let all_empty locs = List.concat_map empty locs

let sum_ge locs k =
  [ { terms = List.map (fun l -> (Counter l, 1)) locs; const = -k; rel = Ge } ]

let some_nonempty locs = sum_ge locs 1
let counter_ge l k = sum_ge [ l ] k

let pexpr_terms (e : Pexpr.t) = List.map (fun (p, c) -> (Param p, c)) e.coeffs

let shared_ge coeffs bound =
  [
    {
      terms = List.map (fun (x, c) -> (Shared x, c)) coeffs @ pexpr_terms (Pexpr.neg bound);
      const = -bound.Pexpr.const;
      rel = Ge;
    };
  ]

let shared_lt coeffs bound =
  [
    {
      terms = List.map (fun (x, c) -> (Shared x, c)) coeffs @ pexpr_terms (Pexpr.neg bound);
      const = -bound.Pexpr.const + 1;
      rel = Le;
    };
  ]

let shared_eq0 x = [ { terms = [ (Shared x, 1) ]; const = 0; rel = Eq } ]

let of_guard_atom (a : Guard.atom) = shared_ge a.shared a.bound
let negate_guard_atom (a : Guard.atom) = shared_lt a.shared a.bound

let conj = List.concat

let holds ~counter ~shared ~params c =
  let eval_term (t, coef) =
    coef
    * (match t with Counter l -> counter l | Shared x -> shared x | Param p -> params p)
  in
  List.for_all
    (fun a ->
      let v = List.fold_left (fun acc t -> acc + eval_term t) a.const a.terms in
      match a.rel with Ge -> v >= 0 | Le -> v <= 0 | Eq -> v = 0)
    c

let term_to_string = function
  | Counter l -> "k[" ^ l ^ "]"
  | Shared x -> x
  | Param p -> p

let atom_to_string a =
  let buf = Buffer.create 32 in
  let first = ref true in
  let part sgn body =
    if !first then begin
      if sgn < 0 then Buffer.add_char buf '-';
      first := false
    end
    else Buffer.add_string buf (if sgn < 0 then " - " else " + ");
    Buffer.add_string buf body
  in
  List.iter
    (fun (t, c) ->
      let a = abs c in
      part (Stdlib.compare c 0)
        (if a = 1 then term_to_string t else string_of_int a ^ "*" ^ term_to_string t))
    a.terms;
  if a.const <> 0 || !first then
    part (Stdlib.compare a.const 0) (string_of_int (abs a.const));
  Buffer.add_string buf (match a.rel with Ge -> " >= 0" | Le -> " <= 0" | Eq -> " = 0");
  Buffer.contents buf

let to_string = function
  | [] -> "true"
  | c -> String.concat " /\\ " (List.map atom_to_string c)

let pp fmt c = Format.pp_print_string fmt (to_string c)
