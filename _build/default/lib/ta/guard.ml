type atom = { shared : (string * int) list; bound : Pexpr.t }

type t = atom list

let tt = []

let ge shared bound =
  List.iter
    (fun (x, c) ->
      if c <= 0 then
        invalid_arg
          (Printf.sprintf "Guard.ge: non-positive coefficient %d for %s" c x))
    shared;
  [ { shared = List.sort Stdlib.compare shared; bound } ]

let ge1 x bound = ge [ (x, 1) ] bound

let atom_compare a b =
  let c = Stdlib.compare a.shared b.shared in
  if c <> 0 then c else Pexpr.compare a.bound b.bound

let atom_equal a b = atom_compare a b = 0

let atom_to_string a =
  let lhs =
    String.concat " + "
      (List.map
         (fun (x, c) -> if c = 1 then x else string_of_int c ^ "*" ^ x)
         a.shared)
  in
  let lhs = if lhs = "" then "0" else lhs in
  lhs ^ " >= " ^ Pexpr.to_string a.bound

let atom_holds ~shared ~params a =
  let lhs = List.fold_left (fun acc (x, c) -> acc + (c * shared x)) 0 a.shared in
  lhs >= Pexpr.eval params a.bound

let holds ~shared ~params g = List.for_all (atom_holds ~shared ~params) g

let to_string = function
  | [] -> "true"
  | g -> String.concat " /\\ " (List.map atom_to_string g)

let pp fmt g = Format.pp_print_string fmt (to_string g)
