(** Graphviz (DOT) export of threshold automata, for regenerating the
    paper's Figures 2-4 as diagrams. *)

(** [render ta] produces a DOT digraph: initial locations are drawn as
    double circles, rules as labelled edges (guard and update), and
    round-switch edges as dotted arrows. *)
val render : Automaton.t -> string

(** [write_file path ta]. *)
val write_file : string -> Automaton.t -> unit
