(** State conditions: conjunctions of linear constraints over location
    counters, shared variables and parameters of a configuration.  These
    are the atomic propositions of the temporal specifications (paper,
    Section 2): emptiness of locations and evaluations of threshold
    expressions. *)

type term =
  | Counter of string  (** [kappa\[loc\]] *)
  | Shared of string
  | Param of string

type rel = Ge | Le | Eq

(** [sum terms + const  rel  0] *)
type atom = { terms : (term * int) list; const : int; rel : rel }

(** A condition: a conjunction of atoms; [[]] is [true]. *)
type t = atom list

val tt : t

(** [empty l] is [kappa\[l\] = 0]. *)
val empty : string -> t

(** [all_empty locs] is the conjunction of [empty l]. *)
val all_empty : string list -> t

(** [sum_ge locs k] is [sum of kappa\[locs\] >= k]. *)
val sum_ge : string list -> int -> t

(** [some_nonempty locs] is [sum of kappa\[locs\] >= 1] — over
    non-negative counters this is equivalent to the disjunction of
    non-emptiness, expressed as a single linear atom. *)
val some_nonempty : string list -> t

(** [counter_ge l k] is [kappa\[l\] >= k]. *)
val counter_ge : string -> int -> t

(** [shared_ge coeffs bound] is [sum c_i*x_i >= bound(params)]. *)
val shared_ge : (string * int) list -> Pexpr.t -> t

(** [shared_lt coeffs bound] is [sum c_i*x_i < bound(params)] — encoded
    as [<= bound - 1], valid over integers. *)
val shared_lt : (string * int) list -> Pexpr.t -> t

(** [shared_eq0 x] is [x = 0]. *)
val shared_eq0 : string -> t

(** [of_guard_atom a] converts a guard atom to a condition. *)
val of_guard_atom : Guard.atom -> t

(** [negate_guard_atom a] is the condition [a is false] (integer
    semantics). *)
val negate_guard_atom : Guard.atom -> t

val conj : t list -> t

(** [holds ~counter ~shared ~params c] evaluates under a concrete
    configuration. *)
val holds :
  counter:(string -> int) -> shared:(string -> int) -> params:(string -> int) -> t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
