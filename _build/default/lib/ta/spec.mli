(** Temporal specifications in the ELTL fragment used by the paper,
    represented by their {e violation pattern}: the checkers (both the
    parameterized one in [Holistic] and the explicit-state one in
    [Explicit]) search for a run exhibiting the violation; the property
    holds iff none exists.

    A violation run must:
    - start in a configuration satisfying [init] (premises such as
      ["initially no process has value 0"], i.e. [kappa0\[V0\] = 0]);
    - never populate the locations in [never_enter] (premises of the form
      [always kappa\[L\] = 0]; sound because entering [L] is observable as
      a rule firing — the checker forces all rules into [L] to have zero
      factors and [L] to start empty);
    - satisfy each condition in [observations] at {e some} point of the
      run, in any order (the eventualities of the violated formula);
    - end in a configuration satisfying [final_cond]; and
    - if [require_stable], end in a {e fair fixpoint}: no [Fair] rule
      enabled with a non-empty source, and every {!Automaton.justice}
      constraint satisfied.  This encodes the premise side of liveness
      properties (reliable communication and the proven bv-broadcast
      properties; paper, Appendix F). *)

type t = {
  name : string;
  kind : [ `Safety | `Liveness ];
  ltl : string;  (** human-readable rendering of the verified formula *)
  init : Cond.t;
  never_enter : string list;
  observations : (string * Cond.t) list;
  final_cond : Cond.t;
  require_stable : bool;
}

(** [invariant ~name ~ltl ?init ?never_enter ~bad ()] — a safety
    property: no run satisfying the premises reaches all the [bad]
    observations. *)
val invariant :
  name:string ->
  ltl:string ->
  ?init:Cond.t ->
  ?never_enter:string list ->
  bad:(string * Cond.t) list ->
  unit ->
  t

(** [liveness ~name ~ltl ?init ?observations ~target_violated ()] — a
    liveness property: no {e fair} run satisfying the premises stabilizes
    with [target_violated] true.  [target_violated] must be the exact
    negation of the property's target and the target must be absorbing
    (checked by the callers; see DESIGN.md). *)
val liveness :
  name:string ->
  ltl:string ->
  ?init:Cond.t ->
  ?observations:(string * Cond.t) list ->
  target_violated:Cond.t ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
