let pexpr_str (e : Pexpr.t) =
  let terms =
    List.map
      (fun (p, c) -> if c = 1 then p else Printf.sprintf "%d * %s" c p)
      e.coeffs
  in
  let parts = terms @ (if e.const <> 0 || terms = [] then [ string_of_int e.const ] else []) in
  String.concat " + " parts

let guard_str (g : Guard.t) =
  if g = [] then "true"
  else
    String.concat " && "
      (List.map
         (fun (a : Guard.atom) ->
           let lhs =
             String.concat " + "
               (List.map
                  (fun (x, c) -> if c = 1 then x else Printf.sprintf "%d * %s" c x)
                  a.shared)
           in
           Printf.sprintf "%s >= %s" lhs (pexpr_str a.bound))
         g)

let render (ta : Automaton.t) =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "/* generated from the OCaml model %s */\n" ta.name;
  out "skel Proc {\n";
  out "  local pc;\n";
  out "  shared %s;\n" (String.concat ", " ta.shared);
  out "  parameters %s;\n" (String.concat ", " ta.params);
  out "  assumptions (0) {\n";
  List.iter (fun e -> out "    %s >= 0;\n" (pexpr_str e)) ta.resilience;
  out "  }\n\n";
  out "  locations (0) {\n";
  List.iteri (fun i l -> out "    loc%s: [%d];\n" l i) ta.locations;
  out "  }\n\n";
  out "  inits (0) {\n";
  out "    (%s) == %s;\n"
    (String.concat " + " (List.map (fun l -> "loc" ^ l) ta.initial))
    (pexpr_str ta.population);
  List.iter
    (fun l -> if not (List.mem l ta.initial) then out "    loc%s == 0;\n" l)
    ta.locations;
  List.iter (fun x -> out "    %s == 0;\n" x) ta.shared;
  out "  }\n\n";
  out "  rules (0) {\n";
  let emit_rule i source target guard update =
    let updates =
      List.map (fun (x, c) -> Printf.sprintf "%s' == %s + %d" x x c) update
    in
    let unchanged =
      List.filter (fun x -> not (List.mem_assoc x update)) ta.shared
      |> List.map (fun x -> Printf.sprintf "%s' == %s" x x)
    in
    out "  %d: loc%s -> loc%s\n      when (%s)\n      do { %s; };\n" i source target
      guard
      (String.concat "; " (updates @ unchanged))
  in
  List.iteri
    (fun i (r : Automaton.rule) -> emit_rule i r.source r.target (guard_str r.guard) r.update)
    ta.rules;
  (* Explicit self-loops on sink locations, as in the paper's figures. *)
  let sinks = Automaton.sinks ta in
  List.iteri
    (fun i l -> emit_rule (List.length ta.rules + i) l l "true" [])
    (List.filteri (fun i _ -> i < ta.self_loops) (sinks @ ta.locations));
  out "  }\n";
  out "}\n";
  Buffer.contents buf

let write_file path ta =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (render ta))
