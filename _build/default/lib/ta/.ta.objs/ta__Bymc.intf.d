lib/ta/bymc.mli: Automaton
