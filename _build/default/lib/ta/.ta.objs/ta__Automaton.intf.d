lib/ta/automaton.mli: Format Guard Pexpr
