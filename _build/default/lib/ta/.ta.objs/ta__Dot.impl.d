lib/ta/dot.ml: Automaton Buffer Fun Guard List Printf String
