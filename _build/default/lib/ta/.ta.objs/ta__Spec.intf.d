lib/ta/spec.mli: Cond Format
