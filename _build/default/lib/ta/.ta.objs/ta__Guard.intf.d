lib/ta/guard.mli: Format Pexpr
