lib/ta/cond.ml: Buffer Format Guard List Pexpr Stdlib String
