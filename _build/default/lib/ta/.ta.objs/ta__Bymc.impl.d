lib/ta/bymc.ml: Automaton Buffer Fun Guard List Pexpr Printf String
