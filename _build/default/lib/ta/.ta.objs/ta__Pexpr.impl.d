lib/ta/pexpr.ml: Buffer Format Hashtbl List Stdlib
