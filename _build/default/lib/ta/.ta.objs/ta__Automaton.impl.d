lib/ta/automaton.ml: Format Guard Hashtbl List Pexpr Printf Queue Stdlib
