lib/ta/spec.ml: Cond Format
