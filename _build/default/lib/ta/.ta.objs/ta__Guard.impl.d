lib/ta/guard.ml: Format List Pexpr Printf Stdlib String
