lib/ta/cond.mli: Format Guard Pexpr
