lib/ta/dot.mli: Automaton
