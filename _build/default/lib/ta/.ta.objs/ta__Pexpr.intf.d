lib/ta/pexpr.mli: Format
