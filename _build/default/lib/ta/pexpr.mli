(** Linear expressions over the automaton's parameters (e.g. [n - 3t - 1])
    with native-integer coefficients.  Used for guard thresholds and
    resilience conditions. *)

type t = { coeffs : (string * int) list; const : int }

val const : int -> t

(** [of_terms coeffs const] normalizes: merges repeated parameters and
    drops zero coefficients. *)
val of_terms : (string * int) list -> int -> t

(** [param p] is the expression [1 * p]. *)
val param : string -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val equal : t -> t -> bool
val compare : t -> t -> int

(** [eval env e] evaluates with [env] giving parameter values. *)
val eval : (string -> int) -> t -> int

val params : t -> string list
val to_string : t -> string
val pp : Format.formatter -> t -> unit
