let escape s =
  String.concat "" (List.map (fun c -> if c = '"' then "\\\"" else String.make 1 c)
                      (List.init (String.length s) (String.get s)))

let render (ta : Automaton.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" ta.name);
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=circle, fontsize=10];\n";
  List.iter
    (fun l ->
      let shape = if List.mem l ta.initial then "doublecircle" else "circle" in
      Buffer.add_string buf (Printf.sprintf "  %S [shape=%s];\n" (escape l) shape))
    ta.locations;
  List.iter
    (fun (r : Automaton.rule) ->
      let guard = if r.guard = [] then "" else Guard.to_string r.guard in
      let update =
        match r.update with
        | [] -> ""
        | up ->
          String.concat ", "
            (List.map
               (fun (x, c) -> if c = 1 then x ^ "++" else x ^ " += " ^ string_of_int c)
               up)
      in
      let label =
        match (guard, update) with
        | "", "" -> r.name
        | g, "" -> Printf.sprintf "%s: %s" r.name g
        | "", u -> Printf.sprintf "%s: %s" r.name u
        | g, u -> Printf.sprintf "%s: %s -> %s" r.name g u
      in
      Buffer.add_string buf
        (Printf.sprintf "  %S -> %S [label=%S, fontsize=8];\n" (escape r.source)
           (escape r.target) (escape label)))
    ta.rules;
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf
        (Printf.sprintf "  %S -> %S [style=dotted];\n" (escape a) (escape b)))
    ta.round_switch;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path ta =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ta))
