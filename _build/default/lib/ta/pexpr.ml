type t = { coeffs : (string * int) list; const : int }

let normalize coeffs =
  let table = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (p, c) ->
      match Hashtbl.find_opt table p with
      | None ->
        Hashtbl.replace table p c;
        order := p :: !order
      | Some c0 -> Hashtbl.replace table p (c0 + c))
    coeffs;
  List.rev !order
  |> List.filter_map (fun p ->
         let c = Hashtbl.find table p in
         if c = 0 then None else Some (p, c))

let of_terms coeffs const = { coeffs = normalize coeffs; const }
let const c = of_terms [] c
let param p = of_terms [ (p, 1) ] 0
let add a b = of_terms (a.coeffs @ b.coeffs) (a.const + b.const)
let scale k a = of_terms (List.map (fun (p, c) -> (p, k * c)) a.coeffs) (k * a.const)
let neg a = scale (-1) a
let sub a b = add a (neg b)

let compare a b =
  let c = Stdlib.compare a.const b.const in
  if c <> 0 then c
  else Stdlib.compare (List.sort Stdlib.compare a.coeffs) (List.sort Stdlib.compare b.coeffs)

let equal a b = compare a b = 0

let eval env e =
  List.fold_left (fun acc (p, c) -> acc + (c * env p)) e.const e.coeffs

let params e = List.map fst e.coeffs

let to_string e =
  let buf = Buffer.create 16 in
  let first = ref true in
  let part sgn body =
    if !first then begin
      if sgn < 0 then Buffer.add_char buf '-';
      first := false
    end
    else Buffer.add_string buf (if sgn < 0 then " - " else " + ");
    Buffer.add_string buf body
  in
  List.iter
    (fun (p, c) ->
      let a = abs c in
      part (Stdlib.compare c 0) (if a = 1 then p else string_of_int a ^ "*" ^ p))
    e.coeffs;
  if e.const <> 0 || !first then part (Stdlib.compare e.const 0) (string_of_int (abs e.const));
  Buffer.contents buf

let pp fmt e = Format.pp_print_string fmt (to_string e)
