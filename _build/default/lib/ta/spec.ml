type t = {
  name : string;
  kind : [ `Safety | `Liveness ];
  ltl : string;
  init : Cond.t;
  never_enter : string list;
  observations : (string * Cond.t) list;
  final_cond : Cond.t;
  require_stable : bool;
}

let invariant ~name ~ltl ?(init = Cond.tt) ?(never_enter = []) ~bad () =
  {
    name;
    kind = `Safety;
    ltl;
    init;
    never_enter;
    observations = bad;
    final_cond = Cond.tt;
    require_stable = false;
  }

let liveness ~name ~ltl ?(init = Cond.tt) ?(observations = []) ~target_violated () =
  {
    name;
    kind = `Liveness;
    ltl;
    init;
    never_enter = [];
    observations;
    final_cond = target_violated;
    require_stable = true;
  }

let pp fmt s =
  Format.fprintf fmt "%s [%s]: %s" s.name
    (match s.kind with `Safety -> "safety" | `Liveness -> "liveness")
    s.ltl
