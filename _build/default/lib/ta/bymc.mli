(** Export of threshold automata in the input syntax of ByMC, the
    Byzantine Model Checker the paper runs ([37, 39]).  This lets the
    models defined here be cross-checked with the original tool outside
    this sealed environment. *)

(** [render ta] produces a ByMC threshold-automaton skeleton: parameters,
    resilience assumptions, locations, initial constraints and guarded
    rules.  Self-loops (which our representation only counts) are
    emitted explicitly for the final locations so that the skeleton has
    the same rule count as the paper reports. *)
val render : Automaton.t -> string

val write_file : string -> Automaton.t -> unit
