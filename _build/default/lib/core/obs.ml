type t = Ever_entered | Monotone_end | Cut_point

let classify (c : Ta.Cond.t) =
  match c with
  | [ { Ta.Cond.terms; const = -1; rel = Ta.Cond.Ge } ]
    when terms <> []
         && List.for_all
              (fun (term, coef) ->
                match term with Ta.Cond.Counter _ -> coef > 0 | _ -> false)
              terms ->
    Ever_entered
  | [ { Ta.Cond.terms; const = _; rel = Ta.Cond.Ge } ]
    when terms <> []
         && List.for_all
              (fun (term, coef) ->
                match term with
                | Ta.Cond.Shared _ -> coef > 0
                | Ta.Cond.Param _ -> true
                | Ta.Cond.Counter _ -> false)
              terms
         && List.exists
              (fun (term, _) -> match term with Ta.Cond.Shared _ -> true | _ -> false)
              terms ->
    Monotone_end
  | _ -> Cut_point
