module A = Ta.Automaton

type limits = { max_schemas : int; time_budget : float option; lia_max_steps : int }

let default_limits = { max_schemas = 100_000; time_budget = None; lia_max_steps = 200_000 }

type outcome = Holds | Violated of Witness.t | Aborted of string

type stats = { schemas_checked : int; slots_total : int; time : float }

type result = { spec : Ta.Spec.t; outcome : outcome; stats : stats }

(* Locations whose joint emptiness the liveness target asserts: the
   counter terms of the final condition with positive coefficients. *)
let target_locations (spec : Ta.Spec.t) =
  List.concat_map
    (fun (a : Ta.Cond.atom) ->
      List.filter_map
        (fun (term, c) ->
          match term with Ta.Cond.Counter l when c > 0 -> Some l | _ -> None)
        a.terms)
    spec.final_cond
  |> List.sort_uniq compare

let precheck ta (spec : Ta.Spec.t) =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if not (A.is_dag ta) then
    fail "Checker: automaton %s is not a DAG (ignoring self-loops); the schema method does not apply"
      ta.name;
  if spec.kind = `Safety && spec.observations = [] then
    fail "Checker: safety spec %s has no observations (nothing to refute)" spec.name;
  if spec.require_stable then begin
    if spec.never_enter <> [] then
      fail "Checker: liveness spec %s cannot use never_enter premises" spec.name;
    let locs = target_locations spec in
    if not (A.absorbing_when_empty ta locs) then
      fail
        "Checker: liveness spec %s: the target location set is not absorbing; end-of-run evaluation would be unsound"
        spec.name
  end

(* Decide [atoms /\ (one cube per branch entry)] by depth-first case
   analysis over the factored justice branches; every path is a plain
   LIA conjunction. *)
let solve_schema ~limits (encoded : Encode.encoded) =
  let rec go atoms branches =
    match branches with
    | [] -> (
      match Smt.Lia.solve ~max_steps:limits.lia_max_steps atoms with
      | Smt.Lia.Sat m -> `Sat m
      | Smt.Lia.Unsat -> `Unsat
      | Smt.Lia.Unknown -> `Unknown)
    | alternatives :: rest ->
      let rec try_alts = function
        | [] -> `Unsat
        | cube :: others -> (
          match go (cube @ atoms) rest with
          | `Sat m -> `Sat m
          | `Unknown -> `Unknown
          | `Unsat -> try_alts others)
      in
      try_alts alternatives
  in
  (* The conjunctive part is usually already unsatisfiable; only then
     expand the justice case-split product. *)
  match go encoded.atoms [] with
  | `Unsat -> `Unsat
  | `Unknown -> `Unknown
  | `Sat m -> if encoded.branches = [] then `Sat m else go encoded.atoms encoded.branches

let verify_with_universe ?(limits = default_limits) u (spec : Ta.Spec.t) =
  let ta = Universe.automaton u in
  precheck ta spec;
  let t0 = Unix.gettimeofday () in
  let schemas = ref 0 in
  let slots = ref 0 in
  let found = ref None in
  let aborted = ref None in
  let complete =
    Schema.enumerate u spec ~on_schema:(fun schema ->
        let elapsed = Unix.gettimeofday () -. t0 in
        if !schemas >= limits.max_schemas then begin
          aborted := Some (Printf.sprintf "schema budget exceeded (> %d schemas)" !schemas);
          false
        end
        else
          match limits.time_budget with
          | Some budget when elapsed > budget ->
            aborted :=
              Some
                (Printf.sprintf "time budget exceeded (> %.0f s, %d schemas checked)" budget
                   !schemas);
            false
          | _ -> (
            incr schemas;
            let encoded = Encode.encode u spec schema in
            slots := !slots + encoded.n_slots;
            match solve_schema ~limits encoded with
            | `Unsat -> true
            | `Sat model ->
              found := Some (Witness.of_model u spec schema encoded model);
              false
            | `Unknown ->
              aborted := Some "solver returned unknown (branch-and-bound budget)";
              false))
  in
  let stats =
    { schemas_checked = !schemas; slots_total = !slots; time = Unix.gettimeofday () -. t0 }
  in
  let outcome =
    match (!found, !aborted, complete) with
    | Some w, _, _ -> Violated w
    | None, Some reason, _ -> Aborted reason
    | None, None, true -> Holds
    | None, None, false -> Aborted "enumeration stopped unexpectedly"
  in
  { spec; outcome; stats }

let verify ?limits ta spec = verify_with_universe ?limits (Universe.build ta) spec

let pp_result fmt r =
  let avg =
    if r.stats.schemas_checked = 0 then 0.0
    else float_of_int r.stats.slots_total /. float_of_int r.stats.schemas_checked
  in
  match r.outcome with
  | Holds ->
    Format.fprintf fmt "%-12s holds   (%d schemas, avg length %.0f, %.2f s)" r.spec.name
      r.stats.schemas_checked avg r.stats.time
  | Violated w ->
    Format.fprintf fmt "%-12s VIOLATED (%d schemas, %.2f s)@,%a" r.spec.name
      r.stats.schemas_checked r.stats.time Witness.pp w
  | Aborted reason ->
    Format.fprintf fmt "%-12s aborted: %s (%d schemas, %.2f s)" r.spec.name reason
      r.stats.schemas_checked r.stats.time
