(** Schemas: the finite summaries of infinite families of runs that the
    checker enumerates (POPL'17).  A schema interleaves guard-unlock
    events with observation events; between two events lies a {e segment}
    in which the rules enabled by the current context fire, accelerated,
    in topological order. *)

type event =
  | Unlock of Universe.guard_id
  | Observe of int  (** index into the spec's observation list *)

type t = event list

(** [enumerate u spec ~on_schema] drives a DFS over admissible schemas,
    calling [on_schema] for each.  [on_schema] returns [true] to continue
    the enumeration, [false] to abort it.  Returns [true] when the
    enumeration ran to completion.

    For safety specs, a schema is emitted when its last event completes
    the observation set; for liveness specs, every node with a complete
    observation set is emitted (the run may stabilize in any context). *)
val enumerate : Universe.t -> Ta.Spec.t -> on_schema:(t -> bool) -> bool

(** [count u spec ~limit] counts schemas, up to [limit]. *)
val count : Universe.t -> Ta.Spec.t -> limit:int -> [ `Exactly of int | `More_than of int ]

val pp : Universe.t -> Ta.Spec.t -> Format.formatter -> t -> unit
