(** Linear temporal logic over threshold-automaton configurations, and
    its compilation into the violation patterns checked by {!Checker}.

    This is the fragment used by the paper (Section 2): atomic
    propositions are state conditions ({!Ta.Cond}) — emptiness of
    locations and threshold evaluations — combined with boolean
    connectives and the temporal operators [always] and [eventually].
    Formulas are evaluated over the infinite runs of the counter system;
    liveness formulas are checked under the fairness assumptions carried
    by the automaton (rule fairness and justice constraints).

    [compile] recognizes the shapes that the schema-based checker can
    decide and produces the equivalent {!Ta.Spec.t}; it rejects formulas
    outside the fragment with an explanatory [Unsupported] exception.

    Supported shapes (after normalization):
    - [P => always Q], [always Q], and conjunctions thereof (safety);
    - [eventually A => always Q] (safety with an eventuality premise);
    - [always (G => eventually T)] and [eventually A => eventually T]
      and plain [eventually T] (liveness), where [T] is a conjunction of
      location-emptiness propositions whose location set is absorbing.

    Premises [P] may be state conditions on the initial configuration or
    [always empty(L)] for locations without initial population. *)

type t =
  | Prop of Ta.Cond.t
  | Not of t
  | And of t list
  | Implies of t * t
  | Always of t
  | Eventually of t

exception Unsupported of string

(** [prop c], [always f], [eventually f], [implies a b], [conj fs],
    [not_ f] — constructors. *)
val prop : Ta.Cond.t -> t

val always : t -> t
val eventually : t -> t
val implies : t -> t -> t
val conj : t list -> t
val not_ : t -> t

(** [compile ~automaton ~name f] translates [f] into a checkable spec.
    [automaton] is needed to validate premises (a location with
    [always empty] must have no incoming rules or be handled via
    [never_enter]) and to render the formula.
    @raise Unsupported when [f] falls outside the fragment. *)
val compile : automaton:Ta.Automaton.t -> name:string -> t -> Ta.Spec.t

val to_string : t -> string
