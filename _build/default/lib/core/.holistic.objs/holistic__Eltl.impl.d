lib/core/eltl.ml: List Option Printf String Ta
