lib/core/witness.mli: Encode Format Numbers Schema Ta Universe
