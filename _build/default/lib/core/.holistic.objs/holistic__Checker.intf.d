lib/core/checker.mli: Format Ta Universe Witness
