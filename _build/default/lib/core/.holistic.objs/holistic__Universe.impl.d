lib/core/universe.ml: Array Fun Hashtbl Lazy List Numbers Smt Ta
