lib/core/schema.mli: Format Ta Universe
