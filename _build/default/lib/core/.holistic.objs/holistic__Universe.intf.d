lib/core/universe.mli: Ta
