lib/core/schema.ml: Format List Obs Ta Universe
