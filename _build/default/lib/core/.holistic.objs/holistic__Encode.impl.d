lib/core/encode.ml: Array Hashtbl List Numbers Obs Schema Smt Ta Universe
