lib/core/checker.ml: Encode Format List Printf Schema Smt Ta Universe Unix Witness
