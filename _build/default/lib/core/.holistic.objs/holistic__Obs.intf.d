lib/core/obs.mli: Ta
