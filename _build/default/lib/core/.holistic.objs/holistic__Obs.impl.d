lib/core/obs.ml: List Ta
