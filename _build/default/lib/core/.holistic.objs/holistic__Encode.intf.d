lib/core/encode.mli: Schema Smt Ta Universe
