lib/core/eltl.mli: Ta
