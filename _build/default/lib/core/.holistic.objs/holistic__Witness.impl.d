lib/core/witness.ml: Encode Format Hashtbl List Numbers Printf Schema Ta Universe
