module C = Ta.Cond

type t =
  | Prop of Ta.Cond.t
  | Not of t
  | And of t list
  | Implies of t * t
  | Always of t
  | Eventually of t

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let prop c = Prop c
let always f = Always f
let eventually f = Eventually f
let implies a b = Implies (a, b)
let conj fs = And fs
let not_ f = Not f

let rec to_string = function
  | Prop c -> C.to_string c
  | Not f -> "!(" ^ to_string f ^ ")"
  | And fs -> "(" ^ String.concat " /\\ " (List.map to_string fs) ^ ")"
  | Implies (a, b) -> "(" ^ to_string a ^ " => " ^ to_string b ^ ")"
  | Always f -> "[](" ^ to_string f ^ ")"
  | Eventually f -> "<>(" ^ to_string f ^ ")"

(* [empty_locations c] recognizes a conjunction of kappa[l] = 0 atoms and
   returns the locations. *)
let empty_locations (c : C.t) =
  let loc_of (a : C.atom) =
    match (a.rel, a.terms, a.const) with
    | C.Eq, [ (C.Counter l, 1) ], 0 -> Some l
    | _ -> None
  in
  let locs = List.map loc_of c in
  if List.for_all Option.is_some locs then Some (List.map Option.get locs) else None

(* Negation of a state condition, where expressible as one condition:
   a single integer atom, or a conjunction of location-emptiness atoms
   (whose negation is a single counter-sum atom). *)
let negate_cond (c : C.t) : C.t =
  match empty_locations c with
  | Some locs -> C.some_nonempty locs
  | None -> (
    match c with
    | [ ({ rel = C.Ge; _ } as a) ] -> [ { a with rel = C.Le; const = a.const + 1 } ]
    | [ ({ rel = C.Le; _ } as a) ] -> [ { a with rel = C.Ge; const = a.const - 1 } ]
    | [ { rel = C.Eq; terms; const = 0 } ]
      when List.for_all (fun (t, coef) -> coef > 0 && match t with C.Counter _ -> true | _ -> false) terms ->
      (* Over non-negative counters, not(sum = 0) is sum >= 1. *)
      [ { C.rel = C.Ge; terms; const = -1 } ]
    | _ ->
      unsupported "cannot negate condition %s within the fragment" (C.to_string c))

let flatten_conj f =
  let rec go acc = function
    | And fs -> List.fold_left go acc fs
    | f -> f :: acc
  in
  List.rev (go [] f)

type premises = {
  mutable init : C.t;
  mutable never_enter : string list;
  mutable observations : (string * C.t) list;
}

let add_premise (automaton : Ta.Automaton.t) ps = function
  | Prop c -> ps.init <- C.conj [ ps.init; c ]
  | Always (Prop c) -> (
    match empty_locations c with
    | Some locs ->
      List.iter
        (fun l ->
          if not (List.mem l automaton.locations) then
            unsupported "premise mentions unknown location %s" l)
        locs;
      ps.never_enter <- ps.never_enter @ locs
    | None ->
      unsupported "only [](kappa[L] = 0) premises are supported, got [](%s)"
        (C.to_string c))
  | Eventually (Prop c) ->
    ps.observations <- ps.observations @ [ (C.to_string c, c) ]
  | f -> unsupported "unsupported premise %s" (to_string f)

let compile ~automaton ~name f =
  let ltl = to_string f in
  let premises, conclusion =
    match f with Implies (p, c) -> (flatten_conj p, c) | _ -> ([], f)
  in
  let ps = { init = C.tt; never_enter = []; observations = [] } in
  List.iter (add_premise automaton ps) premises;
  let safety bad =
    Ta.Spec.invariant ~name ~ltl ~init:ps.init ~never_enter:ps.never_enter
      ~bad:(ps.observations @ bad) ()
  in
  let liveness ?(extra_obs = []) target =
    if ps.never_enter <> [] then
      unsupported "liveness formulas cannot use [](kappa[L] = 0) premises";
    match empty_locations target with
    | None ->
      unsupported "liveness target must be a conjunction of emptiness propositions"
    | Some locs ->
      if not (Ta.Automaton.absorbing_when_empty automaton locs) then
        unsupported "liveness target %s is not absorbing" (C.to_string target);
      Ta.Spec.liveness ~name ~ltl ~init:ps.init
        ~observations:(ps.observations @ extra_obs)
        ~target_violated:(C.some_nonempty locs) ()
  in
  match conclusion with
  | Always (Prop q) -> safety [ ("violation of " ^ C.to_string q, negate_cond q) ]
  | Always (Not (Prop q)) -> safety [ (C.to_string q, q) ]
  | Eventually (Prop target) -> liveness target
  | Always (Implies (Prop g, Eventually (Prop target))) ->
    liveness ~extra_obs:[ (C.to_string g, g) ] target
  | f -> unsupported "unsupported conclusion %s" (to_string f)
