(** Classification of eventuality observations.

    A naive encoding gives every eventuality its own cut-point in the
    schema, multiplying the enumeration by the number of placements.  Two
    common shapes admit an exact cut-point-free encoding:

    - {b Ever-entered}: [sum c_i * kappa\[l_i\] >= 1] with positive
      coefficients.  Over non-negative counters this says "some l_i was
      ever populated", which holds along the run iff
      [sum c_i * (kappa0\[l_i\] + total inflow into l_i) >= 1] — a single
      constraint on the complete run.
    - {b Monotone-end}: [sum c_i * x_i >= bound(params)] over shared
      variables with positive coefficients.  Shared variables only grow,
      so the eventuality holds iff the condition holds in the final
      configuration.

    Anything else falls back to an explicit cut-point ([Cut_point]),
    handled by enumerating its position in the schema. *)

type t =
  | Ever_entered
  | Monotone_end
  | Cut_point

val classify : Ta.Cond.t -> t
