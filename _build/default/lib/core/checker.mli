(** The parameterized model checker: verifies a temporal property of a
    threshold automaton for {e all} parameter valuations admitted by the
    resilience condition, by enumerating schemas ({!Schema}) and
    discharging one linear-integer-arithmetic query per schema
    ({!Encode}).

    Soundness/completeness requires the structural properties validated
    by {!precheck}: monotone guards (guaranteed by the {!Ta.Guard}
    constructors), DAG-shaped locations, and — for liveness — an
    absorbing violation target.  All three automata of the paper
    qualify. *)

type limits = {
  max_schemas : int;  (** abort the enumeration beyond this many schemas *)
  time_budget : float option;  (** wall-clock seconds; [None] = unlimited *)
  lia_max_steps : int;  (** branch-and-bound budget per query *)
}

val default_limits : limits

type outcome =
  | Holds  (** every schema query is unsatisfiable: the property is verified for all parameters *)
  | Violated of Witness.t
  | Aborted of string  (** budget exhausted (the paper's ">24h" rows) *)

type stats = {
  schemas_checked : int;
  slots_total : int;  (** sum of schema lengths (rule slots) *)
  time : float;  (** wall-clock seconds *)
}

type result = { spec : Ta.Spec.t; outcome : outcome; stats : stats }

(** [precheck ta spec] validates the structural preconditions.
    @raise Invalid_argument when they fail. *)
val precheck : Ta.Automaton.t -> Ta.Spec.t -> unit

(** [verify ?limits ta spec]. *)
val verify : ?limits:limits -> Ta.Automaton.t -> Ta.Spec.t -> result

(** [verify_with_universe ?limits u spec] reuses a prebuilt universe
    (cheaper when checking several specs of one automaton). *)
val verify_with_universe : ?limits:limits -> Universe.t -> Ta.Spec.t -> result

val pp_result : Format.formatter -> result -> unit
