type event = Unlock of Universe.guard_id | Observe of int

type t = event list

exception Stop

(* Observation indices that need explicit cut-points; the other shapes
   are encoded on the final state (see Obs). *)
let cut_point_indices (spec : Ta.Spec.t) =
  List.concat
    (List.mapi
       (fun i (_, c) -> if Obs.classify c = Obs.Cut_point then [ i ] else [])
       spec.observations)

let enumerate u (spec : Ta.Spec.t) ~on_schema =
  let cut_obs = cut_point_indices spec in
  let full = List.fold_left (fun acc i -> acc lor (1 lsl i)) 0 cut_obs in
  let emit rev_events =
    if not (on_schema (List.rev rev_events)) then raise Stop
  in
  let rec go ctx obs_mask rev_events =
    (* Every node with a complete cut-point set is a schema: the run may
       end (safety) or stabilize (liveness) in any context. *)
    if obs_mask = full then emit rev_events;
    List.iter
      (fun i ->
        if obs_mask land (1 lsl i) = 0 then
          go ctx (obs_mask lor (1 lsl i)) (Observe i :: rev_events))
      cut_obs;
    List.iter
      (fun g -> go (ctx lor (1 lsl g)) obs_mask (Unlock g :: rev_events))
      (Universe.unlock_candidates u ctx)
  in
  match go 0 0 [] with () -> true | exception Stop -> false

let count u spec ~limit =
  let n = ref 0 in
  let complete =
    enumerate u spec ~on_schema:(fun _ ->
        incr n;
        !n < limit)
  in
  if complete then `Exactly !n else `More_than !n

let pp u (spec : Ta.Spec.t) fmt schema =
  let obs_name i = fst (List.nth spec.observations i) in
  Format.fprintf fmt "@[<hov 2>";
  if schema = [] then Format.fprintf fmt "(empty: initial context only)";
  List.iteri
    (fun i ev ->
      if i > 0 then Format.fprintf fmt " ;@ ";
      match ev with
      | Unlock g ->
        Format.fprintf fmt "unlock{%s}" (Ta.Guard.atom_to_string (Universe.atom u g))
      | Observe i -> Format.fprintf fmt "observe{%s}" (obs_name i))
    schema;
  Format.fprintf fmt "@]"
