module A = Ta.Automaton
module G = Ta.Guard
module Q = Numbers.Rational
module L = Smt.Linexpr

type var_kind =
  | Param of string
  | Init_counter of string
  | Factor of int * string

type encoded = {
  vars : (int * var_kind) list;
  n_slots : int;
  atoms : Smt.Atom.t list;
  branches : Smt.Atom.t list list list;
      (* Factored justice case-splits: for each entry, at least one of the
         alternative cubes (conjunctions of atoms) must hold in addition
         to [atoms].  Empty for safety specs and for liveness schemas
         whose final context decides every justice condition. *)
}

type state = {
  mutable counters : (string * L.t) list;
  mutable shared : (string * L.t) list;
  mutable entered : (string * L.t) list;
      (* kappa0 plus total inflow: "was this location ever populated" *)
}

let get assoc name =
  match List.assoc_opt name assoc with
  | Some e -> e
  | None -> invalid_arg ("Encode: unknown name " ^ name)

let set assoc name e = (name, e) :: List.remove_assoc name assoc

let encode u (spec : Ta.Spec.t) (schema : Schema.t) =
  let ta = Universe.automaton u in
  let next_var = ref 0 in
  let vars = ref [] in
  let fresh kind =
    let v = !next_var in
    incr next_var;
    vars := (v, kind) :: !vars;
    v
  in
  let atoms = ref [] in
  let branches = ref [] in
  let assert_atom a = atoms := a :: !atoms in
  let param_vars = List.map (fun p -> (p, fresh (Param p))) ta.params in
  let pexpr (e : Ta.Pexpr.t) =
    L.of_int_terms (List.map (fun (p, c) -> (c, List.assoc p param_vars)) e.coeffs) e.const
  in
  (* Resilience and non-negative parameters. *)
  List.iter (fun e -> assert_atom (Smt.Atom.ge (pexpr e) L.zero)) ta.resilience;
  List.iter (fun (_, v) -> assert_atom (Smt.Atom.ge (L.var v) L.zero)) param_vars;
  (* Initial configuration. *)
  let blocked l = List.mem l spec.never_enter in
  let init_counters =
    List.map
      (fun l ->
        if List.mem l ta.initial && not (blocked l) then begin
          let v = fresh (Init_counter l) in
          assert_atom (Smt.Atom.ge (L.var v) L.zero);
          (l, L.var v)
        end
        else (l, L.zero))
      ta.locations
  in
  let st =
    {
      counters = init_counters;
      shared = List.map (fun x -> (x, L.zero)) ta.shared;
      entered = init_counters;
    }
  in
  let population =
    List.fold_left
      (fun acc l -> L.add acc (get st.counters l))
      L.zero ta.initial
  in
  assert_atom (Smt.Atom.eq population (pexpr ta.population));
  (* State condition -> atoms. *)
  let cond_atoms (c : Ta.Cond.t) =
    List.map
      (fun (a : Ta.Cond.atom) ->
        let expr =
          List.fold_left
            (fun acc (term, coef) ->
              let e =
                match term with
                | Ta.Cond.Counter l -> get st.counters l
                | Ta.Cond.Shared x -> get st.shared x
                | Ta.Cond.Param p -> L.var (List.assoc p param_vars)
              in
              L.add acc (L.scale (Q.of_int coef) e))
            (L.of_int a.const) a.terms
        in
        match a.rel with
        | Ta.Cond.Ge -> Smt.Atom.ge expr L.zero
        | Ta.Cond.Le -> Smt.Atom.le expr L.zero
        | Ta.Cond.Eq -> Smt.Atom.eq expr L.zero)
      c
  in
  List.iter assert_atom (cond_atoms spec.init);
  let guard_lhs (a : G.atom) =
    List.fold_left
      (fun acc (x, c) -> L.add acc (L.scale (Q.of_int c) (get st.shared x)))
      L.zero a.shared
  in
  let guard_true_atom (a : G.atom) = Smt.Atom.ge (guard_lhs a) (pexpr a.bound) in
  let guard_false_atom (a : G.atom) = Smt.Atom.lt (guard_lhs a) (pexpr a.bound) in
  let observations = Array.of_list (List.map snd spec.observations) in
  let n_slots = ref 0 in
  let rule_allowed (r : A.rule) = not (blocked r.target) in
  let run_segment seg ctx =
    List.iter
      (fun (r : A.rule) ->
        (* A rule whose source counter is the zero expression cannot move
           anyone: skip the slot (keeps the queries small in early
           segments, where most locations are provably empty). *)
        if rule_allowed r && not (L.equal (get st.counters r.source) L.zero) then begin
          incr n_slots;
          let d = L.var (fresh (Factor (seg, r.name))) in
          assert_atom (Smt.Atom.ge d L.zero);
          let src = L.sub (get st.counters r.source) d in
          assert_atom (Smt.Atom.ge src L.zero);
          st.counters <- set st.counters r.source src;
          st.counters <- set st.counters r.target (L.add (get st.counters r.target) d);
          st.entered <- set st.entered r.target (L.add (get st.entered r.target) d);
          List.iter
            (fun (x, c) ->
              st.shared <- set st.shared x (L.add (get st.shared x) (L.scale (Q.of_int c) d)))
            r.update
        end)
      (Universe.enabled_rules u ctx)
  in
  (* No pinning between events: two guards may become true at the same
     instant, so asserting "still-locked guards are false" at interior
     boundaries would exclude real runs (incompleteness).  A rule only
     fires in segments after its guard's unlock event, whose truth is
     asserted, so soundness is unaffected. *)
  let pin ctx =
    List.iter
      (fun g ->
        if ctx land (1 lsl g) = 0 then assert_atom (guard_false_atom (Universe.atom u g)))
      (Universe.ids u)
  in
  (* Walk the schema. *)
  let seg = ref 0 in
  let ctx = ref 0 in
  List.iter
    (fun (ev : Schema.event) ->
      run_segment !seg !ctx;
      incr seg;
      match ev with
      | Schema.Unlock g ->
        ctx := !ctx lor (1 lsl g);
        assert_atom (guard_true_atom (Universe.atom u g))
      | Schema.Observe i -> List.iter assert_atom (cond_atoms observations.(i)))
    schema;
  (* Trailing segment: rules of the final context fire before the final
     state is inspected. *)
  run_segment !seg !ctx;
  (* For a fair fixpoint, the still-locked guards must be false in the
     final configuration (a run in which one of them turns true is
     covered by the schema that unlocks it). *)
  if spec.require_stable then pin !ctx;
  (* Cut-point-free observations, on the complete run / final state. *)
  Array.iter
    (fun obs ->
      match Obs.classify obs with
      | Obs.Cut_point -> () (* handled by an Observe event *)
      | Obs.Monotone_end -> List.iter assert_atom (cond_atoms obs)
      | Obs.Ever_entered ->
        List.iter
          (fun (a : Ta.Cond.atom) ->
            let expr =
              List.fold_left
                (fun acc (term, coef) ->
                  match term with
                  | Ta.Cond.Counter l ->
                    L.add acc (L.scale (Q.of_int coef) (get st.entered l))
                  | Ta.Cond.Shared _ | Ta.Cond.Param _ -> assert false)
                (L.of_int a.const) a.terms
            in
            assert_atom (Smt.Atom.ge expr L.zero))
          obs)
    observations;
  if spec.require_stable then begin
    List.iter
      (fun (r : A.rule) ->
        let enabled =
          List.for_all (fun g -> !ctx land (1 lsl g) <> 0) (Universe.guard_ids u r.guard)
        in
        if r.fairness = A.Fair && enabled && rule_allowed r then
          assert_atom (Smt.Atom.eq (get st.counters r.source) L.zero))
      ta.rules;
    (* Justice constraints: kappa[loc] = 0 or the unless-condition fails.
       The final context decides most unless-atoms (a locked guard it
       implies pins it false — clause satisfied; an unlocked guard that
       implies it pins it true — the disjunct vanishes).  Clauses that
       remain undecided are factored per location into a binary
       case-split handled by the checker. *)
    let undecided = Hashtbl.create 8 in
    List.iter
      (fun (j : A.justice) ->
        let statuses =
          List.map (fun a -> (a, Universe.justice_atom_status u !ctx a)) j.unless
        in
        if not (List.exists (fun (_, s) -> s = `False) statuses) then begin
          match List.filter (fun (_, s) -> s = `Unknown) statuses with
          | [] -> assert_atom (Smt.Atom.eq (get st.counters j.loc) L.zero)
          | unknown ->
            let prev =
              match Hashtbl.find_opt undecided j.loc with Some l -> l | None -> []
            in
            Hashtbl.replace undecided j.loc (List.map fst unknown :: prev)
        end)
      ta.justice;
    Hashtbl.iter
      (fun loc clauses ->
        (* (k=0 \/ D1) /\ ... /\ (k=0 \/ Dm)  <=>  k=0 \/ (D1 /\ ... /\ Dm),
           with each Di a disjunction of negated unless-atoms; expand the
           conjunction of disjunctions into alternative cubes. *)
        let cubes =
          List.fold_left
            (fun acc clause ->
              List.concat_map
                (fun cube -> List.map (fun a -> guard_false_atom a :: cube) clause)
                acc)
            [ [] ] clauses
        in
        let empty_cube = [ Smt.Atom.eq (get st.counters loc) L.zero ] in
        branches := (empty_cube :: cubes) :: !branches)
      undecided
  end;
  List.iter assert_atom (cond_atoms spec.final_cond);
  { vars = List.rev !vars; n_slots = !n_slots; atoms = List.rev !atoms; branches = !branches }
