(** Encoding of one schema as a linear-arithmetic satisfiability query.

    The query is satisfiable iff some run of the counter system follows
    the schema and exhibits the spec's violation pattern (see
    {!Ta.Spec}).  Variables: the parameters, the initial counters of the
    initial locations, and one acceleration factor per (segment, enabled
    rule) slot. *)

type var_kind =
  | Param of string
  | Init_counter of string
  | Factor of int * string  (** segment index, rule name *)

type encoded = {
  vars : (int * var_kind) list;  (** SMT variable id -> meaning *)
  n_slots : int;  (** number of rule slots: the schema "length" *)
  atoms : Smt.Atom.t list;  (** the conjunctive part of the query *)
  branches : Smt.Atom.t list list list;
      (** factored justice case-splits: for each entry, at least one of
          the alternative cubes (conjunctions of atoms) must hold in
          addition to [atoms]; empty for safety specs and for liveness
          schemas whose final context decides every justice condition *)
}

val encode : Universe.t -> Ta.Spec.t -> Schema.t -> encoded
