(** Vector ("superblock") consensus: the Red Belly Blockchain
    construction the paper's consensus serves (Section 1; [20]).

    Every process proposes a value (a transaction batch); proposals are
    disseminated with {!Reliable_broadcast} and [n] parallel instances of
    the DBFT binary consensus decide, per proposer, whether its proposal
    enters the superblock.  A process votes 1 for instance [j] once it
    has reliably delivered proposal [j]; once it has delivered [n - t]
    proposals it votes 0 in every instance it has not joined yet, which
    guarantees that all instances terminate.

    Guarantees (inherited from the verified binary consensus plus
    reliable broadcast): all correct processes output the same
    superblock; every included proposal of a correct proposer is its
    actual proposal; the superblock of a fair run is non-empty when all
    proposers are correct. *)

type config = {
  n : int;
  t : int;
  proposals : (int * string) list;  (** proposals of correct processes, by id *)
  byzantine : int list;  (** ids of (proposal-equivocating) Byzantine processes *)
  seed : int;
  max_steps : int;
}

val config :
  n:int -> t:int -> proposals:(int * string) list -> ?byzantine:int list -> ?seed:int ->
  ?max_steps:int -> unit -> config

type report = {
  superblocks : (int * (int * string) list) list;
      (** per correct process: the decided superblock (proposer, value) *)
  steps : int;
  all_decided : bool;
  agreement : bool;  (** all superblocks equal *)
  integrity : bool;
      (** every included proposal of a correct proposer matches what it
          proposed *)
}

val run : config -> report

val pp_report : Format.formatter -> report -> unit
