type t = int (* bit 0: value 0; bit 1: value 1 *)

let empty = 0

let check v =
  if v <> 0 && v <> 1 then invalid_arg "Vset: binary values only";
  v

let singleton v = 1 lsl check v
let both = 3
let add v s = s lor singleton v
let mem v s = s land singleton v <> 0
let union = ( lor )
let subset a b = a land lnot b = 0
let is_empty s = s = 0

let is_singleton = function 1 -> Some 0 | 2 -> Some 1 | _ -> None

let to_list s = List.filter (fun v -> mem v s) [ 0; 1 ]
let of_list l = List.fold_left (fun s v -> add v s) empty l
let equal = Int.equal

let to_string s =
  "{" ^ String.concat "," (List.map string_of_int (to_list s)) ^ "}"
