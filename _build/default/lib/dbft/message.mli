(** Wire messages of the DBFT binary consensus (Algorithm 1): BV messages
    of the inner binary-value broadcast (Fig. 1) and AUX messages carrying
    a contestants snapshot.  Every message is tagged with its round —
    the algorithm is communication-closed (paper, Section 2). *)

type t =
  | Bv of { round : int; value : int }
  | Aux of { round : int; values : Vset.t }

val round : t -> int
val to_string : t -> string
