let byzantine_id = 3

(* Round 0 has w = 0: processes a1 = 0 and a2 = 1 hold v = 1, c = 2
   holds w = 0. *)
let inputs = [ 1; 1; 0 ]

(* (a1, a2, c) -> (c, a2, a1) each round, starting from (0, 1, 2). *)
let roles ~round = if round mod 2 = 0 then (0, 1, 2) else (2, 1, 0)

let strategy =
  Byzantine.Scripted
    (fun ~round ->
      let a1, a2, c = roles ~round in
      let w = round mod 2 in
      let v = 1 - w in
      [
        (* Make a1 and a2 bv-deliver v first (with a1, a2 they form
           2t+1 = 3 distinct senders). *)
        (a1, Message.Bv { round; value = v });
        (a2, Message.Bv { round; value = v });
        (* Make a2 and c bv-deliver w (with c and a2's echo). *)
        (a2, Message.Bv { round; value = w });
        (c, Message.Bv { round; value = w });
        (* Aux messages steering the qualifiers sets: a1 sees {v} three
           times and keeps v; a2 and c see mixed sets and adopt w. *)
        (a1, Message.Aux { round; values = Vset.singleton v });
        (a2, Message.Aux { round; values = Vset.singleton w });
        (c, Message.Aux { round; values = Vset.singleton w });
      ])

(* Delivery phases within round r (see the proof of Lemma 7):
   0: everything addressed to the Byzantine process (triggers its sends);
   1: BV(v) into {a1, a2} from {a1, a2, b}      — first deliveries of v;
   2: BV(w) into {a2, c} from {c, b, a2}        — a2 echoes, both deliver w;
   3: BV(v) into {c} from {a1, a2, c}           — c echoes, delivers v;
   4: AUX into a1 from {a1, a2, b}              — a1 keeps v;
   5: AUX into a2 from {a1, a2, b}              — a2 adopts w;
   6: AUX into c from {a1, c, b}                — c adopts w;
   9: everything else (delivered once the round's script is done, when
      every correct process has advanced: the stale messages are
      discarded by communication-closedness). *)
let phase (p : Message.t Simnet.Network.pending) =
  let round = Message.round p.msg in
  let a1, a2, c = roles ~round in
  let b = byzantine_id in
  let w = round mod 2 in
  let v = 1 - w in
  let ph =
    if p.dest = b then 0
    else
      match p.msg with
      | Message.Bv { value; _ } when value = v && (p.dest = a1 || p.dest = a2)
                                     && List.mem p.src [ a1; a2; b ] -> 1
      | Message.Bv { value; _ } when value = w && (p.dest = a2 || p.dest = c)
                                     && List.mem p.src [ c; b; a2 ] -> 2
      | Message.Bv { value; _ } when value = v && p.dest = c
                                     && List.mem p.src [ a1; a2; c ] -> 3
      | Message.Aux _ when p.dest = a1 && List.mem p.src [ a1; a2; b ] -> 4
      | Message.Aux _ when p.dest = a2 && List.mem p.src [ a1; a2; b ] -> 5
      | Message.Aux _ when p.dest = c && List.mem p.src [ a1; c; b ] -> 6
      | Message.Bv _ | Message.Aux _ -> 9
  in
  (round * 100) + ph

let scheduler () =
  Simnet.Scheduler.Custom
    (fun pending ->
      match pending with
      | [] -> None
      | first :: rest ->
        let best =
          List.fold_left
            (fun best p ->
              let bp = phase best and pp = phase p in
              if pp < bp || (pp = bp && p.Simnet.Network.seq < best.Simnet.Network.seq)
              then p
              else best)
            first rest
        in
        Some best)

let config ~max_round =
  Runner.config ~n:4 ~t:1 ~inputs ~byzantine:[ (byzantine_id, strategy) ]
    ~scheduler:(scheduler ()) ~max_round ()
