lib/dbft/vset.ml: Int List String
