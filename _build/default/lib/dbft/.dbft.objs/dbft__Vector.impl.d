lib/dbft/vector.ml: Array Byzantine Format Fun Hashtbl Lazy List Message Printf Process Random Reliable_broadcast Simnet String
