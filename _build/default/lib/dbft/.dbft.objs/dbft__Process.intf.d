lib/dbft/process.mli: Message Simnet Vset
