lib/dbft/vector.mli: Format
