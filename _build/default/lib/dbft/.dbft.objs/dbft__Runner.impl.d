lib/dbft/runner.ml: Byzantine Format Fun List Message Process Simnet
