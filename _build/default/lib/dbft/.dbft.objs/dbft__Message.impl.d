lib/dbft/message.ml: Printf Vset
