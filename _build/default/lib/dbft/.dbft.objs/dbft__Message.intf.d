lib/dbft/message.mli: Vset
