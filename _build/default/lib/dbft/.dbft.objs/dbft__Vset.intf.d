lib/dbft/vset.mli:
