lib/dbft/reliable_broadcast.ml: Hashtbl Int Printf Set Simnet
