lib/dbft/lemma7.mli: Byzantine Message Runner Simnet
