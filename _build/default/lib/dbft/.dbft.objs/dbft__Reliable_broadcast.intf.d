lib/dbft/reliable_broadcast.mli: Simnet
