lib/dbft/runner.mli: Byzantine Format Message Simnet
