lib/dbft/lemma7.ml: Byzantine List Message Runner Simnet Vset
