lib/dbft/process.ml: Array Hashtbl Int List Message Set Simnet Vset
