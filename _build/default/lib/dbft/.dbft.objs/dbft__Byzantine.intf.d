lib/dbft/byzantine.mli: Message Simnet
