lib/dbft/byzantine.ml: Hashtbl List Message Random Simnet Vset
