(** Orchestration of consensus runs over the simulated network, with
    property monitors for the three consensus properties (paper,
    Section 2): Termination, Agreement, Validity. *)

type config = {
  n : int;
  t : int;
  inputs : int list;  (** one input per correct process, in id order *)
  byzantine : (int * Byzantine.strategy) list;  (** id -> strategy *)
  scheduler : Message.t Simnet.Scheduler.t;
  max_round : int;  (** correct processes stop after this round *)
  max_steps : int;  (** delivery budget *)
}

type report = {
  decisions : (int * int * int) list;  (** process, value, round of first decision *)
  rounds_reached : (int * int) list;  (** process, final round *)
  steps : int;  (** deliveries performed *)
  all_decided : bool;
  agreement : bool;  (** no two correct processes decided differently *)
  validity : bool;  (** every decided value was some correct process's input *)
}

(** [run config] executes until every correct process decided (and the
    network quiesced) or the budget is exhausted.
    @raise Invalid_argument on inconsistent configuration. *)
val run : config -> report

(** [default_config ~n ~t ~inputs ~seed] — random fair scheduler, no
    Byzantine processes (ids [n - length inputs] past the correct ones
    are implied Byzantine and silent if [inputs] is shorter than [n]). *)
val config : n:int -> t:int -> inputs:int list -> ?byzantine:(int * Byzantine.strategy) list
  -> ?scheduler:Message.t Simnet.Scheduler.t -> ?max_round:int -> ?max_steps:int -> unit -> config

val pp_report : Format.formatter -> report -> unit
