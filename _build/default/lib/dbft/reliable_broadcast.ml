module Net = Simnet.Network
module ISet = Set.Make (Int)

type msg =
  | Init of { origin : int; value : string }
  | Echo of { origin : int; value : string }
  | Ready of { origin : int; value : string }

let msg_to_string = function
  | Init { origin; value } -> Printf.sprintf "INIT(%d, %s)" origin value
  | Echo { origin; value } -> Printf.sprintf "ECHO(%d, %s)" origin value
  | Ready { origin; value } -> Printf.sprintf "READY(%d, %s)" origin value

(* Per-origin instance state. *)
type instance = {
  mutable echoed : bool;
  mutable ready_sent : bool;
  mutable value_delivered : string option;
  echo_senders : (string, ISet.t) Hashtbl.t;
  ready_senders : (string, ISet.t) Hashtbl.t;
}

type t = {
  id : int;
  n : int;
  t_bound : int;
  net : msg Net.t;
  on_deliver : origin:int -> value:string -> unit;
  instances : (int, instance) Hashtbl.t;
}

let create ~id ~n ~t ~on_deliver net =
  { id; n; t_bound = t; net; on_deliver; instances = Hashtbl.create 8 }

let instance rb origin =
  match Hashtbl.find_opt rb.instances origin with
  | Some i -> i
  | None ->
    let i =
      {
        echoed = false;
        ready_sent = false;
        value_delivered = None;
        echo_senders = Hashtbl.create 4;
        ready_senders = Hashtbl.create 4;
      }
    in
    Hashtbl.replace rb.instances origin i;
    i

let broadcast rb value =
  Net.broadcast rb.net ~src:rb.id (Init { origin = rb.id; value })

let add table value src =
  let set = match Hashtbl.find_opt table value with Some s -> s | None -> ISet.empty in
  let set = ISet.add src set in
  Hashtbl.replace table value set;
  ISet.cardinal set

let count table value =
  match Hashtbl.find_opt table value with Some s -> ISet.cardinal s | None -> 0

let rec progress rb origin inst =
  Hashtbl.iter
    (fun value _ ->
      (* 2t+1 echoes, or t+1 readies, justify sending READY. *)
      if
        (not inst.ready_sent)
        && (count inst.echo_senders value >= (2 * rb.t_bound) + 1
           || count inst.ready_senders value >= rb.t_bound + 1)
      then begin
        inst.ready_sent <- true;
        Net.broadcast rb.net ~src:rb.id (Ready { origin; value });
        progress rb origin inst
      end;
      (* 2t+1 readies deliver. *)
      if inst.value_delivered = None && count inst.ready_senders value >= (2 * rb.t_bound) + 1
      then begin
        inst.value_delivered <- Some value;
        rb.on_deliver ~origin ~value
      end)
    (let merged = Hashtbl.create 8 in
     Hashtbl.iter (fun v _ -> Hashtbl.replace merged v ()) inst.echo_senders;
     Hashtbl.iter (fun v _ -> Hashtbl.replace merged v ()) inst.ready_senders;
     merged)

let handle rb ~src msg =
  match msg with
  | Init { origin; value } ->
    (* Only the origin itself may initiate; echo the first init. *)
    if src = origin then begin
      let inst = instance rb origin in
      if not inst.echoed then begin
        inst.echoed <- true;
        Net.broadcast rb.net ~src:rb.id (Echo { origin; value })
      end
    end
  | Echo { origin; value } ->
    let inst = instance rb origin in
    ignore (add inst.echo_senders value src);
    progress rb origin inst
  | Ready { origin; value } ->
    let inst = instance rb origin in
    ignore (add inst.ready_senders value src);
    progress rb origin inst

let delivered rb origin =
  match Hashtbl.find_opt rb.instances origin with
  | Some i -> i.value_delivered
  | None -> None
