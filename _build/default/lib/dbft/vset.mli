(** Sets of binary values, i.e. subsets of [{0, 1}], as used for the
    [contestants] and [qualifiers] sets of Algorithm 1. *)

type t

val empty : t
val singleton : int -> t
val both : t
val add : int -> t -> t
val mem : int -> t -> bool
val union : t -> t -> t
val subset : t -> t -> bool
val is_empty : t -> bool
val is_singleton : t -> int option
val to_list : t -> int list
val of_list : int list -> t
val equal : t -> t -> bool
val to_string : t -> string
