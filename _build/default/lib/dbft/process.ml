module Net = Simnet.Network

module ISet = Set.Make (Int)

type round_state = {
  mutable bv_senders : ISet.t array;  (* senders of BV(v), indexed by v *)
  mutable echoed : bool array;  (* v already (re)broadcast *)
  mutable contestants : Vset.t;
  mutable aux_sent : bool;
  mutable favorites : (int * Vset.t) list;  (* reverse arrival order *)
}

type t = {
  id : int;
  n : int;
  t_bound : int;
  net : Message.t Net.t;
  mutable est : int;
  mutable round : int;
  mutable started : bool;
  mutable decided : (int * int) option;
  mutable decisions : (int * int) list;
  mutable max_round : int;
  rounds : (int, round_state) Hashtbl.t;
}

let fresh_round () =
  {
    bv_senders = [| ISet.empty; ISet.empty |];
    echoed = [| false; false |];
    contestants = Vset.empty;
    aux_sent = false;
    favorites = [];
  }

let round_state p r =
  match Hashtbl.find_opt p.rounds r with
  | Some rs -> rs
  | None ->
    let rs = fresh_round () in
    Hashtbl.replace p.rounds r rs;
    rs

let create ~id ~n ~t ~input net =
  if input <> 0 && input <> 1 then invalid_arg "Process.create: binary input expected";
  {
    id;
    n;
    t_bound = t;
    net;
    est = input;
    round = 0;
    started = false;
    decided = None;
    decisions = [];
    max_round = max_int;
    rounds = Hashtbl.create 8;
  }

let id p = p.id
let round p = p.round
let estimate p = p.est
let decision p = p.decided
let decisions p = List.rev p.decisions
let contestants p r = (round_state p r).contestants
let set_max_round p r = p.max_round <- r

let decide p v =
  p.decisions <- (v, p.round) :: p.decisions;
  if p.decided = None then p.decided <- Some (v, p.round)

(* Begin the current round: bv-broadcast(est) (Fig. 1, line 2). *)
let begin_round p =
  let rs = round_state p p.round in
  rs.echoed.(p.est) <- true;
  Net.broadcast p.net ~src:p.id (Message.Bv { round = p.round; value = p.est })

(* Qualifying favorites, oldest first: non-empty aux sets included in the
   contestants set (Algorithm 1, line 9). *)
let qualifying rs =
  List.rev rs.favorites
  |> List.filter (fun (_, vs) -> (not (Vset.is_empty vs)) && Vset.subset vs rs.contestants)

(* Run every enabled action of the current round to quiescence. *)
let rec progress p =
  if p.round <= p.max_round then begin
    let rs = round_state p p.round in
    let changed = ref false in
    (* Fig. 1, lines 4-5: echo a value received from t+1 distinct processes. *)
    List.iter
      (fun v ->
        if (not rs.echoed.(v)) && ISet.cardinal rs.bv_senders.(v) >= p.t_bound + 1 then begin
          rs.echoed.(v) <- true;
          Net.broadcast p.net ~src:p.id (Message.Bv { round = p.round; value = v });
          changed := true
        end)
      [ 0; 1 ];
    (* Fig. 1, lines 6-7: deliver a value received from 2t+1 distinct
       processes. *)
    List.iter
      (fun v ->
        if
          (not (Vset.mem v rs.contestants))
          && ISet.cardinal rs.bv_senders.(v) >= (2 * p.t_bound) + 1
        then begin
          rs.contestants <- Vset.add v rs.contestants;
          changed := true
        end)
      [ 0; 1 ];
    (* Algorithm 1, lines 7-8: broadcast the aux message once contestants
       is non-empty. *)
    if (not rs.aux_sent) && not (Vset.is_empty rs.contestants) then begin
      rs.aux_sent <- true;
      Net.broadcast p.net ~src:p.id (Message.Aux { round = p.round; values = rs.contestants });
      changed := true
    end;
    (* Algorithm 1, lines 9-13. *)
    let quals = qualifying rs in
    if rs.aux_sent && List.length quals >= p.n - p.t_bound then begin
      let chosen = List.filteri (fun i _ -> i < p.n - p.t_bound) quals in
      let qualifiers =
        List.fold_left (fun acc (_, vs) -> Vset.union acc vs) Vset.empty chosen
      in
      (match Vset.is_singleton qualifiers with
       | Some v ->
         p.est <- v;
         if v = p.round mod 2 then decide p v
       | None -> p.est <- p.round mod 2);
      p.round <- p.round + 1;
      if p.round <= p.max_round then begin
        begin_round p;
        progress p
      end
    end
    else if !changed then progress p
  end

let start p =
  if not p.started then begin
    p.started <- true;
    begin_round p;
    progress p
  end

let handle p ~src msg =
  let r = Message.round msg in
  if r >= p.round && r <= p.max_round then begin
    let rs = round_state p r in
    (match msg with
     | Message.Bv { value; _ } ->
       if value = 0 || value = 1 then
         rs.bv_senders.(value) <- ISet.add src rs.bv_senders.(value)
     | Message.Aux { values; _ } ->
       if not (List.mem_assoc src rs.favorites) then
         rs.favorites <- (src, values) :: rs.favorites);
    if r = p.round then progress p
  end
