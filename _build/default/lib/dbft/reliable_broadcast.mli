(** Byzantine reliable broadcast (Bracha-style), the classic component
    the paper lists among the building blocks of blockchain consensus
    (Section 7; [50] is its binary-value variant).

    Guarantees with n > 3t: if a correct origin broadcasts v, every
    correct process delivers (origin, v) [validity]; no two correct
    processes deliver different values for the same origin [consistency];
    if any correct process delivers, every correct process eventually
    delivers [totality].

    Used by {!Vector} to disseminate proposals so that equivocating
    Byzantine proposers cannot make correct processes adopt different
    proposal contents. *)

type msg =
  | Init of { origin : int; value : string }
  | Echo of { origin : int; value : string }
  | Ready of { origin : int; value : string }

val msg_to_string : msg -> string

(** One process's endpoint.  [on_deliver origin value] is invoked at most
    once per origin. *)
type t

val create :
  id:int ->
  n:int ->
  t:int ->
  on_deliver:(origin:int -> value:string -> unit) ->
  msg Simnet.Network.t ->
  t

(** [broadcast rb value] starts reliably broadcasting [value] with this
    process as origin. *)
val broadcast : t -> string -> unit

val handle : t -> src:int -> msg -> unit

(** [delivered rb origin] is the delivered value for [origin], if any. *)
val delivered : t -> int -> string option
