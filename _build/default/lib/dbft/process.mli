(** A correct process running the DBFT binary Byzantine consensus
    (Algorithm 1) with the embedded binary-value broadcast (Fig. 1).

    The process is reactive: {!handle} consumes one delivered message and
    performs every enabled action (echo, bv-deliver, aux broadcast, round
    completion).  Messages from future rounds are buffered, messages from
    past rounds discarded (communication-closedness). *)

type t

(** [create ~id ~n ~t ~input net] makes a process with input value
    [input] in [{0, 1}].  The process does not send anything until
    {!start}. *)
val create : id:int -> n:int -> t:int -> input:int -> Message.t Simnet.Network.t -> t

(** [start p] begins round 0: bv-broadcasts the input value. *)
val start : t -> unit

(** [handle p ~src msg] processes one delivery. *)
val handle : t -> src:int -> Message.t -> unit

val id : t -> int

(** [round p] is the current round number. *)
val round : t -> int

(** [estimate p] is the current estimate. *)
val estimate : t -> int

(** [decision p] is the first decided value with its round, if any. *)
val decision : t -> (int * int) option

(** [decisions p] lists every [decide] invocation (Algorithm 1 may decide
    in several rounds; only the first matters). *)
val decisions : t -> (int * int) list

(** [contestants p r] is the contestants set of round [r] (for tests). *)
val contestants : t -> int -> Vset.t

(** [set_max_round p r] stops the process from starting rounds beyond
    [r] (so that runs without decisions terminate). *)
val set_max_round : t -> int -> unit
