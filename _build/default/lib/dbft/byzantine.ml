module Net = Simnet.Network

type strategy =
  | Silent
  | Equivocate
  | Noise of int
  | Scripted of (round:int -> (int * Message.t) list)

type t = {
  id : int;
  n : int;
  strategy : strategy;
  net : Message.t Net.t;
  seen_rounds : (int, unit) Hashtbl.t;
  rng : Random.State.t;
}

let create ~id ~n strategy net =
  let seed = match strategy with Noise s -> s | _ -> 0 in
  {
    id;
    n;
    strategy;
    net;
    seen_rounds = Hashtbl.create 8;
    rng = Random.State.make [| seed; id |];
  }

let id b = b.id

let act_on_round b round =
  if not (Hashtbl.mem b.seen_rounds round) then begin
    Hashtbl.replace b.seen_rounds round ();
    match b.strategy with
    | Silent -> ()
    | Equivocate ->
      for dest = 0 to b.n - 1 do
        if dest <> b.id then begin
          let v = if 2 * dest < b.n then 0 else 1 in
          Net.send b.net ~src:b.id ~dest (Message.Bv { round; value = v });
          Net.send b.net ~src:b.id ~dest (Message.Aux { round; values = Vset.singleton v })
        end
      done
    | Noise _ ->
      for dest = 0 to b.n - 1 do
        if dest <> b.id then begin
          Net.send b.net ~src:b.id ~dest
            (Message.Bv { round; value = Random.State.int b.rng 2 });
          let values = Vset.of_list (List.filter (fun _ -> Random.State.bool b.rng) [ 0; 1 ]) in
          Net.send b.net ~src:b.id ~dest (Message.Aux { round; values })
        end
      done
    | Scripted f ->
      List.iter (fun (dest, msg) -> Net.send b.net ~src:b.id ~dest msg) (f ~round)
  end

let handle b ~src:_ msg = act_on_round b (Message.round msg)
