type t =
  | Bv of { round : int; value : int }
  | Aux of { round : int; values : Vset.t }

let round = function Bv { round; _ } -> round | Aux { round; _ } -> round

let to_string = function
  | Bv { round; value } -> Printf.sprintf "BV(r=%d, %d)" round value
  | Aux { round; values } -> Printf.sprintf "AUX(r=%d, %s)" round (Vset.to_string values)
