(** The non-termination adversary of the paper's Lemma 7 (Appendix B):
    with [n = 4] and [f = 1], a Byzantine process and an adversarial
    delivery schedule keep the correct estimates in the pattern
    "two processes hold [1 - (r mod 2)], one holds [r mod 2]" forever, so
    no correct process ever decides.  This is the execution showing that
    Algorithm 1 needs the fairness assumption (Definition 3) to
    terminate.

    Roles per round: [a1] and [a2] hold the doomed majority value
    [v = 1 - (r mod 2)]; [c] holds [w = r mod 2].  At the end of the
    round [a1] keeps [v], while [a2] and [c] adopt [w]; the roles rotate
    [(a1, a2, c) -> (c, a2, a1)]. *)

(** Process ids: correct = 0, 1, 2; Byzantine = 3. *)
val byzantine_id : int

(** Inputs for the correct processes 0, 1, 2 (round 0 has [w = 0], so the
    majority holds 1). *)
val inputs : int list

(** [roles ~round] is [(a1, a2, c)]. *)
val roles : round:int -> int * int * int

(** The Byzantine strategy: equivocates BV values and AUX sets exactly as
    in the proof of Lemma 7. *)
val strategy : Byzantine.strategy

(** The adversarial delivery schedule. *)
val scheduler : unit -> Message.t Simnet.Scheduler.t

(** [config ~max_round] assembles the full runner configuration. *)
val config : max_round:int -> Runner.config
