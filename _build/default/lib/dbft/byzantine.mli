(** Byzantine process behaviours.

    A Byzantine process reacts to the messages it receives (it cannot see
    more than the network delivers to it) and may send {e arbitrary}
    messages, including different values to different destinations
    (equivocation).  Strategies are deterministic given their seed so
    that failing runs are reproducible. *)

type strategy =
  | Silent  (** sends nothing: a crashed process *)
  | Equivocate
      (** on each round, sends BV(v) and AUX({v}) with a different v to
          each half of the processes *)
  | Noise of int  (** seeded: random BV values and AUX sets per round and
                      destination, including empty and two-element sets *)
  | Scripted of (round:int -> (int * Message.t) list)
      (** custom per-round sends as [(destination, message)] pairs,
          emitted the first time the process observes that round *)

type t

val create : id:int -> n:int -> strategy -> Message.t Simnet.Network.t -> t
val id : t -> int

(** [handle b ~src msg] lets the Byzantine process react to a delivery. *)
val handle : t -> src:int -> Message.t -> unit
