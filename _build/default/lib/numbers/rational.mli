(** Exact rational numbers over {!Bigint}.

    Values are kept normalized: the denominator is positive and coprime
    with the numerator; zero is represented as [0/1]. *)

type t = private { num : Bigint.t; den : Bigint.t }

val zero : t
val one : t
val minus_one : t

(** [make num den] normalizes [num/den].
    @raise Division_by_zero when [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

val of_bigint : Bigint.t -> t
val of_int : int -> t

(** [of_ints num den] is [make (of_int num) (of_int den)]. *)
val of_ints : int -> int -> t

val num : t -> Bigint.t
val den : t -> Bigint.t

val sign : t -> int
val is_zero : t -> bool

(** [is_integer q] is [true] when the denominator is one. *)
val is_integer : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero when dividing by zero. *)
val div : t -> t -> t

val inv : t -> t

(** [floor q] is the greatest integer [<= q]. *)
val floor : t -> Bigint.t

(** [ceil q] is the least integer [>= q]. *)
val ceil : t -> Bigint.t

(** [to_bigint q] is the numerator when [q] is an integer.
    @raise Failure otherwise. *)
val to_bigint : t -> Bigint.t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Approximate conversion for reporting only. *)
val to_float : t -> float

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
