(** Arbitrary-precision signed integers.

    The sealed build environment has no [zarith]; this module provides the
    exact integer arithmetic required by the linear-arithmetic solver
    ([Smt]), where simplex pivoting can produce coefficients that overflow
    native integers.

    Values are immutable. The representation is sign-magnitude with the
    magnitude stored little-endian in base [2^30]. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val minus_one : t
val two : t

(** {1 Conversions} *)

(** [of_int n] converts a native integer. *)
val of_int : int -> t

(** [to_int x] is [Some n] when [x] fits in a native [int]. *)
val to_int : t -> int option

(** [to_int_exn x] converts to a native [int].
    @raise Failure when [x] does not fit. *)
val to_int_exn : t -> int

(** [of_string s] parses an optionally-signed decimal literal.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

(** [to_string x] renders [x] in decimal. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Predicates and comparisons} *)

(** [sign x] is [-1], [0] or [1]. *)
val sign : t -> int

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val min : t -> t -> t
val max : t -> t -> t

(** [fits_int x] is [true] when [to_int x] would succeed. *)
val fits_int : t -> bool

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

(** [divmod a b] is truncated division: [(q, r)] with [a = q*b + r],
    [|r| < |b|] and [r] having the sign of [a] (like OCaml's [/] and
    [mod]).
    @raise Division_by_zero when [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [ediv_emod a b] is Euclidean division: [(q, r)] with [a = q*b + r] and
    [0 <= r < |b|].
    @raise Division_by_zero when [b] is zero. *)
val ediv_emod : t -> t -> t * t

(** [fdiv a b] is division rounding toward negative infinity. *)
val fdiv : t -> t -> t

(** [cdiv a b] is division rounding toward positive infinity. *)
val cdiv : t -> t -> t

(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)
val gcd : t -> t -> t

(** [lcm a b] is the non-negative least common multiple. *)
val lcm : t -> t -> t

(** [mul_int x n] multiplies by a native integer. *)
val mul_int : t -> int -> t

(** [pow x n] raises [x] to the non-negative power [n].
    @raise Invalid_argument when [n < 0]. *)
val pow : t -> int -> t

(** [shift_left x n] is [x * 2^n] for [n >= 0]. *)
val shift_left : t -> int -> t

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
