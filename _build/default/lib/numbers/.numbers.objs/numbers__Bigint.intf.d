lib/numbers/bigint.mli: Format
