lib/numbers/rational.mli: Bigint Format
