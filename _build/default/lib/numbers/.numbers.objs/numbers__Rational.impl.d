lib/numbers/rational.ml: Bigint Format Stdlib String
