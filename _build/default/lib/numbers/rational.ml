type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    { num = Bigint.div num g; den = Bigint.div den g }
  end

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }
let minus_one = { num = Bigint.minus_one; den = Bigint.one }

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints num den = make (Bigint.of_int num) (Bigint.of_int den)

let num q = q.num
let den q = q.den

let sign q = Bigint.sign q.num
let is_zero q = Bigint.is_zero q.num
let is_integer q = Bigint.equal q.den Bigint.one

let compare a b =
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg q = { q with num = Bigint.neg q.num }
let abs q = { q with num = Bigint.abs q.num }

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let inv q =
  if is_zero q then raise Division_by_zero;
  make q.den q.num

let div a b = mul a (inv b)

let floor q = Bigint.fdiv q.num q.den
let ceil q = Bigint.cdiv q.num q.den

let to_bigint q =
  if is_integer q then q.num
  else failwith "Rational.to_bigint: not an integer"

let to_string q =
  if is_integer q then Bigint.to_string q.num
  else Bigint.to_string q.num ^ "/" ^ Bigint.to_string q.den

let pp fmt q = Format.pp_print_string fmt (to_string q)

let to_float q =
  (* Good enough for reporting: convert through strings only when the
     components fit a native int, otherwise fall back to a quotient of
     floats of the leading decimal digits. *)
  match (Bigint.to_int q.num, Bigint.to_int q.den) with
  | Some n, Some d -> float_of_int n /. float_of_int d
  | _ ->
    let approx b =
      let s = Bigint.to_string (Bigint.abs b) in
      let sgn = if Bigint.sign b < 0 then -1.0 else 1.0 in
      let head = String.sub s 0 (Stdlib.min 15 (String.length s)) in
      let exp = String.length s - String.length head in
      sgn *. float_of_string head *. (10.0 ** float_of_int exp)
    in
    approx q.num /. approx q.den

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
