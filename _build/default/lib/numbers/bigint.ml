(* Sign-magnitude arbitrary-precision integers, magnitude little-endian in
   base 2^30.  Invariants: no leading (high-order) zero digit; [sign] is 0
   iff the magnitude is empty; every digit is in [0, 2^30). *)

let bits_per_digit = 30
let base = 1 lsl bits_per_digit
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude helpers (operate on raw digit arrays).                    *)

let normalize_mag mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi = n - 1 then mag else Array.sub mag 0 (hi + 1)

let make sign mag =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then zero else { sign; mag }

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land mask;
    carry := s lsr bits_per_digit
  done;
  r

(* Requires [a >= b] as magnitudes. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- cur land mask;
        carry := cur lsr bits_per_digit
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur land mask;
        carry := cur lsr bits_per_digit;
        incr k
      done
    done;
    r
  end

(* Multiply a magnitude by a small non-negative native int (< 2^30). *)
let mul_mag_small a m =
  if m = 0 then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 2) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let cur = (a.(i) * m) + !carry in
      r.(i) <- cur land mask;
      carry := cur lsr bits_per_digit
    done;
    let k = ref la in
    while !carry <> 0 do
      r.(!k) <- !carry land mask;
      carry := !carry lsr bits_per_digit;
      incr k
    done;
    r
  end

(* Add a small non-negative native int (< 2^30) to a magnitude. *)
let add_mag_small a m =
  let la = Array.length a in
  let r = Array.make (la + 1) 0 in
  Array.blit a 0 r 0 la;
  let carry = ref m in
  let i = ref 0 in
  while !carry <> 0 do
    let cur = r.(!i) + !carry in
    r.(!i) <- cur land mask;
    carry := cur lsr bits_per_digit;
    incr i
  done;
  r

let bit_length_mag a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((la - 1) * bits_per_digit) + width 1
  end

let get_bit a k =
  (a.(k / bits_per_digit) lsr (k mod bits_per_digit)) land 1

(* Long division of magnitudes, bit at a time.  Adequate for the modest
   coefficient sizes produced by the solver. *)
let divmod_mag a b =
  let lb = Array.length b in
  if lb = 0 then raise Division_by_zero;
  if compare_mag a b < 0 then ([||], Array.copy a)
  else begin
    let la = Array.length a in
    let bits = bit_length_mag a in
    let q = Array.make la 0 in
    let r = Array.make (lb + 1) 0 in
    (* [r >= b] where r is a (lb+1)-digit window. *)
    let r_ge_b () =
      if r.(lb) <> 0 then true
      else
        let rec go i =
          if i < 0 then true
          else if r.(i) <> b.(i) then r.(i) > b.(i)
          else go (i - 1)
        in
        go (lb - 1)
    in
    let r_sub_b () =
      let borrow = ref 0 in
      for i = 0 to lb do
        let db = if i < lb then b.(i) else 0 in
        let s = r.(i) - db - !borrow in
        if s < 0 then begin
          r.(i) <- s + base;
          borrow := 1
        end
        else begin
          r.(i) <- s;
          borrow := 0
        end
      done;
      assert (!borrow = 0)
    in
    for k = bits - 1 downto 0 do
      let carry = ref (get_bit a k) in
      for i = 0 to lb do
        let v = (r.(i) lsl 1) lor !carry in
        r.(i) <- v land mask;
        carry := v lsr bits_per_digit
      done;
      if r_ge_b () then begin
        r_sub_b ();
        q.(k / bits_per_digit) <-
          q.(k / bits_per_digit) lor (1 lsl (k mod bits_per_digit))
      end
    done;
    (q, r)
  end

(* Divide a magnitude by a small positive int; returns quotient digits and
   native remainder. *)
let divmod_mag_small a m =
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl bits_per_digit) lor a.(i) in
    q.(i) <- cur / m;
    rem := cur mod m
  done;
  (q, !rem)

(* ------------------------------------------------------------------ *)
(* Public operations.                                                  *)

let one = { sign = 1; mag = [| 1 |] }
let two = { sign = 1; mag = [| 2 |] }
let minus_one = { sign = -1; mag = [| 1 |] }

let of_int n =
  if n = 0 then zero
  else begin
    (* Work with the negative of |n| to avoid [min_int] overflow. *)
    let sign = if n > 0 then 1 else -1 in
    let m = if n > 0 then -n else n in
    let rec digits m acc = if m = 0 then acc else digits (m / base) (-(m mod base) :: acc) in
    let ds = digits m [] in
    let mag = Array.of_list (List.rev ds) in
    { sign; mag }
  end

let sign x = x.sign
let is_zero x = x.sign = 0

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash x =
  Array.fold_left (fun acc d -> (acc * 31) + d) (x.sign + 7) x.mag
  land max_int

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (add_mag a.mag b.mag)
  else begin
    let c = compare_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (sub_mag a.mag b.mag)
    else make b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)
let succ x = add x one
let pred x = sub x one

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mul_mag a.mag b.mag)

let mul_int x n =
  if n = 0 || x.sign = 0 then zero
  else begin
    let s = if n > 0 then x.sign else -x.sign in
    let m = Stdlib.abs n in
    if m < base then make s (mul_mag_small x.mag m)
    else mul x (of_int n)
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = divmod_mag a.mag b.mag in
    let q = make (a.sign * b.sign) qm in
    let r = make a.sign rm in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv_emod a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (pred q, add r b)
  else (succ q, sub r b)

let fdiv a b =
  let q, r = divmod a b in
  if r.sign = 0 || r.sign = b.sign then q else pred q

let cdiv a b =
  let q, r = divmod a b in
  if r.sign = 0 || r.sign <> b.sign then q else succ q

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let lcm a b =
  if is_zero a || is_zero b then zero
  else abs (mul (div a (gcd a b)) b)

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc base n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc base) (mul base base) (n lsr 1)
    else go acc (mul base base) (n lsr 1)
  in
  go one x n

let shift_left x n =
  if n < 0 then invalid_arg "Bigint.shift_left: negative shift";
  mul x (pow two n)

let fits_int x =
  (* Conservative: at most 62 bits of magnitude always fits. *)
  bit_length_mag x.mag <= 62

let to_int x =
  if not (fits_int x) then None
  else begin
    let v = Array.fold_right (fun d acc -> (acc lsl bits_per_digit) lor d) x.mag 0 in
    Some (if x.sign < 0 then -v else v)
  end

let to_int_exn x =
  match to_int x with
  | Some v -> v
  | None -> failwith "Bigint.to_int_exn: does not fit in a native int"

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let chunks = ref [] in
    let m = ref x.mag in
    while Array.length (normalize_mag !m) > 0 do
      let q, r = divmod_mag_small !m 1_000_000_000 in
      chunks := r :: !chunks;
      m := normalize_mag q
    done;
    let buf = Buffer.create 32 in
    if x.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let negative, start =
    match s.[0] with
    | '-' -> (true, 1)
    | '+' -> (false, 1)
    | _ -> (false, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let mag = ref [||] in
  for i = start to len - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: invalid digit";
    mag := add_mag_small (mul_mag_small !mag 10) (Char.code c - Char.code '0')
  done;
  let v = make 1 !mag in
  if negative then neg v else v

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
