(* The paper's holistic verification pipeline, end to end:

   1. verify the four properties of the inner binary-value broadcast
      (Fig. 2) for all parameters n > 3t >= 3f;
   2. exploit them: the simplified consensus automaton (Fig. 4) replaces
      the inner broadcast by a gadget whose justice constraints are
      exactly the proven properties (Appendix F);
   3. verify the consensus safety invariants and liveness ingredients on
      the simplified automaton, again for all parameters;
   4. conclude Agreement, Validity and (under fairness) Termination by
      the paper's Theorem 6.

   Run with: dune exec examples/verify_consensus.exe        (full, ~2min)
             dune exec examples/verify_consensus.exe -- --fast *)

let fast = Array.exists (( = ) "--fast") Sys.argv

let () =
  Format.printf "Phase 1: the inner binary-value broadcast (Fig. 2)@.";
  let bv_u = Holistic.Universe.build Models.Bv_ta.automaton in
  List.iter
    (fun spec ->
      let r = Holistic.Checker.verify_with_universe bv_u spec in
      Format.printf "  %a@." Holistic.Checker.pp_result r)
    Models.Bv_ta.table2_specs;
  Format.printf
    "@.Phase 2: the simplified consensus automaton (Fig. 4) imports those@.";
  Format.printf
    "properties as justice constraints on its bv-broadcast gadget.@.@.";
  Format.printf "Phase 3: consensus invariants, for all n > 3t, t >= f >= 0@.";
  let simp_u = Holistic.Universe.build Models.Simplified_ta.automaton in
  let specs =
    if fast then [ Models.Simplified_ta.inv2_0; Models.Simplified_ta.dec_0 ]
    else Models.Simplified_ta.all_specs
  in
  List.iter
    (fun spec ->
      let r = Holistic.Checker.verify_with_universe simp_u spec in
      Format.printf "  %a@." Holistic.Checker.pp_result r)
    specs;
  Format.printf
    "@.Phase 4 (Theorem 6): Inv1 and Inv2 imply Agreement and Validity;@.";
  Format.printf
    "SRound-Term, Dec and Good plus the fairness of the bv-broadcast imply@.";
  Format.printf "Termination.  The consensus algorithm is verified holistically.@."
