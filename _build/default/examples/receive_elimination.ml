(* The modelling step of Section 3.1: replacing local receive counters by
   global send counters via Presburger quantifier elimination.

   The pseudocode guard is "received v from at least t+1 distinct
   processes".  With b correct senders (the shared variable) and up to f
   Byzantine processes free to send anything, the receptions rcvd at a
   correct process satisfy 0 <= rcvd <= b + f.  The guard is realizable
   iff

       exists rcvd. 0 <= rcvd <= b + f  /\  rcvd >= t+1

   and Cooper's algorithm eliminates rcvd, yielding the threshold
   automaton guard b >= t+1-f used throughout Figures 2-4.

   Run with: dune exec examples/receive_elimination.exe *)

module P = Presburger
module T = Presburger.Term
module B = Numbers.Bigint

let () =
  let rcvd = T.var "rcvd" and b = T.var "b" and t = T.var "t" and f = T.var "f" in
  let guard =
    P.Exists
      ( "rcvd",
        P.And
          [
            P.ge rcvd (T.const 0);
            P.le rcvd (T.add b f);
            P.ge rcvd (T.add t (T.const 1));
          ] )
  in
  Format.printf "pseudocode guard:@.  %s@.@." (P.to_string guard);
  let eliminated = P.eliminate guard in
  Format.printf "after quantifier elimination:@.  %s@.@." (P.to_string eliminated);
  (* Prove, again with Cooper, that the eliminated guard is equivalent to
     the b >= t+1-f guard of the threshold automata, for all admissible
     parameters (t >= f >= 0, b >= 0). *)
  let ta_guard = P.ge b (T.sub (T.add t (T.const 1)) f) in
  let admissible =
    P.And [ P.ge (T.var "t") (T.var "f"); P.ge (T.var "f") (T.const 0); P.ge b (T.const 0) ]
  in
  let equivalence =
    P.Forall
      ( "b",
        P.Forall
          ( "t",
            P.Forall
              ( "f",
                P.Or
                  [
                    P.Not admissible;
                    P.And
                      [
                        P.Or [ P.Not eliminated; ta_guard ];
                        P.Or [ P.Not ta_guard; eliminated ];
                      ];
                  ] ) ) )
  in
  Format.printf "equivalent to the TA guard  b >= t+1-f  for all parameters: %b@."
    (P.is_valid equivalence)
