(* A domain scenario from the paper's introduction: the same DBFT binary
   consensus is used for e-voting [14] and blockchains [20].  Here a
   committee of n authorities must agree on whether a ballot batch is
   valid (1) or not (0), while up to t of them are compromised.

   We run the executable consensus over many committees and tallies and
   check the three consensus properties the paper verifies:
   - Agreement: no two honest authorities certify different outcomes;
   - Validity:  a certified outcome was proposed by an honest authority
                (a compromised minority cannot forge validity);
   - Termination: every honest authority eventually certifies.

   Run with: dune exec examples/evoting.exe *)

let scenario ~label ~n ~t ~assessments ~byzantine ~seed =
  let report =
    Dbft.Runner.run
      (Dbft.Runner.config ~n ~t ~inputs:assessments ~byzantine
         ~scheduler:(Simnet.Scheduler.random ~seed) ())
  in
  let outcome =
    match report.Dbft.Runner.decisions with
    | (_, v, _) :: _ -> string_of_int v
    | [] -> "none"
  in
  Printf.printf
    "%-34s honest assessments %-12s -> certified %-4s (agreement %b, validity %b, all \
     decided %b, %d messages)\n"
    label
    (String.concat "," (List.map string_of_int assessments))
    outcome report.Dbft.Runner.agreement report.Dbft.Runner.validity
    report.Dbft.Runner.all_decided report.Dbft.Runner.steps;
  assert (report.Dbft.Runner.agreement && report.Dbft.Runner.validity)

let () =
  print_endline "e-voting certification committee (DBFT binary consensus)";
  print_endline "=========================================================";
  (* 4 authorities, one compromised and equivocating. *)
  scenario ~label:"4 authorities, 1 equivocating" ~n:4 ~t:1 ~assessments:[ 1; 1; 1 ]
    ~byzantine:[ (3, Dbft.Byzantine.Equivocate) ] ~seed:11;
  (* Honest authorities disagree on the batch: consensus still converges
     on one of their assessments. *)
  scenario ~label:"4 authorities, split assessment" ~n:4 ~t:1 ~assessments:[ 1; 0; 1 ]
    ~byzantine:[ (3, Dbft.Byzantine.Noise 5) ] ~seed:12;
  (* A larger committee: 7 authorities, 2 compromised. *)
  scenario ~label:"7 authorities, 2 compromised" ~n:7 ~t:2 ~assessments:[ 0; 0; 1; 0; 1 ]
    ~byzantine:[ (5, Dbft.Byzantine.Equivocate); (6, Dbft.Byzantine.Silent) ] ~seed:13;
  (* Unanimous rejection cannot be flipped by the compromised member. *)
  scenario ~label:"unanimous rejection stands" ~n:4 ~t:1 ~assessments:[ 0; 0; 0 ]
    ~byzantine:[ (3, Dbft.Byzantine.Noise 7) ] ~seed:14;
  print_endline "\nall committee runs satisfied Agreement and Validity."
