(* The Red Belly Blockchain construction the verified consensus serves
   (paper, Section 1; [20]): block creation by vector ("superblock")
   consensus.  Each participant proposes a batch of transactions;
   proposals are disseminated by Byzantine reliable broadcast and n
   parallel instances of the verified DBFT binary consensus decide which
   batches enter the block.  The superblock aggregates every accepted
   batch — this is what makes Red Belly scale: all proposers contribute,
   instead of one leader.

   Run with: dune exec examples/redbelly_superblock.exe *)

let show label cfg =
  Printf.printf "-- %s --\n%!" label;
  let r = Dbft.Vector.run cfg in
  Format.printf "%a@.@." Dbft.Vector.pp_report r;
  assert (r.Dbft.Vector.agreement && r.Dbft.Vector.integrity)

let () =
  print_endline "Red Belly superblock consensus";
  print_endline "==============================";
  print_newline ();
  (* Four validators, all honest: all four batches enter the block
     (or at least n - t of them, depending on message timing). *)
  show "4 honest validators"
    (Dbft.Vector.config ~n:4 ~t:1
       ~proposals:
         [ (0, "tx[a7,b2]"); (1, "tx[c9]"); (2, "tx[d1,d2,d3]"); (3, "tx[e5]") ]
       ~seed:42 ());
  (* One validator is malicious and equivocates its batch: reliable
     broadcast prevents correct validators from adopting different
     contents, and the batch is excluded from the block. *)
  show "3 honest + 1 equivocating validator"
    (Dbft.Vector.config ~n:4 ~t:1
       ~proposals:[ (0, "tx[f4]"); (1, "tx[g8,g9]"); (2, "tx[h0]") ]
       ~byzantine:[ 3 ] ~seed:43 ());
  (* A bigger committee: seven validators, two Byzantine. *)
  show "5 honest + 2 byzantine validators (n = 7, t = 2)"
    (Dbft.Vector.config ~n:7 ~t:2
       ~proposals:
         [ (0, "tx[i1]"); (1, "tx[j2]"); (2, "tx[k3]"); (3, "tx[l4]"); (4, "tx[m5]") ]
       ~byzantine:[ 5; 6 ] ~seed:44 ());
  print_endline "every run produced one agreed superblock with genuine batches only."
