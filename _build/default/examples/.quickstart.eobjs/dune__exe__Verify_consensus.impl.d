examples/verify_consensus.ml: Array Format Holistic List Models Sys
