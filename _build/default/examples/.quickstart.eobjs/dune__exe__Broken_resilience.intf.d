examples/broken_resilience.mli:
