examples/verify_consensus.mli:
