examples/broken_resilience.ml: Explicit Format Holistic List Models Unix
