examples/evoting.mli:
