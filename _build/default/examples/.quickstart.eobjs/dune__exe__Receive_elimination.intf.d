examples/receive_elimination.mli:
