examples/receive_elimination.ml: Format Numbers Presburger
