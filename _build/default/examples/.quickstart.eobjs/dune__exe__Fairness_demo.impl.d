examples/fairness_demo.ml: Dbft Format List Simnet String
