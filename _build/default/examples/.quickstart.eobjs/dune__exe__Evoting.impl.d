examples/evoting.ml: Dbft List Printf Simnet String
