examples/quickstart.mli:
