examples/redbelly_superblock.ml: Dbft Format Printf
