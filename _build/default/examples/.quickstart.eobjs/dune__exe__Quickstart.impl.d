examples/quickstart.ml: Explicit Format Holistic Ta
