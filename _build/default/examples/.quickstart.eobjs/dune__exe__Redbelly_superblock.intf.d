examples/redbelly_superblock.mli:
