(* Quickstart: model a tiny fault-tolerant broadcast as a threshold
   automaton and verify it for ALL parameters with the schema-based
   checker — the workflow of the paper in miniature.

   The algorithm: each of the n - f correct processes broadcasts an ECHO
   message; a process accepts once it has received ECHO from t+1 distinct
   processes (of which f may be Byzantine).  We verify:
   - safety:   nobody accepts unless some correct process echoed;
   - liveness: eventually every process accepts.

   Run with: dune exec examples/quickstart.exe *)

module A = Ta.Automaton
module G = Ta.Guard
module P = Ta.Pexpr
module C = Ta.Cond
module S = Ta.Spec

let () =
  (* 1. The automaton: locations INIT -> ECHOED -> ACCEPTED; the shared
        variable e counts ECHO messages from correct processes; the guard
        discounts the f Byzantine echoes as in the paper (Section 3.1). *)
  let echo_threshold = P.of_terms [ ("t", 1); ("f", -1) ] 1 (* t + 1 - f *) in
  let ta =
    A.make ~name:"echo_broadcast" ~params:[ "n"; "t"; "f" ] ~shared:[ "e" ]
      ~locations:[ "INIT"; "ECHOED"; "ACCEPTED" ] ~initial:[ "INIT" ]
      ~resilience:
        [
          P.of_terms [ ("n", 1); ("t", -3) ] (-1) (* n > 3t *);
          P.of_terms [ ("t", 1); ("f", -1) ] 0 (* t >= f *);
          P.param "f" (* f >= 0 *);
        ]
      ~population:(P.of_terms [ ("n", 1); ("f", -1) ] 0)
      ~rules:
        [
          A.rule "echo" ~source:"INIT" ~target:"ECHOED" ~update:[ ("e", 1) ];
          A.rule "accept" ~source:"ECHOED" ~target:"ACCEPTED"
            ~guard:(G.ge1 "e" echo_threshold);
        ]
      ()
  in
  Format.printf "automaton: %a@." A.pp_stats (A.stats ta);

  (* 2. Safety: if no correct process ever echoes... here every correct
        process echoes immediately, so instead we check the threshold
        arithmetic: nobody accepts while fewer than t+1-f correct echoes
        were sent.  A violation would be a run reaching ACCEPTED with
        e < t+1-f. *)
  let premature =
    S.invariant ~name:"no-premature-accept"
      ~ltl:"[](k[ACCEPTED] != 0 => e >= t+1-f)"
      ~bad:
        [
          ( "accepted with too few echoes",
            C.conj [ C.counter_ge "ACCEPTED" 1; C.shared_lt [ ("e", 1) ] echo_threshold ] );
        ]
      ()
  in
  let r = Holistic.Checker.verify ta premature in
  Format.printf "%a@." Holistic.Checker.pp_result r;

  (* 3. Liveness: every correct process eventually accepts.  This needs
        the fairness of reliable communication (rules fire when enabled)
        and holds because n - f >= t + 1 - f correct echoes are sent. *)
  let termination =
    S.liveness ~name:"all-accept" ~ltl:"<>(k[INIT] = 0 /\\ k[ECHOED] = 0)"
      ~target_violated:(C.some_nonempty [ "INIT"; "ECHOED" ])
      ()
  in
  let r = Holistic.Checker.verify ta termination in
  Format.printf "%a@." Holistic.Checker.pp_result r;

  (* 4. Seeing a counterexample: raise the acceptance threshold to
        2n messages — more than can ever be sent — and liveness breaks.
        The checker prints concrete parameters and an accelerated run. *)
  let broken =
    A.make ~name:"echo_broadcast_broken" ~params:[ "n"; "t"; "f" ] ~shared:[ "e" ]
      ~locations:[ "INIT"; "ECHOED"; "ACCEPTED" ] ~initial:[ "INIT" ]
      ~resilience:
        [
          P.of_terms [ ("n", 1); ("t", -3) ] (-1);
          P.of_terms [ ("t", 1); ("f", -1) ] 0;
          P.param "f";
        ]
      ~population:(P.of_terms [ ("n", 1); ("f", -1) ] 0)
      ~rules:
        [
          A.rule "echo" ~source:"INIT" ~target:"ECHOED" ~update:[ ("e", 1) ];
          A.rule "accept" ~source:"ECHOED" ~target:"ACCEPTED"
            ~guard:(G.ge1 "e" (P.of_terms [ ("n", 2) ] 0));
        ]
      ()
  in
  let r = Holistic.Checker.verify broken termination in
  Format.printf "%a@." Holistic.Checker.pp_result r;

  (* 5. Cross-check at fixed parameters with the explicit-state
        baseline. *)
  let params = [ ("n", 4); ("t", 1); ("f", 1) ] in
  Format.printf "explicit n=4,t=1,f=1: premature-accept %a, termination %a@."
    Explicit.pp_outcome
    (Explicit.check ta premature params)
    Explicit.pp_outcome
    (Explicit.check ta termination params)
