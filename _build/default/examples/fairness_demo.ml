(* Why the paper needs its fairness assumption (Definition 3): without
   it, Algorithm 1 does not terminate (Lemma 7 / Appendix B).

   We run the executable DBFT consensus on the simulated network twice
   with the SAME Byzantine process:
   - under the adversarial delivery schedule of the Lemma 7 proof, the
     correct estimates cycle forever and nobody decides;
   - under a fair (random) scheduler, some round is (r mod 2)-good with
     probability 1 and everyone decides.

   Run with: dune exec examples/fairness_demo.exe *)

let () =
  let rounds = 10 in
  Format.printf "n = 4, t = 1; correct processes p0, p1, p2 with inputs %s; p3 Byzantine@."
    (String.concat ", " (List.map string_of_int Dbft.Lemma7.inputs));
  Format.printf "@.-- adversarial schedule (Lemma 7) for %d rounds --@." rounds;
  let report = Dbft.Runner.run (Dbft.Lemma7.config ~max_round:rounds) in
  Format.printf "%a@." Dbft.Runner.pp_report report;
  (if report.Dbft.Runner.decisions = [] then
     Format.printf
       "==> no correct process decided in %d rounds; the estimate pattern@.    \
        (two processes on 1 - r mod 2, one on r mod 2) repeats forever.@."
       rounds);
  Format.printf "@.-- same adversary, fair random scheduler --@.";
  let base = Dbft.Lemma7.config ~max_round:40 in
  let fair = { base with scheduler = Simnet.Scheduler.random ~seed:2024 } in
  let report = Dbft.Runner.run fair in
  Format.printf "%a@." Dbft.Runner.pp_report report;
  if report.Dbft.Runner.all_decided then
    Format.printf
      "==> with fair message delivery every correct process decides: the fairness@.    \
       assumption (Definition 3) is what Section 5.2 proves sufficient.@."
