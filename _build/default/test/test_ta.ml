(* Tests for the threshold-automata modelling layer: parameter
   expressions, guards, automaton validation and structure, conditions,
   DOT export, and the structural facts about the three paper models that
   the checker's soundness relies on. *)

module P = Ta.Pexpr
module G = Ta.Guard
module A = Ta.Automaton
module C = Ta.Cond

let penv = function "n" -> 7 | "t" -> 2 | "f" -> 1 | _ -> 0

(* ------------------------------------------------------------------ *)
(* Pexpr.                                                               *)

let test_pexpr_normalize () =
  let e = P.of_terms [ ("n", 1); ("t", -1); ("n", 2) ] 5 in
  Alcotest.(check int) "eval" (21 - 2 + 5) (P.eval penv e);
  Alcotest.(check string) "print" "3*n - t + 5" (P.to_string e);
  let z = P.of_terms [ ("n", 1); ("n", -1) ] 0 in
  Alcotest.(check string) "zero" "0" (P.to_string z);
  Alcotest.(check (list string)) "params dropped" [] (P.params z)

let test_pexpr_arith () =
  let a = P.of_terms [ ("t", 2) ] 1 in
  let b = P.of_terms [ ("f", -1) ] 0 in
  Alcotest.(check int) "add" (4 + 1 - 1) (P.eval penv (P.add a b));
  Alcotest.(check int) "sub" (4 + 1 + 1) (P.eval penv (P.sub a b));
  Alcotest.(check int) "scale" (-10) (P.eval penv (P.scale (-2) a));
  Alcotest.(check bool) "equal" true (P.equal (P.add a b) (P.of_terms [ ("f", -1); ("t", 2) ] 1))

(* ------------------------------------------------------------------ *)
(* Guard.                                                               *)

let test_guard_holds () =
  let g = G.ge [ ("b0", 1); ("b1", 2) ] (P.of_terms [ ("t", 1) ] 1) in
  let shared = function "b0" -> 1 | "b1" -> 1 | _ -> 0 in
  Alcotest.(check bool) "3 >= 3" true (G.holds ~shared ~params:penv g);
  let shared0 = fun _ -> 0 in
  Alcotest.(check bool) "0 >= 3" false (G.holds ~shared:shared0 ~params:penv g);
  Alcotest.(check bool) "true guard" true (G.holds ~shared:shared0 ~params:penv G.tt)

let test_guard_rejects_nonpositive () =
  Alcotest.check_raises "zero coeff"
    (Invalid_argument "Guard.ge: non-positive coefficient 0 for b0") (fun () ->
      ignore (G.ge [ ("b0", 0) ] (P.const 1)))

let test_guard_to_string () =
  let g = G.ge1 "b0" (P.of_terms [ ("t", 2); ("f", -1) ] 1) in
  Alcotest.(check string) "render" "b0 >= 2*t - f + 1" (G.to_string g)

(* ------------------------------------------------------------------ *)
(* Automaton validation and structure.                                  *)

let tiny ?(rules = []) ?(initial = [ "A" ]) () =
  A.make ~name:"tiny" ~params:[ "n" ] ~shared:[ "x" ] ~locations:[ "A"; "B"; "C" ]
    ~initial ~resilience:[ P.param "n" ] ~population:(P.param "n") ~rules ()

let test_automaton_validation () =
  let r = A.rule "r1" ~source:"A" ~target:"B" ~update:[ ("x", 1) ] in
  let ta = tiny ~rules:[ r ] () in
  Alcotest.(check int) "rules" 1 (A.stats ta).A.n_rules;
  Alcotest.check_raises "unknown source"
    (Invalid_argument "Automaton tiny: rule bad has unknown source \"Z\"") (fun () ->
      ignore (tiny ~rules:[ A.rule "bad" ~source:"Z" ~target:"B" ] ()));
  Alcotest.check_raises "negative update"
    (Invalid_argument "Automaton tiny: rule bad has a negative update (monotonicity violated)")
    (fun () ->
      ignore (tiny ~rules:[ A.rule "bad" ~source:"A" ~target:"B" ~update:[ ("x", -1) ] ] ()));
  Alcotest.check_raises "self loop"
    (Invalid_argument "Automaton tiny: rule bad is a self-loop; use the self_loops count instead")
    (fun () -> ignore (tiny ~rules:[ A.rule "bad" ~source:"A" ~target:"A" ] ()))

let test_automaton_dag () =
  let ta =
    tiny
      ~rules:[ A.rule "r1" ~source:"A" ~target:"B"; A.rule "r2" ~source:"B" ~target:"C" ]
      ()
  in
  Alcotest.(check bool) "dag" true (A.is_dag ta);
  let cyclic =
    tiny
      ~rules:[ A.rule "r1" ~source:"A" ~target:"B"; A.rule "r2" ~source:"B" ~target:"A" ]
      ()
  in
  Alcotest.(check bool) "cycle" false (A.is_dag cyclic);
  Alcotest.check_raises "topo on cycle" (Invalid_argument "Automaton tiny is not a DAG")
    (fun () -> ignore (A.topological_rule_order cyclic))

let test_topological_order () =
  let ta =
    tiny
      ~rules:
        [
          A.rule "bc" ~source:"B" ~target:"C";
          A.rule "ab" ~source:"A" ~target:"B";
          A.rule "ac" ~source:"A" ~target:"C";
        ]
      ()
  in
  let order = List.map (fun (r : A.rule) -> r.name) (A.topological_rule_order ta) in
  let pos x = Option.get (List.find_index (( = ) x) order) in
  Alcotest.(check bool) "ab before bc" true (pos "ab" < pos "bc");
  Alcotest.(check bool) "ac before bc" true (pos "ac" < pos "bc")

let test_sinks_absorbing () =
  let ta =
    tiny
      ~rules:[ A.rule "r1" ~source:"A" ~target:"B"; A.rule "r2" ~source:"B" ~target:"C" ]
      ()
  in
  Alcotest.(check (list string)) "sinks" [ "C" ] (A.sinks ta);
  Alcotest.(check bool) "A,B absorbing" true (A.absorbing_when_empty ta [ "A"; "B" ]);
  Alcotest.(check bool) "B alone not absorbing" false (A.absorbing_when_empty ta [ "B" ])

(* ------------------------------------------------------------------ *)
(* Cond.                                                                *)

let test_cond_eval () =
  let counter = function "A" -> 2 | "B" -> 0 | _ -> 0 in
  let shared = function "x" -> 3 | _ -> 0 in
  let holds c = C.holds ~counter ~shared ~params:penv c in
  Alcotest.(check bool) "empty B" true (holds (C.empty "B"));
  Alcotest.(check bool) "empty A" false (holds (C.empty "A"));
  Alcotest.(check bool) "sum >= 2" true (holds (C.sum_ge [ "A"; "B" ] 2));
  Alcotest.(check bool) "sum >= 3" false (holds (C.sum_ge [ "A"; "B" ] 3));
  Alcotest.(check bool) "x >= t+1" true (holds (C.shared_ge [ ("x", 1) ] (P.of_terms [ ("t", 1) ] 1)));
  Alcotest.(check bool) "x < t+1" false (holds (C.shared_lt [ ("x", 1) ] (P.of_terms [ ("t", 1) ] 1)));
  Alcotest.(check bool) "x < t+2" true (holds (C.shared_lt [ ("x", 1) ] (P.of_terms [ ("t", 1) ] 2)));
  Alcotest.(check bool) "conj" true (holds (C.conj [ C.empty "B"; C.counter_ge "A" 1 ]))

let test_cond_guard_roundtrip () =
  let atom = List.hd (G.ge1 "x" (P.of_terms [ ("t", 1) ] 1)) in
  let eval shared_x c =
    C.holds ~counter:(fun _ -> 0) ~shared:(fun _ -> shared_x) ~params:penv c
  in
  Alcotest.(check bool) "atom true" true (eval 3 (C.of_guard_atom atom));
  Alcotest.(check bool) "atom false" false (eval 2 (C.of_guard_atom atom));
  Alcotest.(check bool) "negation true" true (eval 2 (C.negate_guard_atom atom));
  Alcotest.(check bool) "negation false" false (eval 3 (C.negate_guard_atom atom))

(* ------------------------------------------------------------------ *)
(* The paper models: sizes and structural preconditions.                *)

let test_bv_model_structure () =
  let ta = Models.Bv_ta.automaton in
  let s = A.stats ta in
  Alcotest.(check int) "guards" 4 s.A.n_guards;
  Alcotest.(check int) "locations" 10 s.A.n_locations;
  Alcotest.(check int) "rules (incl. self-loops)" 19 s.A.n_rules;
  Alcotest.(check bool) "dag" true (A.is_dag ta);
  (* The liveness targets are absorbing (checker precondition). *)
  Alcotest.(check bool) "undelivered-0 set absorbing" true
    (A.absorbing_when_empty ta (Models.Bv_ta.locs_missing "0"));
  Alcotest.(check bool) "initial+broadcast set absorbing" true
    (A.absorbing_when_empty ta [ "V0"; "V1"; "B0"; "B1"; "B01" ])

let test_simplified_model_structure () =
  let ta = Models.Simplified_ta.automaton in
  let s = A.stats ta in
  Alcotest.(check int) "guards" 10 s.A.n_guards;
  Alcotest.(check int) "rules (incl. self-loops)" 37 s.A.n_rules;
  Alcotest.(check bool) "dag" true (A.is_dag ta);
  Alcotest.(check (list string)) "sinks" [ "E0x"; "E1x"; "D0" ] (A.sinks ta);
  Alcotest.(check bool) "interior absorbing" true
    (A.absorbing_when_empty ta Models.Simplified_ta.interior)

let test_naive_model_structure () =
  let ta = Models.Naive_ta.automaton in
  let s = A.stats ta in
  Alcotest.(check int) "guards" 14 s.A.n_guards;
  Alcotest.(check bool) "dag" true (A.is_dag ta);
  Alcotest.(check int) "locations" 26 s.A.n_locations;
  Alcotest.(check bool) "interior absorbing" true
    (A.absorbing_when_empty ta Models.Naive_ta.interior)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_dot_export () =
  let dot = Ta.Dot.render Models.Bv_ta.automaton in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 100 && String.sub dot 0 7 = "digraph");
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains dot needle))
    [ "V0"; "C01"; "doublecircle"; "b0++" ]

let test_bymc_export () =
  let skel = Ta.Bymc.render Models.Bv_ta.automaton in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains skel needle))
    [
      "skel Proc";
      "shared b0, b1";
      "parameters n, t, f";
      "n + -3 * t + -1 >= 0";
      "locV0 -> locB0";
      "b0' == b0 + 1";
      "(locV0 + locV1) == n + -1 * f";
    ];
  (* Rule count (with self-loops) matches the Table 2 size column. *)
  let rule_lines =
    String.split_on_char '\n' skel
    |> List.filter (fun l -> contains l "when (")
  in
  Alcotest.(check int) "19 rules" 19 (List.length rule_lines)

let () =
  Alcotest.run "ta"
    [
      ( "pexpr",
        [
          Alcotest.test_case "normalization" `Quick test_pexpr_normalize;
          Alcotest.test_case "arithmetic" `Quick test_pexpr_arith;
        ] );
      ( "guard",
        [
          Alcotest.test_case "evaluation" `Quick test_guard_holds;
          Alcotest.test_case "rejects non-positive coefficients" `Quick
            test_guard_rejects_nonpositive;
          Alcotest.test_case "rendering" `Quick test_guard_to_string;
        ] );
      ( "automaton",
        [
          Alcotest.test_case "validation" `Quick test_automaton_validation;
          Alcotest.test_case "dag detection" `Quick test_automaton_dag;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "sinks and absorbing sets" `Quick test_sinks_absorbing;
        ] );
      ( "cond",
        [
          Alcotest.test_case "evaluation" `Quick test_cond_eval;
          Alcotest.test_case "guard conversion" `Quick test_cond_guard_roundtrip;
        ] );
      ( "models",
        [
          Alcotest.test_case "bv-broadcast structure (Table 2 size row)" `Quick
            test_bv_model_structure;
          Alcotest.test_case "simplified consensus structure" `Quick
            test_simplified_model_structure;
          Alcotest.test_case "naive consensus structure" `Quick test_naive_model_structure;
          Alcotest.test_case "dot export" `Quick test_dot_export;
          Alcotest.test_case "bymc export" `Quick test_bymc_export;
        ] );
    ]
