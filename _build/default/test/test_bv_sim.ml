(* Empirical validation of the binary-value broadcast (Fig. 1) at the
   simulation level: a standalone bv-broadcast process (no consensus on
   top) run over the simulated network against Byzantine senders, checked
   against the four properties of Section 3.2 on every seeded run.

   This complements the parameterized proofs of test_holistic.ml: the
   same properties, on the executable pseudocode rather than on the
   threshold automaton. *)

module Net = Simnet.Network
module ISet = Set.Make (Int)

type msg = { value : int }

(* One bv-broadcast endpoint (Fig. 1): broadcast the input; echo a value
   received from t+1 distinct processes; deliver at 2t+1. *)
type endpoint = {
  id : int;
  t : int;
  net : msg Net.t;
  senders : ISet.t array;
  echoed : bool array;
  mutable contestants : Dbft.Vset.t;
}

let create ~id ~t ~input net =
  let ep =
    {
      id;
      t;
      net;
      senders = [| ISet.empty; ISet.empty |];
      echoed = [| false; false |];
      contestants = Dbft.Vset.empty;
    }
  in
  ep.echoed.(input) <- true;
  Net.broadcast net ~src:id { value = input };
  ep

let handle ep ~src { value } =
  if value = 0 || value = 1 then begin
    ep.senders.(value) <- ISet.add src ep.senders.(value);
    if (not ep.echoed.(value)) && ISet.cardinal ep.senders.(value) >= ep.t + 1 then begin
      ep.echoed.(value) <- true;
      Net.broadcast ep.net ~src:ep.id { value }
    end;
    if ISet.cardinal ep.senders.(value) >= (2 * ep.t) + 1 then
      ep.contestants <- Dbft.Vset.add value ep.contestants
  end

(* Byzantine sender: a different value to each destination half, sent as
   soon as it receives anything. *)
let run ~n ~t ~inputs ~byzantine ~seed =
  let net = Net.create ~n in
  let correct = List.filter (fun i -> not (List.mem i byzantine)) (List.init n Fun.id) in
  let endpoints =
    List.map (fun i -> (i, create ~id:i ~t ~input:(List.assoc i inputs) net)) correct
  in
  let byz_done = Hashtbl.create 4 in
  let rng = Random.State.make [| seed |] in
  let steps = ref 0 in
  while Net.pending_count net > 0 && !steps < 50_000 do
    incr steps;
    let pending = Net.pending net in
    let p = List.nth pending (Random.State.int rng (List.length pending)) in
    let { Net.src; dest; msg; _ } = Net.deliver net p in
    match List.assoc_opt dest endpoints with
    | Some ep -> handle ep ~src msg
    | None ->
      if not (Hashtbl.mem byz_done dest) then begin
        Hashtbl.replace byz_done dest ();
        for d = 0 to n - 1 do
          Net.send net ~src:dest ~dest:d { value = (if 2 * d < n then 0 else 1) }
        done
      end
  done;
  List.map (fun (i, ep) -> (i, ep.contestants)) endpoints

let correct_inputs inputs byzantine =
  List.filter_map (fun (i, v) -> if List.mem i byzantine then None else Some v) inputs

let check_properties ~t ~inputs ~byzantine results =
  let inputs_of_correct = correct_inputs inputs byzantine in
  let all_contestants = List.map snd results in
  (* BV-Justification: every delivered value was some correct input. *)
  let justification =
    List.for_all
      (fun c -> List.for_all (fun v -> List.mem v inputs_of_correct) (Dbft.Vset.to_list c))
      all_contestants
  in
  (* BV-Obligation: a value proposed by >= t+1 correct processes is
     delivered by every correct process (the run has quiesced). *)
  let obligation =
    List.for_all
      (fun v ->
        let proposers = List.length (List.filter (( = ) v) inputs_of_correct) in
        proposers < t + 1 || List.for_all (Dbft.Vset.mem v) all_contestants)
      [ 0; 1 ]
  in
  (* BV-Uniformity: a value delivered anywhere is delivered everywhere. *)
  let uniformity =
    List.for_all
      (fun v ->
        (not (List.exists (Dbft.Vset.mem v) all_contestants))
        || List.for_all (Dbft.Vset.mem v) all_contestants)
      [ 0; 1 ]
  in
  (* BV-Termination: every correct process delivered something. *)
  let termination =
    List.for_all (fun c -> not (Dbft.Vset.is_empty c)) all_contestants
  in
  (justification, obligation, uniformity, termination)

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let scenario ~inputs ~byzantine ~seed =
  let results = run ~n:4 ~t:1 ~inputs ~byzantine ~seed in
  check_properties ~t:1 ~inputs ~byzantine results

let test_unanimous () =
  let j, o, u, te =
    scenario ~inputs:[ (0, 1); (1, 1); (2, 1) ] ~byzantine:[ 3 ] ~seed:1
  in
  Alcotest.(check bool) "justification" true j;
  Alcotest.(check bool) "obligation" true o;
  Alcotest.(check bool) "uniformity" true u;
  Alcotest.(check bool) "termination" true te

let test_justification_blocks_byzantine_value () =
  (* All correct propose 1; the Byzantine pushes 0 to half the network:
     0 must never be delivered (it can gather at most t+1 senders). *)
  let results = run ~n:4 ~t:1 ~inputs:[ (0, 1); (1, 1); (2, 1) ] ~byzantine:[ 3 ] ~seed:2 in
  List.iter
    (fun (i, c) ->
      Alcotest.(check bool) (Printf.sprintf "p%d did not deliver 0" i) false
        (Dbft.Vset.mem 0 c))
    results

let bv_sim_props =
  [
    prop "four bv properties hold on every seeded run" 200
      QCheck.(pair (int_range 0 7) (int_bound 9999))
      (fun (bits, seed) ->
        let inputs = [ (0, bits land 1); (1, (bits lsr 1) land 1); (2, (bits lsr 2) land 1) ] in
        let j, o, u, te = scenario ~inputs ~byzantine:[ 3 ] ~seed in
        j && o && u && te);
    prop "properties hold with no byzantine process" 100
      QCheck.(pair (int_range 0 15) (int_bound 9999))
      (fun (bits, seed) ->
        let inputs = List.init 4 (fun i -> (i, (bits lsr i) land 1)) in
        let results = run ~n:4 ~t:1 ~inputs ~byzantine:[] ~seed in
        let j, o, u, te = check_properties ~t:1 ~inputs ~byzantine:[] results in
        j && o && u && te);
  ]

let () =
  Alcotest.run "bv-sim"
    [
      ( "scenarios",
        [
          Alcotest.test_case "unanimous with byzantine" `Quick test_unanimous;
          Alcotest.test_case "justification blocks byzantine value" `Quick
            test_justification_blocks_byzantine_value;
        ] );
      ("properties", bv_sim_props);
    ]
