(* Tests for the arbitrary-precision arithmetic substrate: unit tests on
   known values and corner cases, property tests against the native-int
   oracle (for values that fit) and against algebraic laws (for values
   that do not). *)

module B = Numbers.Bigint
module Q = Numbers.Rational

let bigint = Alcotest.testable B.pp B.equal
let rational = Alcotest.testable Q.pp Q.equal

(* ------------------------------------------------------------------ *)
(* Bigint unit tests.                                                  *)

let test_of_to_int () =
  List.iter
    (fun n -> Alcotest.(check (option int)) (string_of_int n) (Some n) (B.to_int (B.of_int n)))
    [ 0; 1; -1; 42; -42; 1 lsl 30; (1 lsl 30) - 1; 1 lsl 45; -(1 lsl 45);
      max_int / 2; min_int / 2; (1 lsl 62) - 1; -((1 lsl 62) - 1) ]

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
    [ "0"; "1"; "-1"; "123456789012345678901234567890";
      "-999999999999999999999999999999999999";
      "1000000000000000000000000000000000000000000000001" ]

let test_string_leading_plus () =
  Alcotest.check bigint "+17" (B.of_int 17) (B.of_string "+17")

let test_add_carries () =
  let big = B.of_string "1073741823" in
  (* 2^30 - 1 *)
  Alcotest.check bigint "carry" (B.of_string "1073741824") (B.add big B.one);
  let x = B.of_string "999999999999999999999999999999" in
  Alcotest.check bigint "add/sub inverse" x (B.sub (B.add x big) big)

let test_mul_known () =
  let a = B.of_string "123456789123456789" in
  let b = B.of_string "987654321987654321" in
  Alcotest.check bigint "product"
    (B.of_string "121932631356500531347203169112635269")
    (B.mul a b)

let test_divmod_known () =
  let a = B.of_string "1000000000000000000000000000" in
  let b = B.of_string "7777777777777" in
  let q, r = B.divmod a b in
  Alcotest.check bigint "reconstruct" a (B.add (B.mul q b) r);
  Alcotest.(check bool) "rem bound" true (B.compare (B.abs r) (B.abs b) < 0)

let test_divmod_signs () =
  let check a b eq er =
    let q, r = B.divmod (B.of_int a) (B.of_int b) in
    Alcotest.check bigint (Printf.sprintf "%d/%d q" a b) (B.of_int eq) q;
    Alcotest.check bigint (Printf.sprintf "%d/%d r" a b) (B.of_int er) r
  in
  check 7 2 3 1;
  check (-7) 2 (-3) (-1);
  check 7 (-2) (-3) 1;
  check (-7) (-2) 3 (-1)

let test_ediv_emod () =
  let check a b =
    let q, r = B.ediv_emod (B.of_int a) (B.of_int b) in
    Alcotest.check bigint "a = q*b + r" (B.of_int a) (B.add (B.mul q (B.of_int b)) r);
    Alcotest.(check bool) "0 <= r" true (B.sign r >= 0);
    Alcotest.(check bool) "r < |b|" true (B.compare r (B.abs (B.of_int b)) < 0)
  in
  List.iter (fun (a, b) -> check a b) [ (7, 2); (-7, 2); (7, -2); (-7, -2); (0, 5); (12, 4); (-12, 4) ]

let test_fdiv_cdiv () =
  Alcotest.check bigint "fdiv -7 2" (B.of_int (-4)) (B.fdiv (B.of_int (-7)) (B.of_int 2));
  Alcotest.check bigint "cdiv -7 2" (B.of_int (-3)) (B.cdiv (B.of_int (-7)) (B.of_int 2));
  Alcotest.check bigint "fdiv 7 2" (B.of_int 3) (B.fdiv (B.of_int 7) (B.of_int 2));
  Alcotest.check bigint "cdiv 7 2" (B.of_int 4) (B.cdiv (B.of_int 7) (B.of_int 2))

let test_div_by_zero () =
  Alcotest.check_raises "divmod" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_gcd_lcm () =
  Alcotest.check bigint "gcd" (B.of_int 6) (B.gcd (B.of_int 54) (B.of_int (-24)));
  Alcotest.check bigint "gcd 0 0" B.zero (B.gcd B.zero B.zero);
  Alcotest.check bigint "gcd 0 x" (B.of_int 5) (B.gcd B.zero (B.of_int 5));
  Alcotest.check bigint "lcm" (B.of_int 36) (B.lcm (B.of_int 12) (B.of_int (-18)));
  Alcotest.check bigint "lcm 0" B.zero (B.lcm B.zero (B.of_int 3))

let test_pow () =
  Alcotest.check bigint "2^100"
    (B.of_string "1267650600228229401496703205376")
    (B.pow B.two 100);
  Alcotest.check bigint "x^0" B.one (B.pow (B.of_int 17) 0);
  Alcotest.check_raises "negative" (Invalid_argument "Bigint.pow: negative exponent")
    (fun () -> ignore (B.pow B.two (-1)))

let test_shift_left () =
  Alcotest.check bigint "1 << 62" (B.of_string "4611686018427387904") (B.shift_left B.one 62);
  Alcotest.check bigint "3 << 100"
    (B.mul (B.of_int 3) (B.pow B.two 100))
    (B.shift_left (B.of_int 3) 100)

let test_compare_orders () =
  let xs = [ "-100000000000000000000"; "-5"; "0"; "3"; "100000000000000000000" ] in
  let sorted = List.map B.of_string xs in
  let shuffled = List.rev sorted in
  Alcotest.(check (list string))
    "sort"
    xs
    (List.map B.to_string (List.sort B.compare shuffled))

let test_min_max () =
  let a = B.of_int (-3) and b = B.of_int 7 in
  Alcotest.check bigint "min" a (B.min a b);
  Alcotest.check bigint "max" b (B.max a b)

let test_fits_int () =
  Alcotest.(check bool) "small fits" true (B.fits_int (B.of_int 12345));
  Alcotest.(check bool) "2^200 does not" false (B.fits_int (B.pow B.two 200));
  Alcotest.(check (option int)) "to_int big" None (B.to_int (B.pow B.two 200))

(* ------------------------------------------------------------------ *)
(* Bigint property tests.                                              *)

let arb_small_int = QCheck.int_range (-1_000_000_000) 1_000_000_000

(* Big operands built from three native ints: (a * 2^62 + b) * sign. *)
let arb_big =
  QCheck.map
    (fun (a, b, neg) ->
      let v = B.add (B.mul (B.of_int (abs a)) (B.pow B.two 62)) (B.of_int (abs b)) in
      if neg then B.neg v else v)
    QCheck.(triple int int bool)

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let bigint_props =
  [
    prop "add matches int oracle" 1000 QCheck.(pair arb_small_int arb_small_int) (fun (a, b) ->
        B.equal (B.add (B.of_int a) (B.of_int b)) (B.of_int (a + b)));
    prop "mul matches int oracle" 1000 QCheck.(pair arb_small_int arb_small_int) (fun (a, b) ->
        B.equal (B.mul (B.of_int a) (B.of_int b)) (B.of_int (a * b)));
    prop "divmod matches int oracle" 1000 QCheck.(pair arb_small_int arb_small_int) (fun (a, b) ->
        QCheck.assume (b <> 0);
        let q, r = B.divmod (B.of_int a) (B.of_int b) in
        B.equal q (B.of_int (a / b)) && B.equal r (B.of_int (a mod b)));
    prop "compare matches int oracle" 1000 QCheck.(pair arb_small_int arb_small_int) (fun (a, b) ->
        compare a b = B.compare (B.of_int a) (B.of_int b));
    prop "string roundtrip" 500 arb_big (fun x -> B.equal x (B.of_string (B.to_string x)));
    prop "add commutes" 500 QCheck.(pair arb_big arb_big) (fun (a, b) ->
        B.equal (B.add a b) (B.add b a));
    prop "add associates" 300 QCheck.(triple arb_big arb_big arb_big) (fun (a, b, c) ->
        B.equal (B.add a (B.add b c)) (B.add (B.add a b) c));
    prop "mul distributes" 300 QCheck.(triple arb_big arb_big arb_big) (fun (a, b, c) ->
        B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)));
    prop "divmod reconstructs" 500 QCheck.(pair arb_big arb_big) (fun (a, b) ->
        QCheck.assume (not (B.is_zero b));
        let q, r = B.divmod a b in
        B.equal a (B.add (B.mul q b) r) && B.compare (B.abs r) (B.abs b) < 0);
    prop "ediv_emod reconstructs with 0 <= r < |b|" 500 QCheck.(pair arb_big arb_big) (fun (a, b) ->
        QCheck.assume (not (B.is_zero b));
        let q, r = B.ediv_emod a b in
        B.equal a (B.add (B.mul q b) r) && B.sign r >= 0 && B.compare r (B.abs b) < 0);
    prop "gcd divides both" 500 QCheck.(pair arb_big arb_big) (fun (a, b) ->
        QCheck.assume (not (B.is_zero a) || not (B.is_zero b));
        let g = B.gcd a b in
        B.is_zero (B.rem a g) && B.is_zero (B.rem b g));
    prop "neg is involutive" 500 arb_big (fun a -> B.equal a (B.neg (B.neg a)));
    prop "sub self is zero" 500 arb_big (fun a -> B.is_zero (B.sub a a));
    prop "mul_int agrees with mul" 500 QCheck.(pair arb_big arb_small_int) (fun (a, n) ->
        B.equal (B.mul_int a n) (B.mul a (B.of_int n)));
    prop "hash respects equality" 500 arb_big (fun a ->
        B.hash a = B.hash (B.sub (B.add a B.one) B.one));
  ]

(* ------------------------------------------------------------------ *)
(* Rational unit tests.                                                *)

let test_q_normalize () =
  Alcotest.check rational "6/4 = 3/2" (Q.of_ints 3 2) (Q.of_ints 6 4);
  Alcotest.check rational "neg den" (Q.of_ints (-1) 2) (Q.of_ints 1 (-2));
  Alcotest.check rational "zero" Q.zero (Q.of_ints 0 17);
  Alcotest.(check string) "print" "-1/2" (Q.to_string (Q.of_ints 2 (-4)))

let test_q_arith () =
  Alcotest.check rational "1/2 + 1/3" (Q.of_ints 5 6) (Q.add (Q.of_ints 1 2) (Q.of_ints 1 3));
  Alcotest.check rational "1/2 * 2/3" (Q.of_ints 1 3) (Q.mul (Q.of_ints 1 2) (Q.of_ints 2 3));
  Alcotest.check rational "(1/2) / (3/4)" (Q.of_ints 2 3) (Q.div (Q.of_ints 1 2) (Q.of_ints 3 4));
  Alcotest.check rational "sub" (Q.of_ints 1 6) (Q.sub (Q.of_ints 1 2) (Q.of_ints 1 3))

let test_q_floor_ceil () =
  Alcotest.check bigint "floor 7/2" (B.of_int 3) (Q.floor (Q.of_ints 7 2));
  Alcotest.check bigint "ceil 7/2" (B.of_int 4) (Q.ceil (Q.of_ints 7 2));
  Alcotest.check bigint "floor -7/2" (B.of_int (-4)) (Q.floor (Q.of_ints (-7) 2));
  Alcotest.check bigint "ceil -7/2" (B.of_int (-3)) (Q.ceil (Q.of_ints (-7) 2));
  Alcotest.check bigint "floor 3" (B.of_int 3) (Q.floor (Q.of_int 3));
  Alcotest.check bigint "ceil 3" (B.of_int 3) (Q.ceil (Q.of_int 3))

let test_q_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Q.compare (Q.of_ints 1 3) (Q.of_ints 1 2) < 0);
  Alcotest.(check bool) "-1/2 < 1/3" true (Q.compare (Q.of_ints (-1) 2) (Q.of_ints 1 3) < 0);
  Alcotest.(check bool) "equal" true (Q.equal (Q.of_ints 2 4) (Q.of_ints 1 2))

let test_q_misc () =
  Alcotest.(check bool) "is_integer 4/2" true (Q.is_integer (Q.of_ints 4 2));
  Alcotest.(check bool) "is_integer 1/2" false (Q.is_integer (Q.of_ints 1 2));
  Alcotest.check bigint "to_bigint" (B.of_int 2) (Q.to_bigint (Q.of_ints 4 2));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Q.inv Q.zero));
  Alcotest.check_raises "make zero den" Division_by_zero (fun () ->
      ignore (Q.make B.one B.zero));
  Alcotest.(check (float 1e-9)) "to_float" 0.5 (Q.to_float (Q.of_ints 1 2))

let arb_q =
  QCheck.map
    (fun (n, d) -> Q.of_ints n (1 + abs d))
    QCheck.(pair (int_range (-10000) 10000) (int_range 0 9999))

let rational_props =
  [
    prop "q add commutes" 500 QCheck.(pair arb_q arb_q) (fun (a, b) ->
        Q.equal (Q.add a b) (Q.add b a));
    prop "q mul inverse" 500 arb_q (fun a ->
        QCheck.assume (not (Q.is_zero a));
        Q.equal Q.one (Q.mul a (Q.inv a)));
    prop "q add neg is zero" 500 arb_q (fun a -> Q.is_zero (Q.add a (Q.neg a)));
    prop "q floor <= q < floor+1" 500 arb_q (fun a ->
        let f = Q.of_bigint (Q.floor a) in
        Q.compare f a <= 0 && Q.compare a (Q.add f Q.one) < 0);
    prop "q ceil-floor consistent" 500 arb_q (fun a ->
        if Q.is_integer a then B.equal (Q.floor a) (Q.ceil a)
        else B.equal (Q.ceil a) (B.succ (Q.floor a)));
    prop "q distributivity" 300 QCheck.(triple arb_q arb_q arb_q) (fun (a, b, c) ->
        Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)));
    prop "q compare antisymmetric" 500 QCheck.(pair arb_q arb_q) (fun (a, b) ->
        Q.compare a b = -Q.compare b a);
  ]

let () =
  Alcotest.run "numbers"
    [
      ( "bigint-unit",
        [
          Alcotest.test_case "of_int/to_int roundtrip" `Quick test_of_to_int;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "leading plus" `Quick test_string_leading_plus;
          Alcotest.test_case "addition carries" `Quick test_add_carries;
          Alcotest.test_case "multiplication known value" `Quick test_mul_known;
          Alcotest.test_case "divmod known value" `Quick test_divmod_known;
          Alcotest.test_case "divmod sign convention" `Quick test_divmod_signs;
          Alcotest.test_case "euclidean division" `Quick test_ediv_emod;
          Alcotest.test_case "floor/ceil division" `Quick test_fdiv_cdiv;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero;
          Alcotest.test_case "gcd and lcm" `Quick test_gcd_lcm;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "shift_left" `Quick test_shift_left;
          Alcotest.test_case "comparison ordering" `Quick test_compare_orders;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "fits_int" `Quick test_fits_int;
        ] );
      ("bigint-props", bigint_props);
      ( "rational-unit",
        [
          Alcotest.test_case "normalization" `Quick test_q_normalize;
          Alcotest.test_case "arithmetic" `Quick test_q_arith;
          Alcotest.test_case "floor/ceil" `Quick test_q_floor_ceil;
          Alcotest.test_case "comparison" `Quick test_q_compare;
          Alcotest.test_case "misc" `Quick test_q_misc;
        ] );
      ("rational-props", rational_props);
    ]
