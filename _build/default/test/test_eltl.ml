(* Tests for the LTL layer: the paper's formulas written as temporal
   formulas compile to exactly the violation patterns that the models
   library declares by hand, and the compiled specs verify identically. *)

module E = Holistic.Eltl
module C = Ta.Cond
module S = Ta.Spec

let bv = Models.Bv_ta.automaton
let simplified = Models.Simplified_ta.automaton

let cond = Alcotest.testable (Fmt.of_to_string C.to_string) ( = )

let check_spec_shape name (compiled : S.t) (reference : S.t) =
  Alcotest.(check string) (name ^ " kind")
    (match reference.kind with `Safety -> "safety" | `Liveness -> "liveness")
    (match compiled.kind with `Safety -> "safety" | `Liveness -> "liveness");
  Alcotest.check cond (name ^ " init") reference.init compiled.init;
  Alcotest.(check (list string)) (name ^ " never_enter") reference.never_enter
    compiled.never_enter;
  Alcotest.(check (list cond)) (name ^ " observations")
    (List.map snd reference.observations)
    (List.map snd compiled.observations);
  Alcotest.check cond (name ^ " final") reference.final_cond compiled.final_cond;
  Alcotest.(check bool) (name ^ " stable") reference.require_stable
    compiled.require_stable

(* ------------------------------------------------------------------ *)
(* The paper's formulas, written as temporal formulas.                  *)

let bv_just0 =
  E.implies
    (E.prop (C.empty "V0"))
    (E.always (E.prop (C.all_empty [ "C0"; "CB0"; "C01" ])))

let bv_obl0 =
  E.always
    (E.implies
       (E.prop (C.shared_ge [ ("b0", 1) ] Models.Params.t1))
       (E.eventually (E.prop (C.all_empty (Models.Bv_ta.locs_missing "0")))))

let bv_unif0 =
  E.implies
    (E.eventually (E.prop (C.some_nonempty [ "C0"; "CB0"; "C01" ])))
    (E.eventually (E.prop (C.all_empty (Models.Bv_ta.locs_missing "0"))))

let bv_term =
  E.eventually (E.prop (C.all_empty [ "V0"; "V1"; "B0"; "B1"; "B01" ]))

let inv1_0 =
  E.implies
    (E.eventually (E.prop (C.counter_ge "D0" 1)))
    (E.always (E.prop (C.all_empty [ "D1"; "E1x" ])))

let good_0 =
  E.implies
    (E.always (E.prop (C.empty "M0")))
    (E.always (E.prop (C.all_empty [ "D0"; "E0x" ])))

let sround_term = E.eventually (E.prop (C.all_empty Models.Simplified_ta.interior))

(* ------------------------------------------------------------------ *)

let test_compile_shapes () =
  check_spec_shape "BV-Just0"
    (E.compile ~automaton:bv ~name:"BV-Just0" bv_just0)
    (List.hd Models.Bv_ta.all_specs);
  check_spec_shape "BV-Term"
    (E.compile ~automaton:bv ~name:"BV-Term" bv_term)
    Models.Bv_ta.term;
  check_spec_shape "Inv1_0"
    (E.compile ~automaton:simplified ~name:"Inv1_0" inv1_0)
    Models.Simplified_ta.inv1_0;
  check_spec_shape "Good_0"
    (E.compile ~automaton:simplified ~name:"Good_0" good_0)
    Models.Simplified_ta.good_0;
  check_spec_shape "SRound-Term"
    (E.compile ~automaton:simplified ~name:"SRound-Term" sround_term)
    Models.Simplified_ta.sround_term

let test_compiled_bv_verification () =
  (* The compiled formulas verify exactly like the hand-written specs:
     everything holds for all parameters. *)
  let u = Holistic.Universe.build bv in
  List.iter
    (fun (name, f) ->
      let spec = E.compile ~automaton:bv ~name f in
      match (Holistic.Checker.verify_with_universe u spec).outcome with
      | Holistic.Checker.Holds -> ()
      | _ -> Alcotest.fail (name ^ " did not hold"))
    [ ("BV-Just0", bv_just0); ("BV-Obl0", bv_obl0); ("BV-Unif0", bv_unif0);
      ("BV-Term", bv_term) ]

let test_unsupported () =
  let check_raises name f =
    Alcotest.(check bool) name true
      (try
         ignore (E.compile ~automaton:bv ~name f);
         false
       with E.Unsupported _ -> true)
  in
  (* Nested eventualities in a conclusion. *)
  check_raises "nested" (E.eventually (E.eventually (E.prop (C.empty "V0"))));
  (* Non-absorbing liveness target. *)
  check_raises "non-absorbing" (E.eventually (E.prop (C.all_empty [ "B0" ])));
  (* Negation of a multi-atom mixed condition. *)
  check_raises "bad negation"
    (E.always
       (E.prop (C.conj [ C.counter_ge "V0" 1; C.shared_ge [ ("b0", 1) ] Models.Params.t1 ])));
  (* Liveness with an always-empty premise. *)
  check_raises "liveness premise"
    (E.implies (E.always (E.prop (C.empty "V0"))) bv_term)

let test_to_string () =
  let s = E.to_string bv_just0 in
  Alcotest.(check bool) "mentions implication" true
    (String.length s > 10 && String.contains s '=')

let () =
  Alcotest.run "eltl"
    [
      ( "compile",
        [
          Alcotest.test_case "paper formulas match hand-written specs" `Quick
            test_compile_shapes;
          Alcotest.test_case "compiled bv formulas verify" `Quick
            test_compiled_bv_verification;
          Alcotest.test_case "out-of-fragment formulas rejected" `Quick test_unsupported;
          Alcotest.test_case "rendering" `Quick test_to_string;
        ] );
    ]
