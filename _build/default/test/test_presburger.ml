(* Tests for Cooper's quantifier elimination, including the paper's
   receive-variable elimination (Section 3.1) and randomized equivalence
   checks of eliminated formulas against brute-force quantification. *)

module P = Presburger
module T = Presburger.Term
module B = Numbers.Bigint

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let env_of bindings x =
  match List.assoc_opt x bindings with
  | Some v -> B.of_int v
  | None -> failwith ("unbound " ^ x)

(* ------------------------------------------------------------------ *)
(* Terms.                                                               *)

let test_term_basics () =
  let t = T.of_terms [ (2, "x"); (-1, "y"); (1, "x") ] 5 in
  Alcotest.(check string) "print" "3*x - y + 5" (T.to_string t);
  Alcotest.(check string) "coeff" "3" (B.to_string (T.coeff "x" t));
  Alcotest.(check string) "eval" "10" (B.to_string (T.eval (env_of [ ("x", 2); ("y", 1) ]) t));
  let z = T.sub t t in
  Alcotest.(check string) "zero" "0" (T.to_string z)

(* ------------------------------------------------------------------ *)
(* Evaluation of quantifier-free formulas.                              *)

let test_eval () =
  let x = T.var "x" in
  let f = P.And [ P.ge x (T.const 2); P.Divides (B.of_int 3, T.sub x (T.const 0)) ] in
  Alcotest.(check bool) "x=3" true (P.eval (env_of [ ("x", 3) ]) f);
  Alcotest.(check bool) "x=4" false (P.eval (env_of [ ("x", 4) ]) f);
  Alcotest.(check bool) "x=0 fails ge" false (P.eval (env_of [ ("x", 0) ]) f);
  Alcotest.(check bool) "negation" true (P.eval (env_of [ ("x", 4) ]) (P.Not f))

(* ------------------------------------------------------------------ *)
(* Closed-formula decisions.                                            *)

let test_closed_formulas () =
  let x = T.var "x" in
  let cases =
    [
      (* exists x. 2x = 6 *)
      (P.Exists ("x", P.eq (T.scale (B.of_int 2) x) (T.const 6)), true);
      (* exists x. 2x = 7 *)
      (P.Exists ("x", P.eq (T.scale (B.of_int 2) x) (T.const 7)), false);
      (* forall x. exists y. y > x *)
      (P.Forall ("x", P.Exists ("y", P.gt (T.var "y") x)), true);
      (* exists x. x > 0 /\ x < 1 (no integer strictly between) *)
      (P.Exists ("x", P.And [ P.gt x (T.const 0); P.lt x (T.const 1) ]), false);
      (* exists x. x >= 0 /\ 3 | x /\ x < 3  — x = 0 *)
      ( P.Exists
          ("x", P.And [ P.ge x (T.const 0); P.Divides (B.of_int 3, x); P.lt x (T.const 3) ]),
        true );
      (* forall x. 2 | x \/ 2 | x+1 *)
      ( P.Forall
          ( "x",
            P.Or
              [ P.Divides (B.of_int 2, x); P.Divides (B.of_int 2, T.add x (T.const 1)) ] ),
        true );
      (* forall x. 2 | x *)
      (P.Forall ("x", P.Divides (B.of_int 2, x)), false);
      (* exists x. forall y. y <= x  — no maximal integer *)
      (P.Exists ("x", P.Forall ("y", P.le (T.var "y") x)), false);
    ]
  in
  List.iteri
    (fun i (f, expected) ->
      Alcotest.(check bool) (Printf.sprintf "case %d: %s" i (P.to_string f)) expected
        (P.is_valid f))
    cases

(* ------------------------------------------------------------------ *)
(* The paper's receive-variable elimination (Section 3.1):
   exists rcvd. rcvd <= b + f /\ rcvd >= t+1   <=>   b >= t+1-f
   (receptions are bounded by correct sends plus f Byzantine ones). *)

let test_receive_elimination () =
  let rcvd = T.var "rcvd" and b = T.var "b" and t = T.var "t" and f = T.var "f" in
  let guard =
    P.Exists
      ( "rcvd",
        P.And
          [
            P.le rcvd (T.add b f);
            P.ge rcvd (T.add t (T.const 1));
            P.ge rcvd (T.const 0);
          ] )
  in
  let eliminated = P.eliminate guard in
  Alcotest.(check bool) "quantifier-free" true
    (match P.free_vars eliminated with vs -> not (List.mem "rcvd" vs));
  let expected_env bv tv fv = P.eval (env_of [ ("b", bv); ("t", tv); ("f", fv) ]) in
  for bv = 0 to 6 do
    for tv = 0 to 2 do
      for fv = 0 to tv do
        let expect = bv >= tv + 1 - fv in
        Alcotest.(check bool)
          (Printf.sprintf "b=%d t=%d f=%d" bv tv fv)
          expect
          (expected_env bv tv fv eliminated)
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Randomized: elimination agrees with brute-force quantification over
   a box (sound on the box because the formulas' bounds confine the
   witnesses there). *)

let arb_qf_formula =
  (* Random small formulas over x (quantified) and y (free). *)
  let open QCheck in
  let term =
    map
      (fun (cx, cy, k) -> T.of_terms [ (cx, "x"); (cy, "y") ] k)
      (triple (int_range (-2) 2) (int_range (-2) 2) (int_range (-4) 4))
  in
  let atom =
    map
      (fun (t, kind) ->
        match kind mod 3 with
        | 0 -> P.Lt t
        | 1 -> P.Eq t
        | _ -> P.Divides (B.of_int 2, t))
      (pair term (int_range 0 2))
  in
  map
    (fun (a1, a2, a3, conj) -> if conj then P.And [ a1; P.Or [ a2; a3 ] ] else P.Or [ a1; P.And [ a2; a3 ] ])
    (tup4 atom atom atom bool)

let brute_exists f yv =
  (* x in [-24, 24] is enough for coefficients <= 2 and constants <= 4
     with |y| <= 4. *)
  let found = ref false in
  for xv = -24 to 24 do
    if (not !found) && P.eval (env_of [ ("x", xv); ("y", yv) ]) f then found := true
  done;
  !found

let presburger_props =
  [
    prop "exists-elimination agrees with brute force" 300
      QCheck.(pair arb_qf_formula (int_range (-4) 4))
      (fun (f, yv) ->
        let eliminated = P.eliminate (P.Exists ("x", f)) in
        (not (List.mem "x" (P.free_vars eliminated)))
        &&
        let via_qe = P.eval (env_of [ ("y", yv) ]) eliminated in
        (* The window [-24, 24] provably contains a witness whenever one
           exists, given the generator's coefficient and constant
           bounds, so the comparison is exact. *)
        let via_brute = brute_exists f yv in
        via_qe = via_brute);
    prop "elimination never loses models" 300
      QCheck.(pair arb_qf_formula (int_range (-4) 4))
      (fun (f, yv) ->
        (* If some x in the window satisfies f, QE must say satisfiable. *)
        let eliminated = P.eliminate (P.Exists ("x", f)) in
        (not (brute_exists f yv)) || P.eval (env_of [ ("y", yv) ]) eliminated);
  ]

let () =
  Alcotest.run "presburger"
    [
      ("term", [ Alcotest.test_case "basics" `Quick test_term_basics ]);
      ("eval", [ Alcotest.test_case "quantifier-free" `Quick test_eval ]);
      ( "cooper",
        [
          Alcotest.test_case "closed formulas" `Quick test_closed_formulas;
          Alcotest.test_case "receive-variable elimination (paper 3.1)" `Quick
            test_receive_elimination;
        ] );
      ("cooper-props", presburger_props);
    ]
