(* Tests for the executable DBFT consensus and the network simulator:
   unit tests of the building blocks, whole-system runs checking
   Agreement / Validity / Termination across seeds and Byzantine
   strategies, and the Lemma 7 non-termination adversary (the paper's
   motivation for the fairness assumption). *)

module Net = Simnet.Network
module Sched = Simnet.Scheduler

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* ------------------------------------------------------------------ *)
(* Vset.                                                                *)

let test_vset () =
  let open Dbft.Vset in
  Alcotest.(check bool) "empty" true (is_empty empty);
  Alcotest.(check bool) "mem" true (mem 1 (singleton 1));
  Alcotest.(check bool) "not mem" false (mem 0 (singleton 1));
  Alcotest.(check (option int)) "singleton 0" (Some 0) (is_singleton (singleton 0));
  Alcotest.(check (option int)) "both not singleton" None (is_singleton both);
  Alcotest.(check bool) "subset" true (subset (singleton 1) both);
  Alcotest.(check bool) "not subset" false (subset both (singleton 1));
  Alcotest.(check bool) "union" true (equal both (union (singleton 0) (singleton 1)));
  Alcotest.(check (list int)) "to_list" [ 0; 1 ] (to_list both);
  Alcotest.(check string) "print" "{0,1}" (to_string both);
  Alcotest.check_raises "bad value" (Invalid_argument "Vset: binary values only") (fun () ->
      ignore (singleton 2))

(* ------------------------------------------------------------------ *)
(* Network.                                                             *)

let test_network_basics () =
  let net = Net.create ~n:3 in
  Net.send net ~src:0 ~dest:1 "a";
  Net.broadcast net ~src:2 "b";
  Alcotest.(check int) "pending" 4 (Net.pending_count net);
  let p = List.hd (Net.pending net) in
  Alcotest.(check string) "fifo head" "a" p.Net.msg;
  ignore (Net.deliver net p);
  Alcotest.(check int) "pending after" 3 (Net.pending_count net);
  Alcotest.(check int) "delivered" 1 (Net.delivered_count net);
  Alcotest.check_raises "double deliver" (Invalid_argument "Network.deliver: not pending")
    (fun () -> ignore (Net.deliver net p));
  Alcotest.check_raises "bad dest" (Invalid_argument "Network.send: bad destination")
    (fun () -> Net.send net ~src:0 ~dest:7 "x")

let test_scheduler_fifo () =
  let net = Net.create ~n:2 in
  Net.send net ~src:0 ~dest:1 "first";
  Net.send net ~src:0 ~dest:1 "second";
  let p = Sched.pick Sched.Fifo (Net.pending net) in
  Alcotest.(check string) "oldest" "first" p.Net.msg

let test_scheduler_custom_fallback () =
  let net = Net.create ~n:2 in
  Net.send net ~src:0 ~dest:1 "only";
  let sched = Sched.Custom (fun _ -> None) in
  Alcotest.(check string) "fallback" "only" (Sched.pick sched (Net.pending net)).Net.msg

(* ------------------------------------------------------------------ *)
(* Whole-system runs.                                                   *)

let all_correct_run ~inputs ~seed =
  Dbft.Runner.run
    (Dbft.Runner.config ~n:4 ~t:1 ~inputs ~scheduler:(Sched.random ~seed) ())

let test_unanimous_no_faults () =
  List.iter
    (fun v ->
      let r = all_correct_run ~inputs:[ v; v; v; v ] ~seed:7 in
      Alcotest.(check bool) "terminated" true r.Dbft.Runner.all_decided;
      Alcotest.(check bool) "agreement" true r.Dbft.Runner.agreement;
      Alcotest.(check bool) "validity" true r.Dbft.Runner.validity;
      List.iter
        (fun (_, d, _) -> Alcotest.(check int) "decided the input" v d)
        r.Dbft.Runner.decisions)
    [ 0; 1 ]

let test_mixed_inputs_no_faults () =
  let r = all_correct_run ~inputs:[ 0; 1; 0; 1 ] ~seed:42 in
  Alcotest.(check bool) "terminated" true r.Dbft.Runner.all_decided;
  Alcotest.(check bool) "agreement" true r.Dbft.Runner.agreement;
  Alcotest.(check bool) "validity" true r.Dbft.Runner.validity

let byz_run ~strategy ~inputs ~seed =
  Dbft.Runner.run
    (Dbft.Runner.config ~n:4 ~t:1 ~inputs ~byzantine:[ (3, strategy) ]
       ~scheduler:(Sched.random ~seed) ())

let test_byzantine_silent () =
  let r = byz_run ~strategy:Dbft.Byzantine.Silent ~inputs:[ 1; 1; 1 ] ~seed:3 in
  Alcotest.(check bool) "terminated" true r.Dbft.Runner.all_decided;
  Alcotest.(check bool) "agreement" true r.Dbft.Runner.agreement;
  Alcotest.(check bool) "validity" true r.Dbft.Runner.validity

let strategies =
  [
    ("silent", Dbft.Byzantine.Silent);
    ("equivocate", Dbft.Byzantine.Equivocate);
    ("noise", Dbft.Byzantine.Noise 1);
  ]

(* Agreement and validity must hold for every seed, strategy and input
   vector; termination must hold under the fair random scheduler. *)
let consensus_props =
  List.map
    (fun (sname, strategy) ->
      prop
        (Printf.sprintf "agreement+validity+termination vs %s byzantine" sname)
        60
        QCheck.(pair (int_range 0 7) (int_bound 999))
        (fun (input_bits, seed) ->
          let inputs = [ input_bits land 1; (input_bits lsr 1) land 1; (input_bits lsr 2) land 1 ] in
          let r = byz_run ~strategy ~inputs ~seed in
          r.Dbft.Runner.agreement && r.Dbft.Runner.validity && r.Dbft.Runner.all_decided))
    strategies

let test_seven_processes () =
  (* n = 7, t = 2, two Byzantine processes. *)
  let r =
    Dbft.Runner.run
      (Dbft.Runner.config ~n:7 ~t:2 ~inputs:[ 0; 1; 1; 0; 1 ]
         ~byzantine:[ (5, Dbft.Byzantine.Equivocate); (6, Dbft.Byzantine.Noise 9) ]
         ~scheduler:(Sched.random ~seed:11) ())
  in
  Alcotest.(check bool) "terminated" true r.Dbft.Runner.all_decided;
  Alcotest.(check bool) "agreement" true r.Dbft.Runner.agreement;
  Alcotest.(check bool) "validity" true r.Dbft.Runner.validity

(* ------------------------------------------------------------------ *)
(* Lemma 7: non-termination without fairness.                           *)

let test_lemma7_no_decision () =
  let max_round = 12 in
  let r = Dbft.Runner.run (Dbft.Lemma7.config ~max_round) in
  Alcotest.(check (list (list int))) "no process ever decides" []
    (List.map (fun (p, v, rd) -> [ p; v; rd ]) r.Dbft.Runner.decisions);
  (* The adversary really drives the system through the rounds: every
     correct process reaches the bound. *)
  List.iter
    (fun (_, reached) ->
      Alcotest.(check bool) "rounds progress" true (reached >= max_round))
    r.Dbft.Runner.rounds_reached

let test_lemma7_estimates_flip () =
  (* After each round the estimate pattern is two copies of 1-(r mod 2)
     and one of r mod 2, i.e. the run is trapped in the Lemma 7 cycle. *)
  let r = Dbft.Runner.run (Dbft.Lemma7.config ~max_round:9) in
  ignore r;
  let cfg = Dbft.Lemma7.config ~max_round:9 in
  Alcotest.(check int) "byzantine id" 3 Dbft.Lemma7.byzantine_id;
  Alcotest.(check (list int)) "initial pattern" [ 1; 1; 0 ] cfg.Dbft.Runner.inputs

let test_lemma7_fair_scheduler_decides () =
  (* The same Byzantine strategy under a fair scheduler: the fairness
     assumption holds with probability 1 and the algorithm terminates. *)
  let base = Dbft.Lemma7.config ~max_round:30 in
  let r =
    Dbft.Runner.run { base with scheduler = Sched.random ~seed:5; max_round = 30 }
  in
  Alcotest.(check bool) "terminates when fair" true r.Dbft.Runner.all_decided;
  Alcotest.(check bool) "agreement" true r.Dbft.Runner.agreement

let () =
  Alcotest.run "dbft"
    [
      ("vset", [ Alcotest.test_case "operations" `Quick test_vset ]);
      ( "simnet",
        [
          Alcotest.test_case "network basics" `Quick test_network_basics;
          Alcotest.test_case "fifo scheduler" `Quick test_scheduler_fifo;
          Alcotest.test_case "custom scheduler fallback" `Quick test_scheduler_custom_fallback;
        ] );
      ( "consensus-runs",
        [
          Alcotest.test_case "unanimous, no faults" `Quick test_unanimous_no_faults;
          Alcotest.test_case "mixed inputs, no faults" `Quick test_mixed_inputs_no_faults;
          Alcotest.test_case "silent byzantine" `Quick test_byzantine_silent;
          Alcotest.test_case "n=7 with two byzantine" `Quick test_seven_processes;
        ] );
      ("consensus-props", consensus_props);
      ( "lemma7",
        [
          Alcotest.test_case "adversary prevents decisions" `Quick test_lemma7_no_decision;
          Alcotest.test_case "setup matches the proof" `Quick test_lemma7_estimates_flip;
          Alcotest.test_case "fair scheduler restores termination" `Quick
            test_lemma7_fair_scheduler_decides;
        ] );
    ]
