test/test_numbers.mli:
