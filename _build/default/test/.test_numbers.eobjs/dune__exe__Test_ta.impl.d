test/test_ta.ml: Alcotest List Models Option String Ta
