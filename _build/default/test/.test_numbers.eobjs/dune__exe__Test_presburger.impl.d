test/test_presburger.ml: Alcotest List Numbers Presburger Printf QCheck QCheck_alcotest
