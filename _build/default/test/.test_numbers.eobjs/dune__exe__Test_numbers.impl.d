test/test_numbers.ml: Alcotest List Numbers Printf QCheck QCheck_alcotest
