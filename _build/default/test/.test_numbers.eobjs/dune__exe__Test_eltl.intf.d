test/test_eltl.mli:
