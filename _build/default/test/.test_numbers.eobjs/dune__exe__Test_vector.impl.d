test/test_vector.ml: Alcotest Array Dbft List Printf QCheck QCheck_alcotest Random Simnet
