test/test_holistic.mli:
