test/test_report.ml: Alcotest Holistic List Models Report String Ta
