test/test_smt.ml: Alcotest Gen List Numbers Printf QCheck QCheck_alcotest Smt
