test/test_bv_sim.ml: Alcotest Array Dbft Fun Hashtbl Int List Printf QCheck QCheck_alcotest Random Set Simnet
