test/test_eltl.ml: Alcotest Fmt Holistic List Models String Ta
