test/test_bv_sim.mli:
