test/test_crossval.ml: Alcotest Explicit Gen Holistic List Models Printf QCheck QCheck_alcotest String Ta
