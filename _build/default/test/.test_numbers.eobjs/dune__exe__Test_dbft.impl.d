test/test_dbft.ml: Alcotest Dbft List Printf QCheck QCheck_alcotest Simnet
