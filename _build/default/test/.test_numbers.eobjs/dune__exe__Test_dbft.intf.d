test/test_dbft.mli:
