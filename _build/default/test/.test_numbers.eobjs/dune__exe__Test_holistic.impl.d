test/test_holistic.ml: Alcotest Explicit Holistic Lazy List Models Option Printf Ta
