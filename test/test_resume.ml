(* Crash-safe resumption and fail-soft verification.

   The contract under test (lib/core/journal.ml + checker.ml): a run
   interrupted at any preorder position and resumed from its checkpoint
   reports the same verdict, witness, schema count and solver-step
   totals as an uninterrupted run — for all four engines (flat and
   incremental, sequential and pooled).  Interruption is simulated with
   the deterministic schema cap (a "kill" at an exact position), with
   the cooperative interrupt flag, and with injected worker crashes
   ([?failpoint]), which must quarantine, not abort.

   The journal itself is pinned separately: canonical-JSON roundtrip,
   atomic save/load, and fingerprint validation (a checkpoint recorded
   for a different automaton/property pair must be refused). *)

module Ck = Holistic.Checker
module J = Holistic.Journal
module S = Ta.Spec

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let fresh_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "holistic-resume-%d-%d.ckpt.json" (Unix.getpid ()) !counter)

let with_path f =
  let path = fresh_path () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let outcome_repr = function
  | Ck.Holds -> "holds"
  | Ck.Violated w -> Format.asprintf "violated@\n%a" Holistic.Witness.pp w
  | Ck.Aborted reason -> "aborted: " ^ reason
  | Ck.Partial { quarantined; reason } ->
    Format.asprintf "partial (%d quarantined): %s" (List.length quarantined) reason

(* Coverage statistics — which schemas were enumerated, skipped and
   pruned — must survive the kill exactly. Effort counters (prefix-cache
   hits, simplex pivot steps) and wall-clock times are not compared: a
   resumed run restarts its incremental session cold at the kill
   boundary and repartitions the remaining preorder span across workers,
   so cache warmth legitimately differs even though every verdict,
   witness and coverage count is identical. *)
let check_equiv name (base : Ck.result) (resumed : Ck.result) =
  Alcotest.(check string)
    (name ^ ": outcome/witness")
    (outcome_repr base.Ck.outcome) (outcome_repr resumed.Ck.outcome);
  let ints (r : Ck.result) =
    [
      ("schemas", r.Ck.stats.schemas_checked); ("skipped", r.Ck.stats.schemas_skipped);
      ("pruned", r.Ck.stats.subtrees_pruned); ("slots", r.Ck.stats.slots_total);
    ]
  in
  List.iter2
    (fun (k, b) (_, r) -> Alcotest.(check int) (name ^ ": " ^ k) b r)
    (ints base) (ints resumed)

(* The four engines; coverage totals are only comparable within one
   engine configuration, which is all resumption needs. *)
let engines =
  [
    ("flat-seq", { Ck.default_limits with incremental = false; jobs = 1 });
    ("flat-par", { Ck.default_limits with incremental = false; jobs = 3 });
    ("inc-seq", { Ck.default_limits with incremental = true; jobs = 1 });
    ("inc-par", { Ck.default_limits with incremental = true; jobs = 3 });
  ]

(* Kill-and-resume: run to completion; rerun with the schema cap at
   [kill] (checkpointing every position), then resume without the cap.
   The resumed totals must be bit-identical to the uninterrupted run. *)
let kill_resume_equiv name ~limits ?(kills = [ 1; 13 ]) u spec =
  let base = Ck.verify_with_universe ~limits u spec in
  List.iter
    (fun kill ->
      with_path (fun path ->
          let killed =
            Ck.verify_with_universe
              ~limits:{ limits with Ck.max_schemas = min kill limits.Ck.max_schemas }
              ~checkpoint:path ~checkpoint_every:1 u spec
          in
          ignore killed;
          let resumed =
            Ck.verify_with_universe ~limits ~checkpoint:path ~resume:true u spec
          in
          check_equiv (Printf.sprintf "%s kill@%d" name kill) base resumed))
    kills

let bv_u = lazy (Holistic.Universe.build Models.Bv_ta.automaton)
let naive_u = lazy (Holistic.Universe.build Models.Naive_ta.automaton)
let simplified_u = lazy (Holistic.Universe.build Models.Simplified_ta.automaton)

let broken_u =
  lazy (Holistic.Universe.build Models.Simplified_ta.automaton_broken_resilience)

(* bv-broadcast: every Table 2 property, every engine (the runs are
   cheap enough for the full matrix). *)
let bv_matrix_tests =
  List.concat_map
    (fun (spec : S.t) ->
      List.map
        (fun (engine, limits) ->
          Alcotest.test_case
            (Printf.sprintf "bv %s / %s" spec.name engine)
            `Quick
            (fun () ->
              kill_resume_equiv
                (Printf.sprintf "bv %s %s" spec.name engine)
                ~limits (Lazy.force bv_u) spec))
        engines)
    Models.Bv_ta.table2_specs

(* The abort path must also resume exactly: a naive-consensus row killed
   mid-flight and resumed must abort at the same position with the same
   reason as the uninterrupted budgeted run. *)
let naive_abort_tests =
  List.map
    (fun (engine, limits) ->
      let limits = { limits with Ck.max_schemas = 150 } in
      Alcotest.test_case (Printf.sprintf "naive abort / %s" engine) `Quick (fun () ->
          kill_resume_equiv
            (Printf.sprintf "naive abort %s" engine)
            ~limits ~kills:[ 40; 149 ] (Lazy.force naive_u)
            (List.hd Models.Naive_ta.table2_specs)))
    engines

(* A witness run: the broken-resilience counterexample must come out of
   the resumed slice with the identical witness trace. *)
let broken_witness_tests =
  List.map
    (fun (engine, limits) ->
      Alcotest.test_case (Printf.sprintf "broken witness / %s" engine) `Quick (fun () ->
          kill_resume_equiv
            (Printf.sprintf "broken witness %s" engine)
            ~limits ~kills:[ 1; 5 ] (Lazy.force broken_u) Models.Simplified_ta.inv1_0))
    engines

(* One simplified row, budgeted, inc-par (the engine with the most
   resumption machinery: subtree jobs straddling the frontier). *)
let test_simplified_budgeted () =
  let limits = { Ck.default_limits with jobs = 3; max_schemas = 150 } in
  kill_resume_equiv "simplified inv2_0 inc-par" ~limits ~kills:[ 10; 77 ]
    (Lazy.force simplified_u) Models.Simplified_ta.inv2_0

(* Seeded property: a uniformly random kill position anywhere in the
   run must be transparent, for every engine. *)
let qcheck_kill_anywhere =
  let spec = List.hd Models.Bv_ta.table2_specs in
  List.map
    (fun (engine, limits) ->
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:(Printf.sprintf "random kill position is transparent (%s)" engine)
           ~count:12
           QCheck.(int_range 1 60)
           (fun kill ->
             kill_resume_equiv
               (Printf.sprintf "bv qcheck %s" engine)
               ~limits ~kills:[ kill ] (Lazy.force bv_u) spec;
             true)))
    engines

(* Two kills before the final resume: the journal must accumulate
   across slices (stats cover [0, frontier) whatever the slice count). *)
let test_multi_slice_resume () =
  List.iter
    (fun (engine, limits) ->
      let spec = List.nth Models.Bv_ta.table2_specs 1 in
      let base = Ck.verify_with_universe ~limits (Lazy.force bv_u) spec in
      with_path (fun path ->
          List.iter
            (fun cut ->
              ignore
                (Ck.verify_with_universe
                   ~limits:{ limits with Ck.max_schemas = cut }
                   ~checkpoint:path ~checkpoint_every:1 ~resume:true (Lazy.force bv_u)
                   spec))
            [ 4; 17 ];
          let resumed =
            Ck.verify_with_universe ~limits ~checkpoint:path ~resume:true
              (Lazy.force bv_u) spec
          in
          check_equiv ("multi-slice " ^ engine) base resumed))
    engines

(* ------------------------------------------------------------------ *)
(* Fail-soft: injected discharge crashes quarantine instead of killing
   the run.                                                             *)

(* A crash at every attempt of one position: the run must complete with
   a Partial verdict quarantining exactly that position.  Static
   discharge is off: it refutes this property whole, so position 3
   would be pruned before the failpoint could fire. *)
let test_failpoint_quarantines () =
  let spec = List.hd Models.Bv_ta.table2_specs in
  List.iter
    (fun (engine, limits) ->
      let limits = { limits with Ck.static = false } in
      let r =
        Ck.verify_with_universe ~limits
          ~failpoint:(fun pos -> if pos = 3 then failwith "injected crash")
          (Lazy.force bv_u) spec
      in
      match r.Ck.outcome with
      | Ck.Partial { quarantined = [ (3, msg) ]; reason } ->
        Alcotest.(check bool)
          (engine ^ ": quarantine message carries the exception")
          true
          (contains ~sub:"injected crash" msg);
        Alcotest.(check bool)
          (engine ^ ": reason names the quarantine")
          true
          (contains ~sub:"quarantin" reason)
      | o -> Alcotest.failf "%s: expected Partial with position 3, got %s" engine (outcome_repr o))
    engines

(* A failpoint past the deciding schema never fires: the verdict is the
   plain witness, bit-identical to the clean run. *)
let test_failpoint_after_decision_harmless () =
  let spec = Models.Simplified_ta.inv1_0 in
  let limits = { Ck.default_limits with jobs = 1 } in
  let base = Ck.verify_with_universe ~limits (Lazy.force broken_u) spec in
  let decided =
    match base.Ck.outcome with
    | Ck.Violated _ -> base.Ck.stats.schemas_checked
    | o -> Alcotest.failf "expected the counterexample, got %s" (outcome_repr o)
  in
  let r =
    Ck.verify_with_universe ~limits
      ~failpoint:(fun pos -> if pos >= decided + 5 then failwith "never reached")
      (Lazy.force broken_u) spec
  in
  check_equiv "failpoint past decision" base r

(* A quarantined checkpoint re-attempts the hole on resume: with the
   crash gone, the resumed run is clean and Holds. *)
let test_quarantine_then_clean_resume () =
  let spec = List.hd Models.Bv_ta.table2_specs in
  (* Static off for the same reason as test_failpoint_quarantines. *)
  let limits = { Ck.default_limits with jobs = 1; static = false } in
  let base = Ck.verify_with_universe ~limits (Lazy.force bv_u) spec in
  with_path (fun path ->
      let crashed =
        Ck.verify_with_universe ~limits ~checkpoint:path ~checkpoint_every:1
          ~failpoint:(fun pos -> if pos = 3 then failwith "transient")
          (Lazy.force bv_u) spec
      in
      (match crashed.Ck.outcome with
       | Ck.Partial _ -> ()
       | o -> Alcotest.failf "expected Partial, got %s" (outcome_repr o));
      let resumed =
        Ck.verify_with_universe ~limits ~checkpoint:path ~resume:true (Lazy.force bv_u)
          spec
      in
      check_equiv "clean resume after quarantine" base resumed)

(* ------------------------------------------------------------------ *)
(* Deadlines and interrupts.                                            *)

(* A fake budget clock that jumps past the deadline after a few reads:
   the abort is deterministic, typed as a time-budget abort, and not
   conflated with the solver's Unknown. *)
let test_deadline_abort_deterministic () =
  let run () =
    let calls = ref 0 in
    let now () =
      incr calls;
      if !calls > 8 then 1.0e6 else 0.0
    in
    let limits =
      { Ck.default_limits with time_budget = Some 5.0; jobs = 1; incremental = false }
    in
    Ck.verify_with_universe ~limits ~now (Lazy.force naive_u)
      (List.hd Models.Naive_ta.table2_specs)
  in
  let a = run () and b = run () in
  (match a.Ck.outcome with
   | Ck.Aborted reason ->
     Alcotest.(check bool) "reason names the time budget" true
       (contains ~sub:"time budget" reason);
     Alcotest.(check bool) "not the solver-unknown message" false
       (contains ~sub:"unknown" reason)
   | o -> Alcotest.failf "expected a time-budget abort, got %s" (outcome_repr o));
  check_equiv "deadline abort is deterministic" a b

(* The solver-level stop: a pathological branch-and-bound query under an
   already-expired deadline must answer Timeout, not Unknown and not an
   exception. *)
let test_lia_timeout_typed () =
  let open Smt in
  let v = Linexpr.var
  and c n = Linexpr.const (Numbers.Rational.of_int n) in
  (* 3x + 3y = 2: integer-infeasible, needs branching to refute. *)
  let atoms =
    [
      Atom.eq
        (Linexpr.add
           (Linexpr.scale (Numbers.Rational.of_int 3) (v 0))
           (Linexpr.scale (Numbers.Rational.of_int 3) (v 1)))
        (c 2);
      Atom.ge (v 0) (c 0); Atom.le (v 0) (c 1000); Atom.ge (v 1) (c (-1000));
    ]
  in
  match Lia.solve ~stop:(fun () -> true) atoms with
  | Lia.Timeout -> ()
  | Lia.Unknown -> Alcotest.fail "expired deadline reported as Unknown, not Timeout"
  | Lia.Sat _ | Lia.Unsat ->
    (* The solver may still answer instantly for a query this small —
       that is allowed (the stop is only polled between pivots), but
       only with a correct verdict. *)
    Alcotest.(check bool) "verdict correct despite stop" true
      (Lia.solve atoms = Lia.Unsat)

(* Cooperative interrupt: the run winds down as a resumable abort, the
   checkpoint is flushed, and a resume completes with totals identical
   to an uninterrupted run. *)
let test_interrupt_flush_and_resume () =
  let spec = List.hd Models.Bv_ta.table2_specs in
  let limits = { Ck.default_limits with jobs = 1 } in
  let base = Ck.verify_with_universe ~limits (Lazy.force bv_u) spec in
  with_path (fun path ->
      Ck.request_interrupt ();
      Alcotest.(check bool) "flag readable" true (Ck.interrupt_requested ());
      let killed =
        Fun.protect ~finally:Ck.clear_interrupt (fun () ->
            Ck.verify_with_universe ~limits ~checkpoint:path ~checkpoint_every:1
              (Lazy.force bv_u) spec)
      in
      (match killed.Ck.outcome with
       | Ck.Aborted reason ->
         Alcotest.(check bool) "abort names the interrupt" true
           (contains ~sub:"interrupted" reason)
       | o -> Alcotest.failf "expected an interrupt abort, got %s" (outcome_repr o));
      Alcotest.(check bool) "checkpoint flushed" true (Sys.file_exists path);
      Alcotest.(check bool) "flag cleared" false (Ck.interrupt_requested ());
      let resumed =
        Ck.verify_with_universe ~limits ~checkpoint:path ~resume:true (Lazy.force bv_u)
          spec
      in
      check_equiv "interrupt then resume" base resumed)

(* ------------------------------------------------------------------ *)
(* The journal itself.                                                  *)

let sample_journal () =
  let j = J.fresh ~fingerprint:"f1" in
  let j =
    J.apply j ~span:3
      {
        J.zero_delta with
        J.d_checked = 2; d_skipped = 1; d_pruned = 1;
        d_hits = 4; d_slots = 9; d_steps = 31; d_encode_us = 1500;
        d_solve_us = 2500; d_cache_hits = 5; d_cache_misses = 6; d_cache_cross = 2;
        d_wins_interval = 3; d_wins_cooper = 1; d_wins_simplex = 2;
      }
  in
  { j with J.elapsed_us = 4321; quarantined = [ (7, "boom") ] }

let test_journal_roundtrip () =
  let j = sample_journal () in
  Alcotest.(check int) "frontier advanced" 3 j.J.frontier;
  let json = J.to_json j in
  Alcotest.(check bool) "of_json . to_json = id" true (J.of_json json = j);
  (* Canonical bytes: re-serializing the parsed document is a no-op. *)
  let bytes = Jsonc.to_string json in
  Alcotest.(check string) "canonical serialization" bytes
    (Jsonc.to_string (J.to_json (J.of_json (Jsonc.of_string bytes))))

let test_journal_save_load_atomic () =
  let j = sample_journal () in
  with_path (fun path ->
      J.save ~path j;
      (* The file is exactly the canonical document plus one newline —
         what CI's `cmp <(jq -c . f) f`-style canonicality gate assumes. *)
      let contents =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string) "file bytes" (Jsonc.to_string (J.to_json j) ^ "\n") contents;
      Alcotest.(check bool) "no stray temp file" false (Sys.file_exists (path ^ ".tmp"));
      (match J.load ~path with
       | Ok j' -> Alcotest.(check bool) "load restores the journal" true (j' = j)
       | Error e -> Alcotest.fail e);
      (* Overwriting is atomic from the reader's point of view: after a
         second save the file parses and carries the new frontier. *)
      let j2 = J.apply j ~span:2 { J.zero_delta with d_checked = 2 } in
      J.save ~path j2;
      match J.load ~path with
      | Ok j' -> Alcotest.(check int) "second save read back" 5 j'.J.frontier
      | Error e -> Alcotest.fail e)

(* Durability failpoints: a crash between writing the temp file and the
   rename must leave the previous checkpoint intact, and a crash after
   the rename must leave the new one — never a torn or missing file.
   The hook fires at each stage of [atomic_write]; raising there models
   the process dying at exactly that point. *)
let test_atomic_write_crash_failpoints () =
  let exception Killed in
  let read path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  with_path (fun path ->
      J.atomic_write ~path "old contents\n";
      let crash_at stage =
        J.atomic_write_failpoint :=
          Some (fun s -> if s = stage then raise Killed);
        let crashed =
          match J.atomic_write ~path "new contents\n" with
          | () -> false
          | exception Killed -> true
        in
        J.atomic_write_failpoint := None;
        Alcotest.(check bool) (stage ^ ": failpoint fired") true crashed;
        read path
      in
      (* Killed after the data is written but before fsync/rename: the
         reader still sees the old checkpoint, not a torn file. *)
      Alcotest.(check string) "crash before sync keeps old" "old contents\n"
        (crash_at "written");
      Alcotest.(check string) "crash before rename keeps old" "old contents\n"
        (crash_at "synced");
      (* Killed after the rename but before the directory sync: the new
         contents are what a reader sees. *)
      Alcotest.(check string) "crash after rename has new" "new contents\n"
        (crash_at "renamed");
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))

let test_journal_fingerprint_validation () =
  let j = sample_journal () in
  (match J.validate ~fingerprint:"f1" j with
   | Ok j' -> Alcotest.(check bool) "matching fingerprint accepted" true (j' = j)
   | Error e -> Alcotest.fail e);
  (match J.validate ~fingerprint:"f2" j with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "mismatched fingerprint accepted");
  (* Distinct properties give distinct fingerprints; same pair, same. *)
  let ta = Models.Bv_ta.automaton in
  let s1 = List.nth Models.Bv_ta.table2_specs 0
  and s2 = List.nth Models.Bv_ta.table2_specs 1 in
  Alcotest.(check bool) "fingerprint is stable" true
    (J.fingerprint ta s1 = J.fingerprint ta s1);
  Alcotest.(check bool) "fingerprint separates properties" false
    (J.fingerprint ta s1 = J.fingerprint ta s2)

(* End to end: resuming a checkpoint recorded for another property must
   be refused loudly, not silently fast-forwarded. *)
let test_resume_rejects_foreign_checkpoint () =
  let s1 = List.nth Models.Bv_ta.table2_specs 0
  and s2 = List.nth Models.Bv_ta.table2_specs 1 in
  let limits = { Ck.default_limits with max_schemas = 5 } in
  with_path (fun path ->
      ignore
        (Ck.verify_with_universe ~limits ~checkpoint:path ~checkpoint_every:1
           (Lazy.force bv_u) s1);
      match
        Ck.verify_with_universe ~limits ~checkpoint:path ~resume:true (Lazy.force bv_u)
          s2
      with
      | exception Invalid_argument msg ->
        Alcotest.(check bool) "error names the fingerprint" true
          (contains ~sub:"fingerprint" msg)
      | _ -> Alcotest.fail "foreign checkpoint accepted")

(* A missing checkpoint with --resume is a cold start, not an error. *)
let test_resume_missing_is_cold_start () =
  let spec = List.hd Models.Bv_ta.table2_specs in
  let limits = Ck.default_limits in
  let base = Ck.verify_with_universe ~limits (Lazy.force bv_u) spec in
  with_path (fun path ->
      let r =
        Ck.verify_with_universe ~limits ~checkpoint:path ~resume:true (Lazy.force bv_u)
          spec
      in
      check_equiv "cold start" base r;
      Alcotest.(check bool) "checkpoint written" true (Sys.file_exists path))

let () =
  Alcotest.run "resume"
    [
      ("bv kill-and-resume matrix", bv_matrix_tests);
      ( "abort, witness and multi-slice",
        [
          Alcotest.test_case "simplified budgeted inc-par" `Slow test_simplified_budgeted;
          Alcotest.test_case "multi-slice resume" `Quick test_multi_slice_resume;
        ]
        @ naive_abort_tests @ broken_witness_tests );
      ("random kill positions", qcheck_kill_anywhere);
      ( "fail-soft quarantine",
        [
          Alcotest.test_case "failpoint quarantines (all engines)" `Quick
            test_failpoint_quarantines;
          Alcotest.test_case "failpoint past decision is harmless" `Quick
            test_failpoint_after_decision_harmless;
          Alcotest.test_case "quarantine then clean resume" `Quick
            test_quarantine_then_clean_resume;
        ] );
      ( "deadlines and interrupts",
        [
          Alcotest.test_case "deadline abort is typed and deterministic" `Quick
            test_deadline_abort_deterministic;
          Alcotest.test_case "lia timeout is typed" `Quick test_lia_timeout_typed;
          Alcotest.test_case "interrupt flushes and resumes" `Quick
            test_interrupt_flush_and_resume;
        ] );
      ( "journal",
        [
          Alcotest.test_case "canonical roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "atomic save/load" `Quick test_journal_save_load_atomic;
          Alcotest.test_case "atomic_write crash failpoints" `Quick
            test_atomic_write_crash_failpoints;
          Alcotest.test_case "fingerprint validation" `Quick
            test_journal_fingerprint_validation;
          Alcotest.test_case "foreign checkpoint refused" `Quick
            test_resume_rejects_foreign_checkpoint;
          Alcotest.test_case "missing checkpoint is a cold start" `Quick
            test_resume_missing_is_cold_start;
        ] );
    ]
