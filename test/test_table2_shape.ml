(* Regression pinning of the reproduced Table 2 shape: the exact number
   of schemas and the exact slot total (hence the reported average
   schema length) per (threshold automaton, property), for the two
   automata the paper verifies to completion.  A change to the guard
   universe, the pruning relations, the enumeration order or the
   encoding that alters the table now fails here instead of silently
   rewriting the reproduced numbers.

   Only enumeration + encoding run (no LIA solving), so the whole suite
   costs seconds.  To regenerate the golden values after an intentional
   change:

     SHAPE_DUMP=1 dune exec test/test_table2_shape.exe *)

module S = Ta.Spec

let shape u spec =
  let schemas = ref 0 in
  let slots = ref 0 in
  let complete =
    Holistic.Schema.enumerate u spec ~on_schema:(fun schema ->
        incr schemas;
        slots := !slots + (Holistic.Encode.encode u spec schema).Holistic.Encode.n_slots;
        true)
  in
  Alcotest.(check bool) (spec.S.name ^ ": enumeration complete") true complete;
  (!schemas, !slots)

(* Golden values; the displayed table average is slots / schemas. *)
let expected_bv =
  [
    ("BV-Just0", (19, 318));
    ("BV-Obl0", (19, 318));
    ("BV-Unif0", (19, 318));
    ("BV-Term", (19, 318));
  ]

let expected_simplified =
  [
    ("Inv1_0", (2116, 236190));
    ("Inv2_0", (2116, 236190));
    ("SRound-Term", (2116, 236190));
    ("Good_0", (2116, 194108));
    ("Dec_0", (2116, 236190));
  ]

let check_table ta specs expected () =
  let u = Holistic.Universe.build ta in
  if Sys.getenv_opt "SHAPE_DUMP" <> None then
    List.iter
      (fun (spec : S.t) ->
        let schemas, slots = shape u spec in
        Printf.printf "    (%S, (%d, %d));\n%!" spec.name schemas slots)
      specs
  else
    List.iter
      (fun (spec : S.t) ->
        let schemas, slots = shape u spec in
        let want_schemas, want_slots = List.assoc spec.name expected in
        Alcotest.(check int) (spec.name ^ ": #schemas") want_schemas schemas;
        Alcotest.(check int) (spec.name ^ ": slot total") want_slots slots)
      specs

(* The paper's qualitative contrast: the naive TA's enumeration must
   still dwarf the simplified TA's by more than an order of magnitude.
   Pinning its exact count would make every pruning improvement a
   failure here, so only the blow-up ratio is asserted. *)
let test_naive_blowup () =
  let u = Holistic.Universe.build Models.Naive_ta.automaton in
  match Holistic.Schema.count u Models.Naive_ta.inv1_0 ~limit:(10 * 2116) with
  | `More_than _ -> ()
  | `Exactly n ->
    Alcotest.failf "naive enumeration no longer explodes (only %d schemas)" n

let () =
  Alcotest.run "table2-shape"
    [
      ( "rows",
        [
          Alcotest.test_case "bv-broadcast schema counts and lengths" `Quick
            (check_table Models.Bv_ta.automaton Models.Bv_ta.table2_specs expected_bv);
          Alcotest.test_case "simplified schema counts and lengths" `Quick
            (check_table Models.Simplified_ta.automaton Models.Simplified_ta.table2_specs
               expected_simplified);
          Alcotest.test_case "naive enumeration still explodes" `Quick test_naive_blowup;
        ] );
    ]
